file(REMOVE_RECURSE
  "../bench/bench_ablation_bandwidth"
  "../bench/bench_ablation_bandwidth.pdb"
  "CMakeFiles/bench_ablation_bandwidth.dir/bench_ablation_bandwidth.cc.o"
  "CMakeFiles/bench_ablation_bandwidth.dir/bench_ablation_bandwidth.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
