file(REMOVE_RECURSE
  "../bench/bench_fig9_dbbr_vs_sbr"
  "../bench/bench_fig9_dbbr_vs_sbr.pdb"
  "CMakeFiles/bench_fig9_dbbr_vs_sbr.dir/bench_fig9_dbbr_vs_sbr.cc.o"
  "CMakeFiles/bench_fig9_dbbr_vs_sbr.dir/bench_fig9_dbbr_vs_sbr.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_dbbr_vs_sbr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
