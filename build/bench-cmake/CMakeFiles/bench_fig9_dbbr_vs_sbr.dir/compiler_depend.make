# Empty compiler generated dependencies file for bench_fig9_dbbr_vs_sbr.
# This may be replaced when dependencies are built.
