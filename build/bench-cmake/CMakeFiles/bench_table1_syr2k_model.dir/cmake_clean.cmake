file(REMOVE_RECURSE
  "../bench/bench_table1_syr2k_model"
  "../bench/bench_table1_syr2k_model.pdb"
  "CMakeFiles/bench_table1_syr2k_model.dir/bench_table1_syr2k_model.cc.o"
  "CMakeFiles/bench_table1_syr2k_model.dir/bench_table1_syr2k_model.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_syr2k_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
