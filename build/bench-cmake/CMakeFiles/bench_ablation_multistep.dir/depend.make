# Empty dependencies file for bench_ablation_multistep.
# This may be replaced when dependencies are built.
