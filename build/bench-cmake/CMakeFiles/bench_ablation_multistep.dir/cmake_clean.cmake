file(REMOVE_RECURSE
  "../bench/bench_ablation_multistep"
  "../bench/bench_ablation_multistep.pdb"
  "CMakeFiles/bench_ablation_multistep.dir/bench_ablation_multistep.cc.o"
  "CMakeFiles/bench_ablation_multistep.dir/bench_ablation_multistep.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_multistep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
