# Empty compiler generated dependencies file for bench_fig15_tridiag.
# This may be replaced when dependencies are built.
