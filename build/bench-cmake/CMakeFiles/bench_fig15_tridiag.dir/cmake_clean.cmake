file(REMOVE_RECURSE
  "../bench/bench_fig15_tridiag"
  "../bench/bench_fig15_tridiag.pdb"
  "CMakeFiles/bench_fig15_tridiag.dir/bench_fig15_tridiag.cc.o"
  "CMakeFiles/bench_fig15_tridiag.dir/bench_fig15_tridiag.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_tridiag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
