file(REMOVE_RECURSE
  "../bench/bench_fig4_evd_breakdown"
  "../bench/bench_fig4_evd_breakdown.pdb"
  "CMakeFiles/bench_fig4_evd_breakdown.dir/bench_fig4_evd_breakdown.cc.o"
  "CMakeFiles/bench_fig4_evd_breakdown.dir/bench_fig4_evd_breakdown.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_evd_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
