file(REMOVE_RECURSE
  "../bench/bench_fig16_evd"
  "../bench/bench_fig16_evd.pdb"
  "CMakeFiles/bench_fig16_evd.dir/bench_fig16_evd.cc.o"
  "CMakeFiles/bench_fig16_evd.dir/bench_fig16_evd.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_evd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
