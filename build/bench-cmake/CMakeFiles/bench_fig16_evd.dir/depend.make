# Empty dependencies file for bench_fig16_evd.
# This may be replaced when dependencies are built.
