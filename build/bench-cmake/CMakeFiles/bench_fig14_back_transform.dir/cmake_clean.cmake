file(REMOVE_RECURSE
  "../bench/bench_fig14_back_transform"
  "../bench/bench_fig14_back_transform.pdb"
  "CMakeFiles/bench_fig14_back_transform.dir/bench_fig14_back_transform.cc.o"
  "CMakeFiles/bench_fig14_back_transform.dir/bench_fig14_back_transform.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_back_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
