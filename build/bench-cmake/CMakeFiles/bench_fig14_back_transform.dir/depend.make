# Empty dependencies file for bench_fig14_back_transform.
# This may be replaced when dependencies are built.
