file(REMOVE_RECURSE
  "../bench/bench_fig11_bulge_chasing"
  "../bench/bench_fig11_bulge_chasing.pdb"
  "CMakeFiles/bench_fig11_bulge_chasing.dir/bench_fig11_bulge_chasing.cc.o"
  "CMakeFiles/bench_fig11_bulge_chasing.dir/bench_fig11_bulge_chasing.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_bulge_chasing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
