# Empty compiler generated dependencies file for bench_fig11_bulge_chasing.
# This may be replaced when dependencies are built.
