# Empty dependencies file for bench_fig8_syr2k.
# This may be replaced when dependencies are built.
