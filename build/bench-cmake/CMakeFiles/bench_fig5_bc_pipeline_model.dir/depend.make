# Empty dependencies file for bench_fig5_bc_pipeline_model.
# This may be replaced when dependencies are built.
