file(REMOVE_RECURSE
  "../bench/bench_fig5_bc_pipeline_model"
  "../bench/bench_fig5_bc_pipeline_model.pdb"
  "CMakeFiles/bench_fig5_bc_pipeline_model.dir/bench_fig5_bc_pipeline_model.cc.o"
  "CMakeFiles/bench_fig5_bc_pipeline_model.dir/bench_fig5_bc_pipeline_model.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_bc_pipeline_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
