# Empty compiler generated dependencies file for tight_binding_chain.
# This may be replaced when dependencies are built.
