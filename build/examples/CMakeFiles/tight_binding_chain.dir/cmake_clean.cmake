file(REMOVE_RECURSE
  "CMakeFiles/tight_binding_chain.dir/tight_binding_chain.cpp.o"
  "CMakeFiles/tight_binding_chain.dir/tight_binding_chain.cpp.o.d"
  "tight_binding_chain"
  "tight_binding_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tight_binding_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
