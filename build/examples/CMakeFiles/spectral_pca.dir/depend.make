# Empty dependencies file for spectral_pca.
# This may be replaced when dependencies are built.
