file(REMOVE_RECURSE
  "CMakeFiles/spectral_pca.dir/spectral_pca.cpp.o"
  "CMakeFiles/spectral_pca.dir/spectral_pca.cpp.o.d"
  "spectral_pca"
  "spectral_pca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spectral_pca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
