# Empty compiler generated dependencies file for device_projection.
# This may be replaced when dependencies are built.
