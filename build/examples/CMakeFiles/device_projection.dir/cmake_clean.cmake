file(REMOVE_RECURSE
  "CMakeFiles/device_projection.dir/device_projection.cpp.o"
  "CMakeFiles/device_projection.dir/device_projection.cpp.o.d"
  "device_projection"
  "device_projection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_projection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
