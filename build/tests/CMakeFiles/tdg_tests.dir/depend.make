# Empty dependencies file for tdg_tests.
# This may be replaced when dependencies are built.
