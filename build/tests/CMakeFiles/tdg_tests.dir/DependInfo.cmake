
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/band_to_band_test.cc" "tests/CMakeFiles/tdg_tests.dir/band_to_band_test.cc.o" "gcc" "tests/CMakeFiles/tdg_tests.dir/band_to_band_test.cc.o.d"
  "/root/repo/tests/bc_test.cc" "tests/CMakeFiles/tdg_tests.dir/bc_test.cc.o" "gcc" "tests/CMakeFiles/tdg_tests.dir/bc_test.cc.o.d"
  "/root/repo/tests/core_test.cc" "tests/CMakeFiles/tdg_tests.dir/core_test.cc.o" "gcc" "tests/CMakeFiles/tdg_tests.dir/core_test.cc.o.d"
  "/root/repo/tests/eig_test.cc" "tests/CMakeFiles/tdg_tests.dir/eig_test.cc.o" "gcc" "tests/CMakeFiles/tdg_tests.dir/eig_test.cc.o.d"
  "/root/repo/tests/extensions_test.cc" "tests/CMakeFiles/tdg_tests.dir/extensions_test.cc.o" "gcc" "tests/CMakeFiles/tdg_tests.dir/extensions_test.cc.o.d"
  "/root/repo/tests/gpumodel_test.cc" "tests/CMakeFiles/tdg_tests.dir/gpumodel_test.cc.o" "gcc" "tests/CMakeFiles/tdg_tests.dir/gpumodel_test.cc.o.d"
  "/root/repo/tests/la_blas_test.cc" "tests/CMakeFiles/tdg_tests.dir/la_blas_test.cc.o" "gcc" "tests/CMakeFiles/tdg_tests.dir/la_blas_test.cc.o.d"
  "/root/repo/tests/lapack_test.cc" "tests/CMakeFiles/tdg_tests.dir/lapack_test.cc.o" "gcc" "tests/CMakeFiles/tdg_tests.dir/lapack_test.cc.o.d"
  "/root/repo/tests/misc_test.cc" "tests/CMakeFiles/tdg_tests.dir/misc_test.cc.o" "gcc" "tests/CMakeFiles/tdg_tests.dir/misc_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/tdg_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/tdg_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/sbr_test.cc" "tests/CMakeFiles/tdg_tests.dir/sbr_test.cc.o" "gcc" "tests/CMakeFiles/tdg_tests.dir/sbr_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tdg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
