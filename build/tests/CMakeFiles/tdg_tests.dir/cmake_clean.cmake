file(REMOVE_RECURSE
  "CMakeFiles/tdg_tests.dir/band_to_band_test.cc.o"
  "CMakeFiles/tdg_tests.dir/band_to_band_test.cc.o.d"
  "CMakeFiles/tdg_tests.dir/bc_test.cc.o"
  "CMakeFiles/tdg_tests.dir/bc_test.cc.o.d"
  "CMakeFiles/tdg_tests.dir/core_test.cc.o"
  "CMakeFiles/tdg_tests.dir/core_test.cc.o.d"
  "CMakeFiles/tdg_tests.dir/eig_test.cc.o"
  "CMakeFiles/tdg_tests.dir/eig_test.cc.o.d"
  "CMakeFiles/tdg_tests.dir/extensions_test.cc.o"
  "CMakeFiles/tdg_tests.dir/extensions_test.cc.o.d"
  "CMakeFiles/tdg_tests.dir/gpumodel_test.cc.o"
  "CMakeFiles/tdg_tests.dir/gpumodel_test.cc.o.d"
  "CMakeFiles/tdg_tests.dir/la_blas_test.cc.o"
  "CMakeFiles/tdg_tests.dir/la_blas_test.cc.o.d"
  "CMakeFiles/tdg_tests.dir/lapack_test.cc.o"
  "CMakeFiles/tdg_tests.dir/lapack_test.cc.o.d"
  "CMakeFiles/tdg_tests.dir/misc_test.cc.o"
  "CMakeFiles/tdg_tests.dir/misc_test.cc.o.d"
  "CMakeFiles/tdg_tests.dir/property_test.cc.o"
  "CMakeFiles/tdg_tests.dir/property_test.cc.o.d"
  "CMakeFiles/tdg_tests.dir/sbr_test.cc.o"
  "CMakeFiles/tdg_tests.dir/sbr_test.cc.o.d"
  "tdg_tests"
  "tdg_tests.pdb"
  "tdg_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdg_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
