# Empty compiler generated dependencies file for tdg_tests.
# This may be replaced when dependencies are built.
