
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/backtransform/apply_q1.cc" "src/CMakeFiles/tdg.dir/backtransform/apply_q1.cc.o" "gcc" "src/CMakeFiles/tdg.dir/backtransform/apply_q1.cc.o.d"
  "/root/repo/src/backtransform/apply_q2_blocked.cc" "src/CMakeFiles/tdg.dir/backtransform/apply_q2_blocked.cc.o" "gcc" "src/CMakeFiles/tdg.dir/backtransform/apply_q2_blocked.cc.o.d"
  "/root/repo/src/backtransform/merged_w.cc" "src/CMakeFiles/tdg.dir/backtransform/merged_w.cc.o" "gcc" "src/CMakeFiles/tdg.dir/backtransform/merged_w.cc.o.d"
  "/root/repo/src/band/sym_band.cc" "src/CMakeFiles/tdg.dir/band/sym_band.cc.o" "gcc" "src/CMakeFiles/tdg.dir/band/sym_band.cc.o.d"
  "/root/repo/src/bc/band_to_band.cc" "src/CMakeFiles/tdg.dir/bc/band_to_band.cc.o" "gcc" "src/CMakeFiles/tdg.dir/bc/band_to_band.cc.o.d"
  "/root/repo/src/bc/bulge_chase.cc" "src/CMakeFiles/tdg.dir/bc/bulge_chase.cc.o" "gcc" "src/CMakeFiles/tdg.dir/bc/bulge_chase.cc.o.d"
  "/root/repo/src/bc/bulge_chase_parallel.cc" "src/CMakeFiles/tdg.dir/bc/bulge_chase_parallel.cc.o" "gcc" "src/CMakeFiles/tdg.dir/bc/bulge_chase_parallel.cc.o.d"
  "/root/repo/src/bc/givens_sbtrd.cc" "src/CMakeFiles/tdg.dir/bc/givens_sbtrd.cc.o" "gcc" "src/CMakeFiles/tdg.dir/bc/givens_sbtrd.cc.o.d"
  "/root/repo/src/common/check.cc" "src/CMakeFiles/tdg.dir/common/check.cc.o" "gcc" "src/CMakeFiles/tdg.dir/common/check.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/tdg.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/tdg.dir/common/rng.cc.o.d"
  "/root/repo/src/common/trace.cc" "src/CMakeFiles/tdg.dir/common/trace.cc.o" "gcc" "src/CMakeFiles/tdg.dir/common/trace.cc.o.d"
  "/root/repo/src/core/tridiag.cc" "src/CMakeFiles/tdg.dir/core/tridiag.cc.o" "gcc" "src/CMakeFiles/tdg.dir/core/tridiag.cc.o.d"
  "/root/repo/src/eig/bisect.cc" "src/CMakeFiles/tdg.dir/eig/bisect.cc.o" "gcc" "src/CMakeFiles/tdg.dir/eig/bisect.cc.o.d"
  "/root/repo/src/eig/drivers.cc" "src/CMakeFiles/tdg.dir/eig/drivers.cc.o" "gcc" "src/CMakeFiles/tdg.dir/eig/drivers.cc.o.d"
  "/root/repo/src/eig/secular.cc" "src/CMakeFiles/tdg.dir/eig/secular.cc.o" "gcc" "src/CMakeFiles/tdg.dir/eig/secular.cc.o.d"
  "/root/repo/src/eig/stedc.cc" "src/CMakeFiles/tdg.dir/eig/stedc.cc.o" "gcc" "src/CMakeFiles/tdg.dir/eig/stedc.cc.o.d"
  "/root/repo/src/eig/steqr.cc" "src/CMakeFiles/tdg.dir/eig/steqr.cc.o" "gcc" "src/CMakeFiles/tdg.dir/eig/steqr.cc.o.d"
  "/root/repo/src/gpumodel/bc_pipeline_model.cc" "src/CMakeFiles/tdg.dir/gpumodel/bc_pipeline_model.cc.o" "gcc" "src/CMakeFiles/tdg.dir/gpumodel/bc_pipeline_model.cc.o.d"
  "/root/repo/src/gpumodel/device_spec.cc" "src/CMakeFiles/tdg.dir/gpumodel/device_spec.cc.o" "gcc" "src/CMakeFiles/tdg.dir/gpumodel/device_spec.cc.o.d"
  "/root/repo/src/gpumodel/kernel_model.cc" "src/CMakeFiles/tdg.dir/gpumodel/kernel_model.cc.o" "gcc" "src/CMakeFiles/tdg.dir/gpumodel/kernel_model.cc.o.d"
  "/root/repo/src/gpumodel/trace_cost.cc" "src/CMakeFiles/tdg.dir/gpumodel/trace_cost.cc.o" "gcc" "src/CMakeFiles/tdg.dir/gpumodel/trace_cost.cc.o.d"
  "/root/repo/src/la/blas1.cc" "src/CMakeFiles/tdg.dir/la/blas1.cc.o" "gcc" "src/CMakeFiles/tdg.dir/la/blas1.cc.o.d"
  "/root/repo/src/la/blas2.cc" "src/CMakeFiles/tdg.dir/la/blas2.cc.o" "gcc" "src/CMakeFiles/tdg.dir/la/blas2.cc.o.d"
  "/root/repo/src/la/blas3.cc" "src/CMakeFiles/tdg.dir/la/blas3.cc.o" "gcc" "src/CMakeFiles/tdg.dir/la/blas3.cc.o.d"
  "/root/repo/src/la/generate.cc" "src/CMakeFiles/tdg.dir/la/generate.cc.o" "gcc" "src/CMakeFiles/tdg.dir/la/generate.cc.o.d"
  "/root/repo/src/la/matrix.cc" "src/CMakeFiles/tdg.dir/la/matrix.cc.o" "gcc" "src/CMakeFiles/tdg.dir/la/matrix.cc.o.d"
  "/root/repo/src/la/syr2k_square.cc" "src/CMakeFiles/tdg.dir/la/syr2k_square.cc.o" "gcc" "src/CMakeFiles/tdg.dir/la/syr2k_square.cc.o.d"
  "/root/repo/src/lapack/householder.cc" "src/CMakeFiles/tdg.dir/lapack/householder.cc.o" "gcc" "src/CMakeFiles/tdg.dir/lapack/householder.cc.o.d"
  "/root/repo/src/lapack/ormqr.cc" "src/CMakeFiles/tdg.dir/lapack/ormqr.cc.o" "gcc" "src/CMakeFiles/tdg.dir/lapack/ormqr.cc.o.d"
  "/root/repo/src/lapack/qr.cc" "src/CMakeFiles/tdg.dir/lapack/qr.cc.o" "gcc" "src/CMakeFiles/tdg.dir/lapack/qr.cc.o.d"
  "/root/repo/src/lapack/sytrd.cc" "src/CMakeFiles/tdg.dir/lapack/sytrd.cc.o" "gcc" "src/CMakeFiles/tdg.dir/lapack/sytrd.cc.o.d"
  "/root/repo/src/sbr/dbbr.cc" "src/CMakeFiles/tdg.dir/sbr/dbbr.cc.o" "gcc" "src/CMakeFiles/tdg.dir/sbr/dbbr.cc.o.d"
  "/root/repo/src/sbr/sy2sb.cc" "src/CMakeFiles/tdg.dir/sbr/sy2sb.cc.o" "gcc" "src/CMakeFiles/tdg.dir/sbr/sy2sb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
