# Empty compiler generated dependencies file for tdg.
# This may be replaced when dependencies are built.
