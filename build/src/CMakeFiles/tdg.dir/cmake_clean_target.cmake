file(REMOVE_RECURSE
  "libtdg.a"
)
