#include "sbr/band32.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/cancel.h"
#include "lapack/lapack32.h"
#include "obs/obs.h"

namespace tdg::sbr {

namespace {

/// Float ZY step: Z = P T - (1/2) V (T^T (V^T P T)) for P = A V.
MatrixF zy_w_from_av_f(ConstMatrixViewF p, ConstMatrixViewF v,
                       ConstMatrixViewF t) {
  const index_t m = p.rows;
  const index_t w = p.cols;
  MatrixF x(m, w);
  la::gemm_f(Trans::kNo, Trans::kNo, 1.0f, p, t, 0.0f, x.view());
  MatrixF mm(w, w);
  la::gemm_f(Trans::kTrans, Trans::kNo, 1.0f, v, x.view(), 0.0f, mm.view());
  MatrixF s(w, w);
  la::gemm_f(Trans::kTrans, Trans::kNo, 1.0f, t, mm.view(), 0.0f, s.view());
  la::gemm_f(Trans::kNo, Trans::kNo, -0.5f, v, s.view(), 1.0f, x.view());
  return x;
}

void zero_below_r_f(MatrixViewF a, index_t j0, index_t b, index_t w) {
  const index_t n = a.rows;
  for (index_t c = 0; c < w; ++c) {
    for (index_t r = j0 + b + c + 1; r < n; ++r) a(r, j0 + c) = 0.0f;
  }
}

/// Float port of dbbr.cc panel_step (barrier path, no prefactored QR).
index_t panel_step_f(MatrixViewF a, index_t b, index_t j, index_t cols,
                     MatrixF& y, MatrixF& z, BandFactor32& f, bool keep_all) {
  const index_t n = a.rows;
  const index_t m = n - j - b;
  const index_t w = std::min(b, m);

  if (cols > 0) {
    MatrixViewF blk = a.block(j, j, n - j, w);
    la::gemm_f(Trans::kNo, Trans::kTrans, -1.0f, y.block(j, 0, n - j, cols),
               z.block(j, 0, w, cols), 1.0f, blk);
    la::gemm_f(Trans::kNo, Trans::kTrans, -1.0f, z.block(j, 0, n - j, cols),
               y.block(j, 0, w, cols), 1.0f, blk);
  }

  lapack::WyFactor32 wy = lapack::panel_qr_f(a.block(j + b, j, m, w));
  zero_below_r_f(a, j, b, w);

  // P = A_cur V = A_stale V - Y (Z^T V) - Z (Y^T V)  (rows j+b..n-1).
  MatrixF p(m, w);
  la::symm_lower_f(1.0f, a.block(j + b, j + b, m, m), wy.v.view(), 0.0f,
                   p.view());
  if (cols > 0) {
    MatrixF zv(cols, w);
    la::gemm_f(Trans::kTrans, Trans::kNo, 1.0f, z.block(j + b, 0, m, cols),
               wy.v.view(), 0.0f, zv.view());
    la::gemm_f(Trans::kNo, Trans::kNo, -1.0f, y.block(j + b, 0, m, cols),
               zv.view(), 1.0f, p.view());
    MatrixF yv(cols, w);
    la::gemm_f(Trans::kTrans, Trans::kNo, 1.0f, y.block(j + b, 0, m, cols),
               wy.v.view(), 0.0f, yv.view());
    la::gemm_f(Trans::kNo, Trans::kNo, -1.0f, z.block(j + b, 0, m, cols),
               yv.view(), 1.0f, p.view());
  }
  MatrixF wmat = zy_w_from_av_f(p.view(), wy.v.view(), wy.t.view());

  copy(wy.v.view(), y.block(j + b, cols, m, w));
  copy(wmat.view(), z.block(j + b, cols, m, w));

  if (!keep_all) f.panels.clear();
  f.panels.push_back({j + b, std::move(wy.v), std::move(wy.t)});
  return cols + w;
}

}  // namespace

BandFactor32 dbbr_f(MatrixViewF a, index_t b, index_t k, bool want_factors) {
  const index_t n = a.rows;
  TDG_CHECK(a.rows == a.cols, "dbbr_f: matrix must be square");
  TDG_CHECK(b >= 1 && b < std::max<index_t>(n, 2), "dbbr_f: need 1 <= b < n");
  TDG_CHECK(k >= b && k % b == 0, "dbbr_f: k must be a positive multiple of b");

  obs::Span span("dbbr_f");
  span.attr("n", n);
  span.attr("b", b);
  span.attr("k", k);

  BandFactor32 f;
  f.n = n;
  f.b = b;

  MatrixF y(n, k);
  MatrixF z(n, k);

  index_t i = 0;
  while (n - i - b >= 1) {
    cancel::poll("dbbr_block");
    for (index_t c = 0; c < k; ++c) {
      float* yc = y.view().col(c);
      float* zc = z.view().col(c);
      std::fill(yc, yc + n, 0.0f);
      std::fill(zc, zc + n, 0.0f);
    }
    index_t cols = 0;
    index_t t0 = i;

    for (index_t j = i; j < i + k && n - j - b >= 1; j += b) {
      cols = panel_step_f(a, b, j, cols, y, z, f, want_factors);
      t0 = j + std::min(b, n - j - b);
    }

    if (cols > 0 && t0 < n) {
      la::syr2k_lower_f(-1.0f, y.block(t0, 0, n - t0, cols),
                        z.block(t0, 0, n - t0, cols), 1.0f,
                        a.block(t0, t0, n - t0, n - t0));
    }
    if (!f.panels.empty()) {
      // Final partial panel of the block (w < b): its remaining in-band
      // columns still take Q^T from the left (same fixup as dbbr.cc).
      const Panel32& last = f.panels.back();
      const index_t lw = last.v.cols();
      const index_t lj = last.row0 - b;
      if (lw < b && lj >= i) {
        lapack::apply_block_reflector_left_f(
            last.v.view(), last.t.view(), Trans::kTrans,
            a.block(last.row0, lj + lw, last.v.rows(), b - lw));
      }
    }
    i += k;
  }
  if (!want_factors) f.panels.clear();
  return f;
}

void apply_q1_f(const BandFactor32& f, MatrixViewF c) {
  TDG_CHECK(c.rows == f.n, "apply_q1_f: row mismatch");
  // Q1 C = Q_p0 (Q_p1 (... (Q_pm C))) — panels applied in reverse order.
  for (auto p = f.panels.rbegin(); p != f.panels.rend(); ++p) {
    cancel::poll("backtransform_panel");
    lapack::apply_block_reflector_left_f(
        p->v.view(), p->t.view(), Trans::kNo,
        c.block(p->row0, 0, f.n - p->row0, c.cols));
  }
}

}  // namespace tdg::sbr
