// FP32 stage-1 band reduction for the mixed-precision EVD engine: a float
// port of the paper's double-blocking band reduction (dbbr.cc, barrier
// schedule) plus the matching stage-1 back transformation.
//
// The FP64 engine keeps its look-ahead DAG and bitwise contracts; the float
// port runs the barrier schedule only — the mixed-precision result is
// refined (or recovered) in FP64 afterwards, so schedule-level bitwise
// reproducibility buys nothing here and the simpler loop keeps the port
// auditable against Algorithm 1.
#pragma once

#include <vector>

#include "la/matrix32.h"

namespace tdg::sbr {

/// Float compact-WY panel: Q_p = I - V T V^T on rows [row0, row0 + v.rows).
struct Panel32 {
  index_t row0 = 0;
  MatrixF v;
  MatrixF t;
};

/// Float reflector set: A = Q1 B Q1^T, Q1 = Q_p0 Q_p1 ... (factorisation
/// order). Empty panels when the reduction ran values-only.
struct BandFactor32 {
  index_t n = 0;
  index_t b = 0;
  std::vector<Panel32> panels;
};

/// Double-blocking band reduction in FP32 (paper Algorithm 1, barrier
/// schedule). On return the lower triangle of `a` holds the bandwidth-b
/// band matrix. `k` must be a positive multiple of b. With want_factors ==
/// false at most one panel is held live and panels comes back empty.
BandFactor32 dbbr_f(MatrixViewF a, index_t b, index_t k, bool want_factors);

/// C <- Q1 C, panels applied in reverse factorisation order (the float
/// apply_q1_conventional).
void apply_q1_f(const BandFactor32& f, MatrixViewF c);

}  // namespace tdg::sbr
