// Classic single-blocking successive band reduction (MAGMA dsy2sb analogue).
//
// Per panel of width b: QR-factorise the below-band block, then apply the
// two-sided block update to the whole trailing matrix through the ZY
// representation (Equation 1 of the paper):
//   Z = A V T - (1/2) V T^T (V^T A V T),   A2 <- A2 - V Z^T - Z V^T.
// The trailing update is a syr2k whose inner dimension equals b — the shape
// bottleneck the paper's DBBR removes.
//
// With opts.lookahead >= 1 the panel loop runs as a task DAG
// (common/task_graph.h), the same schedule shape as dbbr's: per panel p a
// driver node computes the panel transform (symm, W, fixup), pooled nodes
// run the trailing syr2k's square tiles barrier-free, and panel p+1's QR
// overlaps the tiles it does not read. Same tile grid, kernels, and inputs
// as the barrier loop, so results are bitwise identical.

#include <algorithm>
#include <utility>
#include <vector>

#include "common/cancel.h"
#include "common/task_graph.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "obs/obs.h"
#include "sbr/internal.h"
#include "sbr/sbr.h"

namespace tdg::sbr {

namespace detail {

Matrix zy_w_from_av(ConstMatrixView p, ConstMatrixView v, ConstMatrixView t) {
  const index_t m = p.rows;
  const index_t w = p.cols;
  Matrix x(m, w);
  la::gemm(Trans::kNo, Trans::kNo, 1.0, p, t, 0.0, x.view());  // X = P T
  Matrix mm(w, w);
  la::gemm(Trans::kTrans, Trans::kNo, 1.0, v, x.view(), 0.0, mm.view());
  Matrix s(w, w);
  la::gemm(Trans::kTrans, Trans::kNo, 1.0, t, mm.view(), 0.0, s.view());
  la::gemm(Trans::kNo, Trans::kNo, -0.5, v, s.view(), 1.0, x.view());
  return x;
}

void zero_below_r(MatrixView a, index_t j0, index_t b, index_t w) {
  const index_t n = a.rows;
  for (index_t c = 0; c < w; ++c) {
    for (index_t r = j0 + b + c + 1; r < n; ++r) a(r, j0 + c) = 0.0;
  }
}

}  // namespace detail

namespace {

void trailing_syr2k(const BandReductionOptions& opts, ConstMatrixView v,
                    ConstMatrixView w, MatrixView atail) {
  if (opts.use_square_syr2k) {
    la::syr2k_lower_square(-1.0, v, w, 1.0, atail, opts.syr2k_block);
  } else {
    la::syr2k_lower(-1.0, v, w, 1.0, atail);
  }
}

/// Static geometry of one sy2sb panel step.
struct StepGeom {
  index_t j = 0;     // panel column
  index_t m = 0;     // trailing dimension (= below-band panel rows)
  index_t w = 0;     // panel width
  index_t blk = 0;   // square tile size of the trailing syr2k
  index_t nblk = 0;  // tile grid dimension
};

std::vector<StepGeom> sy2sb_geometry(index_t n, index_t b,
                                     index_t syr2k_block) {
  std::vector<StepGeom> steps;
  for (index_t j = 0; n - j - b >= 1; j += b) {
    StepGeom s;
    s.j = j;
    s.m = n - j - b;
    s.w = std::min(b, s.m);
    s.blk = la::syr2k_square_block_size(s.m, syr2k_block);
    s.nblk = (s.m + s.blk - 1) / s.blk;
    steps.push_back(s);
  }
  return steps;
}

/// The look-ahead DAG schedule: per panel p a pooled QR node (overlapping
/// the previous panel's tiles it does not read), a driver panel-transform
/// node, and one pooled node per trailing-syr2k tile.
void sy2sb_graph(MatrixView a, const BandReductionOptions& opts, BandFactor& f,
                 obs::Span& sy2sb_span) {
  const index_t n = a.rows;
  const index_t b = opts.b;
  const std::vector<StepGeom> steps = sy2sb_geometry(n, b, opts.syr2k_block);
  const index_t np = static_cast<index_t>(steps.size());
  if (np == 0) return;

  using graph::NodeClass;
  using graph::TaskGraph;
  TaskGraph g;

  // Per-panel state, preallocated so no container mutates while pool
  // workers hold references. The WY factors move into f.panels only after
  // the graph has drained (tiles read wys[p].v while later panels run).
  std::vector<lapack::WyFactor> wys(np);
  std::vector<Matrix> zs(np);
  std::vector<char> pre_ok(np, 0);

  std::vector<std::vector<TaskGraph::NodeId>> prev_cols;

  for (index_t p = 0; p < np; ++p) {
    const StepGeom& st = steps[p];

    // QR_p (p >= 1): panel p reads columns [j, j+w) — offset 0 in the
    // previous trailing region (which starts at column j exactly), so the
    // first ceil(w/blk) tile-columns of the previous grid cover it.
    TaskGraph::NodeId qr = -1;
    if (p > 0) {
      const index_t prev_blk = steps[p - 1].blk;
      const index_t ncov = std::min<index_t>(
          steps[p - 1].nblk, (st.w + prev_blk - 1) / prev_blk);
      std::vector<TaskGraph::NodeId> deps;
      for (index_t c = 0; c < ncov; ++c) {
        deps.insert(deps.end(), prev_cols[c].begin(), prev_cols[c].end());
      }
      qr = g.add(
          "sy2sb.lookahead_qr", NodeClass::kPooled,
          [&a, &steps, &wys, &pre_ok, p, b] {
            const StepGeom& cur = steps[p];
            wys[p] = lapack::panel_qr(
                a.block(cur.j + b, cur.j, cur.m, cur.w));
            detail::zero_below_r(a, cur.j, b, cur.w);
            pre_ok[p] = 1;
          },
          deps);
    }

    // PT_p: the panel transform. The symm reads the whole previous trailing
    // matrix, so it depends on every previous tile — plus QR_p. The partial
    // -panel fixup moves here from after the syr2k: its region is disjoint
    // from this panel's trailing tiles and final after the previous tiles,
    // so the relocation is bitwise-neutral.
    std::vector<TaskGraph::NodeId> pt_deps;
    for (const auto& col : prev_cols) {
      pt_deps.insert(pt_deps.end(), col.begin(), col.end());
    }
    if (qr >= 0) pt_deps.push_back(qr);
    const TaskGraph::NodeId pt = g.add(
        "sy2sb.panel", NodeClass::kDriver,
        [&a, &steps, &wys, &zs, &pre_ok, p, b] {
          // Driver node — runs on the run() caller, which holds the
          // request's cancel::Scope. One poll per panel.
          cancel::poll("sy2sb_block");
          const StepGeom& cur = steps[p];
          obs::Span panel_span("sy2sb.panel");
          panel_span.attr("j", cur.j);
          panel_span.attr("width", cur.w);
          if (!pre_ok[p]) {
            wys[p] = lapack::panel_qr(
                a.block(cur.j + b, cur.j, cur.m, cur.w));
            detail::zero_below_r(a, cur.j, b, cur.w);
          }
          MatrixView atail = a.block(cur.j + b, cur.j + b, cur.m, cur.m);
          Matrix pmat(cur.m, cur.w);
          la::symm_lower(1.0, atail, wys[p].v.view(), 0.0, pmat.view());
          zs[p] = detail::zy_w_from_av(pmat.view(), wys[p].v.view(),
                                       wys[p].t.view());
          if (cur.w < b) {
            lapack::apply_block_reflector_left(
                wys[p].v.view(), wys[p].t.view(), Trans::kTrans,
                a.block(cur.j + b, cur.j + cur.w, cur.m, b - cur.w));
          }
        },
        pt_deps);

    // T_p: the trailing syr2k as independent square tiles; tile-column 0
    // first so the ready queue front-runs the columns QR_{p+1} waits on.
    std::vector<std::vector<TaskGraph::NodeId>> cur_cols(st.nblk);
    for (index_t bj = 0; bj < st.nblk; ++bj) {
      for (index_t bi = bj; bi < st.nblk; ++bi) {
        cur_cols[bj].push_back(g.add(
            "sy2sb.syr2k_tile", NodeClass::kPooled,
            [&a, &steps, &wys, &zs, p, bi, bj, b] {
              const StepGeom& cur = steps[p];
              la::detail::syr2k_square_tile(
                  -1.0, wys[p].v.view(), zs[p].view(), 1.0,
                  a.block(cur.j + b, cur.j + b, cur.m, cur.m), cur.blk, bi,
                  bj);
            },
            {pt}));
      }
    }
    prev_cols = std::move(cur_cols);
  }

  const TaskGraph::Stats stats = g.run();
  sy2sb_span.attr("tg_overlap_pct",
                  static_cast<long long>(100.0 * stats.overlap_fraction()));

  if (!opts.want_factors) return;  // values-only: panels are never consumed
  for (index_t p = 0; p < np; ++p) {
    f.panels.push_back(
        {steps[p].j + b, std::move(wys[p].v), std::move(wys[p].t)});
  }
}

}  // namespace

BandFactor sy2sb(MatrixView a, index_t b, const BandReductionOptions& opts) {
  const index_t n = a.rows;
  TDG_CHECK(a.rows == a.cols, "sy2sb: matrix must be square");
  TDG_CHECK(b >= 1 && b < std::max<index_t>(n, 2), "sy2sb: need 1 <= b < n");
  // Drive the parallel BLAS-3 engine at the requested width for the whole
  // reduction (panel symm and the per-panel trailing syr2k).
  ThreadLimit thread_scope(opts.threads);

  obs::Span sy2sb_span("sy2sb");
  sy2sb_span.attr("n", n);
  sy2sb_span.attr("b", b);

  BandFactor f;
  f.n = n;
  f.b = b;

  // DAG schedule: bitwise-identical to the barrier loop below; falls back
  // under an active op trace (pool workers carry no recorder).
  if (opts.lookahead >= 1 && opts.use_square_syr2k &&
      trace::active() == nullptr) {
    BandReductionOptions gopts = opts;
    gopts.b = b;  // sy2sb takes b positionally; the graph reads it from opts
    sy2sb_graph(a, gopts, f, sy2sb_span);
    return f;
  }

  for (index_t j = 0; n - j - b >= 1; j += b) {
    cancel::poll("sy2sb_block");
    const index_t m = n - j - b;       // rows of the below-band panel
    const index_t w = std::min(b, m);  // panel width
    obs::Span panel_span("sy2sb.panel");
    panel_span.attr("j", j);
    panel_span.attr("width", w);
    MatrixView panel = a.block(j + b, j, m, w);
    lapack::WyFactor wy = lapack::panel_qr(panel);
    detail::zero_below_r(a, j, b, w);

    // Two-sided trailing update via the ZY representation.
    MatrixView atail = a.block(j + b, j + b, m, m);
    Matrix p(m, w);
    la::symm_lower(1.0, atail, wy.v.view(), 0.0, p.view());
    Matrix z = detail::zy_w_from_av(p.view(), wy.v.view(), wy.t.view());
    trailing_syr2k(opts, wy.v.view(), z.view(), atail);

    if (w < b) {
      // Final partial panel: columns [j+w, j+b) stay inside the band but
      // their below-diagonal rows are still rotated by Q^T from the left.
      lapack::apply_block_reflector_left(wy.v.view(), wy.t.view(),
                                         Trans::kTrans,
                                         a.block(j + b, j + w, m, b - w));
    }

    if (opts.want_factors) {
      f.panels.push_back({j + b, std::move(wy.v), std::move(wy.t)});
    }
  }
  return f;
}

}  // namespace tdg::sbr
