// Classic single-blocking successive band reduction (MAGMA dsy2sb analogue).
//
// Per panel of width b: QR-factorise the below-band block, then apply the
// two-sided block update to the whole trailing matrix through the ZY
// representation (Equation 1 of the paper):
//   Z = A V T - (1/2) V T^T (V^T A V T),   A2 <- A2 - V Z^T - Z V^T.
// The trailing update is a syr2k whose inner dimension equals b — the shape
// bottleneck the paper's DBBR removes.

#include <algorithm>

#include "common/thread_pool.h"
#include "obs/obs.h"
#include "sbr/internal.h"
#include "sbr/sbr.h"

namespace tdg::sbr {

namespace detail {

Matrix zy_w_from_av(ConstMatrixView p, ConstMatrixView v, ConstMatrixView t) {
  const index_t m = p.rows;
  const index_t w = p.cols;
  Matrix x(m, w);
  la::gemm(Trans::kNo, Trans::kNo, 1.0, p, t, 0.0, x.view());  // X = P T
  Matrix mm(w, w);
  la::gemm(Trans::kTrans, Trans::kNo, 1.0, v, x.view(), 0.0, mm.view());
  Matrix s(w, w);
  la::gemm(Trans::kTrans, Trans::kNo, 1.0, t, mm.view(), 0.0, s.view());
  la::gemm(Trans::kNo, Trans::kNo, -0.5, v, s.view(), 1.0, x.view());
  return x;
}

void zero_below_r(MatrixView a, index_t j0, index_t b, index_t w) {
  const index_t n = a.rows;
  for (index_t c = 0; c < w; ++c) {
    for (index_t r = j0 + b + c + 1; r < n; ++r) a(r, j0 + c) = 0.0;
  }
}

}  // namespace detail

namespace {

void trailing_syr2k(const BandReductionOptions& opts, ConstMatrixView v,
                    ConstMatrixView w, MatrixView atail) {
  if (opts.use_square_syr2k) {
    la::syr2k_lower_square(-1.0, v, w, 1.0, atail, opts.syr2k_block);
  } else {
    la::syr2k_lower(-1.0, v, w, 1.0, atail);
  }
}

}  // namespace

BandFactor sy2sb(MatrixView a, index_t b, const BandReductionOptions& opts) {
  const index_t n = a.rows;
  TDG_CHECK(a.rows == a.cols, "sy2sb: matrix must be square");
  TDG_CHECK(b >= 1 && b < std::max<index_t>(n, 2), "sy2sb: need 1 <= b < n");
  // Drive the parallel BLAS-3 engine at the requested width for the whole
  // reduction (panel symm and the per-panel trailing syr2k).
  ThreadLimit thread_scope(opts.threads);

  obs::Span sy2sb_span("sy2sb");
  sy2sb_span.attr("n", n);
  sy2sb_span.attr("b", b);

  BandFactor f;
  f.n = n;
  f.b = b;

  for (index_t j = 0; n - j - b >= 1; j += b) {
    const index_t m = n - j - b;      // rows of the below-band panel
    const index_t w = std::min(b, m); // panel width
    obs::Span panel_span("sy2sb.panel");
    panel_span.attr("j", j);
    panel_span.attr("width", w);
    MatrixView panel = a.block(j + b, j, m, w);
    lapack::WyFactor wy = lapack::panel_qr(panel);
    detail::zero_below_r(a, j, b, w);

    // Two-sided trailing update via the ZY representation.
    MatrixView atail = a.block(j + b, j + b, m, m);
    Matrix p(m, w);
    la::symm_lower(1.0, atail, wy.v.view(), 0.0, p.view());
    Matrix z = detail::zy_w_from_av(p.view(), wy.v.view(), wy.t.view());
    trailing_syr2k(opts, wy.v.view(), z.view(), atail);

    if (w < b) {
      // Final partial panel: columns [j+w, j+b) stay inside the band but
      // their below-diagonal rows are still rotated by Q^T from the left.
      lapack::apply_block_reflector_left(wy.v.view(), wy.t.view(),
                                         Trans::kTrans,
                                         a.block(j + b, j + w, m, b - w));
    }

    f.panels.push_back({j + b, std::move(wy.v), std::move(wy.t)});
  }
  return f;
}

}  // namespace tdg::sbr
