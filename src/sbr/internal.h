// Shared internals of the band-reduction implementations.
#pragma once

#include "la/blas.h"
#include "lapack/lapack.h"

namespace tdg::sbr::detail {

/// ZY-representation update matrix from the product P = A_cur * V:
///   W = P T - (1/2) V T^T (V^T P T),
/// so that Q^T A_cur Q = A_cur - V W^T - W V^T for Q = I - V T V^T.
Matrix zy_w_from_av(ConstMatrixView p, ConstMatrixView v, ConstMatrixView t);

/// Zero the sub-R part of a just-factorised panel: columns [j0, j0+w) of
/// `a`, rows strictly below the R triangle (row > j0 + b + c for local
/// column c). Those positions held Householder vectors during the panel QR.
void zero_below_r(MatrixView a, index_t j0, index_t b, index_t w);

}  // namespace tdg::sbr::detail
