// Double-blocking band reduction — the paper's Algorithm 1.
//
// Inner block size b (the target bandwidth) governs the panel QRs; outer
// block size k (opts.k, a multiple of b) governs how many reflector panels
// are accumulated in the ZY representation (Y, Z) before the trailing matrix
// is touched. Between trailing updates, each upcoming panel is refreshed
// just-in-time with the accumulated (Y, Z) — that is the paper's line 8-12,
// two skinny GEMMs per panel. The single trailing syr2k per outer block then
// has inner dimension k >> b, the shape that saturates an H100 (Table 1),
// while the bandwidth handed to bulge chasing stays small (e.g. b = 32).
//
// Internal state convention per outer block: processed panel columns hold
// their final band values (diag block via the JIT update, R via the panel
// QR, zeros below); everything at column >= the next panel is *stale* (the
// values from the start of the outer block). A panel's A_cur * V product is
// therefore computed from the stale trailing matrix plus the accumulated
// correction: A_cur = A_stale - Y Z^T - Z Y^T.

#include <algorithm>

#include "common/thread_pool.h"
#include "obs/obs.h"
#include "sbr/internal.h"
#include "sbr/sbr.h"

namespace tdg::sbr {

namespace {

void trailing_syr2k(const BandReductionOptions& opts, ConstMatrixView v,
                    ConstMatrixView w, MatrixView atail) {
  if (opts.use_square_syr2k) {
    la::syr2k_lower_square(-1.0, v, w, 1.0, atail, opts.syr2k_block);
  } else {
    la::syr2k_lower(-1.0, v, w, 1.0, atail);
  }
}

}  // namespace

BandFactor dbbr(MatrixView a, const BandReductionOptions& opts) {
  const index_t n = a.rows;
  const index_t b = opts.b;
  const index_t k = opts.k;
  TDG_CHECK(a.rows == a.cols, "dbbr: matrix must be square");
  TDG_CHECK(b >= 1 && b < std::max<index_t>(n, 2), "dbbr: need 1 <= b < n");
  TDG_CHECK(k >= b && k % b == 0, "dbbr: k must be a positive multiple of b");
  // Drive the parallel BLAS-3 engine at the requested width for the whole
  // reduction (JIT panel GEMMs, symm, and the fat trailing syr2k).
  ThreadLimit thread_scope(opts.threads);

  obs::Span dbbr_span("dbbr");
  dbbr_span.attr("n", n);
  dbbr_span.attr("b", b);
  dbbr_span.attr("k", k);

  BandFactor f;
  f.n = n;
  f.b = b;

  Matrix y(n, k);  // accumulated V panels (global row indexing)
  Matrix z(n, k);  // accumulated W panels

  index_t i = 0;
  while (n - i - b >= 1) {
    y.set_zero();
    z.set_zero();
    index_t cols = 0;  // accumulated reflector columns in this outer block
    index_t t0 = i;    // start of the stale trailing region

    for (index_t j = i; j < i + k && n - j - b >= 1; j += b) {
      const index_t m = n - j - b;       // rows of the below-band panel
      const index_t w = std::min(b, m);  // panel width

      obs::Span panel_span("dbbr.panel");
      panel_span.attr("j", j);
      panel_span.attr("width", w);

      if (cols > 0) {
        // JIT refresh of this panel's column block (rows j..n-1): apply all
        // updates accumulated in this outer block. Paper Algorithm 1, l.8-12.
        MatrixView blk = a.block(j, j, n - j, w);
        la::gemm(Trans::kNo, Trans::kTrans, -1.0, y.block(j, 0, n - j, cols),
                 z.block(j, 0, w, cols), 1.0, blk);
        la::gemm(Trans::kNo, Trans::kTrans, -1.0, z.block(j, 0, n - j, cols),
                 y.block(j, 0, w, cols), 1.0, blk);
      }

      MatrixView panel = a.block(j + b, j, m, w);
      lapack::WyFactor wy = lapack::panel_qr(panel);
      detail::zero_below_r(a, j, b, w);

      // P = A_cur V = A_stale V - Y (Z^T V) - Z (Y^T V)  (rows j+b..n-1).
      Matrix p(m, w);
      la::symm_lower(1.0, a.block(j + b, j + b, m, m), wy.v.view(), 0.0,
                     p.view());
      if (cols > 0) {
        Matrix zv(cols, w);
        la::gemm(Trans::kTrans, Trans::kNo, 1.0, z.block(j + b, 0, m, cols),
                 wy.v.view(), 0.0, zv.view());
        la::gemm(Trans::kNo, Trans::kNo, -1.0, y.block(j + b, 0, m, cols),
                 zv.view(), 1.0, p.view());
        Matrix yv(cols, w);
        la::gemm(Trans::kTrans, Trans::kNo, 1.0, y.block(j + b, 0, m, cols),
                 wy.v.view(), 0.0, yv.view());
        la::gemm(Trans::kNo, Trans::kNo, -1.0, z.block(j + b, 0, m, cols),
                 yv.view(), 1.0, p.view());
      }
      Matrix wmat = detail::zy_w_from_av(p.view(), wy.v.view(), wy.t.view());

      copy(wy.v.view(), y.block(j + b, cols, m, w));
      copy(wmat.view(), z.block(j + b, cols, m, w));
      cols += w;
      t0 = j + w;  // columns < t0 are final; >= t0 still stale

      f.panels.push_back({j + b, std::move(wy.v), std::move(wy.t)});
    }

    if (cols > 0 && t0 < n) {
      // One fat trailing update for the whole outer block (inner dim = cols).
      obs::Span syr2k_span("dbbr.syr2k");
      syr2k_span.attr("rows", n - t0);
      syr2k_span.attr("inner", cols);
      trailing_syr2k(opts, y.block(t0, 0, n - t0, cols),
                     z.block(t0, 0, n - t0, cols), a.block(t0, t0, n - t0, n - t0));
    }
    if (!f.panels.empty()) {
      // Final partial panel of the block (w < b): columns [j+w, j+b) stay
      // inside the band but their below-diagonal rows still receive the last
      // panel's Q^T from the left. (For full panels w == b this is empty.)
      const Panel& last = f.panels.back();
      const index_t lw = last.v.cols();
      const index_t lj = last.row0 - b;
      if (lw < b && lj >= i) {
        lapack::apply_block_reflector_left(
            last.v.view(), last.t.view(), Trans::kTrans,
            a.block(last.row0, lj + lw, last.v.rows(), b - lw));
      }
    }
    i += k;
  }
  return f;
}

}  // namespace tdg::sbr
