// Double-blocking band reduction — the paper's Algorithm 1.
//
// Inner block size b (the target bandwidth) governs the panel QRs; outer
// block size k (opts.k, a multiple of b) governs how many reflector panels
// are accumulated in the ZY representation (Y, Z) before the trailing matrix
// is touched. Between trailing updates, each upcoming panel is refreshed
// just-in-time with the accumulated (Y, Z) — that is the paper's line 8-12,
// two skinny GEMMs per panel. The single trailing syr2k per outer block then
// has inner dimension k >> b, the shape that saturates an H100 (Table 1),
// while the bandwidth handed to bulge chasing stays small (e.g. b = 32).
//
// Internal state convention per outer block: processed panel columns hold
// their final band values (diag block via the JIT update, R via the panel
// QR, zeros below); everything at column >= the next panel is *stale* (the
// values from the start of the outer block). A panel's A_cur * V product is
// therefore computed from the stale trailing matrix plus the accumulated
// correction: A_cur = A_stale - Y Z^T - Z Y^T.
//
// Two schedules over the same arithmetic:
//
//  * Barrier (opts.lookahead == 0): panels, then one trailing syr2k, then
//    the next outer block — each phase joins before the next starts.
//  * Look-ahead DAG (opts.lookahead >= 1): the outer loop is expressed as a
//    task graph (common/task_graph.h). Per outer step s the nodes are
//      PC_s   (driver) the full panel chain of the block,
//      T_s    (pooled) one node per square tile of the trailing syr2k —
//             mutually independent, so the per-anti-diagonal barriers of
//             syr2k_lower_square disappear,
//      QR_s+1 (pooled) the *first* panel QR of the next block, depending
//             only on the tile-columns of T_s it actually reads — this is
//             the look-ahead: it overlaps the bulk of step s's tiles,
//      FIX    (driver) the final partial-panel fixup, after the last tiles.
//    The tile grid, kernels, and inputs are identical to the barrier path,
//    so results are bitwise identical for any schedule and thread count.

#include <algorithm>
#include <utility>
#include <vector>

#include "common/cancel.h"
#include "common/task_graph.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "obs/obs.h"
#include "sbr/internal.h"
#include "sbr/sbr.h"

namespace tdg::sbr {

namespace {

void trailing_syr2k(const BandReductionOptions& opts, ConstMatrixView v,
                    ConstMatrixView w, MatrixView atail) {
  if (opts.use_square_syr2k) {
    la::syr2k_lower_square(-1.0, v, w, 1.0, atail, opts.syr2k_block);
  } else {
    la::syr2k_lower(-1.0, v, w, 1.0, atail);
  }
}

/// One width-w panel at column j of the current outer block: JIT refresh
/// with the block's accumulated (Y, Z), panel QR (skipped when `pre` hands
/// in a prefactored WY — the DAG path's look-ahead QR, which also already
/// zeroed below R), A_cur V via symm + corrections, W, accumulation into
/// (y, z), and the panel record. Returns the new accumulated column count.
/// Shared verbatim by the barrier and DAG paths — bitwise identity between
/// the two schedules rests on this being the single implementation.
/// With keep_all == false only the newest panel is retained (the partial
/// -panel fixups read f.panels.back() only), so a values-only reduction
/// holds one O(n*b) panel at a time instead of the O(n^2/2) full set.
index_t panel_step(MatrixView a, index_t b, index_t j, index_t cols,
                   Matrix& y, Matrix& z, BandFactor& f,
                   lapack::WyFactor* pre, bool keep_all) {
  const index_t n = a.rows;
  const index_t m = n - j - b;       // rows of the below-band panel
  const index_t w = std::min(b, m);  // panel width

  obs::Span panel_span("dbbr.panel");
  panel_span.attr("j", j);
  panel_span.attr("width", w);

  if (cols > 0) {
    // JIT refresh of this panel's column block (rows j..n-1): apply all
    // updates accumulated in this outer block. Paper Algorithm 1, l.8-12.
    MatrixView blk = a.block(j, j, n - j, w);
    la::gemm(Trans::kNo, Trans::kTrans, -1.0, y.block(j, 0, n - j, cols),
             z.block(j, 0, w, cols), 1.0, blk);
    la::gemm(Trans::kNo, Trans::kTrans, -1.0, z.block(j, 0, n - j, cols),
             y.block(j, 0, w, cols), 1.0, blk);
  }

  lapack::WyFactor wy;
  if (pre != nullptr) {
    wy = std::move(*pre);  // QR + zero_below_r already ran in the QR node
  } else {
    wy = lapack::panel_qr(a.block(j + b, j, m, w));
    detail::zero_below_r(a, j, b, w);
  }

  // P = A_cur V = A_stale V - Y (Z^T V) - Z (Y^T V)  (rows j+b..n-1).
  Matrix p(m, w);
  la::symm_lower(1.0, a.block(j + b, j + b, m, m), wy.v.view(), 0.0,
                 p.view());
  if (cols > 0) {
    Matrix zv(cols, w);
    la::gemm(Trans::kTrans, Trans::kNo, 1.0, z.block(j + b, 0, m, cols),
             wy.v.view(), 0.0, zv.view());
    la::gemm(Trans::kNo, Trans::kNo, -1.0, y.block(j + b, 0, m, cols),
             zv.view(), 1.0, p.view());
    Matrix yv(cols, w);
    la::gemm(Trans::kTrans, Trans::kNo, 1.0, y.block(j + b, 0, m, cols),
             wy.v.view(), 0.0, yv.view());
    la::gemm(Trans::kNo, Trans::kNo, -1.0, z.block(j + b, 0, m, cols),
             yv.view(), 1.0, p.view());
  }
  Matrix wmat = detail::zy_w_from_av(p.view(), wy.v.view(), wy.t.view());

  copy(wy.v.view(), y.block(j + b, cols, m, w));
  copy(wmat.view(), z.block(j + b, cols, m, w));

  if (!keep_all) f.panels.clear();
  f.panels.push_back({j + b, std::move(wy.v), std::move(wy.t)});
  return cols + w;
}

/// Static geometry of one outer step, precomputed by replaying the loop
/// bounds arithmetically so the DAG can be built before any numbers move.
struct StepGeom {
  index_t i = 0;       // first panel column of the block
  index_t cols = 0;    // accumulated reflector columns
  index_t t0 = 0;      // trailing start (last j + w)
  index_t last_w = 0;  // width of the block's last panel
  index_t blk = 0;     // square tile size of the trailing syr2k
  index_t nblk = 0;    // tile grid dimension
};

std::vector<StepGeom> dbbr_geometry(index_t n, index_t b, index_t k,
                                    index_t syr2k_block) {
  std::vector<StepGeom> steps;
  for (index_t i = 0; n - i - b >= 1; i += k) {
    StepGeom s;
    s.i = i;
    for (index_t j = i; j < i + k && n - j - b >= 1; j += b) {
      const index_t w = std::min(b, n - j - b);
      s.cols += w;
      s.t0 = j + w;
      s.last_w = w;
    }
    const index_t nt = n - s.t0;  // always >= 1: w <= b and n - j - b >= 1
    s.blk = la::syr2k_square_block_size(nt, syr2k_block);
    s.nblk = (nt + s.blk - 1) / s.blk;
    steps.push_back(s);
  }
  return steps;
}

/// The look-ahead DAG schedule. Same arithmetic as the barrier loop below,
/// re-expressed as a task graph; see the file header for the node layout.
void dbbr_graph(MatrixView a, const BandReductionOptions& opts, Matrix& y,
                Matrix& z, BandFactor& f, obs::Span& dbbr_span) {
  const index_t n = a.rows;
  const index_t b = opts.b;
  const index_t k = opts.k;
  const std::vector<StepGeom> steps =
      dbbr_geometry(n, b, k, opts.syr2k_block);
  const index_t ns = static_cast<index_t>(steps.size());
  if (ns == 0) return;

  using graph::NodeClass;
  using graph::TaskGraph;
  TaskGraph g;

  // Look-ahead QR results, one slot per step, written by QR_s and consumed
  // by PC_s (ordered by the qr -> pc edge). Preallocated so no container
  // mutates while pool workers hold references.
  std::vector<lapack::WyFactor> pre(ns);
  std::vector<char> pre_ok(ns, 0);

  // tile ids of the previous step, grouped by tile-column bj (so the QR
  // node can depend on exactly the columns it reads).
  std::vector<std::vector<TaskGraph::NodeId>> prev_cols;

  for (index_t s = 0; s < ns; ++s) {
    const StepGeom& st = steps[s];

    // QR_s (s >= 1): prefactor the block's first panel as soon as the tile
    // columns it reads — trailing columns [i, i+w) of step s-1, whose
    // trailing region starts at steps[s-1].t0 — have landed. For full
    // previous blocks t0_{s-1} == i, so this is the first ceil(w/blk)
    // columns of the previous tile grid.
    TaskGraph::NodeId qr = -1;
    if (s > 0 && opts.lookahead >= 1) {
      const index_t w0 = std::min(b, n - st.i - b);
      const index_t span_cols = st.i + w0 - steps[s - 1].t0;
      const index_t prev_blk = steps[s - 1].blk;
      const index_t ncov =
          std::min<index_t>(steps[s - 1].nblk,
                            (span_cols + prev_blk - 1) / prev_blk);
      std::vector<TaskGraph::NodeId> deps;
      for (index_t c = 0; c < ncov; ++c) {
        deps.insert(deps.end(), prev_cols[c].begin(), prev_cols[c].end());
      }
      qr = g.add(
          "dbbr.lookahead_qr", NodeClass::kPooled,
          [&a, &steps, &pre, &pre_ok, s, n, b] {
            const index_t j = steps[s].i;
            const index_t m = n - j - b;
            const index_t w = std::min(b, m);
            pre[s] = lapack::panel_qr(a.block(j + b, j, m, w));
            detail::zero_below_r(a, j, b, w);
            pre_ok[s] = 1;
          },
          deps);
    }

    // PC_s: the whole panel chain of the block. Reads the full trailing
    // matrix of step s-1 (the first symm spans it), so it depends on every
    // previous tile — plus QR_s, whose result it consumes.
    std::vector<TaskGraph::NodeId> pc_deps;
    for (const auto& col : prev_cols) {
      pc_deps.insert(pc_deps.end(), col.begin(), col.end());
    }
    if (qr >= 0) pc_deps.push_back(qr);
    const bool keep_all = opts.want_factors;
    const TaskGraph::NodeId pc = g.add(
        "dbbr.panel_chain", NodeClass::kDriver,
        [&a, &steps, &pre, &pre_ok, &y, &z, &f, s, n, b, k, keep_all] {
          // Driver nodes run on the run() caller thread, which still holds
          // the request's cancel::Scope — one poll per outer block.
          cancel::poll("dbbr_block");
          const StepGeom& cur = steps[s];
          y.set_zero();
          z.set_zero();
          index_t cols = 0;
          for (index_t j = cur.i; j < cur.i + k && n - j - b >= 1; j += b) {
            lapack::WyFactor* p =
                (j == cur.i && pre_ok[s]) ? &pre[s] : nullptr;
            cols = panel_step(a, b, j, cols, y, z, f, p, keep_all);
          }
        },
        pc_deps);

    // T_s: the trailing syr2k as independent square tiles (disjoint C
    // regions — the anti-diagonal barriers of the pooled schedule carry no
    // ordering information and are simply dropped). Tile-column 0 is added
    // first so the FIFO ready queue front-runs the columns QR_{s+1} waits
    // on.
    std::vector<std::vector<TaskGraph::NodeId>> cur_cols(st.nblk);
    for (index_t bj = 0; bj < st.nblk; ++bj) {
      for (index_t bi = bj; bi < st.nblk; ++bi) {
        cur_cols[bj].push_back(g.add(
            "dbbr.syr2k_tile", NodeClass::kPooled,
            [&a, &steps, &y, &z, s, bi, bj, n] {
              const StepGeom& cur = steps[s];
              const index_t nt = n - cur.t0;
              la::detail::syr2k_square_tile(
                  -1.0, y.block(cur.t0, 0, nt, cur.cols),
                  z.block(cur.t0, 0, nt, cur.cols), 1.0,
                  a.block(cur.t0, cur.t0, nt, nt), cur.blk, bi, bj);
            },
            {pc}));
      }
    }
    prev_cols = std::move(cur_cols);
  }

  // FIX: the final block ended on a partial panel (w < b) — its remaining
  // in-band columns still take Q^T from the left. The touched region
  // overlaps the last trailing update, so order after every last-step tile.
  if (steps[ns - 1].last_w < b) {
    std::vector<TaskGraph::NodeId> deps;
    for (const auto& col : prev_cols) {
      deps.insert(deps.end(), col.begin(), col.end());
    }
    g.add(
        "dbbr.fixup", NodeClass::kDriver,
        [&a, &f, b] {
          const Panel& last = f.panels.back();
          const index_t lw = last.v.cols();
          const index_t lj = last.row0 - b;
          lapack::apply_block_reflector_left(
              last.v.view(), last.t.view(), Trans::kTrans,
              a.block(last.row0, lj + lw, last.v.rows(), b - lw));
        },
        deps);
  }

  const TaskGraph::Stats stats = g.run();
  dbbr_span.attr("tg_overlap_pct",
                 static_cast<long long>(100.0 * stats.overlap_fraction()));
}

}  // namespace

BandFactor dbbr(MatrixView a, const BandReductionOptions& opts) {
  const index_t n = a.rows;
  const index_t b = opts.b;
  const index_t k = opts.k;
  TDG_CHECK(a.rows == a.cols, "dbbr: matrix must be square");
  TDG_CHECK(b >= 1 && b < std::max<index_t>(n, 2), "dbbr: need 1 <= b < n");
  TDG_CHECK(k >= b && k % b == 0, "dbbr: k must be a positive multiple of b");
  // Drive the parallel BLAS-3 engine at the requested width for the whole
  // reduction (JIT panel GEMMs, symm, and the fat trailing syr2k).
  ThreadLimit thread_scope(opts.threads);

  obs::Span dbbr_span("dbbr");
  dbbr_span.attr("n", n);
  dbbr_span.attr("b", b);
  dbbr_span.attr("k", k);

  BandFactor f;
  f.n = n;
  f.b = b;

  Matrix y(n, k);  // accumulated V panels (global row indexing)
  Matrix z(n, k);  // accumulated W panels

  // DAG schedule: bitwise-identical to the barrier loop below (same tile
  // grid, same kernels, same inputs). Falls back under an active op trace —
  // graph nodes run on pool workers, which carry no recorder, so only the
  // barrier path can reproduce the canonical trace order.
  if (opts.lookahead >= 1 && opts.use_square_syr2k &&
      trace::active() == nullptr) {
    dbbr_graph(a, opts, y, z, f, dbbr_span);
    if (!opts.want_factors) f.panels.clear();
    return f;
  }

  index_t i = 0;
  while (n - i - b >= 1) {
    cancel::poll("dbbr_block");
    y.set_zero();
    z.set_zero();
    index_t cols = 0;  // accumulated reflector columns in this outer block
    index_t t0 = i;    // start of the stale trailing region

    for (index_t j = i; j < i + k && n - j - b >= 1; j += b) {
      cols = panel_step(a, b, j, cols, y, z, f, nullptr, opts.want_factors);
      t0 = j + std::min(b, n - j - b);  // columns < t0 final; >= t0 stale
    }

    if (cols > 0 && t0 < n) {
      // One fat trailing update for the whole outer block (inner dim = cols).
      obs::Span syr2k_span("dbbr.syr2k");
      syr2k_span.attr("rows", n - t0);
      syr2k_span.attr("inner", cols);
      trailing_syr2k(opts, y.block(t0, 0, n - t0, cols),
                     z.block(t0, 0, n - t0, cols),
                     a.block(t0, t0, n - t0, n - t0));
    }
    if (!f.panels.empty()) {
      // Final partial panel of the block (w < b): columns [j+w, j+b) stay
      // inside the band but their below-diagonal rows still receive the last
      // panel's Q^T from the left. (For full panels w == b this is empty.)
      const Panel& last = f.panels.back();
      const index_t lw = last.v.cols();
      const index_t lj = last.row0 - b;
      if (lw < b && lj >= i) {
        lapack::apply_block_reflector_left(
            last.v.view(), last.t.view(), Trans::kTrans,
            a.block(last.row0, lj + lw, last.v.rows(), b - lw));
      }
    }
    i += k;
  }
  if (!opts.want_factors) f.panels.clear();
  return f;
}

}  // namespace tdg::sbr
