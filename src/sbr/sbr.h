// Stage 1 of two-stage tridiagonalization: reduction of a dense symmetric
// matrix to band form (bandwidth b).
//
// Two algorithms:
//
//  * sy2sb   — classic single-blocking successive band reduction (SBR), the
//              MAGMA `dsy2sb` analogue: panel QR with block size b, then a
//              full trailing-matrix update per panel. The syr2k inner
//              dimension equals b, which is exactly what starves modern GPUs
//              (Table 1 of the paper).
//  * dbbr    — the paper's double-blocking band reduction (Algorithm 1).
//              Panels of width b are factorised and their (Y, Z) = (V, W)
//              ZY-representation columns accumulated; only the *next* panel
//              is updated just-in-time. Once k columns are accumulated, one
//              fat trailing syr2k (inner dimension k >> b) is applied. Same
//              arithmetic, GPU-saturating shapes, and b can shrink to 32 to
//              cheapen the subsequent bulge chasing.
//
// Both return the reflector panels needed for the stage-1 back
// transformation (src/backtransform).
#pragma once

#include <vector>

#include "la/matrix.h"

namespace tdg::sbr {

/// One compact-WY panel of the band reduction: Q_p = I - V T V^T acting on
/// global rows [row0, row0 + v.rows).
struct Panel {
  index_t row0 = 0;
  Matrix v;  // m x w explicit unit-lower-trapezoidal reflectors
  Matrix t;  // w x w upper-triangular block factor
};

/// Reflector set of a completed band reduction: A = Q1 * B * Q1^T with
/// Q1 = Q_panel0 * Q_panel1 * ... (in factorisation order).
struct BandFactor {
  index_t n = 0;
  index_t b = 0;
  std::vector<Panel> panels;
};

struct BandReductionOptions {
  index_t b = 32;  // target bandwidth
  /// DBBR outer block (syr2k inner dimension); must be a multiple of b.
  index_t k = 256;
  /// Use the paper's square-block syr2k schedule for trailing updates
  /// (Section 5.1) instead of the reference column-sweep syr2k.
  bool use_square_syr2k = true;
  /// Square-block size for the custom syr2k (0 = default).
  index_t syr2k_block = 0;
  /// Thread budget for the BLAS-3 engine driving the panel and trailing
  /// updates (0 = inherit the ambient ThreadLimit / TDG_THREADS default).
  /// Any thread count produces bitwise-identical results.
  int threads = 0;
  /// Look-ahead depth (0 = the barrier schedule). At depth >= 1 the outer
  /// loop runs as a task DAG (common/task_graph.h): the trailing syr2k's
  /// square tiles execute barrier-free, and the next step's first panel QR
  /// overlaps the tiles it does not read — only the column slice it touches
  /// orders it. Only depth 1 carries extra bitwise-preserving work to
  /// front-run (the in-block panel chain is serial through the accumulated
  /// (Y, Z)), so deeper values behave as 1. Results are bitwise identical
  /// to the barrier schedule for any depth and thread count. Requires
  /// use_square_syr2k; falls back to the barrier path under an active op
  /// trace (pool workers carry no recorder).
  index_t lookahead = 0;
  /// Retain the reflector panels for the stage-1 back transformation. When
  /// false (a values-only request) the reduction keeps at most one panel
  /// live at a time — O(n*b) transient instead of the O(n^2/2) full set —
  /// and returns an empty BandFactor::panels. The arithmetic (and the band
  /// matrix left in `a`) is bit-for-bit unchanged.
  bool want_factors = true;
};

/// Classic SBR. On return the lower triangle of `a` holds the band matrix
/// (entries beyond the band are zeroed). Returns the panel reflectors.
BandFactor sy2sb(MatrixView a, index_t b,
                 const BandReductionOptions& opts = {});

/// Double-blocking band reduction (paper Algorithm 1). Same contract as
/// sy2sb; `opts.k` controls the outer block size.
BandFactor dbbr(MatrixView a, const BandReductionOptions& opts);

}  // namespace tdg::sbr
