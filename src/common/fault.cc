#include "common/fault.h"

#include <cstdlib>
#include <mutex>

#include "common/check.h"
#include "obs/metrics.h"

namespace tdg::fault {

namespace detail {

std::atomic<int> g_armed{0};

namespace {

struct State {
  std::mutex mu;
  std::string site;
  long long trigger = 1;
  long long fires = 1;  // -1 = unlimited
  long long hits = 0;
  long long last_fired_hit = 0;  // for the injection message
};

State& state() {
  static State s;
  return s;
}

// Arm from the environment before main() so env-driven runs (the CI fault
// matrix) need no code changes. g_armed is constant-initialized, so the
// ordering with other static initializers is benign.
struct EnvInit {
  EnvInit() {
    if (const char* e = std::getenv("TDG_FAULT_INJECT")) {
      (void)arm_from_spec(e);
    }
  }
};
const EnvInit env_init;

}  // namespace

bool should_fire_slow(const char* site) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.site != site) return false;
  ++s.hits;
  const bool fire = s.hits >= s.trigger &&
                    (s.fires < 0 || s.hits < s.trigger + s.fires);
  if (fire) {
    s.last_fired_hit = s.hits;
    // Always-on by design: injected-fault telemetry must be visible in
    // metrics snapshots even when the process never armed TDG_METRICS.
    static obs::Counter* const fires_counter =
        obs::Registry::global().counter("fault.fires", obs::Gating::kAlways);
    fires_counter->inc();
  }
  return fire;
}

}  // namespace detail

void maybe_inject(const char* site) {
  if (!should_fire(site)) return;
  long long hit = 0;
  {
    detail::State& s = detail::state();
    std::lock_guard<std::mutex> lock(s.mu);
    hit = s.last_fired_hit;
  }
  throw Error(ErrorCode::kFaultInjected,
              "tdg fault injected at site '" + std::string(site) + "' (hit " +
                  std::to_string(hit) + ")",
              {site, hit, -1});
}

void arm(const std::string& site, long long trigger, long long fires) {
  detail::State& s = detail::state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.site = site;
  s.trigger = trigger < 1 ? 1 : trigger;
  s.fires = fires;
  s.hits = 0;
  s.last_fired_hit = 0;
  detail::g_armed.store(site.empty() ? 0 : 1, std::memory_order_relaxed);
}

void disarm() {
  detail::State& s = detail::state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.site.clear();
  s.hits = 0;
  detail::g_armed.store(0, std::memory_order_relaxed);
}

bool arm_from_spec(const std::string& spec) {
  const auto first = spec.find(':');
  const std::string site = spec.substr(0, first);
  if (site.empty()) {
    disarm();
    return false;
  }
  long long trigger = 1;
  long long fires = 1;
  if (first != std::string::npos) {
    const auto second = spec.find(':', first + 1);
    const std::string trig_s =
        spec.substr(first + 1, second == std::string::npos
                                   ? std::string::npos
                                   : second - first - 1);
    char* end = nullptr;
    trigger = std::strtoll(trig_s.c_str(), &end, 10);
    if (trig_s.empty() || *end != '\0' || trigger < 1) {
      disarm();
      return false;
    }
    if (second != std::string::npos) {
      const std::string fires_s = spec.substr(second + 1);
      if (fires_s == "*") {
        fires = -1;
      } else {
        fires = std::strtoll(fires_s.c_str(), &end, 10);
        if (fires_s.empty() || *end != '\0' || fires < 1) {
          disarm();
          return false;
        }
      }
    }
  }
  arm(site, trigger, fires);
  return true;
}

long long hits() {
  detail::State& s = detail::state();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.site.empty() ? 0 : s.hits;
}

}  // namespace tdg::fault
