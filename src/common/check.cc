#include "common/check.h"

#include <sstream>

namespace tdg {

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kUnknown: return "unknown";
    case ErrorCode::kInvalidInput: return "invalid_input";
    case ErrorCode::kNoConvergence: return "no_convergence";
    case ErrorCode::kPipelineStall: return "pipeline_stall";
    case ErrorCode::kCacheIo: return "cache_io";
    case ErrorCode::kFaultInjected: return "fault_injected";
    case ErrorCode::kCancelled: return "cancelled";
    case ErrorCode::kOverloaded: return "overloaded";
  }
  return "unknown";
}

namespace detail {

void check_failed(const char* cond, const char* file, int line,
                  const std::string& msg) {
  std::ostringstream os;
  os << "tdg check failed: (" << cond << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(ErrorCode::kInvalidInput, os.str());
}

}  // namespace detail
}  // namespace tdg
