#include "common/check.h"

#include <sstream>

namespace tdg::detail {

void check_failed(const char* cond, const char* file, int line,
                  const std::string& msg) {
  std::ostringstream os;
  os << "tdg check failed: (" << cond << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace tdg::detail
