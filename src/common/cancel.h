// Cooperative cancellation and deadlines — the robustness primitive the
// serve layer (src/serve) threads through the solver pipeline.
//
// A cancel::Token is a tiny shared flag + absolute deadline that a caller
// owns and a running solve observes. Propagation is cooperative and
// phase-granular: the drivers install the current request's token in a
// thread-local Scope (like trace::Scope / ThreadLimit), and the pipeline
// polls it at its natural progress boundaries — the sy2sb / DBBR outer
// block loop, each bulge-chase sweep claim, each D&C merge node, and the
// back-transform panel loop. A poll that observes cancellation (manual or
// deadline) throws Error(ErrorCode::kCancelled), which unwinds through the
// same exception-safe join/poison machinery every other typed failure uses:
// pool regions rethrow at the join, chase gates poison, task graphs cancel
// their unstarted nodes. Nothing is left half-locked, so the pool and the
// plan cache stay reusable — a follow-up request on the same process
// produces bitwise-identical results to a fresh one.
//
// Cost model (the tdg::fault contract): with no token installed a poll is
// one thread-local pointer load + null test. With a token installed it adds
// one relaxed atomic load, plus one steady_clock read only when a deadline
// is set. Polls sit at phase boundaries (thousands of flops apart at
// minimum), so the armed cost is noise.
//
// The token is intentionally one-way: once cancelled or expired it stays
// so; tokens are not reusable across requests (the serve layer allocates
// one per request). Pool workers do not inherit the dispatcher's Scope —
// code that fans out and must stay cancellable captures current() before
// dispatch and polls the captured pointer (see bulge_chase_parallel.cc).
#pragma once

#include <atomic>
#include <chrono>

namespace tdg::cancel {

/// Shared cancellation state for one request. The owner calls cancel()
/// and/or set_deadline*(); the solve polls. All methods are thread-safe.
class Token {
 public:
  Token() = default;
  Token(const Token&) = delete;
  Token& operator=(const Token&) = delete;

  /// Request cancellation. Irreversible.
  void cancel() noexcept { cancelled_.store(true, std::memory_order_release); }

  /// Absolute deadline; polls past this instant observe expiry.
  void set_deadline(std::chrono::steady_clock::time_point tp) noexcept {
    deadline_us_.store(
        std::chrono::duration_cast<std::chrono::microseconds>(
            tp.time_since_epoch())
            .count(),
        std::memory_order_release);
  }

  /// Deadline `ms` milliseconds from now (<= 0 expires immediately at the
  /// next poll).
  void set_deadline_in_ms(double ms) noexcept {
    set_deadline(std::chrono::steady_clock::now() +
                 std::chrono::microseconds(static_cast<long long>(ms * 1e3)));
  }

  bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_acquire);
  }

  bool expired() const noexcept {
    const long long d = deadline_us_.load(std::memory_order_acquire);
    return d != 0 && now_us() >= d;
  }

  /// True when a poll against this token would throw.
  bool stop_requested() const noexcept { return cancelled() || expired(); }

  /// Milliseconds until the deadline (negative once past); +infinity when
  /// no deadline is set.
  double remaining_ms() const noexcept;

 private:
  static long long now_us() noexcept {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  std::atomic<bool> cancelled_{false};
  std::atomic<long long> deadline_us_{0};  // 0 = no deadline
};

/// The token installed on this thread (nullptr when none). Pool workers
/// start with none — capture before fanning out.
const Token* current() noexcept;

/// RAII thread-local installation of `token` (may be nullptr = "no token",
/// which shadows any outer scope — batch workers run each problem under
/// exactly its own token). Restores the previous token on destruction.
class Scope {
 public:
  explicit Scope(const Token* token) noexcept;
  ~Scope();
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  const Token* prev_;
};

/// Throw Error(ErrorCode::kCancelled) with `stage` context when `token`
/// (may be nullptr) has been cancelled or its deadline has passed.
/// `stage` must be a string literal (it rides in the ErrorContext).
void poll(const Token* token, const char* stage);

/// Poll the thread-local current() token. The disarmed cost is one
/// thread-local load + null test.
inline void poll(const char* stage) {
  const Token* t = current();
  if (t != nullptr) poll(t, stage);
}

/// The process-wide stall deadline in milliseconds (TDG_SPIN_TIMEOUT_MS,
/// read once; <= 0 disables). Shared by the bulge-chase spin gates and the
/// task-graph drain watchdog, so one knob bounds every wait in the library.
int stall_timeout_ms();

/// Default for stall_timeout_ms() when the environment does not override:
/// a healthy pipeline advances its gates every few microseconds, so a
/// minute of zero progress is a wedge, not a slow run.
inline constexpr int kDefaultStallTimeoutMs = 60000;

}  // namespace tdg::cancel
