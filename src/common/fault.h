// Deterministic fault injection — the test harness for every recovery path.
//
// A fault site is a named point in the library (`"pool_task"`, `"bc_sweep"`,
// `"steqr_noconv"`, `"taskgraph_node"`, ... — registry in
// docs/ALGORITHMS.md §11). Arming a site
// makes it fire on a chosen hit: sites wired through maybe_inject() throw
// Error(kFaultInjected); sites wired through should_fire() trigger the
// stage's own natural failure (steqr raises its real kNoConvergence, the
// plan cache fails its save), so injected faults exercise exactly the error
// paths a genuine failure would take.
//
// Arming is either programmatic (arm()/Scoped, used by tests) or via the
// TDG_FAULT_INJECT environment variable read once at startup:
//
//   TDG_FAULT_INJECT=site:trigger[:fires]
//
// fires the site on hit number `trigger` (1-based, counted per process),
// `fires` consecutive hits long (default 1; "*" = every hit from `trigger`
// on). The hit counter is advanced under a mutex, so firing is deterministic
// for a deterministic hit order and at-most-once per hit under races.
//
// Cost when nothing is armed: one relaxed atomic load per site visit — the
// hooks are compiled in always, including release builds.
#pragma once

#include <atomic>
#include <string>

namespace tdg::fault {

namespace detail {
extern std::atomic<int> g_armed;  // 0 = nothing armed: the fast path
bool should_fire_slow(const char* site);
}  // namespace detail

/// True when `site` is armed and this visit falls inside the firing window.
/// Each call counts as one hit of the armed site. For sites whose failure
/// behavior is caller-defined (forced non-convergence, failed save).
inline bool should_fire(const char* site) {
  if (detail::g_armed.load(std::memory_order_relaxed) == 0) return false;
  return detail::should_fire_slow(site);
}

/// Throw Error(ErrorCode::kFaultInjected) when should_fire(site).
void maybe_inject(const char* site);

/// Arm `site` to fire on hit `trigger` (1-based) for `fires` consecutive
/// hits (-1 = every hit from `trigger` on). Replaces any previous arming and
/// resets the hit counter.
void arm(const std::string& site, long long trigger = 1, long long fires = 1);

/// Disarm; site visits return to the single-load fast path.
void disarm();

/// Parse and arm a "site:trigger[:fires]" spec (the TDG_FAULT_INJECT
/// format; fires may be "*"). Returns false and leaves the state disarmed
/// on a malformed spec.
bool arm_from_spec(const std::string& spec);

/// Hits recorded for the currently armed site since arm() (0 if disarmed).
long long hits();

/// RAII arming for tests: disarms on scope exit.
class Scoped {
 public:
  explicit Scoped(const std::string& site, long long trigger = 1,
                  long long fires = 1) {
    arm(site, trigger, fires);
  }
  ~Scoped() { disarm(); }
  Scoped(const Scoped&) = delete;
  Scoped& operator=(const Scoped&) = delete;
};

}  // namespace tdg::fault
