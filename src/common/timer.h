// Wall-clock timing helpers used by benches and examples.
#pragma once

#include <chrono>

namespace tdg {

/// Monotonic wall-clock stopwatch. Starts on construction.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or last reset().
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace tdg
