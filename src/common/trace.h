// Operation tracing.
//
// The paper's evaluation hinges on *which kernel shapes* an algorithm emits:
// skinny-k GEMM/SYR2K calls run far below peak on an H100 while fat ones run
// near peak. To project paper-scale device times from our CPU runs, the BLAS
// layer records every call (kind + shape) into the active Recorder; the GPU
// device model (src/gpumodel) then prices the recorded trace.
//
// Recording is opt-in via an RAII scope and thread-local, so concurrent
// algorithm runs never interleave their traces.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tdg::trace {

enum class OpKind {
  kGemm,         // C(m x n) += A(m x k) * B(k x n)
  kSyr2k,        // C(n x n, lower) += A(n x k) B^T + B A^T
  kSymv,         // y(n) += A(n x n, symmetric) x
  kGemv,         // y(m) += A(m x n) x
  kGer,          // A(m x n) += x y^T
  kSyr2,         // A(n x n, lower) += x y^T + y x^T
  kBatchedGemm,  // batch GEMMs of identical shape
  kBcStep,       // one bulge-chase block step (bandwidth in m)
};

/// One recorded kernel invocation. For kBcStep, m = bandwidth b.
struct Op {
  OpKind kind;
  std::int64_t m = 0;
  std::int64_t n = 0;
  std::int64_t k = 0;
  std::int64_t batch = 1;
};

/// FP64 floating-point operation count of an op (multiply+add counted as 2).
double flops(const Op& op);

/// Short human-readable form, e.g. "gemm(512x64x1024)".
std::string to_string(const Op& op);

/// Accumulates ops; cheap enough to leave enabled around full algorithm runs.
class Recorder {
 public:
  void record(const Op& op) { ops_.push_back(op); }
  const std::vector<Op>& ops() const { return ops_; }
  void clear() { ops_.clear(); }

  /// Total FP64 flops across all recorded ops.
  double total_flops() const;

 private:
  std::vector<Op> ops_;
};

/// Recorder receiving ops on this thread, or nullptr when tracing is off.
Recorder* active();

/// Record into the active recorder, if any. Called from the BLAS layer.
void record(const Op& op);

/// RAII: routes this thread's ops into `r` for the scope's lifetime.
class Scope {
 public:
  explicit Scope(Recorder& r);
  ~Scope();
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  Recorder* prev_;
};

}  // namespace tdg::trace
