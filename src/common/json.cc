#include "common/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <string_view>

namespace tdg::json {

namespace {

struct Parser {
  const char* p;
  const char* end;
  int depth = 0;

  void skip_ws() {
    while (p < end && std::isspace(static_cast<unsigned char>(*p))) ++p;
  }

  bool parse_string(std::string* out) {
    if (p >= end || *p != '"') return false;
    ++p;
    out->clear();
    while (p < end && *p != '"') {
      if (*p == '\\') {
        ++p;
        if (p >= end) return false;
        switch (*p) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          default: return false;  // \uXXXX etc: not produced by the writers
        }
        ++p;
      } else {
        out->push_back(*p++);
      }
    }
    if (p >= end) return false;
    ++p;  // closing quote
    return true;
  }

  bool parse_value(Value* out) {
    if (++depth > 64) return false;
    skip_ws();
    if (p >= end) return false;
    bool ok = false;
    if (*p == '{') {
      ++p;
      out->kind = Value::kObject;
      skip_ws();
      if (p < end && *p == '}') {
        ++p;
        ok = true;
      } else {
        while (p < end) {
          skip_ws();
          std::string key;
          if (!parse_string(&key)) break;
          skip_ws();
          if (p >= end || *p != ':') break;
          ++p;
          Value v;
          if (!parse_value(&v)) break;
          out->obj.emplace_back(std::move(key), std::move(v));
          skip_ws();
          if (p < end && *p == ',') {
            ++p;
            continue;
          }
          if (p < end && *p == '}') {
            ++p;
            ok = true;
          }
          break;
        }
      }
    } else if (*p == '[') {
      ++p;
      out->kind = Value::kArray;
      skip_ws();
      if (p < end && *p == ']') {
        ++p;
        ok = true;
      } else {
        while (p < end) {
          Value v;
          if (!parse_value(&v)) break;
          out->arr.push_back(std::move(v));
          skip_ws();
          if (p < end && *p == ',') {
            ++p;
            continue;
          }
          if (p < end && *p == ']') {
            ++p;
            ok = true;
          }
          break;
        }
      }
    } else if (*p == '"') {
      out->kind = Value::kString;
      ok = parse_string(&out->str);
    } else if (end - p >= 4 && std::string_view(p, 4) == "true") {
      out->kind = Value::kBool;
      out->b = true;
      p += 4;
      ok = true;
    } else if (end - p >= 5 && std::string_view(p, 5) == "false") {
      out->kind = Value::kBool;
      p += 5;
      ok = true;
    } else if (end - p >= 4 && std::string_view(p, 4) == "null") {
      p += 4;
      ok = true;
    } else {
      char* num_end = nullptr;
      const std::string text(p, end);  // strtod needs a terminated buffer
      out->num = std::strtod(text.c_str(), &num_end);
      if (num_end != text.c_str()) {
        out->kind = Value::kNumber;
        p += num_end - text.c_str();
        ok = true;
      }
    }
    --depth;
    return ok;
  }
};

}  // namespace

bool parse(const std::string& text, Value* out) {
  Parser parser{text.data(), text.data() + text.size()};
  if (!parser.parse_value(out)) return false;
  parser.skip_ws();
  return parser.p == parser.end;
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace tdg::json
