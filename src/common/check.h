// Error handling for the tdg library.
//
// All public entry points validate their arguments with TDG_CHECK, which
// throws tdg::Error (derived from std::runtime_error) carrying the failed
// condition and source location. Internal invariants use TDG_ASSERT, which
// compiles to nothing in release builds unless TDG_ENABLE_ASSERTS is set.
#pragma once

#include <stdexcept>
#include <string>

namespace tdg {

/// Exception thrown on any precondition or numerical-state violation.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void check_failed(const char* cond, const char* file, int line,
                               const std::string& msg);
}  // namespace detail

}  // namespace tdg

/// Validate a user-facing precondition; throws tdg::Error on failure.
#define TDG_CHECK(cond, msg)                                            \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::tdg::detail::check_failed(#cond, __FILE__, __LINE__, (msg));    \
    }                                                                   \
  } while (0)

#if defined(TDG_ENABLE_ASSERTS)
#define TDG_ASSERT(cond) TDG_CHECK(cond, "internal invariant violated")
#else
#define TDG_ASSERT(cond) ((void)0)
#endif
