// Error handling for the tdg library.
//
// All public entry points validate their arguments with TDG_CHECK, which
// throws tdg::Error (derived from std::runtime_error) carrying the failed
// condition and source location. Internal invariants use TDG_ASSERT, which
// compiles to nothing in release builds unless TDG_ENABLE_ASSERTS is set.
//
// Every Error carries an ErrorCode so callers can branch on the failure
// class (retry a kNoConvergence with a different solver, surface a
// kPipelineStall with its coordinates, treat kCacheIo as a soft
// degradation) and an ErrorContext with machine-readable coordinates of the
// failure — which pipeline stage threw, at which index (sweep, eigenvalue,
// row — stage-defined), after how many iterations. See
// docs/ALGORITHMS.md §11 for the taxonomy and the recovery chains built on
// top of it.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace tdg {

/// Failure classes. Recovery policy branches on these, never on message
/// text.
enum class ErrorCode {
  kUnknown = 0,    // legacy untyped throw
  kInvalidInput,   // precondition violation (TDG_CHECK, NaN/Inf screen)
  kNoConvergence,  // an iterative solver gave up (steqr, secular)
  kPipelineStall,  // a progress gate was poisoned or hit its spin deadline
  kCacheIo,        // plan-cache file I/O or locking failure
  kFaultInjected,  // tdg::fault fired at a registered site
  kCancelled,      // cooperative cancellation / deadline (common/cancel.h)
  kOverloaded,     // serve-layer admission reject or circuit breaker shed
};

const char* to_string(ErrorCode code);

/// Machine-readable coordinates of a failure. `stage` must point at a
/// string literal (errors cross thread joins; no ownership is taken).
struct ErrorContext {
  const char* stage = "";       // e.g. "steqr", "bulge_chase", "secular"
  std::int64_t index = -1;      // stage-defined: eigenvalue / sweep / row
  std::int64_t iteration = -1;  // iteration count or secondary coordinate
};

/// Exception thrown on any precondition or numerical-state violation.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
  Error(ErrorCode code, const std::string& what, ErrorContext ctx = {})
      : std::runtime_error(what), code_(code), ctx_(ctx) {}

  ErrorCode code() const noexcept { return code_; }
  const ErrorContext& context() const noexcept { return ctx_; }

 private:
  ErrorCode code_ = ErrorCode::kUnknown;
  ErrorContext ctx_{};
};

namespace detail {
[[noreturn]] void check_failed(const char* cond, const char* file, int line,
                               const std::string& msg);
}  // namespace detail

}  // namespace tdg

/// Validate a user-facing precondition; throws tdg::Error with
/// ErrorCode::kInvalidInput on failure.
#define TDG_CHECK(cond, msg)                                            \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::tdg::detail::check_failed(#cond, __FILE__, __LINE__, (msg));    \
    }                                                                   \
  } while (0)

#if defined(TDG_ENABLE_ASSERTS)
#define TDG_ASSERT(cond) TDG_CHECK(cond, "internal invariant violated")
#else
#define TDG_ASSERT(cond) ((void)0)
#endif
