// Persistent worker-thread pool shared by every parallel kernel in the
// library (the CPU stand-in for a GPU's SM array).
//
// Design constraints, in order:
//
//  1. Determinism. parallel_for distributes a FIXED index grid whose shape
//     depends only on the problem (never on the thread count); every index
//     is executed by exactly one thread running the same serial code on a
//     disjoint output region. Results are therefore bitwise identical for
//     any worker count, including 1.
//  2. No per-call spawning. Workers are created once (lazily, grown on
//     demand up to kMaxThreads) and live for the process; a parallel_for is
//     a queue push + condition-variable wake, not a thread create/join.
//  3. Re-entrancy. A parallel_for issued from inside a pool task runs
//     inline on that worker — nested parallel kernels (a gemm inside a
//     syr2k block task) degrade to serial instead of deadlocking.
//  4. Exception safety. A task that throws poisons its parallel region:
//     the first std::exception_ptr is captured, remaining indices are
//     drained without executing, and the exception is rethrown at the join
//     point on the dispatching thread. A worker exception can therefore
//     never reach the worker loop (which would std::terminate) or leave
//     the caller blocked.
//
// Thread-count resolution: kernels ask current_threads(), which is the
// innermost active ThreadLimit on this thread, or default_threads()
// (TDG_THREADS env var, else hardware_concurrency). Drivers thread their
// `threads` option down by holding a ThreadLimit for the call's duration —
// thread_local, like trace::Scope, so concurrent algorithm runs don't
// interfere.
//
// Pool workers never carry a trace recorder (common/trace.h is
// thread-local): kernels record their ops on the dispatching thread before
// farming out the arithmetic, so traces are identical at every thread
// count.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tdg {

using index_t = std::int64_t;

/// Hard cap on pool workers and ThreadLimit values.
inline constexpr int kMaxThreads = 64;

/// Threads used when no ThreadLimit is active: TDG_THREADS env var if set,
/// else std::thread::hardware_concurrency(), clamped to [1, kMaxThreads].
int default_threads();

/// Effective thread budget for a kernel dispatched from this thread.
int current_threads();

/// True while executing inside a pool task (nested dispatch runs inline).
bool in_pool_task();

/// RAII thread-count override for the current thread (0 = keep current).
class ThreadLimit {
 public:
  explicit ThreadLimit(int n);
  ~ThreadLimit();
  ThreadLimit(const ThreadLimit&) = delete;
  ThreadLimit& operator=(const ThreadLimit&) = delete;

 private:
  int prev_;
};

class ThreadPool {
 public:
  /// Pool with `workers` resident threads (0 = default_threads() - 1; the
  /// dispatching thread always participates, so N-way parallelism needs
  /// N - 1 workers).
  explicit ThreadPool(int workers = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int workers() const;

  /// Grow the resident worker set to at least n (capped at kMaxThreads).
  void ensure_workers(int n);

  /// Run fn(i) for every i in [begin, end), distributed over up to
  /// current_threads() threads (caller included); blocks until all indices
  /// completed. Calls from inside a pool task, and calls with a thread
  /// budget of 1, run inline. If any fn(i) throws, the not-yet-claimed
  /// indices are skipped and the first exception is rethrown here after
  /// every worker has left the region.
  void parallel_for(index_t begin, index_t end,
                    const std::function<void(index_t)>& fn);

  /// Run `copies` instances of fn concurrently (fn(0) on the caller) and
  /// block until all return. Unlike parallel_for the instances are peers
  /// that may synchronise with each other (the bulge-chase pipeline);
  /// copies beyond the resident worker count queue and start as workers
  /// free up, which the chase's ordered sweep-claiming tolerates. The first
  /// exception thrown by any copy is rethrown here after all copies
  /// returned — peers that synchronise with each other must additionally
  /// poison their own gates (see bulge_chase_parallel.cc) so no copy blocks
  /// forever on a dead peer.
  void run_concurrent(int copies, const std::function<void(int)>& fn);

  /// Fire-and-forget: enqueue one task for any worker, no join. The caller
  /// owns completion tracking (the task-graph runtime's ready-queue drain);
  /// the task must not throw — an escaped exception would reach the worker
  /// loop and std::terminate, so posters wrap bodies in their own capture.
  void post(std::function<void()> fn);

  /// The process-wide pool used by the BLAS-3 engine and the bulge chase.
  static ThreadPool& global();

 private:
  /// Queue entry: the task plus its enqueue timestamp (stamped only while
  /// metrics are armed; 0 otherwise) so the obs layer can histogram
  /// queue-wait without a clock read on the disarmed path.
  struct Job {
    std::function<void()> fn;
    double enq_us = 0.0;
  };

  void worker_loop();
  void enqueue_locked(std::function<void()> fn);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::thread> threads_;
  std::deque<Job> queue_;
  bool stop_ = false;
};

/// Split [0, total) into fixed `chunk`-sized ranges and run body(lo, hi)
/// for each on the global pool. The grid depends only on (total, chunk),
/// so results are thread-count invariant.
void parallel_chunks(index_t total, index_t chunk,
                     const std::function<void(index_t, index_t)>& body);

}  // namespace tdg
