#include "common/task_graph.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <string>

#include "common/cancel.h"
#include "common/check.h"
#include "common/fault.h"
#include "common/thread_pool.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/obs.h"

namespace tdg::graph {

namespace {

/// Registry metrics, resolved once (the PoolMetrics pattern). All gated:
/// one relaxed load per inc when disarmed.
struct GraphMetrics {
  obs::Counter* runs;
  obs::Counter* nodes_run;
  obs::Counter* nodes_cancelled;
  obs::Counter* busy_us;
  obs::Counter* overlap_us;
  obs::Counter* idle_us;
  obs::Counter* stalls;
  obs::Gauge* ready_depth_hwm;

  static GraphMetrics& get() {
    static GraphMetrics m = [] {
      obs::Registry& r = obs::Registry::global();
      return GraphMetrics{r.counter("taskgraph.runs"),
                          r.counter("taskgraph.nodes_run"),
                          r.counter("taskgraph.nodes_cancelled"),
                          r.counter("taskgraph.busy_us"),
                          r.counter("taskgraph.overlap_us"),
                          r.counter("taskgraph.idle_us"),
                          r.counter("taskgraph.stalls", obs::Gating::kAlways),
                          r.gauge("taskgraph.ready_depth_hwm")};
    }();
    return m;
  }
};

}  // namespace

struct TaskGraph::State {
  struct Node {
    const char* name;
    NodeClass cls;
    std::function<void()> body;
    std::vector<int> succ;
    int pending = 0;
    bool finished = false;  // executed or cancelled (stall diagnostics)
  };

  std::mutex mu;
  std::condition_variable cv;  // driver waits here for readiness / drain
  // Ambient request context of the thread that called run(); installed
  // around every node body so spans recorded on pool workers are attributed
  // to the owning request even when the pool interleaves graphs.
  obs::TraceContext ctx{};
  std::vector<Node> nodes;
  std::deque<int> ready_driver;
  std::deque<int> ready_pooled;
  int done = 0;
  int in_flight = 0;
  bool failed = false;
  std::exception_ptr error;  // first failure, guarded by mu

  // Schedule accounting (guarded by mu). busy/overlap integrate the
  // in-flight count over wall time at node-transition granularity.
  long long nodes_run = 0;
  long long nodes_cancelled = 0;
  long long ready_hwm = 0;
  double busy_us = 0.0;
  double overlap_us = 0.0;
  double idle_us = 0.0;
  double last_ts = 0.0;

  void account_locked(double now) {
    if (in_flight >= 1) {
      const double dt = now - last_ts;
      busy_us += dt;
      if (in_flight >= 2) overlap_us += dt;
    }
    last_ts = now;
  }

  void note_ready_depth_locked() {
    const long long depth =
        static_cast<long long>(ready_driver.size() + ready_pooled.size());
    ready_hwm = std::max(ready_hwm, depth);
  }
};

namespace {

/// Execute (or cancel) one node and release its successors. Returns the
/// number of pooled nodes that became ready, so the caller can post that
/// many pool runners (parallel mode only).
int execute_node(const std::shared_ptr<TaskGraph::State>& st, int id) {
  TaskGraph::State::Node& nd = st->nodes[static_cast<size_t>(id)];

  bool cancelled;
  {
    std::lock_guard<std::mutex> lk(st->mu);
    cancelled = st->failed;
    if (!cancelled) {
      st->account_locked(obs::now_us());
      ++st->in_flight;
    }
  }

  if (!cancelled) {
    try {
      obs::ContextScope ctx_scope(st->ctx);
      fault::maybe_inject("taskgraph_node");
      obs::Span span(nd.name);
      span.attr("node", id);
      nd.body();
    } catch (...) {
      std::lock_guard<std::mutex> lk(st->mu);
      if (!st->error) st->error = std::current_exception();
      st->failed = true;
    }
  }

  int new_pooled = 0;
  {
    std::lock_guard<std::mutex> lk(st->mu);
    st->account_locked(obs::now_us());
    if (cancelled) {
      ++st->nodes_cancelled;
    } else {
      --st->in_flight;
      ++st->nodes_run;
    }
    nd.finished = true;
    ++st->done;
    for (const int s : nd.succ) {
      TaskGraph::State::Node& snd = st->nodes[static_cast<size_t>(s)];
      if (--snd.pending == 0) {
        if (snd.cls == NodeClass::kDriver) {
          st->ready_driver.push_back(s);
        } else {
          st->ready_pooled.push_back(s);
          ++new_pooled;
        }
      }
    }
    st->note_ready_depth_locked();
    st->cv.notify_all();
  }
  return new_pooled;
}

/// One posted pool task: claim at most one pooled node. The driver may have
/// raced it to the queue — an empty pop is a benign no-op, which also makes
/// a runner that fires after run() returned harmless (the shared state
/// outlives it; the queues are empty).
void run_one_pooled(const std::shared_ptr<TaskGraph::State>& st);

void post_runners(const std::shared_ptr<TaskGraph::State>& st, int count) {
  for (int i = 0; i < count; ++i) {
    ThreadPool::global().post([st] { run_one_pooled(st); });
  }
}

void run_one_pooled(const std::shared_ptr<TaskGraph::State>& st) {
  int id;
  {
    std::lock_guard<std::mutex> lk(st->mu);
    if (st->ready_pooled.empty()) return;
    id = st->ready_pooled.front();
    st->ready_pooled.pop_front();
  }
  post_runners(st, execute_node(st, id));
}

}  // namespace

TaskGraph::TaskGraph() : st_(std::make_shared<State>()) {}

TaskGraph::~TaskGraph() = default;

TaskGraph::NodeId TaskGraph::add(const char* name, NodeClass cls,
                                 std::function<void()> body,
                                 const std::vector<NodeId>& deps) {
  TDG_CHECK(!ran_, "task_graph: add() after run()");
  TDG_CHECK(body != nullptr, "task_graph: node body must be callable");
  const int id = static_cast<int>(st_->nodes.size());
  State::Node nd;
  nd.name = name;
  nd.cls = cls;
  nd.body = std::move(body);
  for (const NodeId d : deps) {
    TDG_CHECK(d >= 0 && d < id, "task_graph: dependency must be an earlier node");
  }
  st_->nodes.push_back(std::move(nd));
  // Dedup edges so a node listed twice in deps still releases correctly.
  std::vector<NodeId> uniq(deps);
  std::sort(uniq.begin(), uniq.end());
  uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
  for (const NodeId d : uniq) {
    st_->nodes[static_cast<size_t>(d)].succ.push_back(id);
    ++st_->nodes[static_cast<size_t>(id)].pending;
  }
  return id;
}

int TaskGraph::size() const { return static_cast<int>(st_->nodes.size()); }

TaskGraph::Stats TaskGraph::run() {
  TDG_CHECK(!ran_, "task_graph: run() may be called once");
  ran_ = true;
  const std::shared_ptr<State> st = st_;
  const int total = static_cast<int>(st->nodes.size());

  // Serial fallback: the deterministic ascending-id topological order. Also
  // taken for re-entrant runs (a graph launched from inside a pool task
  // must not block a worker on the pool's own queue).
  const int budget = current_threads();
  const bool serial = total == 0 || budget <= 1 || in_pool_task();

  st->ctx = obs::current_context();

  int initial_pooled = 0;
  {
    std::lock_guard<std::mutex> lk(st->mu);
    st->last_ts = obs::now_us();
    for (int id = 0; id < total; ++id) {
      if (st->nodes[static_cast<size_t>(id)].pending == 0) {
        if (st->nodes[static_cast<size_t>(id)].cls == NodeClass::kDriver) {
          st->ready_driver.push_back(id);
        } else {
          st->ready_pooled.push_back(id);
          if (!serial) ++initial_pooled;
        }
      }
    }
    st->note_ready_depth_locked();
    TDG_CHECK(total == 0 ||
                  !st->ready_driver.empty() || !st->ready_pooled.empty(),
              "task_graph: no root nodes (dependency cycle?)");
  }

  if (serial) {
    // Pick the smallest ready id each step: a deterministic topological
    // order that matches node-insertion order for barrier-shaped graphs.
    while (true) {
      int id = -1;
      {
        std::lock_guard<std::mutex> lk(st->mu);
        if (st->done == total) break;
        for (const int c : st->ready_driver) id = id < 0 ? c : std::min(id, c);
        for (const int c : st->ready_pooled) id = id < 0 ? c : std::min(id, c);
        TDG_CHECK(id >= 0, "task_graph: stalled with no ready node");
        auto erase_from = [id](std::deque<int>& q) {
          const auto it = std::find(q.begin(), q.end(), id);
          if (it != q.end()) q.erase(it);
        };
        erase_from(st->ready_driver);
        erase_from(st->ready_pooled);
      }
      execute_node(st, id);
    }
  } else {
    ThreadPool::global().ensure_workers(budget - 1);
    post_runners(st, initial_pooled);

    // Driver loop: prefer driver-class nodes, help with pooled ones when no
    // driver node is ready, cv-wait when nothing is.
    std::unique_lock<std::mutex> lk(st->mu);
    while (st->done != total) {
      int id = -1;
      if (!st->ready_driver.empty()) {
        id = st->ready_driver.front();
        st->ready_driver.pop_front();
      } else if (!st->ready_pooled.empty()) {
        id = st->ready_pooled.front();
        st->ready_pooled.pop_front();
      }
      if (id >= 0) {
        lk.unlock();
        post_runners(st, execute_node(st, id));
        lk.lock();
        continue;
      }
      // Nothing ready: wait for a completion, bounded by the stall
      // deadline (the chase-gate TDG_SPIN_TIMEOUT_MS contract, satellite of
      // the no-hang guarantee). A full deadline window with zero node
      // completions means a worker never returned or a node can never
      // become ready — poison the graph (unstarted nodes cancel, never
      // execute) and surface a typed kPipelineStall naming the first
      // unfinished node instead of hanging the driver thread.
      const int stall_ms = stall_timeout_ms_ >= 0
                               ? stall_timeout_ms_
                               : cancel::stall_timeout_ms();
      const double t0 = obs::now_us();
      const long long before = st->done;
      const auto progressed = [&] {
        return st->done != before || !st->ready_driver.empty() ||
               !st->ready_pooled.empty();
      };
      if (stall_ms <= 0) {
        st->cv.wait(lk, progressed);
        st->idle_us += obs::now_us() - t0;
      } else if (!st->cv.wait_for(lk, std::chrono::milliseconds(stall_ms),
                                  progressed)) {
        st->idle_us += obs::now_us() - t0;
        int wedged = -1;
        const char* wedged_name = "";
        for (int i = 0; i < total; ++i) {
          if (!st->nodes[static_cast<size_t>(i)].finished) {
            wedged = i;
            wedged_name = st->nodes[static_cast<size_t>(i)].name;
            break;
          }
        }
        st->failed = true;  // cancel everything not yet started
        st->cv.notify_all();
        // Bounded drain before throwing: node bodies reference
        // caller-owned matrices and workspaces, so unwinding while one is
        // still executing would free memory under a live body (a
        // slow-but-alive node on an oversubscribed machine). Poisoning
        // makes unstarted nodes cancel quickly; give the bodies already
        // in flight one more deadline window to return. A body still
        // running after that is genuinely wedged and is abandoned — the
        // documented unrescuable case, named in the error.
        st->cv.wait_for(lk, std::chrono::milliseconds(stall_ms),
                        [&] { return st->in_flight == 0; });
        const int abandoned = st->in_flight;
        lk.unlock();
        GraphMetrics::get().stalls->inc();
        // Post-mortem: drop the stall into the flight recorder (tagged with
        // the graph's owning request) and dump every thread's recent events
        // so the wedged node and the request it was serving are on disk
        // before the throw unwinds the pipeline.
        obs::flight::record(obs::flight::EventKind::kError, "taskgraph.stall",
                            wedged, abandoned, st->ctx.request_id);
        obs::flight::dump("taskgraph stall: node " + std::to_string(wedged) +
                          " '" + wedged_name + "' (request " +
                          std::to_string(st->ctx.request_id) + ")");
        throw Error(ErrorCode::kPipelineStall,
                    "task_graph: drain made no progress for " +
                        std::to_string(stall_ms) +
                        " ms (TDG_SPIN_TIMEOUT_MS); first unfinished node " +
                        std::to_string(wedged) + " '" + wedged_name + "'" +
                        (abandoned > 0
                             ? "; " + std::to_string(abandoned) +
                                   " in-flight node bodies abandoned"
                             : ""),
                    {"task_graph", wedged, -1});
      } else {
        st->idle_us += obs::now_us() - t0;
      }
    }
  }

  {
    std::lock_guard<std::mutex> lk(st->mu);
    stats_.nodes_run = st->nodes_run;
    stats_.nodes_cancelled = st->nodes_cancelled;
    stats_.ready_depth_hwm = st->ready_hwm;
    stats_.busy_us = st->busy_us;
    stats_.overlap_us = st->overlap_us;
    stats_.idle_us = st->idle_us;
  }
  GraphMetrics& m = GraphMetrics::get();
  m.runs->inc();
  m.nodes_run->inc(stats_.nodes_run);
  m.nodes_cancelled->inc(stats_.nodes_cancelled);
  m.busy_us->inc(static_cast<long long>(stats_.busy_us));
  m.overlap_us->inc(static_cast<long long>(stats_.overlap_us));
  m.idle_us->inc(static_cast<long long>(stats_.idle_us));
  m.ready_depth_hwm->update_max(stats_.ready_depth_hwm);

  // Join point: done == total implies no node body is still executing, so
  // rethrowing the first captured failure is safe (the parallel_for
  // contract, at graph granularity). Moved out for the same TSan reason.
  std::exception_ptr e;
  {
    std::lock_guard<std::mutex> lk(st->mu);
    e = std::move(st->error);
  }
  if (e) std::rethrow_exception(e);
  return stats_;
}

}  // namespace tdg::graph
