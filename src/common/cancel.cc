#include "common/cancel.h"

#include <cstdlib>
#include <limits>
#include <string>

#include "common/check.h"

namespace tdg::cancel {

namespace {
thread_local const Token* t_current = nullptr;
}  // namespace

double Token::remaining_ms() const noexcept {
  const long long d = deadline_us_.load(std::memory_order_acquire);
  if (d == 0) return std::numeric_limits<double>::infinity();
  return static_cast<double>(d - now_us()) / 1e3;
}

const Token* current() noexcept { return t_current; }

Scope::Scope(const Token* token) noexcept : prev_(t_current) {
  t_current = token;
}

Scope::~Scope() { t_current = prev_; }

void poll(const Token* token, const char* stage) {
  if (token == nullptr) return;
  if (token->cancelled()) {
    throw Error(ErrorCode::kCancelled,
                std::string("request cancelled at stage '") + stage + "'",
                {stage, -1, -1});
  }
  if (token->expired()) {
    throw Error(ErrorCode::kCancelled,
                std::string("request deadline exceeded at stage '") + stage +
                    "'",
                {stage, -1, -1});
  }
}

int stall_timeout_ms() {
  static const int v = [] {
    if (const char* e = std::getenv("TDG_SPIN_TIMEOUT_MS")) {
      return std::atoi(e);
    }
    return kDefaultStallTimeoutMs;
  }();
  return v;
}

}  // namespace tdg::cancel
