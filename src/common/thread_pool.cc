#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>

#include "common/fault.h"
#include "obs/metrics.h"
#include "obs/obs.h"

namespace tdg {

namespace {

thread_local int t_limit = 0;
thread_local bool t_in_pool_task = false;

/// Pool metrics, resolved once against the global registry. Every inc() is
/// gated (one relaxed load when disarmed), so sites call unconditionally.
struct PoolMetrics {
  obs::Counter* tasks_run;
  obs::Counter* dispatches;
  obs::Counter* parks;
  obs::Counter* wakes;
  obs::Histogram* queue_wait_us;

  static PoolMetrics& get() {
    static PoolMetrics m = [] {
      obs::Registry& r = obs::Registry::global();
      return PoolMetrics{r.counter("pool.tasks_run"),
                         r.counter("pool.dispatches"), r.counter("pool.parks"),
                         r.counter("pool.wakes"),
                         r.histogram("pool.queue_wait_us")};
    }();
    return m;
  }
};

/// RAII flag flip for the caller-participates paths: exception-safe where
/// the old manual set/reset was not.
struct PoolTaskScope {
  bool prev;
  PoolTaskScope() : prev(t_in_pool_task) { t_in_pool_task = true; }
  ~PoolTaskScope() { t_in_pool_task = prev; }
};

struct ForState {
  std::atomic<index_t> next{0};
  index_t end = 0;
  index_t total = 0;
  const std::function<void(index_t)>* fn = nullptr;
  std::atomic<index_t> done{0};
  std::mutex mu;
  std::condition_variable cv;
  // First failure in the region; later ones are dropped (the region is
  // already doomed and the first exception is the root cause).
  std::atomic<bool> failed{false};
  std::exception_ptr error;  // guarded by mu

  void poison(std::exception_ptr e) {
    {
      std::lock_guard<std::mutex> lk(mu);
      if (!error) error = e;
    }
    failed.store(true, std::memory_order_release);
  }
};

// Claim-and-run loop shared by the caller and the helper tasks. The index
// assignment is dynamic but every fn(i) writes only its own output region,
// so scheduling order cannot affect results. A throwing fn poisons the
// region: remaining indices are claimed but skipped (the done count must
// still reach total so the join releases), and the first exception is
// rethrown at the join point by parallel_for.
void drive(ForState& st) {
  for (;;) {
    const index_t i = st.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= st.end) return;
    if (!st.failed.load(std::memory_order_relaxed)) {
      try {
        fault::maybe_inject("pool_task");
        (*st.fn)(i);
      } catch (...) {
        st.poison(std::current_exception());
      }
    }
    if (st.done.fetch_add(1, std::memory_order_acq_rel) + 1 == st.total) {
      std::lock_guard<std::mutex> lk(st.mu);
      st.cv.notify_all();
    }
  }
}

// Inline (serial) execution path; exceptions propagate directly to the
// caller, but the fault site still fires so injected runs behave the same
// at every thread count.
void run_serial(index_t begin, index_t end,
                const std::function<void(index_t)>& fn) {
  for (index_t i = begin; i < end; ++i) {
    fault::maybe_inject("pool_task");
    fn(i);
  }
}

}  // namespace

int default_threads() {
  static const int v = [] {
    if (const char* e = std::getenv("TDG_THREADS")) {
      const int n = std::atoi(e);
      if (n >= 1) return std::min(n, kMaxThreads);
    }
    const unsigned hc = std::thread::hardware_concurrency();
    return std::clamp(static_cast<int>(hc == 0 ? 1 : hc), 1, kMaxThreads);
  }();
  return v;
}

int current_threads() { return t_limit > 0 ? t_limit : default_threads(); }

bool in_pool_task() { return t_in_pool_task; }

ThreadLimit::ThreadLimit(int n) : prev_(t_limit) {
  if (n > 0) t_limit = std::min(n, kMaxThreads);
}

ThreadLimit::~ThreadLimit() { t_limit = prev_; }

ThreadPool::ThreadPool(int workers) {
  if (workers <= 0) workers = default_threads() - 1;
  ensure_workers(workers);
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

int ThreadPool::workers() const {
  std::lock_guard<std::mutex> lk(mu_);
  return static_cast<int>(threads_.size());
}

void ThreadPool::ensure_workers(int n) {
  n = std::min(n, kMaxThreads);
  std::lock_guard<std::mutex> lk(mu_);
  while (static_cast<int>(threads_.size()) < n) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

void ThreadPool::worker_loop() {
  t_in_pool_task = true;  // tasks on this thread never re-dispatch
  PoolMetrics& m = PoolMetrics::get();
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lk(mu_);
      if (!stop_ && queue_.empty()) {
        m.parks->inc();
        cv_.wait(lk, [&] { return stop_ || !queue_.empty(); });
        m.wakes->inc();
      }
      if (stop_ && queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    if (job.enq_us > 0.0) {
      m.queue_wait_us->record(
          static_cast<long long>(obs::now_us() - job.enq_us));
    }
    m.tasks_run->inc();
    job.fn();
  }
}

void ThreadPool::enqueue_locked(std::function<void()> fn) {
  Job j;
  j.fn = std::move(fn);
  if (obs::metrics_armed()) j.enq_us = obs::now_us();
  queue_.push_back(std::move(j));
}

void ThreadPool::post(std::function<void()> fn) {
  // Carry the poster's ambient request context onto the worker: the task
  // runs as if on the posting thread's flow (task-graph runners inherit the
  // graph's owning request this way).
  const obs::TraceContext ctx = obs::current_context();
  {
    std::lock_guard<std::mutex> lk(mu_);
    enqueue_locked([fn = std::move(fn), ctx] {
      obs::ContextScope scope(ctx);
      fn();
    });
  }
  cv_.notify_one();
}

void ThreadPool::parallel_for(index_t begin, index_t end,
                              const std::function<void(index_t)>& fn) {
  const index_t n = end - begin;
  if (n <= 0) return;
  const int budget = current_threads();
  if (n == 1 || budget <= 1 || t_in_pool_task) {
    run_serial(begin, end, fn);
    return;
  }
  int helpers = static_cast<int>(std::min<index_t>(n, budget)) - 1;
  ensure_workers(helpers);
  helpers = std::min(helpers, workers());
  if (helpers <= 0) {
    run_serial(begin, end, fn);
    return;
  }

  auto st = std::make_shared<ForState>();
  st->next.store(begin, std::memory_order_relaxed);
  st->end = end;
  st->total = n;
  st->fn = &fn;  // the caller blocks until every claimed index completed,
                 // so the reference outlives all uses
  PoolMetrics::get().dispatches->inc();
  // Helpers adopt the dispatcher's ambient request context: every span a
  // body records on a pool worker is attributed to the same request as the
  // caller's inline share.
  const obs::TraceContext ctx = obs::current_context();
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (int h = 0; h < helpers; ++h) {
      enqueue_locked([st, ctx] {
        obs::ContextScope scope(ctx);
        drive(*st);
      });
    }
  }
  cv_.notify_all();

  {
    PoolTaskScope scope;  // nested dispatch from the body runs inline
    drive(*st);
  }

  {
    std::unique_lock<std::mutex> lk(st->mu);
    st->cv.wait(lk, [&] {
      return st->done.load(std::memory_order_acquire) == st->total;
    });
  }
  // Join point: every helper is done touching st, so rethrowing the first
  // captured failure is safe and the region behaves like a serial loop that
  // threw (minus the not-yet-claimed tail). The exception is MOVED out so a
  // helper's deferred release of its st reference never drops the last
  // refcount on the exception object the caller is inspecting (that release
  // lives in uninstrumented libstdc++ and reads as a race under TSan).
  if (st->failed.load(std::memory_order_acquire)) {
    std::exception_ptr e;
    {
      std::lock_guard<std::mutex> lk(st->mu);
      e = std::move(st->error);
    }
    std::rethrow_exception(e);
  }
}

void ThreadPool::run_concurrent(int copies,
                                const std::function<void(int)>& fn) {
  if (copies <= 0) return;
  if (copies == 1 || t_in_pool_task) {
    for (int c = 0; c < copies; ++c) fn(c);
    return;
  }
  ensure_workers(copies - 1);

  struct ConcState {
    const std::function<void(int)>* fn = nullptr;
    std::atomic<int> done{0};
    int total = 0;
    std::mutex mu;
    std::condition_variable cv;
    std::exception_ptr error;  // first failure, guarded by mu

    void poison(std::exception_ptr e) {
      std::lock_guard<std::mutex> lk(mu);
      if (!error) error = e;
    }
  };
  auto st = std::make_shared<ConcState>();
  st->fn = &fn;
  st->total = copies - 1;
  PoolMetrics::get().dispatches->inc();
  const obs::TraceContext ctx = obs::current_context();
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (int c = 1; c < copies; ++c) {
      enqueue_locked([st, c, ctx] {
        obs::ContextScope scope(ctx);
        try {
          (*st->fn)(c);
        } catch (...) {
          st->poison(std::current_exception());
        }
        if (st->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            st->total) {
          std::lock_guard<std::mutex> lk2(st->mu);
          st->cv.notify_all();
        }
      });
    }
  }
  cv_.notify_all();

  {
    PoolTaskScope scope;
    try {
      fn(0);
    } catch (...) {
      // The caller's copy failed, but the helpers still reference st->fn —
      // capture and fall through to the join before rethrowing.
      st->poison(std::current_exception());
    }
  }

  std::exception_ptr first;
  {
    std::unique_lock<std::mutex> lk(st->mu);
    st->cv.wait(lk, [&] {
      return st->done.load(std::memory_order_acquire) == st->total;
    });
    // Moved for the same reason as in parallel_for: the caller must end up
    // sole owner of the exception it rethrows.
    first = std::move(st->error);
  }
  if (first) std::rethrow_exception(first);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void parallel_chunks(index_t total, index_t chunk,
                     const std::function<void(index_t, index_t)>& body) {
  if (total <= 0) return;
  if (chunk <= 0) chunk = total;
  const index_t nch = (total + chunk - 1) / chunk;
  ThreadPool::global().parallel_for(0, nch, [&](index_t t) {
    body(t * chunk, std::min(total, (t + 1) * chunk));
  });
}

}  // namespace tdg
