#include "common/trace.h"

#include <sstream>

namespace tdg::trace {

namespace {
thread_local Recorder* g_active = nullptr;
}  // namespace

double flops(const Op& op) {
  const double m = static_cast<double>(op.m);
  const double n = static_cast<double>(op.n);
  const double k = static_cast<double>(op.k);
  const double batch = static_cast<double>(op.batch);
  switch (op.kind) {
    case OpKind::kGemm:
      return 2.0 * m * n * k * batch;
    case OpKind::kSyr2k:
      // Lower triangle only: 2 * (n(n+1)/2) * k * 2 ops per entry pair.
      return 2.0 * n * (n + 1.0) * k * batch;
    case OpKind::kSymv:
      return 2.0 * n * n * batch;
    case OpKind::kGemv:
      return 2.0 * m * n * batch;
    case OpKind::kGer:
      return 2.0 * m * n * batch;
    case OpKind::kSyr2:
      return 2.0 * n * (n + 1.0) * batch;
    case OpKind::kBatchedGemm:
      return 2.0 * m * n * k * batch;
    case OpKind::kBcStep:
      // One block step: ~ two-sided b x b update + two one-sided b x b
      // updates, each 4 b^2 flops for a rank-1 reflector application.
      return 12.0 * m * m * batch;
  }
  return 0.0;
}

std::string to_string(const Op& op) {
  std::ostringstream os;
  switch (op.kind) {
    case OpKind::kGemm: os << "gemm"; break;
    case OpKind::kSyr2k: os << "syr2k"; break;
    case OpKind::kSymv: os << "symv"; break;
    case OpKind::kGemv: os << "gemv"; break;
    case OpKind::kGer: os << "ger"; break;
    case OpKind::kSyr2: os << "syr2"; break;
    case OpKind::kBatchedGemm: os << "batched_gemm"; break;
    case OpKind::kBcStep: os << "bc_step"; break;
  }
  os << "(" << op.m << "x" << op.n << "x" << op.k;
  if (op.batch != 1) os << ", batch=" << op.batch;
  os << ")";
  return os.str();
}

double Recorder::total_flops() const {
  double s = 0.0;
  for (const auto& op : ops_) s += flops(op);
  return s;
}

Recorder* active() { return g_active; }

void record(const Op& op) {
  if (g_active != nullptr) g_active->record(op);
}

Scope::Scope(Recorder& r) : prev_(g_active) { g_active = &r; }

Scope::~Scope() { g_active = prev_; }

}  // namespace tdg::trace
