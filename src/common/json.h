// Minimal JSON reader shared by the plan cache and the observability tests.
//
// Supports the subset the library's writers emit: objects, arrays,
// double-quoted strings with the common escapes, numbers, true/false/null.
// Any malformed input makes parsing fail as a whole — callers treat that as
// "no data" (corrupted-file recovery), never as a partial read.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace tdg::json {

struct Value {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<Value> arr;
  std::vector<std::pair<std::string, Value>> obj;

  /// First member with `key` in an object, or nullptr.
  const Value* find(const std::string& key) const {
    for (const auto& [k, v] : obj)
      if (k == key) return &v;
    return nullptr;
  }
};

/// Parse `text` into *out. Returns false on any syntax error or trailing
/// garbage (out is then unspecified).
bool parse(const std::string& text, Value* out);

/// Escape a string for embedding inside a double-quoted JSON string.
std::string escape(const std::string& s);

}  // namespace tdg::json
