#include "common/rng.h"

#include <cmath>
#include <numbers>

namespace tdg {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  std::uint64_t z = (x += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; guard against log(0).
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

std::uint64_t Rng::bounded(std::uint64_t n) {
  // Multiply-shift bounded generation (Lemire); slight modulo bias is
  // irrelevant for test workloads but kept branch-free and fast.
  const unsigned __int128 m =
      static_cast<unsigned __int128>(next_u64()) * static_cast<unsigned __int128>(n);
  return static_cast<std::uint64_t>(m >> 64);
}

}  // namespace tdg
