// Dependency-driven task-graph runtime on the persistent ThreadPool — the
// look-ahead scheduler behind the DBBR/sy2sb DAG paths (src/sbr).
//
// A TaskGraph is a static DAG built once and run once: nodes carry explicit
// predecessor edges, a ready-queue feeds pool workers, and node completion
// atomically releases its successors — no per-phase barriers. This is what
// lets step i+1's panel factorization overlap the remainder of step i's
// trailing syr2k (the classic look-ahead of Rodríguez-Sánchez et al.,
// arXiv:1709.00302), and what removes the per-anti-diagonal barriers inside
// the square-block syr2k schedule itself.
//
// Two node classes, because the ThreadPool runs nested dispatch inline:
//
//  * kDriver — executes only on the thread that called run(). Use for
//    bodies that fan out wide BLAS-3 parallel_for regions (panel symm, JIT
//    GEMMs): on a pool worker those would degrade to serial.
//  * kPooled — may execute on any pool worker (or the driver when it has
//    nothing else to do). Use for leaf work: syr2k tiles, panel QRs.
//
// Invariants, matching the rest of the library:
//
//  * Determinism. The graph only constrains *ordering*; every node writes a
//    disjoint output region (or regions ordered by explicit edges), so any
//    schedule — including the serial fallback — produces bitwise-identical
//    results. run() degrades to a deterministic serial topological order
//    (ascending NodeId among ready nodes) when the thread budget is 1 or
//    when called from inside a pool task (re-entrancy).
//  * Failure poisoning. The first exception thrown by a node body is
//    captured; every node not yet started is cancelled (counted, never
//    executed, but still releases its successors so the graph drains), and
//    the exception is rethrown from run() after all in-flight nodes have
//    completed. A throwing node can therefore never deadlock the graph.
//    The `taskgraph_node` fault site (tdg::fault) fires at node entry.
//  * Drain watchdog. The parallel driver's cv-wait carries the same stall
//    deadline as the chase gates (TDG_SPIN_TIMEOUT_MS via
//    cancel::stall_timeout_ms, overridable per graph): if no node completes
//    for a whole deadline window — a worker that never returns, or a node
//    that never becomes ready — the run poisons the graph (unstarted nodes
//    are cancelled, never executed) and throws Error(kPipelineStall) naming
//    the first unfinished node, instead of hanging the driver thread.
//    Before throwing, the run waits one more deadline window for bodies
//    already in flight to return, so a slow-but-alive node does not end up
//    executing over caller memory freed by the unwind. As with a
//    chase-gate stall, the diagnosis is for clean termination: an
//    in-flight body that is genuinely wedged cannot be rescued — it is
//    abandoned (and counted in the error message), which is why callers
//    must treat a drain-watchdog kPipelineStall as non-recoverable rather
//    than retrying in the same process (the serve layer does not class it
//    as transient).
//  * Observability. Each executed node records an obs::Span under its
//    name (must be a string literal — spans keep the pointer), and a run
//    feeds the taskgraph.* registry metrics (docs/ALGORITHMS.md §12).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "la/matrix.h"  // index_t

namespace tdg::graph {

enum class NodeClass {
  kDriver,  // run() caller only — body may fan out nested parallel_for
  kPooled,  // any pool worker — leaf kernels, no useful nested fan-out
};

class TaskGraph {
 public:
  using NodeId = int;

  /// Aggregate schedule statistics of one run().
  struct Stats {
    long long nodes_run = 0;        // bodies started (includes a failing one)
    long long nodes_cancelled = 0;  // skipped after a failure poisoned the run
    long long ready_depth_hwm = 0;  // peak ready-queue depth
    double busy_us = 0.0;     // wall time with >= 1 node executing
    double overlap_us = 0.0;  // wall time with >= 2 nodes executing
    double idle_us = 0.0;     // driver cv-wait time (nothing ready)

    /// Fraction of busy time in which at least two nodes overlapped — the
    /// direct measure of look-ahead actually happening (0 on serial runs).
    double overlap_fraction() const {
      return busy_us > 0.0 ? overlap_us / busy_us : 0.0;
    }
  };

  TaskGraph();
  ~TaskGraph();
  TaskGraph(const TaskGraph&) = delete;
  TaskGraph& operator=(const TaskGraph&) = delete;

  /// Append a node. `name` must be a string literal (it outlives the call
  /// as the node's span name). `deps` are NodeIds returned by earlier add()
  /// calls — edges always point backwards, so the graph is a DAG by
  /// construction. Returns the new node's id. Must not be called after
  /// run().
  NodeId add(const char* name, NodeClass cls, std::function<void()> body,
             const std::vector<NodeId>& deps = {});

  /// Execute the graph to completion; call at most once. Runs serially (in
  /// deterministic ascending-id topological order) when the ambient thread
  /// budget is 1 or when called from inside a pool task. Rethrows the
  /// first node failure after the graph has drained.
  Stats run();

  /// Number of nodes added so far.
  int size() const;

  /// Override the drain stall deadline for this graph's run(): ms > 0 is a
  /// hard no-completion window, 0 disables the watchdog, -1 (default) uses
  /// cancel::stall_timeout_ms() (TDG_SPIN_TIMEOUT_MS). Call before run().
  void set_stall_timeout_ms(int ms) { stall_timeout_ms_ = ms; }

  /// Stats of the completed run (zeros before run()).
  const Stats& stats() const { return stats_; }

  /// Implementation state, public only so the runtime's file-local scheduler
  /// functions (which pool workers invoke via shared_ptr) can name it.
  struct State;

 private:
  std::shared_ptr<State> st_;
  Stats stats_;
  bool ran_ = false;
  int stall_timeout_ms_ = -1;  // -1 = cancel::stall_timeout_ms()
};

}  // namespace tdg::graph
