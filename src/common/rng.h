// Deterministic pseudo-random number generation.
//
// A self-contained xoshiro256** generator so that test fixtures and
// workload generators are reproducible across platforms and standard
// library versions (std::mt19937 distributions are not portable).
#pragma once

#include <cstdint>

namespace tdg {

/// xoshiro256** PRNG with splitmix64 seeding.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box-Muller (uses two uniforms per pair).
  double normal();

  /// Uniform integer in [0, n).
  std::uint64_t bounded(std::uint64_t n);

 private:
  std::uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace tdg
