// Symmetric band matrix storage.
//
// Two layouts matter to the paper:
//
//  * Entries of the band embedded in a dense n x n column-major matrix are
//    strided by the full leading dimension — this is the layout the "naive"
//    GPU bulge-chasing kernel reads, with poor L2 locality.
//  * The packed layout below (Figure 10 of the paper) stores each column's
//    band segment contiguously (LAPACK "lower symmetric band" storage):
//    entry (i, j), 0 <= i - j <= kd, lives at data[(i - j) + j * (kd + 1)].
//    The whole band occupies (kd+1) * n doubles — small enough to live in an
//    H100's 50 MB L2 for paper-scale matrices, and cache-friendly on a CPU.
//
// Bulge chasing temporarily creates fill-in up to 2b below the diagonal, so
// the container's storage bandwidth `kd` can exceed the logical bandwidth.
#pragma once

#include <vector>

#include "la/matrix.h"

namespace tdg {

class SymBandMatrix {
 public:
  SymBandMatrix() = default;

  /// n x n symmetric band matrix with storage bandwidth kd (entries with
  /// i - j in [0, kd] are representable), zero-initialised.
  SymBandMatrix(index_t n, index_t kd);

  index_t n() const { return n_; }
  index_t kd() const { return kd_; }

  /// Entry (i, j) with i >= j and i - j <= kd.
  double& at(index_t i, index_t j) {
    return data_[static_cast<std::size_t>(i - j) +
                 static_cast<std::size_t>(j) * (kd_ + 1)];
  }
  double at(index_t i, index_t j) const {
    return data_[static_cast<std::size_t>(i - j) +
                 static_cast<std::size_t>(j) * (kd_ + 1)];
  }

  /// Entry in either triangle; zero outside the stored band.
  double sym_at(index_t i, index_t j) const;

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// Dense n x n symmetric matrix with the band contents.
  Matrix to_dense() const;

 private:
  index_t n_ = 0;
  index_t kd_ = 0;
  std::vector<double> data_;
};

/// Extract the lower band (bandwidth b) of dense symmetric `a` (lower
/// triangle is the source of truth) into packed storage with storage
/// bandwidth kd >= b (extra room for bulge fill-in).
SymBandMatrix extract_band(ConstMatrixView a, index_t b, index_t kd);

/// Largest |entry| of the lower triangle of `a` strictly outside bandwidth b
/// (i - j > b). Zero means `a` is a band matrix of bandwidth b.
double off_band_max(ConstMatrixView a, index_t b);

/// Largest |entry| of packed band `a` strictly outside logical bandwidth b.
double off_band_max(const SymBandMatrix& a, index_t b);

}  // namespace tdg
