#include "band/sym_band.h"

#include <algorithm>
#include <cmath>

namespace tdg {

SymBandMatrix::SymBandMatrix(index_t n, index_t kd)
    : n_(n),
      kd_(kd),
      data_(static_cast<std::size_t>(n) * (kd + 1), 0.0) {
  TDG_CHECK(n >= 0 && kd >= 0 && kd < std::max<index_t>(n, 1),
            "SymBandMatrix: need 0 <= kd < n");
}

double SymBandMatrix::sym_at(index_t i, index_t j) const {
  if (i < j) std::swap(i, j);
  if (i - j > kd_) return 0.0;
  return at(i, j);
}

Matrix SymBandMatrix::to_dense() const {
  Matrix a(n_, n_);
  for (index_t j = 0; j < n_; ++j) {
    const index_t imax = std::min(n_ - 1, j + kd_);
    for (index_t i = j; i <= imax; ++i) {
      a(i, j) = at(i, j);
      a(j, i) = at(i, j);
    }
  }
  return a;
}

SymBandMatrix extract_band(ConstMatrixView a, index_t b, index_t kd) {
  TDG_CHECK(a.rows == a.cols, "extract_band: matrix must be square");
  TDG_CHECK(kd >= b, "extract_band: storage bandwidth must cover b");
  const index_t n = a.rows;
  SymBandMatrix band(n, kd);
  for (index_t j = 0; j < n; ++j) {
    const index_t imax = std::min(n - 1, j + b);
    for (index_t i = j; i <= imax; ++i) band.at(i, j) = a(i, j);
  }
  return band;
}

double off_band_max(ConstMatrixView a, index_t b) {
  double m = 0.0;
  for (index_t j = 0; j < a.cols; ++j) {
    for (index_t i = j + b + 1; i < a.rows; ++i) {
      m = std::max(m, std::abs(a(i, j)));
    }
  }
  return m;
}

double off_band_max(const SymBandMatrix& a, index_t b) {
  double m = 0.0;
  for (index_t j = 0; j < a.n(); ++j) {
    const index_t imax = std::min(a.n() - 1, j + a.kd());
    for (index_t i = j + b + 1; i <= imax; ++i) {
      m = std::max(m, std::abs(a.at(i, j)));
    }
  }
  return m;
}

}  // namespace tdg
