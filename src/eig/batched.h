// Batched small-matrix EVD driver: B independent symmetric eigenproblems,
// one problem per pool worker.
//
// Real eigensolver traffic is dominated by many independent small problems,
// where per-problem threading and per-problem planning are pure overhead:
// a parallel_for over a 128x128 trailing update spends more time in queue
// pushes and condition-variable wakes than in FMAs, and the planner
// heuristic re-derives the same knob vector for every one of ten thousand
// identically-shaped inputs. eigh_batched() inverts both decisions:
//
//  * Pool-level parallelism. The batch claims W = BatchOptions::threads
//    pool workers and runs ONE problem per worker with every intra-problem
//    thread budget forced to 1 (nested parallel regions run inline). The
//    execution units stay busy across problem boundaries instead of
//    synchronizing inside each problem — the same inversion the multi-GPU
//    pipelined-EVD literature applies across devices.
//  * Work stealing. Problems are dealt round-robin into per-worker queues
//    in descending-size order (an LPT prefix); a worker that drains its own
//    queue steals from the back of the fullest remaining one, so
//    heterogeneous sizes load-balance instead of serializing behind the
//    worker that drew the big matrices. Steals are counted in
//    `batch.steals`.
//  * One plan per shape bucket. The planner (src/plan) is consulted once
//    per pow2 shape bucket — for the bucket-representative shape, at the
//    intra-problem thread budget of 1 — and the resulting plan is shared by
//    every problem in the bucket. A batch of 10k same-sized problems costs
//    one heuristic (or one measured search) instead of 10k.
//  * Per-problem fault isolation. A problem that raises a typed tdg::Error
//    degrades alone: its BatchResult slot records the error code and
//    message, every other slot completes normally, and the in-problem
//    solver fallback chain (D&C -> steqr -> bisection) still runs first
//    when BatchOptions::solver_fallback is set.
//
// Determinism: each problem executes serially on exactly one worker, so its
// result is bitwise identical to a standalone eigh() call with the same
// options and the same (bucket-shared) plan — which worker ran it, and in
// what order, cannot matter. batch_bucket_plan() exposes the plan a batch
// will share so callers (and tests) can reproduce any slot exactly.
#pragma once

#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/check.h"
#include "eig/drivers.h"
#include "obs/obs.h"
#include "plan/plan.h"

namespace tdg::eig {

/// Options for one eigh_batched() call. The per-problem configuration is
/// derived once and handed to workers by value.
struct BatchOptions {
  /// Compute eigenvectors for every problem in the batch.
  bool vectors = true;
  /// Batch-wide execution mode (plan::EvdMode; see EvdOptions::mode for the
  /// normalization rules). Per-slot overrides come from `modes`.
  plan::EvdMode mode = plan::EvdMode::kStandard;
  /// Optional per-problem execution modes, parallel to `problems` when
  /// non-empty (size checked). Slot i runs modes[i] instead of the
  /// batch-wide `mode`; shape buckets (and hence shared plans) key on the
  /// normalized mode/precision, so a mixed-mode batch plans each
  /// (bucket, mode) pair once.
  std::vector<plan::EvdMode> modes;
  /// How the shared per-bucket plans are produced (src/plan/plan.h).
  PlanMode plan = PlanMode::kHeuristic;
  /// Primary tridiagonal solver per problem (fallback chain still applies).
  TridiagSolver solver = TridiagSolver::kDivideConquer;
  /// Per-problem pipeline configuration. The thread knobs (`threads`,
  /// `bc_threads`) are forced to 1 — batch parallelism is pool-level only.
  TridiagOptions tridiag;
  /// Consolidated solver / back-transform knobs (plan::Knobs), shared by
  /// every problem. 0 = auto (filled from the bucket plan).
  plan::Knobs knobs;
  /// Per-problem NaN/Inf screen (a bad input fails its own slot only).
  bool check_finite = true;
  /// Per-problem solver fallback chain (EvdResult.recovery).
  bool solver_fallback = true;
  /// Pool workers running problems concurrently. 0 = the ambient thread
  /// budget (TDG_THREADS / hardware); always clamped to [1, min(B, 64)].
  int threads = 0;
  /// Pre-resolved plan shared by EVERY problem (the serve layer's per-bucket
  /// warm plan: the caller has already grouped problems into one pow2 shape
  /// bucket and resolved its plan once). When set, the per-bucket planner
  /// pass is skipped entirely — plans_resolved stays 0 and every problem
  /// counts as a bucket_plan_hit. The pointee must outlive the call.
  const plan::Plan* shared_plan = nullptr;
  /// Optional per-problem cancellation tokens (common/cancel.h), parallel to
  /// `problems` when non-empty (size checked). Each worker installs slot i's
  /// token — and only it — for the duration of problem i; a cancelled or
  /// deadline-expired slot fails alone with ErrorCode::kCancelled. nullptr
  /// entries mean "not cancellable". Pointees must outlive the call.
  std::vector<const cancel::Token*> tokens;
  /// Optional per-problem trace contexts (obs::TraceContext), parallel to
  /// `problems` when non-empty (size checked). Each worker installs slot i's
  /// context for the duration of problem i, so every span the problem
  /// records — on whichever worker claimed it — is attributed to the
  /// originating request. Zero-valued entries mean "no owning request".
  std::vector<obs::TraceContext> trace_contexts;
};

/// Outcome of one slot. `ok` problems have their EvdResult filled; failed
/// problems carry the typed error that stopped them and an empty result.
struct BatchProblemStatus {
  bool ok = false;
  ErrorCode code = ErrorCode::kUnknown;  // meaningful when !ok
  std::string message;                   // error text when !ok
};

/// Results of one batch, slot i corresponding to problems[i].
struct BatchResult {
  std::vector<EvdResult> results;          // empty slots where !status.ok
  std::vector<BatchProblemStatus> status;  // parallel to results
  index_t problems = 0;        // batch size B
  int workers = 0;             // pool workers actually used
  index_t plans_resolved = 0;  // distinct pow2 shape buckets planned
  index_t bucket_plan_hits = 0;  // problems served by an existing bucket plan
  index_t steals = 0;          // cross-worker queue steals
  index_t recovered = 0;       // slots that took an in-problem fallback
  index_t failed = 0;          // slots whose status is !ok
  double seconds = 0.0;        // wall time of the whole batch

  bool all_ok() const { return failed == 0; }
};

/// The plan a batch under `opts` shares for problems of size n: the planner
/// consulted once for the bucket-representative shape (pow2_bucket(n),
/// opts.vectors, no subset, the batch-wide mode) at the intra-problem
/// thread budget of 1. eigh(a, per-problem opts, batch_bucket_plan(n,
/// opts)) reproduces a batch slot bit for bit. Slots with a per-slot mode
/// override share the plan for that mode instead (same call with opts.mode
/// set to the slot's mode).
plan::Plan batch_bucket_plan(index_t n, const BatchOptions& opts = {});

/// Run B independent symmetric EVDs (lower triangles read). Never throws
/// for per-problem failures — those are recorded in their BatchResult slot;
/// only batch-level misuse (e.g. a poisoned pool) propagates.
BatchResult eigh_batched(const std::vector<ConstMatrixView>& problems,
                         const BatchOptions& opts = {});

}  // namespace tdg::eig
