// Tridiagonal eigensolvers and symmetric EVD drivers.
//
// Two tridiagonal kernels, mirroring what cuSOLVER/MAGMA compose with:
//  * steqr — implicit QL with Wilkinson shift (EISPACK tql2 lineage).
//    O(n^2) for values, O(n^3) with vectors; used standalone as a baseline
//    and as the divide & conquer base case.
//  * stedc — Cuppen's divide & conquer: recursive split, rank-one merge via
//    the secular equation with Gu–Eisenstat z-recomputation, and the usual
//    two-level deflation (tiny z components; nearly equal poles).
//
// EVD drivers combining the pieces of the paper's pipeline are in
// drivers.h/cc (eigh_direct, eigh_2stage).
#pragma once

#include <vector>

#include "la/matrix.h"

namespace tdg::eig {

/// Implicit-QL eigensolver for a symmetric tridiagonal matrix.
/// d (size n): diagonal in, eigenvalues (ascending) out.
/// e (size n-1): sub-diagonal in, destroyed.
/// z: if non-null, must hold n rows; the accumulated rotations are applied
/// from the right, so passing the identity yields the eigenvectors of T,
/// and passing Q yields Q * (eigenvectors of T). Columns are permuted along
/// with the eigenvalue sort.
/// Throws tdg::Error if an eigenvalue fails to converge in 50 sweeps.
void steqr(std::vector<double>& d, std::vector<double>& e, MatrixView* z);

/// Divide & conquer eigensolver for a symmetric tridiagonal matrix.
/// d/e as in steqr. On return `q` (n x n) holds the eigenvectors of T.
/// `smlsiz`: subproblems at or below this size use steqr.
void stedc(std::vector<double>& d, std::vector<double>& e, MatrixView q,
           index_t smlsiz = 32);

}  // namespace tdg::eig
