// The mixed-precision EVD engine (EvdOptions mode kMixedPrecision).
//
// Pipeline: demote A to FP32 -> float DBBR band reduction (sbr/band32.h)
// -> float bulge chase (bc/chase32.h) -> FP64 tridiagonal solve (the
// O(n^2)-to-O(n^3)-but-cheap middle, where FP32 eigenvalue error would be
// amplified for free) -> float Q2/Q1 back transformation -> promote ->
// FP64 Ogita–Aishima refinement (eig/refine.h).
//
// The engine never throws on numeric failure: a non-converged refinement
// or a solver breakdown comes back as ok == false and the driver reruns
// the standard FP64 path, recording recovery = "fp32->fp64".
#pragma once

#include <vector>

#include "eig/refine.h"
#include "la/matrix.h"
#include "plan/plan.h"

namespace tdg::eig {

struct MixedOutcome {
  bool ok = false;  // pipeline ran and the residual test passed
  std::vector<double> eigenvalues;  // ascending
  Matrix eigenvectors;              // n x n
  RefineOutcome refine;             // iterations, residual, acceptance scale
  double seconds_fp32 = 0.0;        // float reduction + back-transform time
  double seconds_solver = 0.0;      // FP64 tridiagonal solve time
  double seconds_refine = 0.0;      // FP64 refinement time
};

/// Run the FP32-compute / FP64-refine pipeline against the resolved
/// configuration. Requires n >= 3 (the driver routes smaller problems to
/// the standard path). Non-numeric errors (invalid input, cancellation)
/// propagate; kNoConvergence from the tridiagonal solve returns ok = false.
MixedOutcome eigh_mixed(ConstMatrixView a, const plan::ResolvedPipeline& cfg,
                        bool use_dc);

}  // namespace tdg::eig
