// Secular equation solver for the divide & conquer rank-one merge.
//
// Given strictly increasing poles d_0 < d_1 < ... < d_{k-1}, weights z with
// z_i != 0, and rho > 0, finds the k roots of
//     f(lambda) = 1 + rho * sum_i z_i^2 / (d_i - lambda) = 0,
// with root j in (d_j, d_{j+1}) and root k-1 in (d_{k-1}, d_{k-1}+rho z^T z).
//
// Each root is represented as (base pole index, offset mu) with
// lambda = d_base + mu, so that differences lambda - d_i needed by the
// eigenvector formula are computed without catastrophic cancellation.
#pragma once

#include <vector>

#include "la/matrix.h"

namespace tdg::eig {

struct SecularRoot {
  double lambda = 0.0;  // the root itself (= d[base] + mu)
  double mu = 0.0;      // accurate offset from the base pole
  index_t base = 0;     // index of the nearest pole used as the shift origin
};

/// Solve for all k roots. Preconditions: d strictly increasing, all z_i
/// non-zero, rho > 0. Throws tdg::Error on a malformed problem.
std::vector<SecularRoot> solve_secular(const std::vector<double>& d,
                                       const std::vector<double>& z,
                                       double rho);

/// Accurate difference d_i - lambda_j given the root representation.
inline double pole_minus_root(const std::vector<double>& d,
                              const SecularRoot& r, index_t i) {
  return (d[static_cast<std::size_t>(i)] -
          d[static_cast<std::size_t>(r.base)]) -
         r.mu;
}

/// Gu–Eisenstat recomputed weights: zhat_i such that the lambda_j are the
/// *exact* eigenvalues of D + rho * zhat zhat^T. Guarantees numerically
/// orthogonal eigenvectors from the Loewner formula. Signs follow z.
std::vector<double> recompute_z(const std::vector<double>& d,
                                const std::vector<double>& z, double rho,
                                const std::vector<SecularRoot>& roots);

/// Normalised eigenvector for root j: v(i) = zhat_i / (d_i - lambda_j).
void secular_eigenvector(const std::vector<double>& d,
                         const std::vector<double>& zhat,
                         const std::vector<SecularRoot>& roots, index_t j,
                         double* v);

}  // namespace tdg::eig
