#include "eig/bisect.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/rng.h"
#include "la/blas.h"
#include "obs/obs.h"

namespace tdg::eig {

index_t sturm_count(const std::vector<double>& d, const std::vector<double>& e,
                    double x) {
  const index_t n = static_cast<index_t>(d.size());
  const double safe = std::numeric_limits<double>::min();
  index_t count = 0;
  double q = 1.0;
  for (index_t i = 0; i < n; ++i) {
    const double esq =
        (i > 0) ? e[static_cast<std::size_t>(i - 1)] *
                      e[static_cast<std::size_t>(i - 1)]
                : 0.0;
    q = d[static_cast<std::size_t>(i)] - x - ((i > 0) ? esq / q : 0.0);
    if (std::abs(q) < safe) q = -safe;  // pivot guard: treat as negative
    if (q < 0.0) ++count;
  }
  return count;
}

std::vector<double> eigenvalues_bisect(const std::vector<double>& d,
                                       const std::vector<double>& e,
                                       index_t il, index_t iu) {
  const index_t n = static_cast<index_t>(d.size());
  TDG_CHECK(n >= 1 && e.size() + 1 >= d.size(), "eigenvalues_bisect: sizes");
  TDG_CHECK(0 <= il && il <= iu && iu < n, "eigenvalues_bisect: bad range");

  obs::Span bisect_span("bisect");
  bisect_span.attr("n", n);
  bisect_span.attr("nvals", iu - il + 1);

  // Gershgorin bounds.
  double lo = d[0], hi = d[0];
  for (index_t i = 0; i < n; ++i) {
    const double r =
        ((i > 0) ? std::abs(e[static_cast<std::size_t>(i - 1)]) : 0.0) +
        ((i + 1 < n) ? std::abs(e[static_cast<std::size_t>(i)]) : 0.0);
    lo = std::min(lo, d[static_cast<std::size_t>(i)] - r);
    hi = std::max(hi, d[static_cast<std::size_t>(i)] + r);
  }
  const double span = std::max(hi - lo, 1e-300);
  lo -= 1e-12 * span;
  hi += 1e-12 * span;

  std::vector<double> vals;
  vals.reserve(static_cast<std::size_t>(iu - il + 1));
  for (index_t idx = il; idx <= iu; ++idx) {
    // Bisection: find x with count(x) <= idx < count at upper end —
    // eigenvalue #idx (0-based) is the sup of {x : count(x) <= idx}.
    double a = lo, b = hi;
    for (int it = 0; it < 200; ++it) {
      const double mid = 0.5 * (a + b);
      if (mid == a || mid == b) break;
      if (sturm_count(d, e, mid) <= idx) {
        a = mid;
      } else {
        b = mid;
      }
    }
    vals.push_back(0.5 * (a + b));
  }
  return vals;
}

void inverse_iteration(const std::vector<double>& d,
                       const std::vector<double>& e,
                       const std::vector<double>& values, MatrixView z) {
  const index_t n = static_cast<index_t>(d.size());
  const index_t k = static_cast<index_t>(values.size());
  TDG_CHECK(z.rows == n && z.cols == k, "inverse_iteration: z shape");
  const double eps = std::numeric_limits<double>::epsilon();

  double tnorm = 0.0;
  for (index_t i = 0; i < n; ++i) {
    tnorm = std::max(tnorm, std::abs(d[static_cast<std::size_t>(i)]));
    if (i + 1 < n) tnorm = std::max(tnorm, std::abs(e[static_cast<std::size_t>(i)]));
  }
  const double pert = std::max(tnorm, 1.0) * eps;

  // Workspace for the LU factors of (T - lambda I) with partial pivoting
  // (three factor diagonals + pivot flags), Thomas-style.
  std::vector<double> du1(static_cast<std::size_t>(n)),
      du2(static_cast<std::size_t>(n)), dl(static_cast<std::size_t>(n)),
      diag(static_cast<std::size_t>(n)), x(static_cast<std::size_t>(n));
  std::vector<char> swapped(static_cast<std::size_t>(n));
  Rng rng(0x5eedu);

  for (index_t j = 0; j < k; ++j) {
    // Perturb the shift slightly so exactly-singular systems stay solvable
    // and clustered values get distinct shifts.
    const double lambda = values[static_cast<std::size_t>(j)] +
                          pert * static_cast<double>(j % 3);

    // LU of (T - lambda I) with partial pivoting.
    for (index_t i = 0; i < n; ++i) {
      diag[static_cast<std::size_t>(i)] =
          d[static_cast<std::size_t>(i)] - lambda;
      du1[static_cast<std::size_t>(i)] =
          (i + 1 < n) ? e[static_cast<std::size_t>(i)] : 0.0;
      dl[static_cast<std::size_t>(i)] =
          (i + 1 < n) ? e[static_cast<std::size_t>(i)] : 0.0;
      du2[static_cast<std::size_t>(i)] = 0.0;
    }
    for (index_t i = 0; i + 1 < n; ++i) {
      double* di = &diag[static_cast<std::size_t>(i)];
      double* dn = &diag[static_cast<std::size_t>(i + 1)];
      double* u1 = &du1[static_cast<std::size_t>(i)];
      const double sub = dl[static_cast<std::size_t>(i)];
      if (std::abs(*di) >= std::abs(sub)) {
        swapped[static_cast<std::size_t>(i)] = 0;
        if (*di == 0.0) *di = pert;
        const double m = sub / *di;
        dl[static_cast<std::size_t>(i)] = m;  // store multiplier
        *dn -= m * *u1;
      } else {
        swapped[static_cast<std::size_t>(i)] = 1;
        const double m = *di / sub;
        dl[static_cast<std::size_t>(i)] = m;
        // Swap rows i and i+1 of the factorisation.
        *di = sub;
        const double tmp = *u1;
        *u1 = *dn;
        du2[static_cast<std::size_t>(i)] =
            (i + 2 < n) ? du1[static_cast<std::size_t>(i + 1)] : 0.0;
        *dn = tmp - m * *u1;
        if (i + 2 < n) {
          du1[static_cast<std::size_t>(i + 1)] =
              -m * du2[static_cast<std::size_t>(i)];
        }
      }
    }
    if (diag[static_cast<std::size_t>(n - 1)] == 0.0) {
      diag[static_cast<std::size_t>(n - 1)] = pert;
    }

    // Start from a random vector; two inverse-iteration solves suffice.
    for (index_t i = 0; i < n; ++i)
      x[static_cast<std::size_t>(i)] = rng.uniform(-0.5, 0.5);
    for (int iter = 0; iter < 3; ++iter) {
      // Forward substitution (respecting pivoting swaps).
      for (index_t i = 0; i + 1 < n; ++i) {
        const double m = dl[static_cast<std::size_t>(i)];
        if (swapped[static_cast<std::size_t>(i)]) {
          std::swap(x[static_cast<std::size_t>(i)],
                    x[static_cast<std::size_t>(i + 1)]);
        }
        x[static_cast<std::size_t>(i + 1)] -= m * x[static_cast<std::size_t>(i)];
      }
      // Back substitution with the 3-diagonal U.
      for (index_t i = n - 1; i >= 0; --i) {
        double s = x[static_cast<std::size_t>(i)];
        if (i + 1 < n) s -= du1[static_cast<std::size_t>(i)] *
                             x[static_cast<std::size_t>(i + 1)];
        if (i + 2 < n) s -= du2[static_cast<std::size_t>(i)] *
                             x[static_cast<std::size_t>(i + 2)];
        x[static_cast<std::size_t>(i)] = s / diag[static_cast<std::size_t>(i)];
        if (i == 0) break;
      }
      const double nrm = la::nrm2(n, x.data());
      if (nrm > 0.0) la::scal(n, 1.0 / nrm, x.data());
    }

    // Re-orthogonalise against earlier vectors of the same cluster.
    for (index_t p = j - 1; p >= 0; --p) {
      const double gap = std::abs(values[static_cast<std::size_t>(j)] -
                                  values[static_cast<std::size_t>(p)]);
      if (gap > 1e-3 * std::max(tnorm, 1.0)) break;
      const double proj = la::dot(n, z.col(p), x.data());
      la::axpy(n, -proj, z.col(p), x.data());
      if (p == 0) break;
    }
    const double nrm = la::nrm2(n, x.data());
    if (nrm > 0.0) la::scal(n, 1.0 / nrm, x.data());
    for (index_t i = 0; i < n; ++i) z(i, j) = x[static_cast<std::size_t>(i)];
  }
}

}  // namespace tdg::eig
