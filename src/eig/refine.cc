#include "eig/refine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "common/fault.h"
#include "la/blas.h"
#include "obs/obs.h"

namespace tdg::eig {

namespace {

/// ||A||_F from the lower triangle (off-diagonal entries counted twice).
double frobenius_from_lower(ConstMatrixView a) {
  double s = 0.0;
  for (index_t j = 0; j < a.cols; ++j) {
    s += a(j, j) * a(j, j);
    for (index_t i = j + 1; i < a.rows; ++i) s += 2.0 * a(i, j) * a(i, j);
  }
  return std::sqrt(s);
}

/// ax = A x (fills), then max_i ||ax_i - w_i x_i||_2.
double max_residual(ConstMatrixView afull, ConstMatrixView x,
                    const std::vector<double>& w, MatrixView ax) {
  la::gemm(Trans::kNo, Trans::kNo, 1.0, afull, x, 0.0, ax);
  const index_t n = x.rows;
  double worst = 0.0;
  for (index_t j = 0; j < x.cols; ++j) {
    const double* axj = ax.col(j);
    const double* xj = x.col(j);
    const double wj = w[static_cast<std::size_t>(j)];
    double s = 0.0;
    for (index_t i = 0; i < n; ++i) {
      const double r = axj[i] - wj * xj[i];
      s += r * r;
    }
    worst = std::max(worst, std::sqrt(s));
  }
  return worst;
}

}  // namespace

RefineOutcome refine_eigenpairs(ConstMatrixView a, std::vector<double>& w,
                                MatrixView x,
                                const plan::RefineOptions& opts) {
  const index_t n = a.rows;
  TDG_CHECK(a.rows == a.cols, "refine_eigenpairs: matrix must be square");
  TDG_CHECK(x.rows == n && x.cols == n &&
                w.size() == static_cast<std::size_t>(n),
            "refine_eigenpairs: eigenpair shape mismatch");

  RefineOutcome out;
  constexpr double kEps = std::numeric_limits<double>::epsilon();
  const index_t max_iters = opts.max_iters > 0 ? opts.max_iters : 2;
  const double tol_rel = opts.tol > 0.0 ? opts.tol : 50.0 * kEps;
  out.norm_a = frobenius_from_lower(a);
  out.tol = tol_rel * out.norm_a;
  if (n == 0 || out.norm_a == 0.0) {
    out.converged = true;
    return out;
  }

  // The fault site fires the stage's natural failure: refinement "does not
  // converge", so the caller takes the real fp32->fp64 recovery path.
  if (fault::should_fire("evd_refine")) return out;

  obs::Span span("evd_refine");
  span.attr("n", n);

  // The sweeps need A's full symmetric content for the AX / X^T A X GEMMs.
  Matrix afull(n, n);
  for (index_t j = 0; j < n; ++j) {
    afull(j, j) = a(j, j);
    for (index_t i = j + 1; i < n; ++i) {
      afull(i, j) = a(i, j);
      afull(j, i) = a(i, j);
    }
  }

  Matrix ax(n, n);
  double res = max_residual(afull.view(), x, w, ax.view());

  std::vector<double> lam(static_cast<std::size_t>(n));
  for (index_t iter = 0; iter < max_iters && res > out.tol; ++iter) {
    // S = X^T (A X), G = X^T X (ax already holds A X from the residual).
    Matrix s(n, n);
    la::gemm(Trans::kTrans, Trans::kNo, 1.0, x, ax.view(), 0.0, s.view());
    Matrix g(n, n);
    la::gemm(Trans::kTrans, Trans::kNo, 1.0, x, x, 0.0, g.view());

    for (index_t i = 0; i < n; ++i) {
      const double gii = g(i, i);
      lam[static_cast<std::size_t>(i)] = gii != 0.0 ? s(i, i) / gii : s(i, i);
    }

    // Gaps below delta are treated as one cluster this sweep (orthogonality
    // repair only); delta tightens with the residual, so moderately close
    // pairs separate on the next sweep instead of amplifying noise now.
    const double delta = std::max(10.0 * res, 10.0 * kEps * out.norm_a);

    Matrix e(n, n);
    for (index_t j = 0; j < n; ++j) {
      for (index_t i = 0; i < n; ++i) {
        const double rij = (i == j ? 1.0 : 0.0) - g(i, j);
        if (i == j) {
          e(i, j) = 0.5 * rij;
          continue;
        }
        const double gap = lam[static_cast<std::size_t>(j)] -
                           lam[static_cast<std::size_t>(i)];
        if (std::fabs(gap) > delta) {
          e(i, j) = (s(i, j) + lam[static_cast<std::size_t>(j)] * rij) / gap;
        } else {
          e(i, j) = 0.5 * rij;
        }
      }
    }

    // X <- X + X E.
    Matrix xe(n, n);
    la::gemm(Trans::kNo, Trans::kNo, 1.0, x, e.view(), 0.0, xe.view());
    for (index_t j = 0; j < n; ++j) {
      double* xj = x.col(j);
      const double* xej = xe.view().col(j);
      for (index_t i = 0; i < n; ++i) xj[i] += xej[i];
    }
    w = lam;
    ++out.iters;
    res = max_residual(afull.view(), x, w, ax.view());
  }

  // Refinement can reorder near-ties; restore the ascending contract.
  std::vector<index_t> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), index_t{0});
  std::sort(perm.begin(), perm.end(), [&](index_t i, index_t j) {
    return w[static_cast<std::size_t>(i)] < w[static_cast<std::size_t>(j)];
  });
  bool sorted = true;
  for (index_t i = 0; i < n; ++i) {
    if (perm[static_cast<std::size_t>(i)] != i) {
      sorted = false;
      break;
    }
  }
  if (!sorted) {
    std::vector<double> ws(static_cast<std::size_t>(n));
    Matrix xs(n, n);
    for (index_t j = 0; j < n; ++j) {
      const index_t src = perm[static_cast<std::size_t>(j)];
      ws[static_cast<std::size_t>(j)] = w[static_cast<std::size_t>(src)];
      const double* from = x.col(src);
      double* to = xs.view().col(j);
      for (index_t i = 0; i < n; ++i) to[i] = from[i];
    }
    w = ws;
    copy(xs.view(), x);
  }

  out.residual = res;
  out.converged = res <= out.tol;
  span.attr("iters", out.iters);
  span.attr("converged", out.converged ? 1 : 0);
  return out;
}

}  // namespace tdg::eig
