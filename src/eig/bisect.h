// Subset eigensolver for symmetric tridiagonal matrices: Sturm-sequence
// bisection for eigenvalues by index range (LAPACK stebz lineage) and
// inverse iteration for the matching eigenvectors (stein lineage).
//
// Combined with the two-stage tridiagonalization this gives the classic
// "k eigenpairs of a dense symmetric matrix" driver (eigh_range in
// drivers.h): the expensive back transformations then run on k columns
// instead of n, which matters precisely because the paper shows the
// eigenvector path is dominated by back-transform cost.
#pragma once

#include <vector>

#include "la/matrix.h"

namespace tdg::eig {

/// Number of eigenvalues of the tridiagonal T(d, e) strictly below x
/// (Sturm count via the LDL^T sign recurrence with pivot safeguarding).
index_t sturm_count(const std::vector<double>& d, const std::vector<double>& e,
                    double x);

/// Eigenvalues with indices [il, iu] (0-based, ascending, inclusive) by
/// bisection to ~machine precision. Requires 0 <= il <= iu < n.
std::vector<double> eigenvalues_bisect(const std::vector<double>& d,
                                       const std::vector<double>& e,
                                       index_t il, index_t iu);

/// Inverse-iteration eigenvectors of T(d, e) for the given eigenvalues
/// (ascending). Vectors within a numerically close cluster are
/// re-orthogonalised. z must be n x values.size().
void inverse_iteration(const std::vector<double>& d,
                       const std::vector<double>& e,
                       const std::vector<double>& values, MatrixView z);

}  // namespace tdg::eig
