// End-to-end symmetric eigenvalue decomposition drivers.
//
// eigh() mirrors the paper's Figure 16 pipelines: tridiagonalize (direct,
// classic two-stage, or DBBR + GPU-style bulge chasing), solve the
// tridiagonal problem (divide & conquer, or implicit QL), and — when
// eigenvectors are requested — back-transform through Q2 (bulge chasing)
// and Q1 (band reduction).
#pragma once

#include <string>
#include <vector>

#include "core/tridiag.h"
#include "la/matrix.h"
#include "plan/plan.h"

namespace tdg::eig {

enum class TridiagSolver {
  kDivideConquer,  // stedc — the paper composes with MAGMA's D&C
  kImplicitQl,     // steqr
};

struct EvdOptions {
  bool vectors = true;
  /// How unset (zero) knobs across the whole pipeline — tridiag, solver
  /// base case, back transformations — are resolved (src/plan/plan.h).
  /// Governs the run end to end; tridiag.plan is ignored under eigh.
  PlanMode plan = PlanMode::kHeuristic;
  TridiagOptions tridiag;  // which tridiagonalization pipeline to run
  TridiagSolver solver = TridiagSolver::kDivideConquer;
  /// Consolidated solver / back-transform knobs (0 = auto, filled from the
  /// resolved plan). The preferred spelling; merged once at driver entry by
  /// plan::resolve_and_validate().
  plan::Knobs knobs;
  /// DEPRECATED aliases for knobs.{smlsiz, bt_kw, q2_group} (kept one
  /// release; see README migration note). Assignments still compile and
  /// forward into the merged knob vector; an explicitly-set `knobs` field
  /// wins when both are set.
  index_t smlsiz = 0;    // D&C base-case size (0 = auto)
  index_t bt_kw = 0;     // stage-1 back-transform group width (0 = auto)
  index_t q2_group = 0;  // stage-2 reflector-chunk size (0 = auto)
  /// Screen the input for NaN/Inf up front and fail fast with a typed
  /// Error(kInvalidInput) instead of letting a bad entry surface as a
  /// non-convergence (or silent garbage) deep in the pipeline. One O(n^2/2)
  /// read pass; set false to skip on pre-validated inputs.
  bool check_finite = true;
  /// On Error(kNoConvergence) from the tridiagonal solver, degrade through
  /// the fallback chain (D&C -> steqr -> bisection + inverse iteration)
  /// instead of failing; the path taken is recorded in EvdResult.recovery.
  /// Set false to surface the first solver failure unrecovered.
  bool solver_fallback = true;
  /// Fill EvdResult.profile with a per-phase breakdown: measured seconds,
  /// FP64 flops, achieved GFLOP/s, and the gpumodel H100 projection for the
  /// same phase. Adds one trace::Recorder per phase (cheap: shape capture
  /// only) plus one model pricing pass at the end.
  bool profile = false;
};

/// One pipeline phase of a profiled run; `children` subdivides composite
/// phases (tridiag -> stage1/stage2, backtransform -> q2/q1).
struct PhaseProfile {
  std::string name;
  double seconds = 0.0;        // measured wall time
  double flops = 0.0;          // FP64 flops attributed to this phase
  double gflops = 0.0;         // achieved: flops / seconds / 1e9
  double model_seconds = 0.0;  // gpumodel H100 projection (0 = not modeled)
  std::vector<PhaseProfile> children;
};

/// Model-vs-measured breakdown of one eigh() run (EvdOptions::profile).
/// Comparing `seconds` against `model_seconds` per phase shows how far the
/// CPU execution sits from the paper's projected device times — the same
/// shapes priced by the same KernelModel the benchmarks use.
struct EvdProfile {
  bool enabled = false;
  std::vector<PhaseProfile> phases;  // pipeline order
  double total_seconds = 0.0;
  double total_flops = 0.0;
};

struct EvdResult {
  std::vector<double> eigenvalues;  // ascending
  Matrix eigenvectors;              // n x n, column j for eigenvalue j
                                    // (empty when vectors == false)
  /// Where the knob vector came from: "defaults", "heuristic", "measured",
  /// or "cache" (plan::to_string of the resolved plan's source).
  std::string plan_source;
  /// Solver degradation taken to produce this result: "" (none),
  /// "dc->steqr", "dc->steqr->bisect", or "steqr->bisect". A non-empty
  /// value means the primary tridiagonal solver raised kNoConvergence and
  /// the result came from a fallback — still a correct decomposition, at
  /// (possibly) higher cost.
  std::string recovery;
  double seconds_tridiag = 0.0;
  double seconds_solver = 0.0;
  double seconds_backtransform = 0.0;
  /// Per-phase measured/model breakdown; empty unless EvdOptions::profile.
  EvdProfile profile;
};

/// The merged knob sub-struct for an EvdOptions: the new `knobs` field with
/// the deprecated loose fields (then tridiag.knobs) folded in underneath.
/// Drivers call this once at entry; exposed so callers can inspect what a
/// given options object will actually request.
plan::Knobs merged_knobs(const EvdOptions& opts);

/// Full symmetric EVD of `a` (lower triangle read): A = V diag(w) V^T.
EvdResult eigh(ConstMatrixView a, const EvdOptions& opts = {});

/// Same, against a pre-resolved plan: no planner consultation happens —
/// every auto knob is filled from `plan` (explicit knobs still win) and the
/// result is bitwise identical to what a batch worker sharing `plan`
/// produces for the same input. opts.plan (the PlanMode) is ignored.
EvdResult eigh(ConstMatrixView a, const EvdOptions& opts,
               const plan::Plan& plan);

/// Subset EVD: eigenpairs with 0-based ascending indices [il, iu]
/// (inclusive). Eigenvalues come from Sturm bisection, eigenvectors from
/// inverse iteration, and — the point of the exercise — the expensive Q2/Q1
/// back transformations only touch iu-il+1 columns instead of n.
EvdResult eigh_range(ConstMatrixView a, index_t il, index_t iu,
                     const EvdOptions& opts = {});

/// Subset EVD against a pre-resolved plan. Subset solves issued inside a
/// batch (or any caller that already holds a plan for the shape bucket)
/// skip the per-call planner pass entirely.
EvdResult eigh_range(ConstMatrixView a, index_t il, index_t iu,
                     const EvdOptions& opts, const plan::Plan& plan);

}  // namespace tdg::eig
