// End-to-end symmetric eigenvalue decomposition drivers.
//
// eigh() mirrors the paper's Figure 16 pipelines: tridiagonalize (direct,
// classic two-stage, or DBBR + GPU-style bulge chasing), solve the
// tridiagonal problem (divide & conquer, or implicit QL), and — when
// eigenvectors are requested — back-transform through Q2 (bulge chasing)
// and Q1 (band reduction).
#pragma once

#include <string>
#include <vector>

#include "core/tridiag.h"
#include "la/matrix.h"

namespace tdg::eig {

enum class TridiagSolver {
  kDivideConquer,  // stedc — the paper composes with MAGMA's D&C
  kImplicitQl,     // steqr
};

struct EvdOptions {
  bool vectors = true;
  /// How unset (zero) knobs across the whole pipeline — tridiag, solver
  /// base case, back transformations — are resolved (src/plan/plan.h).
  /// Governs the run end to end; tridiag.plan is ignored under eigh.
  PlanMode plan = PlanMode::kHeuristic;
  TridiagOptions tridiag;  // which tridiagonalization pipeline to run
  TridiagSolver solver = TridiagSolver::kDivideConquer;
  index_t smlsiz = 0;    // D&C base-case size (0 = auto)
  index_t bt_kw = 0;     // stage-1 back-transform group width (0 = auto)
  index_t q2_group = 0;  // stage-2 reflector-chunk size (0 = auto)
};

struct EvdResult {
  std::vector<double> eigenvalues;  // ascending
  Matrix eigenvectors;              // n x n, column j for eigenvalue j
                                    // (empty when vectors == false)
  /// Where the knob vector came from: "defaults", "heuristic", "measured",
  /// or "cache" (plan::to_string of the resolved plan's source).
  std::string plan_source;
  double seconds_tridiag = 0.0;
  double seconds_solver = 0.0;
  double seconds_backtransform = 0.0;
};

/// Full symmetric EVD of `a` (lower triangle read): A = V diag(w) V^T.
EvdResult eigh(ConstMatrixView a, const EvdOptions& opts = {});

/// Subset EVD: eigenpairs with 0-based ascending indices [il, iu]
/// (inclusive). Eigenvalues come from Sturm bisection, eigenvectors from
/// inverse iteration, and — the point of the exercise — the expensive Q2/Q1
/// back transformations only touch iu-il+1 columns instead of n.
EvdResult eigh_range(ConstMatrixView a, index_t il, index_t iu,
                     const EvdOptions& opts = {});

}  // namespace tdg::eig
