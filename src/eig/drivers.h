// End-to-end symmetric eigenvalue decomposition drivers.
//
// eigh() mirrors the paper's Figure 16 pipelines: tridiagonalize (direct,
// classic two-stage, or DBBR + GPU-style bulge chasing), solve the
// tridiagonal problem (divide & conquer, or implicit QL), and — when
// eigenvectors are requested — back-transform through Q2 (bulge chasing)
// and Q1 (band reduction).
#pragma once

#include <string>
#include <vector>

#include "core/tridiag.h"
#include "la/matrix.h"
#include "plan/plan.h"

namespace tdg::eig {

enum class TridiagSolver {
  kDivideConquer,  // stedc — the paper composes with MAGMA's D&C
  kImplicitQl,     // steqr
};

struct EvdOptions {
  bool vectors = true;
  /// Execution mode of the request (the first-class axis of this API; see
  /// plan::EvdMode). Interactions are canonicalized by plan::normalized():
  /// vectors == false maps to kValuesOnly; kValuesOnly forces vectors off;
  /// kMixedPrecision without vectors runs kValuesOnly at FP64 (there is
  /// nothing for the FP64 refinement to verify). kMixedPrecision runs the
  /// FP32 reduction engine, then FP64 Ogita–Aishima refinement; if the
  /// residual test fails, the driver reruns the standard FP64 path and
  /// records recovery = "fp32->fp64".
  plan::EvdMode mode = plan::EvdMode::kStandard;
  /// How unset (zero) knobs across the whole pipeline — tridiag, solver
  /// base case, back transformations — are resolved (src/plan/plan.h).
  /// Governs the run end to end; tridiag.plan is ignored under eigh.
  PlanMode plan = PlanMode::kHeuristic;
  TridiagOptions tridiag;  // which tridiagonalization pipeline to run
  TridiagSolver solver = TridiagSolver::kDivideConquer;
  /// Consolidated solver / back-transform / refinement knobs (0 = auto,
  /// filled from the resolved plan). The only spelling — the deprecated
  /// loose aliases (smlsiz / bt_kw / q2_group) were removed after their
  /// one-release window (README migration note). knobs.refine configures
  /// the kMixedPrecision FP64 refinement stage.
  plan::Knobs knobs;
  /// Screen the input for NaN/Inf up front and fail fast with a typed
  /// Error(kInvalidInput) instead of letting a bad entry surface as a
  /// non-convergence (or silent garbage) deep in the pipeline. One O(n^2/2)
  /// read pass; set false to skip on pre-validated inputs.
  bool check_finite = true;
  /// On Error(kNoConvergence) from the tridiagonal solver, degrade through
  /// the fallback chain (D&C -> steqr -> bisection + inverse iteration)
  /// instead of failing; the path taken is recorded in EvdResult.recovery.
  /// Set false to surface the first solver failure unrecovered.
  bool solver_fallback = true;
  /// Fill EvdResult.profile with a per-phase breakdown: measured seconds,
  /// FP64 flops, achieved GFLOP/s, and the gpumodel H100 projection for the
  /// same phase. Adds one trace::Recorder per phase (cheap: shape capture
  /// only) plus one model pricing pass at the end.
  bool profile = false;
};

/// One pipeline phase of a profiled run; `children` subdivides composite
/// phases (tridiag -> stage1/stage2, backtransform -> q2/q1).
struct PhaseProfile {
  std::string name;
  double seconds = 0.0;        // measured wall time
  double flops = 0.0;          // FP64 flops attributed to this phase
  double gflops = 0.0;         // achieved: flops / seconds / 1e9
  double model_seconds = 0.0;  // gpumodel H100 projection (0 = not modeled)
  std::vector<PhaseProfile> children;
};

/// Model-vs-measured breakdown of one eigh() run (EvdOptions::profile).
/// Comparing `seconds` against `model_seconds` per phase shows how far the
/// CPU execution sits from the paper's projected device times — the same
/// shapes priced by the same KernelModel the benchmarks use.
struct EvdProfile {
  bool enabled = false;
  std::vector<PhaseProfile> phases;  // pipeline order
  double total_seconds = 0.0;
  double total_flops = 0.0;
};

struct EvdResult {
  std::vector<double> eigenvalues;  // ascending
  Matrix eigenvectors;              // n x n, column j for eigenvalue j
                                    // (empty when vectors == false)
  /// The execution mode that actually produced this result (after
  /// plan::normalized() and any fp32->fp64 recovery) — kStandard for a
  /// mixed-precision request that fell back to full FP64.
  plan::EvdMode mode = plan::EvdMode::kStandard;
  /// Where the knob vector came from: "defaults", "heuristic", "measured",
  /// or "cache" (plan::to_string of the resolved plan's source), plus
  /// schedule/mode suffixes ("+la1", "+fp32", "+vo").
  std::string plan_source;
  /// Degradation taken to produce this result: "" (none), a solver chain
  /// ("dc->steqr", "dc->steqr->bisect", "steqr->bisect"), "fp32->fp64"
  /// (mixed-precision residual test failed; full-FP64 rerun), or
  /// "fp32->fp64," + a solver chain when both happened. A non-empty value
  /// still denotes a correct decomposition, at (possibly) higher cost.
  std::string recovery;
  /// FP64 refinement sweeps run and the final residual (kMixedPrecision
  /// results that did not fall back; zero otherwise).
  index_t refine_iters = 0;
  double refine_residual = 0.0;
  /// Process-wide dense-workspace high-water mark (la::workspace_peak_bytes)
  /// observed at completion. Meaningful when the caller resets the peak
  /// around a single solve; under concurrency it is the shared high water.
  std::size_t peak_workspace_bytes = 0;
  double seconds_tridiag = 0.0;  // kMixedPrecision: the whole FP32 stage
  double seconds_solver = 0.0;
  double seconds_backtransform = 0.0;
  double seconds_refine = 0.0;  // kMixedPrecision only
  /// Per-phase measured/model breakdown; empty unless EvdOptions::profile
  /// (standard-mode FP64 runs only — the FP32 engine is untraced).
  EvdProfile profile;
};

/// The merged knob sub-struct for an EvdOptions: the new `knobs` field with
/// the deprecated loose fields (then tridiag.knobs) folded in underneath.
/// Drivers call this once at entry; exposed so callers can inspect what a
/// given options object will actually request.
plan::Knobs merged_knobs(const EvdOptions& opts);

/// Resolve an options object exactly as eigh() would — normalize the
/// mode/vectors axis (plan::normalized), merge the knob layers, and
/// validate them (negative knobs throw Error(kInvalidInput)) — without
/// running anything. The returned object has mode/vectors canonicalized
/// and knobs replaced by the merged vector; feeding it back to eigh() is
/// idempotent. Use it to vet a request (e.g. at a service boundary) before
/// committing compute.
EvdOptions validate(const EvdOptions& opts);

/// Full symmetric EVD of `a` (lower triangle read): A = V diag(w) V^T.
EvdResult eigh(ConstMatrixView a, const EvdOptions& opts = {});

/// Same, against a pre-resolved plan: no planner consultation happens —
/// every auto knob is filled from `plan` (explicit knobs still win) and the
/// result is bitwise identical to what a batch worker sharing `plan`
/// produces for the same input. opts.plan (the PlanMode) is ignored.
EvdResult eigh(ConstMatrixView a, const EvdOptions& opts,
               const plan::Plan& plan);

/// Subset EVD: eigenpairs with 0-based ascending indices [il, iu]
/// (inclusive). Eigenvalues come from Sturm bisection, eigenvectors from
/// inverse iteration, and — the point of the exercise — the expensive Q2/Q1
/// back transformations only touch iu-il+1 columns instead of n.
EvdResult eigh_range(ConstMatrixView a, index_t il, index_t iu,
                     const EvdOptions& opts = {});

/// Subset EVD against a pre-resolved plan. Subset solves issued inside a
/// batch (or any caller that already holds a plan for the shape bucket)
/// skip the per-call planner pass entirely.
EvdResult eigh_range(ConstMatrixView a, index_t il, index_t iu,
                     const EvdOptions& opts, const plan::Plan& plan);

}  // namespace tdg::eig
