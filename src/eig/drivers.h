// End-to-end symmetric eigenvalue decomposition drivers.
//
// eigh() mirrors the paper's Figure 16 pipelines: tridiagonalize (direct,
// classic two-stage, or DBBR + GPU-style bulge chasing), solve the
// tridiagonal problem (divide & conquer, or implicit QL), and — when
// eigenvectors are requested — back-transform through Q2 (bulge chasing)
// and Q1 (band reduction).
#pragma once

#include <vector>

#include "core/tridiag.h"
#include "la/matrix.h"

namespace tdg::eig {

enum class TridiagSolver {
  kDivideConquer,  // stedc — the paper composes with MAGMA's D&C
  kImplicitQl,     // steqr
};

struct EvdOptions {
  bool vectors = true;
  TridiagOptions tridiag;  // which tridiagonalization pipeline to run
  TridiagSolver solver = TridiagSolver::kDivideConquer;
  index_t smlsiz = 32;   // D&C base-case size
  index_t bt_kw = 256;   // stage-1 back-transform group width
};

struct EvdResult {
  std::vector<double> eigenvalues;  // ascending
  Matrix eigenvectors;              // n x n, column j for eigenvalue j
                                    // (empty when vectors == false)
  double seconds_tridiag = 0.0;
  double seconds_solver = 0.0;
  double seconds_backtransform = 0.0;
};

/// Full symmetric EVD of `a` (lower triangle read): A = V diag(w) V^T.
EvdResult eigh(ConstMatrixView a, const EvdOptions& opts = {});

/// Subset EVD: eigenpairs with 0-based ascending indices [il, iu]
/// (inclusive). Eigenvalues come from Sturm bisection, eigenvectors from
/// inverse iteration, and — the point of the exercise — the expensive Q2/Q1
/// back transformations only touch iu-il+1 columns instead of n.
EvdResult eigh_range(ConstMatrixView a, index_t il, index_t iu,
                     const EvdOptions& opts = {});

}  // namespace tdg::eig
