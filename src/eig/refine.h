// FP64 eigenpair refinement (Ogita–Aishima style Newton sweeps).
//
// Input: approximate eigenpairs (w, X) of symmetric A — in this library
// the output of the FP32 reduction pipeline, carrying O(eps_fp32 ||A||)
// error. Each sweep costs ~8 n^3 FP64 flops and squares the error:
//   R = I - X^T X,  S = X^T A X,
//   lam_i = S_ii / (X^T X)_ii                  (Rayleigh quotients)
//   E_ii  = R_ii / 2
//   E_ij  = (S_ij + lam_j R_ij) / (lam_j - lam_i)   when the gap exceeds
//           the per-sweep cluster threshold, else R_ij / 2 (orthogonality
//           repair only — clustered directions resolve on later sweeps as
//           the threshold tightens with the residual),
//   X <- X + X E,  w <- lam.
// Acceptance is residual-based and basis-invariant:
//   max_i ||A x_i - w_i x_i||_2 <= tol * ||A||_F.
// Two sweeps take eps_fp32-accurate pairs to the FP64 floor; a failed
// acceptance is reported (never thrown) so the driver can rerun in FP64.
#pragma once

#include <vector>

#include "la/matrix.h"
#include "plan/knobs.h"

namespace tdg::eig {

struct RefineOutcome {
  index_t iters = 0;       // sweeps actually run
  double residual = 0.0;   // final max_i ||A x_i - w_i x_i||_2
  double norm_a = 0.0;     // ||A||_F, the acceptance scale
  double tol = 0.0;        // absolute acceptance threshold (tol_rel * norm_a)
  bool converged = false;  // residual <= tol on exit
};

/// Refine (w, x) in place against `a` (lower triangle read). Resolves
/// RefineOptions zeros to the documented autos (max_iters 2, tol
/// 50 * eps_fp64). Fault site "evd_refine" (docs/ALGORITHMS.md §11) forces
/// the natural failure: no sweeps run and converged comes back false.
/// On return eigenpairs are sorted ascending by w.
RefineOutcome refine_eigenpairs(ConstMatrixView a, std::vector<double>& w,
                                MatrixView x,
                                const plan::RefineOptions& opts);

}  // namespace tdg::eig
