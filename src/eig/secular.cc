#include "eig/secular.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "common/check.h"
#include "common/fault.h"

namespace tdg::eig {

namespace {

// f(d[base] + mu) evaluated in the shifted variable:
// g(mu) = 1 + rho * sum_i z_i^2 / ((d_i - d_base) - mu).
// Also returns g'(mu) = rho * sum_i z_i^2 / ((d_i - d_base) - mu)^2 > 0.
struct Eval {
  double g;
  double dg;
};

Eval eval_secular(const std::vector<double>& d, const std::vector<double>& z,
                  double rho, index_t base, double mu) {
  const double dbase = d[static_cast<std::size_t>(base)];
  double g = 1.0;
  double dg = 0.0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    const double delta = (d[i] - dbase) - mu;
    const double t = z[i] / delta;
    g += rho * z[i] * t;
    dg += rho * t * t;
  }
  return {g, dg};
}

// Find the root in the open mu-interval (lo, hi) relative to `base`, where
// g(lo+) and g(hi-) have opposite signs by construction. Bisection brackets,
// then safeguarded Newton polishes to machine relative accuracy.
double solve_in_interval(const std::vector<double>& d,
                         const std::vector<double>& z, double rho,
                         index_t base, double lo, double hi) {
  double mu = 0.5 * (lo + hi);
  // Bisection: g is strictly increasing in mu (all denominators' derivative
  // contributions positive), g(lo+) = -inf side or finite negative, g(hi-)
  // positive. Maintain the invariant g(lo) < 0 < g(hi).
  for (int it = 0; it < 80; ++it) {
    const Eval ev = eval_secular(d, z, rho, base, mu);
    if (ev.g == 0.0) return mu;
    if (ev.g < 0.0) {
      lo = mu;
    } else {
      hi = mu;
    }
    const double next = 0.5 * (lo + hi);
    if (next == mu || next <= lo || next >= hi) break;
    mu = next;
  }
  // Newton polish with interval safeguard.
  for (int it = 0; it < 8; ++it) {
    const Eval ev = eval_secular(d, z, rho, base, mu);
    if (ev.dg == 0.0) break;
    double step = -ev.g / ev.dg;
    double next = mu + step;
    if (!(next > lo) || !(next < hi)) break;  // out of bracket: keep bisection
    if (next == mu) break;
    mu = next;
  }
  return mu;
}

}  // namespace

std::vector<SecularRoot> solve_secular(const std::vector<double>& d,
                                       const std::vector<double>& z,
                                       double rho) {
  const index_t k = static_cast<index_t>(d.size());
  TDG_CHECK(k >= 1 && z.size() == d.size(), "solve_secular: size mismatch");
  TDG_CHECK(rho > 0.0, "solve_secular: rho must be positive");
  for (index_t i = 0; i + 1 < k; ++i) {
    TDG_CHECK(d[static_cast<std::size_t>(i)] < d[static_cast<std::size_t>(i + 1)],
              "solve_secular: poles must be strictly increasing");
  }

  double zz = 0.0;
  for (double zi : z) zz += zi * zi;

  std::vector<SecularRoot> roots(static_cast<std::size_t>(k));

  for (index_t j = 0; j < k; ++j) {
    if (fault::should_fire("secular_root")) {
      // Typed as kNoConvergence (a real secular solver can fail to bracket
      // a root) so the D&C driver's solver fallback chain engages.
      throw Error(ErrorCode::kNoConvergence,
                  "secular: fault 'secular_root' forced failure at root " +
                      std::to_string(j),
                  {"secular", j, 0});
    }
    if (j + 1 < k) {
      // Interior root in (d_j, d_{j+1}). Choose the shift origin by the sign
      // of f at the midpoint: f(mid) > 0 means the root is in the left half
      // (closer to d_j), otherwise the right half (closer to d_{j+1}).
      const double gap =
          d[static_cast<std::size_t>(j + 1)] - d[static_cast<std::size_t>(j)];
      const Eval mid = eval_secular(d, z, rho, j, 0.5 * gap);
      index_t base;
      double lo;
      double hi;
      if (mid.g >= 0.0) {
        base = j;
        lo = 0.0;
        hi = 0.5 * gap;
      } else {
        base = j + 1;
        lo = -0.5 * gap;
        hi = 0.0;
      }
      const double mu = solve_in_interval(d, z, rho, base, lo, hi);
      roots[static_cast<std::size_t>(j)] = {
          d[static_cast<std::size_t>(base)] + mu, mu, base};
    } else {
      // Last root in (d_{k-1}, d_{k-1} + rho * z^T z).
      double hi = rho * zz;
      // Ensure the bracket's upper end has g > 0 (it does analytically; the
      // loop guards against roundoff at the boundary).
      while (eval_secular(d, z, rho, k - 1, hi).g <= 0.0) hi *= 2.0;
      const double mu = solve_in_interval(d, z, rho, k - 1, 0.0, hi);
      roots[static_cast<std::size_t>(k - 1)] = {
          d[static_cast<std::size_t>(k - 1)] + mu, mu, k - 1};
    }
  }
  return roots;
}

std::vector<double> recompute_z(const std::vector<double>& d,
                                const std::vector<double>& z, double rho,
                                const std::vector<SecularRoot>& roots) {
  const index_t k = static_cast<index_t>(d.size());
  std::vector<double> zhat(static_cast<std::size_t>(k));
  for (index_t i = 0; i < k; ++i) {
    // From the characteristic polynomial of D + rho z z^T evaluated at d_i:
    // zhat_i^2 = prod_j (lambda_j - d_i) / (rho * prod_{j != i} (d_j - d_i)),
    // evaluated as O(1)-magnitude ratio pairs for stability.
    double prod = pole_minus_root(d, roots[static_cast<std::size_t>(i)], i) *
                  -1.0 / rho;  // (lambda_i - d_i) / rho
    for (index_t j = 0; j < k; ++j) {
      if (j == i) continue;
      const double num =
          -pole_minus_root(d, roots[static_cast<std::size_t>(j)], i);
      const double den =
          d[static_cast<std::size_t>(j)] - d[static_cast<std::size_t>(i)];
      prod *= num / den;
    }
    // Roundoff can push prod slightly negative when z_i is tiny.
    prod = std::max(prod, 0.0);
    zhat[static_cast<std::size_t>(i)] =
        std::copysign(std::sqrt(prod), z[static_cast<std::size_t>(i)]);
  }
  return zhat;
}

void secular_eigenvector(const std::vector<double>& d,
                         const std::vector<double>& zhat,
                         const std::vector<SecularRoot>& roots, index_t j,
                         double* v) {
  const index_t k = static_cast<index_t>(d.size());
  double norm2 = 0.0;
  for (index_t i = 0; i < k; ++i) {
    const double diff = pole_minus_root(d, roots[static_cast<std::size_t>(j)], i);
    const double vi = zhat[static_cast<std::size_t>(i)] / diff;
    v[i] = vi;
    norm2 += vi * vi;
  }
  const double inv = 1.0 / std::sqrt(norm2);
  for (index_t i = 0; i < k; ++i) v[i] *= inv;
}

}  // namespace tdg::eig
