#include "eig/drivers.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>

#include "common/cancel.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "common/trace.h"
#include "eig/bisect.h"
#include "eig/eig.h"
#include "eig/mixed.h"
#include "gpumodel/bc_pipeline_model.h"
#include "gpumodel/device_spec.h"
#include "gpumodel/kernel_model.h"
#include "la/workspace.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "plan/plan.h"

namespace tdg::eig {

namespace {

/// One planner pass for the whole pipeline: resolve the tridiag options,
/// the back-transform options, and the solver base case against a single
/// plan so every stage runs the same configuration. `pre` (optional) is a
/// caller-supplied plan — the batch / pre-resolved paths — which skips the
/// planner consultation entirely.
plan::ResolvedPipeline resolve_evd(const EvdOptions& opts, index_t n,
                                   index_t subset, const plan::Plan* pre) {
  const plan::ProblemShape shape{n, opts.vectors, subset, opts.mode};
  if (pre != nullptr) {
    return plan::resolve_and_validate(shape, *pre, opts.tridiag,
                                      merged_knobs(opts));
  }
  plan::PlannerOptions popts;
  popts.threads = opts.tridiag.threads;
  return plan::resolve_and_validate(shape, opts.plan, opts.tridiag,
                                    merged_knobs(opts), popts);
}

/// Record the model-vs-measured drift of a completed profile into the
/// registry ("profile.model_drift_pct", percent). Always-on: profiled runs
/// are rare and the drift distribution is the calibration telemetry the
/// gpumodel consumers read. Phases the model does not price (model_seconds
/// == 0) are excluded from the model total; a profile with no modeled
/// phases or no measured time records nothing.
void record_model_drift(const EvdProfile& profile) {
  static obs::Histogram* const drift = obs::Registry::global().histogram(
      "profile.model_drift_pct", obs::Gating::kAlways);
  double measured = 0.0;
  double model = 0.0;
  for (const PhaseProfile& p : profile.phases) {
    if (p.model_seconds <= 0.0) continue;
    measured += p.seconds;
    model += p.model_seconds;
  }
  if (model <= 0.0 || measured <= 0.0) return;
  const double pct = std::abs(measured - model) / model * 100.0;
  drift->record(static_cast<long long>(pct));
}

}  // namespace

plan::Knobs merged_knobs(const EvdOptions& opts) {
  // Precedence: the options-level sub-struct, then whatever rides on the
  // tridiag options (resolve_and_validate folds that one in itself, but
  // merging here keeps this function the complete answer for callers).
  return plan::merged(opts.knobs, opts.tridiag.knobs);
}

EvdOptions validate(const EvdOptions& opts) {
  EvdOptions out = opts;
  const plan::ProblemShape eff =
      plan::normalized(plan::ProblemShape{0, opts.vectors, 0, opts.mode});
  out.vectors = eff.vectors;
  out.mode = eff.mode;
  out.knobs = merged_knobs(opts);
  out.tridiag.knobs = plan::Knobs{};  // folded into out.knobs above
  TDG_CHECK(out.knobs.smlsiz >= 0 && out.knobs.bt_kw >= 0 &&
                out.knobs.q2_group >= 0 && out.knobs.lookahead >= -1,
            "eigh: negative knob");
  TDG_CHECK(out.knobs.refine.max_iters >= 0 && out.knobs.refine.tol >= 0.0,
            "eigh: negative refinement knob");
  TDG_CHECK(out.tridiag.b >= 0 && out.tridiag.k >= 0 &&
                out.tridiag.sytrd_nb >= 0 &&
                out.tridiag.max_parallel_sweeps >= 0,
            "eigh: negative tridiag knob");
  return out;
}

namespace {

/// True when `err` is a failure class the solver fallback chain recovers
/// from; anything else (invalid input, pipeline stall, cache I/O) is
/// re-raised to the caller unchanged.
bool recoverable(const Error& err) {
  return err.code() == ErrorCode::kNoConvergence;
}

/// Count a taken recovery path in the metrics registry. Always-on
/// (obs::Gating::kAlways): a fallback happens at most a handful of times per
/// eigh and its total must be trustworthy telemetry even in processes that
/// never armed TDG_METRICS.
void count_recovery(const std::string& path) {
  obs::Registry& r = obs::Registry::global();
  static obs::Counter* const dc_steqr =
      r.counter("evd.recovery.dc_steqr", obs::Gating::kAlways);
  static obs::Counter* const dc_steqr_bisect =
      r.counter("evd.recovery.dc_steqr_bisect", obs::Gating::kAlways);
  static obs::Counter* const steqr_bisect =
      r.counter("evd.recovery.steqr_bisect", obs::Gating::kAlways);
  if (path == "dc->steqr") {
    dc_steqr->inc();
  } else if (path == "dc->steqr->bisect") {
    dc_steqr_bisect->inc();
  } else if (path == "steqr->bisect") {
    steqr_bisect->inc();
  }
}

/// Stamp the dense-workspace high-water mark (la/workspace.h) into the
/// result and the registry gauge. Always-on: one atomic load per eigh.
void record_workspace(EvdResult& res) {
  static obs::Gauge* const peak = obs::Registry::global().gauge(
      "evd.peak_workspace_bytes", obs::Gating::kAlways);
  res.peak_workspace_bytes = la::workspace_peak_bytes();
  peak->update_max(static_cast<long long>(res.peak_workspace_bytes));
}

/// Build a PhaseProfile from a measured time plus the shape trace the phase
/// recorded; model_seconds prices the same ops on the H100 model.
PhaseProfile phase_from_ops(std::string name, double seconds,
                            const std::vector<trace::Op>& ops,
                            const gpumodel::KernelModel& model) {
  PhaseProfile p;
  p.name = std::move(name);
  p.seconds = seconds;
  for (const auto& op : ops) p.flops += trace::flops(op);
  p.gflops = seconds > 0.0 ? p.flops / seconds / 1e9 : 0.0;
  p.model_seconds = gpumodel::price_trace(model, ops).seconds;
  return p;
}

/// The tridiagonalization phase with stage-1/stage-2 children. Stage-1
/// flops come from the recorded BLAS shapes; stage 2 (the parallel chase
/// runs its steps on untraced pool workers) is counted exactly by the
/// discrete-event pipeline model and priced by bc_gpu_seconds — the same
/// model the benchmarks project with.
PhaseProfile tridiag_phase(const TridiagResult& tri,
                           const TridiagOptions& cfg, index_t n,
                           double seconds, const trace::Recorder& rec,
                           const gpumodel::KernelModel& model) {
  PhaseProfile p;
  p.name = "tridiagonalize";
  p.seconds = seconds;

  std::vector<trace::Op> s1_ops;
  for (const auto& op : rec.ops()) {
    if (op.kind != trace::OpKind::kBcStep) s1_ops.push_back(op);
  }
  const char* s1_name =
      tri.method == TridiagMethod::kDirect
          ? "sytrd"
          : (tri.method == TridiagMethod::kTwoStageDbbr ? "dbbr" : "sy2sb");
  p.children.push_back(
      phase_from_ops(s1_name, tri.seconds_stage1, s1_ops, model));

  if (tri.method != TridiagMethod::kDirect && n >= 3) {
    PhaseProfile s2;
    s2.name = "bulge_chase";
    s2.seconds = tri.seconds_stage2;
    const index_t b = std::max<index_t>(tri.b, 1);
    index_t s = cfg.max_parallel_sweeps;
    if (s <= 0) s = std::max<index_t>(n - 2, 1);
    const gpumodel::BcPipelineStats stats = gpumodel::bc_simulate(n, b, s);
    s2.flops = 12.0 * static_cast<double>(b) * static_cast<double>(b) *
               stats.busy_steps;
    s2.gflops = s2.seconds > 0.0 ? s2.flops / s2.seconds / 1e9 : 0.0;
    s2.model_seconds = gpumodel::bc_gpu_seconds(model.spec(), n, b, s);
    p.children.push_back(std::move(s2));
  }

  for (const PhaseProfile& c : p.children) {
    p.flops += c.flops;
    p.model_seconds += c.model_seconds;
  }
  p.gflops = p.seconds > 0.0 ? p.flops / p.seconds / 1e9 : 0.0;
  return p;
}

/// The back-transform phase with Q2/Q1 children, split by op kind: the
/// chunked Q2 application records kBatchedGemm, the blocked Q1 application
/// records plain GEMMs.
PhaseProfile backtransform_phase(double seconds,
                                 const ApplyQBreakdown& breakdown,
                                 const trace::Recorder& rec,
                                 const gpumodel::KernelModel& model) {
  std::vector<trace::Op> q2_ops;
  std::vector<trace::Op> q1_ops;
  for (const auto& op : rec.ops()) {
    if (op.kind == trace::OpKind::kBatchedGemm) {
      q2_ops.push_back(op);
    } else {
      q1_ops.push_back(op);
    }
  }
  PhaseProfile p;
  p.name = "backtransform";
  p.seconds = seconds;
  p.children.push_back(
      phase_from_ops("apply_q2", breakdown.seconds_q2, q2_ops, model));
  p.children.push_back(
      phase_from_ops("apply_q1", breakdown.seconds_q1, q1_ops, model));
  for (const PhaseProfile& c : p.children) {
    p.flops += c.flops;
    p.model_seconds += c.model_seconds;
  }
  p.gflops = p.seconds > 0.0 ? p.flops / p.seconds / 1e9 : 0.0;
  return p;
}

}  // namespace

namespace {

EvdResult eigh_impl(ConstMatrixView a, const EvdOptions& opts,
                    const plan::Plan* pre) {
  TDG_CHECK(a.rows == a.cols, "eigh: matrix must be square");
  const index_t n = a.rows;
  EvdResult res;
  if (n == 0) return res;
  // Canonicalize the mode/vectors axis once; every decision below reads the
  // effective shape, never the raw request.
  const plan::ProblemShape eff =
      plan::normalized(plan::ProblemShape{n, opts.vectors, 0, opts.mode});
  res.mode = eff.mode;
  obs::Span eigh_span("eigh");
  eigh_span.attr("n", n);
  eigh_span.attr("vectors", eff.vectors ? 1 : 0);
  eigh_span.attr("mode", static_cast<index_t>(eff.mode));
  // Phase-boundary cancellation polls (common/cancel.h): entry, after
  // tridiagonalization, and before the back-transform. The phases
  // themselves poll at their own inner boundaries.
  cancel::poll("eigh");
  if (opts.check_finite) check_lower_finite(a, "eigh");

  // One thread budget for the whole pipeline: tridiagonalization, the D&C
  // merge GEMMs, and the Q2/Q1 back transformations.
  ThreadLimit thread_scope(opts.tridiag.threads);

  EvdOptions ropts = opts;  // the canonicalized request
  ropts.vectors = eff.vectors;
  ropts.mode = eff.mode;
  plan::ResolvedPipeline cfg = resolve_evd(ropts, n, /*subset=*/0, pre);
  cfg.tridiag.check_finite = false;  // screened above; don't rescan
  res.plan_source = plan::source_string(cfg.plan);

  // Mixed precision: FP32 reduction engine + FP64 refinement. A failed
  // residual test (or a tridiagonal-solver breakdown inside the engine) is
  // recovered by falling through to the standard FP64 pipeline below, with
  // the plan re-resolved at FP64 so provenance names the run that actually
  // produced the result.
  std::string recovery_prefix;
  if (eff.precision == plan::Precision::kFp32 && n >= 3) {
    static obs::Counter* const refine_iters = obs::Registry::global().counter(
        "evd.refine_iters", obs::Gating::kAlways);
    static obs::Counter* const fp32_fallbacks =
        obs::Registry::global().counter("evd.fp32_fallbacks",
                                        obs::Gating::kAlways);
    MixedOutcome mo =
        eigh_mixed(a, cfg, opts.solver == TridiagSolver::kDivideConquer);
    refine_iters->inc(mo.refine.iters);
    if (mo.ok) {
      res.eigenvalues = std::move(mo.eigenvalues);
      res.eigenvectors = std::move(mo.eigenvectors);
      res.refine_iters = mo.refine.iters;
      res.refine_residual = mo.refine.residual;
      res.seconds_tridiag = mo.seconds_fp32;
      res.seconds_solver = mo.seconds_solver;
      res.seconds_refine = mo.seconds_refine;
      record_workspace(res);
      return res;
    }
    fp32_fallbacks->inc();
    recovery_prefix = "fp32->fp64";
    res.recovery = recovery_prefix;
    res.mode = plan::EvdMode::kStandard;
    ropts.mode = plan::EvdMode::kStandard;
    cfg = resolve_evd(ropts, n, /*subset=*/0, pre);
    cfg.tridiag.check_finite = false;
    res.plan_source = plan::source_string(cfg.plan);
  }

  // Record a taken degradation path: the solver chain joined onto any
  // fp32->fp64 prefix ("fp32->fp64,dc->steqr" when both happened).
  std::string solver_chain;
  auto note_recovery = [&](std::string chain) {
    count_recovery(chain);
    solver_chain = std::move(chain);
    res.recovery = recovery_prefix.empty()
                       ? solver_chain
                       : recovery_prefix + "," + solver_chain;
  };

  // Profiling: one shape recorder per phase. The kernels record their ops
  // on the dispatching thread, so scoping the recorder around each phase
  // attributes every BLAS call to exactly one phase.
  const bool prof = opts.profile;
  trace::Recorder tri_rec;
  trace::Recorder solver_rec;
  trace::Recorder bt_rec;

  WallTimer t;
  TridiagResult tri;
  {
    std::optional<trace::Scope> scope;
    if (prof) scope.emplace(tri_rec);
    tri = tridiagonalize(a, cfg.tridiag);
  }
  res.seconds_tridiag = t.seconds();
  cancel::poll("solver");

  // tri.d / tri.e stay pristine below: the solvers mutate copies, so every
  // fallback restarts from the exact tridiagonal problem.
  res.eigenvalues = tri.d;
  std::vector<double> e = tri.e;

  if (!eff.vectors) {
    t.reset();
    // Values only: implicit QL without vector accumulation is the cheapest
    // (this is also what the paper's "w/o vectors" path amounts to).
    {
      obs::Span solver_span("solver");
      solver_span.attr("n", n);
      std::optional<trace::Scope> scope;
      if (prof) scope.emplace(solver_rec);
      try {
        steqr(res.eigenvalues, e, nullptr);
      } catch (const Error& err) {
        if (!opts.solver_fallback || !recoverable(err)) throw;
        note_recovery("steqr->bisect");
        res.eigenvalues = eigenvalues_bisect(tri.d, tri.e, 0, n - 1);
      }
    }
    res.seconds_solver = t.seconds();
    if (prof) {
      const gpumodel::KernelModel model(gpumodel::h100_sxm(),
                                        /*vendor_syr2k=*/false);
      res.profile.enabled = true;
      res.profile.phases.push_back(tridiag_phase(
          tri, cfg.tridiag, n, res.seconds_tridiag, tri_rec, model));
      res.profile.phases.push_back(
          phase_from_ops("solver", res.seconds_solver, solver_rec.ops(),
                         model));
      for (const PhaseProfile& p : res.profile.phases) {
        res.profile.total_seconds += p.seconds;
        res.profile.total_flops += p.flops;
      }
      record_model_drift(res.profile);
    }
    record_workspace(res);
    return res;
  }

  // Eigenvectors of the tridiagonal T, degrading through the fallback
  // chain on kNoConvergence: D&C -> implicit QL -> Sturm bisection +
  // inverse iteration. Each stage restarts from the pristine (d, e).
  t.reset();
  Matrix z(n, n);
  {
    obs::Span solver_span("solver");
    solver_span.attr("n", n);
    std::optional<trace::Scope> scope;
    if (prof) scope.emplace(solver_rec);
    bool solved = false;
    bool try_steqr = opts.solver != TridiagSolver::kDivideConquer;
    if (opts.solver == TridiagSolver::kDivideConquer) {
      try {
        stedc(res.eigenvalues, e, z.view(), cfg.smlsiz);
        solved = true;
      } catch (const Error& err) {
        if (!opts.solver_fallback || !recoverable(err)) throw;
        note_recovery("dc->steqr");
        try_steqr = true;
      }
    }
    if (!solved && try_steqr) {
      res.eigenvalues = tri.d;
      e = tri.e;
      z = Matrix::identity(n);
      try {
        MatrixView zv = z.view();
        steqr(res.eigenvalues, e, &zv);
        solved = true;
      } catch (const Error& err) {
        if (!opts.solver_fallback || !recoverable(err)) throw;
        note_recovery(solver_chain.empty() ? "steqr->bisect"
                                           : "dc->steqr->bisect");
      }
    }
    if (!solved) {
      // Last resort, solver-free: bisection eigenvalues to machine precision
      // and inverse-iteration vectors (clusters re-orthogonalised).
      res.eigenvalues = eigenvalues_bisect(tri.d, tri.e, 0, n - 1);
      z = Matrix(n, n);
      inverse_iteration(tri.d, tri.e, res.eigenvalues, z.view());
    }
  }
  res.seconds_solver = t.seconds();
  cancel::poll("backtransform");

  // Back-transform into eigenvectors of A: V = Q * Z.
  t.reset();
  ApplyQBreakdown bt_breakdown;
  {
    obs::Span bt_span("backtransform");
    bt_span.attr("n", n);
    std::optional<trace::Scope> scope;
    if (prof) scope.emplace(bt_rec);
    apply_q(tri, z.view(), cfg.applyq, &bt_breakdown);
  }
  res.seconds_backtransform = t.seconds();
  res.eigenvectors = std::move(z);

  if (prof) {
    const gpumodel::KernelModel model(gpumodel::h100_sxm(),
                                      /*vendor_syr2k=*/false);
    res.profile.enabled = true;
    res.profile.phases.push_back(tridiag_phase(
        tri, cfg.tridiag, n, res.seconds_tridiag, tri_rec, model));
    res.profile.phases.push_back(phase_from_ops(
        "solver", res.seconds_solver, solver_rec.ops(), model));
    res.profile.phases.push_back(backtransform_phase(
        res.seconds_backtransform, bt_breakdown, bt_rec, model));
    for (const PhaseProfile& p : res.profile.phases) {
      res.profile.total_seconds += p.seconds;
      res.profile.total_flops += p.flops;
    }
    record_model_drift(res.profile);
  }
  record_workspace(res);
  return res;
}

EvdResult eigh_range_impl(ConstMatrixView a, index_t il, index_t iu,
                          const EvdOptions& opts, const plan::Plan* pre) {
  TDG_CHECK(a.rows == a.cols, "eigh_range: matrix must be square");
  const index_t n = a.rows;
  TDG_CHECK(0 <= il && il <= iu && iu < n, "eigh_range: bad index range");
  obs::Span span("eigh_range");
  span.attr("n", n);
  span.attr("il", il);
  span.attr("iu", iu);
  cancel::poll("eigh");
  if (opts.check_finite) check_lower_finite(a, "eigh_range");

  ThreadLimit thread_scope(opts.tridiag.threads);

  // The subset path has no FP32 engine (bisection + inverse iteration are
  // already O(n^2)-dominated), so a kMixedPrecision request runs the
  // standard FP64 pipeline; the values-only axis still applies.
  EvdOptions ropts = opts;
  const plan::ProblemShape eff =
      plan::normalized(plan::ProblemShape{n, opts.vectors, 0, opts.mode});
  ropts.vectors = eff.vectors;
  ropts.mode = eff.vectors ? plan::EvdMode::kStandard
                           : plan::EvdMode::kValuesOnly;
  plan::ResolvedPipeline cfg =
      resolve_evd(ropts, n, /*subset=*/iu - il + 1, pre);
  cfg.tridiag.check_finite = false;  // screened above; don't rescan

  EvdResult res;
  res.mode = ropts.mode;
  res.plan_source = plan::source_string(cfg.plan);
  WallTimer t;
  TridiagResult tri = tridiagonalize(a, cfg.tridiag);
  res.seconds_tridiag = t.seconds();

  t.reset();
  res.eigenvalues = eigenvalues_bisect(tri.d, tri.e, il, iu);
  if (eff.vectors) {
    const index_t k = iu - il + 1;
    Matrix z(n, k);
    inverse_iteration(tri.d, tri.e, res.eigenvalues, z.view());
    res.seconds_solver = t.seconds();

    t.reset();
    apply_q(tri, z.view(), cfg.applyq);  // only k columns back-transformed
    res.seconds_backtransform = t.seconds();
    res.eigenvectors = std::move(z);
  } else {
    res.seconds_solver = t.seconds();
  }
  record_workspace(res);
  return res;
}

}  // namespace

EvdResult eigh(ConstMatrixView a, const EvdOptions& opts) {
  return eigh_impl(a, opts, nullptr);
}

EvdResult eigh(ConstMatrixView a, const EvdOptions& opts,
               const plan::Plan& plan) {
  return eigh_impl(a, opts, &plan);
}

EvdResult eigh_range(ConstMatrixView a, index_t il, index_t iu,
                     const EvdOptions& opts) {
  return eigh_range_impl(a, il, iu, opts, nullptr);
}

EvdResult eigh_range(ConstMatrixView a, index_t il, index_t iu,
                     const EvdOptions& opts, const plan::Plan& plan) {
  return eigh_range_impl(a, il, iu, opts, &plan);
}

}  // namespace tdg::eig
