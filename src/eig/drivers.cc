#include "eig/drivers.h"

#include <algorithm>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "eig/bisect.h"
#include "eig/eig.h"
#include "plan/plan.h"

namespace tdg::eig {

namespace {

/// One planner pass for the whole pipeline: resolve the tridiag options,
/// the back-transform options, and the solver base case against a single
/// plan so every stage runs the same configuration.
struct ResolvedEvd {
  TridiagOptions tridiag;
  ApplyQOptions applyq;
  index_t smlsiz = 32;
  plan::PlanSource source = plan::PlanSource::kHeuristic;
};

ResolvedEvd resolve_evd(const EvdOptions& opts, index_t n, index_t subset) {
  const plan::ProblemShape shape{n, opts.vectors, subset};
  plan::PlannerOptions popts;
  popts.threads = opts.tridiag.threads;
  const plan::Plan p = plan::plan_for(shape, opts.plan, popts);

  ResolvedEvd r;
  r.source = p.source;
  r.tridiag = plan::resolve(opts.tridiag, n, p);
  r.tridiag.plan = PlanMode::kManual;  // already resolved
  r.tridiag.want_factors = opts.vectors;
  r.applyq.bt_kw = opts.bt_kw;
  r.applyq.q2_group = opts.q2_group;
  r.applyq.threads = opts.tridiag.threads;
  r.applyq = plan::resolve(r.applyq, n, p);
  r.applyq.plan = PlanMode::kManual;
  r.smlsiz = std::clamp<index_t>(opts.smlsiz == 0 ? p.smlsiz : opts.smlsiz, 2,
                                 std::max<index_t>(n, 2));
  return r;
}

}  // namespace

namespace {

/// True when `err` is a failure class the solver fallback chain recovers
/// from; anything else (invalid input, pipeline stall, cache I/O) is
/// re-raised to the caller unchanged.
bool recoverable(const Error& err) {
  return err.code() == ErrorCode::kNoConvergence;
}

}  // namespace

EvdResult eigh(ConstMatrixView a, const EvdOptions& opts) {
  TDG_CHECK(a.rows == a.cols, "eigh: matrix must be square");
  const index_t n = a.rows;
  EvdResult res;
  if (n == 0) return res;
  if (opts.check_finite) check_lower_finite(a, "eigh");

  // One thread budget for the whole pipeline: tridiagonalization, the D&C
  // merge GEMMs, and the Q2/Q1 back transformations.
  ThreadLimit thread_scope(opts.tridiag.threads);

  ResolvedEvd cfg = resolve_evd(opts, n, /*subset=*/0);
  cfg.tridiag.check_finite = false;  // screened above; don't rescan
  res.plan_source = plan::to_string(cfg.source);

  WallTimer t;
  TridiagResult tri = tridiagonalize(a, cfg.tridiag);
  res.seconds_tridiag = t.seconds();

  // tri.d / tri.e stay pristine below: the solvers mutate copies, so every
  // fallback restarts from the exact tridiagonal problem.
  res.eigenvalues = tri.d;
  std::vector<double> e = tri.e;

  if (!opts.vectors) {
    t.reset();
    // Values only: implicit QL without vector accumulation is the cheapest
    // (this is also what the paper's "w/o vectors" path amounts to).
    try {
      steqr(res.eigenvalues, e, nullptr);
    } catch (const Error& err) {
      if (!opts.solver_fallback || !recoverable(err)) throw;
      res.recovery = "steqr->bisect";
      res.eigenvalues = eigenvalues_bisect(tri.d, tri.e, 0, n - 1);
    }
    res.seconds_solver = t.seconds();
    return res;
  }

  // Eigenvectors of the tridiagonal T, degrading through the fallback
  // chain on kNoConvergence: D&C -> implicit QL -> Sturm bisection +
  // inverse iteration. Each stage restarts from the pristine (d, e).
  t.reset();
  Matrix z(n, n);
  bool solved = false;
  bool try_steqr = opts.solver != TridiagSolver::kDivideConquer;
  if (opts.solver == TridiagSolver::kDivideConquer) {
    try {
      stedc(res.eigenvalues, e, z.view(), cfg.smlsiz);
      solved = true;
    } catch (const Error& err) {
      if (!opts.solver_fallback || !recoverable(err)) throw;
      res.recovery = "dc->steqr";
      try_steqr = true;
    }
  }
  if (!solved && try_steqr) {
    res.eigenvalues = tri.d;
    e = tri.e;
    z = Matrix::identity(n);
    try {
      MatrixView zv = z.view();
      steqr(res.eigenvalues, e, &zv);
      solved = true;
    } catch (const Error& err) {
      if (!opts.solver_fallback || !recoverable(err)) throw;
      res.recovery = res.recovery.empty() ? "steqr->bisect"
                                          : "dc->steqr->bisect";
    }
  }
  if (!solved) {
    // Last resort, solver-free: bisection eigenvalues to machine precision
    // and inverse-iteration vectors (clusters re-orthogonalised).
    res.eigenvalues = eigenvalues_bisect(tri.d, tri.e, 0, n - 1);
    z = Matrix(n, n);
    inverse_iteration(tri.d, tri.e, res.eigenvalues, z.view());
  }
  res.seconds_solver = t.seconds();

  // Back-transform into eigenvectors of A: V = Q * Z.
  t.reset();
  apply_q(tri, z.view(), cfg.applyq);
  res.seconds_backtransform = t.seconds();
  res.eigenvectors = std::move(z);
  return res;
}

EvdResult eigh_range(ConstMatrixView a, index_t il, index_t iu,
                     const EvdOptions& opts) {
  TDG_CHECK(a.rows == a.cols, "eigh_range: matrix must be square");
  const index_t n = a.rows;
  TDG_CHECK(0 <= il && il <= iu && iu < n, "eigh_range: bad index range");
  if (opts.check_finite) check_lower_finite(a, "eigh_range");

  ThreadLimit thread_scope(opts.tridiag.threads);

  ResolvedEvd cfg = resolve_evd(opts, n, /*subset=*/iu - il + 1);
  cfg.tridiag.check_finite = false;  // screened above; don't rescan

  EvdResult res;
  res.plan_source = plan::to_string(cfg.source);
  WallTimer t;
  TridiagResult tri = tridiagonalize(a, cfg.tridiag);
  res.seconds_tridiag = t.seconds();

  t.reset();
  res.eigenvalues = eigenvalues_bisect(tri.d, tri.e, il, iu);
  if (opts.vectors) {
    const index_t k = iu - il + 1;
    Matrix z(n, k);
    inverse_iteration(tri.d, tri.e, res.eigenvalues, z.view());
    res.seconds_solver = t.seconds();

    t.reset();
    apply_q(tri, z.view(), cfg.applyq);  // only k columns back-transformed
    res.seconds_backtransform = t.seconds();
    res.eigenvectors = std::move(z);
  } else {
    res.seconds_solver = t.seconds();
  }
  return res;
}

}  // namespace tdg::eig
