#include "eig/drivers.h"

#include <algorithm>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "eig/bisect.h"
#include "eig/eig.h"
#include "plan/plan.h"

namespace tdg::eig {

namespace {

/// One planner pass for the whole pipeline: resolve the tridiag options,
/// the back-transform options, and the solver base case against a single
/// plan so every stage runs the same configuration.
struct ResolvedEvd {
  TridiagOptions tridiag;
  ApplyQOptions applyq;
  index_t smlsiz = 32;
  plan::PlanSource source = plan::PlanSource::kHeuristic;
};

ResolvedEvd resolve_evd(const EvdOptions& opts, index_t n, index_t subset) {
  const plan::ProblemShape shape{n, opts.vectors, subset};
  plan::PlannerOptions popts;
  popts.threads = opts.tridiag.threads;
  const plan::Plan p = plan::plan_for(shape, opts.plan, popts);

  ResolvedEvd r;
  r.source = p.source;
  r.tridiag = plan::resolve(opts.tridiag, n, p);
  r.tridiag.plan = PlanMode::kManual;  // already resolved
  r.tridiag.want_factors = opts.vectors;
  r.applyq.bt_kw = opts.bt_kw;
  r.applyq.q2_group = opts.q2_group;
  r.applyq.threads = opts.tridiag.threads;
  r.applyq = plan::resolve(r.applyq, n, p);
  r.applyq.plan = PlanMode::kManual;
  r.smlsiz = std::clamp<index_t>(opts.smlsiz == 0 ? p.smlsiz : opts.smlsiz, 2,
                                 std::max<index_t>(n, 2));
  return r;
}

}  // namespace

EvdResult eigh(ConstMatrixView a, const EvdOptions& opts) {
  TDG_CHECK(a.rows == a.cols, "eigh: matrix must be square");
  const index_t n = a.rows;
  EvdResult res;
  if (n == 0) return res;

  // One thread budget for the whole pipeline: tridiagonalization, the D&C
  // merge GEMMs, and the Q2/Q1 back transformations.
  ThreadLimit thread_scope(opts.tridiag.threads);

  const ResolvedEvd cfg = resolve_evd(opts, n, /*subset=*/0);
  res.plan_source = plan::to_string(cfg.source);

  WallTimer t;
  TridiagResult tri = tridiagonalize(a, cfg.tridiag);
  res.seconds_tridiag = t.seconds();

  res.eigenvalues = tri.d;
  std::vector<double> e = tri.e;

  if (!opts.vectors) {
    t.reset();
    // Values only: implicit QL without vector accumulation is the cheapest
    // (this is also what the paper's "w/o vectors" path amounts to).
    steqr(res.eigenvalues, e, nullptr);
    res.seconds_solver = t.seconds();
    return res;
  }

  // Eigenvectors of the tridiagonal T.
  t.reset();
  Matrix z(n, n);
  if (opts.solver == TridiagSolver::kDivideConquer) {
    stedc(res.eigenvalues, e, z.view(), cfg.smlsiz);
  } else {
    z = Matrix::identity(n);
    MatrixView zv = z.view();
    steqr(res.eigenvalues, e, &zv);
  }
  res.seconds_solver = t.seconds();

  // Back-transform into eigenvectors of A: V = Q * Z.
  t.reset();
  apply_q(tri, z.view(), cfg.applyq);
  res.seconds_backtransform = t.seconds();
  res.eigenvectors = std::move(z);
  return res;
}

EvdResult eigh_range(ConstMatrixView a, index_t il, index_t iu,
                     const EvdOptions& opts) {
  TDG_CHECK(a.rows == a.cols, "eigh_range: matrix must be square");
  const index_t n = a.rows;
  TDG_CHECK(0 <= il && il <= iu && iu < n, "eigh_range: bad index range");

  ThreadLimit thread_scope(opts.tridiag.threads);

  const ResolvedEvd cfg = resolve_evd(opts, n, /*subset=*/iu - il + 1);

  EvdResult res;
  res.plan_source = plan::to_string(cfg.source);
  WallTimer t;
  TridiagResult tri = tridiagonalize(a, cfg.tridiag);
  res.seconds_tridiag = t.seconds();

  t.reset();
  res.eigenvalues = eigenvalues_bisect(tri.d, tri.e, il, iu);
  if (opts.vectors) {
    const index_t k = iu - il + 1;
    Matrix z(n, k);
    inverse_iteration(tri.d, tri.e, res.eigenvalues, z.view());
    res.seconds_solver = t.seconds();

    t.reset();
    apply_q(tri, z.view(), cfg.applyq);  // only k columns back-transformed
    res.seconds_backtransform = t.seconds();
    res.eigenvectors = std::move(z);
  } else {
    res.seconds_solver = t.seconds();
  }
  return res;
}

}  // namespace tdg::eig
