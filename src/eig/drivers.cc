#include "eig/drivers.h"

#include "common/thread_pool.h"
#include "common/timer.h"
#include "eig/bisect.h"
#include "eig/eig.h"

namespace tdg::eig {

EvdResult eigh(ConstMatrixView a, const EvdOptions& opts) {
  TDG_CHECK(a.rows == a.cols, "eigh: matrix must be square");
  const index_t n = a.rows;
  EvdResult res;
  if (n == 0) return res;

  // One thread budget for the whole pipeline: tridiagonalization, the D&C
  // merge GEMMs, and the Q2/Q1 back transformations.
  ThreadLimit thread_scope(opts.tridiag.threads);

  TridiagOptions topts = opts.tridiag;
  topts.want_factors = opts.vectors;

  WallTimer t;
  TridiagResult tri = tridiagonalize(a, topts);
  res.seconds_tridiag = t.seconds();

  res.eigenvalues = tri.d;
  std::vector<double> e = tri.e;

  if (!opts.vectors) {
    t.reset();
    // Values only: implicit QL without vector accumulation is the cheapest
    // (this is also what the paper's "w/o vectors" path amounts to).
    steqr(res.eigenvalues, e, nullptr);
    res.seconds_solver = t.seconds();
    return res;
  }

  // Eigenvectors of the tridiagonal T.
  t.reset();
  Matrix z(n, n);
  if (opts.solver == TridiagSolver::kDivideConquer) {
    stedc(res.eigenvalues, e, z.view(), opts.smlsiz);
  } else {
    z = Matrix::identity(n);
    MatrixView zv = z.view();
    steqr(res.eigenvalues, e, &zv);
  }
  res.seconds_solver = t.seconds();

  // Back-transform into eigenvectors of A: V = Q * Z.
  t.reset();
  apply_q(tri, z.view(), opts.bt_kw);
  res.seconds_backtransform = t.seconds();
  res.eigenvectors = std::move(z);
  return res;
}

EvdResult eigh_range(ConstMatrixView a, index_t il, index_t iu,
                     const EvdOptions& opts) {
  TDG_CHECK(a.rows == a.cols, "eigh_range: matrix must be square");
  const index_t n = a.rows;
  TDG_CHECK(0 <= il && il <= iu && iu < n, "eigh_range: bad index range");

  ThreadLimit thread_scope(opts.tridiag.threads);

  TridiagOptions topts = opts.tridiag;
  topts.want_factors = opts.vectors;

  EvdResult res;
  WallTimer t;
  TridiagResult tri = tridiagonalize(a, topts);
  res.seconds_tridiag = t.seconds();

  t.reset();
  res.eigenvalues = eigenvalues_bisect(tri.d, tri.e, il, iu);
  if (opts.vectors) {
    const index_t k = iu - il + 1;
    Matrix z(n, k);
    inverse_iteration(tri.d, tri.e, res.eigenvalues, z.view());
    res.seconds_solver = t.seconds();

    t.reset();
    apply_q(tri, z.view(), opts.bt_kw);  // only k columns back-transformed
    res.seconds_backtransform = t.seconds();
    res.eigenvectors = std::move(z);
  } else {
    res.seconds_solver = t.seconds();
  }
  return res;
}

}  // namespace tdg::eig
