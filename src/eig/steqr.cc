// Implicit QL with Wilkinson shift (EISPACK tql2 / LAPACK dsteqr lineage).

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <string>

#include "common/check.h"
#include "common/fault.h"
#include "eig/eig.h"
#include "obs/obs.h"

namespace tdg::eig {

namespace {

void apply_rotation(MatrixView z, index_t i, double c, double s) {
  // Right-multiply columns (i, i+1) by the rotation [c -s; s c]... in the
  // tql2 accumulation convention used below.
  for (index_t r = 0; r < z.rows; ++r) {
    const double f = z(r, i + 1);
    z(r, i + 1) = s * z(r, i) + c * f;
    z(r, i) = c * z(r, i) - s * f;
  }
}

}  // namespace

void steqr(std::vector<double>& d, std::vector<double>& e, MatrixView* z) {
  const index_t n = static_cast<index_t>(d.size());
  TDG_CHECK(static_cast<index_t>(e.size()) >= std::max<index_t>(n - 1, 0),
            "steqr: e must have n-1 entries");
  if (z != nullptr) {
    TDG_CHECK(z->rows >= 1 && z->cols == n, "steqr: z must have n columns");
  }
  if (n == 0) return;
  obs::Span span("steqr");
  span.attr("n", n);
  span.attr("vectors", z != nullptr ? 1 : 0);
  if (fault::should_fire("steqr_noconv")) {
    // Fires the solver's own failure path so callers exercise exactly the
    // recovery a genuine non-convergence would trigger.
    throw Error(ErrorCode::kNoConvergence,
                "steqr: fault 'steqr_noconv' forced non-convergence at "
                "eigenvalue 0",
                {"steqr", 0, 0});
  }

  constexpr int kMaxIter = 50;
  const double eps = std::numeric_limits<double>::epsilon();
  e.resize(static_cast<std::size_t>(n), 0.0);
  e[static_cast<std::size_t>(n - 1)] = 0.0;

  for (index_t l = 0; l < n; ++l) {
    int iter = 0;
    index_t m;
    do {
      // Look for a negligible off-diagonal to split the problem.
      for (m = l; m + 1 < n; ++m) {
        const double dd = std::abs(d[static_cast<std::size_t>(m)]) +
                          std::abs(d[static_cast<std::size_t>(m + 1)]);
        if (std::abs(e[static_cast<std::size_t>(m)]) <= eps * dd) break;
      }
      if (m == l) break;
      if (++iter > kMaxIter) {
        throw Error(ErrorCode::kNoConvergence,
                    "steqr: eigenvalue " + std::to_string(l) +
                        " failed to converge after " +
                        std::to_string(kMaxIter) + " QL sweeps",
                    {"steqr", l, kMaxIter});
      }

      // Wilkinson shift from the leading 2x2.
      double g = (d[static_cast<std::size_t>(l + 1)] -
                  d[static_cast<std::size_t>(l)]) /
                 (2.0 * e[static_cast<std::size_t>(l)]);
      double r = std::hypot(g, 1.0);
      g = d[static_cast<std::size_t>(m)] - d[static_cast<std::size_t>(l)] +
          e[static_cast<std::size_t>(l)] / (g + std::copysign(r, g));
      double s = 1.0;
      double c = 1.0;
      double p = 0.0;

      bool underflow = false;
      for (index_t i = m - 1; i >= l; --i) {
        double f = s * e[static_cast<std::size_t>(i)];
        const double b = c * e[static_cast<std::size_t>(i)];
        r = std::hypot(f, g);
        e[static_cast<std::size_t>(i + 1)] = r;
        if (r == 0.0) {
          // Recover from underflow: split the matrix.
          d[static_cast<std::size_t>(i + 1)] -= p;
          e[static_cast<std::size_t>(m)] = 0.0;
          underflow = true;
          break;
        }
        s = f / r;
        c = g / r;
        g = d[static_cast<std::size_t>(i + 1)] - p;
        r = (d[static_cast<std::size_t>(i)] - g) * s + 2.0 * c * b;
        p = s * r;
        d[static_cast<std::size_t>(i + 1)] = g + p;
        g = c * r - b;
        if (z != nullptr) apply_rotation(*z, i, c, s);
        if (i == l) break;  // index_t may be signed but avoid i-- past l
      }
      if (underflow) continue;
      d[static_cast<std::size_t>(l)] -= p;
      e[static_cast<std::size_t>(l)] = g;
      e[static_cast<std::size_t>(m)] = 0.0;
    } while (m != l);
  }

  // Sort ascending, permuting eigenvector columns along (selection sort,
  // O(n^2) comparisons but only n column swaps).
  for (index_t i = 0; i + 1 < n; ++i) {
    index_t kmin = i;
    for (index_t j = i + 1; j < n; ++j) {
      if (d[static_cast<std::size_t>(j)] < d[static_cast<std::size_t>(kmin)])
        kmin = j;
    }
    if (kmin != i) {
      std::swap(d[static_cast<std::size_t>(i)],
                d[static_cast<std::size_t>(kmin)]);
      if (z != nullptr) {
        for (index_t r = 0; r < z->rows; ++r) {
          std::swap((*z)(r, i), (*z)(r, kmin));
        }
      }
    }
  }
}

}  // namespace tdg::eig
