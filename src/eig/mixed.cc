#include "eig/mixed.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "bc/chase32.h"
#include "common/cancel.h"
#include "common/timer.h"
#include "eig/eig.h"
#include "la/blas32.h"
#include "obs/obs.h"
#include "sbr/band32.h"

namespace tdg::eig {

MixedOutcome eigh_mixed(ConstMatrixView a, const plan::ResolvedPipeline& cfg,
                        bool use_dc) {
  const index_t n = a.rows;
  TDG_CHECK(a.rows == a.cols && n >= 3, "eigh_mixed: need a square n >= 3");
  MixedOutcome out;
  obs::Span span("eigh_mixed");
  span.attr("n", n);

  // --- FP32 stage 1+2: demote the lower triangle and reduce to tridiagonal.
  WallTimer t;
  MatrixF af(n, n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = j; i < n; ++i) {
      af(i, j) = static_cast<float>(a(i, j));
    }
  }
  const index_t b = std::max<index_t>(1, std::min(cfg.tridiag.b, n - 1));
  const index_t k = std::max(b, (cfg.tridiag.k / b) * b);
  sbr::BandFactor32 f1 = sbr::dbbr_f(af.view(), b, k, /*want_factors=*/true);
  cancel::poll("solver");
  bc::ChaseLog32 log;
  bc::chase_dense_f(af.view(), b, &log);
  out.seconds_fp32 = t.seconds();

  // --- FP64 middle: promote (d, e) and solve the tridiagonal problem at
  // full precision (cheap relative to the reduction; keeps the solver's
  // deflation and convergence logic in its tested precision).
  std::vector<double> d(static_cast<std::size_t>(n));
  std::vector<double> e(static_cast<std::size_t>(std::max<index_t>(n - 1, 0)));
  for (index_t i = 0; i < n; ++i) {
    d[static_cast<std::size_t>(i)] = static_cast<double>(af(i, i));
    if (i + 1 < n) {
      e[static_cast<std::size_t>(i)] = static_cast<double>(af(i + 1, i));
    }
  }

  t.reset();
  out.eigenvalues = d;
  Matrix z(n, n);
  try {
    if (use_dc) {
      stedc(out.eigenvalues, e, z.view(), cfg.smlsiz);
    } else {
      z = Matrix::identity(n);
      MatrixView zv = z.view();
      steqr(out.eigenvalues, e, &zv);
    }
  } catch (const Error& err) {
    if (err.code() != ErrorCode::kNoConvergence) throw;
    out.seconds_solver = t.seconds();
    return out;  // ok = false: the driver reruns in FP64
  }
  out.seconds_solver = t.seconds();
  cancel::poll("backtransform");

  // --- FP32 back transformation: V = Q1 (Q2 Z).
  t.reset();
  MatrixF zf = to_fp32(z.view());
  bc::apply_q2_left_f(log, zf.view());
  sbr::apply_q1_f(f1, zf.view());
  out.eigenvectors = to_fp64(zf.view());
  out.seconds_fp32 += t.seconds();

  // --- FP64 refinement with residual acceptance.
  t.reset();
  out.refine = refine_eigenpairs(a, out.eigenvalues,
                                 out.eigenvectors.view(), cfg.refine);
  out.seconds_refine = t.seconds();
  out.ok = out.refine.converged;
  span.attr("refine_iters", out.refine.iters);
  span.attr("ok", out.ok ? 1 : 0);
  return out;
}

}  // namespace tdg::eig
