#include "eig/batched.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <map>
#include <mutex>
#include <numeric>
#include <utility>

#include "common/cancel.h"
#include "common/fault.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "plan/plan_cache.h"

namespace tdg::eig {

namespace {

/// Batch metrics, resolved once against the global registry. Always-on
/// gating: a batch entry is control-plane traffic (one visit per problem,
/// each worth a whole EVD), and the bucket/steal totals back the
/// plan-sharing acceptance checks even in processes that never armed
/// TDG_METRICS.
struct BatchMetrics {
  obs::Counter* problems;
  obs::Counter* steals;
  obs::Counter* plans_resolved;
  obs::Counter* bucket_plan_hits;
  obs::Counter* recoveries;
  obs::Counter* failures;

  static BatchMetrics& get() {
    static BatchMetrics m = [] {
      obs::Registry& r = obs::Registry::global();
      return BatchMetrics{
          r.counter("batch.problems", obs::Gating::kAlways),
          r.counter("batch.steals", obs::Gating::kAlways),
          r.counter("batch.plans_resolved", obs::Gating::kAlways),
          r.counter("batch.bucket_plan_hits", obs::Gating::kAlways),
          r.counter("batch.recoveries", obs::Gating::kAlways),
          r.counter("batch.failures", obs::Gating::kAlways)};
    }();
    return m;
  }
};

/// Shared problem queue: per-worker deques with back-stealing. One coarse
/// mutex guards all of them — a pop happens once per problem (milliseconds
/// of work), so contention is noise; what matters is that a worker that
/// drains its own deque immediately picks up the back of the fullest
/// remaining one instead of idling.
class WorkQueue {
 public:
  explicit WorkQueue(std::vector<std::deque<index_t>> shards)
      : shards_(std::move(shards)) {}

  /// Next problem for worker w; *stolen reports whether it came from
  /// another worker's share. Returns false when the batch is drained.
  bool pop(int w, index_t* idx, bool* stolen) {
    std::lock_guard<std::mutex> lk(mu_);
    auto& own = shards_[static_cast<std::size_t>(w)];
    if (!own.empty()) {
      *idx = own.front();
      own.pop_front();
      *stolen = false;
      return true;
    }
    std::size_t victim = shards_.size();
    std::size_t most = 0;
    for (std::size_t v = 0; v < shards_.size(); ++v) {
      if (shards_[v].size() > most) {
        most = shards_[v].size();
        victim = v;
      }
    }
    if (victim == shards_.size()) return false;
    *idx = shards_[victim].back();  // the victim's smallest remaining work
    shards_[victim].pop_back();
    *stolen = true;
    return true;
  }

 private:
  std::mutex mu_;
  std::vector<std::deque<index_t>> shards_;
};

/// The per-problem EvdOptions a batch runs: the caller's configuration with
/// every intra-problem thread budget forced to 1 (pool-level parallelism
/// only) and profiling off.
EvdOptions per_problem_options(const BatchOptions& opts) {
  EvdOptions o;
  o.vectors = opts.vectors;
  o.mode = opts.mode;
  o.solver = opts.solver;
  o.tridiag = opts.tridiag;
  o.tridiag.threads = 1;
  o.tridiag.bc_threads = 1;
  o.knobs = opts.knobs;
  o.check_finite = opts.check_finite;
  o.solver_fallback = opts.solver_fallback;
  o.profile = false;
  return o;
}

}  // namespace

plan::Plan batch_bucket_plan(index_t n, const BatchOptions& opts) {
  const plan::ProblemShape rep{plan::pow2_bucket(std::max<index_t>(n, 1)),
                               opts.vectors, 0, opts.mode};
  plan::PlannerOptions popts;
  popts.threads = 1;  // the intra-problem budget every batch worker runs at
  return plan::plan_for(rep, opts.plan, popts);
}

BatchResult eigh_batched(const std::vector<ConstMatrixView>& problems,
                         const BatchOptions& opts) {
  const index_t b_count = static_cast<index_t>(problems.size());
  BatchResult res;
  res.problems = b_count;
  res.results.resize(problems.size());
  res.status.resize(problems.size());
  if (b_count == 0) return res;
  TDG_CHECK(opts.tokens.empty() || opts.tokens.size() == problems.size(),
            "eigh_batched: tokens must be empty or parallel to problems");
  TDG_CHECK(
      opts.trace_contexts.empty() ||
          opts.trace_contexts.size() == problems.size(),
      "eigh_batched: trace_contexts must be empty or parallel to problems");
  TDG_CHECK(opts.modes.empty() || opts.modes.size() == problems.size(),
            "eigh_batched: modes must be empty or parallel to problems");
  const auto slot_mode = [&opts](std::size_t s) {
    return opts.modes.empty() ? opts.mode : opts.modes[s];
  };

  WallTimer timer;
  const int workers = static_cast<int>(std::clamp<index_t>(
      opts.threads > 0 ? opts.threads : default_threads(), 1,
      std::min<index_t>(b_count, kMaxThreads)));
  res.workers = workers;

  obs::Span batch_span("batch");
  batch_span.attr("problems", b_count);
  batch_span.attr("workers", workers);

  BatchMetrics& m = BatchMetrics::get();
  m.problems->inc(b_count);

  // One plan per pow2 shape bucket, resolved up front through the normal
  // planner / plan-cache path and shared by every problem in the bucket.
  // Keyed by cache_key (fingerprint + bucket + vectors), the same key the
  // persistent cache uses. A caller-provided shared_plan (the serve layer's
  // warm per-bucket plan) skips the planner pass entirely.
  std::map<std::string, plan::Plan> bucket_plans;
  std::vector<const plan::Plan*> plan_of(problems.size(), nullptr);
  if (opts.shared_plan != nullptr) {
    for (std::size_t i = 0; i < problems.size(); ++i) {
      plan_of[i] = opts.shared_plan;
    }
    res.bucket_plan_hits = b_count;
  } else {
    for (std::size_t i = 0; i < problems.size(); ++i) {
      const index_t n = std::max<index_t>(problems[i].rows, 1);
      const std::string key = plan::cache_key(
          plan::ProblemShape{n, opts.vectors, 0, slot_mode(i)});
      auto it = bucket_plans.find(key);
      if (it == bucket_plans.end()) {
        BatchOptions slot_opts = opts;
        slot_opts.mode = slot_mode(i);
        it = bucket_plans.emplace(key, batch_bucket_plan(n, slot_opts)).first;
        m.plans_resolved->inc();
      } else {
        ++res.bucket_plan_hits;
      }
      plan_of[i] = &it->second;
    }
    res.plans_resolved = static_cast<index_t>(bucket_plans.size());
  }
  m.bucket_plan_hits->inc(res.bucket_plan_hits);
  batch_span.attr("buckets", res.plans_resolved);

  // Deal problems round-robin in descending-size order (an LPT prefix):
  // worker w starts with problems w, w+W, w+2W, ... of the sorted list, so
  // the initial shares are near-balanced and stealing only has to absorb
  // the runtime variance.
  std::vector<index_t> order(problems.size());
  std::iota(order.begin(), order.end(), index_t{0});
  std::stable_sort(order.begin(), order.end(), [&](index_t a, index_t b) {
    return problems[static_cast<std::size_t>(a)].rows >
           problems[static_cast<std::size_t>(b)].rows;
  });
  std::vector<std::deque<index_t>> shards(static_cast<std::size_t>(workers));
  for (std::size_t r = 0; r < order.size(); ++r) {
    shards[r % static_cast<std::size_t>(workers)].push_back(order[r]);
  }
  WorkQueue queue(std::move(shards));

  const EvdOptions popt = per_problem_options(opts);
  std::atomic<long long> steals{0};
  std::atomic<long long> recovered{0};
  std::atomic<long long> failed{0};

  // One problem per worker: each slot is written by exactly the worker
  // that claimed it, and per-problem exceptions stop at the slot.
  ThreadPool::global().run_concurrent(workers, [&](int w) {
    ThreadLimit serial(1);  // intra-problem parallel regions run inline
    index_t i = 0;
    bool stolen = false;
    while (queue.pop(w, &i, &stolen)) {
      if (stolen) steals.fetch_add(1, std::memory_order_relaxed);
      const std::size_t s = static_cast<std::size_t>(i);
      // Slot i's request context shadows the batch-level ambient one for the
      // duration of the problem, so every span below (including this one) is
      // attributed to the request that submitted the slot.
      obs::ContextScope ctx_scope(opts.trace_contexts.empty()
                                      ? obs::current_context()
                                      : opts.trace_contexts[s]);
      obs::Span span("batch.problem");
      span.attr("index", i);
      span.attr("n", problems[s].rows);
      span.attr("worker", w);
      span.attr("stolen", stolen ? 1 : 0);
      try {
        // Each problem runs under exactly its own cancellation token (a
        // null entry — or no tokens at all — shadows any outer scope, so a
        // cancelled caller can never poison an unrelated slot).
        cancel::Scope cancel_scope(
            opts.tokens.empty() ? nullptr : opts.tokens[s]);
        cancel::poll("batch_problem");
        fault::maybe_inject("batch_problem");
        EvdOptions slot_popt = popt;
        slot_popt.mode = slot_mode(s);
        res.results[s] = eigh(problems[s], slot_popt, *plan_of[s]);
        res.status[s].ok = true;
        if (!res.results[s].recovery.empty()) {
          recovered.fetch_add(1, std::memory_order_relaxed);
        }
      } catch (const Error& err) {
        res.status[s].ok = false;
        res.status[s].code = err.code();
        res.status[s].message = err.what();
        res.results[s] = EvdResult{};  // no partial state escapes the slot
        failed.fetch_add(1, std::memory_order_relaxed);
      } catch (const std::exception& err) {
        res.status[s].ok = false;
        res.status[s].code = ErrorCode::kUnknown;
        res.status[s].message = err.what();
        res.results[s] = EvdResult{};
        failed.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  res.steals = steals.load(std::memory_order_relaxed);
  res.recovered = recovered.load(std::memory_order_relaxed);
  res.failed = failed.load(std::memory_order_relaxed);
  m.steals->inc(res.steals);
  m.recoveries->inc(res.recovered);
  m.failures->inc(res.failed);
  batch_span.attr("steals", res.steals);
  res.seconds = timer.seconds();
  return res;
}

}  // namespace tdg::eig
