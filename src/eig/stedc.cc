// Cuppen's divide & conquer for the symmetric tridiagonal eigenproblem.
//
// Split T into two half-size tridiagonals plus a rank-one coupling:
//   T = diag(T1', T2') + rho * u u^T,  u = e_mid(last of T1) + e_1(of T2),
// where T1'/T2' have their boundary diagonal entries reduced by rho. After
// solving the halves, the merge diagonalises D + rho z z^T via the secular
// equation with the two standard deflation rules (negligible z components;
// nearly-equal poles removed with a Givens rotation), and composes the
// eigenvector update as one fat GEMM — which is why D&C dominates QL for
// eigenvectors, and why the paper reuses MAGMA's stedc on the GPU.

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "common/cancel.h"
#include "common/check.h"
#include "eig/eig.h"
#include "eig/secular.h"
#include "la/blas.h"
#include "obs/obs.h"

namespace tdg::eig {

namespace {

// Diagonalise M = D + rho * z z^T in place: d (size m) receives ascending
// eigenvalues, and the columns of q (m x m, holding the current basis) are
// recombined so q_out = q_in * (eigenvectors of M).
void rank_one_merge(std::vector<double>& d, std::vector<double>& z, double rho,
                    MatrixView q) {
  const index_t m = static_cast<index_t>(d.size());
  const double eps = std::numeric_limits<double>::epsilon();

  if (rho == 0.0) {
    // No coupling: just sort.
    std::vector<index_t> order(static_cast<std::size_t>(m));
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](index_t a, index_t b) {
      return d[static_cast<std::size_t>(a)] < d[static_cast<std::size_t>(b)];
    });
    std::vector<double> ds(static_cast<std::size_t>(m));
    Matrix qs(m, m);
    for (index_t c = 0; c < m; ++c) {
      ds[static_cast<std::size_t>(c)] =
          d[static_cast<std::size_t>(order[static_cast<std::size_t>(c)])];
      for (index_t r = 0; r < m; ++r)
        qs(r, c) = q(r, order[static_cast<std::size_t>(c)]);
    }
    d = ds;
    copy(qs.view(), q);
    return;
  }

  // Reduce to rho > 0 by negation (eigenvectors are unaffected).
  const double sign = (rho > 0.0) ? 1.0 : -1.0;
  std::vector<double> dw(static_cast<std::size_t>(m));
  for (index_t i = 0; i < m; ++i)
    dw[static_cast<std::size_t>(i)] = sign * d[static_cast<std::size_t>(i)];
  double rhow = sign * rho;

  // Normalise z; fold ||z||^2 into rho.
  double zz = 0.0;
  for (double zi : z) zz += zi * zi;
  const double znorm = std::sqrt(zz);
  if (znorm == 0.0) {
    rank_one_merge(d, z, 0.0, q);
    return;
  }
  std::vector<double> zw(static_cast<std::size_t>(m));
  for (index_t i = 0; i < m; ++i)
    zw[static_cast<std::size_t>(i)] = z[static_cast<std::size_t>(i)] / znorm;
  rhow *= zz;

  // Sort poles ascending; permute z and the columns of q physically.
  std::vector<index_t> order(static_cast<std::size_t>(m));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](index_t a, index_t b) {
    return dw[static_cast<std::size_t>(a)] < dw[static_cast<std::size_t>(b)];
  });
  std::vector<double> ds(static_cast<std::size_t>(m)),
      zs(static_cast<std::size_t>(m));
  Matrix qp(m, m);
  for (index_t c = 0; c < m; ++c) {
    const index_t src = order[static_cast<std::size_t>(c)];
    ds[static_cast<std::size_t>(c)] = dw[static_cast<std::size_t>(src)];
    zs[static_cast<std::size_t>(c)] = zw[static_cast<std::size_t>(src)];
    for (index_t r = 0; r < m; ++r) qp(r, c) = q(r, src);
  }

  // Deflation (dlaed2 rules). `survivor` chains nearly-equal poles.
  double dmax = 0.0, zmax = 0.0;
  for (index_t i = 0; i < m; ++i) {
    dmax = std::max(dmax, std::abs(ds[static_cast<std::size_t>(i)]));
    zmax = std::max(zmax, std::abs(zs[static_cast<std::size_t>(i)]));
  }
  const double tol = 8.0 * eps * std::max(dmax, zmax);

  std::vector<bool> deflated(static_cast<std::size_t>(m), false);
  index_t prev = -1;  // last surviving index
  for (index_t i = 0; i < m; ++i) {
    if (rhow * std::abs(zs[static_cast<std::size_t>(i)]) <= tol) {
      deflated[static_cast<std::size_t>(i)] = true;
      continue;
    }
    if (prev >= 0) {
      const double zi = zs[static_cast<std::size_t>(i)];
      const double zj = zs[static_cast<std::size_t>(prev)];
      const double dgap =
          ds[static_cast<std::size_t>(i)] - ds[static_cast<std::size_t>(prev)];
      const double r = std::hypot(zi, zj);
      const double c = zi / r;
      const double s = zj / r;
      if (std::abs(dgap * c * s) <= tol) {
        // Rotate (prev, i) with R = [c s; -s c] so (R^T z)_prev = 0;
        // deflate prev. Columns transform as Q <- Q R.
        zs[static_cast<std::size_t>(i)] = r;
        zs[static_cast<std::size_t>(prev)] = 0.0;
        const double dj = ds[static_cast<std::size_t>(prev)];
        const double di = ds[static_cast<std::size_t>(i)];
        ds[static_cast<std::size_t>(prev)] = dj * c * c + di * s * s;
        ds[static_cast<std::size_t>(i)] = dj * s * s + di * c * c;
        for (index_t rr = 0; rr < m; ++rr) {
          const double qj = qp(rr, prev);
          const double qi = qp(rr, i);
          qp(rr, prev) = c * qj - s * qi;
          qp(rr, i) = s * qj + c * qi;
        }
        deflated[static_cast<std::size_t>(prev)] = true;
      }
    }
    prev = i;
  }

  // Gather the non-deflated subproblem.
  std::vector<index_t> surv;
  surv.reserve(static_cast<std::size_t>(m));
  for (index_t i = 0; i < m; ++i) {
    if (!deflated[static_cast<std::size_t>(i)]) surv.push_back(i);
  }
  const index_t k = static_cast<index_t>(surv.size());

  struct OutCol {
    double value;
    index_t src;   // secular root index (if secular) or qp column
    bool secular;
  };
  std::vector<OutCol> out;
  out.reserve(static_cast<std::size_t>(m));

  Matrix qv;  // m x k updated eigenvector columns
  std::vector<SecularRoot> roots;
  if (k > 0) {
    std::vector<double> dk(static_cast<std::size_t>(k)),
        zk(static_cast<std::size_t>(k));
    for (index_t t = 0; t < k; ++t) {
      dk[static_cast<std::size_t>(t)] =
          ds[static_cast<std::size_t>(surv[static_cast<std::size_t>(t)])];
      zk[static_cast<std::size_t>(t)] =
          zs[static_cast<std::size_t>(surv[static_cast<std::size_t>(t)])];
    }
    roots = solve_secular(dk, zk, rhow);
    const std::vector<double> zhat = recompute_z(dk, zk, rhow, roots);

    Matrix v(k, k);
    std::vector<double> vcol(static_cast<std::size_t>(k));
    for (index_t j = 0; j < k; ++j) {
      secular_eigenvector(dk, zhat, roots, j, vcol.data());
      for (index_t t = 0; t < k; ++t) v(t, j) = vcol[static_cast<std::size_t>(t)];
    }

    // Q_sub (m x k) * V (k x k): the fat GEMM of the merge.
    Matrix qsub(m, k);
    for (index_t t = 0; t < k; ++t) {
      for (index_t r = 0; r < m; ++r)
        qsub(r, t) = qp(r, surv[static_cast<std::size_t>(t)]);
    }
    qv = Matrix(m, k);
    la::gemm(Trans::kNo, Trans::kNo, 1.0, qsub.view(), v.view(), 0.0,
             qv.view());

    for (index_t j = 0; j < k; ++j) {
      out.push_back({roots[static_cast<std::size_t>(j)].lambda, j, true});
    }
  }
  for (index_t i = 0; i < m; ++i) {
    if (deflated[static_cast<std::size_t>(i)]) {
      out.push_back({ds[static_cast<std::size_t>(i)], i, false});
    }
  }

  // Undo the negation and sort ascending.
  for (auto& oc : out) oc.value *= sign;
  std::sort(out.begin(), out.end(),
            [](const OutCol& a, const OutCol& b) { return a.value < b.value; });

  Matrix qout(m, m);
  for (index_t c = 0; c < m; ++c) {
    const OutCol& oc = out[static_cast<std::size_t>(c)];
    d[static_cast<std::size_t>(c)] = oc.value;
    if (oc.secular) {
      for (index_t r = 0; r < m; ++r) qout(r, c) = qv(r, oc.src);
    } else {
      for (index_t r = 0; r < m; ++r) qout(r, c) = qp(r, oc.src);
    }
  }
  copy(qout.view(), q);
}

void solve_recursive(double* d, double* e, index_t m, MatrixView q,
                     index_t smlsiz) {
  if (m == 1) {
    q(0, 0) = 1.0;
    return;
  }
  if (m <= smlsiz) {
    std::vector<double> dd(d, d + m);
    std::vector<double> ee(e, e + (m - 1));
    fill(q, 0.0);
    for (index_t i = 0; i < m; ++i) q(i, i) = 1.0;
    steqr(dd, ee, &q);
    std::copy(dd.begin(), dd.end(), d);
    return;
  }

  // One cancellation poll per merge node of the D&C tree (phase-boundary
  // granularity; the base cases above are bounded by smlsiz).
  cancel::poll("stedc_merge");

  const index_t m1 = m / 2;
  const double rho = e[m1 - 1];
  d[m1 - 1] -= rho;
  d[m1] -= rho;

  fill(q, 0.0);
  solve_recursive(d, e, m1, q.block(0, 0, m1, m1), smlsiz);
  solve_recursive(d + m1, e + m1, m - m1, q.block(m1, m1, m - m1, m - m1),
                  smlsiz);

  // z = [last row of Q1 ; first row of Q2].
  std::vector<double> z(static_cast<std::size_t>(m));
  for (index_t i = 0; i < m1; ++i) z[static_cast<std::size_t>(i)] = q(m1 - 1, i);
  for (index_t i = m1; i < m; ++i) z[static_cast<std::size_t>(i)] = q(m1, i);

  std::vector<double> dv(d, d + m);
  rank_one_merge(dv, z, rho, q);
  std::copy(dv.begin(), dv.end(), d);
}

}  // namespace

void stedc(std::vector<double>& d, std::vector<double>& e, MatrixView q,
           index_t smlsiz) {
  const index_t n = static_cast<index_t>(d.size());
  TDG_CHECK(q.rows == n && q.cols == n, "stedc: q must be n x n");
  TDG_CHECK(smlsiz >= 2, "stedc: smlsiz must be >= 2");
  TDG_CHECK(static_cast<index_t>(e.size()) >= std::max<index_t>(n - 1, 0),
            "stedc: e must have n-1 entries");
  if (n == 0) return;
  obs::Span span("stedc");
  span.attr("n", n);
  span.attr("smlsiz", smlsiz);
  solve_recursive(d.data(), e.data(), n, q, smlsiz);
}

}  // namespace tdg::eig
