#include <cmath>

#include "lapack/lapack.h"

namespace tdg::lapack {

double larfg(index_t n, double& alpha, double* x) {
  if (n <= 1) return 0.0;
  const double xnorm = la::nrm2(n - 1, x);
  if (xnorm == 0.0) return 0.0;

  double beta = -std::copysign(std::hypot(alpha, xnorm), alpha);
  // Rescale for safety if beta is tiny (mirrors dlarfg's safmin loop in
  // spirit; one round is enough in FP64 for our magnitudes).
  const double tau = (beta - alpha) / beta;
  la::scal(n - 1, 1.0 / (alpha - beta), x);
  alpha = beta;
  return tau;
}

void larf_left(const double* v, double tau, MatrixView c, double* work) {
  if (tau == 0.0 || c.rows == 0 || c.cols == 0) return;
  // work = C^T v ; C -= tau * v work^T
  la::gemv(Trans::kTrans, 1.0, c, v, 0.0, work);
  la::ger(-tau, v, work, c);
}

void larf_right(const double* v, double tau, MatrixView c, double* work) {
  if (tau == 0.0 || c.rows == 0 || c.cols == 0) return;
  // work = C v ; C -= tau * work v^T
  la::gemv(Trans::kNo, 1.0, c, v, 0.0, work);
  la::ger(-tau, work, v, c);
}

}  // namespace tdg::lapack
