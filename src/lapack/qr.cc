#include <algorithm>
#include <vector>

#include "lapack/lapack.h"

namespace tdg::lapack {

void geqr2(MatrixView a, std::vector<double>& taus) {
  const index_t m = a.rows;
  const index_t n = a.cols;
  const index_t k = std::min(m, n);
  taus.assign(static_cast<std::size_t>(n), 0.0);
  std::vector<double> v(static_cast<std::size_t>(m));
  std::vector<double> work(static_cast<std::size_t>(n));

  for (index_t j = 0; j < k; ++j) {
    double alpha = a(j, j);
    const double tau = larfg(m - j, alpha, &a(j, j) + 1);
    taus[static_cast<std::size_t>(j)] = tau;
    if (tau != 0.0 && j + 1 < n) {
      // Explicit v = [1; a(j+1:m, j)] applied to the trailing columns.
      v[0] = 1.0;
      for (index_t i = 1; i < m - j; ++i)
        v[static_cast<std::size_t>(i)] = a(j + i, j);
      larf_left(v.data(), tau, a.block(j, j + 1, m - j, n - j - 1),
                work.data());
    }
    a(j, j) = alpha;
  }
}

void larft(ConstMatrixView v, const std::vector<double>& taus, MatrixView t) {
  const index_t k = v.cols;
  TDG_CHECK(t.rows == k && t.cols == k, "larft: T must be k x k");
  fill(t, 0.0);
  std::vector<double> w(static_cast<std::size_t>(k));
  for (index_t i = 0; i < k; ++i) {
    const double tau = taus[static_cast<std::size_t>(i)];
    if (tau == 0.0) {
      t(i, i) = 0.0;
      continue;
    }
    // w = -tau * V(:, 0:i)^T v_i ; T(0:i, i) = T(0:i, 0:i) * w
    for (index_t c = 0; c < i; ++c) {
      w[static_cast<std::size_t>(c)] =
          -tau * la::dot(v.rows, v.col(c), v.col(i));
    }
    for (index_t r = 0; r < i; ++r) {
      double s = 0.0;
      for (index_t c = r; c < i; ++c) {
        s += t(r, c) * w[static_cast<std::size_t>(c)];
      }
      t(r, i) = s;
    }
    t(i, i) = tau;
  }
}

WyFactor panel_qr(MatrixView a) {
  const index_t m = a.rows;
  const index_t k = a.cols;
  TDG_CHECK(m >= k, "panel_qr: panel must be tall (m >= n)");
  std::vector<double> taus;
  geqr2(a, taus);

  WyFactor f;
  f.v = Matrix(m, k);
  for (index_t j = 0; j < k; ++j) {
    f.v(j, j) = 1.0;
    for (index_t i = j + 1; i < m; ++i) f.v(i, j) = a(i, j);
  }
  f.t = Matrix(k, k);
  larft(f.v.view(), taus, f.t.view());
  return f;
}

void apply_block_reflector_left(ConstMatrixView v, ConstMatrixView t, Trans op,
                                MatrixView c) {
  TDG_CHECK(v.rows == c.rows, "apply_block_reflector_left: row mismatch");
  const index_t k = v.cols;
  if (k == 0 || c.cols == 0) return;
  // (I - V T V^T)^T C = C - V T^T (V^T C)
  // (I - V T V^T)   C = C - V T   (V^T C)
  Matrix w(k, c.cols);
  la::gemm(Trans::kTrans, Trans::kNo, 1.0, v, c, 0.0, w.view());
  Matrix tw(k, c.cols);
  la::gemm(op == Trans::kNo ? Trans::kNo : Trans::kTrans, Trans::kNo, 1.0, t,
           w.view(), 0.0, tw.view());
  la::gemm(Trans::kNo, Trans::kNo, -1.0, v, tw.view(), 1.0, c);
}

void apply_block_reflector_right(ConstMatrixView v, ConstMatrixView t,
                                 Trans op, MatrixView c) {
  TDG_CHECK(v.rows == c.cols, "apply_block_reflector_right: col mismatch");
  const index_t k = v.cols;
  if (k == 0 || c.rows == 0) return;
  // C (I - V T V^T)   = C - (C V) T   V^T
  // C (I - V T V^T)^T = C - (C V) T^T V^T
  Matrix w(c.rows, k);
  la::gemm(Trans::kNo, Trans::kNo, 1.0, c, v, 0.0, w.view());
  Matrix wt(c.rows, k);
  la::gemm(Trans::kNo, op == Trans::kNo ? Trans::kNo : Trans::kTrans, 1.0,
           w.view(), t, 0.0, wt.view());
  la::gemm(Trans::kNo, Trans::kTrans, -1.0, wt.view(), v, 1.0, c);
}

}  // namespace tdg::lapack
