// LAPACK-style building blocks implemented from scratch: Householder
// reflector generation, compact-WY blocked QR, block-reflector application,
// and the direct (one-stage) blocked tridiagonalization that serves as the
// cuSOLVER `sytrd` baseline in the paper's comparisons.
//
// Reflector convention (LAPACK): H = I - tau * v v^T with v(0) = 1.
#pragma once

#include <vector>

#include "la/blas.h"
#include "la/matrix.h"

namespace tdg::lapack {

/// Generate a Householder reflector for the vector [alpha; x] (x has length
/// n-1): on return H * [alpha; x] = [beta; 0], alpha holds beta, x holds the
/// tail of v (v(0) = 1 implicit). Returns tau (0 when already collinear).
double larfg(index_t n, double& alpha, double* x);

/// Apply H = I - tau v v^T from the left to C (v has length C.rows, v(0)
/// need not be 1 — the caller passes the full explicit vector).
/// work must have C.cols entries.
void larf_left(const double* v, double tau, MatrixView c, double* work);

/// Apply H from the right to C (v has length C.cols). work: C.rows entries.
void larf_right(const double* v, double tau, MatrixView c, double* work);

/// Unblocked QR of A (m x n, m >= n): R in the upper triangle, Householder
/// vectors below the diagonal, taus filled (size n).
void geqr2(MatrixView a, std::vector<double>& taus);

/// Form the upper-triangular block-reflector factor T (k x k) from the
/// unit-lower-trapezoidal V (m x k) and taus, such that
/// H_0 H_1 ... H_{k-1} = I - V T V^T (forward, column-wise storage).
void larft(ConstMatrixView v, const std::vector<double>& taus, MatrixView t);

/// Compact-WY panel factorisation: QR-factorise `a` (m x n), then return
/// V (m x n, explicit: unit diagonal, zeros above) and T (n x n upper) with
/// Q = I - V T V^T. R overwrites the upper triangle of `a`.
struct WyFactor {
  Matrix v;  // m x k, explicit columns of V
  Matrix t;  // k x k upper-triangular block factor
};
WyFactor panel_qr(MatrixView a);

/// C <- (I - V T V^T)^op * C (left application of a compact-WY reflector).
void apply_block_reflector_left(ConstMatrixView v, ConstMatrixView t, Trans op,
                                MatrixView c);

/// C <- C * (I - V T V^T)^op (right application).
void apply_block_reflector_right(ConstMatrixView v, ConstMatrixView t,
                                 Trans op, MatrixView c);

/// Unblocked lower tridiagonalization (LAPACK sytd2): A (n x n, lower) is
/// reduced to tridiagonal T by similarity; d/e receive the diagonal and
/// sub-diagonal; Householder vectors remain in A's lower triangle, taus
/// (size n-1, last entries zero as in LAPACK) returned via `taus`.
void sytd2(MatrixView a, std::vector<double>& d, std::vector<double>& e,
           std::vector<double>& taus);

/// Blocked lower tridiagonalization (LAPACK sytrd = latrd panels + syr2k
/// trailing updates). Same outputs as sytd2. `nb` is the panel width.
/// This is the direct one-stage algorithm cuSOLVER's sytrd implements: the
/// panel is BLAS-2 (symv) bound, the trailing update is a k = nb syr2k.
void sytrd(MatrixView a, std::vector<double>& d, std::vector<double>& e,
           std::vector<double>& taus, index_t nb = 64);

/// Apply the Q accumulated in `a` by sytd2/sytrd to C from the left:
/// C <- Q C with Q = H_0 H_1 ... H_{n-3}. Used to form eigenvectors of the
/// original matrix from eigenvectors of T.
void apply_sytrd_q_left(ConstMatrixView a, const std::vector<double>& taus,
                        MatrixView c);

}  // namespace tdg::lapack
