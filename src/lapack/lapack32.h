// FP32 ports of the LAPACK-style building blocks the mixed-precision band
// reduction needs: Householder generation, compact-WY panel QR, and block
// -reflector application. Line-by-line float ports of lapack.h — same
// reflector convention (H = I - tau v v^T, v(0) = 1).
#pragma once

#include <vector>

#include "la/blas32.h"
#include "la/matrix32.h"

namespace tdg::lapack {

/// Float larfg: reflector for [alpha; x]; returns tau (0 when collinear).
float larfg_f(index_t n, float& alpha, float* x);

/// Apply H = I - tau v v^T from the left to C. work: C.cols entries.
void larf_left_f(const float* v, float tau, MatrixViewF c, float* work);

/// Unblocked QR of A (m x n, m >= n): R in the upper triangle, Householder
/// vectors below, taus filled (size n).
void geqr2_f(MatrixViewF a, std::vector<float>& taus);

/// T factor of the forward block reflector I - V T V^T.
void larft_f(ConstMatrixViewF v, const std::vector<float>& taus, MatrixViewF t);

/// Compact-WY panel factorisation in float.
struct WyFactor32 {
  MatrixF v;  // m x k explicit unit-lower-trapezoidal reflectors
  MatrixF t;  // k x k upper-triangular block factor
};
WyFactor32 panel_qr_f(MatrixViewF a);

/// C <- (I - V T V^T)^op * C.
void apply_block_reflector_left_f(ConstMatrixViewF v, ConstMatrixViewF t,
                                  Trans op, MatrixViewF c);

}  // namespace tdg::lapack
