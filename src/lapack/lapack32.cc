#include "lapack/lapack32.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace tdg::lapack {

float larfg_f(index_t n, float& alpha, float* x) {
  if (n <= 1) return 0.0f;
  const float xnorm = la::nrm2_f(n - 1, x);
  if (xnorm == 0.0f) return 0.0f;

  const float beta = -std::copysign(std::hypot(alpha, xnorm), alpha);
  const float tau = (beta - alpha) / beta;
  la::scal_f(n - 1, 1.0f / (alpha - beta), x);
  alpha = beta;
  return tau;
}

void larf_left_f(const float* v, float tau, MatrixViewF c, float* work) {
  if (tau == 0.0f || c.rows == 0 || c.cols == 0) return;
  // work = C^T v ; C -= tau * v work^T
  for (index_t j = 0; j < c.cols; ++j) {
    work[j] = la::dot_f(c.rows, c.col(j), v);
  }
  for (index_t j = 0; j < c.cols; ++j) {
    const float tw = tau * work[j];
    float* cj = c.col(j);
    for (index_t i = 0; i < c.rows; ++i) cj[i] -= tw * v[i];
  }
}

void geqr2_f(MatrixViewF a, std::vector<float>& taus) {
  const index_t m = a.rows;
  const index_t n = a.cols;
  const index_t k = std::min(m, n);
  taus.assign(static_cast<std::size_t>(n), 0.0f);
  std::vector<float> v(static_cast<std::size_t>(m));
  std::vector<float> work(static_cast<std::size_t>(n));

  for (index_t j = 0; j < k; ++j) {
    float alpha = a(j, j);
    const float tau = larfg_f(m - j, alpha, &a(j, j) + 1);
    taus[static_cast<std::size_t>(j)] = tau;
    if (tau != 0.0f && j + 1 < n) {
      v[0] = 1.0f;
      for (index_t i = 1; i < m - j; ++i)
        v[static_cast<std::size_t>(i)] = a(j + i, j);
      larf_left_f(v.data(), tau, a.block(j, j + 1, m - j, n - j - 1),
                  work.data());
    }
    a(j, j) = alpha;
  }
}

void larft_f(ConstMatrixViewF v, const std::vector<float>& taus,
             MatrixViewF t) {
  const index_t k = v.cols;
  TDG_CHECK(t.rows == k && t.cols == k, "larft_f: T must be k x k");
  for (index_t j = 0; j < k; ++j) {
    float* tj = t.col(j);
    std::fill(tj, tj + k, 0.0f);
  }
  std::vector<float> w(static_cast<std::size_t>(k));
  for (index_t i = 0; i < k; ++i) {
    const float tau = taus[static_cast<std::size_t>(i)];
    if (tau == 0.0f) {
      t(i, i) = 0.0f;
      continue;
    }
    for (index_t c = 0; c < i; ++c) {
      w[static_cast<std::size_t>(c)] =
          -tau * la::dot_f(v.rows, v.col(c), v.col(i));
    }
    for (index_t r = 0; r < i; ++r) {
      float s = 0.0f;
      for (index_t c = r; c < i; ++c) {
        s += t(r, c) * w[static_cast<std::size_t>(c)];
      }
      t(r, i) = s;
    }
    t(i, i) = tau;
  }
}

WyFactor32 panel_qr_f(MatrixViewF a) {
  const index_t m = a.rows;
  const index_t k = a.cols;
  TDG_CHECK(m >= k, "panel_qr_f: panel must be tall (m >= n)");
  std::vector<float> taus;
  geqr2_f(a, taus);

  WyFactor32 f;
  f.v = MatrixF(m, k);
  for (index_t j = 0; j < k; ++j) {
    f.v(j, j) = 1.0f;
    for (index_t i = j + 1; i < m; ++i) f.v(i, j) = a(i, j);
  }
  f.t = MatrixF(k, k);
  larft_f(f.v.view(), taus, f.t.view());
  return f;
}

void apply_block_reflector_left_f(ConstMatrixViewF v, ConstMatrixViewF t,
                                  Trans op, MatrixViewF c) {
  TDG_CHECK(v.rows == c.rows, "apply_block_reflector_left_f: row mismatch");
  const index_t k = v.cols;
  if (k == 0 || c.cols == 0) return;
  // (I - V T V^T)^T C = C - V T^T (V^T C)
  // (I - V T V^T)   C = C - V T   (V^T C)
  MatrixF w(k, c.cols);
  la::gemm_f(Trans::kTrans, Trans::kNo, 1.0f, v, c, 0.0f, w.view());
  MatrixF tw(k, c.cols);
  la::gemm_f(op == Trans::kNo ? Trans::kNo : Trans::kTrans, Trans::kNo, 1.0f,
             t, w.view(), 0.0f, tw.view());
  la::gemm_f(Trans::kNo, Trans::kNo, -1.0f, v, tw.view(), 1.0f, c);
}

}  // namespace tdg::lapack
