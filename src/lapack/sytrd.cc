// Direct (one-stage) tridiagonalization — the cuSOLVER `sytrd` baseline.
//
// Blocked Householder tridiagonalization after Dongarra et al. [8]: each
// panel of nb columns is reduced with BLAS-2 symv-bound work (latrd), then
// the trailing matrix receives one rank-2*nb update (syr2k with k = nb).
// Roughly half the flops stay in BLAS-2 — this is precisely why the paper's
// Figure 4 shows cuSOLVER's sytrd at ~2 TFLOPs on an H100.

#include <algorithm>
#include <vector>

#include "lapack/lapack.h"
#include "obs/obs.h"

namespace tdg::lapack {

void sytd2(MatrixView a, std::vector<double>& d, std::vector<double>& e,
           std::vector<double>& taus) {
  const index_t n = a.rows;
  TDG_CHECK(a.rows == a.cols, "sytd2: matrix must be square");
  d.assign(static_cast<std::size_t>(n), 0.0);
  e.assign(static_cast<std::size_t>(std::max<index_t>(n - 1, 0)), 0.0);
  taus.assign(static_cast<std::size_t>(std::max<index_t>(n - 1, 0)), 0.0);
  if (n == 0) return;

  std::vector<double> w(static_cast<std::size_t>(n));
  for (index_t i = 0; i + 1 < n; ++i) {
    const index_t len = n - i - 1;  // rows i+1 .. n-1
    double alpha = a(i + 1, i);
    const double taui = larfg(len, alpha, (len > 1) ? &a(i + 2, i) : nullptr);
    e[static_cast<std::size_t>(i)] = alpha;
    taus[static_cast<std::size_t>(i)] = taui;

    if (taui != 0.0) {
      a(i + 1, i) = 1.0;  // v lives in A(i+1:n, i)
      const double* v = &a(i + 1, i);
      MatrixView a22 = a.block(i + 1, i + 1, len, len);
      // w = taui * A22 v ; w -= (taui/2)(w^T v) v ; A22 -= v w^T + w v^T
      la::symv_lower(taui, a22, v, 0.0, w.data());
      const double corr = -0.5 * taui * la::dot(len, w.data(), v);
      la::axpy(len, corr, v, w.data());
      la::syr2_lower(-1.0, v, w.data(), a22);
      a(i + 1, i) = e[static_cast<std::size_t>(i)];
    }
    d[static_cast<std::size_t>(i)] = a(i, i);
  }
  d[static_cast<std::size_t>(n - 1)] = a(n - 1, n - 1);
}

namespace {

// Panel step of blocked tridiagonalization (LAPACK dlatrd, lower variant).
// Reduces the first nb columns of the nn x nn trailing block `a`, storing
// Householder vectors in a's lower triangle (with the unit element written
// explicitly) and the update matrix W (nn x nb). e/taus receive the nb new
// sub-diagonal entries and reflector scalars.
void latrd_lower(MatrixView a, index_t nb, MatrixView w, double* e,
                 double* taus) {
  const index_t nn = a.rows;
  std::vector<double> tmp(static_cast<std::size_t>(nb));

  for (index_t i = 0; i < nb; ++i) {
    const index_t len = nn - i - 1;  // length of v_i
    if (i > 0) {
      // Update column i with the i previous reflectors:
      // A(i:nn, i) -= V(i:nn, 0:i) W(i, 0:i)^T + W(i:nn, 0:i) V(i, 0:i)^T
      for (index_t c = 0; c < i; ++c) tmp[static_cast<std::size_t>(c)] = w(i, c);
      la::gemv(Trans::kNo, -1.0, a.block(i, 0, nn - i, i), tmp.data(), 1.0,
               &a(i, i));
      for (index_t c = 0; c < i; ++c) tmp[static_cast<std::size_t>(c)] = a(i, c);
      la::gemv(Trans::kNo, -1.0, w.block(i, 0, nn - i, i), tmp.data(), 1.0,
               &a(i, i));
    }
    if (len == 0) {
      e[i] = 0.0;
      taus[i] = 0.0;
      continue;
    }

    double alpha = a(i + 1, i);
    const double taui = larfg(len, alpha, (len > 1) ? &a(i + 2, i) : nullptr);
    e[i] = alpha;
    taus[i] = taui;
    a(i + 1, i) = 1.0;
    const double* v = &a(i + 1, i);
    double* wi = w.col(i) + (i + 1);

    // w_i = taui * (A22 v - V (W^T v) - W (V^T v)) + correction * v
    la::symv_lower(1.0, a.block(i + 1, i + 1, len, len), v, 0.0, wi);
    if (i > 0) {
      la::gemv(Trans::kTrans, 1.0, w.block(i + 1, 0, len, i), v, 0.0,
               tmp.data());
      la::gemv(Trans::kNo, -1.0, a.block(i + 1, 0, len, i), tmp.data(), 1.0,
               wi);
      la::gemv(Trans::kTrans, 1.0, a.block(i + 1, 0, len, i), v, 0.0,
               tmp.data());
      la::gemv(Trans::kNo, -1.0, w.block(i + 1, 0, len, i), tmp.data(), 1.0,
               wi);
    }
    la::scal(len, taui, wi);
    const double corr = -0.5 * taui * la::dot(len, wi, v);
    la::axpy(len, corr, v, wi);
    for (index_t r = 0; r <= i; ++r) w(r, i) = 0.0;
  }
}

}  // namespace

void sytrd(MatrixView a, std::vector<double>& d, std::vector<double>& e,
           std::vector<double>& taus, index_t nb) {
  const index_t n = a.rows;
  TDG_CHECK(a.rows == a.cols, "sytrd: matrix must be square");
  TDG_CHECK(nb >= 1, "sytrd: panel width must be positive");
  d.assign(static_cast<std::size_t>(n), 0.0);
  e.assign(static_cast<std::size_t>(std::max<index_t>(n - 1, 0)), 0.0);
  taus.assign(static_cast<std::size_t>(std::max<index_t>(n - 1, 0)), 0.0);
  if (n == 0) return;

  obs::Span span("sytrd");
  span.attr("n", n);
  span.attr("nb", nb);

  Matrix w(n, nb);
  index_t j0 = 0;
  while (n - j0 > 2 * nb) {
    const index_t nn = n - j0;
    MatrixView a2 = a.block(j0, j0, nn, nn);
    MatrixView w2 = w.block(0, 0, nn, nb);
    latrd_lower(a2, nb, w2, e.data() + j0, taus.data() + j0);
    // Trailing update: A22 -= V2 W2^T + W2 V2^T (rank-2*nb, k = nb syr2k).
    la::syr2k_lower(-1.0, a2.block(nb, 0, nn - nb, nb),
                    w2.block(nb, 0, nn - nb, nb), 1.0,
                    a2.block(nb, nb, nn - nb, nn - nb));
    // Restore the sub-diagonal entries overwritten with the unit elements.
    for (index_t i = 0; i < nb; ++i)
      a(j0 + i + 1, j0 + i) = e[static_cast<std::size_t>(j0 + i)];
    for (index_t i = 0; i < nb; ++i)
      d[static_cast<std::size_t>(j0 + i)] = a(j0 + i, j0 + i);
    j0 += nb;
  }

  // Unblocked cleanup for the remainder.
  std::vector<double> dt, et, tt;
  MatrixView atail = a.block(j0, j0, n - j0, n - j0);
  sytd2(atail, dt, et, tt);
  for (index_t i = 0; i < n - j0; ++i)
    d[static_cast<std::size_t>(j0 + i)] = dt[static_cast<std::size_t>(i)];
  for (index_t i = 0; i + 1 < n - j0; ++i) {
    e[static_cast<std::size_t>(j0 + i)] = et[static_cast<std::size_t>(i)];
    taus[static_cast<std::size_t>(j0 + i)] = tt[static_cast<std::size_t>(i)];
  }
}

}  // namespace tdg::lapack
