// Application of the orthogonal factor accumulated by sytd2/sytrd.

#include <vector>

#include "lapack/lapack.h"

namespace tdg::lapack {

void apply_sytrd_q_left(ConstMatrixView a, const std::vector<double>& taus,
                        MatrixView c) {
  const index_t n = a.rows;
  TDG_CHECK(a.rows == a.cols, "apply_sytrd_q_left: A must be square");
  TDG_CHECK(c.rows == n, "apply_sytrd_q_left: C row mismatch");

  std::vector<double> v(static_cast<std::size_t>(n));
  std::vector<double> work(static_cast<std::size_t>(c.cols));

  // Q = H_0 H_1 ... H_{n-3}; Q*C applies H_i in reverse order. H_i acts on
  // rows i+1 .. n-1 with v = [1; A(i+2:n, i)].
  for (index_t i = n - 3; i >= 0; --i) {
    const double tau = taus[static_cast<std::size_t>(i)];
    if (tau == 0.0) continue;
    const index_t len = n - i - 1;
    v[0] = 1.0;
    for (index_t r = 1; r < len; ++r)
      v[static_cast<std::size_t>(r)] = a(i + 1 + r, i);
    larf_left(v.data(), tau, c.block(i + 1, 0, len, c.cols), work.data());
  }
}

}  // namespace tdg::lapack
