#include "backtransform/apply_q2_blocked.h"

#include <algorithm>
#include <vector>

#include "common/cancel.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "obs/obs.h"

namespace tdg::bt {

namespace {

// Column-block width for the parallel application. The columns of C are
// fully independent through every sweep, so each pool task owns a fixed
// column range end to end; per-column arithmetic is untouched, making the
// result bitwise identical at any thread count.
constexpr index_t kColChunk = 32;

// Apply all sweeps (reverse order, chunked) to the column slice `c`.
void apply_columns(const bc::ChaseLog& log, MatrixView c, index_t group,
                   double* w) {
  const index_t nc = c.cols;
  // Sweeps in reverse; within a sweep the reflectors have pairwise-disjoint
  // row ranges, so a chunk of `group` consecutive steps is exactly
  // I - V diag(tau) V^T and its application needs only one pass:
  //   W = V^T C  (chunk of dot products over disjoint row bands)
  //   C -= V diag(tau) W.
  for (auto sweep = log.sweeps.rbegin(); sweep != log.sweeps.rend(); ++sweep) {
    const auto& steps = sweep->steps;
    index_t hi = static_cast<index_t>(steps.size());
    while (hi > 0) {
      const index_t lo = std::max<index_t>(0, hi - group);
      const index_t q = hi - lo;

      // W(r, :) = v_r^T C over the step's row band.
      for (index_t r = 0; r < q; ++r) {
        const bc::Reflector& st = steps[static_cast<std::size_t>(lo + r)];
        double* wr = w + static_cast<std::size_t>(r) * nc;
        if (st.tau == 0.0) {
          std::fill(wr, wr + nc, 0.0);
          continue;
        }
        for (index_t j = 0; j < nc; ++j) {
          double s = c(st.row0, j);  // v(0) = 1 implicit
          for (index_t i = 1; i < st.len; ++i) {
            s += sweep->vpool[static_cast<std::size_t>(st.voff + i - 1)] *
                 c(st.row0 + i, j);
          }
          wr[j] = s;
        }
      }
      // C -= v_r * (tau_r * W(r, :)) for each reflector of the chunk.
      for (index_t r = 0; r < q; ++r) {
        const bc::Reflector& st = steps[static_cast<std::size_t>(lo + r)];
        if (st.tau == 0.0) continue;
        const double* wr = w + static_cast<std::size_t>(r) * nc;
        for (index_t j = 0; j < nc; ++j) {
          const double tw = st.tau * wr[j];
          c(st.row0, j) -= tw;
          for (index_t i = 1; i < st.len; ++i) {
            c(st.row0 + i, j) -=
                tw * sweep->vpool[static_cast<std::size_t>(st.voff + i - 1)];
          }
        }
      }
      hi = lo;
    }
  }
}

}  // namespace

void apply_q2_left_blocked(const bc::ChaseLog& log, MatrixView c,
                           index_t group) {
  TDG_CHECK(c.rows == log.n, "apply_q2_left_blocked: row mismatch");
  TDG_CHECK(group >= 1, "apply_q2_left_blocked: group must be >= 1");
  const index_t nc = c.cols;
  const index_t b = std::max<index_t>(log.b, 1);

  cancel::poll("backtransform_panel");

  obs::Span span("apply_q2");
  span.attr("n", log.n);
  span.attr("cols", nc);
  span.attr("group", group);

  // Record the chunked-application trace up front on this thread (pool
  // workers are untraced): one batched kernel per chunk, exactly what a GPU
  // would launch. On a GPU each chunk is one batched kernel instead of
  // 2*group rank-1 launches; the trace records it accordingly.
  for (auto sweep = log.sweeps.rbegin(); sweep != log.sweeps.rend(); ++sweep) {
    index_t hi = static_cast<index_t>(sweep->steps.size());
    while (hi > 0) {
      const index_t lo = std::max<index_t>(0, hi - group);
      trace::record({trace::OpKind::kBatchedGemm, 2 * b, nc, 1, hi - lo});
      hi = lo;
    }
  }
  if (nc == 0) return;

  parallel_chunks(nc, kColChunk, [&](index_t jlo, index_t jhi) {
    std::vector<double> w(static_cast<std::size_t>(group) *
                          static_cast<std::size_t>(jhi - jlo));
    apply_columns(log, c.block(0, jlo, c.rows, jhi - jlo), group, w.data());
  });
}

}  // namespace tdg::bt
