// Back transformation of the stage-1 (band reduction) orthogonal factor.
//
// After SBR/DBBR, A = Q1 B Q1^T with Q1 = Q_p0 Q_p1 ... Q_pm, each panel
// factor Q_p = I - V_p T_p V_p^T. Forming eigenvectors requires C <- Q1 C.
// Three algorithms with identical results but very different GEMM shapes:
//
//  * conventional — apply panels one by one (LAPACK ormqr order). Every GEMM
//    has inner dimension b; slow on GPUs for the same reason as stage-1's
//    skinny syr2k.
//  * recursive    — the paper's Algorithm 3: recursively merge all panels
//    into one (W, Y) pair with Q1 = I - W Y^T, then apply with two huge
//    GEMMs. Maximum GEMM quality, but forms the full n x n W (extra flops
//    and memory).
//  * blocked      — the paper's production variant (Figure 13): merge
//    groups of consecutive panels pairwise (batched GEMMs) until each
//    group's W reaches width kw (they use kw = 2048), then apply group by
//    group. Fat GEMMs without the full-W blow-up.
//
// Merge rule (WY representation, Section 2.1):
//   (I - W1 Y1^T)(I - W2 Y2^T) = I - [W1 | W2 - W1 (Y1^T W2)] [Y1 | Y2]^T.
#pragma once

#include "la/matrix.h"
#include "sbr/sbr.h"

namespace tdg::bt {

/// C <- Q1 C, one panel at a time (GEMM inner dimension = b).
void apply_q1_conventional(const sbr::BandFactor& f, MatrixView c);

/// C <- Q1 C via the fully merged I - W Y^T (paper Algorithm 3).
void apply_q1_recursive(const sbr::BandFactor& f, MatrixView c);

/// C <- Q1 C via group-wise merged W of width ~kw (paper Figure 13).
void apply_q1_blocked(const sbr::BandFactor& f, index_t kw, MatrixView c);

/// A single merged WY pair: Q = I - W Y^T over global rows [row0, n).
struct MergedWy {
  index_t row0 = 0;
  Matrix w;
  Matrix y;
};

/// Merge consecutive panels [lo, hi) of `f` into one WY pair (exposed for
/// tests and for the GPU-model trace of the merge GEMM shapes).
MergedWy merge_panels(const sbr::BandFactor& f, std::size_t lo,
                      std::size_t hi);

}  // namespace tdg::bt
