// WY-pair merging for the recursive (Algorithm 3) and blocked (Figure 13)
// back transformations.

#include <algorithm>

#include "backtransform/backtransform.h"
#include "la/blas.h"
#include "obs/obs.h"

namespace tdg::bt {

namespace {

// Base case: a single panel Q_p = I - V T V^T = I - (V T) V^T.
MergedWy from_panel(const sbr::Panel& p) {
  MergedWy m;
  m.row0 = p.row0;
  m.y = p.v;
  m.w = Matrix(p.v.rows(), p.v.cols());
  la::gemm(Trans::kNo, Trans::kNo, 1.0, p.v.view(), p.t.view(), 0.0,
           m.w.view());
  return m;
}

// Combine: (I - Wl Yl^T)(I - Wr Yr^T) = I - [Wl | Wr - Wl (Yl^T Wr)] [Yl|Yr]^T.
// Panels are ordered by ascending row0, so the left factor spans more rows.
MergedWy combine(const MergedWy& l, const MergedWy& r, index_t n) {
  TDG_CHECK(l.row0 <= r.row0, "combine: panels out of order");
  const index_t hl = n - l.row0;
  const index_t hr = n - r.row0;
  const index_t kl = l.w.cols();
  const index_t kr = r.w.cols();
  const index_t off = r.row0 - l.row0;

  MergedWy m;
  m.row0 = l.row0;
  m.w = Matrix(hl, kl + kr);
  m.y = Matrix(hl, kl + kr);
  copy(l.w.view(), m.w.block(0, 0, hl, kl));
  copy(l.y.view(), m.y.block(0, 0, hl, kl));
  copy(r.w.view(), m.w.block(off, kl, hr, kr));
  copy(r.y.view(), m.y.block(off, kl, hr, kr));

  // W_right' = W_r - W_l (Y_l^T W_r): the correction GEMMs the paper counts
  // as the extra flops of the recursive scheme.
  Matrix mcorr(kl, kr);
  la::gemm(Trans::kTrans, Trans::kNo, 1.0, l.y.block(off, 0, hr, kl),
           r.w.view(), 0.0, mcorr.view());
  la::gemm(Trans::kNo, Trans::kNo, -1.0, l.w.view(), mcorr.view(), 1.0,
           m.w.block(0, kl, hl, kr));
  return m;
}

MergedWy merge_range(const sbr::BandFactor& f, std::size_t lo,
                     std::size_t hi) {
  if (hi - lo == 1) return from_panel(f.panels[lo]);
  const std::size_t mid = lo + (hi - lo) / 2;
  const MergedWy l = merge_range(f, lo, mid);
  const MergedWy r = merge_range(f, mid, hi);
  return combine(l, r, f.n);
}

void apply_merged(const MergedWy& m, index_t n, MatrixView c) {
  // C(row0:, :) -= W (Y^T C(row0:, :)) — two fat GEMMs.
  MatrixView csub = c.block(m.row0, 0, n - m.row0, c.cols);
  Matrix t(m.y.cols(), c.cols);
  la::gemm(Trans::kTrans, Trans::kNo, 1.0, m.y.view(), csub, 0.0, t.view());
  la::gemm(Trans::kNo, Trans::kNo, -1.0, m.w.view(), t.view(), 1.0, csub);
}

}  // namespace

MergedWy merge_panels(const sbr::BandFactor& f, std::size_t lo,
                      std::size_t hi) {
  TDG_CHECK(lo < hi && hi <= f.panels.size(), "merge_panels: bad range");
  return merge_range(f, lo, hi);
}

void apply_q1_recursive(const sbr::BandFactor& f, MatrixView c) {
  TDG_CHECK(c.rows == f.n, "apply_q1_recursive: row mismatch");
  if (f.panels.empty()) return;
  const MergedWy m = merge_panels(f, 0, f.panels.size());
  apply_merged(m, f.n, c);
}

void apply_q1_blocked(const sbr::BandFactor& f, index_t kw, MatrixView c) {
  TDG_CHECK(c.rows == f.n, "apply_q1_blocked: row mismatch");
  TDG_CHECK(kw >= 1, "apply_q1_blocked: kw must be positive");
  if (f.panels.empty()) return;

  obs::Span span("apply_q1");
  span.attr("n", f.n);
  span.attr("cols", c.cols);
  span.attr("kw", kw);

  const std::size_t group =
      std::max<std::size_t>(1, static_cast<std::size_t>(kw / std::max<index_t>(f.b, 1)));
  const std::size_t np = f.panels.size();

  // Group boundaries in factorisation order; groups applied in reverse.
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  for (std::size_t lo = 0; lo < np; lo += group) {
    ranges.emplace_back(lo, std::min(np, lo + group));
  }
  for (auto it = ranges.rbegin(); it != ranges.rend(); ++it) {
    const MergedWy m = merge_panels(f, it->first, it->second);
    apply_merged(m, f.n, c);
  }
}

}  // namespace tdg::bt
