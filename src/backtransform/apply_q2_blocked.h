// Blocked stage-2 (bulge chasing) back transformation — the paper's stated
// future work: "optimizing this back transformation process".
//
// Within one sweep, the chase reflectors act on pairwise-disjoint row
// ranges, so they commute; across g consecutive sweeps the reflectors
// covering the same row window form a compact-WY block of width <= g whose
// application is a pair of GEMMs instead of 2g rank-1 updates. This is the
// "diamond tile" batching MAGMA's dormqr stage uses for sb2st, and it turns
// the O(n^2/b) rank-1 larf calls into O(n^2/(b g)) block applications with
// inner dimension g.
//
// Results agree with bc::apply_q2_left to roundoff (within-sweep reflectors
// commute exactly, so only the summation grouping differs).
#pragma once

#include "bc/bulge_chase.h"

namespace tdg::bt {

/// C <- Q2 * C using compact-WY blocks of up to `group` consecutive sweeps.
/// Equivalent to bc::apply_q2_left (which is the group = 1 special case).
void apply_q2_left_blocked(const bc::ChaseLog& log, MatrixView c,
                           index_t group = 8);

}  // namespace tdg::bt
