#include "backtransform/backtransform.h"

#include "common/cancel.h"
#include "la/blas.h"
#include "lapack/lapack.h"

namespace tdg::bt {

void apply_q1_conventional(const sbr::BandFactor& f, MatrixView c) {
  TDG_CHECK(c.rows == f.n, "apply_q1_conventional: row mismatch");
  // Q1 C = Q_p0 (Q_p1 (... (Q_pm C))) — panels applied in reverse order.
  for (auto p = f.panels.rbegin(); p != f.panels.rend(); ++p) {
    cancel::poll("backtransform_panel");
    lapack::apply_block_reflector_left(
        p->v.view(), p->t.view(), Trans::kNo,
        c.block(p->row0, 0, f.n - p->row0, c.cols));
  }
}

}  // namespace tdg::bt
