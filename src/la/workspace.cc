#include "la/workspace.h"

#include <atomic>

namespace tdg::la {

namespace {
std::atomic<std::size_t> g_current{0};
std::atomic<std::size_t> g_peak{0};
}  // namespace

namespace detail {

void track_alloc(std::size_t bytes) {
  const std::size_t now =
      g_current.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  std::size_t peak = g_peak.load(std::memory_order_relaxed);
  while (now > peak &&
         !g_peak.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
}

void track_dealloc(std::size_t bytes) {
  g_current.fetch_sub(bytes, std::memory_order_relaxed);
}

}  // namespace detail

std::size_t workspace_current_bytes() {
  return g_current.load(std::memory_order_relaxed);
}

std::size_t workspace_peak_bytes() {
  return g_peak.load(std::memory_order_relaxed);
}

void workspace_reset_peak() {
  g_peak.store(g_current.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
}

}  // namespace tdg::la
