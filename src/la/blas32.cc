// Cache-blocked, pool-parallel FP32 BLAS-3 kernels — the float port of
// blas3.cc. Block sizes are doubled where they are byte-budgeted (a float
// is half a double), keeping the packed tiles on the same cache levels.
// Determinism matches the FP64 engine: block grids depend only on shapes,
// every tile is computed by one thread, and the K dimension is walked
// ascending per element — bitwise identical for any thread count.

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "common/thread_pool.h"
#include "la/blas32.h"

namespace tdg {

void copy(ConstMatrixViewF src, MatrixViewF dst) {
  TDG_CHECK(src.rows == dst.rows && src.cols == dst.cols,
            "copy: shape mismatch");
  for (index_t j = 0; j < src.cols; ++j) {
    std::memcpy(dst.col(j), src.col(j),
                static_cast<std::size_t>(src.rows) * sizeof(float));
  }
}

MatrixF to_fp32(ConstMatrixView a) {
  MatrixF f(a.rows, a.cols);
  demote(a, f.view());
  return f;
}

Matrix to_fp64(ConstMatrixViewF a) {
  Matrix d(a.rows, a.cols);
  promote(a, d.view());
  return d;
}

void demote(ConstMatrixView src, MatrixViewF dst) {
  TDG_CHECK(src.rows == dst.rows && src.cols == dst.cols,
            "demote: shape mismatch");
  for (index_t j = 0; j < src.cols; ++j) {
    const double* s = src.col(j);
    float* d = dst.col(j);
    for (index_t i = 0; i < src.rows; ++i) d[i] = static_cast<float>(s[i]);
  }
}

void promote(ConstMatrixViewF src, MatrixView dst) {
  TDG_CHECK(src.rows == dst.rows && src.cols == dst.cols,
            "promote: shape mismatch");
  for (index_t j = 0; j < src.cols; ++j) {
    const float* s = src.col(j);
    double* d = dst.col(j);
    for (index_t i = 0; i < src.rows; ++i) d[i] = static_cast<double>(s[i]);
  }
}

namespace la {

namespace {

// Cache-block sizes: same byte budgets as the FP64 engine (blas3.cc), so
// kKC doubles (a kMC x kKC float tile is still 256 KiB).
constexpr index_t kMC = 128;
constexpr index_t kKC = 512;
constexpr index_t kNC = 512;
constexpr index_t kSmallGemmVolume = 64 * 64 * 64;
constexpr index_t kJB = 32;

void gemm_nn_kernel_f(float alpha, ConstMatrixViewF a, ConstMatrixViewF b,
                      float beta, MatrixViewF c) {
  const index_t m = c.rows;
  const index_t n = c.cols;
  const index_t k = a.cols;
  constexpr index_t kColBlock = 8;

  for (index_t jj = 0; jj < n; jj += kColBlock) {
    const index_t jb = std::min(kColBlock, n - jj);
    if (beta != 1.0f) {
      for (index_t j = jj; j < jj + jb; ++j) {
        float* cj = c.col(j);
        if (beta == 0.0f) {
          std::fill(cj, cj + m, 0.0f);
        } else {
          for (index_t i = 0; i < m; ++i) cj[i] *= beta;
        }
      }
    }
    for (index_t l = 0; l < k; ++l) {
      const float* al = a.col(l);
      float coef[kColBlock];
      float* ccol[kColBlock];
      for (index_t t = 0; t < jb; ++t) {
        coef[t] = alpha * b(l, jj + t);
        ccol[t] = c.col(jj + t);
      }
      if (jb == kColBlock) {
        for (index_t i = 0; i < m; ++i) {
          const float ai = al[i];
          ccol[0][i] += coef[0] * ai;
          ccol[1][i] += coef[1] * ai;
          ccol[2][i] += coef[2] * ai;
          ccol[3][i] += coef[3] * ai;
          ccol[4][i] += coef[4] * ai;
          ccol[5][i] += coef[5] * ai;
          ccol[6][i] += coef[6] * ai;
          ccol[7][i] += coef[7] * ai;
        }
      } else {
        for (index_t t = 0; t < jb; ++t) {
          const float ct = coef[t];
          float* cc = ccol[t];
          for (index_t i = 0; i < m; ++i) cc[i] += ct * al[i];
        }
      }
    }
  }
}

void pack_a_panel_f(Trans ta, ConstMatrixViewF a, index_t pc, index_t kc,
                    index_t m, float* dst) {
  parallel_chunks(m, kMC, [&](index_t lo, index_t hi) {
    if (ta == Trans::kNo) {
      for (index_t l = 0; l < kc; ++l) {
        std::memcpy(dst + lo + l * m, a.col(pc + l) + lo,
                    static_cast<std::size_t>(hi - lo) * sizeof(float));
      }
    } else {
      for (index_t i = lo; i < hi; ++i) {
        const float* ai = a.col(i) + pc;
        for (index_t l = 0; l < kc; ++l) dst[i + l * m] = ai[l];
      }
    }
  });
}

void pack_b_panel_f(Trans tb, ConstMatrixViewF b, index_t pc, index_t kc,
                    index_t n, float* dst) {
  parallel_chunks(n, kNC, [&](index_t lo, index_t hi) {
    if (tb == Trans::kNo) {
      for (index_t j = lo; j < hi; ++j) {
        std::memcpy(dst + j * kc, b.col(j) + pc,
                    static_cast<std::size_t>(kc) * sizeof(float));
      }
    } else {
      for (index_t l = 0; l < kc; ++l) {
        const float* bl = b.col(pc + l);
        for (index_t j = lo; j < hi; ++j) dst[l + j * kc] = bl[j];
      }
    }
  });
}

void scale_columns_f(float beta, MatrixViewF c) {
  if (beta == 1.0f) return;
  for (index_t j = 0; j < c.cols; ++j) {
    float* cj = c.col(j);
    for (index_t i = 0; i < c.rows; ++i) cj[i] *= beta;
  }
}

void gemm_packed_f(Trans ta, Trans tb, float alpha, ConstMatrixViewF a,
                   ConstMatrixViewF b, float beta, MatrixViewF c) {
  const index_t m = c.rows;
  const index_t n = c.cols;
  const index_t k = (ta == Trans::kNo) ? a.cols : a.rows;

  const index_t kc_max = std::min(k, kKC);
  std::vector<float> apack(static_cast<std::size_t>(m) * kc_max);
  std::vector<float> bpack(static_cast<std::size_t>(kc_max) * n);
  const index_t nmb = (m + kMC - 1) / kMC;
  const index_t nnb = (n + kNC - 1) / kNC;

  for (index_t pc = 0; pc < k; pc += kKC) {
    const index_t kc = std::min(kKC, k - pc);
    pack_a_panel_f(ta, a, pc, kc, m, apack.data());
    pack_b_panel_f(tb, b, pc, kc, n, bpack.data());
    const ConstMatrixViewF ap{apack.data(), m, kc, m};
    const ConstMatrixViewF bp{bpack.data(), kc, n, kc};
    const float beta_eff = (pc == 0) ? beta : 1.0f;

    ThreadPool::global().parallel_for(0, nmb * nnb, [&](index_t t) {
      const index_t bi = t % nmb;
      const index_t bj = t / nmb;
      const index_t i0 = bi * kMC;
      const index_t j0 = bj * kNC;
      const index_t mb = std::min(kMC, m - i0);
      const index_t nb = std::min(kNC, n - j0);
      gemm_nn_kernel_f(alpha, ap.block(i0, 0, mb, kc),
                       bp.block(0, j0, kc, nb), beta_eff,
                       c.block(i0, j0, mb, nb));
    });
  }
}

}  // namespace

float dot_f(index_t n, const float* x, const float* y) {
  float s = 0.0f;
  for (index_t i = 0; i < n; ++i) s += x[i] * y[i];
  return s;
}

void scal_f(index_t n, float alpha, float* x) {
  for (index_t i = 0; i < n; ++i) x[i] *= alpha;
}

float nrm2_f(index_t n, const float* x) {
  float scale = 0.0f;
  float ssq = 1.0f;
  for (index_t i = 0; i < n; ++i) {
    const float a = std::fabs(x[i]);
    if (a == 0.0f) continue;
    if (scale < a) {
      const float r = scale / a;
      ssq = 1.0f + ssq * r * r;
      scale = a;
    } else {
      const float r = a / scale;
      ssq += r * r;
    }
  }
  return scale * std::sqrt(ssq);
}

void gemm_f(Trans ta, Trans tb, float alpha, ConstMatrixViewF a,
            ConstMatrixViewF b, float beta, MatrixViewF c) {
  const index_t opa_rows = (ta == Trans::kNo) ? a.rows : a.cols;
  const index_t opa_cols = (ta == Trans::kNo) ? a.cols : a.rows;
  const index_t opb_rows = (tb == Trans::kNo) ? b.rows : b.cols;
  const index_t opb_cols = (tb == Trans::kNo) ? b.cols : b.rows;
  TDG_CHECK(opa_rows == c.rows && opb_cols == c.cols && opa_cols == opb_rows,
            "gemm_f: shape mismatch");
  const index_t m = c.rows;
  const index_t n = c.cols;
  const index_t k = opa_cols;
  if (m == 0 || n == 0) return;
  if (k == 0 || alpha == 0.0f) {
    scale_columns_f(beta, c);
    return;
  }
  if (ta == Trans::kNo && tb == Trans::kNo && m * n * k <= kSmallGemmVolume) {
    gemm_nn_kernel_f(alpha, a, b, beta, c);
    return;
  }
  gemm_packed_f(ta, tb, alpha, a, b, beta, c);
}

void syr2k_lower_f(float alpha, ConstMatrixViewF a, ConstMatrixViewF b,
                   float beta, MatrixViewF c) {
  TDG_CHECK(c.rows == c.cols, "syr2k_lower_f: C must be square");
  TDG_CHECK(a.rows == c.rows && b.rows == c.rows && a.cols == b.cols,
            "syr2k_lower_f: shape mismatch");
  const index_t n = c.rows;
  const index_t k = a.cols;
  parallel_chunks(n, kJB, [&](index_t lo, index_t hi) {
    if (beta != 1.0f) {
      for (index_t j = lo; j < hi; ++j) {
        float* cj = c.col(j);
        for (index_t i = j; i < n; ++i) cj[i] *= beta;
      }
    }
    for (index_t l = 0; l < k; ++l) {
      const float* al = a.col(l);
      const float* bl = b.col(l);
      for (index_t j = lo; j < hi; ++j) {
        const float abj = alpha * b(j, l);
        const float aaj = alpha * a(j, l);
        float* cj = c.col(j);
        for (index_t i = j; i < n; ++i) {
          cj[i] += abj * al[i] + aaj * bl[i];
        }
      }
    }
  });
}

void symm_lower_f(float alpha, ConstMatrixViewF a, ConstMatrixViewF b,
                  float beta, MatrixViewF c) {
  TDG_CHECK(a.rows == a.cols, "symm_lower_f: A must be square");
  TDG_CHECK(a.rows == b.rows && b.rows == c.rows && b.cols == c.cols,
            "symm_lower_f: shape mismatch");
  const index_t n = a.rows;
  const index_t w = c.cols;
  parallel_chunks(w, kJB, [&](index_t lo, index_t hi) {
    if (beta != 1.0f) {
      for (index_t j = lo; j < hi; ++j) {
        float* cj = c.col(j);
        if (beta == 0.0f) {
          std::fill(cj, cj + n, 0.0f);
        } else {
          for (index_t i = 0; i < n; ++i) cj[i] *= beta;
        }
      }
    }
    for (index_t l = 0; l < n; ++l) {
      const float* al = a.col(l);
      for (index_t j = lo; j < hi; ++j) {
        float* cj = c.col(j);
        const float* bj = b.col(j);
        const float abl = alpha * bj[l];
        cj[l] += abl * al[l];
        float s = 0.0f;
        for (index_t i = l + 1; i < n; ++i) {
          cj[i] += abl * al[i];
          s += al[i] * bj[i];
        }
        cj[l] += alpha * s;
      }
    }
  });
}

}  // namespace la
}  // namespace tdg
