// FP32 BLAS subset backing the mixed-precision EVD engine.
//
// Same kernels, same cache blocking, and same determinism contract as the
// FP64 engine in blas3.cc — packed K-panels, the 8-column register
// micro-kernel, pool-parallel block grids whose shapes never depend on the
// thread count — just in float, which doubles the SIMD width and halves
// the memory traffic (the whole point of the FP32 compute stage).
//
// Untraced: the op trace (common/trace.h) records the canonical FP64
// pipeline only; the float engine is reached exclusively through
// EvdOptions mode kMixedPrecision, which the trace-replay tooling does not
// cover.
#pragma once

#include "la/blas.h"
#include "la/matrix32.h"

namespace tdg::la {

// ----- BLAS 1 -----

float dot_f(index_t n, const float* x, const float* y);
void scal_f(index_t n, float alpha, float* x);
/// Euclidean norm with overflow-safe scaling (accumulates in float).
float nrm2_f(index_t n, const float* x);

// ----- BLAS 3 -----

/// C = alpha * op(A) op(B) + beta * C.
void gemm_f(Trans ta, Trans tb, float alpha, ConstMatrixViewF a,
            ConstMatrixViewF b, float beta, MatrixViewF c);

/// C = alpha * (A B^T + B A^T) + beta * C, lower triangle of C only.
void syr2k_lower_f(float alpha, ConstMatrixViewF a, ConstMatrixViewF b,
                   float beta, MatrixViewF c);

/// C(m x w) = alpha * A B + beta * C, A symmetric with data in the lower
/// triangle only.
void symm_lower_f(float alpha, ConstMatrixViewF a, ConstMatrixViewF b,
                  float beta, MatrixViewF c);

}  // namespace tdg::la
