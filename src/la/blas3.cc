// Cache-blocked, pool-parallel BLAS-3 kernels.
//
// Structure (BLIS-style, sized for a laptop-class core):
//   * gemm packs op(A)/op(B) K-panels of depth kKC into contiguous buffers
//     — transposition is absorbed during the pack, so the Trans cases cost
//     one panel copy instead of a full-matrix transpose — then sweeps an
//     MC x NC block grid whose tiles run the 8-column register micro-kernel
//     and are distributed over the thread pool.
//   * syr2k_lower processes fixed-width column blocks of the lower triangle
//     in parallel, with the k loop hoisted so each A/B column is streamed
//     once per block instead of once per column.
//   * symm_lower parallelizes over output-column blocks.
//
// Determinism: the block grid depends only on the shape (never the thread
// count), every tile is computed by one thread with a fixed inner loop
// order, and the K dimension is always walked ascending per element —
// results are bitwise identical for any thread count, and bitwise identical
// to the original single-threaded column-sweep kernels.
//
// Tracing: the public entry points record one op on the calling thread;
// pool workers run the untraced detail:: kernels (common/trace.h is
// thread-local), so recorded traces are thread-count invariant.

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/thread_pool.h"
#include "common/trace.h"
#include "la/blas.h"

namespace tdg::la {

namespace {

// Cache-block sizes: the packed A tile (kMC x kKC doubles = 256 KiB) targets
// L2; the 8-column C strip of a tile (kMC x 8 doubles = 8 KiB) lives in L1
// across the K sweep; kNC bounds the packed B panel working set per task.
constexpr index_t kMC = 128;
constexpr index_t kKC = 256;
constexpr index_t kNC = 512;

// NN problems below this flop volume skip packing and dispatch entirely
// (the hot skinny panel-factor GEMMs in the band reduction).
constexpr index_t kSmallGemmVolume = 64 * 64 * 64;

// Column-block width for the syr2k / symm parallel sweeps.
constexpr index_t kJB = 32;

// Core kernel: C = alpha * A(m x k) * B(k x n) + beta * C, no transposes.
// Column-register blocking: 8 output columns per pass so each A column is
// read once per 8 C columns.
void gemm_nn_kernel(double alpha, ConstMatrixView a, ConstMatrixView b,
                    double beta, MatrixView c) {
  const index_t m = c.rows;
  const index_t n = c.cols;
  const index_t k = a.cols;
  constexpr index_t kColBlock = 8;

  for (index_t jj = 0; jj < n; jj += kColBlock) {
    const index_t jb = std::min(kColBlock, n - jj);
    if (beta != 1.0) {
      for (index_t j = jj; j < jj + jb; ++j) {
        double* cj = c.col(j);
        if (beta == 0.0) {
          std::fill(cj, cj + m, 0.0);
        } else {
          for (index_t i = 0; i < m; ++i) cj[i] *= beta;
        }
      }
    }
    for (index_t l = 0; l < k; ++l) {
      const double* al = a.col(l);
      double coef[kColBlock];
      double* ccol[kColBlock];
      for (index_t t = 0; t < jb; ++t) {
        coef[t] = alpha * b(l, jj + t);
        ccol[t] = c.col(jj + t);
      }
      if (jb == kColBlock) {
        for (index_t i = 0; i < m; ++i) {
          const double ai = al[i];
          ccol[0][i] += coef[0] * ai;
          ccol[1][i] += coef[1] * ai;
          ccol[2][i] += coef[2] * ai;
          ccol[3][i] += coef[3] * ai;
          ccol[4][i] += coef[4] * ai;
          ccol[5][i] += coef[5] * ai;
          ccol[6][i] += coef[6] * ai;
          ccol[7][i] += coef[7] * ai;
        }
      } else {
        for (index_t t = 0; t < jb; ++t) {
          const double ct = coef[t];
          double* cc = ccol[t];
          for (index_t i = 0; i < m; ++i) cc[i] += ct * al[i];
        }
      }
    }
  }
}

// Pack op(A)(:, pc:pc+kc) into dst (m x kc column-major, ld = m),
// parallel over disjoint row ranges.
void pack_a_panel(Trans ta, ConstMatrixView a, index_t pc, index_t kc,
                  index_t m, double* dst) {
  parallel_chunks(m, kMC, [&](index_t lo, index_t hi) {
    if (ta == Trans::kNo) {
      for (index_t l = 0; l < kc; ++l) {
        std::memcpy(dst + lo + l * m, a.col(pc + l) + lo,
                    static_cast<std::size_t>(hi - lo) * sizeof(double));
      }
    } else {
      // op(A)(i, l) = a(pc + l, i): read each source column contiguously.
      for (index_t i = lo; i < hi; ++i) {
        const double* ai = a.col(i) + pc;
        for (index_t l = 0; l < kc; ++l) dst[i + l * m] = ai[l];
      }
    }
  });
}

// Pack op(B)(pc:pc+kc, :) into dst (kc x n column-major, ld = kc),
// parallel over disjoint column ranges.
void pack_b_panel(Trans tb, ConstMatrixView b, index_t pc, index_t kc,
                  index_t n, double* dst) {
  parallel_chunks(n, kNC, [&](index_t lo, index_t hi) {
    if (tb == Trans::kNo) {
      for (index_t j = lo; j < hi; ++j) {
        std::memcpy(dst + j * kc, b.col(j) + pc,
                    static_cast<std::size_t>(kc) * sizeof(double));
      }
    } else {
      // op(B)(l, j) = b(j, pc + l): read each source column contiguously.
      for (index_t l = 0; l < kc; ++l) {
        const double* bl = b.col(pc + l);
        for (index_t j = lo; j < hi; ++j) dst[l + j * kc] = bl[j];
      }
    }
  });
}

void scale_columns(double beta, MatrixView c) {
  if (beta == 1.0) return;
  for (index_t j = 0; j < c.cols; ++j) {
    double* cj = c.col(j);
    for (index_t i = 0; i < c.rows; ++i) cj[i] *= beta;
  }
}

// Packed MC x KC x NC loop nest. The K loop stays outermost and ascending,
// so each C element accumulates its k contributions in exactly the order
// the unblocked kernel used.
void gemm_packed(Trans ta, Trans tb, double alpha, ConstMatrixView a,
                 ConstMatrixView b, double beta, MatrixView c) {
  const index_t m = c.rows;
  const index_t n = c.cols;
  const index_t k = (ta == Trans::kNo) ? a.cols : a.rows;

  const index_t kc_max = std::min(k, kKC);
  std::vector<double> apack(static_cast<std::size_t>(m) * kc_max);
  std::vector<double> bpack(static_cast<std::size_t>(kc_max) * n);
  const index_t nmb = (m + kMC - 1) / kMC;
  const index_t nnb = (n + kNC - 1) / kNC;

  for (index_t pc = 0; pc < k; pc += kKC) {
    const index_t kc = std::min(kKC, k - pc);
    pack_a_panel(ta, a, pc, kc, m, apack.data());
    pack_b_panel(tb, b, pc, kc, n, bpack.data());
    const ConstMatrixView ap{apack.data(), m, kc, m};
    const ConstMatrixView bp{bpack.data(), kc, n, kc};
    const double beta_eff = (pc == 0) ? beta : 1.0;

    ThreadPool::global().parallel_for(0, nmb * nnb, [&](index_t t) {
      const index_t bi = t % nmb;
      const index_t bj = t / nmb;
      const index_t i0 = bi * kMC;
      const index_t j0 = bj * kNC;
      const index_t mb = std::min(kMC, m - i0);
      const index_t nb = std::min(kNC, n - j0);
      gemm_nn_kernel(alpha, ap.block(i0, 0, mb, kc), bp.block(0, j0, kc, nb),
                     beta_eff, c.block(i0, j0, mb, nb));
    });
  }
}

}  // namespace

namespace detail {

void gemm_notrace(Trans ta, Trans tb, double alpha, ConstMatrixView a,
                  ConstMatrixView b, double beta, MatrixView c) {
  const index_t m = c.rows;
  const index_t n = c.cols;
  const index_t k = (ta == Trans::kNo) ? a.cols : a.rows;
  if (m == 0 || n == 0) return;
  if (k == 0 || alpha == 0.0) {
    scale_columns(beta, c);
    return;
  }
  if (ta == Trans::kNo && tb == Trans::kNo && m * n * k <= kSmallGemmVolume) {
    gemm_nn_kernel(alpha, a, b, beta, c);
    return;
  }
  gemm_packed(ta, tb, alpha, a, b, beta, c);
}

void syr2k_lower_notrace(double alpha, ConstMatrixView a, ConstMatrixView b,
                         double beta, MatrixView c) {
  const index_t n = c.rows;
  const index_t k = a.cols;
  // Fixed kJB-column blocks of the lower triangle, distributed over the
  // pool; within a block the k loop is hoisted so the streamed A/B columns
  // serve every block column. Each element still accumulates in ascending
  // l order — bitwise identical to the plain column sweep.
  parallel_chunks(n, kJB, [&](index_t lo, index_t hi) {
    if (beta != 1.0) {
      for (index_t j = lo; j < hi; ++j) {
        double* cj = c.col(j);
        for (index_t i = j; i < n; ++i) cj[i] *= beta;
      }
    }
    for (index_t l = 0; l < k; ++l) {
      const double* al = a.col(l);
      const double* bl = b.col(l);
      for (index_t j = lo; j < hi; ++j) {
        const double abj = alpha * b(j, l);
        const double aaj = alpha * a(j, l);
        double* cj = c.col(j);
        for (index_t i = j; i < n; ++i) {
          cj[i] += abj * al[i] + aaj * bl[i];
        }
      }
    }
  });
}

}  // namespace detail

void gemm(Trans ta, Trans tb, double alpha, ConstMatrixView a,
          ConstMatrixView b, double beta, MatrixView c) {
  const index_t opa_rows = (ta == Trans::kNo) ? a.rows : a.cols;
  const index_t opa_cols = (ta == Trans::kNo) ? a.cols : a.rows;
  const index_t opb_rows = (tb == Trans::kNo) ? b.rows : b.cols;
  const index_t opb_cols = (tb == Trans::kNo) ? b.cols : b.rows;
  TDG_CHECK(opa_rows == c.rows && opb_cols == c.cols && opa_cols == opb_rows,
            "gemm: shape mismatch");
  trace::record({trace::OpKind::kGemm, c.rows, c.cols, opa_cols, 1});
  detail::gemm_notrace(ta, tb, alpha, a, b, beta, c);
}

void syr2k_lower(double alpha, ConstMatrixView a, ConstMatrixView b,
                 double beta, MatrixView c) {
  TDG_CHECK(c.rows == c.cols, "syr2k_lower: C must be square");
  TDG_CHECK(a.rows == c.rows && b.rows == c.rows && a.cols == b.cols,
            "syr2k_lower: shape mismatch");
  trace::record({trace::OpKind::kSyr2k, c.rows, c.rows, a.cols, 1});
  detail::syr2k_lower_notrace(alpha, a, b, beta, c);
}

void symm_lower(double alpha, ConstMatrixView a, ConstMatrixView b,
                double beta, MatrixView c) {
  TDG_CHECK(a.rows == a.cols, "symm_lower: A must be square");
  TDG_CHECK(a.rows == b.rows && b.rows == c.rows && b.cols == c.cols,
            "symm_lower: shape mismatch");
  trace::record({trace::OpKind::kGemm, c.rows, c.cols, a.cols, 1});

  const index_t n = a.rows;
  const index_t w = c.cols;
  // Output columns are independent; distribute fixed-width column blocks
  // over the pool, each running the one-pass lower-triangle sweep.
  parallel_chunks(w, kJB, [&](index_t lo, index_t hi) {
    if (beta != 1.0) {
      for (index_t j = lo; j < hi; ++j) {
        double* cj = c.col(j);
        if (beta == 0.0) {
          std::fill(cj, cj + n, 0.0);
        } else {
          for (index_t i = 0; i < n; ++i) cj[i] *= beta;
        }
      }
    }
    // One pass over the stored (lower) columns of A; column l contributes
    // to rows l..n-1 directly and to row l via the mirrored entries.
    for (index_t l = 0; l < n; ++l) {
      const double* al = a.col(l);
      for (index_t j = lo; j < hi; ++j) {
        double* cj = c.col(j);
        const double* bj = b.col(j);
        const double abl = alpha * bj[l];
        cj[l] += abl * al[l];
        double s = 0.0;
        for (index_t i = l + 1; i < n; ++i) {
          cj[i] += abl * al[i];
          s += al[i] * bj[i];
        }
        cj[l] += alpha * s;
      }
    }
  });
}

}  // namespace tdg::la
