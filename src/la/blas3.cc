#include <algorithm>

#include "common/trace.h"
#include "la/blas.h"

namespace tdg::la {

namespace {

// Core kernel: C = alpha * A(m x k) * B(k x n) + beta * C, no transposes.
// Column-register blocking: 8 output columns per pass so each A column is
// read once per 8 C columns.
void gemm_nn(double alpha, ConstMatrixView a, ConstMatrixView b, double beta,
             MatrixView c) {
  const index_t m = c.rows;
  const index_t n = c.cols;
  const index_t k = a.cols;
  constexpr index_t kColBlock = 8;

  for (index_t jj = 0; jj < n; jj += kColBlock) {
    const index_t jb = std::min(kColBlock, n - jj);
    if (beta != 1.0) {
      for (index_t j = jj; j < jj + jb; ++j) {
        double* cj = c.col(j);
        if (beta == 0.0) {
          std::fill(cj, cj + m, 0.0);
        } else {
          for (index_t i = 0; i < m; ++i) cj[i] *= beta;
        }
      }
    }
    for (index_t l = 0; l < k; ++l) {
      const double* al = a.col(l);
      double coef[kColBlock];
      double* ccol[kColBlock];
      for (index_t t = 0; t < jb; ++t) {
        coef[t] = alpha * b(l, jj + t);
        ccol[t] = c.col(jj + t);
      }
      if (jb == kColBlock) {
        for (index_t i = 0; i < m; ++i) {
          const double ai = al[i];
          ccol[0][i] += coef[0] * ai;
          ccol[1][i] += coef[1] * ai;
          ccol[2][i] += coef[2] * ai;
          ccol[3][i] += coef[3] * ai;
          ccol[4][i] += coef[4] * ai;
          ccol[5][i] += coef[5] * ai;
          ccol[6][i] += coef[6] * ai;
          ccol[7][i] += coef[7] * ai;
        }
      } else {
        for (index_t t = 0; t < jb; ++t) {
          const double ct = coef[t];
          double* cc = ccol[t];
          for (index_t i = 0; i < m; ++i) cc[i] += ct * al[i];
        }
      }
    }
  }
}

// Materialise op(X) as a plain matrix when a transpose is requested, so the
// single NN kernel serves all four cases. The O(mk) pack cost is dominated
// by the O(mnk) multiply.
Matrix pack_transposed(ConstMatrixView x) { return transposed(x); }

}  // namespace

void gemm(Trans ta, Trans tb, double alpha, ConstMatrixView a,
          ConstMatrixView b, double beta, MatrixView c) {
  const index_t opa_rows = (ta == Trans::kNo) ? a.rows : a.cols;
  const index_t opa_cols = (ta == Trans::kNo) ? a.cols : a.rows;
  const index_t opb_rows = (tb == Trans::kNo) ? b.rows : b.cols;
  const index_t opb_cols = (tb == Trans::kNo) ? b.cols : b.rows;
  TDG_CHECK(opa_rows == c.rows && opb_cols == c.cols && opa_cols == opb_rows,
            "gemm: shape mismatch");
  trace::record({trace::OpKind::kGemm, c.rows, c.cols, opa_cols, 1});

  if (c.rows == 0 || c.cols == 0) return;
  if (opa_cols == 0 || alpha == 0.0) {
    if (beta != 1.0) {
      for (index_t j = 0; j < c.cols; ++j) {
        double* cj = c.col(j);
        for (index_t i = 0; i < c.rows; ++i) cj[i] *= beta;
      }
    }
    return;
  }

  if (ta == Trans::kNo && tb == Trans::kNo) {
    gemm_nn(alpha, a, b, beta, c);
  } else if (ta == Trans::kTrans && tb == Trans::kNo) {
    const Matrix at = pack_transposed(a);
    gemm_nn(alpha, at.view(), b, beta, c);
  } else if (ta == Trans::kNo && tb == Trans::kTrans) {
    const Matrix bt = pack_transposed(b);
    gemm_nn(alpha, a, bt.view(), beta, c);
  } else {
    const Matrix at = pack_transposed(a);
    const Matrix bt = pack_transposed(b);
    gemm_nn(alpha, at.view(), bt.view(), beta, c);
  }
}

void syr2k_lower(double alpha, ConstMatrixView a, ConstMatrixView b,
                 double beta, MatrixView c) {
  TDG_CHECK(c.rows == c.cols, "syr2k_lower: C must be square");
  TDG_CHECK(a.rows == c.rows && b.rows == c.rows && a.cols == b.cols,
            "syr2k_lower: shape mismatch");
  trace::record({trace::OpKind::kSyr2k, c.rows, c.rows, a.cols, 1});

  const index_t n = c.rows;
  const index_t k = a.cols;
  for (index_t j = 0; j < n; ++j) {
    double* cj = c.col(j);
    if (beta != 1.0) {
      for (index_t i = j; i < n; ++i) cj[i] *= beta;
    }
    for (index_t l = 0; l < k; ++l) {
      const double abj = alpha * b(j, l);
      const double aaj = alpha * a(j, l);
      const double* al = a.col(l);
      const double* bl = b.col(l);
      for (index_t i = j; i < n; ++i) {
        cj[i] += abj * al[i] + aaj * bl[i];
      }
    }
  }
}

void symm_lower(double alpha, ConstMatrixView a, ConstMatrixView b,
                double beta, MatrixView c) {
  TDG_CHECK(a.rows == a.cols, "symm_lower: A must be square");
  TDG_CHECK(a.rows == b.rows && b.rows == c.rows && b.cols == c.cols,
            "symm_lower: shape mismatch");
  trace::record({trace::OpKind::kGemm, c.rows, c.cols, a.cols, 1});

  const index_t n = a.rows;
  const index_t w = c.cols;
  if (beta != 1.0) {
    for (index_t j = 0; j < w; ++j) {
      double* cj = c.col(j);
      if (beta == 0.0) {
        std::fill(cj, cj + n, 0.0);
      } else {
        for (index_t i = 0; i < n; ++i) cj[i] *= beta;
      }
    }
  }
  // One pass over the stored (lower) columns of A; column l contributes to
  // rows l..n-1 directly and to row l via the mirrored entries.
  for (index_t l = 0; l < n; ++l) {
    const double* al = a.col(l);
    for (index_t j = 0; j < w; ++j) {
      double* cj = c.col(j);
      const double* bj = b.col(j);
      const double abl = alpha * bj[l];
      cj[l] += abl * al[l];
      double s = 0.0;
      for (index_t i = l + 1; i < n; ++i) {
        cj[i] += abl * al[i];
        s += al[i] * bj[i];
      }
      cj[l] += alpha * s;
    }
  }
}

}  // namespace tdg::la
