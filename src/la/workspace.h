// Peak-workspace accounting for the dense containers.
//
// Every owning Matrix / MatrixF allocation routes through TrackingAlloc,
// which maintains a process-wide current-bytes counter and a monotone peak.
// The counters are relaxed atomics — numerics are untouched and the
// overhead is one add per container allocation, not per element — so the
// values-only memory claim (ISSUE: peak strictly below the standard path)
// can be *measured*, not argued. Scoped usage:
//
//   la::workspace_reset_peak();
//   ... run a driver ...
//   std::size_t peak = la::workspace_peak_bytes();
//
// The peak is global (not per-thread): concurrent drivers sum into one
// high-water mark, which is what a capacity planner wants anyway.
#pragma once

#include <cstddef>
#include <new>

namespace tdg::la {

namespace detail {
void track_alloc(std::size_t bytes);
void track_dealloc(std::size_t bytes);
}  // namespace detail

/// Bytes currently held by tracked containers.
std::size_t workspace_current_bytes();

/// High-water mark since the last reset (monotone between resets).
std::size_t workspace_peak_bytes();

/// Restart the peak from the current live footprint.
void workspace_reset_peak();

/// Minimal allocator wrapper: operator new plus the byte counters.
template <class T>
struct TrackingAlloc {
  using value_type = T;

  TrackingAlloc() = default;
  template <class U>
  TrackingAlloc(const TrackingAlloc<U>&) noexcept {}  // NOLINT

  T* allocate(std::size_t n) {
    detail::track_alloc(n * sizeof(T));
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    detail::track_dealloc(n * sizeof(T));
    ::operator delete(p);
  }

  template <class U>
  bool operator==(const TrackingAlloc<U>&) const noexcept {
    return true;
  }
  template <class U>
  bool operator!=(const TrackingAlloc<U>&) const noexcept {
    return false;
  }
};

}  // namespace tdg::la
