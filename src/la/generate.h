// Test/benchmark matrix generators.
#pragma once

#include <vector>

#include "common/rng.h"
#include "la/matrix.h"

namespace tdg {

/// Dense m x n with iid standard-normal entries.
Matrix random_matrix(index_t m, index_t n, Rng& rng);

/// Symmetric n x n: (G + G^T) / 2 with G standard normal.
Matrix random_symmetric(index_t n, Rng& rng);

/// Symmetric n x n with prescribed eigenvalues: Q diag(evals) Q^T for a
/// random orthogonal Q (composed Householder reflections).
Matrix symmetric_with_spectrum(const std::vector<double>& evals, Rng& rng);

/// Symmetric band matrix (bandwidth b) embedded in a dense n x n matrix.
Matrix random_symmetric_band(index_t n, index_t b, Rng& rng);

/// The 1-D discrete Laplacian (second-difference) matrix: 2 on the diagonal,
/// -1 on the sub/super-diagonal. Its eigenvalues are 2 - 2 cos(j*pi/(n+1)).
Matrix laplacian_1d(index_t n);

/// Analytic eigenvalues of laplacian_1d(n), ascending.
std::vector<double> laplacian_1d_eigenvalues(index_t n);

}  // namespace tdg
