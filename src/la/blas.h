// From-scratch BLAS subset (FP64, column-major) used by every algorithm in
// the library. This is the substrate standing in for cuBLAS: the algorithms
// above it call these kernels with exactly the shapes they would submit to a
// GPU, and each call is recorded in the active trace (common/trace.h).
#pragma once

#include "la/matrix.h"

namespace tdg {

enum class Trans { kNo, kTrans };

namespace la {

// ----- BLAS 1 (contiguous vectors) -----

/// sum_i x[i] * y[i]
double dot(index_t n, const double* x, const double* y);

/// y += alpha * x
void axpy(index_t n, double alpha, const double* x, double* y);

/// x *= alpha
void scal(index_t n, double alpha, double* x);

/// Euclidean norm with overflow-safe scaling.
double nrm2(index_t n, const double* x);

// ----- BLAS 2 -----

/// y = alpha * op(A) x + beta * y
void gemv(Trans ta, double alpha, ConstMatrixView a, const double* x,
          double beta, double* y);

/// A += alpha * x y^T
void ger(double alpha, const double* x, const double* y, MatrixView a);

/// y = alpha * A x + beta * y, A symmetric with data in the lower triangle.
void symv_lower(double alpha, ConstMatrixView a, const double* x, double beta,
                double* y);

/// A += alpha * (x y^T + y x^T), lower triangle only.
void syr2_lower(double alpha, const double* x, const double* y, MatrixView a);

// ----- BLAS 3 -----

/// C = alpha * op(A) op(B) + beta * C
void gemm(Trans ta, Trans tb, double alpha, ConstMatrixView a,
          ConstMatrixView b, double beta, MatrixView c);

/// C = alpha * (A B^T + B A^T) + beta * C, lower triangle of C only.
/// Reference column-sweep implementation (the "cuBLAS syr2k" stand-in).
void syr2k_lower(double alpha, ConstMatrixView a, ConstMatrixView b,
                 double beta, MatrixView c);

/// C(m x w) = alpha * A B + beta * C with A (m x m) symmetric, data in the
/// lower triangle only. Recorded in the trace as an m x w x m GEMM — on a
/// GPU a symm runs the same flops and tiles as the equivalent gemm.
void symm_lower(double alpha, ConstMatrixView a, ConstMatrixView b,
                double beta, MatrixView c);

/// Same contract as syr2k_lower, but computed with the paper's Fig.-7
/// schedule: the lower triangle is tiled into square blocks which are
/// processed by anti-diagonal ("iteration 1: diagonal blocks, iteration 2:
/// first off-diagonal blocks, ..."), each block a square GEMM. All blocks
/// within one iteration are independent and are dispatched to the thread
/// pool (the CPU realization of the paper's streamed schedule).
/// `block` is the square tile size (0 = pick a default).
void syr2k_lower_square(double alpha, ConstMatrixView a, ConstMatrixView b,
                        double beta, MatrixView c, index_t block = 0);

/// Effective square tile size the Fig.-7 schedule uses for an n x n update
/// when the caller passed `block` (0 = default). Exposed so DAG schedulers
/// (src/common/task_graph.h users) can build the exact same tile grid the
/// barrier path iterates — the tile grid is part of the bitwise contract.
index_t syr2k_square_block_size(index_t n, index_t block);

namespace detail {

// Untraced kernel entry points for schedulers that dispatch blocks onto the
// thread pool. Pool workers carry no trace recorder (common/trace.h is
// thread-local), so the scheduler records the per-block ops on its own
// thread and routes the arithmetic through these. Shapes must already be
// validated by the caller.
void gemm_notrace(Trans ta, Trans tb, double alpha, ConstMatrixView a,
                  ConstMatrixView b, double beta, MatrixView c);
void syr2k_lower_notrace(double alpha, ConstMatrixView a, ConstMatrixView b,
                         double beta, MatrixView c);

/// One tile (bi, bj), bi >= bj, of the square-block syr2k schedule over the
/// full lower-triangle update C += alpha (A B^T + B A^T): the diagonal tile
/// is a lower-triangle syr2k, an off-diagonal tile two square GEMMs.
/// Untraced — schedulers record the shape on the dispatching thread. All
/// tiles write disjoint regions of C, so any execution order (or none of
/// the barrier structure) gives bitwise-identical results.
void syr2k_square_tile(double alpha, ConstMatrixView a, ConstMatrixView b,
                       double beta, MatrixView c, index_t block, index_t bi,
                       index_t bj);

}  // namespace detail

}  // namespace la
}  // namespace tdg
