// The paper's custom SYR2K schedule (Section 5.1, Figure 7).
//
// cuBLAS' syr2k sweeps long skinny column panels of the lower triangle,
// which produces tall-and-thin GEMM shapes and (on H100) a sharp throughput
// drop for very large n. The paper instead tiles the lower triangle into
// square blocks and processes them by anti-diagonal distance: iteration 0
// computes all diagonal blocks, iteration 1 all first sub-diagonal blocks,
// and so on. Every block is a *square* GEMM of size (block x block x k), all
// blocks within an iteration are independent (reorderable / streamable), and
// the shape is friendly to modern GPU tensor pipes.
//
// Here the identical schedule runs on the CPU, with the paper's streaming
// realized on the thread pool: the independent blocks of each anti-diagonal
// are dispatched concurrently (disjoint C tiles, so any worker count gives
// bitwise-identical results). Each block still lands in the trace as a
// square GEMM — recorded on the dispatching thread, since pool workers
// carry no recorder — which is what the device model prices.

#include <algorithm>

#include "common/thread_pool.h"
#include "common/trace.h"
#include "la/blas.h"

namespace tdg::la {

index_t syr2k_square_block_size(index_t n, index_t block) {
  if (block <= 0) block = std::min<index_t>(512, std::max<index_t>(n, 1));
  return block;
}

namespace detail {

void syr2k_square_tile(double alpha, ConstMatrixView a, ConstMatrixView b,
                       double beta, MatrixView c, index_t block, index_t bi,
                       index_t bj) {
  const index_t n = c.rows;
  const index_t j0 = bj * block;
  const index_t i0 = bi * block;
  const index_t jb = std::min(block, n - j0);
  const index_t ib = std::min(block, n - i0);
  if (bi == bj) {
    // Diagonal block: lower triangle only.
    syr2k_lower_notrace(alpha, a.block(i0, 0, ib, a.cols),
                        b.block(i0, 0, ib, b.cols), beta,
                        c.block(i0, j0, ib, jb));
  } else {
    // Off-diagonal block: two square GEMMs,
    //   C_blk = beta C_blk + alpha A_i B_j^T + alpha B_i A_j^T.
    MatrixView cblk = c.block(i0, j0, ib, jb);
    gemm_notrace(Trans::kNo, Trans::kTrans, alpha, a.block(i0, 0, ib, a.cols),
                 b.block(j0, 0, jb, b.cols), beta, cblk);
    gemm_notrace(Trans::kNo, Trans::kTrans, alpha, b.block(i0, 0, ib, b.cols),
                 a.block(j0, 0, jb, a.cols), 1.0, cblk);
  }
}

}  // namespace detail

void syr2k_lower_square(double alpha, ConstMatrixView a, ConstMatrixView b,
                        double beta, MatrixView c, index_t block) {
  TDG_CHECK(c.rows == c.cols, "syr2k_lower_square: C must be square");
  TDG_CHECK(a.rows == c.rows && b.rows == c.rows && a.cols == b.cols,
            "syr2k_lower_square: shape mismatch");
  const index_t n = c.rows;
  if (n == 0) return;
  block = syr2k_square_block_size(n, block);

  const index_t nblk = (n + block - 1) / block;
  const index_t k = a.cols;

  // Iterate by sub-diagonal distance d; blocks (bi = bj + d, bj).
  for (index_t d = 0; d < nblk; ++d) {
    const index_t nbd = nblk - d;  // independent blocks in this iteration
    for (index_t bj = 0; bj < nbd; ++bj) {
      // Record the block ops in schedule order before dispatching, exactly
      // as the serial traced kernels would have.
      const index_t ib = std::min(block, n - (bj + d) * block);
      const index_t jb = std::min(block, n - bj * block);
      if (d == 0) {
        trace::record({trace::OpKind::kSyr2k, ib, ib, k, 1});
      } else {
        trace::record({trace::OpKind::kGemm, ib, jb, k, 1});
        trace::record({trace::OpKind::kGemm, ib, jb, k, 1});
      }
    }
    ThreadPool::global().parallel_for(0, nbd, [&](index_t bj) {
      detail::syr2k_square_tile(alpha, a, b, beta, c, block, bj + d, bj);
    });
  }
}

}  // namespace tdg::la
