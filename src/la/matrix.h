// Dense column-major matrix container and non-owning views.
//
// Everything in the library operates on FP64 (the precision the paper
// targets). Views mirror the BLAS/LAPACK convention: a matrix is a pointer,
// a row count, a column count and a leading dimension, so sub-blocks of a
// larger matrix can be passed to any kernel without copying.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "la/workspace.h"

namespace tdg {

using index_t = std::int64_t;

/// Non-owning read-only view of a column-major matrix block.
struct ConstMatrixView {
  const double* data = nullptr;
  index_t rows = 0;
  index_t cols = 0;
  index_t ld = 0;

  const double& operator()(index_t i, index_t j) const {
    return data[i + static_cast<std::size_t>(j) * ld];
  }

  /// Column pointer (for BLAS-1 style iteration down a column).
  const double* col(index_t j) const {
    return data + static_cast<std::size_t>(j) * ld;
  }

  /// Sub-block starting at (i, j) of size m x n.
  ConstMatrixView block(index_t i, index_t j, index_t m, index_t n) const {
    TDG_CHECK(i >= 0 && j >= 0 && m >= 0 && n >= 0 && i + m <= rows &&
                  j + n <= cols,
              "block out of range");
    return {data + i + static_cast<std::size_t>(j) * ld, m, n, ld};
  }
};

/// Non-owning mutable view of a column-major matrix block.
struct MatrixView {
  double* data = nullptr;
  index_t rows = 0;
  index_t cols = 0;
  index_t ld = 0;

  double& operator()(index_t i, index_t j) const {
    return data[i + static_cast<std::size_t>(j) * ld];
  }

  double* col(index_t j) const {
    return data + static_cast<std::size_t>(j) * ld;
  }

  MatrixView block(index_t i, index_t j, index_t m, index_t n) const {
    TDG_CHECK(i >= 0 && j >= 0 && m >= 0 && n >= 0 && i + m <= rows &&
                  j + n <= cols,
              "block out of range");
    return {data + i + static_cast<std::size_t>(j) * ld, m, n, ld};
  }

  operator ConstMatrixView() const { return {data, rows, cols, ld}; }  // NOLINT
};

/// Owning column-major dense matrix.
class Matrix {
 public:
  Matrix() = default;

  /// m x n matrix, zero-initialised.
  Matrix(index_t m, index_t n)
      : m_(m), n_(n), d_(static_cast<std::size_t>(m) * n, 0.0) {
    TDG_CHECK(m >= 0 && n >= 0, "matrix dimensions must be non-negative");
  }

  static Matrix identity(index_t n) {
    Matrix I(n, n);
    for (index_t i = 0; i < n; ++i) I(i, i) = 1.0;
    return I;
  }

  index_t rows() const { return m_; }
  index_t cols() const { return n_; }
  index_t ld() const { return m_; }

  double& operator()(index_t i, index_t j) {
    return d_[i + static_cast<std::size_t>(j) * m_];
  }
  const double& operator()(index_t i, index_t j) const {
    return d_[i + static_cast<std::size_t>(j) * m_];
  }

  double* data() { return d_.data(); }
  const double* data() const { return d_.data(); }

  MatrixView view() { return {d_.data(), m_, n_, m_}; }
  ConstMatrixView view() const { return {d_.data(), m_, n_, m_}; }
  MatrixView block(index_t i, index_t j, index_t m, index_t n) {
    return view().block(i, j, m, n);
  }
  ConstMatrixView block(index_t i, index_t j, index_t m, index_t n) const {
    return view().block(i, j, m, n);
  }

  void set_zero() { std::fill(d_.begin(), d_.end(), 0.0); }

 private:
  index_t m_ = 0;
  index_t n_ = 0;
  // Tracked so la::workspace_peak_bytes() sees every dense allocation
  // (see la/workspace.h); numerically the storage is a plain vector.
  std::vector<double, la::TrackingAlloc<double>> d_;
};

/// Copy src into dst (dimensions must match).
void copy(ConstMatrixView src, MatrixView dst);

/// Fill every entry of the view with the given value.
void fill(MatrixView a, double value);

/// Mirror the strict lower triangle into the upper triangle (square views).
void symmetrize_from_lower(MatrixView a);

/// max_ij |a(i,j) - b(i,j)|.
double max_abs_diff(ConstMatrixView a, ConstMatrixView b);

/// Frobenius norm.
double frobenius_norm(ConstMatrixView a);

/// max_ij |a(i,j)|.
double max_abs(ConstMatrixView a);

/// Transpose of a into a newly allocated matrix.
Matrix transposed(ConstMatrixView a);

/// ||Q^T Q - I||_max — orthogonality defect of Q's columns.
double orthogonality_error(ConstMatrixView q);

}  // namespace tdg
