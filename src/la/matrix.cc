#include "la/matrix.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace tdg {

void copy(ConstMatrixView src, MatrixView dst) {
  TDG_CHECK(src.rows == dst.rows && src.cols == dst.cols,
            "copy: shape mismatch");
  for (index_t j = 0; j < src.cols; ++j) {
    std::memcpy(dst.col(j), src.col(j),
                static_cast<std::size_t>(src.rows) * sizeof(double));
  }
}

void fill(MatrixView a, double value) {
  for (index_t j = 0; j < a.cols; ++j) {
    std::fill(a.col(j), a.col(j) + a.rows, value);
  }
}

void symmetrize_from_lower(MatrixView a) {
  TDG_CHECK(a.rows == a.cols, "symmetrize_from_lower: view must be square");
  for (index_t j = 0; j < a.cols; ++j) {
    for (index_t i = j + 1; i < a.rows; ++i) {
      a(j, i) = a(i, j);
    }
  }
}

double max_abs_diff(ConstMatrixView a, ConstMatrixView b) {
  TDG_CHECK(a.rows == b.rows && a.cols == b.cols,
            "max_abs_diff: shape mismatch");
  double m = 0.0;
  for (index_t j = 0; j < a.cols; ++j) {
    for (index_t i = 0; i < a.rows; ++i) {
      m = std::max(m, std::abs(a(i, j) - b(i, j)));
    }
  }
  return m;
}

double frobenius_norm(ConstMatrixView a) {
  double s = 0.0;
  for (index_t j = 0; j < a.cols; ++j) {
    for (index_t i = 0; i < a.rows; ++i) {
      s += a(i, j) * a(i, j);
    }
  }
  return std::sqrt(s);
}

double max_abs(ConstMatrixView a) {
  double m = 0.0;
  for (index_t j = 0; j < a.cols; ++j) {
    for (index_t i = 0; i < a.rows; ++i) {
      m = std::max(m, std::abs(a(i, j)));
    }
  }
  return m;
}

Matrix transposed(ConstMatrixView a) {
  Matrix t(a.cols, a.rows);
  for (index_t j = 0; j < a.cols; ++j) {
    for (index_t i = 0; i < a.rows; ++i) {
      t(j, i) = a(i, j);
    }
  }
  return t;
}

double orthogonality_error(ConstMatrixView q) {
  // Computes max |(Q^T Q - I)(i,j)| column-pair by column-pair to avoid
  // allocating an n x n product for large inputs.
  double m = 0.0;
  for (index_t j = 0; j < q.cols; ++j) {
    for (index_t i = j; i < q.cols; ++i) {
      double dot = 0.0;
      const double* ci = q.col(i);
      const double* cj = q.col(j);
      for (index_t r = 0; r < q.rows; ++r) dot += ci[r] * cj[r];
      const double target = (i == j) ? 1.0 : 0.0;
      m = std::max(m, std::abs(dot - target));
    }
  }
  return m;
}

}  // namespace tdg
