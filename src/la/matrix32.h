// FP32 companion of la/matrix.h: column-major float container and views.
//
// The mixed-precision engine (EvdOptions mode kMixedPrecision) runs the
// O(n^3) stages — band reduction, bulge chasing, back transformation — on
// these types and converts at the boundaries; everything else in the
// library stays FP64. The float stack deliberately mirrors the FP64 one
// struct-for-struct so the kernels are line-by-line ports, not a second
// algorithm.
#pragma once

#include <vector>

#include "common/check.h"
#include "la/matrix.h"
#include "la/workspace.h"

namespace tdg {

/// Non-owning read-only view of a column-major float matrix block.
struct ConstMatrixViewF {
  const float* data = nullptr;
  index_t rows = 0;
  index_t cols = 0;
  index_t ld = 0;

  const float& operator()(index_t i, index_t j) const {
    return data[i + static_cast<std::size_t>(j) * ld];
  }
  const float* col(index_t j) const {
    return data + static_cast<std::size_t>(j) * ld;
  }
  ConstMatrixViewF block(index_t i, index_t j, index_t m, index_t n) const {
    TDG_CHECK(i >= 0 && j >= 0 && m >= 0 && n >= 0 && i + m <= rows &&
                  j + n <= cols,
              "block out of range");
    return {data + i + static_cast<std::size_t>(j) * ld, m, n, ld};
  }
};

/// Non-owning mutable view of a column-major float matrix block.
struct MatrixViewF {
  float* data = nullptr;
  index_t rows = 0;
  index_t cols = 0;
  index_t ld = 0;

  float& operator()(index_t i, index_t j) const {
    return data[i + static_cast<std::size_t>(j) * ld];
  }
  float* col(index_t j) const {
    return data + static_cast<std::size_t>(j) * ld;
  }
  MatrixViewF block(index_t i, index_t j, index_t m, index_t n) const {
    TDG_CHECK(i >= 0 && j >= 0 && m >= 0 && n >= 0 && i + m <= rows &&
                  j + n <= cols,
              "block out of range");
    return {data + i + static_cast<std::size_t>(j) * ld, m, n, ld};
  }

  operator ConstMatrixViewF() const { return {data, rows, cols, ld}; }  // NOLINT
};

/// Owning column-major dense float matrix (workspace-tracked like Matrix).
class MatrixF {
 public:
  MatrixF() = default;

  MatrixF(index_t m, index_t n)
      : m_(m), n_(n), d_(static_cast<std::size_t>(m) * n, 0.0f) {
    TDG_CHECK(m >= 0 && n >= 0, "matrix dimensions must be non-negative");
  }

  index_t rows() const { return m_; }
  index_t cols() const { return n_; }
  index_t ld() const { return m_; }

  float& operator()(index_t i, index_t j) {
    return d_[i + static_cast<std::size_t>(j) * m_];
  }
  const float& operator()(index_t i, index_t j) const {
    return d_[i + static_cast<std::size_t>(j) * m_];
  }

  float* data() { return d_.data(); }
  const float* data() const { return d_.data(); }

  MatrixViewF view() { return {d_.data(), m_, n_, m_}; }
  ConstMatrixViewF view() const { return {d_.data(), m_, n_, m_}; }
  MatrixViewF block(index_t i, index_t j, index_t m, index_t n) {
    return view().block(i, j, m, n);
  }
  ConstMatrixViewF block(index_t i, index_t j, index_t m, index_t n) const {
    return view().block(i, j, m, n);
  }

 private:
  index_t m_ = 0;
  index_t n_ = 0;
  std::vector<float, la::TrackingAlloc<float>> d_;
};

/// Copy src into dst (dimensions must match).
void copy(ConstMatrixViewF src, MatrixViewF dst);

/// Round-to-nearest demotion of a full FP64 matrix.
MatrixF to_fp32(ConstMatrixView a);

/// Exact promotion back to FP64.
Matrix to_fp64(ConstMatrixViewF a);

/// Demote only into an existing float view (dimensions must match).
void demote(ConstMatrixView src, MatrixViewF dst);

/// Promote only into an existing double view (dimensions must match).
void promote(ConstMatrixViewF src, MatrixView dst);

}  // namespace tdg
