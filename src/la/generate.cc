#include "la/generate.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace tdg {

Matrix random_matrix(index_t m, index_t n, Rng& rng) {
  Matrix a(m, n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) a(i, j) = rng.normal();
  }
  return a;
}

Matrix random_symmetric(index_t n, Rng& rng) {
  Matrix a(n, n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = j; i < n; ++i) {
      const double v = rng.normal();
      a(i, j) = v;
      a(j, i) = v;
    }
  }
  return a;
}

Matrix symmetric_with_spectrum(const std::vector<double>& evals, Rng& rng) {
  const index_t n = static_cast<index_t>(evals.size());
  Matrix a(n, n);
  for (index_t i = 0; i < n; ++i) a(i, i) = evals[static_cast<std::size_t>(i)];

  // Apply n random Householder similarity transforms: A <- H A H with
  // H = I - 2 v v^T / (v^T v). The result has exactly the given spectrum.
  std::vector<double> v(static_cast<std::size_t>(n));
  std::vector<double> w(static_cast<std::size_t>(n));
  for (int rep = 0; rep < 2; ++rep) {
    double vv = 0.0;
    for (auto& x : v) {
      x = rng.normal();
      vv += x * x;
    }
    if (vv == 0.0) continue;
    const double beta = 2.0 / vv;
    // w = A v
    for (index_t i = 0; i < n; ++i) {
      double s = 0.0;
      for (index_t j = 0; j < n; ++j) s += a(i, j) * v[static_cast<std::size_t>(j)];
      w[static_cast<std::size_t>(i)] = s;
    }
    // gamma = beta^2/2 * v^T w ; A <- A - beta (v w^T + w v^T) + 2 gamma v v^T
    double vw = 0.0;
    for (index_t i = 0; i < n; ++i)
      vw += v[static_cast<std::size_t>(i)] * w[static_cast<std::size_t>(i)];
    const double gamma = beta * beta * vw / 2.0;
    for (index_t j = 0; j < n; ++j) {
      const double vj = v[static_cast<std::size_t>(j)];
      const double wj = w[static_cast<std::size_t>(j)];
      for (index_t i = 0; i < n; ++i) {
        const double vi = v[static_cast<std::size_t>(i)];
        const double wi = w[static_cast<std::size_t>(i)];
        a(i, j) += -beta * (vi * wj + wi * vj) + 2.0 * gamma * vi * vj;
      }
    }
  }
  // Force exact symmetry against roundoff drift.
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = j + 1; i < n; ++i) {
      const double s = 0.5 * (a(i, j) + a(j, i));
      a(i, j) = s;
      a(j, i) = s;
    }
  }
  return a;
}

Matrix random_symmetric_band(index_t n, index_t b, Rng& rng) {
  Matrix a(n, n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = j; i <= std::min(n - 1, j + b); ++i) {
      const double v = rng.normal();
      a(i, j) = v;
      a(j, i) = v;
    }
  }
  return a;
}

Matrix laplacian_1d(index_t n) {
  Matrix a(n, n);
  for (index_t i = 0; i < n; ++i) {
    a(i, i) = 2.0;
    if (i + 1 < n) {
      a(i + 1, i) = -1.0;
      a(i, i + 1) = -1.0;
    }
  }
  return a;
}

std::vector<double> laplacian_1d_eigenvalues(index_t n) {
  std::vector<double> ev(static_cast<std::size_t>(n));
  for (index_t j = 1; j <= n; ++j) {
    ev[static_cast<std::size_t>(j - 1)] =
        2.0 - 2.0 * std::cos(static_cast<double>(j) * std::numbers::pi /
                             static_cast<double>(n + 1));
  }
  std::sort(ev.begin(), ev.end());
  return ev;
}

}  // namespace tdg
