#include "common/trace.h"
#include "la/blas.h"

namespace tdg::la {

void gemv(Trans ta, double alpha, ConstMatrixView a, const double* x,
          double beta, double* y) {
  trace::record({trace::OpKind::kGemv, a.rows, a.cols, 0, 1});
  if (ta == Trans::kNo) {
    // y(m) = alpha * A x + beta * y — column-sweep (axpy-rich).
    if (beta != 1.0) {
      for (index_t i = 0; i < a.rows; ++i) y[i] *= beta;
    }
    for (index_t j = 0; j < a.cols; ++j) {
      const double axj = alpha * x[j];
      if (axj == 0.0) continue;
      const double* cj = a.col(j);
      for (index_t i = 0; i < a.rows; ++i) y[i] += axj * cj[i];
    }
  } else {
    // y(n) = alpha * A^T x + beta * y — dot-rich.
    for (index_t j = 0; j < a.cols; ++j) {
      const double* cj = a.col(j);
      double s = 0.0;
      for (index_t i = 0; i < a.rows; ++i) s += cj[i] * x[i];
      y[j] = alpha * s + beta * y[j];
    }
  }
}

void ger(double alpha, const double* x, const double* y, MatrixView a) {
  trace::record({trace::OpKind::kGer, a.rows, a.cols, 0, 1});
  for (index_t j = 0; j < a.cols; ++j) {
    const double ayj = alpha * y[j];
    if (ayj == 0.0) continue;
    double* cj = a.col(j);
    for (index_t i = 0; i < a.rows; ++i) cj[i] += ayj * x[i];
  }
}

void symv_lower(double alpha, ConstMatrixView a, const double* x, double beta,
                double* y) {
  TDG_CHECK(a.rows == a.cols, "symv_lower: matrix must be square");
  trace::record({trace::OpKind::kSymv, a.rows, a.rows, 0, 1});
  const index_t n = a.rows;
  if (beta != 1.0) {
    for (index_t i = 0; i < n; ++i) y[i] *= beta;
  }
  // Process one stored column at a time: the lower-triangle column j
  // contributes to y[j..n) (as a column) and to y[j] (as the mirrored row).
  for (index_t j = 0; j < n; ++j) {
    const double* cj = a.col(j);
    const double axj = alpha * x[j];
    double s = 0.0;
    y[j] += axj * cj[j];
    for (index_t i = j + 1; i < n; ++i) {
      y[i] += axj * cj[i];
      s += cj[i] * x[i];
    }
    y[j] += alpha * s;
  }
}

void syr2_lower(double alpha, const double* x, const double* y, MatrixView a) {
  TDG_CHECK(a.rows == a.cols, "syr2_lower: matrix must be square");
  trace::record({trace::OpKind::kSyr2, a.rows, a.rows, 0, 1});
  const index_t n = a.rows;
  for (index_t j = 0; j < n; ++j) {
    const double axj = alpha * x[j];
    const double ayj = alpha * y[j];
    double* cj = a.col(j);
    for (index_t i = j; i < n; ++i) {
      cj[i] += axj * y[i] + ayj * x[i];
    }
  }
}

}  // namespace tdg::la
