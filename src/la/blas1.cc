#include <cmath>

#include "la/blas.h"

namespace tdg::la {

double dot(index_t n, const double* x, const double* y) {
  double s = 0.0;
  for (index_t i = 0; i < n; ++i) s += x[i] * y[i];
  return s;
}

void axpy(index_t n, double alpha, const double* x, double* y) {
  for (index_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void scal(index_t n, double alpha, double* x) {
  for (index_t i = 0; i < n; ++i) x[i] *= alpha;
}

double nrm2(index_t n, const double* x) {
  // Two-pass scaled norm: overflow/underflow safe like reference dnrm2.
  double amax = 0.0;
  for (index_t i = 0; i < n; ++i) amax = std::max(amax, std::abs(x[i]));
  if (amax == 0.0 || !std::isfinite(amax)) return amax;
  double s = 0.0;
  const double inv = 1.0 / amax;
  for (index_t i = 0; i < n; ++i) {
    const double t = x[i] * inv;
    s += t * t;
  }
  return amax * std::sqrt(s);
}

}  // namespace tdg::la
