// FP32 stage-2 bulge chasing for the mixed-precision EVD engine: a float
// port of the sequential dense-layout chase (bulge_chase.h, chase_dense)
// with its own reflector log and Q2 application. The float chase always
// runs on the dense-embedded band — the O(n^2 b) stage is not the
// mixed-precision bottleneck, so the packed-layout and pipelined variants
// stay FP64-only.
#pragma once

#include <vector>

#include "la/matrix32.h"

namespace tdg::bc {

/// One float chase reflector (v(0) = 1 implicit, tail in the sweep pool).
struct Reflector32 {
  index_t row0 = 0;
  index_t len = 0;
  float tau = 0.0f;
  index_t voff = 0;
};

struct SweepReflectors32 {
  std::vector<Reflector32> steps;
  std::vector<float> vpool;
};

/// All reflectors of a float chase: T = Q2^T B Q2.
struct ChaseLog32 {
  index_t n = 0;
  index_t b = 0;
  std::vector<SweepReflectors32> sweeps;
};

/// Sequential float bulge chase of a dense-embedded band matrix; on return
/// the lower triangle of `a` is tridiagonal. `log` (optional) receives the
/// reflectors for the Q2 back transformation.
void chase_dense_f(MatrixViewF a, index_t b, ChaseLog32* log);

/// C <- Q2 * C with the logged float reflectors.
void apply_q2_left_f(const ChaseLog32& log, MatrixViewF c);

}  // namespace tdg::bc
