#include "bc/givens_sbtrd.h"

#include <algorithm>
#include <cmath>

namespace tdg::bc {

namespace {

// Apply the similarity rotation G^T A G mixing adjacent indices (p, p+1),
// where (c, s) was chosen to zero the pair's second component in column t.
// Creates (and stores) the chase bulge at (p+b+1, p) when that row exists.
void rotate_adjacent(SymBandMatrix& a, index_t b, index_t p, double c,
                     double s) {
  const index_t n = a.n();

  // Rows (p, p+1) across earlier columns (band + bulge slot).
  const index_t tlo = std::max<index_t>(0, p - b);
  for (index_t tcol = tlo; tcol < p; ++tcol) {
    const double x = a.at(p, tcol);
    const double y = a.at(p + 1, tcol);
    a.at(p, tcol) = c * x + s * y;
    a.at(p + 1, tcol) = -s * x + c * y;
  }

  // Diagonal 2x2 block.
  const double app = a.at(p, p);
  const double aqq = a.at(p + 1, p + 1);
  const double apq = a.at(p + 1, p);
  a.at(p, p) = c * c * app + 2.0 * c * s * apq + s * s * aqq;
  a.at(p + 1, p + 1) = s * s * app - 2.0 * c * s * apq + c * c * aqq;
  a.at(p + 1, p) = c * s * (aqq - app) + (c * c - s * s) * apq;

  // Columns (p, p+1) across later rows within the band.
  const index_t rhi = std::min(p + b, n - 1);
  for (index_t row = p + 2; row <= rhi; ++row) {
    const double x = a.at(row, p);
    const double y = a.at(row, p + 1);
    a.at(row, p) = c * x + s * y;
    a.at(row, p + 1) = -s * x + c * y;
  }

  // Fill-in: row p+b+1 had an entry only in column p+1 (band edge); the
  // rotation smears it into column p at distance b+1 — the chase bulge.
  const index_t rb = p + b + 1;
  if (rb <= n - 1) {
    const double y = a.at(rb, p + 1);
    a.at(rb, p) = s * y;
    a.at(rb, p + 1) = c * y;
  }
}

}  // namespace

void givens_sbtrd(SymBandMatrix& band, index_t b) {
  const index_t n = band.n();
  TDG_CHECK(b >= 1, "givens_sbtrd: bandwidth must be positive");
  TDG_CHECK(band.kd() >= std::min(b + 1, n - 1),
            "givens_sbtrd: storage bandwidth must be >= b + 1");
  if (b <= 1 || n <= 2) return;

  for (index_t j = 0; j + 2 < n; ++j) {
    for (index_t d = std::min(b, n - 1 - j); d >= 2; --d) {
      // Annihilate A(j+d, j), then chase the resulting bulge down.
      index_t p = j + d - 1;
      index_t t = j;
      while (p + 1 <= n - 1) {
        const double x = band.at(p, t);
        const double y = band.at(p + 1, t);
        if (y == 0.0) break;  // nothing to annihilate; chase over
        const double r = std::hypot(x, y);
        const double c = x / r;
        const double s = y / r;
        rotate_adjacent(band, b, p, c, s);
        band.at(p, t) = r;
        band.at(p + 1, t) = 0.0;
        if (p + b + 1 > n - 1) break;  // no bulge was created
        t = p;
        p += b;
      }
    }
  }
}

}  // namespace tdg::bc
