// Givens-rotation band tridiagonalization (Schwarz's algorithm, the LAPACK
// dsbtrd lineage) — the classical alternative to Householder bulge chasing.
//
// Each off-band element is annihilated by a rotation of two *adjacent*
// rows/columns; the single fill-in element it creates at distance b+1 below
// the diagonal is chased off the matrix at stride b. Storage therefore only
// needs bandwidth b+1 (the Householder chase needs 2b), but the work is all
// rank-1-sized rotations with no blocking — which is exactly why the
// two-stage literature (and the paper) replaced it with length-b Householder
// sweeps. Kept here as a baseline and as an independent cross-check of the
// Householder chase (tests compare spectra).
#pragma once

#include <vector>

#include "band/sym_band.h"

namespace tdg::bc {

/// Reduce the packed band matrix (logical bandwidth b) to tridiagonal form
/// with Givens rotations. Requires band.kd() >= min(b + 1, n - 1).
void givens_sbtrd(SymBandMatrix& band, index_t b);

}  // namespace tdg::bc
