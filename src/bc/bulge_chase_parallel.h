// Pipelined multi-sweep bulge chasing — the paper's Algorithm 2.
//
// Sweep i+1 may run concurrently with sweep i as long as it stays >= 2b rows
// behind (the paper's law (1): ~3 bulges of lag). Each worker publishes its
// sweep's current block-step row in a progress flag (the `gCom` array of
// Algorithm 2) and the successor spins until the dependency clears. On a GPU
// the flag is a volatile array polled by thread blocks; here it is an
// std::atomic<index_t> with release/acquire ordering and a yielding spin so
// the protocol is livelock-free even on a single hardware thread.
//
// Because the dependency protocol enforces exactly the sequential order on
// every pair of conflicting block steps, the pipelined chase produces
// bitwise-identical output to the sequential chase (asserted in tests).
#pragma once

#include "bc/bulge_chase.h"

namespace tdg::bc {

struct ParallelChaseOptions {
  /// Worker threads. Values above the sweep count are clamped; <= 0 means
  /// the ambient thread budget (common/thread_pool.h current_threads()).
  /// Workers run on the persistent global pool, not per-call threads.
  int threads = 4;
  /// Maximum sweeps in flight (the S of the paper's Section 3.3 pipeline
  /// model). 0 = bounded only by the thread count.
  index_t max_parallel_sweeps = 0;
};

/// Pipelined chase on the packed (Fig.-10) layout. Same contract as
/// chase_packed.
void chase_packed_parallel(SymBandMatrix& band, index_t b,
                           const ParallelChaseOptions& opts, ChaseLog* log);

/// Pipelined chase on the dense-embedded (naive) layout. Same contract as
/// chase_dense.
void chase_dense_parallel(MatrixView a, index_t b,
                          const ParallelChaseOptions& opts, ChaseLog* log);

}  // namespace tdg::bc
