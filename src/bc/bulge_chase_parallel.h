// Pipelined multi-sweep bulge chasing — the paper's Algorithm 2.
//
// Sweep i+1 may run concurrently with sweep i as long as it stays >= 2b rows
// behind (the paper's law (1): ~3 bulges of lag). Each worker publishes its
// sweep's current block-step row in a progress flag (the `gCom` array of
// Algorithm 2) and the successor spins until the dependency clears. On a GPU
// the flag is a volatile array polled by thread blocks; here it is an
// std::atomic<index_t> with release/acquire ordering and a yielding spin so
// the protocol is livelock-free even on a single hardware thread.
//
// Because the dependency protocol enforces exactly the sequential order on
// every pair of conflicting block steps, the pipelined chase produces
// bitwise-identical output to the sequential chase (asserted in tests).
//
// Failure semantics (docs/ALGORITHMS.md §11): the progress gates are
// poisonable. If any sweep task throws, a shared abort flag — checked
// inside both spin loops — releases every spinning peer, the pipeline
// unwinds, and the first exception is rethrown to the caller; a failure can
// therefore never leave peers spinning forever. Independently, each spin
// loop carries a deadline (spin_timeout_ms / TDG_SPIN_TIMEOUT_MS) that
// converts a gate stuck with no owner progress into a typed
// Error(kPipelineStall) carrying the sweep and row coordinates.
#pragma once

#include "bc/bulge_chase.h"
#include "common/cancel.h"

namespace tdg::bc {

/// Default spin deadline (ms) when neither the option nor
/// TDG_SPIN_TIMEOUT_MS overrides it. Generous: a healthy pipeline advances
/// a gate every few microseconds, so a minute of zero progress is a wedge.
/// Shared with the task-graph drain watchdog (common/cancel.h).
inline constexpr int kDefaultSpinTimeoutMs = cancel::kDefaultStallTimeoutMs;

struct ParallelChaseOptions {
  /// Worker threads. Values above the sweep count are clamped; <= 0 means
  /// the ambient thread budget (common/thread_pool.h current_threads()).
  /// Workers run on the persistent global pool, not per-call threads.
  int threads = 4;
  /// Maximum sweeps in flight (the S of the paper's Section 3.3 pipeline
  /// model). 0 = bounded only by the thread count.
  index_t max_parallel_sweeps = 0;
  /// Spin deadline in milliseconds for each progress gate: a gate that sees
  /// no predecessor progress for this long throws Error(kPipelineStall).
  /// -1 = use TDG_SPIN_TIMEOUT_MS (default kDefaultSpinTimeoutMs); 0 =
  /// never time out.
  int spin_timeout_ms = -1;
};

/// Pipelined chase on the packed (Fig.-10) layout. Same contract as
/// chase_packed.
void chase_packed_parallel(SymBandMatrix& band, index_t b,
                           const ParallelChaseOptions& opts, ChaseLog* log);

/// Pipelined chase on the dense-embedded (naive) layout. Same contract as
/// chase_dense.
void chase_dense_parallel(MatrixView a, index_t b,
                          const ParallelChaseOptions& opts, ChaseLog* log);

}  // namespace tdg::bc
