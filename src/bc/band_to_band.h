// Band-to-band reduction — the multi-step successive band reduction (SBR
// toolkit / Bischof–Lang–Sun) scheme the two-stage literature builds on.
//
// Instead of chasing the band straight down to tridiagonal, the bandwidth
// can be reduced in stages (e.g. 64 -> 8 -> 1). Each stage is the
// generalised chase sweep (bc/bulge_chase.h with target_d > 1): shorter
// reflectors, bulges chased at the same stride b, and the familiar
// correctness story. Multi-step trades more total flops for better locality
// per stage; the ablation bench compares it against the direct chase.
#pragma once

#include <vector>

#include "bc/bulge_chase.h"

namespace tdg::bc {

/// Reduce the packed band matrix from logical bandwidth b to bandwidth d
/// (1 <= d <= b). Requires band.kd() >= min(2b - d, n - 1). When `log` is
/// non-null it receives the sweep reflectors (apply with apply_q2_left).
void reduce_band(SymBandMatrix& band, index_t b, index_t d, ChaseLog* log);

/// Multi-step reduction to tridiagonal through the given intermediate
/// bandwidths (strictly decreasing, all < b; an implicit final step reduces
/// to 1). Returns one ChaseLog per step, in execution order; the overall
/// Q2 applies as: for log in reverse order, apply_q2_left(log, C).
std::vector<ChaseLog> multi_step_tridiag(SymBandMatrix& band, index_t b,
                                         const std::vector<index_t>& steps);

}  // namespace tdg::bc
