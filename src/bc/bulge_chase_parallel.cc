#include "bc/bulge_chase_parallel.h"

#include <atomic>
#include <thread>
#include <vector>

#include "common/thread_pool.h"

namespace tdg::bc {

namespace {

constexpr index_t kNotStarted = -1;

template <class Acc>
void chase_all_parallel(const Acc& acc, index_t b,
                        const ParallelChaseOptions& opts, ChaseLog* log) {
  const index_t n = acc.n();
  const index_t nsweeps = std::max<index_t>(n - 2, 0);
  if (log != nullptr) {
    log->n = n;
    log->b = b;
    log->sweeps.assign(static_cast<std::size_t>(nsweeps), SweepReflectors{});
  }
  if (nsweeps == 0 || b <= 1) return;

  const index_t done = n + 3 * b;  // completion sentinel (matches publish)
  std::vector<std::atomic<index_t>> gcom(static_cast<std::size_t>(nsweeps));
  for (auto& g : gcom) g.store(kNotStarted, std::memory_order_relaxed);

  std::atomic<index_t> next_sweep{0};
  const int want = opts.threads > 0 ? opts.threads : current_threads();
  const int nthreads =
      static_cast<int>(std::min<index_t>(std::max(want, 1), nsweeps));
  const index_t cap = opts.max_parallel_sweeps;

  auto worker = [&] {
    for (;;) {
      const index_t i = next_sweep.fetch_add(1, std::memory_order_relaxed);
      if (i >= nsweeps) return;

      if (cap > 0 && i >= cap) {
        // Law (3): at most `cap` sweeps in the pipeline — wait for sweep
        // i - cap to drain before entering.
        const auto& gate = gcom[static_cast<std::size_t>(i - cap)];
        while (gate.load(std::memory_order_acquire) < done) {
          std::this_thread::yield();
        }
      }

      auto wait = [&](index_t s) {
        if (i == 0) return;
        const auto& pred = gcom[static_cast<std::size_t>(i - 1)];
        // Paper Algorithm 2, line 5: spin while gCom[i] + 2b > gCom[i-1].
        while (pred.load(std::memory_order_acquire) < s + 2 * b) {
          std::this_thread::yield();
        }
      };
      auto publish = [&](index_t s) {
        gcom[static_cast<std::size_t>(i)].store(s, std::memory_order_release);
      };

      SweepReflectors* sl =
          (log != nullptr) ? &log->sweeps[static_cast<std::size_t>(i)]
                           : nullptr;
      chase_sweep(acc, b, i, sl, wait, publish);
      // chase_sweep's final publish(n + 3b) marks the sweep complete.
    }
  };

  if (nthreads == 1) {
    worker();
    return;
  }
  // Run the sweep workers as persistent-pool peers instead of spawning a
  // fresh std::thread set per call (the spawn/join overhead dominates
  // small-n chases). Sweeps are claimed in ascending order, so the lowest
  // unfinished sweep always belongs to a running peer and the pipeline
  // makes progress even if some peers start late (queued behind busy
  // workers).
  ThreadPool::global().run_concurrent(nthreads, [&](int) { worker(); });
}

}  // namespace

void chase_packed_parallel(SymBandMatrix& band, index_t b,
                           const ParallelChaseOptions& opts, ChaseLog* log) {
  TDG_CHECK(b >= 1, "chase_packed_parallel: bandwidth must be positive");
  TDG_CHECK(band.kd() >= std::min(2 * b, band.n() - 1),
            "chase_packed_parallel: storage bandwidth must be >= 2b");
  PackedLowerAccessor acc{&band};
  chase_all_parallel(acc, b, opts, log);
}

void chase_dense_parallel(MatrixView a, index_t b,
                          const ParallelChaseOptions& opts, ChaseLog* log) {
  TDG_CHECK(a.rows == a.cols, "chase_dense_parallel: matrix must be square");
  TDG_CHECK(b >= 1, "chase_dense_parallel: bandwidth must be positive");
  DenseLowerAccessor acc{a};
  chase_all_parallel(acc, b, opts, log);
}

}  // namespace tdg::bc
