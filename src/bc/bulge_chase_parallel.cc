#include "bc/bulge_chase_parallel.h"

#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "common/fault.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/obs.h"

namespace tdg::bc {

namespace {

constexpr index_t kNotStarted = -1;

/// Bulge-chase pipeline metrics, resolved once. All gated on the armed
/// flag inside inc()/record(), so the spin slow paths call unconditionally.
struct BcMetrics {
  obs::Counter* sweeps;
  obs::Counter* gate_spin_episodes;
  obs::Counter* stall_near_miss;
  obs::Histogram* gate_wait_us;
  obs::Gauge* sweep_concurrency_hwm;

  static BcMetrics& get() {
    static BcMetrics m = [] {
      obs::Registry& r = obs::Registry::global();
      return BcMetrics{r.counter("bc.sweeps"),
                       r.counter("bc.gate_spin_episodes"),
                       r.counter("bc.stall_near_miss"),
                       r.histogram("bc.gate_wait_us"),
                       r.gauge("bc.sweep_concurrency_hwm")};
    }();
    return m;
  }
};

[[noreturn]] void throw_stall(index_t sweep, index_t row, int timeout_ms) {
  throw Error(ErrorCode::kPipelineStall,
              "bulge chase pipeline stalled: sweep " + std::to_string(sweep) +
                  " made no progress waiting at row " + std::to_string(row) +
                  " for " + std::to_string(timeout_ms) +
                  " ms (TDG_SPIN_TIMEOUT_MS)",
              {"bulge_chase", sweep, row});
}

[[noreturn]] void throw_poisoned(index_t sweep, index_t row) {
  // Secondary unwind error: a peer already recorded the root cause, so this
  // is only seen if thrown outside a poisoned region (it never is).
  throw Error(ErrorCode::kPipelineStall,
              "bulge chase pipeline poisoned: sweep " + std::to_string(sweep) +
                  " unwinding at row " + std::to_string(row) +
                  " after a peer failure",
              {"bulge_chase", sweep, row});
}

/// Bounds one spin loop. The clock is consulted only every 512 yields, so
/// the spinning cost is still dominated by the yield itself; the fast
/// (gate-already-open) path never constructs one.
class SpinDeadline {
 public:
  explicit SpinDeadline(int timeout_ms) : timeout_ms_(timeout_ms) {}

  void poll(index_t sweep, index_t row) {
    if (timeout_ms_ <= 0) return;
    if (++spins_ % 512 != 0) return;
    const auto now = std::chrono::steady_clock::now();
    if (!started_) {
      started_ = true;
      start_ = now;
      return;
    }
    if (now - start_ >= std::chrono::milliseconds(timeout_ms_)) {
      throw_stall(sweep, row, timeout_ms_);
    }
  }

 private:
  int timeout_ms_;
  long spins_ = 0;
  bool started_ = false;
  std::chrono::steady_clock::time_point start_{};
};

template <class Acc>
void chase_all_parallel(const Acc& acc, index_t b,
                        const ParallelChaseOptions& opts, ChaseLog* log) {
  const index_t n = acc.n();
  const index_t nsweeps = std::max<index_t>(n - 2, 0);
  if (log != nullptr) {
    log->n = n;
    log->b = b;
    log->sweeps.assign(static_cast<std::size_t>(nsweeps), SweepReflectors{});
  }
  if (nsweeps == 0 || b <= 1) return;

  obs::Span chase_span("bulge_chase");
  chase_span.attr("n", n);
  chase_span.attr("b", b);
  chase_span.attr("nsweeps", nsweeps);

  const index_t done = n + 3 * b;  // completion sentinel (matches publish)
  std::vector<std::atomic<index_t>> gcom(static_cast<std::size_t>(nsweeps));
  for (auto& g : gcom) g.store(kNotStarted, std::memory_order_relaxed);

  std::atomic<index_t> next_sweep{0};
  const int want = opts.threads > 0 ? opts.threads : current_threads();
  const int nthreads =
      static_cast<int>(std::min<index_t>(std::max(want, 1), nsweeps));
  const index_t cap = opts.max_parallel_sweeps;
  // Shared stall deadline (TDG_SPIN_TIMEOUT_MS): the same contract the
  // task-graph drain watchdog uses, via common/cancel.h.
  const int timeout_ms = opts.spin_timeout_ms >= 0
                             ? opts.spin_timeout_ms
                             : cancel::stall_timeout_ms();

  // Cooperative cancellation: pool workers do not inherit the caller's
  // thread-local cancel scope, so capture the token here and poll it
  // explicitly at each sweep claim. A cancelled/expired token throws
  // kCancelled, which poisons the pipeline and unwinds the peers exactly
  // like any other sweep failure.
  const cancel::Token* ctok = cancel::current();

  // Poisonable gates: on any task failure the abort flag releases every
  // spinning peer (both spin loops check it), so the pipeline unwinds
  // instead of deadlocking on a gate its owner will never advance. Only the
  // first failure is kept — it is the root cause; the peers' unwind errors
  // are secondary.
  std::atomic<bool> aborted{false};
  std::exception_ptr first_error;
  std::mutex err_mu;
  auto poison = [&](std::exception_ptr e) {
    {
      std::lock_guard<std::mutex> lock(err_mu);
      if (!first_error) first_error = e;
    }
    aborted.store(true, std::memory_order_release);
  };

  // Observability: gate waits are timed only when tracing or metrics are
  // armed (one clock read per spin EPISODE, never on the gate-already-open
  // fast path); the in-flight count feeds the sweep-concurrency high-water
  // mark. Spin-wait accounting distinguishes "pipeline is healthy" from
  // "peers are starving at the 2b-lag gates".
  const bool timed = obs::tracing_armed() || obs::metrics_armed();
  std::atomic<int> in_flight{0};
  auto account_wait = [&](double t0, double* sweep_wait_us) {
    const double w = obs::now_us() - t0;
    *sweep_wait_us += w;
    BcMetrics& m = BcMetrics::get();
    m.gate_spin_episodes->inc();
    m.gate_wait_us->record(static_cast<long long>(w));
    // Near-miss: one episode burned more than half the stall deadline —
    // the pipeline survived but was close to a kPipelineStall diagnosis.
    if (timeout_ms > 0 && w > 500.0 * timeout_ms) m.stall_near_miss->inc();
  };

  auto worker = [&] {
    for (;;) {
      const index_t i = next_sweep.fetch_add(1, std::memory_order_relaxed);
      if (i >= nsweeps) return;
      try {
        if (aborted.load(std::memory_order_acquire)) return;
        cancel::poll(ctok, "bc_sweep");
        fault::maybe_inject("bc_sweep");
        if (fault::should_fire("bc_stall")) {
          // Simulated wedge: hold this sweep's gate until a peer's spin
          // deadline poisons the pipeline (failsafe-capped so a disabled
          // deadline cannot hang a test run).
          const auto t0 = std::chrono::steady_clock::now();
          while (!aborted.load(std::memory_order_acquire) &&
                 std::chrono::steady_clock::now() - t0 <
                     std::chrono::seconds(10)) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
          throw_poisoned(i, kNotStarted);
        }

        obs::Span sweep_span("bc.sweep");
        sweep_span.attr("sweep", i);
        double sweep_wait_us = 0.0;

        if (cap > 0 && i >= cap) {
          // Law (3): at most `cap` sweeps in the pipeline — wait for sweep
          // i - cap to drain before entering.
          const auto& gate = gcom[static_cast<std::size_t>(i - cap)];
          if (gate.load(std::memory_order_acquire) < done) {
            const double t0 = timed ? obs::now_us() : 0.0;
            SpinDeadline deadline(timeout_ms);
            while (gate.load(std::memory_order_acquire) < done) {
              if (aborted.load(std::memory_order_relaxed)) {
                throw_poisoned(i, kNotStarted);
              }
              deadline.poll(i, kNotStarted);
              std::this_thread::yield();
            }
            if (timed) account_wait(t0, &sweep_wait_us);
          }
        }

        auto wait = [&](index_t s) {
          if (i == 0) return;
          const auto& pred = gcom[static_cast<std::size_t>(i - 1)];
          // Paper Algorithm 2, line 5: spin while gCom[i] + 2b > gCom[i-1].
          if (pred.load(std::memory_order_acquire) >= s + 2 * b) return;
          const double t0 = timed ? obs::now_us() : 0.0;
          SpinDeadline deadline(timeout_ms);
          while (pred.load(std::memory_order_acquire) < s + 2 * b) {
            if (aborted.load(std::memory_order_relaxed)) {
              throw_poisoned(i, s);
            }
            deadline.poll(i, s);
            std::this_thread::yield();
          }
          if (timed) account_wait(t0, &sweep_wait_us);
        };
        auto publish = [&](index_t s) {
          gcom[static_cast<std::size_t>(i)].store(s,
                                                  std::memory_order_release);
        };

        SweepReflectors* sl =
            (log != nullptr) ? &log->sweeps[static_cast<std::size_t>(i)]
                             : nullptr;
        {
          struct InFlight {
            std::atomic<int>& c;
            ~InFlight() { c.fetch_sub(1, std::memory_order_relaxed); }
          } guard{in_flight};
          BcMetrics::get().sweep_concurrency_hwm->update_max(
              in_flight.fetch_add(1, std::memory_order_relaxed) + 1);
          chase_sweep(acc, b, i, sl, wait, publish);
        }
        // chase_sweep's final publish(n + 3b) marks the sweep complete.
        BcMetrics::get().sweeps->inc();
        sweep_span.attr("gate_wait_us",
                        static_cast<long long>(sweep_wait_us));
      } catch (...) {
        poison(std::current_exception());
        return;
      }
    }
  };

  if (nthreads == 1) {
    worker();
  } else {
    // Run the sweep workers as persistent-pool peers instead of spawning a
    // fresh std::thread set per call (the spawn/join overhead dominates
    // small-n chases). Sweeps are claimed in ascending order, so the lowest
    // unfinished sweep always belongs to a running peer and the pipeline
    // makes progress even if some peers start late (queued behind busy
    // workers).
    ThreadPool::global().run_concurrent(nthreads, [&](int) { worker(); });
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace

void chase_packed_parallel(SymBandMatrix& band, index_t b,
                           const ParallelChaseOptions& opts, ChaseLog* log) {
  TDG_CHECK(b >= 1, "chase_packed_parallel: bandwidth must be positive");
  TDG_CHECK(band.kd() >= std::min(2 * b, band.n() - 1),
            "chase_packed_parallel: storage bandwidth must be >= 2b");
  PackedLowerAccessor acc{&band};
  chase_all_parallel(acc, b, opts, log);
}

void chase_dense_parallel(MatrixView a, index_t b,
                          const ParallelChaseOptions& opts, ChaseLog* log) {
  TDG_CHECK(a.rows == a.cols, "chase_dense_parallel: matrix must be square");
  TDG_CHECK(b >= 1, "chase_dense_parallel: bandwidth must be positive");
  DenseLowerAccessor acc{a};
  chase_all_parallel(acc, b, opts, log);
}

}  // namespace tdg::bc
