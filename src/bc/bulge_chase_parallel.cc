#include "bc/bulge_chase_parallel.h"

#include <atomic>
#include <thread>
#include <vector>

namespace tdg::bc {

namespace {

constexpr index_t kNotStarted = -1;

template <class Acc>
void chase_all_parallel(const Acc& acc, index_t b,
                        const ParallelChaseOptions& opts, ChaseLog* log) {
  const index_t n = acc.n();
  const index_t nsweeps = std::max<index_t>(n - 2, 0);
  if (log != nullptr) {
    log->n = n;
    log->b = b;
    log->sweeps.assign(static_cast<std::size_t>(nsweeps), SweepReflectors{});
  }
  if (nsweeps == 0 || b <= 1) return;

  const index_t done = n + 3 * b;  // completion sentinel (matches publish)
  std::vector<std::atomic<index_t>> gcom(static_cast<std::size_t>(nsweeps));
  for (auto& g : gcom) g.store(kNotStarted, std::memory_order_relaxed);

  std::atomic<index_t> next_sweep{0};
  const int nthreads = static_cast<int>(std::min<index_t>(
      std::max(opts.threads, 1), nsweeps));
  const index_t cap = opts.max_parallel_sweeps;

  auto worker = [&] {
    for (;;) {
      const index_t i = next_sweep.fetch_add(1, std::memory_order_relaxed);
      if (i >= nsweeps) return;

      if (cap > 0 && i >= cap) {
        // Law (3): at most `cap` sweeps in the pipeline — wait for sweep
        // i - cap to drain before entering.
        const auto& gate = gcom[static_cast<std::size_t>(i - cap)];
        while (gate.load(std::memory_order_acquire) < done) {
          std::this_thread::yield();
        }
      }

      auto wait = [&](index_t s) {
        if (i == 0) return;
        const auto& pred = gcom[static_cast<std::size_t>(i - 1)];
        // Paper Algorithm 2, line 5: spin while gCom[i] + 2b > gCom[i-1].
        while (pred.load(std::memory_order_acquire) < s + 2 * b) {
          std::this_thread::yield();
        }
      };
      auto publish = [&](index_t s) {
        gcom[static_cast<std::size_t>(i)].store(s, std::memory_order_release);
      };

      SweepReflectors* sl =
          (log != nullptr) ? &log->sweeps[static_cast<std::size_t>(i)]
                           : nullptr;
      chase_sweep(acc, b, i, sl, wait, publish);
      // chase_sweep's final publish(n + 3b) marks the sweep complete.
    }
  };

  if (nthreads == 1) {
    worker();
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(nthreads));
  for (int t = 0; t < nthreads; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
}

}  // namespace

void chase_packed_parallel(SymBandMatrix& band, index_t b,
                           const ParallelChaseOptions& opts, ChaseLog* log) {
  TDG_CHECK(b >= 1, "chase_packed_parallel: bandwidth must be positive");
  TDG_CHECK(band.kd() >= std::min(2 * b, band.n() - 1),
            "chase_packed_parallel: storage bandwidth must be >= 2b");
  PackedLowerAccessor acc{&band};
  chase_all_parallel(acc, b, opts, log);
}

void chase_dense_parallel(MatrixView a, index_t b,
                          const ParallelChaseOptions& opts, ChaseLog* log) {
  TDG_CHECK(a.rows == a.cols, "chase_dense_parallel: matrix must be square");
  TDG_CHECK(b >= 1, "chase_dense_parallel: bandwidth must be positive");
  DenseLowerAccessor acc{a};
  chase_all_parallel(acc, b, opts, log);
}

}  // namespace tdg::bc
