#include "bc/band_to_band.h"

#include <algorithm>

#include "obs/obs.h"

namespace tdg::bc {

namespace {

struct NoWait {
  void operator()(index_t) const {}
};

}  // namespace

void reduce_band(SymBandMatrix& band, index_t b, index_t d, ChaseLog* log) {
  const index_t n = band.n();
  TDG_CHECK(b >= 1 && d >= 1 && d <= b, "reduce_band: need 1 <= d <= b");
  TDG_CHECK(band.kd() >= std::min(2 * b - d, n - 1),
            "reduce_band: storage bandwidth must be >= 2b - d");

  const index_t nsweeps = std::max<index_t>(n - d - 1, 0);
  if (log != nullptr) {
    log->n = n;
    log->b = b;
    log->sweeps.assign(static_cast<std::size_t>(nsweeps), SweepReflectors{});
  }
  if (d >= b || n <= d + 1) return;  // already at (or below) the target

  obs::Span span("reduce_band");
  span.attr("n", n);
  span.attr("b", b);
  span.attr("d", d);

  PackedLowerAccessor acc{&band};
  for (index_t i = 0; i < nsweeps; ++i) {
    SweepReflectors* sl =
        (log != nullptr) ? &log->sweeps[static_cast<std::size_t>(i)] : nullptr;
    chase_sweep(acc, b, i, sl, NoWait{}, NoWait{}, d);
  }
}

std::vector<ChaseLog> multi_step_tridiag(SymBandMatrix& band, index_t b,
                                         const std::vector<index_t>& steps) {
  std::vector<index_t> plan = steps;
  plan.push_back(1);
  index_t cur = b;
  std::vector<ChaseLog> logs;
  logs.reserve(plan.size());
  for (index_t d : plan) {
    TDG_CHECK(d >= 1 && d < cur,
              "multi_step_tridiag: bandwidths must strictly decrease");
    ChaseLog log;
    reduce_band(band, cur, d, &log);
    logs.push_back(std::move(log));
    cur = d;
  }
  return logs;
}

}  // namespace tdg::bc
