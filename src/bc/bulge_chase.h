// Stage 2 of two-stage tridiagonalization: bulge chasing (band -> tridiag).
//
// The sweep structure follows the paper's Figure 3 / Algorithm 2. Sweep i
// eliminates column i below the first sub-diagonal with one length-b
// Householder reflector, which creates a bulge below the band; the bulge's
// first column is then repeatedly eliminated at stride b until it falls off
// the matrix. Each block step applies its reflector to
//   * the diagonal block  B_d  (two-sided, symmetric rank-2 update),
//   * the off-band block  B_ol to its left (left side only),
//   * the off-band block  B_od below (right side / transposed-left),
// creating the next bulge. A full reduction is n-2 sweeps.
//
// The kernel is a template over a "lower accessor" so the identical
// arithmetic runs against two layouts:
//   * DenseLowerAccessor — band embedded in a dense n x n matrix (what the
//     paper's naive GPU kernel reads; entries of a column's band segment are
//     n doubles apart, thrashing the cache), and
//   * packed SymBandMatrix — the paper's Figure-10 layout; consecutive
//     storage, the whole band fits in L2.
//
// bulge_chase_parallel.h builds the pipelined multi-sweep version on top of
// the same per-sweep kernel.
#pragma once

#include <algorithm>
#include <vector>

#include "band/sym_band.h"
#include "common/trace.h"
#include "la/matrix.h"
#include "lapack/lapack.h"

namespace tdg::bc {

/// One bulge-chasing Householder reflector: acts on rows
/// [row0, row0 + len) with v(0) = 1 implicit and v(1:) stored in a sweep's
/// vpool at offset voff.
struct Reflector {
  index_t row0 = 0;
  index_t len = 0;
  double tau = 0.0;
  index_t voff = 0;
};

/// Reflectors of one sweep, in execution (chase-down) order.
struct SweepReflectors {
  std::vector<Reflector> steps;
  std::vector<double> vpool;  // concatenated v(1:) tails
};

/// All reflectors of a bulge-chasing run: Q2 = H(sweep0,step0) *
/// H(sweep0,step1) * ... * H(sweep1,step0) * ...  and  T = Q2^T B Q2.
struct ChaseLog {
  index_t n = 0;
  index_t b = 0;
  std::vector<SweepReflectors> sweeps;
};

/// Band content of a dense symmetric matrix, read/written through the lower
/// triangle only.
struct DenseLowerAccessor {
  MatrixView a;
  index_t n() const { return a.rows; }
  double& at(index_t i, index_t j) const { return a(i, j); }
};

/// Packed band accessor (requires kd >= 2b for bulge fill-in).
struct PackedLowerAccessor {
  SymBandMatrix* m;
  index_t n() const { return m->n(); }
  double& at(index_t i, index_t j) const { return m->at(i, j); }
};

namespace detail {

/// Apply the similarity transform of one block step. Acts on rows
/// [s, s+len) with reflector (v, tau); eliminated column is `c` (its
/// in-band/bulge segment must already be rewritten by the caller).
/// Updates B_d = A([s,s+len), [s,s+len)), B_ol = A([s,s+len), [c+1, s)),
/// and B_od = A([s+len, s+len+bod_rows), [s, s+len)).
template <class Acc>
void apply_step(const Acc& acc, index_t s, index_t len, const double* v,
                double tau, index_t c, index_t b, double* wbuf) {
  const index_t n = acc.n();

  // --- B_ol: left update of columns (c, s). Entries live in rows [s, s+len)
  // (in-band tail plus bulge residue); below s + len they are zero.
  for (index_t q = c + 1; q < s; ++q) {
    double dotv = 0.0;
    for (index_t r = 0; r < len; ++r) dotv += v[r] * acc.at(s + r, q);
    const double tv = tau * dotv;
    for (index_t r = 0; r < len; ++r) acc.at(s + r, q) -= tv * v[r];
  }

  // --- B_d: two-sided symmetric update, lower triangle only.
  // w = tau * D v ; w -= (tau/2) (w^T v) v ; D -= v w^T + w v^T.
  for (index_t r = 0; r < len; ++r) {
    double sum = 0.0;
    for (index_t q = 0; q < len; ++q) {
      const index_t i = s + std::max(r, q);
      const index_t j = s + std::min(r, q);
      sum += acc.at(i, j) * v[q];
    }
    wbuf[r] = tau * sum;
  }
  double wv = 0.0;
  for (index_t r = 0; r < len; ++r) wv += wbuf[r] * v[r];
  const double corr = -0.5 * tau * wv;
  for (index_t r = 0; r < len; ++r) wbuf[r] += corr * v[r];
  for (index_t q = 0; q < len; ++q) {
    for (index_t r = q; r < len; ++r) {
      acc.at(s + r, s + q) -= v[r] * wbuf[q] + wbuf[r] * v[q];
    }
  }

  // --- B_od: right update of rows [s+len, s+len+b) across columns
  // [s, s+len). This creates the next bulge.
  const index_t jend = std::min(s + len + b, n);
  for (index_t rr = s + len; rr < jend; ++rr) {
    double dotv = 0.0;
    for (index_t q = 0; q < len; ++q) dotv += acc.at(rr, s + q) * v[q];
    const double tv = tau * dotv;
    for (index_t q = 0; q < len; ++q) acc.at(rr, s + q) -= tv * v[q];
  }
}

/// Eliminate the sub-segment of column `c` spanning rows [s, s+len): keep
/// the entry at row s, zero rows (s, s+len). Returns tau and writes the
/// reflector tail into vtail (len-1 entries); v(0) = 1 implicit.
template <class Acc>
double eliminate_column(const Acc& acc, index_t c, index_t s, index_t len,
                        double* vtail) {
  double alpha = acc.at(s, c);
  for (index_t r = 1; r < len; ++r) vtail[r - 1] = acc.at(s + r, c);
  const double tau = lapack::larfg(len, alpha, vtail);
  if (tau != 0.0) {
    acc.at(s, c) = alpha;
    for (index_t r = 1; r < len; ++r) acc.at(s + r, c) = 0.0;
  }
  return tau;
}

}  // namespace detail

/// Execute sweep `i` of the bulge chase (all steps, chased to the bottom).
/// `progress`, when non-null, is set to the first row of the current block
/// step before the step executes, and to n + 3b on completion — this is the
/// gCom flag of the paper's Algorithm 2. `wait` is invoked before each step
/// with the step's first row (the pipelined driver blocks in it until the
/// predecessor sweep is far enough ahead; the sequential driver passes a
/// no-op).
///
/// `target_d` generalises the sweep to band-to-band reduction (the SBR
/// multi-step scheme): column i is eliminated below distance target_d
/// instead of below the first sub-diagonal, with reflectors of length
/// b - target_d + 1. target_d = 1 is ordinary tridiagonalising chase.
template <class Acc, class WaitFn, class PublishFn>
void chase_sweep(const Acc& acc, index_t b, index_t i, SweepReflectors* log,
                 WaitFn&& wait, PublishFn&& publish, index_t target_d = 1) {
  const index_t n = acc.n();
  const index_t rlen = b - target_d + 1;  // reflector length per step
  std::vector<double> v(static_cast<std::size_t>(std::max<index_t>(rlen, 1)));
  std::vector<double> w(static_cast<std::size_t>(std::max<index_t>(rlen, 1)));

  // Step 1: eliminate column i below distance target_d; rows
  // [i+target_d, i+b].
  {
    const index_t s = i + target_d;
    const index_t len = std::min(rlen, n - s);
    if (len >= 2) {
      wait(s);
      v[0] = 1.0;
      const double tau =
          detail::eliminate_column(acc, i, s, len, v.data() + 1);
      if (tau != 0.0) {
        detail::apply_step(acc, s, len, v.data(), tau, i, b, w.data());
      }
      trace::record({trace::OpKind::kBcStep, b, len, 0, 1});
      if (log != nullptr) {
        const index_t voff = static_cast<index_t>(log->vpool.size());
        log->vpool.insert(log->vpool.end(), v.begin() + 1, v.begin() + len);
        log->steps.push_back({s, len, tau, voff});
      }
      publish(s + b);
    }
  }

  // Chase: eliminate the first bulge column at stride b.
  for (index_t c = i + target_d; c + b <= n - 1; c += b) {
    const index_t s = c + b;
    const index_t len = std::min(rlen, n - s);
    if (len < 1) break;
    wait(s);
    if (len >= 2) {
      v[0] = 1.0;
      const double tau = detail::eliminate_column(acc, c, s, len, v.data() + 1);
      if (tau != 0.0) {
        detail::apply_step(acc, s, len, v.data(), tau, c, b, w.data());
      }
      trace::record({trace::OpKind::kBcStep, b, len, 0, 1});
      if (log != nullptr) {
        const index_t voff = static_cast<index_t>(log->vpool.size());
        log->vpool.insert(log->vpool.end(), v.begin() + 1, v.begin() + len);
        log->steps.push_back({s, len, tau, voff});
      }
    }
    publish(s + b);
  }
  publish(n + 3 * b);  // sweep complete
}

/// Sequential bulge chase of a dense-embedded band matrix (naive layout).
/// On return the lower triangle of `a` is tridiagonal. When `log` is
/// non-null it receives the reflectors for the Q2 back transformation.
void chase_dense(MatrixView a, index_t b, ChaseLog* log);

/// Sequential bulge chase of a packed band matrix (Fig.-10 layout).
/// Requires band.kd() >= min(2b, n-1).
void chase_packed(SymBandMatrix& band, index_t b, ChaseLog* log);

/// Extract diagonal/sub-diagonal from a tridiagonal (post-chase) matrix.
void extract_tridiag(ConstMatrixView a, std::vector<double>& d,
                     std::vector<double>& e);
void extract_tridiag(const SymBandMatrix& band, std::vector<double>& d,
                     std::vector<double>& e);

/// C <- Q2 * C where Q2 is the orthogonal factor logged during the chase
/// (T = Q2^T B Q2). Used to back-transform eigenvectors of T into
/// eigenvectors of the band matrix B.
void apply_q2_left(const ChaseLog& log, MatrixView c);

}  // namespace tdg::bc
