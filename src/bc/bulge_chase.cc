#include "bc/bulge_chase.h"

#include "obs/obs.h"

namespace tdg::bc {

namespace {

struct NoWait {
  void operator()(index_t) const {}
};

template <class Acc>
void chase_all_sequential(const Acc& acc, index_t b, ChaseLog* log) {
  const index_t n = acc.n();
  if (log != nullptr) {
    log->n = n;
    log->b = b;
    log->sweeps.assign(static_cast<std::size_t>(std::max<index_t>(n - 2, 0)),
                       SweepReflectors{});
  }
  if (b <= 1) return;  // bandwidth 1 is already tridiagonal
  obs::Span span("bulge_chase");
  span.attr("n", n);
  span.attr("b", b);
  span.attr("nsweeps", std::max<index_t>(n - 2, 0));
  for (index_t i = 0; i + 2 < n; ++i) {
    SweepReflectors* sl =
        (log != nullptr) ? &log->sweeps[static_cast<std::size_t>(i)] : nullptr;
    chase_sweep(acc, b, i, sl, NoWait{}, NoWait{});
  }
}

}  // namespace

void chase_dense(MatrixView a, index_t b, ChaseLog* log) {
  TDG_CHECK(a.rows == a.cols, "chase_dense: matrix must be square");
  TDG_CHECK(b >= 1, "chase_dense: bandwidth must be positive");
  DenseLowerAccessor acc{a};
  chase_all_sequential(acc, b, log);
}

void chase_packed(SymBandMatrix& band, index_t b, ChaseLog* log) {
  TDG_CHECK(b >= 1, "chase_packed: bandwidth must be positive");
  TDG_CHECK(band.kd() >= std::min(2 * b, band.n() - 1),
            "chase_packed: storage bandwidth must be >= 2b for bulge room");
  PackedLowerAccessor acc{&band};
  chase_all_sequential(acc, b, log);
}

void extract_tridiag(ConstMatrixView a, std::vector<double>& d,
                     std::vector<double>& e) {
  const index_t n = a.rows;
  d.assign(static_cast<std::size_t>(n), 0.0);
  e.assign(static_cast<std::size_t>(std::max<index_t>(n - 1, 0)), 0.0);
  for (index_t i = 0; i < n; ++i) {
    d[static_cast<std::size_t>(i)] = a(i, i);
    if (i + 1 < n) e[static_cast<std::size_t>(i)] = a(i + 1, i);
  }
}

void extract_tridiag(const SymBandMatrix& band, std::vector<double>& d,
                     std::vector<double>& e) {
  const index_t n = band.n();
  d.assign(static_cast<std::size_t>(n), 0.0);
  e.assign(static_cast<std::size_t>(std::max<index_t>(n - 1, 0)), 0.0);
  for (index_t i = 0; i < n; ++i) {
    d[static_cast<std::size_t>(i)] = band.at(i, i);
    if (i + 1 < n) e[static_cast<std::size_t>(i)] = band.at(i + 1, i);
  }
}

void apply_q2_left(const ChaseLog& log, MatrixView c) {
  TDG_CHECK(c.rows == log.n, "apply_q2_left: row mismatch");
  std::vector<double> v(static_cast<std::size_t>(std::max<index_t>(log.b, 1)));
  std::vector<double> work(static_cast<std::size_t>(c.cols));

  // Q2 = H_1 H_2 ... H_K in execution order, so Q2 * C applies reflectors in
  // reverse execution order (last sweep's last step first).
  for (auto sweep = log.sweeps.rbegin(); sweep != log.sweeps.rend(); ++sweep) {
    for (auto step = sweep->steps.rbegin(); step != sweep->steps.rend();
         ++step) {
      if (step->tau == 0.0) continue;
      v[0] = 1.0;
      for (index_t r = 1; r < step->len; ++r) {
        v[static_cast<std::size_t>(r)] =
            sweep->vpool[static_cast<std::size_t>(step->voff + r - 1)];
      }
      lapack::larf_left(v.data(), step->tau,
                        c.block(step->row0, 0, step->len, c.cols),
                        work.data());
    }
  }
}

}  // namespace tdg::bc
