#include "bc/chase32.h"

#include <algorithm>
#include <vector>

#include "lapack/lapack32.h"
#include "obs/obs.h"

namespace tdg::bc {

namespace {

/// Float port of bulge_chase.h detail::apply_step for the dense layout.
void apply_step_f(MatrixViewF a, index_t s, index_t len, const float* v,
                  float tau, index_t c, index_t b, float* wbuf) {
  const index_t n = a.rows;

  // --- B_ol: left update of columns (c, s).
  for (index_t q = c + 1; q < s; ++q) {
    float dotv = 0.0f;
    for (index_t r = 0; r < len; ++r) dotv += v[r] * a(s + r, q);
    const float tv = tau * dotv;
    for (index_t r = 0; r < len; ++r) a(s + r, q) -= tv * v[r];
  }

  // --- B_d: two-sided symmetric update, lower triangle only.
  for (index_t r = 0; r < len; ++r) {
    float sum = 0.0f;
    for (index_t q = 0; q < len; ++q) {
      const index_t i = s + std::max(r, q);
      const index_t j = s + std::min(r, q);
      sum += a(i, j) * v[q];
    }
    wbuf[r] = tau * sum;
  }
  float wv = 0.0f;
  for (index_t r = 0; r < len; ++r) wv += wbuf[r] * v[r];
  const float corr = -0.5f * tau * wv;
  for (index_t r = 0; r < len; ++r) wbuf[r] += corr * v[r];
  for (index_t q = 0; q < len; ++q) {
    for (index_t r = q; r < len; ++r) {
      a(s + r, s + q) -= v[r] * wbuf[q] + wbuf[r] * v[q];
    }
  }

  // --- B_od: right update of rows [s+len, s+len+b), creates the next bulge.
  const index_t jend = std::min(s + len + b, n);
  for (index_t rr = s + len; rr < jend; ++rr) {
    float dotv = 0.0f;
    for (index_t q = 0; q < len; ++q) dotv += a(rr, s + q) * v[q];
    const float tv = tau * dotv;
    for (index_t q = 0; q < len; ++q) a(rr, s + q) -= tv * v[q];
  }
}

float eliminate_column_f(MatrixViewF a, index_t c, index_t s, index_t len,
                         float* vtail) {
  float alpha = a(s, c);
  for (index_t r = 1; r < len; ++r) vtail[r - 1] = a(s + r, c);
  const float tau = lapack::larfg_f(len, alpha, vtail);
  if (tau != 0.0f) {
    a(s, c) = alpha;
    for (index_t r = 1; r < len; ++r) a(s + r, c) = 0.0f;
  }
  return tau;
}

void log_step(SweepReflectors32* log, const std::vector<float>& v, index_t s,
              index_t len, float tau) {
  if (log == nullptr) return;
  const index_t voff = static_cast<index_t>(log->vpool.size());
  log->vpool.insert(log->vpool.end(), v.begin() + 1, v.begin() + len);
  log->steps.push_back({s, len, tau, voff});
}

void chase_sweep_f(MatrixViewF a, index_t b, index_t i,
                   SweepReflectors32* log) {
  const index_t n = a.rows;
  const index_t rlen = b;  // target_d = 1: ordinary tridiagonalising chase
  std::vector<float> v(static_cast<std::size_t>(std::max<index_t>(rlen, 1)));
  std::vector<float> w(static_cast<std::size_t>(std::max<index_t>(rlen, 1)));

  // Step 1: eliminate column i below the first sub-diagonal.
  {
    const index_t s = i + 1;
    const index_t len = std::min(rlen, n - s);
    if (len >= 2) {
      v[0] = 1.0f;
      const float tau = eliminate_column_f(a, i, s, len, v.data() + 1);
      if (tau != 0.0f) {
        apply_step_f(a, s, len, v.data(), tau, i, b, w.data());
      }
      log_step(log, v, s, len, tau);
    }
  }

  // Chase: eliminate the first bulge column at stride b.
  for (index_t c = i + 1; c + b <= n - 1; c += b) {
    const index_t s = c + b;
    const index_t len = std::min(rlen, n - s);
    if (len < 2) break;
    v[0] = 1.0f;
    const float tau = eliminate_column_f(a, c, s, len, v.data() + 1);
    if (tau != 0.0f) {
      apply_step_f(a, s, len, v.data(), tau, c, b, w.data());
    }
    log_step(log, v, s, len, tau);
  }
}

}  // namespace

void chase_dense_f(MatrixViewF a, index_t b, ChaseLog32* log) {
  TDG_CHECK(a.rows == a.cols, "chase_dense_f: matrix must be square");
  TDG_CHECK(b >= 1, "chase_dense_f: bandwidth must be positive");
  const index_t n = a.rows;
  if (log != nullptr) {
    log->n = n;
    log->b = b;
    log->sweeps.assign(static_cast<std::size_t>(std::max<index_t>(n - 2, 0)),
                       SweepReflectors32{});
  }
  if (b <= 1) return;
  obs::Span span("bulge_chase_f");
  span.attr("n", n);
  span.attr("b", b);
  for (index_t i = 0; i + 2 < n; ++i) {
    SweepReflectors32* sl =
        (log != nullptr) ? &log->sweeps[static_cast<std::size_t>(i)] : nullptr;
    chase_sweep_f(a, b, i, sl);
  }
}

void apply_q2_left_f(const ChaseLog32& log, MatrixViewF c) {
  TDG_CHECK(c.rows == log.n, "apply_q2_left_f: row mismatch");
  std::vector<float> v(static_cast<std::size_t>(std::max<index_t>(log.b, 1)));
  std::vector<float> work(static_cast<std::size_t>(c.cols));

  // Q2 = H_1 H_2 ... H_K in execution order, so Q2 * C applies reflectors
  // in reverse execution order (last sweep's last step first).
  for (auto sweep = log.sweeps.rbegin(); sweep != log.sweeps.rend(); ++sweep) {
    for (auto step = sweep->steps.rbegin(); step != sweep->steps.rend();
         ++step) {
      if (step->tau == 0.0f) continue;
      v[0] = 1.0f;
      for (index_t r = 1; r < step->len; ++r) {
        v[static_cast<std::size_t>(r)] =
            sweep->vpool[static_cast<std::size_t>(step->voff + r - 1)];
      }
      lapack::larf_left_f(v.data(), step->tau,
                          c.block(step->row0, 0, step->len, c.cols),
                          work.data());
    }
  }
}

}  // namespace tdg::bc
