// Public façade: symmetric tridiagonalization.
//
// Composes the stages exactly the way the paper's evaluation does:
//   * kDirect   — one-stage blocked Householder (cuSOLVER Dsytrd analogue).
//   * kTwoStageClassic — sy2sb (b-blocked SBR) + sequential bulge chasing
//                 (MAGMA Dsy2sb + Dsb2st analogue; MAGMA's sb2st runs on the
//                 CPU, our sequential chase is its stand-in).
//   * kTwoStageDbbr — the paper's method: DBBR (Algorithm 1) + pipelined
//                 parallel bulge chasing on the packed band (Algorithm 2).
#pragma once

#include <vector>

#include "bc/bulge_chase.h"
#include "la/matrix.h"
#include "plan/knobs.h"
#include "sbr/sbr.h"

namespace tdg {

enum class TridiagMethod {
  kDirect,
  kTwoStageClassic,
  kTwoStageDbbr,
};

/// How unset ("auto", value 0) tuning knobs are resolved at driver entry
/// (see src/plan/plan.h). Explicitly-set knobs always win, in every mode.
enum class PlanMode {
  kManual,     // fill with the legacy static defaults (b=32, k=256, ...)
  kHeuristic,  // fill from the analytic planner (device-model seeded)
  kMeasure,    // fill from the empirical search / persistent plan cache
};

struct TridiagOptions {
  TridiagMethod method = TridiagMethod::kTwoStageDbbr;
  /// Resolution policy for knobs left at 0 below.
  PlanMode plan = PlanMode::kHeuristic;
  /// Band width for the two-stage methods (paper operating point: 32 for
  /// DBBR, 64 for MAGMA). 0 = auto.
  index_t b = 0;
  /// DBBR outer block / syr2k inner dimension. 0 = auto, which routes the
  /// default through the planner — the paper's 1024 on large problems.
  index_t k = 0;
  /// Panel width for the direct method. 0 = auto.
  index_t sytrd_nb = 0;
  /// Use the paper's square-block syr2k for trailing updates.
  bool use_square_syr2k = true;
  /// Pipelined bulge chasing (Algorithm 2); false = sequential chase.
  bool parallel_bc = true;
  /// Worker threads for the pipelined chase. 0 = auto.
  int bc_threads = 0;
  /// Cap on in-flight sweeps (the model's S); 0 = auto (kManual: bounded
  /// by the thread count only, the legacy behavior).
  index_t max_parallel_sweeps = 0;
  /// Record reflectors so eigenvectors can be back-transformed.
  bool want_factors = true;
  /// Thread budget for the BLAS-3 engine across both stages (0 = inherit
  /// the ambient ThreadLimit / TDG_THREADS default). Results are bitwise
  /// identical for any value. Never planner-overridden.
  int threads = 0;
  /// Screen the input's lower triangle for NaN/Inf and fail fast with
  /// Error(kInvalidInput) carrying the first bad coordinate. One cheap
  /// O(n^2/2) read pass; set false to skip on pre-validated inputs.
  bool check_finite = true;
  /// Consolidated knob sub-struct carried alongside the tridiagonalization
  /// so one options object configures a full EVD pipeline. The
  /// tridiagonalization itself reads only knobs.lookahead (the stage-1
  /// schedule: 0 = auto, -1 = force barrier, 1 = look-ahead DAG —
  /// bitwise-neutral either way); the solver / back-transform knobs pass
  /// through untouched, folded into the merged knob vector by the eigh*
  /// drivers at plan::resolve_and_validate() (lowest precedence, below
  /// EvdOptions::knobs and the deprecated loose fields).
  plan::Knobs knobs;
};

struct TridiagResult {
  std::vector<double> d;  // diagonal of T
  std::vector<double> e;  // sub-diagonal of T
  /// Effective band width used (clamped to n-1).
  index_t b = 0;
  /// Effective DBBR outer block used (resolved + rounded to a multiple of
  /// b); 0 for the direct method.
  index_t k = 0;
  TridiagMethod method = TridiagMethod::kTwoStageDbbr;

  // Factors for back transformation (populated when want_factors):
  sbr::BandFactor stage1;             // two-stage only
  bc::ChaseLog stage2;                // two-stage only
  Matrix direct_a;                    // direct only: reflectors in lower tri
  std::vector<double> direct_taus;    // direct only

  // Phase wall-clock (seconds), for benches/examples.
  double seconds_stage1 = 0.0;  // SBR/DBBR, or the whole sytrd for kDirect
  double seconds_stage2 = 0.0;  // bulge chasing
};

/// Throw Error(kInvalidInput) naming `stage` if the lower triangle of `a`
/// contains a NaN or Inf; the error context carries the first bad (row,
/// col). The input-hygiene screen run by the drivers before any factoring
/// touches the data (a non-finite entry would otherwise propagate into
/// silent-garbage eigenvalues or a non-convergence deep in the pipeline).
void check_lower_finite(ConstMatrixView a, const char* stage);

/// Reduce symmetric `a` (lower triangle read) to tridiagonal form.
TridiagResult tridiagonalize(ConstMatrixView a, const TridiagOptions& opts);

/// Back-transformation options (stage-2 chunked Q2 + stage-1 blocked Q1).
struct ApplyQOptions {
  /// Resolution policy for knobs left at 0 below.
  PlanMode plan = PlanMode::kHeuristic;
  /// Consolidated knob sub-struct: knobs.bt_kw is the stage-1 blocked group
  /// width, knobs.q2_group the stage-2 reflector-chunk size (0 = auto).
  /// Knobs::smlsiz is ignored by apply_q. The deprecated loose aliases
  /// (bt_kw / q2_group) were removed after their one-release window.
  plan::Knobs knobs;
  /// Thread budget for the back-transformation kernels (0 = inherit).
  int threads = 0;
};

/// Per-stage wall times of one apply_q call (profiling). For the direct
/// method everything lands in seconds_q1 (there is no stage-2 factor).
struct ApplyQBreakdown {
  double seconds_q2 = 0.0;  // stage-2 (bulge-chase reflectors) application
  double seconds_q1 = 0.0;  // stage-1 (band-reduction) application
};

/// Apply the accumulated orthogonal factor: c <- Q c where A = Q T Q^T.
/// Requires the result to have been computed with want_factors = true.
/// `bt_kw`: group width for the stage-1 blocked back transformation.
void apply_q(const TridiagResult& r, MatrixView c, index_t bt_kw = 256);

/// Same, with the full option set; `breakdown` (optional) receives the
/// per-stage wall times.
void apply_q(const TridiagResult& r, MatrixView c, const ApplyQOptions& opts,
             ApplyQBreakdown* breakdown = nullptr);

}  // namespace tdg
