#include "core/tridiag.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "backtransform/apply_q2_blocked.h"
#include "backtransform/backtransform.h"
#include "bc/bulge_chase_parallel.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "lapack/lapack.h"
#include "obs/obs.h"
#include "plan/plan.h"

namespace tdg {

namespace {

TridiagResult tridiag_direct(ConstMatrixView a, const TridiagOptions& opts) {
  TridiagResult r;
  r.method = TridiagMethod::kDirect;
  r.b = 1;

  Matrix work(a.rows, a.cols);
  copy(a, work.view());

  WallTimer t;
  lapack::sytrd(work.view(), r.d, r.e, r.direct_taus, opts.sytrd_nb);
  r.seconds_stage1 = t.seconds();
  if (opts.want_factors) {
    r.direct_a = std::move(work);
  }
  return r;
}

TridiagResult tridiag_two_stage(ConstMatrixView a,
                                const TridiagOptions& opts) {
  const index_t n = a.rows;
  TridiagResult r;
  r.method = opts.method;

  const index_t b = std::max<index_t>(1, std::min(opts.b, n - 1));
  r.b = b;

  // Both stages drive the parallel BLAS-3 engine at the requested width.
  ThreadLimit thread_scope(opts.threads);

  Matrix work(n, n);
  copy(a, work.view());

  WallTimer t;
  if (opts.method == TridiagMethod::kTwoStageDbbr) {
    sbr::BandReductionOptions bo;
    bo.b = b;
    bo.k = std::max(b, (opts.k / b) * b);
    bo.use_square_syr2k = opts.use_square_syr2k;
    bo.threads = opts.threads;
    bo.lookahead = std::max<index_t>(0, opts.knobs.lookahead);
    bo.want_factors = opts.want_factors;
    r.k = bo.k;
    r.stage1 = sbr::dbbr(work.view(), bo);
  } else {
    sbr::BandReductionOptions bo;
    bo.use_square_syr2k = opts.use_square_syr2k;
    bo.threads = opts.threads;
    bo.lookahead = std::max<index_t>(0, opts.knobs.lookahead);
    bo.want_factors = opts.want_factors;
    r.stage1 = sbr::sy2sb(work.view(), b, bo);
  }
  r.seconds_stage1 = t.seconds();

  // Stage 2 on the packed (Fig.-10) band layout.
  const index_t kd = std::min<index_t>(2 * b, n - 1);
  SymBandMatrix band = extract_band(work.view(), b, kd);
  bc::ChaseLog* log = opts.want_factors ? &r.stage2 : nullptr;

  t.reset();
  if (opts.parallel_bc && opts.method == TridiagMethod::kTwoStageDbbr) {
    bc::ParallelChaseOptions po;
    po.threads = opts.bc_threads;
    po.max_parallel_sweeps = opts.max_parallel_sweeps;
    bc::chase_packed_parallel(band, b, po, log);
  } else {
    bc::chase_packed(band, b, log);
  }
  r.seconds_stage2 = t.seconds();

  bc::extract_tridiag(band, r.d, r.e);
  return r;
}

}  // namespace

void check_lower_finite(ConstMatrixView a, const char* stage) {
  for (index_t j = 0; j < a.cols; ++j) {
    for (index_t i = j; i < a.rows; ++i) {
      if (!std::isfinite(a(i, j))) {
        throw Error(ErrorCode::kInvalidInput,
                    std::string(stage) + ": non-finite input entry at (" +
                        std::to_string(i) + ", " + std::to_string(j) + ")",
                    {stage, i, j});
      }
    }
  }
}

TridiagResult tridiagonalize(ConstMatrixView a, const TridiagOptions& opts) {
  TDG_CHECK(a.rows == a.cols, "tridiagonalize: matrix must be square");
  TDG_CHECK(a.rows >= 1, "tridiagonalize: empty matrix");
  obs::Span span("tridiagonalize");
  span.attr("n", a.rows);
  if (opts.check_finite) check_lower_finite(a, "tridiagonalize");
  if (a.rows == 1) {
    TridiagResult r;
    r.method = TridiagMethod::kDirect;
    r.b = 1;
    r.d = {a(0, 0)};
    r.direct_a = Matrix(1, 1);
    return r;
  }
  // Resolve unset (zero) knobs through the planner, then validate/clamp the
  // full vector; measure-tier candidates arrive here fully specified with
  // plan = kManual, so the recursion bottoms out after one level.
  const plan::ProblemShape shape{a.rows, opts.want_factors, 0};
  plan::PlannerOptions popts;
  popts.threads = opts.threads;
  TridiagOptions o =
      plan::resolve(opts, a.rows, plan::plan_for(shape, opts.plan, popts));
  o.plan = PlanMode::kManual;
  if (o.method == TridiagMethod::kDirect) {
    return tridiag_direct(a, o);
  }
  return tridiag_two_stage(a, o);
}

void apply_q(const TridiagResult& r, MatrixView c, const ApplyQOptions& opts,
             ApplyQBreakdown* breakdown) {
  const plan::ProblemShape shape{c.rows, true, c.cols};
  plan::PlannerOptions popts;
  popts.threads = opts.threads;
  const ApplyQOptions o =
      plan::resolve(opts, c.rows, plan::plan_for(shape, opts.plan, popts));
  ThreadLimit thread_scope(o.threads);
  WallTimer t;
  if (r.method == TridiagMethod::kDirect) {
    TDG_CHECK(r.direct_a.rows() == c.rows,
              "apply_q: factors missing or size mismatch");
    if (c.rows >= 3) {
      lapack::apply_sytrd_q_left(r.direct_a.view(), r.direct_taus, c);
    }
    if (breakdown != nullptr) breakdown->seconds_q1 = t.seconds();
    return;
  }
  TDG_CHECK(r.stage2.n == c.rows, "apply_q: factors missing or size mismatch");
  // Q = Q1 Q2, so apply Q2 first, then Q1. Q2 goes through the chunked
  // (column-parallel) application; within-sweep reflectors have disjoint
  // row ranges, so it matches the one-at-a-time order bit for bit.
  bt::apply_q2_left_blocked(r.stage2, c, o.knobs.q2_group);
  if (breakdown != nullptr) breakdown->seconds_q2 = t.seconds();
  t.reset();
  bt::apply_q1_blocked(r.stage1, o.knobs.bt_kw, c);
  if (breakdown != nullptr) breakdown->seconds_q1 = t.seconds();
}

void apply_q(const TridiagResult& r, MatrixView c, index_t bt_kw) {
  ApplyQOptions opts;
  opts.knobs.bt_kw = bt_kw;
  apply_q(r, c, opts);
}

}  // namespace tdg
