// tdg::plan — the autotuning planner.
//
// Every driver in the library exposes a pile of tuning knobs (band width b,
// DBBR outer block k, sweep cap S, thread counts, back-transform group
// widths, the D&C base-case size). The paper's speedups hinge on choosing
// them well — b = 32 / k = 1024 on the H100 — yet good values depend on the
// problem shape and the machine. The planner produces a complete knob
// vector for a given shape through three tiers:
//
//  1. heuristic — closed-form rules seeded by the analytic device model:
//     S from the Section-3.3 pipeline laws (gpumodel::bc_simulate /
//     bc_cycles_closed_form), b from a model-scored scan with the warp-width
//     step floor (one warp per sweep: steps below b = 32 cost the same, so
//     the scan lands on the paper's operating point), k from the GEMM
//     k-pipeline efficiency k/(k + k_half), and thread/cache-aware choices
//     for the remaining knobs.
//  2. measure — a bounded empirical search: a handful of candidate configs
//     (the heuristic seed, the legacy defaults, and ±1 steps in b and k)
//     are timed on a proxy sub-problem and the winner is kept.
//  3. cache — measured winners persist in a JSON file (FFTW-wisdom style)
//     keyed by a machine fingerprint + problem-shape bucket, so repeated
//     eigh() calls amortize the tuning cost. Path from TDG_PLAN_CACHE.
//
// Drivers resolve their options through the planner at entry: knobs left at
// their zero "auto" value are filled from the plan, explicitly-set knobs
// always win, and the merged vector is validated/clamped (k rounded to a
// multiple of b, everything clamped to legal ranges) before use.
#pragma once

#include <string>

#include "core/tridiag.h"
#include "plan/knobs.h"

namespace tdg::plan {

/// The shape the planner keys on: problem size, whether eigenvectors (and
/// hence the back transformations) are needed, how many columns are
/// back-transformed (0 = all n, as in a full EVD), and the execution-mode
/// axis (EvdMode / Precision). Defaults describe the pre-existing FP64
/// standard path, so cache keys and provenance strings for default requests
/// are unchanged (old plan-cache files stay valid).
struct ProblemShape {
  index_t n = 0;
  bool vectors = true;
  index_t subset = 0;
  EvdMode mode = EvdMode::kStandard;
  Precision precision = Precision::kFp64;
};

/// Provenance of a knob vector.
enum class PlanSource {
  kDefaults,   // legacy static defaults (PlanMode::kManual)
  kHeuristic,  // tier 1: analytic rules
  kMeasured,   // tier 2: empirical search ran
  kCache,      // tier 3: persistent cache hit (no re-measurement)
};

const char* to_string(PlanSource source);

/// A complete knob vector for one problem shape.
struct Plan {
  TridiagMethod method = TridiagMethod::kTwoStageDbbr;
  index_t b = 32;
  index_t k = 1024;
  index_t sytrd_nb = 64;
  index_t max_parallel_sweeps = 0;  // the pipeline model's S
  int threads = 0;                  // planning-time budget (informational)
  int bc_threads = 1;
  index_t bt_kw = 256;
  index_t q2_group = 64;
  index_t smlsiz = 32;
  /// Stage-1 look-ahead depth (0 = barrier schedule, 1 = overlap the next
  /// block's first panel QR with the trailing syr2k's tiles; see
  /// plan::Knobs::lookahead for the override convention). Bitwise-neutral.
  index_t lookahead = 0;
  /// The execution mode / precision this plan was resolved for (stamped
  /// from the ProblemShape; provenance only — the knob vector itself is
  /// mode-independent). Recorded in source_string() for non-default modes.
  EvdMode mode = EvdMode::kStandard;
  Precision precision = Precision::kFp64;
  PlanSource source = PlanSource::kHeuristic;
  /// Proxy wall-clock of the winning config (kMeasured / kCache only).
  double measured_seconds = 0.0;
};

/// Full provenance string for a resolved plan: the tier name plus any
/// schedule-changing knobs ("heuristic+la1" when look-ahead is on) and any
/// non-default execution mode ("+fp32" for mixed precision, "+vo" for
/// values-only). This is what EvdResult.plan_source records, so profiles
/// name the schedule that actually ran; plain tier names compare equal for
/// barrier FP64 standard plans.
std::string source_string(const Plan& plan);

/// Canonicalize the execution-mode axis of a shape — the one resolution
/// rule every layer (drivers, batch, serve, cache key) shares:
///   * mode == kValuesOnly        -> vectors = false
///   * vectors == false           -> mode = kValuesOnly (a values-only
///     request spelled through the legacy vectors flag)
///   * kMixedPrecision + vectors  -> precision = kFp32
///   * kMixedPrecision, !vectors  -> kValuesOnly at kFp64 (the FP64
///     refinement needs eigenvectors; a values-only request gains nothing
///     from the FP32 stage it cannot verify)
ProblemShape normalized(ProblemShape shape);

struct PlannerOptions {
  /// Thread budget assumed by the heuristics (0 = ambient current_threads()).
  int threads = 0;
  /// Cache file; empty = the TDG_PLAN_CACHE environment variable (empty or
  /// unset = in-memory caching only).
  std::string cache_path;
  /// Measure-tier proxy problem size (0 = min(n, 640)).
  index_t proxy_n = 0;
  /// Timing repetitions per candidate, best-of (>= 1).
  index_t reps = 1;
};

/// Tier 1: the analytic heuristic. Deterministic for a given shape, thread
/// budget, and machine.
Plan heuristic_plan(const ProblemShape& shape, int threads = 0);

/// Legacy static defaults (what the drivers hard-coded before the planner).
Plan default_plan(const ProblemShape& shape);

/// Tiers 3 then 2: consult the persistent cache, else run the bounded
/// empirical search (seeded by the heuristic) and store the winner.
Plan measured_plan(const ProblemShape& shape, const PlannerOptions& popts = {});

/// Mode dispatch: kManual -> default_plan, kHeuristic -> heuristic_plan,
/// kMeasure -> measured_plan.
Plan plan_for(const ProblemShape& shape, PlanMode mode,
              const PlannerOptions& popts = {});

// ---- option resolution & validation ---------------------------------------

/// Fill every zero ("auto") knob of `opts` from `plan` (explicit knobs win),
/// then validate and clamp the result for problem size n.
TridiagOptions resolve(const TridiagOptions& opts, index_t n, const Plan& plan);
ApplyQOptions resolve(const ApplyQOptions& opts, index_t n, const Plan& plan);

/// Validate and clamp a fully-specified option set for problem size n:
/// negative knobs throw tdg::Error; b is clamped to [1, n-1]; k is rounded
/// to a multiple of b and clamped to [b, ceil(n/b)*b]; thread counts are
/// clamped to [.., kMaxThreads]; group widths to >= 1. Degenerate inputs
/// (n <= b, k > n) therefore resolve to legal configurations instead of
/// misbehaving downstream.
TridiagOptions validated(const TridiagOptions& opts, index_t n);
ApplyQOptions validated(const ApplyQOptions& opts, index_t n);

// ---- whole-pipeline resolution (the single driver entry point) ------------

/// Everything a full-EVD driver needs to run one problem: the resolved plan
/// (for provenance and sharing) plus the validated per-stage option sets,
/// all with plan = kManual so no stage re-plans downstream.
struct ResolvedPipeline {
  Plan plan;               // the knob vector the stages were resolved from
  TridiagOptions tridiag;  // resolved + validated, plan = kManual
  ApplyQOptions applyq;    // resolved + validated, plan = kManual
  index_t smlsiz = 32;     // resolved D&C base-case size
  /// Merged FP64-refinement knobs (zeros = the documented autos), consumed
  /// by the mixed-precision engine only.
  RefineOptions refine;
};

/// The one resolve-and-validate entry point shared by eigh / eigh_range /
/// eigh_batched: run the planner for `shape` under `mode`, then resolve the
/// tridiag options, the back-transform options, and the solver base case
/// against that single plan. `knobs` is the caller's merged knob sub-struct
/// (explicit values win over the plan); `tridiag.knobs` is folded in at the
/// lowest precedence.
ResolvedPipeline resolve_and_validate(const ProblemShape& shape, PlanMode mode,
                                      const TridiagOptions& tridiag,
                                      const Knobs& knobs,
                                      const PlannerOptions& popts = {});

/// Same, against a pre-resolved plan (no planner consultation): the path
/// the batch driver takes so every problem in a shape bucket shares one
/// plan, and the path the eigh(..., plan) overloads expose publicly.
ResolvedPipeline resolve_and_validate(const ProblemShape& shape,
                                      const Plan& plan,
                                      const TridiagOptions& tridiag,
                                      const Knobs& knobs);

}  // namespace tdg::plan
