// Machine + build fingerprint for the plan cache.
//
// A measured plan is only valid on the machine and build that produced it:
// the empirical search times real kernels, so core count, cache sizes, the
// compiler, and the build mode all shift the optimum. The fingerprint is a
// short flat string of those facts; cache entries are keyed by it, so a
// cache file can be shared across machines and each only ever reads its own
// entries (stale entries are merely ignored, never wrong).
#pragma once

#include <string>

namespace tdg::plan {

/// Stable within a process and across runs of the same build on the same
/// machine. Characters are restricted to [A-Za-z0-9._=;-] so the string can
/// be embedded in JSON keys untouched.
const std::string& machine_fingerprint();

}  // namespace tdg::plan
