// plan::Knobs — the consolidated solver / back-transform knob sub-struct.
//
// Before this header the three pipeline knobs that live downstream of the
// tridiagonalization (the D&C base-case size and the two back-transform
// group widths) were duplicated as loose fields on every option struct that
// touched them. They are now one value type shared by EvdOptions,
// TridiagOptions, ApplyQOptions, and BatchOptions, resolved exactly once at
// driver entry by plan::resolve_and_validate() (src/plan/plan.h). The old
// loose fields remain as deprecated aliases for one release: assigning them
// still compiles and forwards into the merged knob vector, with an
// explicitly-set Knobs field winning on conflict.
//
// This header is dependency-free on purpose: core/tridiag.h and
// plan/plan.h both include it without creating a cycle, and the struct is
// trivially copyable so a batch driver can hand one options object to every
// pool worker by value.
#pragma once

#include <cstdint>

namespace tdg {
using index_t = std::int64_t;
}  // namespace tdg

namespace tdg::plan {

/// Solver / back-transform knobs, zero = "auto" (filled from the resolved
/// plan). Trivially copyable; safe to share across batch workers by value.
struct Knobs {
  /// Divide & conquer base-case size (subproblems at or below it use steqr).
  index_t smlsiz = 0;
  /// Stage-1 (band-reduction) blocked back-transform group width.
  index_t bt_kw = 0;
  /// Stage-2 (bulge-chase) reflector-chunk size for the blocked Q2 apply.
  index_t q2_group = 0;
  /// Stage-1 look-ahead depth for the band-reduction task DAG
  /// (src/common/task_graph.h): 0 = auto (filled from the resolved plan),
  /// -1 = force the barrier schedule, >= 1 = look-ahead (clamped to 1 — the
  /// in-block panel chain is serial, so only the next block's first panel
  /// QR can be front-run while preserving bitwise identity). Results are
  /// bitwise identical at every depth; the knob only changes overlap.
  index_t lookahead = 0;
};

/// Field-wise merge: every knob takes `primary` when set (non-zero), else
/// `fallback`. Used at driver entry to fold the deprecated loose fields
/// under the new sub-struct — opts.knobs wins over opts.smlsiz et al.
inline Knobs merged(const Knobs& primary, const Knobs& fallback) {
  Knobs k = primary;
  if (k.smlsiz == 0) k.smlsiz = fallback.smlsiz;
  if (k.bt_kw == 0) k.bt_kw = fallback.bt_kw;
  if (k.q2_group == 0) k.q2_group = fallback.q2_group;
  if (k.lookahead == 0) k.lookahead = fallback.lookahead;
  return k;
}

}  // namespace tdg::plan
