// plan::Knobs — the consolidated solver / back-transform knob sub-struct,
// plus the execution-mode axis (EvdMode / Precision / RefineOptions).
//
// Before this header the three pipeline knobs that live downstream of the
// tridiagonalization (the D&C base-case size and the two back-transform
// group widths) were duplicated as loose fields on every option struct that
// touched them. They are now one value type shared by EvdOptions,
// TridiagOptions, ApplyQOptions, and BatchOptions, resolved exactly once at
// driver entry by plan::resolve_and_validate() (src/plan/plan.h). The
// deprecated loose aliases were removed after their one-release window
// (README migration note); `knobs.*` is the only spelling.
//
// This header is dependency-free on purpose: core/tridiag.h and
// plan/plan.h both include it without creating a cycle, and the struct is
// trivially copyable so a batch driver can hand one options object to every
// pool worker by value.
#pragma once

#include <cstdint>

namespace tdg {
using index_t = std::int64_t;
}  // namespace tdg

namespace tdg::plan {

/// Execution mode of one EVD request — the first-class axis the planner,
/// the batch driver, and the serve layer all resolve and route on.
enum class EvdMode {
  kStandard,        // FP64 end to end, eigenpairs (the pre-existing path)
  kValuesOnly,      // eigenvalues only: Q1/Q2 never accumulated, the
                    // tridiagonal solve runs steqr's O(n) values-only path
  kMixedPrecision,  // FP32 sy2sb/DBBR/bulge-chase compute + FP64 refinement
};

/// Arithmetic the reduction pipeline runs in. kFp32 is implied by
/// EvdMode::kMixedPrecision; kStandard / kValuesOnly run kFp64.
enum class Precision { kFp64, kFp32 };

constexpr const char* to_string(EvdMode m) {
  switch (m) {
    case EvdMode::kStandard: return "standard";
    case EvdMode::kValuesOnly: return "values";
    case EvdMode::kMixedPrecision: return "mixed";
  }
  return "standard";
}

constexpr const char* to_string(Precision p) {
  return p == Precision::kFp32 ? "fp32" : "fp64";
}

/// Knobs of the FP64 refinement stage that follows an FP32 reduction
/// (EvdMode::kMixedPrecision): Ogita–Aishima style Newton sweeps on the
/// returned eigenpairs until the residual test passes.
struct RefineOptions {
  /// Maximum refinement sweeps (each ~8 n^3 FP64 flops). 0 = auto (2).
  index_t max_iters = 0;
  /// Residual acceptance: max_i ||A v_i - w_i v_i|| <= tol * ||A||.
  /// 0 = auto (50 * eps_fp64, the acceptance bound the test suite holds).
  double tol = 0.0;
};

/// Solver / back-transform knobs, zero = "auto" (filled from the resolved
/// plan). Trivially copyable; safe to share across batch workers by value.
struct Knobs {
  /// Divide & conquer base-case size (subproblems at or below it use steqr).
  index_t smlsiz = 0;
  /// Stage-1 (band-reduction) blocked back-transform group width.
  index_t bt_kw = 0;
  /// Stage-2 (bulge-chase) reflector-chunk size for the blocked Q2 apply.
  index_t q2_group = 0;
  /// Stage-1 look-ahead depth for the band-reduction task DAG
  /// (src/common/task_graph.h): 0 = auto (filled from the resolved plan),
  /// -1 = force the barrier schedule, >= 1 = look-ahead (clamped to 1 — the
  /// in-block panel chain is serial, so only the next block's first panel
  /// QR can be front-run while preserving bitwise identity). Results are
  /// bitwise identical at every depth; the knob only changes overlap.
  index_t lookahead = 0;
  /// FP64 refinement stage knobs (EvdMode::kMixedPrecision only).
  RefineOptions refine;
};

/// Field-wise merge: every knob takes `primary` when set (non-zero), else
/// `fallback`. Used at driver entry to fold per-stage knob sub-structs into
/// one vector — the outermost options object's knobs win.
inline Knobs merged(const Knobs& primary, const Knobs& fallback) {
  Knobs k = primary;
  if (k.smlsiz == 0) k.smlsiz = fallback.smlsiz;
  if (k.bt_kw == 0) k.bt_kw = fallback.bt_kw;
  if (k.q2_group == 0) k.q2_group = fallback.q2_group;
  if (k.lookahead == 0) k.lookahead = fallback.lookahead;
  if (k.refine.max_iters == 0) k.refine.max_iters = fallback.refine.max_iters;
  if (k.refine.tol == 0.0) k.refine.tol = fallback.refine.tol;
  return k;
}

}  // namespace tdg::plan
