// Persistent plan cache — FFTW-wisdom-style storage of measured winners.
//
// The cache is a flat map from a key string (machine fingerprint + problem
// shape bucket, see cache_key) to a knob vector plus the proxy wall-clock
// that won it. It lives in memory and can be merged with a JSON file:
//
//   { "version": 1,
//     "entries": [
//       { "key": "cores=8;...|n=2048|vec=1|sub=0",
//         "method": "dbbr", "b": 32, "k": 1024, "sytrd_nb": 64,
//         "sweeps": 8, "threads": 8, "bc_threads": 8,
//         "bt_kw": 256, "q2_group": 64, "smlsiz": 32,
//         "seconds": 0.0123 } ] }
//
// load() merges a file into memory (on key collision the entry with the
// smaller measured time wins — it is the better config); save() re-merges
// with the file's current content and replaces it atomically (write to a
// temp file, then rename), so concurrent writers lose no entries. A file
// that fails to parse is treated as empty: a corrupted cache costs a
// re-measurement, never an error. All operations are thread-safe.
#pragma once

#include <map>
#include <mutex>
#include <string>

#include "plan/plan.h"

namespace tdg::plan {

/// Cache key for a shape: fingerprint + n bucketed to the next power of two
/// (plans are shape-bucketed, not exact-size) + vectors flag + subset bucket.
std::string cache_key(const ProblemShape& shape);

class PlanCache {
 public:
  /// Look up a key; on hit copies the stored plan into *out (with source =
  /// PlanSource::kCache) and returns true.
  bool lookup(const std::string& key, Plan* out) const;

  /// Insert or improve (smaller measured_seconds wins) an entry.
  void insert(const std::string& key, const Plan& plan);

  /// Merge `path` into memory. Returns false (leaving memory unchanged) if
  /// the file is missing or fails to parse.
  bool load(const std::string& path);

  /// Merge memory with the file's current entries and atomically replace
  /// it. Returns false on I/O failure.
  bool save(const std::string& path) const;

  void clear();
  std::size_t size() const;

  /// The process-wide cache used by measured_plan().
  static PlanCache& global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, Plan> entries_;
};

}  // namespace tdg::plan
