// Persistent plan cache — FFTW-wisdom-style storage of measured winners.
//
// The cache is a flat map from a key string (machine fingerprint + problem
// shape bucket, see cache_key) to a knob vector plus the proxy wall-clock
// that won it. It lives in memory and can be merged with a JSON file:
//
//   { "version": 1,
//     "entries": [
//       { "key": "cores=8;...|n=2048|vec=1|sub=0",
//         "method": "dbbr", "b": 32, "k": 1024, "sytrd_nb": 64,
//         "sweeps": 8, "threads": 8, "bc_threads": 8,
//         "bt_kw": 256, "q2_group": 64, "smlsiz": 32,
//         "seconds": 0.0123 } ] }
//
// load() merges a file into memory (on key collision the entry with the
// smaller measured time wins — it is the better config); save() re-merges
// with the file's current content and replaces it atomically (write to a
// temp file, then rename). On POSIX, save() additionally holds an exclusive
// flock on `<path>.lock` across the read-merge-rename, so concurrent
// tune/bench *processes* cannot interleave and drop each other's freshly
// measured entries; if the lock cannot be acquired the save degrades to the
// old unlocked atomic-rename path (still never corrupting the file) and the
// degradation is counted in CacheStats::lock_failures. A lock currently
// held by a peer process is waited for (blocking flock) and every such wait
// is counted in CacheStats::lock_waits — the contention telemetry; entries
// adopted from the file over (or absent from) memory's copy during the
// re-merge are counted exactly in CacheStats::merged_entries, so a
// cross-process merge that preserved a peer's measurement is directly
// observable. A file that fails to
// parse is treated as empty: a corrupted cache costs a re-measurement,
// never an error. All operations are thread-safe.
//
// Telemetry: the cache counts hits/misses (total and per shape bucket),
// measure-tier runs, and load/save outcomes. The counters are obs::Counter
// instances (always-on gating): the global() cache's counters live in
// obs::Registry::global() under the "plan.*" names, so TDG_METRICS
// snapshots and stats() read the same storage; non-global instances (tests)
// own private counters with identical semantics. Query with stats() /
// shape_stats(); bench_plan emits them as a JSON line so regressions in
// heuristic quality show up in the perf trajectory.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "plan/plan.h"

namespace tdg::plan {

/// Process-wide cache telemetry counters.
struct CacheStats {
  long long hits = 0;           // lookup() served from memory
  long long misses = 0;         // lookup() found nothing
  long long measure_runs = 0;   // empirical searches actually executed
  long long loads = 0;          // successful file merges into memory
  long long saves = 0;          // successful file writes
  long long save_failures = 0;  // I/O failures (file left as it was)
  long long lock_failures = 0;  // flock unavailable; saved unlocked
  long long lock_waits = 0;     // flock held by a peer; save blocked for it
  long long merged_entries = 0;  // disk entries adopted over memory's copy
};

/// Per-shape-bucket counters, keyed by cache_key().
struct ShapeStats {
  long long hits = 0;
  long long misses = 0;
  long long measure_runs = 0;
};

/// Smallest power of two >= n — the shape-bucketing function shared by the
/// cache key and the batch driver's plan-per-bucket sharing.
index_t pow2_bucket(index_t n);

/// Cache key for a shape: fingerprint + n bucketed to the next power of two
/// (plans are shape-bucketed, not exact-size) + vectors flag + subset bucket.
std::string cache_key(const ProblemShape& shape);

class PlanCache {
 public:
  /// A cache with private stats counters (tests construct these freely).
  PlanCache();

  /// Look up a key; on hit copies the stored plan into *out (with source =
  /// PlanSource::kCache) and returns true.
  bool lookup(const std::string& key, Plan* out) const;

  /// Insert or improve (smaller measured_seconds wins) an entry.
  void insert(const std::string& key, const Plan& plan);

  /// Merge `path` into memory. Returns false (leaving memory unchanged) if
  /// the file is missing or fails to parse.
  bool load(const std::string& path);

  /// Merge memory with the file's current entries and atomically replace
  /// it. Returns false on I/O failure.
  bool save(const std::string& path) const;

  void clear();
  std::size_t size() const;

  /// Telemetry snapshots (see CacheStats); reset_stats() zeroes both.
  CacheStats stats() const;
  std::map<std::string, ShapeStats> shape_stats() const;
  void reset_stats();

  /// Record that the measure tier ran an empirical search for `key`
  /// (called by measured_plan on a cache miss).
  void note_measure_run(const std::string& key);

  /// The process-wide cache used by measured_plan().
  static PlanCache& global();

 private:
  struct UseRegistryTag {};
  /// The global() constructor: counters aliased into the process metrics
  /// registry under "plan.cache_hits" etc. instead of privately owned.
  explicit PlanCache(UseRegistryTag);

  /// Pointers to the stat counters, either into owned_counters_ or into
  /// obs::Registry::global().
  struct Counters {
    obs::Counter* hits = nullptr;
    obs::Counter* misses = nullptr;
    obs::Counter* measure_runs = nullptr;
    obs::Counter* loads = nullptr;
    obs::Counter* saves = nullptr;
    obs::Counter* save_failures = nullptr;
    obs::Counter* lock_failures = nullptr;
    obs::Counter* lock_waits = nullptr;
    obs::Counter* merged_entries = nullptr;
  };

  mutable std::mutex mu_;
  std::map<std::string, Plan> entries_;
  std::vector<std::unique_ptr<obs::Counter>> owned_counters_;
  Counters c_;
  mutable std::map<std::string, ShapeStats> shape_stats_;
};

}  // namespace tdg::plan
