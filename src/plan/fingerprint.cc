#include "plan/fingerprint.h"

#include <cstdio>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace tdg::plan {

namespace {

long cache_size(int name) {
#if defined(_SC_LEVEL1_DCACHE_SIZE)
  const long v = ::sysconf(name);
  return v > 0 ? v : 0;
#else
  (void)name;
  return 0;
#endif
}

std::string sanitized(std::string s) {
  for (char& c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '=' || c == '-' || c == ';';
    if (!ok) c = '_';
  }
  return s;
}

std::string build_fingerprint() {
  char buf[256];
  long l1 = 0, l2 = 0, l3 = 0;
#if defined(_SC_LEVEL1_DCACHE_SIZE)
  l1 = cache_size(_SC_LEVEL1_DCACHE_SIZE);
#endif
#if defined(_SC_LEVEL2_CACHE_SIZE)
  l2 = cache_size(_SC_LEVEL2_CACHE_SIZE);
#endif
#if defined(_SC_LEVEL3_CACHE_SIZE)
  l3 = cache_size(_SC_LEVEL3_CACHE_SIZE);
#endif
  const unsigned cores = std::thread::hardware_concurrency();
#if defined(NDEBUG)
  const char* mode = "release";
#else
  const char* mode = "debug";
#endif
#if defined(__VERSION__)
  const char* cxx = __VERSION__;
#else
  const char* cxx = "unknown";
#endif
  std::snprintf(buf, sizeof(buf),
                "cores=%u;l1d=%ld;l2=%ld;l3=%ld;ptr=%u;mode=%s;cxx=%s",
                cores ? cores : 1u, l1, l2, l3,
                static_cast<unsigned>(8 * sizeof(void*)), mode, cxx);
  return sanitized(buf);
}

}  // namespace

const std::string& machine_fingerprint() {
  static const std::string fp = build_fingerprint();
  return fp;
}

}  // namespace tdg::plan
