#include "plan/plan_cache.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>
#define TDG_HAVE_FLOCK 1
#endif

#include "common/fault.h"
#include "common/json.h"
#include "plan/fingerprint.h"

namespace tdg::plan {

namespace {

/// Exclusive cross-process lock on `<path>.lock`, held for a save()'s whole
/// read-merge-rename so two tuning processes cannot interleave and drop
/// each other's entries. Degrades gracefully: ok() == false means the lock
/// could not be taken (no flock on this platform, open failure, or the
/// `cache_lock` fault site fired) and the caller proceeds unlocked — the
/// atomic rename still keeps the file valid, restoring the pre-lock
/// last-writer-wins behavior rather than failing the save.
class FileLock {
 public:
  explicit FileLock(const std::string& path) {
    if (fault::should_fire("cache_lock")) return;  // simulated contention
#if defined(TDG_HAVE_FLOCK)
    fd_ = ::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
    if (fd_ < 0) return;
    // Non-blocking probe first, purely for telemetry: a peer holding the
    // lock is a real contention event (the old blocking-only path silently
    // absorbed the wait, undercounting it to zero). The blocking acquire
    // then waits for the peer as before.
    if (::flock(fd_, LOCK_EX | LOCK_NB) == 0) {
      acquired_ = true;
      return;
    }
    contended_ = true;
    if (::flock(fd_, LOCK_EX) != 0) {
      ::close(fd_);
      fd_ = -1;
      return;
    }
    acquired_ = true;
#else
    acquired_ = true;  // no flock on this platform: lock elided
#endif
  }
  ~FileLock() {
#if defined(TDG_HAVE_FLOCK)
    if (fd_ >= 0) {
      ::flock(fd_, LOCK_UN);
      ::close(fd_);
    }
#endif
  }
  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;
  bool ok() const { return acquired_; }
  /// True when the initial non-blocking probe lost to a peer process and
  /// the acquire had to wait (or failed) behind it.
  bool contended() const { return contended_; }

 private:
  int fd_ = -1;
  bool acquired_ = false;
  bool contended_ = false;
};

const char* method_name(TridiagMethod m) {
  switch (m) {
    case TridiagMethod::kDirect: return "direct";
    case TridiagMethod::kTwoStageClassic: return "classic";
    case TridiagMethod::kTwoStageDbbr: return "dbbr";
  }
  return "dbbr";
}

bool method_from_name(const std::string& s, TridiagMethod* m) {
  if (s == "direct") *m = TridiagMethod::kDirect;
  else if (s == "classic") *m = TridiagMethod::kTwoStageClassic;
  else if (s == "dbbr") *m = TridiagMethod::kTwoStageDbbr;
  else return false;
  return true;
}

// Cache-file reading goes through the shared tdg::json reader; any
// malformed input makes parsing fail as a whole, which the callers treat
// as "no cache" (corrupted-file recovery).

using json::Value;

bool get_index(const Value& obj, const char* key, index_t* out) {
  const Value* v = obj.find(key);
  if (!v || v->kind != Value::kNumber) return false;
  *out = static_cast<index_t>(v->num);
  return true;
}

bool entry_from_json(const Value& e, std::string* key, Plan* plan) {
  const Value* kv = e.find("key");
  if (!kv || kv->kind != Value::kString) return false;
  *key = kv->str;
  const Value* method = e.find("method");
  if (!method || method->kind != Value::kString ||
      !method_from_name(method->str, &plan->method)) {
    return false;
  }
  index_t threads = 0, bc_threads = 0;
  if (!get_index(e, "b", &plan->b) || !get_index(e, "k", &plan->k) ||
      !get_index(e, "sytrd_nb", &plan->sytrd_nb) ||
      !get_index(e, "sweeps", &plan->max_parallel_sweeps) ||
      !get_index(e, "threads", &threads) ||
      !get_index(e, "bc_threads", &bc_threads) ||
      !get_index(e, "bt_kw", &plan->bt_kw) ||
      !get_index(e, "q2_group", &plan->q2_group) ||
      !get_index(e, "smlsiz", &plan->smlsiz)) {
    return false;
  }
  plan->threads = static_cast<int>(threads);
  plan->bc_threads = static_cast<int>(bc_threads);
  // Optional (absent in pre-look-ahead cache files, which stay loadable):
  // default to the barrier schedule.
  index_t lookahead = 0;
  get_index(e, "lookahead", &lookahead);
  plan->lookahead = lookahead;
  const Value* sec = e.find("seconds");
  plan->measured_seconds =
      (sec && sec->kind == Value::kNumber) ? sec->num : 0.0;
  plan->source = PlanSource::kMeasured;
  return plan->b >= 1 && plan->k >= 1 && plan->sytrd_nb >= 1;
}

bool parse_cache_file(const std::string& path,
                      std::map<std::string, Plan>* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  Value root;
  if (!json::parse(ss.str(), &root) || root.kind != Value::kObject) {
    return false;
  }
  const Value* entries = root.find("entries");
  if (!entries || entries->kind != Value::kArray) return false;
  for (const Value& e : entries->arr) {
    if (e.kind != Value::kObject) return false;
    std::string key;
    Plan plan;
    if (!entry_from_json(e, &key, &plan)) return false;
    auto [it, inserted] = out->emplace(key, plan);
    if (!inserted && plan.measured_seconds < it->second.measured_seconds) {
      it->second = plan;
    }
  }
  return true;
}

void write_entry(std::FILE* f, const std::string& key, const Plan& p,
                 bool last) {
  std::fprintf(
      f,
      "    {\"key\": \"%s\", \"method\": \"%s\", \"b\": %lld, \"k\": %lld, "
      "\"sytrd_nb\": %lld, \"sweeps\": %lld, \"threads\": %d, "
      "\"bc_threads\": %d, \"bt_kw\": %lld, \"q2_group\": %lld, "
      "\"smlsiz\": %lld, \"lookahead\": %lld, \"seconds\": %.9g}%s\n",
      key.c_str(), method_name(p.method), static_cast<long long>(p.b),
      static_cast<long long>(p.k), static_cast<long long>(p.sytrd_nb),
      static_cast<long long>(p.max_parallel_sweeps), p.threads, p.bc_threads,
      static_cast<long long>(p.bt_kw), static_cast<long long>(p.q2_group),
      static_cast<long long>(p.smlsiz), static_cast<long long>(p.lookahead),
      p.measured_seconds, last ? "" : ",");
}

/// Insert-or-improve; returns true when `into` changed (new key, or `plan`
/// won on measured time) — the exact signal the merged-entry telemetry
/// needs.
bool merge_entry(std::map<std::string, Plan>* into, const std::string& key,
                 const Plan& plan) {
  auto [it, inserted] = into->emplace(key, plan);
  if (!inserted && plan.measured_seconds < it->second.measured_seconds) {
    it->second = plan;
    return true;
  }
  return inserted;
}

}  // namespace

PlanCache::PlanCache() {
  // Private always-on counters: test instances must count identically to
  // the global one without sharing its totals.
  obs::Counter** slots[] = {&c_.hits,          &c_.misses,
                            &c_.measure_runs,  &c_.loads,
                            &c_.saves,         &c_.save_failures,
                            &c_.lock_failures, &c_.lock_waits,
                            &c_.merged_entries};
  for (obs::Counter** slot : slots) {
    owned_counters_.push_back(
        std::make_unique<obs::Counter>(obs::Gating::kAlways));
    *slot = owned_counters_.back().get();
  }
}

PlanCache::PlanCache(UseRegistryTag) {
  // The process-wide cache: stats live in the metrics registry, so
  // TDG_METRICS snapshots and stats() read the same counters.
  obs::Registry& r = obs::Registry::global();
  c_.hits = r.counter("plan.cache_hits", obs::Gating::kAlways);
  c_.misses = r.counter("plan.cache_misses", obs::Gating::kAlways);
  c_.measure_runs = r.counter("plan.measure_runs", obs::Gating::kAlways);
  c_.loads = r.counter("plan.cache_loads", obs::Gating::kAlways);
  c_.saves = r.counter("plan.cache_saves", obs::Gating::kAlways);
  c_.save_failures =
      r.counter("plan.cache_save_failures", obs::Gating::kAlways);
  c_.lock_failures =
      r.counter("plan.cache_lock_failures", obs::Gating::kAlways);
  c_.lock_waits = r.counter("plan.cache_lock_waits", obs::Gating::kAlways);
  c_.merged_entries =
      r.counter("plan.cache_merged_entries", obs::Gating::kAlways);
}

index_t pow2_bucket(index_t n) {
  index_t p = 1;
  while (p < n) p *= 2;
  return p;
}

std::string cache_key(const ProblemShape& shape) {
  const ProblemShape s = normalized(shape);
  char buf[96];
  std::snprintf(buf, sizeof(buf), "|n=%lld|vec=%d|sub=%lld",
                static_cast<long long>(pow2_bucket(std::max<index_t>(
                    s.n, 1))),
                s.vectors ? 1 : 0,
                static_cast<long long>(
                    s.subset > 0 ? pow2_bucket(s.subset) : 0));
  std::string key = machine_fingerprint() + buf;
  // Only non-default axes extend the key, so keys minted before the mode
  // axis existed (and the entries old cache files hold) stay valid for
  // default FP64 requests. Values-only is already encoded in vec=0.
  if (s.precision == Precision::kFp32) key += "|prec=fp32";
  return key;
}

bool PlanCache::lookup(const std::string& key, Plan* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    c_.misses->inc();
    ++shape_stats_[key].misses;
    return false;
  }
  c_.hits->inc();
  ++shape_stats_[key].hits;
  *out = it->second;
  out->source = PlanSource::kCache;
  return true;
}

void PlanCache::insert(const std::string& key, const Plan& plan) {
  std::lock_guard<std::mutex> lock(mu_);
  merge_entry(&entries_, key, plan);
}

bool PlanCache::load(const std::string& path) {
  std::map<std::string, Plan> fresh;
  if (!parse_cache_file(path, &fresh)) return false;
  std::lock_guard<std::mutex> lock(mu_);
  long long adopted = 0;
  for (const auto& [key, plan] : fresh) {
    if (merge_entry(&entries_, key, plan)) ++adopted;
  }
  c_.loads->inc();
  c_.merged_entries->inc(adopted);
  return true;
}

bool PlanCache::save(const std::string& path) const {
  auto note_failure = [&] { c_.save_failures->inc(); };
  if (fault::should_fire("cache_save")) {
    // Simulated I/O failure, before any file is touched: callers must treat
    // a false return as "cache not updated", never as corruption.
    note_failure();
    return false;
  }

  // Serialize the read-merge-rename against other *processes*; on lock
  // failure fall back to the unlocked atomic-rename path (last-writer-wins,
  // the pre-flock behavior) rather than dropping the save.
  FileLock file_lock(path + ".lock");
  if (!file_lock.ok()) c_.lock_failures->inc();
  if (file_lock.contended()) c_.lock_waits->inc();

  std::map<std::string, Plan> merged;
  parse_cache_file(path, &merged);  // unparsable file = start empty
  // Exact adopted-from-disk count: every file entry that survives the
  // re-merge (its key is absent from memory, or its measured time wins)
  // is a peer measurement this save preserved.
  long long from_disk = static_cast<long long>(merged.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [key, plan] : entries_) {
      const bool existed = merged.count(key) != 0;
      if (merge_entry(&merged, key, plan) && existed) --from_disk;
    }
  }
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (!f) {
    note_failure();
    return false;
  }
  std::fprintf(f, "{\n  \"version\": 1,\n  \"entries\": [\n");
  std::size_t i = 0;
  for (const auto& [key, plan] : merged) {
    write_entry(f, key, plan, ++i == merged.size());
  }
  std::fprintf(f, "  ]\n}\n");
  const bool write_ok = std::fflush(f) == 0 && !std::ferror(f);
  std::fclose(f);
  if (!write_ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    note_failure();
    return false;
  }
  c_.saves->inc();
  c_.merged_entries->inc(from_disk);
  return true;
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

std::size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

CacheStats PlanCache::stats() const {
  CacheStats s;
  s.hits = c_.hits->value();
  s.misses = c_.misses->value();
  s.measure_runs = c_.measure_runs->value();
  s.loads = c_.loads->value();
  s.saves = c_.saves->value();
  s.save_failures = c_.save_failures->value();
  s.lock_failures = c_.lock_failures->value();
  s.lock_waits = c_.lock_waits->value();
  s.merged_entries = c_.merged_entries->value();
  return s;
}

std::map<std::string, ShapeStats> PlanCache::shape_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shape_stats_;
}

void PlanCache::reset_stats() {
  std::lock_guard<std::mutex> lock(mu_);
  c_.hits->reset();
  c_.misses->reset();
  c_.measure_runs->reset();
  c_.loads->reset();
  c_.saves->reset();
  c_.save_failures->reset();
  c_.lock_failures->reset();
  c_.lock_waits->reset();
  c_.merged_entries->reset();
  shape_stats_.clear();
}

void PlanCache::note_measure_run(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  c_.measure_runs->inc();
  ++shape_stats_[key].measure_runs;
}

PlanCache& PlanCache::global() {
  static PlanCache cache{UseRegistryTag{}};
  return cache;
}

}  // namespace tdg::plan
