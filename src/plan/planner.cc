// Planner tiers: analytic heuristic, bounded empirical search, resolution.
//
// The heuristic leans on the calibrated device model (src/gpumodel) the way
// the paper's authors leaned on their Section-3.3 analysis:
//
//  * b — scored scan over {8, 16, 32, 64}. The bulge-chase step model gets
//    a warp-width floor (one warp processes one sweep, so a step at b < 32
//    costs the same as b = 32 while leaving lanes idle); under that floor
//    the pipeline cycles strictly favor b = 32 over 16/8 (fewer bulges and
//    stalls per sweep), and the ~b^2 step cost rules out 64 — the scan
//    reproduces the paper's published operating point instead of
//    hard-coding it.
//  * S — smallest sweep cap within 2% of the saturated pipeline's cycle
//    count (bc_simulate exactly for small n, the closed form above), capped
//    at 2 sweeps per worker (the paper runs ~2 sweeps per SM). Monotone
//    non-decreasing in the thread budget by construction.
//  * k — the GEMM k-pipeline efficiency k/(k + k_half) passes 94% at
//    k = 16 * k_half = 1024, the paper's operating point; smaller problems
//    take k = n/2 so at least two outer blocks amortize the panel work.
//
// The measure tier brackets the heuristic seed with its neighbors in b and
// k plus the legacy defaults, times each candidate's tridiagonalization on
// a proxy problem, and keeps the winner — so a measured plan never loses to
// the pre-planner hard-coded configuration on the proxy.

#include "plan/plan.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "gpumodel/bc_pipeline_model.h"
#include "gpumodel/kernel_model.h"
#include "la/generate.h"
#include "plan/plan_cache.h"

namespace tdg::plan {

namespace {

index_t round_to_multiple(index_t x, index_t b) {
  return std::max(b, (x / b) * b);
}

index_t clamp_index(index_t x, index_t lo, index_t hi) {
  return std::min(std::max(x, lo), hi);
}

double pipeline_cycles(index_t n, index_t b, index_t s) {
  if (n < 2) return 0.0;
  // The exact simulation is O(n * s) per call and the heuristic scans it;
  // use it where the closed form's dropped floor terms actually matter and
  // the paper's closed form (O(1)) beyond.
  if (n <= 512) return gpumodel::bc_simulate(n, b, s).cycles;
  return gpumodel::bc_cycles_closed_form(n, b, s);
}

/// Smallest S whose cycle count is within 2% of the saturated pipeline.
index_t pick_sweep_saturation(index_t n, index_t b) {
  if (n < 4) return 1;
  const index_t s_hi = std::min<index_t>(n - 2, 64);
  const double target = pipeline_cycles(n, b, s_hi) * 1.02;
  for (index_t s = 1; s < s_hi; ++s) {
    if (pipeline_cycles(n, b, s) <= target) return s;
  }
  return s_hi;
}

index_t pick_k(index_t n, index_t b, const gpumodel::DeviceSpec& spec) {
  // Full k-pipeline efficiency: k/(k + k_half) >= 0.94 at k = 16 * k_half.
  const index_t k_model = round_to_multiple(
      static_cast<index_t>(16.0 * spec.gemm_k_half), b);
  // Small problems: k = n/2 keeps at least two outer blocks in flight.
  const index_t k_shape = round_to_multiple(std::max(b, n / 2), b);
  return std::min(k_model, k_shape);
}

/// Modeled seconds of the two-stage pipeline at bandwidth b — the scoring
/// function of the heuristic's b scan.
double model_two_stage_seconds(const gpumodel::KernelModel& km, index_t n,
                               index_t b) {
  const gpumodel::DeviceSpec& spec = km.spec();
  const index_t k = pick_k(n, b, spec);
  const double nd = static_cast<double>(n);
  // Stage-1 panel factorizations are BLAS-2: each of the ~n/b panels
  // touches ~8 * m_j * b^2 bytes, summing to ~4 n^2 b.
  const double panel = km.blas2_seconds(4.0 * nd * nd * b);
  // Trailing updates: one inner-dimension-k syr2k per outer block, priced
  // as two GEMMs on the average trailing size n/2.
  const double blocks = std::max(1.0, nd / static_cast<double>(k));
  const double trailing = 2.0 * blocks * km.gemm_seconds(n / 2, n / 2, k);
  // Stage 2: pipeline cycles times the per-step cost, floored at the b = 32
  // warp width — one warp per sweep, so narrower steps run no faster.
  const index_t s = pick_sweep_saturation(n, b);
  const double step =
      gpumodel::bc_step_seconds(spec, std::max<index_t>(b, 32));
  return panel + trailing + pipeline_cycles(n, b, s) * step;
}

index_t pick_bandwidth(index_t n, const gpumodel::KernelModel& km) {
  std::vector<std::pair<index_t, double>> scored;
  for (index_t b : {8, 16, 32, 64}) {
    if (b >= n) continue;
    scored.emplace_back(b, model_two_stage_seconds(km, n, b));
  }
  if (scored.empty()) return std::max<index_t>(1, n - 1);
  double best = scored.front().second;
  for (const auto& [b, s] : scored) best = std::min(best, s);
  // Within the model's resolution (3%), prefer the fatter band: fewer
  // sweeps to chase and better panel packing, per the paper's choice.
  index_t best_b = scored.front().first;
  for (const auto& [b, s] : scored) {
    if (s <= best * 1.03) best_b = b;
  }
  return best_b;
}

int ambient_threads(int requested) {
  const int t = requested > 0 ? requested : current_threads();
  return std::min(std::max(t, 1), kMaxThreads);
}

TridiagOptions options_from_plan(const Plan& p, bool want_factors) {
  TridiagOptions o;
  o.plan = PlanMode::kManual;
  o.method = p.method;
  o.b = p.b;
  o.k = p.k;
  o.sytrd_nb = p.sytrd_nb;
  o.bc_threads = p.bc_threads;
  o.max_parallel_sweeps = p.max_parallel_sweeps;
  o.want_factors = want_factors;
  return o;
}

/// Clamp a plan's shape-dependent knobs to a (possibly smaller) size n, so
/// full-size candidates stay legal on the measure tier's proxy problem.
Plan clamped_for(const Plan& p, index_t n) {
  Plan c = p;
  c.b = clamp_index(c.b, 1, std::max<index_t>(1, n - 1));
  c.k = std::min(round_to_multiple(c.k, c.b),
                 round_to_multiple(((n + c.b - 1) / c.b) * c.b, c.b));
  c.sytrd_nb = clamp_index(c.sytrd_nb, 1, std::max<index_t>(1, n));
  return c;
}

double time_candidate(const Plan& cand, ConstMatrixView proxy, bool vectors,
                      index_t reps) {
  double best = -1.0;
  for (index_t r = 0; r < std::max<index_t>(reps, 1); ++r) {
    WallTimer t;
    TridiagResult res =
        tridiagonalize(proxy, options_from_plan(clamped_for(cand, proxy.rows),
                                                vectors));
    const double s = t.seconds();
    (void)res;
    if (best < 0.0 || s < best) best = s;
  }
  return best;
}

std::string resolve_cache_path(const PlannerOptions& popts) {
  if (!popts.cache_path.empty()) return popts.cache_path;
  const char* env = std::getenv("TDG_PLAN_CACHE");
  return env ? env : "";
}

}  // namespace

const char* to_string(PlanSource source) {
  switch (source) {
    case PlanSource::kDefaults: return "defaults";
    case PlanSource::kHeuristic: return "heuristic";
    case PlanSource::kMeasured: return "measured";
    case PlanSource::kCache: return "cache";
  }
  return "heuristic";
}

std::string source_string(const Plan& plan) {
  std::string s = to_string(plan.source);
  // Only schedule-changing knob values are recorded: barrier plans keep the
  // plain tier name, so pre-look-ahead provenance strings stay comparable.
  if (plan.lookahead >= 1) s += "+la" + std::to_string(plan.lookahead);
  // Non-default execution modes are recorded the same way — default FP64
  // standard runs keep the plain string, so pre-mode provenance (and any
  // consumer comparing it) is unchanged.
  if (plan.precision == Precision::kFp32) {
    s += "+fp32";
  } else if (plan.mode == EvdMode::kValuesOnly) {
    s += "+vo";
  }
  return s;
}

ProblemShape normalized(ProblemShape shape) {
  if (shape.mode == EvdMode::kValuesOnly) shape.vectors = false;
  if (!shape.vectors && shape.mode == EvdMode::kStandard) {
    shape.mode = EvdMode::kValuesOnly;
  }
  if (shape.mode == EvdMode::kMixedPrecision) {
    if (shape.vectors) {
      shape.precision = Precision::kFp32;
    } else {
      shape.mode = EvdMode::kValuesOnly;
      shape.precision = Precision::kFp64;
    }
  }
  if (shape.mode != EvdMode::kMixedPrecision) {
    shape.precision = Precision::kFp64;
  }
  return shape;
}

Plan default_plan(const ProblemShape& shape) {
  Plan p;
  p.source = PlanSource::kDefaults;
  p.method = TridiagMethod::kTwoStageDbbr;
  p.b = 32;
  p.k = 256;
  p.sytrd_nb = 64;
  p.max_parallel_sweeps = 0;  // legacy: bounded by the thread count only
  p.threads = 0;
  p.bc_threads = 4;
  p.bt_kw = 256;
  p.q2_group = 64;
  p.smlsiz = 32;
  p.lookahead = 0;  // legacy barrier schedule
  return clamped_for(p, std::max<index_t>(shape.n, 1));
}

Plan heuristic_plan(const ProblemShape& shape, int threads) {
  const index_t n = std::max<index_t>(shape.n, 1);
  const int t = ambient_threads(threads);

  // The plan is a pure function of (n, t) on a given machine, and drivers
  // consult it on every call — memoize (problem sizes repeat under load).
  static std::mutex memo_mu;
  static std::map<std::pair<index_t, int>, Plan> memo;
  {
    std::lock_guard<std::mutex> lock(memo_mu);
    const auto it = memo.find({n, t});
    if (it != memo.end()) return it->second;
  }

  Plan p;
  p.source = PlanSource::kHeuristic;
  p.threads = t;

  const gpumodel::KernelModel km(gpumodel::h100_sxm(), /*vendor_syr2k=*/false);

  // Tiny problems: the two-stage machinery (panel QR + chase + two back
  // transformations) costs more than it saves; blocked sytrd wins.
  p.method = n < 64 ? TridiagMethod::kDirect : TridiagMethod::kTwoStageDbbr;

  p.b = pick_bandwidth(n, km);
  p.k = pick_k(n, p.b, km.spec());

  // S from the pipeline model; at most 2 in-flight sweeps per worker (the
  // paper's GPU runs ~2 sweeps per SM). min(saturation, cap) is monotone
  // non-decreasing in the thread budget.
  const index_t cap = std::max<index_t>(1, 2 * static_cast<index_t>(t));
  p.max_parallel_sweeps = std::min(pick_sweep_saturation(n, p.b), cap);
  p.bc_threads = static_cast<int>(
      clamp_index(std::min<index_t>(t, p.max_parallel_sweeps), 1, t));

  // Direct-path panel: 64 amortizes the rank-2nb syr2k; never more than
  // half the matrix (sytrd switches to the unblocked kernel below 2 nb).
  p.sytrd_nb = clamp_index(64, 1, std::max<index_t>(1, n / 2));

  // Back transformation: the stage-1 group width trades W-recomputation
  // against GEMM fatness; 256 saturates from n ~ 1k (paper Fig. 14). The
  // subset path keeps it — the win there comes from the column count.
  p.bt_kw = clamp_index(256, 1, n);
  p.q2_group = clamp_index(64, 1, n);
  p.smlsiz = clamp_index(32, 2, std::max<index_t>(n, 2));

  // Look-ahead needs a worker to run the front-run QR on; with one thread
  // the DAG degrades to the serial schedule anyway, so don't claim it.
  p.lookahead = t >= 2 ? 1 : 0;

  p = clamped_for(p, n);
  {
    std::lock_guard<std::mutex> lock(memo_mu);
    memo.emplace(std::pair<index_t, int>{n, t}, p);
  }
  return p;
}

Plan measured_plan(const ProblemShape& shape, const PlannerOptions& popts) {
  const index_t n = std::max<index_t>(shape.n, 1);
  const std::string path = resolve_cache_path(popts);
  const std::string key = cache_key(shape);
  PlanCache& cache = PlanCache::global();

  if (!path.empty()) cache.load(path);
  Plan cached;
  if (cache.lookup(key, &cached)) return cached;
  cache.note_measure_run(key);

  const Plan seed = heuristic_plan(shape, popts.threads);

  // Candidate set: seed, the legacy defaults (so a measured plan never
  // loses to the pre-planner configuration), and the seed's neighbors in
  // k and b.
  std::vector<Plan> cands{seed, default_plan(shape)};
  {
    Plan half_k = seed, dbl_k = seed;
    half_k.k = round_to_multiple(seed.k / 2, seed.b);
    dbl_k.k = seed.k * 2;
    cands.push_back(half_k);
    cands.push_back(dbl_k);
    if (seed.b > 8) {
      Plan half_b = seed;
      half_b.b = seed.b / 2;
      half_b.k = round_to_multiple(seed.k, half_b.b);
      cands.push_back(half_b);
    }
    Plan dbl_b = seed;
    dbl_b.b = std::min<index_t>(seed.b * 2, 64);
    dbl_b.k = round_to_multiple(seed.k, dbl_b.b);
    cands.push_back(dbl_b);
  }

  const index_t proxy_n =
      popts.proxy_n > 0 ? std::min(popts.proxy_n, n) : std::min<index_t>(n, 640);
  Rng rng(0x9d2c5681);
  const Matrix proxy = random_symmetric(proxy_n, rng);

  ThreadLimit scope(popts.threads);
  Plan best = seed;
  double best_s = -1.0;
  for (const Plan& cand : cands) {
    const Plan effective = clamped_for(cand, proxy_n);
    // Candidates that clamp to an already-timed config add nothing.
    bool duplicate = false;
    for (const Plan& prior : cands) {
      if (&prior == &cand) break;
      const Plan p2 = clamped_for(prior, proxy_n);
      if (p2.method == effective.method && p2.b == effective.b &&
          p2.k == effective.k && p2.sytrd_nb == effective.sytrd_nb &&
          p2.max_parallel_sweeps == effective.max_parallel_sweeps &&
          p2.bc_threads == effective.bc_threads) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    const double s = time_candidate(cand, proxy.view(), shape.vectors,
                                    popts.reps);
    if (best_s < 0.0 || s < best_s) {
      best_s = s;
      best = cand;
    }
  }

  best.source = PlanSource::kMeasured;
  best.measured_seconds = std::max(best_s, 0.0);
  cache.insert(key, best);
  if (!path.empty()) cache.save(path);
  return best;
}

Plan plan_for(const ProblemShape& shape, PlanMode mode,
              const PlannerOptions& popts) {
  const ProblemShape s = normalized(shape);
  Plan p;
  switch (mode) {
    case PlanMode::kManual: p = default_plan(s); break;
    case PlanMode::kMeasure: p = measured_plan(s, popts); break;
    case PlanMode::kHeuristic: p = heuristic_plan(s, popts.threads); break;
  }
  // Provenance: the knob vector is mode-independent (the FP32 stage and
  // the values-only path consume the same b/k/S), but the plan remembers
  // what it was resolved for so source_string() can record it.
  p.mode = s.mode;
  p.precision = s.precision;
  return p;
}

TridiagOptions resolve(const TridiagOptions& opts, index_t n,
                       const Plan& plan) {
  TridiagOptions o = opts;
  if (o.b == 0) o.b = plan.b;
  if (o.k == 0) o.k = plan.k;
  if (o.sytrd_nb == 0) o.sytrd_nb = plan.sytrd_nb;
  if (o.bc_threads == 0) o.bc_threads = plan.bc_threads;
  if (o.max_parallel_sweeps == 0)
    o.max_parallel_sweeps = plan.max_parallel_sweeps;
  if (o.knobs.lookahead == 0) o.knobs.lookahead = plan.lookahead;
  return validated(o, n);
}

ApplyQOptions resolve(const ApplyQOptions& opts, index_t n, const Plan& plan) {
  ApplyQOptions o = opts;
  if (o.knobs.bt_kw == 0) o.knobs.bt_kw = plan.bt_kw;
  if (o.knobs.q2_group == 0) o.knobs.q2_group = plan.q2_group;
  return validated(o, n);
}

TridiagOptions validated(const TridiagOptions& opts, index_t n) {
  TDG_CHECK(n >= 1, "plan: problem size must be positive");
  TDG_CHECK(opts.b >= 0 && opts.k >= 0 && opts.sytrd_nb >= 0,
            "plan: negative block-size knob");
  TDG_CHECK(opts.max_parallel_sweeps >= 0,
            "plan: negative max_parallel_sweeps");
  TDG_CHECK(opts.threads >= 0 && opts.bc_threads >= 0,
            "plan: negative thread count");
  TDG_CHECK(opts.knobs.lookahead >= -1,
            "plan: lookahead must be -1 (barrier), 0 (auto), or a depth");
  TridiagOptions o = opts;
  // Only depth 1 carries bitwise-preserving work to front-run; deeper
  // requests behave as 1 (see sbr::BandReductionOptions::lookahead).
  o.knobs.lookahead = std::min<index_t>(o.knobs.lookahead, 1);
  o.b = clamp_index(o.b == 0 ? 32 : o.b, 1, std::max<index_t>(1, n - 1));
  // k: a positive multiple of b (the dbbr precondition), no larger than n
  // rounded up to the block grid.
  const index_t k_hi = ((n + o.b - 1) / o.b) * o.b;
  o.k = clamp_index(round_to_multiple(o.k == 0 ? o.b : o.k, o.b), o.b,
                    std::max(o.b, k_hi));
  o.sytrd_nb =
      clamp_index(o.sytrd_nb == 0 ? 64 : o.sytrd_nb, 1, std::max<index_t>(1, n));
  o.max_parallel_sweeps = std::min<index_t>(o.max_parallel_sweeps, n);
  o.threads = std::min(o.threads, kMaxThreads);
  o.bc_threads = std::min(o.bc_threads, kMaxThreads);
  return o;
}

ApplyQOptions validated(const ApplyQOptions& opts, index_t n) {
  TDG_CHECK(n >= 1, "plan: problem size must be positive");
  TDG_CHECK(opts.knobs.bt_kw >= 0 && opts.knobs.q2_group >= 0,
            "plan: negative back-transform group width");
  TDG_CHECK(opts.threads >= 0, "plan: negative thread count");
  ApplyQOptions o = opts;
  o.knobs.bt_kw = clamp_index(o.knobs.bt_kw == 0 ? 256 : o.knobs.bt_kw, 1,
                              std::max<index_t>(1, n));
  o.knobs.q2_group = clamp_index(o.knobs.q2_group == 0 ? 64 : o.knobs.q2_group,
                                 1, std::max<index_t>(1, n));
  o.threads = std::min(o.threads, kMaxThreads);
  return o;
}

ResolvedPipeline resolve_and_validate(const ProblemShape& shape,
                                      const Plan& plan,
                                      const TridiagOptions& tridiag,
                                      const Knobs& knobs) {
  const ProblemShape s = normalized(shape);
  const index_t n = std::max<index_t>(s.n, 1);
  ResolvedPipeline r;
  r.plan = plan;
  // Shared bucket plans are mode-agnostic; the resolved pipeline's
  // provenance reflects the request that is actually running.
  r.plan.mode = s.mode;
  r.plan.precision = s.precision;

  // Lowest precedence for knobs carried on the tridiag options; the
  // caller's (already merged) knob struct wins, the plan fills the rest.
  // The merge happens before resolve() so plan-filled knobs that the
  // tridiagonalization reads (lookahead) resolve against the merged value.
  const Knobs k = merged(knobs, tridiag.knobs);

  TridiagOptions t = tridiag;
  t.knobs = k;
  r.tridiag = resolve(t, n, plan);
  r.tridiag.plan = PlanMode::kManual;  // already resolved
  r.tridiag.want_factors = s.vectors;
  // Provenance records the schedule that will actually run: a caller knob
  // (including -1 = force barrier) overrides what the plan proposed.
  r.plan.lookahead = std::max<index_t>(0, r.tridiag.knobs.lookahead);

  r.applyq.knobs = k;
  r.applyq.threads = tridiag.threads;
  r.applyq = resolve(r.applyq, n, plan);
  r.applyq.plan = PlanMode::kManual;

  TDG_CHECK(k.smlsiz >= 0, "plan: negative smlsiz");
  r.smlsiz = clamp_index(k.smlsiz == 0 ? plan.smlsiz : k.smlsiz, 2,
                         std::max<index_t>(n, 2));

  TDG_CHECK(k.refine.max_iters >= 0 && k.refine.tol >= 0.0,
            "plan: negative refinement knob");
  r.refine = k.refine;  // zeros = autos, resolved by the refinement stage
  return r;
}

ResolvedPipeline resolve_and_validate(const ProblemShape& shape, PlanMode mode,
                                      const TridiagOptions& tridiag,
                                      const Knobs& knobs,
                                      const PlannerOptions& popts) {
  PlannerOptions p = popts;
  if (p.threads == 0) p.threads = tridiag.threads;
  return resolve_and_validate(shape, plan_for(shape, mode, p), tridiag, knobs);
}

}  // namespace tdg::plan
