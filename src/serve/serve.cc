#include "serve/serve.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <random>
#include <thread>
#include <utility>
#include <vector>

#include "common/fault.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "plan/plan_cache.h"

namespace tdg::serve {

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
             b - a)
      .count();
}

/// serve.* registry metrics, resolved once. All always-on: a request is
/// control-plane traffic and its accounting must survive disarmed metrics.
struct ServeMetrics {
  obs::Counter* submitted;
  obs::Counter* admitted;
  obs::Counter* rejected;
  obs::Counter* completed;
  obs::Counter* degraded;
  obs::Counter* failed;
  obs::Counter* retries;
  obs::Counter* breaker_trips;
  obs::Counter* batches;
  obs::Counter* deadline_failures;
  obs::Gauge* queue_depth;
  obs::Gauge* queue_depth_hwm;
  obs::Histogram* latency_us;

  static ServeMetrics& get() {
    static ServeMetrics m = [] {
      obs::Registry& r = obs::Registry::global();
      const auto always = obs::Gating::kAlways;
      return ServeMetrics{r.counter("serve.submitted", always),
                          r.counter("serve.admitted", always),
                          r.counter("serve.rejected", always),
                          r.counter("serve.completed", always),
                          r.counter("serve.degraded", always),
                          r.counter("serve.failed", always),
                          r.counter("serve.retries", always),
                          r.counter("serve.breaker_trips", always),
                          r.counter("serve.batches", always),
                          r.counter("serve.deadline_failures", always),
                          r.gauge("serve.queue_depth", always),
                          r.gauge("serve.queue_depth_hwm", always),
                          r.histogram("serve.latency_us", always)};
    }();
    return m;
  }
};

/// Per-bucket circuit breaker (guarded by the core mutex). Closed ->
/// (threshold consecutive failures) -> open for breaker_open_ms -> one
/// half-open probe -> closed on success, reopened on failure.
struct Breaker {
  int consecutive = 0;
  bool open = false;
  bool probing = false;  // a half-open probe is in flight
  Clock::time_point open_until{};
};

/// Transient failure classes that earn a retry instead of failing the
/// request outright. kCancelled is deliberately absent (retrying past a
/// deadline is never useful), as is kInvalidInput (deterministic).
bool transient(ErrorCode code) {
  return code == ErrorCode::kFaultInjected ||
         code == ErrorCode::kPipelineStall;
}

}  // namespace

const char* to_string(Outcome o) {
  switch (o) {
    case Outcome::kCompleted: return "completed";
    case Outcome::kDegraded: return "degraded";
    case Outcome::kRejected: return "rejected";
    case Outcome::kFailed: return "failed";
  }
  return "failed";
}

struct ServeCore::Impl {
  struct Request {
    Matrix a;
    RequestOptions ropts;
    std::promise<Response> promise;
    std::shared_ptr<cancel::Token> token;
    Clock::time_point submitted_at{};
    std::string admit_key;  // breaker bucket, as admitted (pre-degrade)
    bool probe = false;     // the bucket breaker's half-open probe
    int retries = 0;
  };

  explicit Impl(const ServeOptions& o) : opts(o) {
    dispatcher = std::thread([this] { run(); });
  }

  ~Impl() {
    {
      std::lock_guard<std::mutex> lk(mu);
      draining = true;
      stopping = true;
    }
    cv.notify_all();
    dispatcher.join();
  }

  // ---- admission (caller thread) -------------------------------------

  Ticket submit(Matrix a, const RequestOptions& ropts) {
    ServeMetrics& m = ServeMetrics::get();
    auto token = std::make_shared<cancel::Token>();
    if (ropts.deadline_ms > 0.0) token->set_deadline_in_ms(ropts.deadline_ms);

    auto req = std::make_unique<Request>();
    req->ropts = ropts;
    req->token = token;
    req->submitted_at = Clock::now();
    Ticket ticket{req->promise.get_future(), token};

    const index_t n = a.rows();
    const long long bytes =
        static_cast<long long>(n) * static_cast<long long>(n) * 8;
    req->admit_key = plan::cache_key(plan::ProblemShape{
        std::max<index_t>(n, 1), ropts.vectors, 0});

    std::lock_guard<std::mutex> lk(mu);
    ++submitted;
    m.submitted->inc();

    // Admission ladder: every reject is synchronous and typed — the
    // request never consumes queue space or a dispatch slot.
    if (fault::should_fire("serve_admit")) {
      reject(std::move(req), ErrorCode::kFaultInjected,
             "serve: fault injected at admission (serve_admit)");
      return ticket;
    }
    if (draining) {
      reject(std::move(req), ErrorCode::kOverloaded,
             "serve: draining, not admitting new requests");
      return ticket;
    }
    if (static_cast<index_t>(queue.size()) >= opts.queue_capacity) {
      reject(std::move(req), ErrorCode::kOverloaded,
             "serve: queue full (queue_capacity)");
      return ticket;
    }
    if (opts.memory_budget_bytes > 0 &&
        queued_bytes + bytes > opts.memory_budget_bytes) {
      reject(std::move(req), ErrorCode::kOverloaded,
             "serve: queued-matrix memory budget exceeded");
      return ticket;
    }
    Breaker& br = breakers[req->admit_key];
    if (br.open) {
      if (Clock::now() < br.open_until || br.probing) {
        reject(std::move(req), ErrorCode::kOverloaded,
               "serve: circuit breaker open for this shape bucket");
        return ticket;
      }
      // Half-open: let exactly one probe through to decide close/reopen.
      br.probing = true;
      req->probe = true;
    }

    req->a = std::move(a);
    ++admitted;
    m.admitted->inc();
    queued_bytes += bytes;
    queue.push_back(std::move(req));
    note_depth_locked();
    cv.notify_all();
    return ticket;
  }

  /// Resolve a request as kRejected (mu held; synchronous with submit).
  void reject(std::unique_ptr<Request> req, ErrorCode code,
              const std::string& msg) {
    ++rejected;
    ServeMetrics::get().rejected->inc();
    Response r;
    r.outcome = Outcome::kRejected;
    r.code = code;
    r.message = msg;
    req->promise.set_value(std::move(r));
  }

  void note_depth_locked() {
    const long long depth = static_cast<long long>(queue.size());
    ServeMetrics& m = ServeMetrics::get();
    m.queue_depth->set(depth);
    m.queue_depth_hwm->update_max(depth);
    depth_hwm = std::max(depth_hwm, depth);
  }

  // ---- dispatcher ----------------------------------------------------

  void run() {
    std::unique_lock<std::mutex> lk(mu);
    for (;;) {
      cv.wait(lk, [&] { return !queue.empty() || stopping; });
      if (queue.empty()) break;  // stopping and nothing left to resolve

      // Coalesce window: give same-bucket peers a moment to arrive so a
      // burst becomes one planner pass + one eigh_batched dispatch. Cut
      // short by a full batch, drain, or shutdown.
      if (opts.coalesce_window_ms > 0.0 && !draining) {
        const auto window_end =
            queue.front()->submitted_at +
            std::chrono::microseconds(
                static_cast<long long>(opts.coalesce_window_ms * 1e3));
        cv.wait_until(lk, window_end, [&] {
          return static_cast<int>(queue.size()) >= opts.max_batch ||
                 draining || stopping;
        });
      }

      std::vector<std::unique_ptr<Request>> batch;
      const int take =
          std::min<int>(opts.max_batch, static_cast<int>(queue.size()));
      const index_t depth_at_dispatch = static_cast<index_t>(queue.size());
      for (int i = 0; i < take; ++i) {
        std::unique_ptr<Request> r = std::move(queue.front());
        queue.pop_front();
        const index_t n = r->a.rows();
        queued_bytes -= static_cast<long long>(n) * n * 8;
        batch.push_back(std::move(r));
      }
      in_flight += take;
      note_depth_locked();

      lk.unlock();
      process(std::move(batch), depth_at_dispatch);
      lk.lock();

      if (queue.empty() && in_flight == 0) drain_cv.notify_all();
    }
  }

  /// One request's place in a dispatched batch, after triage.
  struct Slot {
    std::unique_ptr<Request> req;
    bool vectors = false;  // effective, post-degrade
    bool was_degraded = false;
    double queue_ms = 0.0;
  };

  /// Solve one dispatched batch: degrade, group by shape bucket, one
  /// eigh_batched per bucket with the warm shared plan, then walk each
  /// slot through the retry/breaker ladder.
  void process(std::vector<std::unique_ptr<Request>> batch,
               index_t depth_at_dispatch) {
    ServeMetrics& m = ServeMetrics::get();
    obs::Span span("serve.batch");
    span.attr("requests", static_cast<long long>(batch.size()));
    const Clock::time_point dispatch_tp = Clock::now();

    std::vector<Slot> slots;
    slots.reserve(batch.size());

    // Per-request triage: expire, degrade, or enqueue for the bucket solve.
    // `serve_request` fires here — a simulated transient failure of the
    // request's first attempt, sending it straight to the retry rung.
    std::map<std::string, std::vector<std::size_t>> groups;
    for (auto& req : batch) {
      Slot s;
      s.queue_ms = ms_between(req->submitted_at, dispatch_tp);
      s.vectors = req->ropts.vectors;
      if (req->token->stop_requested()) {
        const bool probe = req->probe;
        fail(std::move(req), ErrorCode::kCancelled,
             "serve: deadline expired before solve", s.queue_ms, 0.0, 0,
             probe);
        continue;
      }
      if (s.vectors && opts.allow_degraded && req->ropts.allow_degraded) {
        const bool pressure = opts.degrade_queue_depth > 0 &&
                              depth_at_dispatch > opts.degrade_queue_depth;
        bool deadline_pressure = false;
        if (req->ropts.deadline_ms > 0.0) {
          const double expect = expected_vectors_ms(req->a.rows());
          deadline_pressure =
              expect > 0.0 && req->token->remaining_ms() < expect;
        }
        if (pressure || deadline_pressure) {
          s.vectors = false;
          s.was_degraded = true;
        }
      }
      const std::string key = plan::cache_key(plan::ProblemShape{
          std::max<index_t>(req->a.rows(), 1), s.vectors, 0});
      s.req = std::move(req);
      if (fault::should_fire("serve_request")) {
        // Transient first-attempt failure: take the retry ladder solo.
        retry_or_fail(std::move(s), key, ErrorCode::kFaultInjected,
                      "serve: fault injected in request solve "
                      "(serve_request)");
        continue;
      }
      slots.push_back(std::move(s));
      groups[key].push_back(slots.size() - 1);
    }

    // One eigh_batched per shape bucket, every problem sharing the
    // bucket's warm plan and carrying its own cancellation token.
    for (auto& [key, idxs] : groups) {
      const plan::Plan* plan = warm_plan(key, slots[idxs[0]].vectors,
                                         slots[idxs[0]].req->a.rows());
      eig::BatchOptions bopts;
      bopts.vectors = slots[idxs[0]].vectors;
      bopts.plan = opts.plan;
      bopts.solver = opts.solver;
      bopts.check_finite = opts.check_finite;
      bopts.threads = opts.threads;
      bopts.shared_plan = plan;
      std::vector<ConstMatrixView> views;
      views.reserve(idxs.size());
      bopts.tokens.reserve(idxs.size());
      for (const std::size_t i : idxs) {
        views.push_back(slots[i].req->a.view());
        bopts.tokens.push_back(slots[i].req->token.get());
      }
      ++batches;
      m.batches->inc();
      const eig::BatchResult br = eig::eigh_batched(views, bopts);
      const double per_problem_ms =
          br.seconds * 1e3 / static_cast<double>(idxs.size());

      for (std::size_t j = 0; j < idxs.size(); ++j) {
        Slot& s = slots[idxs[j]];
        const double solve_ms = ms_between(dispatch_tp, Clock::now());
        if (br.status[j].ok) {
          if (s.vectors) note_vectors_ms(key, per_problem_ms);
          succeed(std::move(s.req), eig::EvdResult(br.results[j]),
                  s.was_degraded, s.queue_ms, solve_ms, 0);
        } else if (br.status[j].code == ErrorCode::kCancelled) {
          const bool probe = s.req->probe;
          fail(std::move(s.req), ErrorCode::kCancelled, br.status[j].message,
               s.queue_ms, solve_ms, 0, probe);
        } else if (transient(br.status[j].code)) {
          retry_or_fail(std::move(s), key, br.status[j].code,
                        br.status[j].message);
        } else {
          const bool probe = s.req->probe;
          breaker_failure(s.req->admit_key, probe);
          fail(std::move(s.req), br.status[j].code, br.status[j].message,
               s.queue_ms, solve_ms, 0, probe);
        }
      }
    }
  }

  /// The retry rung: jittered backoff, then a solo re-solve under the same
  /// token and bucket plan (bitwise-identical configuration to the batch
  /// slot). A second transient failure beyond max_retries, or any
  /// non-transient one, drops to the failure rung.
  void retry_or_fail(Slot&& s, const std::string& key, ErrorCode first_code,
                     const std::string& first_msg) {
    ServeMetrics& m = ServeMetrics::get();
    ErrorCode code = first_code;
    std::string msg = first_msg;
    const Clock::time_point t0 = Clock::now();
    while (s.req->retries < opts.max_retries) {
      ++s.req->retries;
      ++retries;
      m.retries->inc();
      backoff();
      if (s.req->token->stop_requested()) {
        code = ErrorCode::kCancelled;
        msg = "serve: deadline expired before retry";
        break;
      }
      // A persistently-armed serve_request site fails the retry too, so
      // the injection matrix can walk a request all the way down the
      // ladder instead of always being rescued by the first retry.
      if (fault::should_fire("serve_request")) {
        code = ErrorCode::kFaultInjected;
        msg = "serve: fault injected in retry solve (serve_request)";
        continue;
      }
      try {
        const plan::Plan* plan = warm_plan(key, s.vectors, s.req->a.rows());
        eig::EvdOptions popt;
        popt.vectors = s.vectors;
        popt.solver = opts.solver;
        popt.tridiag.threads = 1;
        popt.tridiag.bc_threads = 1;
        popt.check_finite = opts.check_finite;
        cancel::Scope scope(s.req->token.get());
        eig::EvdResult r = eig::eigh(s.req->a.view(), popt, *plan);
        const double solve_ms = ms_between(t0, Clock::now());
        const int used = s.req->retries;
        succeed(std::move(s.req), std::move(r), s.was_degraded, s.queue_ms,
                solve_ms, used);
        return;
      } catch (const Error& err) {
        code = err.code();
        msg = err.what();
        if (!transient(code)) break;
      } catch (const std::exception& err) {
        code = ErrorCode::kUnknown;
        msg = err.what();
        break;
      }
    }
    const double solve_ms = ms_between(t0, Clock::now());
    const bool probe = s.req->probe;
    const int used = s.req->retries;
    if (code != ErrorCode::kCancelled) {
      breaker_failure(s.req->admit_key, probe);
    }
    fail(std::move(s.req), code, msg, s.queue_ms, solve_ms, used, probe);
  }

  void backoff() {
    double jitter;
    {
      std::lock_guard<std::mutex> lk(mu);
      jitter = jitter_dist(rng);
    }
    const double ms = opts.retry_backoff_ms * jitter;
    if (ms > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(static_cast<long long>(ms * 1e3)));
    }
  }

  // ---- resolution ----------------------------------------------------

  void succeed(std::unique_ptr<Request> req, eig::EvdResult&& result,
               bool was_degraded, double queue_ms, double solve_ms,
               int used_retries) {
    ServeMetrics& m = ServeMetrics::get();
    breaker_success(req->admit_key, req->probe);
    Response r;
    r.outcome = was_degraded ? Outcome::kDegraded : Outcome::kCompleted;
    r.result = std::move(result);
    r.queue_ms = queue_ms;
    r.solve_ms = solve_ms;
    r.retries = used_retries;
    const double latency = ms_between(req->submitted_at, Clock::now());
    {
      std::lock_guard<std::mutex> lk(mu);
      if (was_degraded) {
        ++degraded;
      } else {
        ++completed;
      }
      latencies_ms.push_back(latency);
      --in_flight;
      if (queue.empty() && in_flight == 0) drain_cv.notify_all();
    }
    (was_degraded ? m.degraded : m.completed)->inc();
    m.latency_us->record(static_cast<long long>(latency * 1e3));
    req->promise.set_value(std::move(r));
  }

  void fail(std::unique_ptr<Request> req, ErrorCode code,
            const std::string& msg, double queue_ms, double solve_ms,
            int used_retries, bool was_probe) {
    ServeMetrics& m = ServeMetrics::get();
    if (was_probe) release_probe(req->admit_key);
    Response r;
    r.outcome = Outcome::kFailed;
    r.code = code;
    r.message = msg;
    r.queue_ms = queue_ms;
    r.solve_ms = solve_ms;
    r.retries = used_retries;
    const double latency = ms_between(req->submitted_at, Clock::now());
    {
      std::lock_guard<std::mutex> lk(mu);
      ++failed;
      if (code == ErrorCode::kCancelled) ++deadline_failures;
      latencies_ms.push_back(latency);
      --in_flight;
      if (queue.empty() && in_flight == 0) drain_cv.notify_all();
    }
    m.failed->inc();
    if (code == ErrorCode::kCancelled) m.deadline_failures->inc();
    m.latency_us->record(static_cast<long long>(latency * 1e3));
    req->promise.set_value(std::move(r));
  }

  // ---- breaker / plan / ewma (mu) ------------------------------------

  void breaker_success(const std::string& key, bool was_probe) {
    std::lock_guard<std::mutex> lk(mu);
    Breaker& b = breakers[key];
    b.consecutive = 0;
    b.open = false;
    if (was_probe) b.probing = false;
  }

  void breaker_failure(const std::string& key, bool was_probe) {
    ServeMetrics& m = ServeMetrics::get();
    std::lock_guard<std::mutex> lk(mu);
    Breaker& b = breakers[key];
    if (was_probe) {
      // Failed half-open probe: reopen for another full window.
      b.probing = false;
      b.open = true;
      b.open_until = Clock::now() + std::chrono::microseconds(static_cast<
                         long long>(opts.breaker_open_ms * 1e3));
      ++breaker_trips;
      m.breaker_trips->inc();
      return;
    }
    ++b.consecutive;
    if (!b.open && opts.breaker_threshold > 0 &&
        b.consecutive >= opts.breaker_threshold) {
      b.open = true;
      b.open_until = Clock::now() + std::chrono::microseconds(static_cast<
                         long long>(opts.breaker_open_ms * 1e3));
      ++breaker_trips;
      m.breaker_trips->inc();
    }
  }

  /// A cancelled probe neither closes nor reopens the breaker — it just
  /// frees the probe slot so the next request can probe.
  void release_probe(const std::string& key) {
    std::lock_guard<std::mutex> lk(mu);
    breakers[key].probing = false;
  }

  /// The bucket's shared plan, resolved once (one planner pass per bucket
  /// for the life of the service) and reused warm by every batch.
  const plan::Plan* warm_plan(const std::string& key, bool vectors,
                              index_t n) {
    std::lock_guard<std::mutex> lk(mu);
    auto it = plans.find(key);
    if (it == plans.end()) {
      eig::BatchOptions bopts;
      bopts.vectors = vectors;
      bopts.plan = opts.plan;
      it = plans.emplace(key, eig::batch_bucket_plan(n, bopts)).first;
    }
    return &it->second;
  }

  double expected_vectors_ms(index_t n) {
    const std::string key = plan::cache_key(
        plan::ProblemShape{std::max<index_t>(n, 1), true, 0});
    std::lock_guard<std::mutex> lk(mu);
    const auto it = solve_ewma_ms.find(key);
    return it == solve_ewma_ms.end() ? 0.0 : it->second;
  }

  void note_vectors_ms(const std::string& key, double ms) {
    std::lock_guard<std::mutex> lk(mu);
    double& e = solve_ewma_ms[key];
    e = e == 0.0 ? ms : 0.7 * e + 0.3 * ms;
  }

  // ---- drain / stats -------------------------------------------------

  bool drain(double timeout_ms) {
    std::unique_lock<std::mutex> lk(mu);
    draining = true;
    cv.notify_all();
    const auto done = [&] { return queue.empty() && in_flight == 0; };
    if (timeout_ms <= 0.0) {
      drain_cv.wait(lk, done);
      return true;
    }
    return drain_cv.wait_for(
        lk,
        std::chrono::microseconds(static_cast<long long>(timeout_ms * 1e3)),
        done);
  }

  ServeStats stats() const {
    ServeStats s;
    std::vector<double> lat;
    {
      std::lock_guard<std::mutex> lk(mu);
      s.submitted = submitted;
      s.admitted = admitted;
      s.rejected = rejected;
      s.completed = completed;
      s.degraded = degraded;
      s.failed = failed;
      s.retries = retries;
      s.breaker_trips = breaker_trips;
      s.batches = batches;
      s.deadline_failures = deadline_failures;
      s.queue_depth = static_cast<long long>(queue.size());
      s.queue_depth_hwm = depth_hwm;
      lat = latencies_ms;
    }
    if (!lat.empty()) {
      std::sort(lat.begin(), lat.end());
      const auto pct = [&](double p) {
        const std::size_t i = static_cast<std::size_t>(
            p * static_cast<double>(lat.size() - 1) + 0.5);
        return lat[std::min(i, lat.size() - 1)];
      };
      s.p50_ms = pct(0.50);
      s.p95_ms = pct(0.95);
      s.p99_ms = pct(0.99);
    }
    return s;
  }

  // ---- state ---------------------------------------------------------

  const ServeOptions opts;
  mutable std::mutex mu;
  std::condition_variable cv;        // queue activity / shutdown
  std::condition_variable drain_cv;  // queue empty and nothing in flight
  std::deque<std::unique_ptr<Request>> queue;
  long long queued_bytes = 0;
  int in_flight = 0;  // popped, not yet resolved
  bool draining = false;
  bool stopping = false;

  long long submitted = 0;
  long long admitted = 0;
  long long rejected = 0;
  long long completed = 0;
  long long degraded = 0;
  long long failed = 0;
  long long retries = 0;
  long long breaker_trips = 0;
  long long batches = 0;
  long long deadline_failures = 0;
  long long depth_hwm = 0;
  std::vector<double> latencies_ms;

  std::map<std::string, Breaker> breakers;
  std::map<std::string, plan::Plan> plans;
  std::map<std::string, double> solve_ewma_ms;  // vectors solves, per bucket

  // Deterministic backoff jitter (fixed seed: reproducible schedules).
  std::mt19937 rng{0x5eedu};
  std::uniform_real_distribution<double> jitter_dist{0.5, 1.5};

  std::thread dispatcher;
};

ServeCore::ServeCore(const ServeOptions& opts) {
  TDG_CHECK(opts.queue_capacity >= 1, "serve: queue_capacity must be >= 1");
  TDG_CHECK(opts.max_batch >= 1, "serve: max_batch must be >= 1");
  impl_ = std::make_unique<Impl>(opts);
}

ServeCore::~ServeCore() = default;

Ticket ServeCore::submit(Matrix a, const RequestOptions& ropts) {
  return impl_->submit(std::move(a), ropts);
}

bool ServeCore::drain(double timeout_ms) { return impl_->drain(timeout_ms); }

ServeStats ServeCore::stats() const { return impl_->stats(); }

const ServeOptions& ServeCore::options() const { return impl_->opts; }

}  // namespace tdg::serve
