#include "serve/serve.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <random>
#include <thread>
#include <utility>
#include <vector>

#include "common/fault.h"
#include "common/json.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "plan/plan_cache.h"

namespace tdg::serve {

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
             b - a)
      .count();
}

/// serve.* registry metrics, resolved once. All always-on: a request is
/// control-plane traffic and its accounting must survive disarmed metrics.
struct ServeMetrics {
  obs::Counter* submitted;
  obs::Counter* admitted;
  obs::Counter* rejected;
  obs::Counter* completed;
  obs::Counter* degraded;
  obs::Counter* precision_degraded;
  obs::Counter* failed;
  obs::Counter* retries;
  obs::Counter* breaker_trips;
  obs::Counter* batches;
  obs::Counter* deadline_failures;
  obs::Gauge* queue_depth;
  obs::Gauge* queue_depth_hwm;
  obs::Histogram* latency_us;

  static ServeMetrics& get() {
    static ServeMetrics m = [] {
      obs::Registry& r = obs::Registry::global();
      const auto always = obs::Gating::kAlways;
      return ServeMetrics{r.counter("serve.submitted", always),
                          r.counter("serve.admitted", always),
                          r.counter("serve.rejected", always),
                          r.counter("serve.completed", always),
                          r.counter("serve.degraded", always),
                          r.counter("serve.precision_degraded", always),
                          r.counter("serve.failed", always),
                          r.counter("serve.retries", always),
                          r.counter("serve.breaker_trips", always),
                          r.counter("serve.batches", always),
                          r.counter("serve.deadline_failures", always),
                          r.gauge("serve.queue_depth", always),
                          r.gauge("serve.queue_depth_hwm", always),
                          r.histogram("serve.latency_us", always)};
    }();
    return m;
  }
};

/// Per-bucket circuit breaker (guarded by the core mutex). Closed ->
/// (threshold consecutive failures) -> open for breaker_open_ms -> one
/// half-open probe -> closed on success, reopened on failure.
struct Breaker {
  int consecutive = 0;
  bool open = false;
  bool probing = false;  // a half-open probe is in flight
  Clock::time_point open_until{};
};

/// Transient failure classes that earn a retry instead of failing the
/// request outright. kCancelled is deliberately absent (retrying past a
/// deadline is never useful), as is kInvalidInput (deterministic).
/// kPipelineStall is also excluded: a drain stall may have abandoned a
/// genuinely wedged in-flight worker (task_graph.h drain watchdog), so
/// re-entering the solver in the same process is not safe — a stall fails
/// typed to the caller instead.
bool transient(ErrorCode code) {
  return code == ErrorCode::kFaultInjected;
}

/// The shape-bucket label a request's latency is recorded under:
/// "n<pow2-bucket>v<0|1>", the human-readable projection of the plan-cache
/// bucket key (stable across processes, safe as an OpenMetrics label).
std::string bucket_label(index_t n, bool vectors) {
  return "n" + std::to_string(plan::pow2_bucket(std::max<index_t>(n, 1))) +
         (vectors ? "v1" : "v0");
}

/// Structured per-request log sink, resolved once from TDG_SERVE_REQLOG:
/// unset/empty = disabled, "stderr" or "-" = stderr, anything else = append
/// to that path. nullptr means disabled.
std::FILE* reqlog_stream() {
  static std::FILE* const f = []() -> std::FILE* {
    const char* e = std::getenv("TDG_SERVE_REQLOG");
    if (e == nullptr || *e == '\0') return nullptr;
    if (std::strcmp(e, "stderr") == 0 || std::strcmp(e, "-") == 0) {
      return stderr;
    }
    return std::fopen(e, "a");
  }();
  return f;
}

/// One JSON line per resolved request (schema tdg.reqlog.v1). A single
/// fprintf call so concurrent resolutions don't interleave mid-line.
void log_request(long long request_id, const std::string& bucket,
                 Outcome outcome, ErrorCode code, double queue_ms,
                 double solve_ms, int retries, bool degraded,
                 const std::string& plan_source) {
  std::FILE* f = reqlog_stream();
  if (f == nullptr) return;
  std::fprintf(
      f,
      "{\"schema\":\"tdg.reqlog.v1\",\"req\":%lld,\"bucket\":\"%s\","
      "\"outcome\":\"%s\",\"code\":%d,\"queue_ms\":%.3f,\"solve_ms\":%.3f,"
      "\"retries\":%d,\"degraded\":%s,\"plan_source\":\"%s\"}\n",
      request_id, json::escape(bucket).c_str(), to_string(outcome),
      static_cast<int>(code), queue_ms, solve_ms, retries,
      degraded ? "true" : "false", json::escape(plan_source).c_str());
  std::fflush(f);
}

}  // namespace

const char* to_string(Outcome o) {
  switch (o) {
    case Outcome::kCompleted: return "completed";
    case Outcome::kDegraded: return "degraded";
    case Outcome::kRejected: return "rejected";
    case Outcome::kFailed: return "failed";
  }
  return "failed";
}

struct ServeCore::Impl {
  struct Request {
    Matrix a;
    RequestOptions ropts;
    std::promise<Response> promise;
    std::shared_ptr<cancel::Token> token;
    Clock::time_point submitted_at{};
    std::string admit_key;  // breaker bucket, as admitted (pre-degrade)
    std::string label;      // shape-bucket latency label ("n<pow2>v<0|1>")
    // Minted at submit: every span and flight event this request produces,
    // on whichever thread, carries ctx.request_id.
    obs::TraceContext ctx{};
    bool probe = false;  // the bucket breaker's half-open probe
    int retries = 0;
  };

  explicit Impl(const ServeOptions& o) : opts(o) {
    dispatcher = std::thread([this] { run(); });
    retry_worker = std::thread([this] { retry_loop(); });
  }

  ~Impl() {
    {
      std::lock_guard<std::mutex> lk(mu);
      draining = true;
      stopping = true;
    }
    cv.notify_all();
    dispatcher.join();  // drains the queue (may enqueue retry jobs)
    {
      std::lock_guard<std::mutex> lk(retry_mu);
      retry_stop = true;
    }
    retry_cv.notify_all();
    retry_worker.join();  // runs every remaining retry to resolution
  }

  // ---- admission (caller thread) -------------------------------------

  Ticket submit(Matrix a, const RequestOptions& ropts) {
    ServeMetrics& m = ServeMetrics::get();
    auto token = std::make_shared<cancel::Token>();
    if (ropts.deadline_ms > 0.0) token->set_deadline_in_ms(ropts.deadline_ms);

    auto req = std::make_unique<Request>();
    req->ropts = ropts;
    req->token = token;
    req->submitted_at = Clock::now();
    Ticket ticket{req->promise.get_future(), token};

    const index_t n = a.rows();
    const long long bytes =
        static_cast<long long>(n) * static_cast<long long>(n) * 8;
    req->admit_key = plan::cache_key(plan::ProblemShape{
        std::max<index_t>(n, 1), ropts.vectors, 0, ropts.mode});
    req->label = bucket_label(n, ropts.vectors);
    req->ctx = obs::TraceContext{obs::next_request_id(), 0};

    std::lock_guard<std::mutex> lk(mu);
    ++submitted;
    m.submitted->inc();

    // Admission ladder: every reject is synchronous and typed — the
    // request never consumes queue space or a dispatch slot.
    if (fault::should_fire("serve_admit")) {
      reject(std::move(req), ErrorCode::kFaultInjected,
             "serve: fault injected at admission (serve_admit)");
      return ticket;
    }
    if (draining) {
      reject(std::move(req), ErrorCode::kOverloaded,
             "serve: draining, not admitting new requests");
      return ticket;
    }
    if (static_cast<index_t>(queue.size()) >= opts.queue_capacity) {
      reject(std::move(req), ErrorCode::kOverloaded,
             "serve: queue full (queue_capacity)");
      return ticket;
    }
    if (opts.memory_budget_bytes > 0 &&
        queued_bytes + bytes > opts.memory_budget_bytes) {
      reject(std::move(req), ErrorCode::kOverloaded,
             "serve: queued-matrix memory budget exceeded");
      return ticket;
    }
    Breaker& br = breakers[req->admit_key];
    if (br.open) {
      if (Clock::now() < br.open_until || br.probing) {
        reject(std::move(req), ErrorCode::kOverloaded,
               "serve: circuit breaker open for this shape bucket");
        return ticket;
      }
      // Half-open: let exactly one probe through to decide close/reopen.
      br.probing = true;
      req->probe = true;
    }

    req->a = std::move(a);
    ++admitted;
    m.admitted->inc();
    obs::flight::record(obs::flight::EventKind::kMarker, "serve.admit", n,
                        ropts.vectors ? 1 : 0, req->ctx.request_id);
    queued_bytes += bytes;
    queue.push_back(std::move(req));
    note_depth_locked();
    cv.notify_all();
    return ticket;
  }

  /// Resolve a request as kRejected (mu held; synchronous with submit).
  void reject(std::unique_ptr<Request> req, ErrorCode code,
              const std::string& msg) {
    ++rejected;
    ServeMetrics::get().rejected->inc();
    obs::flight::record(obs::flight::EventKind::kError, "serve.reject",
                        static_cast<long long>(code), 0,
                        req->ctx.request_id);
    log_request(req->ctx.request_id, req->label, Outcome::kRejected, code,
                0.0, 0.0, 0, false, "");
    Response r;
    r.outcome = Outcome::kRejected;
    r.code = code;
    r.message = msg;
    r.request_id = req->ctx.request_id;
    req->promise.set_value(std::move(r));
  }

  void note_depth_locked() {
    const long long depth = static_cast<long long>(queue.size());
    ServeMetrics& m = ServeMetrics::get();
    m.queue_depth->set(depth);
    m.queue_depth_hwm->update_max(depth);
    depth_hwm = std::max(depth_hwm, depth);
    obs::flight::record(obs::flight::EventKind::kMetric, "serve.queue_depth",
                        depth, 0, 0);
  }

  // ---- dispatcher ----------------------------------------------------

  void run() {
    std::unique_lock<std::mutex> lk(mu);
    for (;;) {
      cv.wait(lk, [&] { return !queue.empty() || stopping; });
      if (queue.empty()) break;  // stopping and nothing left to resolve

      // Coalesce window: give same-bucket peers a moment to arrive so a
      // burst becomes one planner pass + one eigh_batched dispatch. Cut
      // short by a full batch, drain, or shutdown.
      if (opts.coalesce_window_ms > 0.0 && !draining) {
        const auto window_end =
            queue.front()->submitted_at +
            std::chrono::microseconds(
                static_cast<long long>(opts.coalesce_window_ms * 1e3));
        cv.wait_until(lk, window_end, [&] {
          return static_cast<int>(queue.size()) >= opts.max_batch ||
                 draining || stopping;
        });
      }

      std::vector<std::unique_ptr<Request>> batch;
      const int take =
          std::min<int>(opts.max_batch, static_cast<int>(queue.size()));
      const index_t depth_at_dispatch = static_cast<index_t>(queue.size());
      for (int i = 0; i < take; ++i) {
        std::unique_ptr<Request> r = std::move(queue.front());
        queue.pop_front();
        const index_t n = r->a.rows();
        queued_bytes -= static_cast<long long>(n) * n * 8;
        batch.push_back(std::move(r));
      }
      in_flight += take;
      note_depth_locked();

      lk.unlock();
      process(std::move(batch), depth_at_dispatch);
      lk.lock();

      if (queue.empty() && in_flight == 0) drain_cv.notify_all();
    }
  }

  /// One request's place in a dispatched batch, after triage.
  struct Slot {
    std::unique_ptr<Request> req;
    bool vectors = false;  // effective, post-degrade
    plan::EvdMode mode = plan::EvdMode::kStandard;  // effective, post-degrade
    bool was_degraded = false;
    double queue_ms = 0.0;
  };

  /// Solve one dispatched batch. Never lets an exception escape to the
  /// dispatcher thread (which would std::terminate the process and leave
  /// the batch's promises unresolved): a batch-level throw — planner
  /// failure, eigh_batched misuse, std::bad_alloc — resolves every
  /// still-unresolved request in the batch with the typed error, keeping
  /// the exactly-once accounting and the dispatcher alive.
  void process(std::vector<std::unique_ptr<Request>> batch,
               index_t depth_at_dispatch) {
    std::vector<Slot> slots;
    slots.reserve(batch.size());
    try {
      process_batch(batch, slots, depth_at_dispatch);
    } catch (...) {
      ErrorCode code = ErrorCode::kUnknown;
      std::string msg = "serve: batch dispatch failed";
      try {
        throw;
      } catch (const Error& err) {
        code = err.code();
        msg = err.what();
      } catch (const std::exception& err) {
        msg = std::string("serve: batch dispatch failed: ") + err.what();
      } catch (...) {
      }
      // Batch-level failures are the flight recorder's raison d'être: dump
      // every thread's recent events (request-tagged) before resolving the
      // batch, while the failing state is still fresh.
      obs::flight::record(obs::flight::EventKind::kError, "serve.batch_fail",
                          static_cast<long long>(code),
                          static_cast<long long>(batch.size()), 0);
      obs::flight::dump("serve batch dispatch failure: " + msg);
      for (Slot& s : slots) {
        if (!s.req) continue;  // already resolved (or handed to retry)
        const bool probe = s.req->probe;
        fail(std::move(s.req), code, msg, s.queue_ms, 0.0, 0, probe);
      }
      for (auto& req : batch) {
        if (!req) continue;  // moved into a slot during triage
        const bool probe = req->probe;
        fail(std::move(req), code, msg, 0.0, 0.0, 0, probe);
      }
    }
  }

  /// process() body: degrade, group by shape bucket, one eigh_batched per
  /// bucket with the warm shared plan, then walk each slot through the
  /// retry/breaker ladder. Requests move from `batch` into `slots` at
  /// triage so the caller's backstop can resolve whatever is left on an
  /// escape at any point.
  void process_batch(std::vector<std::unique_ptr<Request>>& batch,
                     std::vector<Slot>& slots, index_t depth_at_dispatch) {
    ServeMetrics& m = ServeMetrics::get();
    obs::Span span("serve.batch");
    span.attr("requests", static_cast<long long>(batch.size()));
    const Clock::time_point dispatch_tp = Clock::now();

    // Per-request triage: expire, degrade, or enqueue for the bucket solve.
    // `serve_request` fires here — a simulated transient failure of the
    // request's first attempt, sending it straight to the retry rung.
    std::map<std::string, std::vector<std::size_t>> groups;
    for (auto& req : batch) {
      Slot s;
      s.queue_ms = ms_between(req->submitted_at, dispatch_tp);
      s.vectors = req->ropts.vectors;
      s.mode = req->ropts.mode;
      if (req->token->stop_requested()) {
        const bool probe = req->probe;
        fail(std::move(req), ErrorCode::kCancelled,
             "serve: deadline expired before solve", s.queue_ms, 0.0, 0,
             probe);
        continue;
      }
      const bool precision_rung = opts.allow_precision_degraded &&
                                  req->ropts.allow_precision_degraded &&
                                  s.mode == plan::EvdMode::kStandard;
      if (s.vectors && req->ropts.allow_degraded &&
          (opts.allow_degraded || precision_rung)) {
        const bool pressure = opts.degrade_queue_depth > 0 &&
                              depth_at_dispatch > opts.degrade_queue_depth;
        bool deadline_pressure = false;
        if (req->ropts.deadline_ms > 0.0) {
          const double expect = expected_vectors_ms(req->a.rows());
          deadline_pressure =
              expect > 0.0 && req->token->remaining_ms() < expect;
        }
        if (pressure || deadline_pressure) {
          if (precision_rung) {
            // First rung: keep the vectors, drop the reduction to FP32 +
            // FP64 refinement (opt-in — it changes result bits vs FP64).
            s.mode = plan::EvdMode::kMixedPrecision;
          } else {
            s.vectors = false;
          }
          s.was_degraded = true;
        }
      }
      const std::string key = plan::cache_key(plan::ProblemShape{
          std::max<index_t>(req->a.rows(), 1), s.vectors, 0, s.mode});
      s.req = std::move(req);
      if (fault::should_fire("serve_request")) {
        // Transient first-attempt failure: take the retry ladder solo.
        enqueue_retry(std::move(s), key, ErrorCode::kFaultInjected,
                      "serve: fault injected in request solve "
                      "(serve_request)");
        continue;
      }
      slots.push_back(std::move(s));
      groups[key].push_back(slots.size() - 1);
    }

    // One eigh_batched per shape bucket, every problem sharing the
    // bucket's warm plan and carrying its own cancellation token. A throw
    // out of one bucket's planner pass or batch dispatch fails only that
    // bucket's still-unresolved slots; the other buckets still solve.
    for (auto& [key, idxs] : groups) {
      try {
        // Bucket-level work (the warm-plan pass, the batch-span bookkeeping)
        // is attributed to the bucket's first request; per-problem spans get
        // their own slot's context via BatchOptions::trace_contexts.
        obs::ContextScope ctx_scope(slots[idxs[0]].req->ctx);
        const plan::Plan* plan =
            warm_plan(key, slots[idxs[0]].vectors, slots[idxs[0]].mode,
                      slots[idxs[0]].req->a.rows());
        eig::BatchOptions bopts;
        bopts.vectors = slots[idxs[0]].vectors;
        bopts.mode = slots[idxs[0]].mode;
        bopts.plan = opts.plan;
        bopts.solver = opts.solver;
        bopts.check_finite = opts.check_finite;
        bopts.threads = opts.threads;
        bopts.shared_plan = plan;
        std::vector<ConstMatrixView> views;
        views.reserve(idxs.size());
        bopts.tokens.reserve(idxs.size());
        bopts.trace_contexts.reserve(idxs.size());
        for (const std::size_t i : idxs) {
          views.push_back(slots[i].req->a.view());
          bopts.tokens.push_back(slots[i].req->token.get());
          bopts.trace_contexts.push_back(slots[i].req->ctx);
        }
        {
          std::lock_guard<std::mutex> lk(mu);
          ++batches;
        }
        m.batches->inc();
        const eig::BatchResult br = eig::eigh_batched(views, bopts);
        const double per_problem_ms =
            br.seconds * 1e3 / static_cast<double>(idxs.size());

        for (std::size_t j = 0; j < idxs.size(); ++j) {
          Slot& s = slots[idxs[j]];
          const double solve_ms = ms_between(dispatch_tp, Clock::now());
          if (br.status[j].ok) {
            if (s.vectors) note_vectors_ms(key, per_problem_ms);
            succeed(std::move(s.req), eig::EvdResult(br.results[j]),
                    s.was_degraded, s.queue_ms, solve_ms, 0);
          } else {
            route_failure(std::move(s), key, br.status[j].code,
                          br.status[j].message, solve_ms);
          }
        }
      } catch (const Error& err) {
        fail_bucket(slots, idxs, key, err.code(), err.what(), dispatch_tp);
      } catch (const std::exception& err) {
        fail_bucket(slots, idxs, key, ErrorCode::kUnknown,
                    std::string("serve: bucket solve failed: ") + err.what(),
                    dispatch_tp);
      }
    }
  }

  /// Route one failed slot down the ladder: cancellation fails alone,
  /// transient codes go to the retry executor, everything else counts
  /// against the bucket breaker and fails typed.
  void route_failure(Slot&& s, const std::string& key, ErrorCode code,
                     const std::string& msg, double solve_ms) {
    if (code == ErrorCode::kCancelled) {
      const bool probe = s.req->probe;
      fail(std::move(s.req), ErrorCode::kCancelled, msg, s.queue_ms,
           solve_ms, 0, probe);
    } else if (transient(code)) {
      enqueue_retry(std::move(s), key, code, msg);
    } else {
      const bool probe = s.req->probe;
      breaker_failure(s.req->admit_key, probe);
      fail(std::move(s.req), code, msg, s.queue_ms, solve_ms, 0, probe);
    }
  }

  /// A bucket-level failure (the planner pass or eigh_batched itself
  /// threw): every slot of the bucket not yet resolved takes the same
  /// ladder a per-slot failure would.
  void fail_bucket(std::vector<Slot>& slots,
                   const std::vector<std::size_t>& idxs,
                   const std::string& key, ErrorCode code,
                   const std::string& msg, Clock::time_point dispatch_tp) {
    for (const std::size_t i : idxs) {
      if (!slots[i].req) continue;
      route_failure(std::move(slots[i]), key, code, msg,
                    ms_between(dispatch_tp, Clock::now()));
    }
  }

  /// Hand a transient failure to the retry executor so the dispatcher
  /// keeps draining the queue during the backoff and solo re-solve — one
  /// retrying request must not head-of-line block every queued request
  /// behind its backoff sleep. The slot stays accounted as in-flight
  /// until retry_or_fail resolves it on the executor thread.
  void enqueue_retry(Slot&& s, const std::string& key, ErrorCode code,
                     const std::string& msg) {
    auto sp = std::make_shared<Slot>(std::move(s));
    std::lock_guard<std::mutex> lk(retry_mu);
    retry_q.push_back([this, sp, key, code, msg] {
      retry_or_fail(std::move(*sp), key, code, msg);
    });
    retry_cv.notify_one();
  }

  /// Retry executor thread: runs queued retry jobs to resolution, exits
  /// only when told to stop (after the dispatcher joined) AND the queue
  /// is empty, so every handed-off request still resolves exactly once.
  void retry_loop() {
    std::unique_lock<std::mutex> lk(retry_mu);
    for (;;) {
      retry_cv.wait(lk, [&] { return !retry_q.empty() || retry_stop; });
      if (retry_q.empty()) return;  // retry_stop and nothing left
      std::function<void()> job = std::move(retry_q.front());
      retry_q.pop_front();
      lk.unlock();
      job();
      lk.lock();
    }
  }

  /// The retry rung: jittered backoff, then a solo re-solve under the same
  /// token and bucket plan (bitwise-identical configuration to the batch
  /// slot). A second transient failure beyond max_retries, or any
  /// non-transient one, drops to the failure rung. Runs on the retry
  /// executor thread and never throws (an escape would std::terminate).
  void retry_or_fail(Slot&& s, const std::string& key, ErrorCode first_code,
                     const std::string& first_msg) {
    // The solo re-solve runs on the retry executor thread: re-install the
    // request's context so its spans stay attributed across the handoff.
    obs::ContextScope ctx_scope(s.req->ctx);
    ServeMetrics& m = ServeMetrics::get();
    ErrorCode code = first_code;
    std::string msg = first_msg;
    const Clock::time_point t0 = Clock::now();
    while (s.req->retries < opts.max_retries) {
      ++s.req->retries;
      {
        std::lock_guard<std::mutex> lk(mu);
        ++retries;
      }
      m.retries->inc();
      backoff();
      if (s.req->token->stop_requested()) {
        code = ErrorCode::kCancelled;
        msg = "serve: deadline expired before retry";
        break;
      }
      // A persistently-armed serve_request site fails the retry too, so
      // the injection matrix can walk a request all the way down the
      // ladder instead of always being rescued by the first retry.
      if (fault::should_fire("serve_request")) {
        code = ErrorCode::kFaultInjected;
        msg = "serve: fault injected in retry solve (serve_request)";
        continue;
      }
      try {
        const plan::Plan* plan =
            warm_plan(key, s.vectors, s.mode, s.req->a.rows());
        eig::EvdOptions popt;
        popt.vectors = s.vectors;
        popt.mode = s.mode;
        popt.solver = opts.solver;
        popt.tridiag.threads = 1;
        popt.tridiag.bc_threads = 1;
        popt.check_finite = opts.check_finite;
        cancel::Scope scope(s.req->token.get());
        eig::EvdResult r = eig::eigh(s.req->a.view(), popt, *plan);
        const double solve_ms = ms_between(t0, Clock::now());
        const int used = s.req->retries;
        succeed(std::move(s.req), std::move(r), s.was_degraded, s.queue_ms,
                solve_ms, used);
        return;
      } catch (const Error& err) {
        code = err.code();
        msg = err.what();
        if (!transient(code)) break;
      } catch (const std::exception& err) {
        code = ErrorCode::kUnknown;
        msg = err.what();
        break;
      } catch (...) {
        code = ErrorCode::kUnknown;
        msg = "serve: retry solve failed with an untyped exception";
        break;
      }
    }
    const double solve_ms = ms_between(t0, Clock::now());
    const bool probe = s.req->probe;
    const int used = s.req->retries;
    if (code != ErrorCode::kCancelled) {
      breaker_failure(s.req->admit_key, probe);
    }
    fail(std::move(s.req), code, msg, s.queue_ms, solve_ms, used, probe);
  }

  void backoff() {
    double jitter;
    {
      std::lock_guard<std::mutex> lk(mu);
      jitter = jitter_dist(rng);
    }
    const double ms = opts.retry_backoff_ms * jitter;
    if (ms > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(static_cast<long long>(ms * 1e3)));
    }
  }

  // ---- resolution ----------------------------------------------------

  void succeed(std::unique_ptr<Request> req, eig::EvdResult&& result,
               bool was_degraded, double queue_ms, double solve_ms,
               int used_retries) {
    ServeMetrics& m = ServeMetrics::get();
    breaker_success(req->admit_key, req->probe);
    Response r;
    r.outcome = was_degraded ? Outcome::kDegraded : Outcome::kCompleted;
    r.mode = result.mode;  // effective: post-degrade, post-recovery
    // The precision rung keeps the vectors; a degraded resolution that
    // still carries them (or that fell back fp32->fp64, mode kStandard
    // with a recovery tag) took that rung rather than eigenvalues-only.
    const bool precision_rung =
        was_degraded && r.mode != plan::EvdMode::kValuesOnly;
    r.result = std::move(result);
    r.queue_ms = queue_ms;
    r.solve_ms = solve_ms;
    r.retries = used_retries;
    r.request_id = req->ctx.request_id;
    const double latency = ms_between(req->submitted_at, Clock::now());
    {
      std::lock_guard<std::mutex> lk(mu);
      if (was_degraded) {
        ++degraded;
        if (precision_rung) ++precision_degraded;
      } else {
        ++completed;
      }
      note_latency_locked(latency);
      --in_flight;
      if (queue.empty() && in_flight == 0) drain_cv.notify_all();
    }
    (was_degraded ? m.degraded : m.completed)->inc();
    if (precision_rung) m.precision_degraded->inc();
    m.latency_us->record(static_cast<long long>(latency * 1e3));
    record_latency_ms(latency, req->label);
    obs::flight::record(obs::flight::EventKind::kMarker, "serve.resolve",
                        std::llround(latency * 1e3), was_degraded ? 1 : 0,
                        req->ctx.request_id);
    log_request(req->ctx.request_id, req->label, r.outcome,
                ErrorCode::kUnknown, queue_ms, solve_ms, used_retries,
                was_degraded, r.result.plan_source);
    req->promise.set_value(std::move(r));
  }

  void fail(std::unique_ptr<Request> req, ErrorCode code,
            const std::string& msg, double queue_ms, double solve_ms,
            int used_retries, bool was_probe) {
    ServeMetrics& m = ServeMetrics::get();
    if (was_probe) release_probe(req->admit_key);
    Response r;
    r.outcome = Outcome::kFailed;
    r.code = code;
    r.message = msg;
    r.queue_ms = queue_ms;
    r.solve_ms = solve_ms;
    r.retries = used_retries;
    r.request_id = req->ctx.request_id;
    const double latency = ms_between(req->submitted_at, Clock::now());
    {
      std::lock_guard<std::mutex> lk(mu);
      ++failed;
      if (code == ErrorCode::kCancelled) ++deadline_failures;
      note_latency_locked(latency);
      --in_flight;
      if (queue.empty() && in_flight == 0) drain_cv.notify_all();
    }
    m.failed->inc();
    if (code == ErrorCode::kCancelled) m.deadline_failures->inc();
    m.latency_us->record(static_cast<long long>(latency * 1e3));
    record_latency_ms(latency, req->label);
    obs::flight::record(obs::flight::EventKind::kError, "serve.fail",
                        static_cast<long long>(code), used_retries,
                        req->ctx.request_id);
    log_request(req->ctx.request_id, req->label, Outcome::kFailed, code,
                queue_ms, solve_ms, used_retries, false, "");
    req->promise.set_value(std::move(r));
  }

  /// Feed one resolution latency into the explicit-bound histograms: the
  /// per-instance aggregate behind ServeStats::hist_p*, and the registry's
  /// labelled "serve.latency_ms" series (the "" aggregate plus this
  /// request's shape bucket) behind the OpenMetrics exposition.
  void record_latency_ms(double ms, const std::string& label) {
    latency_hist.record(ms);
    obs::Registry& r = obs::Registry::global();
    r.latency("serve.latency_ms", "")->record(ms);
    r.latency("serve.latency_ms", label)->record(ms);
  }

  // ---- breaker / plan / ewma (mu) ------------------------------------

  void breaker_success(const std::string& key, bool was_probe) {
    std::lock_guard<std::mutex> lk(mu);
    Breaker& b = breakers[key];
    b.consecutive = 0;
    b.open = false;
    if (was_probe) b.probing = false;
  }

  void breaker_failure(const std::string& key, bool was_probe) {
    ServeMetrics& m = ServeMetrics::get();
    std::lock_guard<std::mutex> lk(mu);
    Breaker& b = breakers[key];
    if (was_probe) {
      // Failed half-open probe: reopen for another full window.
      b.probing = false;
      b.open = true;
      b.open_until = Clock::now() + std::chrono::microseconds(static_cast<
                         long long>(opts.breaker_open_ms * 1e3));
      ++breaker_trips;
      m.breaker_trips->inc();
      return;
    }
    ++b.consecutive;
    if (!b.open && opts.breaker_threshold > 0 &&
        b.consecutive >= opts.breaker_threshold) {
      b.open = true;
      b.open_until = Clock::now() + std::chrono::microseconds(static_cast<
                         long long>(opts.breaker_open_ms * 1e3));
      ++breaker_trips;
      m.breaker_trips->inc();
    }
  }

  /// A cancelled probe neither closes nor reopens the breaker — it just
  /// frees the probe slot so the next request can probe.
  void release_probe(const std::string& key) {
    std::lock_guard<std::mutex> lk(mu);
    breakers[key].probing = false;
  }

  /// One shape bucket's shared plan plus its build state. Lives in a
  /// node-based map so the address is stable for the life of the service;
  /// `plan` is immutable once `ready`, so callers may keep the pointer
  /// without holding the slot mutex.
  struct PlanSlot {
    std::mutex m;
    std::condition_variable cv;
    bool ready = false;
    bool building = false;  // a builder runs outside the lock
    plan::Plan plan;
  };

  /// The bucket's shared plan, resolved once (one planner pass per bucket
  /// for the life of the service) and reused warm by every batch. Only
  /// the map lookup holds the core mutex: the planner pass itself — which
  /// under PlanMode::kMeasure runs real measured solves — happens under
  /// the bucket's own build slot, so concurrent submit()/stats()/drain()
  /// never block on planning and only same-bucket callers wait for it.
  const plan::Plan* warm_plan(const std::string& key, bool vectors,
                              plan::EvdMode mode, index_t n) {
    PlanSlot* slot;
    {
      std::lock_guard<std::mutex> lk(mu);
      slot = &plans[key];
    }
    std::unique_lock<std::mutex> lk(slot->m);
    for (;;) {
      if (slot->ready) return &slot->plan;
      if (!slot->building) break;
      slot->cv.wait(lk);  // another thread is building this bucket's plan
    }
    slot->building = true;
    lk.unlock();
    plan::Plan built;
    try {
      eig::BatchOptions bopts;
      bopts.vectors = vectors;
      bopts.mode = mode;
      bopts.plan = opts.plan;
      built = eig::batch_bucket_plan(n, bopts);
    } catch (...) {
      lk.lock();
      slot->building = false;  // let the next same-bucket caller retry
      slot->cv.notify_all();
      throw;
    }
    lk.lock();
    slot->plan = std::move(built);
    slot->ready = true;
    slot->building = false;
    slot->cv.notify_all();
    return &slot->plan;
  }

  double expected_vectors_ms(index_t n) {
    const std::string key = plan::cache_key(
        plan::ProblemShape{std::max<index_t>(n, 1), true, 0});
    std::lock_guard<std::mutex> lk(mu);
    const auto it = solve_ewma_ms.find(key);
    return it == solve_ewma_ms.end() ? 0.0 : it->second;
  }

  void note_vectors_ms(const std::string& key, double ms) {
    std::lock_guard<std::mutex> lk(mu);
    double& e = solve_ewma_ms[key];
    e = e == 0.0 ? ms : 0.7 * e + 0.3 * ms;
  }

  /// Bounded latency sample (Algorithm R reservoir, deterministic rng):
  /// exact percentiles until kLatencyReservoir requests have resolved, a
  /// uniform sample of the whole history after — memory stays flat and
  /// stats() stays O(capacity) for the long-running-service case. The
  /// serve.latency_us histogram remains the exact aggregate record.
  void note_latency_locked(double ms) {
    ++latency_seen;
    if (latencies_ms.size() < kLatencyReservoir) {
      latencies_ms.push_back(ms);
      return;
    }
    std::uniform_int_distribution<long long> pick(0, latency_seen - 1);
    const long long j = pick(reservoir_rng);
    if (j < static_cast<long long>(kLatencyReservoir)) {
      latencies_ms[static_cast<std::size_t>(j)] = ms;
    }
  }

  // ---- drain / stats -------------------------------------------------

  bool drain(double timeout_ms) {
    std::unique_lock<std::mutex> lk(mu);
    draining = true;
    cv.notify_all();
    const auto done = [&] { return queue.empty() && in_flight == 0; };
    if (timeout_ms <= 0.0) {
      drain_cv.wait(lk, done);
      return true;
    }
    return drain_cv.wait_for(
        lk,
        std::chrono::microseconds(static_cast<long long>(timeout_ms * 1e3)),
        done);
  }

  ServeStats stats() const {
    ServeStats s;
    std::vector<double> lat;
    {
      std::lock_guard<std::mutex> lk(mu);
      s.submitted = submitted;
      s.admitted = admitted;
      s.rejected = rejected;
      s.completed = completed;
      s.degraded = degraded;
      s.precision_degraded = precision_degraded;
      s.failed = failed;
      s.retries = retries;
      s.breaker_trips = breaker_trips;
      s.batches = batches;
      s.deadline_failures = deadline_failures;
      s.queue_depth = static_cast<long long>(queue.size());
      s.queue_depth_hwm = depth_hwm;
      lat = latencies_ms;
    }
    if (!lat.empty()) {
      std::sort(lat.begin(), lat.end());
      const auto pct = [&](double p) {
        const std::size_t i = static_cast<std::size_t>(
            p * static_cast<double>(lat.size() - 1) + 0.5);
        return lat[std::min(i, lat.size() - 1)];
      };
      s.p50_ms = pct(0.50);
      s.p95_ms = pct(0.95);
      s.p99_ms = pct(0.99);
    }
    if (latency_hist.count() > 0) {
      s.hist_p50_ms = latency_hist.percentile(0.50);
      s.hist_p95_ms = latency_hist.percentile(0.95);
      s.hist_p99_ms = latency_hist.percentile(0.99);
    }
    return s;
  }

  // ---- state ---------------------------------------------------------

  const ServeOptions opts;
  mutable std::mutex mu;
  std::condition_variable cv;        // queue activity / shutdown
  std::condition_variable drain_cv;  // queue empty and nothing in flight
  std::deque<std::unique_ptr<Request>> queue;
  long long queued_bytes = 0;
  int in_flight = 0;  // popped, not yet resolved
  bool draining = false;
  bool stopping = false;

  long long submitted = 0;
  long long admitted = 0;
  long long rejected = 0;
  long long completed = 0;
  long long degraded = 0;
  long long precision_degraded = 0;
  long long failed = 0;
  long long retries = 0;
  long long breaker_trips = 0;
  long long batches = 0;
  long long deadline_failures = 0;
  long long depth_hwm = 0;

  static constexpr std::size_t kLatencyReservoir = 4096;
  std::vector<double> latencies_ms;  // bounded: note_latency_locked
  long long latency_seen = 0;

  // Per-instance aggregate of the canonical latency ladder (lock-free;
  // recorded outside mu). Backs ServeStats::hist_p50/p95/p99 without
  // cross-instance pollution from the shared registry series.
  int latency_nb = 0;
  const double* latency_bounds = obs::latency_bounds_ms(&latency_nb);
  obs::BoundedHistogram latency_hist{latency_bounds, latency_nb};

  std::map<std::string, Breaker> breakers;
  std::map<std::string, PlanSlot> plans;
  std::map<std::string, double> solve_ewma_ms;  // vectors solves, per bucket

  // Deterministic backoff jitter and reservoir sampling (fixed seeds:
  // reproducible schedules and samples).
  std::mt19937 rng{0x5eedu};
  std::uniform_real_distribution<double> jitter_dist{0.5, 1.5};
  std::mt19937_64 reservoir_rng{0x7e5e70a1ull};

  std::thread dispatcher;

  // Retry executor (its own mutex: jobs lock `mu` while resolving).
  std::mutex retry_mu;
  std::condition_variable retry_cv;
  std::deque<std::function<void()>> retry_q;
  bool retry_stop = false;
  std::thread retry_worker;
};

ServeCore::ServeCore(const ServeOptions& opts) {
  TDG_CHECK(opts.queue_capacity >= 1, "serve: queue_capacity must be >= 1");
  TDG_CHECK(opts.max_batch >= 1, "serve: max_batch must be >= 1");
  impl_ = std::make_unique<Impl>(opts);
}

ServeCore::~ServeCore() = default;

Ticket ServeCore::submit(Matrix a, const RequestOptions& ropts) {
  return impl_->submit(std::move(a), ropts);
}

bool ServeCore::drain(double timeout_ms) { return impl_->drain(timeout_ms); }

ServeStats ServeCore::stats() const { return impl_->stats(); }

const ServeOptions& ServeCore::options() const { return impl_->opts; }

}  // namespace tdg::serve
