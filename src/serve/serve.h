// tdg::serve — a resilient EVD service layer in front of eigh_batched.
//
// ServeCore turns the library from a call-and-wait kernel into something a
// long-running service can sit on: requests are admitted against explicit
// queue and memory budgets, carry per-request deadlines that propagate as
// cooperative cancellation (common/cancel.h) through every pipeline phase,
// and are coalesced by shape bucket so a burst of same-sized problems costs
// one planner pass and one eigh_batched dispatch instead of N cold solves.
// Failures walk a typed ladder instead of taking the process down:
//
//   admission   — queue full, memory budget exceeded, bucket breaker open,
//                 or draining: the request is REJECTED synchronously with
//                 Error-code semantics (kOverloaded), never queued.
//   deadline    — a request whose deadline expires mid-solve unwinds with
//                 kCancelled at the next phase boundary (sy2sb/DBBR block,
//                 bulge-chase sweep claim, D&C merge, back-transform panel)
//                 and fails alone; the pool and the plan cache stay
//                 reusable (asserted bitwise in tests/serve_test.cc).
//   degradation — under queue pressure, or when the remaining deadline is
//                 smaller than the bucket's observed vectors-solve time, a
//                 vectors request degrades (outcome kDegraded) rather than
//                 missing its deadline. The ladder has two rungs, tried in
//                 order: mixed precision (FP32 compute + FP64 refinement,
//                 vectors kept; OPT-IN via allow_precision_degraded, default
//                 off) and eigenvalues-only (vectors dropped).
//   retry       — transient failures (kFaultInjected) retry once
//                 (max_retries) with jittered backoff, solo, under the
//                 same token and bucket plan, on a dedicated retry
//                 executor so the dispatcher keeps draining the queue
//                 during the backoff. kPipelineStall is deliberately not
//                 retried: a drain stall may abandon a wedged worker, so
//                 it fails typed instead.
//   breaker     — breaker_threshold consecutive non-cancellation failures
//                 in one shape bucket trip a per-bucket circuit breaker:
//                 subsequent requests for that bucket are shed at admission
//                 with kOverloaded for breaker_open_ms, then a single
//                 half-open probe decides reopen vs close.
//
// Every request resolves to exactly one Outcome — kCompleted, kDegraded,
// kRejected, or kFailed — so submitted == completed + degraded + rejected +
// failed always holds (ServeStats::accounted); the CI soak job asserts it
// under fault injection.
//
// Determinism: solved requests run one-per-pool-worker at an intra-problem
// thread budget of 1 with the bucket's warm shared plan — bitwise identical
// to a standalone eigh() with batch_bucket_plan(n), whatever the batch
// composition, retry count, or arrival order.
//
// Observability: serve.* metrics (docs/ALGORITHMS.md §12), a serve.request
// span per dispatch, a latency histogram behind ServeStats p50/p95/p99.
// Fault sites `serve_admit` (admission rejects) and `serve_request`
// (transient solve failure, exercising the retry ladder) plug into the CI
// fault matrix. Every submit mints a process-unique request id
// (obs::next_request_id) whose obs::TraceContext travels with the request
// through the dispatcher, eigh_batched slots, and the retry executor, so
// armed traces reconstruct one flow per request and flight-recorder dumps
// name the owning request. Resolutions feed per-shape-bucket explicit-bound
// latency histograms ("serve.latency_ms", OpenMetrics-exposable via
// obs::Registry::openmetrics_text and the wire protocol's METRICS verb),
// and TDG_SERVE_REQLOG=<path|stderr> emits one structured JSON log line
// per resolved request (schema tdg.reqlog.v1).
//
// Transport-agnostic: ServeCore is in-process (bench_serve drives it
// directly); examples/serve_main.cc wraps it in a line-protocol TCP front
// end via src/serve/wire.h.
#pragma once

#include <future>
#include <memory>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/check.h"
#include "eig/batched.h"
#include "eig/drivers.h"
#include "la/matrix.h"

namespace tdg::serve {

/// Server-wide configuration, fixed at construction.
struct ServeOptions {
  /// Maximum admitted-but-unsolved requests; submit() beyond this rejects
  /// with kOverloaded.
  index_t queue_capacity = 256;
  /// Maximum bytes of queued request matrices (n*n*8 each); 0 = unlimited.
  long long memory_budget_bytes = 0;
  /// How long the dispatcher waits after the first queued request for
  /// same-bucket peers to coalesce into one batch. 0 = dispatch eagerly.
  double coalesce_window_ms = 2.0;
  /// Maximum requests per dispatch (one eigh_batched call per bucket).
  int max_batch = 64;
  /// Pool workers per dispatch (BatchOptions::threads; 0 = ambient budget).
  int threads = 0;
  /// Transient-failure retries per request (0 disables the retry rung).
  int max_retries = 1;
  /// Base backoff before a retry; jittered to [0.5, 1.5]x deterministically.
  double retry_backoff_ms = 5.0;
  /// Server-wide switch for the eigenvalues-only degradation rung.
  bool allow_degraded = true;
  /// Server-wide switch for the mixed-precision degradation rung, tried
  /// BEFORE eigenvalues-only: a standard-mode vectors request under
  /// pressure keeps its vectors but runs the FP32 engine + FP64 refinement
  /// (plan::EvdMode::kMixedPrecision). Off by default — the rung changes
  /// result bits versus the FP64 path, so a deployment must opt in.
  bool allow_precision_degraded = false;
  /// Queue depth (at dispatch) beyond which vectors requests degrade to
  /// eigenvalues-only; 0 = never degrade on queue pressure alone.
  index_t degrade_queue_depth = 0;
  /// Consecutive failures in one shape bucket that trip its breaker.
  int breaker_threshold = 5;
  /// How long a tripped breaker sheds the bucket before one half-open
  /// probe is let through.
  double breaker_open_ms = 1000.0;
  /// How the per-bucket shared plans are produced.
  PlanMode plan = PlanMode::kHeuristic;
  /// Primary tridiagonal solver (the in-problem fallback chain applies).
  eig::TridiagSolver solver = eig::TridiagSolver::kDivideConquer;
  /// Per-request NaN/Inf screen (a bad input fails its own request only).
  bool check_finite = true;
};

/// Per-request options.
struct RequestOptions {
  /// Compute eigenvectors (may be degraded to false, see allow_degraded).
  bool vectors = true;
  /// Requested execution mode (plan::EvdMode; normalization rules in
  /// eig::EvdOptions::mode). The response echoes the EFFECTIVE mode, which
  /// may differ: degradation rungs and fp32->fp64 recovery both change it.
  plan::EvdMode mode = plan::EvdMode::kStandard;
  /// Relative deadline in ms from submit; 0 = none. Propagates as a
  /// cancel::Token deadline through every pipeline phase.
  double deadline_ms = 0.0;
  /// Allow this request to take a degradation rung at all.
  bool allow_degraded = true;
  /// Allow the mixed-precision rung specifically (requires the server-wide
  /// ServeOptions::allow_precision_degraded opt-in as well).
  bool allow_precision_degraded = true;
};

/// Exactly-once request resolution.
enum class Outcome {
  kCompleted,  // solved as asked
  kDegraded,   // solved eigenvalues-only under pressure
  kRejected,   // never ran: admission control or breaker shed
  kFailed,     // ran (or expired) and failed with a typed error
};

const char* to_string(Outcome o);

/// What a request's future resolves to. `result` is meaningful for
/// kCompleted / kDegraded; `code`/`message` for kRejected / kFailed.
struct Response {
  Outcome outcome = Outcome::kFailed;
  ErrorCode code = ErrorCode::kUnknown;
  std::string message;
  /// The execution mode that actually produced `result` (meaningful for
  /// kCompleted / kDegraded): the requested mode after any degradation
  /// rung and any fp32->fp64 recovery inside the solve.
  plan::EvdMode mode = plan::EvdMode::kStandard;
  eig::EvdResult result;
  double queue_ms = 0.0;  // admit -> dispatch
  double solve_ms = 0.0;  // dispatch -> resolution (includes retries)
  int retries = 0;        // transient-failure retries consumed
  /// Process-unique id minted at submit (even for synchronous rejects);
  /// the same id tags every armed-trace span and flight-recorder event
  /// this request produced ("req" in the Chrome-trace args).
  long long request_id = 0;
};

/// A submitted request: the response future plus the request's cancellation
/// token (cancel() aborts the solve at the next phase boundary).
struct Ticket {
  std::future<Response> response;
  std::shared_ptr<cancel::Token> token;
};

/// Service counters (exact; sampled live) and latency percentiles of
/// resolved requests, computed over a bounded deterministic reservoir
/// sample (exact until the reservoir fills, ~4k resolutions; the
/// serve.latency_us histogram stays the exact aggregate record).
struct ServeStats {
  long long submitted = 0;
  long long admitted = 0;
  long long rejected = 0;
  long long completed = 0;
  long long degraded = 0;
  /// Of `degraded`, the requests that took the mixed-precision rung
  /// (vectors kept). degraded - precision_degraded took eigenvalues-only.
  long long precision_degraded = 0;
  long long failed = 0;
  long long retries = 0;
  long long breaker_trips = 0;
  long long batches = 0;            // eigh_batched dispatches
  long long deadline_failures = 0;  // kCancelled resolutions
  long long queue_depth = 0;
  long long queue_depth_hwm = 0;
  double p50_ms = 0.0;  // submit -> resolution, resolved requests only
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  // The same percentiles estimated from the explicit-bound latency
  // histogram (obs::latency_bounds_ms ladder) that backs the OpenMetrics
  // "tdg_serve_latency_ms" series: each is the upper bound of the bucket
  // holding the percentile sample, so it agrees with the reservoir-derived
  // value above to within one bucket bound (asserted in serve_test).
  double hist_p50_ms = 0.0;
  double hist_p95_ms = 0.0;
  double hist_p99_ms = 0.0;

  /// The exactly-once invariant: every submitted request has resolved to
  /// one outcome. Holds whenever no request is queued or in flight.
  bool accounted() const {
    return submitted == completed + degraded + rejected + failed;
  }
};

/// The transport-agnostic service core. One dispatcher thread owns the
/// queue; solves fan out through eigh_batched on the shared pool.
/// Thread-safe: submit()/stats()/drain() may race freely.
class ServeCore {
 public:
  explicit ServeCore(const ServeOptions& opts = {});
  /// Drains (stops admitting, resolves everything queued), then joins.
  ~ServeCore();
  ServeCore(const ServeCore&) = delete;
  ServeCore& operator=(const ServeCore&) = delete;

  /// Submit one symmetric problem (lower triangle read; the matrix is
  /// owned by the service until resolution). Admission control runs
  /// synchronously: a rejected request's future is already resolved when
  /// submit returns. Never throws for per-request failures.
  Ticket submit(Matrix a, const RequestOptions& ropts = {});

  /// Stop admitting (subsequent submits reject with kOverloaded) and wait
  /// until every queued/in-flight request has resolved. Returns false on
  /// timeout (timeout_ms <= 0 = wait forever). Idempotent.
  bool drain(double timeout_ms = 0.0);

  ServeStats stats() const;

  const ServeOptions& options() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace tdg::serve
