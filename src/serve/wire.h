// Line protocol for the EVD service front end — parsing and formatting
// only, no I/O, so the protocol is unit-testable without sockets
// (tests/serve_test.cc) and reusable by any transport
// (examples/serve_main.cc wraps it in POSIX TCP).
//
// Requests, one per line, space-separated key=value fields after a verb:
//
//   solve id=<n> n=<dim> [vectors=0|1] [deadline_ms=<ms>] [degrade=0|1]
//         [seed=<u64>] [mode=standard|values|mixed] [prec=fp64|fp32]
//       Solve one synthetic symmetric problem: the matrix is generated
//       server-side from `seed` (la::random_symmetric, deterministic), so
//       the protocol stays line-oriented — a benchmarking/acceptance
//       front end, not a bulk-data plane. `mode` selects the execution
//       mode (plan::EvdMode); `prec=fp32` is the precision-axis spelling
//       of mode=mixed (the two may be combined only when they agree).
//       Unknown fields are REJECTED with a kBad parse diagnostic — the
//       protocol is strict, so a typo'd knob can never silently no-op.
//   stats    — one stats line
//   metrics  — the full metrics registry as OpenMetrics/Prometheus text
//   drain    — stop admitting, resolve everything queued, then ack
//   quit     — close this connection
//
// Responses, one line per request:
//
//   ok id=<n> req=<rid> outcome=completed|degraded mode=<effective> n=<dim>
//      w_min=<v> w_max=<v> queue_ms=<v> solve_ms=<v> retries=<k>
//   err id=<n> req=<rid> outcome=rejected|failed code=<error-code> msg="..."
//
// `mode` echoes the EFFECTIVE execution mode (standard|values|mixed): a
// degraded request reports the rung it landed on, and a mixed request that
// fell back to full FP64 (recovery fp32->fp64) reports standard. The
// framing — one space-separated line per resolution, key=value fields, ok/
// err discriminator first — is unchanged from the pre-mode protocol.
//   stats {...ServeStats as a JSON object...}
//   bye
//
// `req` is the server-minted request id (Response::request_id): the same
// id tags every trace span and flight-recorder event the request produced,
// so a wire client can join its responses against a Chrome-trace export.
// The metrics verb is the one multi-line response; its payload is
// terminated by the OpenMetrics "# EOF" line, which doubles as the
// protocol's framing sentinel (clients read lines until "# EOF").
#pragma once

#include <string>

#include "serve/serve.h"

namespace tdg::serve::wire {

/// A parsed request line.
struct ParsedRequest {
  enum Kind { kSolve, kStats, kMetrics, kDrain, kQuit, kBad };
  Kind kind = kBad;
  long long id = 0;                // client-chosen correlation id
  index_t n = 0;                   // problem size (kSolve)
  unsigned long long seed = 1;     // matrix-synthesis seed (kSolve)
  RequestOptions opts;             // vectors / deadline_ms / degrade
  std::string error;               // parse diagnostic (kBad)
};

/// Parse one request line (newline-free). Never throws; malformed input
/// yields kBad with a diagnostic.
ParsedRequest parse_line(const std::string& line);

/// Format a resolved response for request `id` (no trailing newline).
std::string format_response(long long id, const Response& r);

/// Format a stats line (no trailing newline).
std::string format_stats(const ServeStats& s);

/// The metrics-verb payload: the global registry rendered as OpenMetrics
/// text (obs::Registry::openmetrics_text), "# EOF"-terminated.
std::string format_metrics();

}  // namespace tdg::serve::wire
