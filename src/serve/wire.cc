#include "serve/wire.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "obs/metrics.h"

namespace tdg::serve::wire {

namespace {

std::vector<std::string> split_ws(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) out.push_back(tok);
  return out;
}

/// key=value field accessor over the tokenized line (first token is the
/// verb). Returns false when the key is absent.
bool field(const std::vector<std::string>& toks, const std::string& key,
           std::string* out) {
  const std::string prefix = key + "=";
  for (std::size_t i = 1; i < toks.size(); ++i) {
    if (toks[i].rfind(prefix, 0) == 0) {
      *out = toks[i].substr(prefix.size());
      return true;
    }
  }
  return false;
}

bool to_ll(const std::string& s, long long* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

bool to_double(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

ParsedRequest bad(const std::string& why) {
  ParsedRequest p;
  p.kind = ParsedRequest::kBad;
  p.error = why;
  return p;
}

}  // namespace

ParsedRequest parse_line(const std::string& line) {
  const std::vector<std::string> toks = split_ws(line);
  if (toks.empty()) return bad("empty line");
  const std::string& verb = toks[0];
  ParsedRequest p;
  if (verb == "stats") {
    p.kind = ParsedRequest::kStats;
    return p;
  }
  if (verb == "metrics") {
    p.kind = ParsedRequest::kMetrics;
    return p;
  }
  if (verb == "drain") {
    p.kind = ParsedRequest::kDrain;
    return p;
  }
  if (verb == "quit") {
    p.kind = ParsedRequest::kQuit;
    return p;
  }
  if (verb != "solve") return bad("unknown verb '" + verb + "'");

  // Strict field vocabulary: an unknown (or malformed) token is a parse
  // error, never a silent no-op — a client typo'ing "vectros=0" must hear
  // about it instead of paying for an unwanted vectors solve.
  static const char* const kSolveFields[] = {
      "id", "n", "seed", "vectors", "degrade", "deadline_ms", "mode", "prec"};
  for (std::size_t i = 1; i < toks.size(); ++i) {
    const std::size_t eq = toks[i].find('=');
    if (eq == std::string::npos || eq == 0) {
      return bad("malformed field '" + toks[i] + "' (expected key=value)");
    }
    const std::string key = toks[i].substr(0, eq);
    bool known = false;
    for (const char* f : kSolveFields) known = known || key == f;
    if (!known) return bad("unknown field '" + key + "'");
  }

  p.kind = ParsedRequest::kSolve;
  std::string v;
  long long ll = 0;
  if (field(toks, "id", &v)) {
    if (!to_ll(v, &ll)) return bad("bad id");
    p.id = ll;
  }
  if (!field(toks, "n", &v) || !to_ll(v, &ll) || ll < 1) {
    return bad("solve requires n=<positive dim>");
  }
  p.n = static_cast<index_t>(ll);
  if (field(toks, "seed", &v)) {
    if (!to_ll(v, &ll) || ll < 0) return bad("bad seed");
    p.seed = static_cast<unsigned long long>(ll);
  }
  if (field(toks, "vectors", &v)) {
    if (!to_ll(v, &ll) || (ll != 0 && ll != 1)) return bad("bad vectors");
    p.opts.vectors = ll == 1;
  }
  if (field(toks, "degrade", &v)) {
    if (!to_ll(v, &ll) || (ll != 0 && ll != 1)) return bad("bad degrade");
    p.opts.allow_degraded = ll == 1;
  }
  if (field(toks, "deadline_ms", &v)) {
    double d = 0.0;
    if (!to_double(v, &d) || d < 0.0) return bad("bad deadline_ms");
    p.opts.deadline_ms = d;
  }
  bool mode_set = false;
  if (field(toks, "mode", &v)) {
    if (v == "standard") {
      p.opts.mode = plan::EvdMode::kStandard;
    } else if (v == "values") {
      p.opts.mode = plan::EvdMode::kValuesOnly;
    } else if (v == "mixed") {
      p.opts.mode = plan::EvdMode::kMixedPrecision;
    } else {
      return bad("bad mode (standard|values|mixed)");
    }
    mode_set = true;
  }
  if (field(toks, "prec", &v)) {
    // The precision-axis spelling: fp32 = mode=mixed. Tolerated alongside
    // an explicit mode= only when the two agree.
    if (v == "fp32") {
      if (mode_set && p.opts.mode != plan::EvdMode::kMixedPrecision) {
        return bad("prec=fp32 conflicts with mode");
      }
      p.opts.mode = plan::EvdMode::kMixedPrecision;
    } else if (v == "fp64") {
      if (mode_set && p.opts.mode == plan::EvdMode::kMixedPrecision) {
        return bad("prec=fp64 conflicts with mode=mixed");
      }
    } else {
      return bad("bad prec (fp64|fp32)");
    }
  }
  return p;
}

std::string format_response(long long id, const Response& r) {
  char buf[256];
  if (r.outcome == Outcome::kCompleted || r.outcome == Outcome::kDegraded) {
    double w_min = 0.0, w_max = 0.0;
    if (!r.result.eigenvalues.empty()) {
      const auto [lo, hi] = std::minmax_element(r.result.eigenvalues.begin(),
                                                r.result.eigenvalues.end());
      w_min = *lo;
      w_max = *hi;
    }
    std::snprintf(buf, sizeof(buf),
                  "ok id=%lld req=%lld outcome=%s mode=%s n=%lld "
                  "w_min=%.17g w_max=%.17g queue_ms=%.3f solve_ms=%.3f "
                  "retries=%d",
                  id, r.request_id, to_string(r.outcome),
                  plan::to_string(r.mode),
                  static_cast<long long>(r.result.eigenvalues.size()), w_min,
                  w_max, r.queue_ms, r.solve_ms, r.retries);
    return buf;
  }
  std::string msg = r.message;
  std::replace(msg.begin(), msg.end(), '"', '\'');
  std::snprintf(buf, sizeof(buf), "err id=%lld req=%lld outcome=%s code=%s "
                "msg=\"", id, r.request_id, to_string(r.outcome),
                to_string(r.code));
  return std::string(buf) + msg + "\"";
}

std::string format_stats(const ServeStats& s) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "stats {\"submitted\":%lld,\"admitted\":%lld,\"rejected\":%lld,"
      "\"completed\":%lld,\"degraded\":%lld,\"precision_degraded\":%lld,"
      "\"failed\":%lld,"
      "\"retries\":%lld,\"breaker_trips\":%lld,\"batches\":%lld,"
      "\"deadline_failures\":%lld,\"queue_depth\":%lld,"
      "\"queue_depth_hwm\":%lld,\"p50_ms\":%.3f,\"p95_ms\":%.3f,"
      "\"p99_ms\":%.3f,\"hist_p50_ms\":%.3f,\"hist_p95_ms\":%.3f,"
      "\"hist_p99_ms\":%.3f,\"accounted\":%s}",
      s.submitted, s.admitted, s.rejected, s.completed, s.degraded,
      s.precision_degraded, s.failed,
      s.retries, s.breaker_trips, s.batches, s.deadline_failures,
      s.queue_depth, s.queue_depth_hwm, s.p50_ms, s.p95_ms, s.p99_ms,
      s.hist_p50_ms, s.hist_p95_ms, s.hist_p99_ms,
      s.accounted() ? "true" : "false");
  return buf;
}

std::string format_metrics() {
  return obs::Registry::global().openmetrics_text();
}

}  // namespace tdg::serve::wire
