#include "gpumodel/trace_cost.h"

#include <algorithm>

namespace tdg::gpumodel {

namespace {

using trace::Op;
using trace::OpKind;

void emit(std::vector<Op>& t, OpKind kind, index_t m, index_t n, index_t k,
          index_t batch = 1) {
  t.push_back({kind, m, n, k, batch});
}

// geqr2 on an m x w panel: one larf_left (gemv + ger) per column that has
// trailing columns and a non-trivial reflector.
void emit_geqr2(std::vector<Op>& t, index_t m, index_t w) {
  const index_t kmax = std::min(m, w);
  for (index_t j = 0; j < kmax; ++j) {
    const bool tau_nonzero = (m - j) > 1;  // larfg of length 1 gives tau = 0
    if (tau_nonzero && j + 1 < w) {
      emit(t, OpKind::kGemv, m - j, w - j - 1, 0);
      emit(t, OpKind::kGer, m - j, w - j - 1, 0);
    }
  }
}

// sbr::detail::zy_w_from_av on P (m x w).
void emit_zy_w(std::vector<Op>& t, index_t m, index_t w) {
  emit(t, OpKind::kGemm, m, w, w);  // X = P T
  emit(t, OpKind::kGemm, w, w, m);  // M = V^T X
  emit(t, OpKind::kGemm, w, w, w);  // S = T^T M
  emit(t, OpKind::kGemm, m, w, w);  // X -= 0.5 V S
}

// lapack::apply_block_reflector_left with V (m x k), C (m x nc).
void emit_block_reflector_left(std::vector<Op>& t, index_t m, index_t k,
                               index_t nc) {
  if (k == 0 || nc == 0) return;
  emit(t, OpKind::kGemm, k, nc, m);
  emit(t, OpKind::kGemm, k, nc, k);
  emit(t, OpKind::kGemm, m, nc, k);
}

// la::syr2k_lower or la::syr2k_lower_square on an n x n output, inner dim k.
void emit_syr2k(std::vector<Op>& t, index_t n, index_t k, bool square,
                index_t block) {
  if (n <= 0) return;
  if (!square) {
    emit(t, OpKind::kSyr2k, n, n, k);
    return;
  }
  if (block <= 0) block = std::min<index_t>(512, n);
  const index_t nblk = (n + block - 1) / block;
  for (index_t d = 0; d < nblk; ++d) {
    for (index_t bj = 0; bj + d < nblk; ++bj) {
      const index_t bi = bj + d;
      const index_t jb = std::min(block, n - bj * block);
      const index_t ib = std::min(block, n - bi * block);
      if (d == 0) {
        emit(t, OpKind::kSyr2k, ib, ib, k);
      } else {
        emit(t, OpKind::kGemm, ib, jb, k);
        emit(t, OpKind::kGemm, ib, jb, k);
      }
    }
  }
}

}  // namespace

std::vector<Op> trace_sytrd(index_t n, index_t nb) {
  std::vector<Op> t;
  index_t j0 = 0;
  while (n - j0 > 2 * nb) {
    const index_t nn = n - j0;
    for (index_t i = 0; i < nb; ++i) {
      const index_t len = nn - i - 1;
      if (i > 0) {
        emit(t, OpKind::kGemv, nn - i, i, 0);
        emit(t, OpKind::kGemv, nn - i, i, 0);
      }
      emit(t, OpKind::kSymv, len, len, 0);
      if (i > 0) {
        emit(t, OpKind::kGemv, len, i, 0);
        emit(t, OpKind::kGemv, len, i, 0);
        emit(t, OpKind::kGemv, len, i, 0);
        emit(t, OpKind::kGemv, len, i, 0);
      }
    }
    emit(t, OpKind::kSyr2k, nn - nb, nn - nb, nb);
    j0 += nb;
  }
  // sytd2 tail.
  const index_t rem = n - j0;
  for (index_t i = 0; i + 2 < rem; ++i) {
    const index_t len = rem - i - 1;
    emit(t, OpKind::kSymv, len, len, 0);
    emit(t, OpKind::kSyr2, len, len, 0);
  }
  return t;
}

std::vector<Op> trace_sy2sb(index_t n, index_t b, bool square_syr2k,
                            index_t syr2k_block) {
  std::vector<Op> t;
  for (index_t j = 0; n - j - b >= 1; j += b) {
    const index_t m = n - j - b;
    const index_t w = std::min(b, m);
    emit_geqr2(t, m, w);
    emit(t, OpKind::kGemm, m, w, m);  // symm
    emit_zy_w(t, m, w);
    emit_syr2k(t, m, w, square_syr2k, syr2k_block);
    if (w < b) emit_block_reflector_left(t, m, w, b - w);
  }
  return t;
}

std::vector<Op> trace_dbbr(index_t n, index_t b, index_t k, bool square_syr2k,
                           index_t syr2k_block) {
  std::vector<Op> t;
  index_t i = 0;
  while (n - i - b >= 1) {
    index_t cols = 0;
    index_t t0 = i;
    index_t last_m = 0, last_w = 0;
    for (index_t j = i; j < i + k && n - j - b >= 1; j += b) {
      const index_t m = n - j - b;
      const index_t w = std::min(b, m);
      if (cols > 0) {
        emit(t, OpKind::kGemm, n - j, w, cols);
        emit(t, OpKind::kGemm, n - j, w, cols);
      }
      emit_geqr2(t, m, w);
      emit(t, OpKind::kGemm, m, w, m);  // symm on stale trailing
      if (cols > 0) {
        emit(t, OpKind::kGemm, cols, w, m);
        emit(t, OpKind::kGemm, m, w, cols);
        emit(t, OpKind::kGemm, cols, w, m);
        emit(t, OpKind::kGemm, m, w, cols);
      }
      emit_zy_w(t, m, w);
      cols += w;
      t0 = j + w;
      last_m = m;
      last_w = w;
    }
    if (cols > 0 && t0 < n) {
      emit_syr2k(t, n - t0, cols, square_syr2k, syr2k_block);
    }
    if (last_w > 0 && last_w < b) {
      emit_block_reflector_left(t, last_m, last_w, b - last_w);
    }
    i += k;
  }
  return t;
}

std::vector<Op> trace_bt_conventional(index_t n, index_t b, index_t nc) {
  std::vector<Op> t;
  // One block reflector per panel, applied in reverse order (order does not
  // affect cost; shapes match sbr panel geometry).
  for (index_t j = 0; n - j - b >= 1; j += b) {
    const index_t m = n - j - b;
    const index_t w = std::min(b, m);
    emit_block_reflector_left(t, m, w, nc);
  }
  return t;
}

namespace {

struct PanelGeom {
  index_t row0;
  index_t w;
};

std::vector<PanelGeom> panel_geometry(index_t n, index_t b) {
  std::vector<PanelGeom> p;
  for (index_t j = 0; n - j - b >= 1; j += b) {
    p.push_back({j + b, std::min(b, n - j - b)});
  }
  return p;
}

// Mirrors bt::merge_panels / combine. Returns (row0, width).
PanelGeom emit_merge(std::vector<Op>& t, const std::vector<PanelGeom>& p,
                     std::size_t lo, std::size_t hi, index_t n) {
  if (hi - lo == 1) {
    const index_t m = n - p[lo].row0;
    emit(t, OpKind::kGemm, m, p[lo].w, p[lo].w);  // W = V T
    return p[lo];
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  const PanelGeom l = emit_merge(t, p, lo, mid, n);
  const PanelGeom r = emit_merge(t, p, mid, hi, n);
  const index_t hl = n - l.row0;
  const index_t hr = n - r.row0;
  emit(t, OpKind::kGemm, l.w, r.w, hr);  // Y_l^T W_r
  emit(t, OpKind::kGemm, hl, r.w, l.w);  // W_l * corr
  return {l.row0, l.w + r.w};
}

void emit_apply_merged(std::vector<Op>& t, const PanelGeom& g, index_t n,
                       index_t nc) {
  const index_t h = n - g.row0;
  emit(t, OpKind::kGemm, g.w, nc, h);
  emit(t, OpKind::kGemm, h, nc, g.w);
}

}  // namespace

std::vector<Op> trace_bt_recursive(index_t n, index_t b, index_t nc) {
  std::vector<Op> t;
  const auto p = panel_geometry(n, b);
  if (p.empty()) return t;
  const PanelGeom g = emit_merge(t, p, 0, p.size(), n);
  emit_apply_merged(t, g, n, nc);
  return t;
}

std::vector<Op> trace_bt_blocked(index_t n, index_t b, index_t kw,
                                 index_t nc) {
  std::vector<Op> t;
  const auto p = panel_geometry(n, b);
  if (p.empty()) return t;
  const std::size_t group = std::max<std::size_t>(
      1, static_cast<std::size_t>(kw / std::max<index_t>(b, 1)));
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  for (std::size_t lo = 0; lo < p.size(); lo += group) {
    ranges.emplace_back(lo, std::min(p.size(), lo + group));
  }
  for (auto it = ranges.rbegin(); it != ranges.rend(); ++it) {
    const PanelGeom g = emit_merge(t, p, it->first, it->second, n);
    emit_apply_merged(t, g, n, nc);
  }
  return t;
}

std::vector<Op> trace_q2_apply(index_t n, index_t b, index_t nc) {
  std::vector<Op> t;
  if (n <= 2 || b <= 1) return t;
  // ~n^2/(2b) reflectors of length <= b, batched b sweeps at a time into
  // (2b x nc x b) GEMMs -> n^2/(2 b^2) block applications.
  const index_t groups =
      std::max<index_t>(1, (n * n) / (2 * b * b));
  emit(t, OpKind::kBatchedGemm, 2 * b, nc, b, groups);
  return t;
}

std::vector<Op> trace_stedc(index_t n, index_t smlsiz) {
  std::vector<Op> t;
  // Merge levels bottom-up: at level with subproblem size m (doubling from
  // smlsiz to n), each merge applies an (m x m x m) eigenvector GEMM.
  for (index_t m = smlsiz * 2; m <= n; m *= 2) {
    const index_t count = std::max<index_t>(1, n / m);
    emit(t, OpKind::kBatchedGemm, m, m, m, count);
  }
  if (n > smlsiz && (n & (n - 1)) != 0) {
    // Non-power-of-two tail: one final full-size merge.
    emit(t, OpKind::kBatchedGemm, n, n, n, 1);
  }
  return t;
}

}  // namespace tdg::gpumodel
