// Synthetic (shape-only) trace generators.
//
// The algorithms' kernel call sequences depend only on the problem sizes,
// never on the matrix values (Householder QR has no pivoting). These
// generators replay each algorithm's control flow and emit the identical
// op sequence the instrumented implementation would record — letting us
// price paper-scale problems (n = 49152, 19 GB matrices) that cannot be run
// on this machine. Fidelity is enforced by tests comparing the synthetic
// trace against the recorded trace of a real run at small sizes.
#pragma once

#include <vector>

#include "common/trace.h"
#include "la/matrix.h"

namespace tdg::gpumodel {

/// Trace of direct blocked tridiagonalization (lapack::sytrd).
std::vector<trace::Op> trace_sytrd(index_t n, index_t nb);

/// Trace of classic SBR (sbr::sy2sb).
std::vector<trace::Op> trace_sy2sb(index_t n, index_t b, bool square_syr2k,
                                   index_t syr2k_block = 0);

/// Trace of DBBR (sbr::dbbr, the paper's Algorithm 1).
std::vector<trace::Op> trace_dbbr(index_t n, index_t b, index_t k,
                                  bool square_syr2k, index_t syr2k_block = 0);

/// Trace of the conventional stage-1 back transformation applied to an
/// n x nc matrix (bt::apply_q1_conventional).
std::vector<trace::Op> trace_bt_conventional(index_t n, index_t b,
                                             index_t nc);

/// Trace of the recursive (Algorithm 3) back transformation.
std::vector<trace::Op> trace_bt_recursive(index_t n, index_t b, index_t nc);

/// Trace of the blocked (Figure 13) back transformation with group width kw.
std::vector<trace::Op> trace_bt_blocked(index_t n, index_t b, index_t kw,
                                        index_t nc);

/// Coarse trace of the stage-2 (bulge chasing) back transformation: the
/// reflectors are applied in blocked groups, one (2b x nc x b) GEMM per
/// group — n^2/(2 b^2) groups in total. (The real small-n implementation
/// applies reflectors one by one; on a GPU they are batched, and this is
/// the shape MAGMA's dormqr-stage batches into.)
std::vector<trace::Op> trace_q2_apply(index_t n, index_t b, index_t nc);

/// Coarse trace of divide & conquer (stedc): one batched eigenvector-update
/// GEMM per merge level (deflation ignored, i.e. worst case).
std::vector<trace::Op> trace_stedc(index_t n, index_t smlsiz = 32);

}  // namespace tdg::gpumodel
