#include "gpumodel/device_spec.h"

#include <algorithm>
#include <cmath>

namespace tdg::gpumodel {

DeviceSpec h100_sxm() {
  DeviceSpec s;
  s.name = "H100-SXM";
  s.fp64_peak_tflops = 67.0;
  s.dram_gbs = 3350.0;
  s.l2_mb = 50.0;
  s.sm_count = 132;
  // Fitted to Table 1 of the paper: (n=8192, k=16) -> 0.43 TFLOPs,
  // (32768, 4096) -> 45.5 TFLOPs.
  s.vendor_syr2k_c = 3.62e-8;
  s.vendor_syr2k_sat = 48.0;
  s.vendor_cliff_n = 49152.0;
  s.vendor_cliff_factor = 0.35;
  s.bc_step_us_b32 = 8.0;
  return s;
}

DeviceSpec rtx4090() {
  DeviceSpec s;
  s.name = "RTX4090";
  s.fp64_peak_tflops = 1.29;
  s.dram_gbs = 1008.0;
  s.l2_mb = 72.0;
  s.sm_count = 128;
  // FP64-starved: every shape saturates the 1:64-rate FP64 pipes at once
  // (Table 1 right columns: 1.06-1.25 TFLOPs across the whole grid).
  s.vendor_syr2k_c = 1.0e-5;
  s.vendor_syr2k_sat = 1.25;
  s.vendor_cliff_n = 0.0;
  s.gemm_efficiency = 0.95;  // trivially compute-bound
  s.gemm_k_half = 16.0;
  // 660 INT8 TOPS drive an Ozaki-scheme DGEMM well past the FP64 pipes —
  // this is how the paper reports 1.4 TFLOPs, above the 1.29 FP64 peak.
  s.dgemm_int8_tflops = 1.6;
  // Fewer FP64 pipes make each block step slower than on H100.
  s.bc_step_us_b32 = 18.0;
  return s;
}

double cpu_bc_gflops(index_t b) {
  // Calibrated to the paper's MAGMA sb2st times at n = 49152 (8 MKL
  // threads): 16.2 s at b=32, 23.9 s at b=64, 84.9 s at b=128 with
  // ~6*b*n^2 flops. The rate rises with b while the working set fits the
  // CPU caches, then collapses (the b=128 blow-up of Section 3.2).
  const double bd = static_cast<double>(b);
  const double peak = 17.0 + 0.34 * std::min(bd, 64.0);
  if (bd <= 64.0) return peak;
  return peak / std::pow(bd / 64.0, 0.83);
}

}  // namespace tdg::gpumodel
