#include "gpumodel/bc_pipeline_model.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/check.h"

namespace tdg::gpumodel {

double bc_cycles_closed_form(index_t n, index_t b, index_t s) {
  TDG_CHECK(n >= 2 && b >= 1 && s >= 1, "bc_cycles_closed_form: bad args");
  const double nd = static_cast<double>(n);
  const double bd = static_cast<double>(b);
  const double sd = static_cast<double>(s);

  const double successive = 3.0 * nd - 2.0;
  // Paper: sum_{i=1}^{U} ((n+S)/b - 3S + 3 - (S/b) i), U = (n+3b)/S - 3b.
  const double u = std::floor((nd + 3.0 * bd) / sd - 3.0 * bd);
  if (u < 1.0) return successive;
  double stalls = u * ((nd + sd) / bd - 3.0 * sd + 3.0) -
                  (sd / bd) * u * (u + 1.0) / 2.0;
  stalls = std::max(stalls, 0.0);
  return successive + stalls;
}

BcPipelineStats bc_simulate(index_t n, index_t b, index_t s) {
  TDG_CHECK(n >= 2 && b >= 1, "bc_simulate: bad args");
  const index_t nsweeps = n - 2;
  BcPipelineStats st;
  if (nsweeps <= 0) return st;
  if (s <= 0) s = nsweeps;

  // Bulges (block steps) per sweep: law (2).
  std::vector<std::int64_t> bulges(static_cast<std::size_t>(nsweeps));
  for (index_t i = 0; i < nsweeps; ++i) {
    bulges[static_cast<std::size_t>(i)] = (n - i + b - 1) / b;
  }
  std::vector<std::int64_t> progress(static_cast<std::size_t>(nsweeps), 0);

  std::vector<index_t> active;
  active.reserve(static_cast<std::size_t>(s));
  index_t next = 0;
  double cycles = 0.0;
  double busy = 0.0;

  auto pred_allows = [&](index_t i) {
    if (i == 0) return true;
    const index_t p = i - 1;
    if (progress[static_cast<std::size_t>(p)] >=
        bulges[static_cast<std::size_t>(p)]) {
      return true;  // predecessor finished
    }
    // Law (1): stay >= 3 bulges behind the predecessor.
    return progress[static_cast<std::size_t>(p)] >=
           progress[static_cast<std::size_t>(i)] + 3;
  };

  while (next < nsweeps || !active.empty()) {
    // Law (3): admit sweeps while pipeline slots are free.
    while (next < nsweeps && static_cast<index_t>(active.size()) < s &&
           pred_allows(next)) {
      active.push_back(next);
      ++next;
    }
    ++cycles;
    // Advance each in-flight sweep one bulge where the dependency permits.
    // Active sweeps are kept in ascending order, so tracking the
    // predecessor's pre-update value makes the cycle behave as if all
    // decisions were taken against a start-of-cycle snapshot.
    index_t prev_id = -1;
    std::int64_t prev_before = 0;
    for (index_t i : active) {
      const std::int64_t mine_before = progress[static_cast<std::size_t>(i)];
      bool ok;
      if (i == 0) {
        ok = true;
      } else if (progress[static_cast<std::size_t>(i - 1)] >=
                     bulges[static_cast<std::size_t>(i - 1)] &&
                 prev_id != i - 1) {
        ok = true;  // predecessor finished (and inactive)
      } else {
        const std::int64_t pred_before =
            (prev_id == i - 1) ? prev_before
                               : progress[static_cast<std::size_t>(i - 1)];
        ok = pred_before >= mine_before + 3 ||
             pred_before >= bulges[static_cast<std::size_t>(i - 1)];
      }
      if (ok) {
        ++progress[static_cast<std::size_t>(i)];
        busy += 1.0;
      }
      prev_id = i;
      prev_before = mine_before;
    }
    active.erase(std::remove_if(active.begin(), active.end(),
                                [&](index_t i) {
                                  return progress[static_cast<std::size_t>(
                                             i)] >=
                                         bulges[static_cast<std::size_t>(i)];
                                }),
                 active.end());
  }

  st.cycles = cycles;
  st.busy_steps = busy;
  st.avg_parallel = (cycles > 0.0) ? busy / cycles : 0.0;
  return st;
}

double bc_step_seconds(const DeviceSpec& spec, index_t b) {
  const double scale = static_cast<double>(b) / 32.0;
  return spec.bc_step_us_b32 * 1e-6 * scale * scale;
}

double bc_gpu_seconds(const DeviceSpec& spec, index_t n, index_t b, index_t s,
                      bool use_simulation) {
  const double cycles = use_simulation
                            ? bc_simulate(n, b, s).cycles
                            : bc_cycles_closed_form(n, b, s);
  return cycles * bc_step_seconds(spec, b);
}

double bc_memory_throughput_gbs(const DeviceSpec& spec, index_t n, index_t b,
                                index_t s) {
  const BcPipelineStats st = bc_simulate(n, b, s);
  // One block step touches ~3 blocks of b x b doubles (B_d, B_ol, B_od).
  const double bytes_per_step = 3.0 * static_cast<double>(b) * b * 8.0;
  const double raw =
      st.avg_parallel * bytes_per_step / bc_step_seconds(spec, b) / 1e9;
  return std::min(raw, spec.dram_gbs);
}

double bc_gpu_naive_seconds(const DeviceSpec& spec, index_t n, index_t b) {
  constexpr double kDenseLayoutPenalty = 1.2;  // strided L2-missing accesses
  return bc_gpu_seconds(spec, n, b, spec.sm_count) * kDenseLayoutPenalty;
}

double bc_gpu_optimized_seconds(const DeviceSpec& spec, index_t n, index_t b) {
  return bc_gpu_seconds(spec, n, b, 2 * spec.sm_count);
}

double magma_sb2st_seconds(index_t n, index_t b) {
  // ~6*b*n^2 flops at the calibrated CPU rate.
  const double flops =
      6.0 * static_cast<double>(b) * static_cast<double>(n) * n;
  return flops / (cpu_bc_gflops(b) * 1e9);
}

}  // namespace tdg::gpumodel
