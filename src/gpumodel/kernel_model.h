// Kernel-time model: converts BLAS call shapes into projected device time.
//
// GEMM: wave-quantised tile model. The output is tiled 128x128 per thread
// block; full waves of sm_count tiles run back to back; per-tile time is the
// max of the MMA-pipeline time (derated by the k-pipeline efficiency
// k/(k+k_half) — short k loops cannot hide the pipeline latency, which is
// exactly why the paper pushes k from b=64 to k=1024) and the memory time.
//
// Vendor syr2k: empirical surrogate fitted to the paper's Table 1 (see
// device_spec.h). Used when pricing traces of algorithms that would call
// cuBLAS Dsyr2k (classic SBR, direct sytrd); our own square-block syr2k is
// priced constructively from its square GEMM tiles instead.
//
// BLAS-2 (symv/gemv/ger/syr2): pure memory-roofline plus launch overhead —
// the reason direct sytrd sits at ~2 TFLOPs in Figure 4.
#pragma once

#include <map>
#include <vector>

#include "common/trace.h"
#include "gpumodel/device_spec.h"

namespace tdg::gpumodel {

class KernelModel {
 public:
  /// vendor_syr2k: price kSyr2k ops with the cuBLAS surrogate (baselines).
  /// false: price them as two GEMMs of the same shape (our own kernels).
  explicit KernelModel(DeviceSpec spec, bool vendor_syr2k = true)
      : spec_(std::move(spec)), vendor_syr2k_(vendor_syr2k) {}

  const DeviceSpec& spec() const { return spec_; }

  /// Projected seconds for C(m x n) += A(m x k) B(k x n), batched.
  double gemm_seconds(index_t m, index_t n, index_t k, index_t batch = 1) const;

  /// Projected seconds for the vendor syr2k (n x n output, inner dim k).
  double vendor_syr2k_seconds(index_t n, index_t k) const;

  /// Vendor syr2k throughput in TFLOPs (the Table-1 quantity).
  double vendor_syr2k_tflops(index_t n, index_t k) const;

  /// Memory-roofline seconds for a BLAS-2 op touching `bytes`.
  double blas2_seconds(double bytes) const;

  /// Projected seconds of one traced op (kBcStep ops return 0 here — the
  /// bulge-chase pipeline is priced by BcPipelineModel, not per-op).
  double op_seconds(const trace::Op& op) const;

 private:
  DeviceSpec spec_;
  bool vendor_syr2k_;
};

/// Aggregate cost of a recorded trace.
struct TraceCost {
  double seconds = 0.0;
  double flops = 0.0;
  std::map<trace::OpKind, double> seconds_by_kind;
  index_t bc_steps = 0;  // count of kBcStep ops (priced separately)

  double tflops() const {
    return seconds > 0.0 ? flops / seconds / 1e12 : 0.0;
  }
};

/// Price every op of a trace with the given model.
TraceCost price_trace(const KernelModel& model,
                      const std::vector<trace::Op>& ops);

}  // namespace tdg::gpumodel
