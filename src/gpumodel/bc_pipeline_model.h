// The paper's Section-3.3 performance model of pipelined bulge chasing.
//
// Time is measured in "bulge cycles" (one block step of one sweep). Three
// laws govern the pipeline:
//   (1) sweep i+1 starts after sweep i has processed 3 bulges,
//   (2) the number of bulges per sweep drops by one every b sweeps
//       (sweep i has ceil((n - i)/b) bulges),
//   (3) at most S sweeps can be in flight; an extra sweep stalls until the
//       oldest one drains.
//
// Two evaluators are provided: the paper's closed-form expression (floor
// terms dropped, as in the paper) and an exact discrete-event simulation of
// the three laws. The simulator also reports per-cycle pipeline occupancy,
// which drives the memory-throughput projection of Figure 12.
#pragma once

#include <vector>

#include "gpumodel/device_spec.h"

namespace tdg::gpumodel {

struct BcPipelineStats {
  double cycles = 0.0;       // total bulge cycles to drain all sweeps
  double busy_steps = 0.0;   // total block steps executed (sum of bulges)
  double avg_parallel = 0.0; // busy_steps / cycles — mean sweeps in flight
};

/// Paper's closed-form total cycles (successive bulges + stall cycles).
double bc_cycles_closed_form(index_t n, index_t b, index_t s);

/// Exact discrete-event simulation of laws (1)-(3).
BcPipelineStats bc_simulate(index_t n, index_t b, index_t s);

/// Seconds for one block step at bandwidth b on the device (the b = 32
/// calibration point scales ~quadratically with b: a step does O(b^2) work
/// on O(b^2) data).
double bc_step_seconds(const DeviceSpec& spec, index_t b);

/// Projected GPU bulge-chase time: cycles(n, b, S) * step(b).
double bc_gpu_seconds(const DeviceSpec& spec, index_t n, index_t b, index_t s,
                      bool use_simulation = true);

/// Projected effective memory throughput (GB/s) at S parallel sweeps — one
/// block step touches ~3 b^2 doubles; throughput scales with pipeline
/// occupancy and is capped by DRAM bandwidth (Figure 12).
double bc_memory_throughput_gbs(const DeviceSpec& spec, index_t n, index_t b,
                                index_t s);

/// Naive GPU chase (paper Section 5.2): one thread block per sweep, band
/// read from the dense matrix. S = sm_count; strided global-memory access
/// inflates the step time by ~20%.
double bc_gpu_naive_seconds(const DeviceSpec& spec, index_t n, index_t b);

/// Optimized GPU chase: packed Figure-10 band resident in L2 and several
/// warp-level sweeps per SM, so S reaches ~2x the SM count.
double bc_gpu_optimized_seconds(const DeviceSpec& spec, index_t n, index_t b);

/// MAGMA CPU sb2st surrogate (8 MKL threads; see cpu_bc_gflops).
double magma_sb2st_seconds(index_t n, index_t b);

}  // namespace tdg::gpumodel
