// GPU device models.
//
// This machine has no CUDA device, so the paper's absolute numbers are
// reproduced through an analytic device model: algorithms run for real on
// the CPU substrate and record their kernel shapes in a trace
// (common/trace.h); the models below convert shapes to projected device
// time. Two parameter sets mirror the paper's testbeds: H100-SXM (the
// "emerging high-performance" device) and RTX 4090 (FP64-starved consumer
// device whose 1:64 FP64 rate makes every kernel saturate instantly —
// Table 1's right-hand columns).
//
// Calibration notes (documented per DESIGN.md's substitution table):
//  * vendor_syr2k_c / vendor_syr2k_sat are fitted to the paper's measured
//    Table 1 (cuBLAS Dsyr2k): throughput grows ~ n^1.5 * k before saturating.
//  * gemm_efficiency and gemm_k_half are set so a fat square FP64 GEMM
//    reaches ~75% of peak and k = 64-class GEMMs reach ~half of that, which
//    matches the paper's custom-syr2k plateau (~50 TFLOPs, Figure 8).
//  * bc_step_us is the time of one bulge-chase block step (b = 32) per
//    sweep; Section 3.3 of the paper quotes ~10 "ms" per bulge on H100 —
//    taken at face value the paper's own Figure 5 would be off by three
//    orders of magnitude, so we read it as ~10 us and calibrate so modeled
//    BC times land on the Figure 11 scale.
//  * cpu_bc_gflops models MAGMA's CPU sb2st (8 MKL threads), calibrated to
//    the paper's quoted 16.2 s (b=32) / 23.9 s (b=64) at n = 49152.
#pragma once

#include <string>

#include "la/matrix.h"

namespace tdg::gpumodel {

struct DeviceSpec {
  std::string name;
  double fp64_peak_tflops = 0.0;  // tensor-core FP64 peak
  double dram_gbs = 0.0;          // DRAM bandwidth, GB/s
  double l2_mb = 0.0;             // L2 capacity
  int sm_count = 0;

  // GEMM model.
  double tile = 128.0;            // square output tile per thread block
  double gemm_efficiency = 0.78;  // fraction of peak for fat GEMMs
  double gemm_k_half = 64.0;      // k with 50% MMA-pipeline efficiency
  double kernel_launch_us = 2.0;  // pipelined launch overhead
  /// Effective DGEMM rate via the INT8-tensor-core Ozaki scheme (paper
  /// ref [19]); 0 = not profitable on this device. Only custom kernels
  /// (vendor_syr2k = false pricing) may use it.
  double dgemm_int8_tflops = 0.0;
  /// Fraction of DRAM bandwidth a BLAS-2 kernel sustains (symv/gemv are
  /// launch/latency limited below the pure roofline).
  double blas2_efficiency = 0.7;

  // Vendor (cuBLAS-like) syr2k surrogate: TFLOPs = sat*r/(r+sat),
  // r = c * n^1.5 * k; cliff_n/cliff_factor model the large-n drop the
  // paper's Figure 8 shows for cuBLAS.
  double vendor_syr2k_c = 0.0;
  double vendor_syr2k_sat = 0.0;
  double vendor_cliff_n = 0.0;       // 0 = no cliff
  double vendor_cliff_factor = 1.0;

  // Bulge-chasing pipeline: per-block-step time at b = 32 for one sweep.
  double bc_step_us_b32 = 8.0;
};

/// NVIDIA H100-SXM parameters (paper's primary testbed).
DeviceSpec h100_sxm();

/// NVIDIA RTX 4090 parameters (paper's consumer testbed; FP64 peak 1.29).
DeviceSpec rtx4090();

/// Host CPU model for MAGMA's CPU-side sb2st (8 MKL threads): effective
/// GFLOP/s of the bulge-chase kernels as a function of bandwidth b
/// (cache-resident work runs faster with larger b).
double cpu_bc_gflops(index_t b);

}  // namespace tdg::gpumodel
