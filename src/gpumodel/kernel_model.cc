#include "gpumodel/kernel_model.h"

#include <algorithm>
#include <cmath>

namespace tdg::gpumodel {

double KernelModel::gemm_seconds(index_t m, index_t n, index_t k,
                                 index_t batch) const {
  if (m <= 0 || n <= 0 || k <= 0 || batch <= 0) return 0.0;
  const double tile = spec_.tile;
  const double tiles = std::ceil(static_cast<double>(m) / tile) *
                       std::ceil(static_cast<double>(n) / tile) *
                       static_cast<double>(batch);

  // Effective DGEMM peak: a custom kernel can use the INT8-tensor-core
  // Ozaki-scheme DGEMM where that beats the native FP64 pipes (this is how
  // the paper's method exceeds the RTX 4090's 1.29 TFLOPs FP64 peak);
  // vendor-library pricing sticks to the native FP64 rate.
  double peak_tflops = spec_.fp64_peak_tflops;
  if (!vendor_syr2k_ && spec_.dgemm_int8_tflops > peak_tflops) {
    peak_tflops = spec_.dgemm_int8_tflops;
  }
  const double peak_eff = peak_tflops * 1e12 * spec_.gemm_efficiency;
  // Pipeline efficiency: vendor kernels are tuned for square-ish shapes and
  // lose throughput on any skinny dimension; the paper's custom kernels are
  // shaped so only a short reduction (k) hurts.
  const double eff_dim =
      vendor_syr2k_ ? static_cast<double>(std::min({m, n, k}))
                    : static_cast<double>(k);
  const double eff_k = eff_dim / (eff_dim + spec_.gemm_k_half);

  // Ideal time from the actual flops, inflated by wave quantisation (the
  // last partial wave runs at tiles/sm_count occupancy). Deep reductions
  // are split-k parallelised, which multiplies the schedulable tile count.
  const double flops = 2.0 * static_cast<double>(m) * n * k * batch;
  const double splitk = std::ceil(static_cast<double>(k) / 512.0);
  const double tiles_eff = tiles * splitk;
  const double waves_eff = std::ceil(tiles_eff / spec_.sm_count);
  const double quant = waves_eff * spec_.sm_count / tiles_eff;  // >= 1
  const double compute_time = flops / (peak_eff * eff_k) * quant;

  // Memory roofline: stream A and B once (L2 gets credit for the panel
  // re-reads across tiles), read+write C.
  const double bytes = (static_cast<double>(m) * k +
                        static_cast<double>(n) * k +
                        2.0 * static_cast<double>(m) * n) *
                       8.0 * static_cast<double>(batch);
  const double mem_time = bytes / (spec_.dram_gbs * 1e9);

  return std::max(compute_time, mem_time) + spec_.kernel_launch_us * 1e-6;
}

double KernelModel::vendor_syr2k_tflops(index_t n, index_t k) const {
  const double r = spec_.vendor_syr2k_c *
                   std::pow(static_cast<double>(n), 1.5) *
                   static_cast<double>(k);
  double perf = spec_.vendor_syr2k_sat * r / (r + spec_.vendor_syr2k_sat);
  if (spec_.vendor_cliff_n > 0.0 &&
      static_cast<double>(n) >= spec_.vendor_cliff_n) {
    perf *= spec_.vendor_cliff_factor;
  }
  return perf;
}

double KernelModel::vendor_syr2k_seconds(index_t n, index_t k) const {
  if (n <= 0 || k <= 0) return 0.0;
  const double flops = 2.0 * static_cast<double>(n) *
                       (static_cast<double>(n) + 1.0) *
                       static_cast<double>(k);
  return flops / (vendor_syr2k_tflops(n, k) * 1e12) +
         spec_.kernel_launch_us * 1e-6;
}

double KernelModel::blas2_seconds(double bytes) const {
  return bytes / (spec_.dram_gbs * 1e9 * spec_.blas2_efficiency) +
         spec_.kernel_launch_us * 1e-6;
}

double KernelModel::op_seconds(const trace::Op& op) const {
  using trace::OpKind;
  switch (op.kind) {
    case OpKind::kGemm:
    case OpKind::kBatchedGemm:
      return gemm_seconds(op.m, op.n, op.k, op.batch);
    case OpKind::kSyr2k:
      if (vendor_syr2k_) return vendor_syr2k_seconds(op.n, op.k);
      // Our own kernel: two GEMMs over the lower triangle (half the area).
      return 2.0 * gemm_seconds(op.n, std::max<index_t>(op.n / 2, 1), op.k);
    case OpKind::kSymv:
      // Lower triangle read once + vectors.
      return blas2_seconds(
          (static_cast<double>(op.n) * op.n / 2.0 + 3.0 * op.n) * 8.0 *
          static_cast<double>(op.batch));
    case OpKind::kGemv:
      return blas2_seconds(
          (static_cast<double>(op.m) * op.n + 2.0 * op.m + op.n) * 8.0 *
          static_cast<double>(op.batch));
    case OpKind::kGer:
      return blas2_seconds(
          (2.0 * static_cast<double>(op.m) * op.n + op.m + op.n) * 8.0 *
          static_cast<double>(op.batch));
    case OpKind::kSyr2:
      return blas2_seconds(
          (static_cast<double>(op.n) * op.n + 2.0 * op.n) * 8.0 *
          static_cast<double>(op.batch));
    case OpKind::kBcStep:
      return 0.0;  // priced by BcPipelineModel
  }
  return 0.0;
}

TraceCost price_trace(const KernelModel& model,
                      const std::vector<trace::Op>& ops) {
  TraceCost c;
  // Coalesce runs of identical-shape ops into one batched op: independent
  // same-shape kernels (e.g. all off-diagonal blocks of one anti-diagonal of
  // the Figure-7 syr2k schedule) run concurrently on the device rather than
  // as isolated partial waves.
  std::size_t i = 0;
  while (i < ops.size()) {
    trace::Op op = ops[i];
    std::size_t j = i + 1;
    while (j < ops.size() && ops[j].kind == op.kind && ops[j].m == op.m &&
           ops[j].n == op.n && ops[j].k == op.k) {
      op.batch += ops[j].batch;
      ++j;
    }
    i = j;
    if (op.kind == trace::OpKind::kBcStep) {
      c.bc_steps += op.batch;
      continue;
    }
    const double s = model.op_seconds(op);
    c.seconds += s;
    c.seconds_by_kind[op.kind] += s;
    c.flops += trace::flops(op);
  }
  return c;
}

}  // namespace tdg::gpumodel
