#include "obs/flight_recorder.h"

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

#include "common/json.h"
#include "obs/obs.h"

namespace tdg::obs::flight {

namespace {

/// One ring slot. All-atomic so the owner's relaxed stores and a dumper's
/// relaxed loads never constitute a data race (TSan-clean); a slot near the
/// head may be read mid-update, which the dump tolerates (post-mortem
/// artifact, timestamp-ordered).
struct Slot {
  std::atomic<int> kind{0};
  std::atomic<const char*> name{""};
  std::atomic<long long> t_us{0};
  std::atomic<long long> a{0};
  std::atomic<long long> b{0};
  std::atomic<long long> request_id{0};
};

struct Ring {
  std::atomic<unsigned> head{0};  // total events ever recorded on this ring
  Slot slots[kRingCapacity];
  int tid = 0;
};

struct RingRegistry {
  std::mutex mu;
  std::vector<std::shared_ptr<Ring>> rings;
  int next_tid = 0;
};

RingRegistry& ring_registry() {
  static RingRegistry* r = new RingRegistry();  // leaked: signal/atexit dumps
  return *r;
}

Ring& local_ring() {
  thread_local const std::shared_ptr<Ring> ring = [] {
    auto r = std::make_shared<Ring>();
    RingRegistry& reg = ring_registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    r->tid = reg.next_tid++;
    reg.rings.push_back(r);
    return r;
  }();
  return *ring;
}

std::mutex& dump_path_mu() {
  static std::mutex* m = new std::mutex();
  return *m;
}

std::string& dump_path_storage() {
  static std::string* s = new std::string();
  return *s;
}

const char* kind_string(int k) {
  switch (static_cast<EventKind>(k)) {
    case EventKind::kSpan: return "span";
    case EventKind::kMarker: return "marker";
    case EventKind::kMetric: return "metric";
    case EventKind::kError: return "error";
    case EventKind::kNone: break;
  }
  return "none";
}

struct DumpedEvent {
  int kind;
  const char* name;
  long long t_us, a, b, request_id;
  int tid;
};

/// Fatal-signal handler: best-effort dump, then restore the default
/// disposition and re-raise so the process still dies with the original
/// signal. dump() is not async-signal-safe (it allocates); for a corrupted
/// heap this may fail, but for the common aborts (TDG_CHECK, std::terminate
/// via SIGABRT, a stray segfault in new code) it leaves the timeline that
/// motivated the recorder.
void fatal_signal_handler(int sig) {
  (void)dump("fatal signal " + std::to_string(sig));
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

/// Reads TDG_FLIGHT_DUMP once before main (the obs EnvInit pattern) and
/// hooks the fatal signals only when a dump destination exists.
struct EnvInit {
  EnvInit() {
    if (const char* path = std::getenv("TDG_FLIGHT_DUMP")) {
      (void)ring_registry();
      set_dump_path(path);
      for (const int sig : {SIGSEGV, SIGABRT, SIGFPE, SIGILL
#ifdef SIGBUS
                            , SIGBUS
#endif
           }) {
        std::signal(sig, fatal_signal_handler);
      }
    }
  }
};
const EnvInit env_init;

}  // namespace

void record(EventKind kind, const char* name, long long a, long long b,
            long long request_id) {
  if (request_id == kAmbientRequest) {
    request_id = current_context().request_id;
  }
  Ring& r = local_ring();
  const unsigned i = r.head.fetch_add(1, std::memory_order_relaxed) %
                     static_cast<unsigned>(kRingCapacity);
  Slot& s = r.slots[i];
  s.kind.store(static_cast<int>(kind), std::memory_order_relaxed);
  s.name.store(name, std::memory_order_relaxed);
  s.t_us.store(static_cast<long long>(now_us()), std::memory_order_relaxed);
  s.a.store(a, std::memory_order_relaxed);
  s.b.store(b, std::memory_order_relaxed);
  s.request_id.store(request_id, std::memory_order_relaxed);
}

std::string dump_json(const std::string& reason) {
  std::vector<DumpedEvent> events;
  {
    RingRegistry& reg = ring_registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    for (const auto& ring : reg.rings) {
      for (int i = 0; i < kRingCapacity; ++i) {
        const Slot& s = ring->slots[i];
        const int kind = s.kind.load(std::memory_order_relaxed);
        if (kind == static_cast<int>(EventKind::kNone)) continue;
        events.push_back(DumpedEvent{
            kind, s.name.load(std::memory_order_relaxed),
            s.t_us.load(std::memory_order_relaxed),
            s.a.load(std::memory_order_relaxed),
            s.b.load(std::memory_order_relaxed),
            s.request_id.load(std::memory_order_relaxed), ring->tid});
      }
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const DumpedEvent& x, const DumpedEvent& y) {
                     return x.t_us < y.t_us;
                   });
  std::ostringstream os;
  os << "{\"schema\":\"tdg.flight.v1\",\"reason\":\""
     << json::escape(reason) << "\",\"dumped_at_us\":"
     << static_cast<long long>(now_us())
     << ",\"request_id\":" << current_context().request_id
     << ",\"events\":[";
  bool first = true;
  for (const DumpedEvent& e : events) {
    if (!first) os << ',';
    first = false;
    os << "{\"kind\":\"" << kind_string(e.kind) << "\",\"name\":\""
       << json::escape(e.name == nullptr ? "" : e.name)
       << "\",\"t_us\":" << e.t_us << ",\"a\":" << e.a << ",\"b\":" << e.b
       << ",\"req\":" << e.request_id << ",\"tid\":" << e.tid << "}";
  }
  os << "]}";
  return os.str();
}

bool dump_to_file(const std::string& path, const std::string& reason) {
  const std::string text = dump_json(reason);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  bool ok = std::fputs(text.c_str(), f) >= 0;
  ok = std::fputc('\n', f) != EOF && ok;
  ok = std::fflush(f) == 0 && ok;
  std::fclose(f);
  return ok;
}

bool dump(const std::string& reason) {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(dump_path_mu());
    path = dump_path_storage();
  }
  if (path.empty()) return false;
  return dump_to_file(path, reason);
}

void set_dump_path(const std::string& path) {
  std::lock_guard<std::mutex> lock(dump_path_mu());
  dump_path_storage() = path;
}

void clear() {
  RingRegistry& reg = ring_registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (const auto& ring : reg.rings) {
    ring->head.store(0, std::memory_order_relaxed);
    for (int i = 0; i < kRingCapacity; ++i) {
      ring->slots[i].kind.store(static_cast<int>(EventKind::kNone),
                                std::memory_order_relaxed);
    }
  }
}

}  // namespace tdg::obs::flight
