#include "obs/obs.h"

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <sstream>

#include "common/json.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace tdg::obs {

namespace detail {

std::atomic<int> g_trace_armed{0};

namespace {

using Clock = std::chrono::steady_clock;

// Process-wide trace epoch: first touch of the trace machinery. Everything
// in the export is relative to this, which keeps timestamps small and lets
// Perfetto render from t=0.
Clock::time_point epoch() {
  static const Clock::time_point t0 = Clock::now();
  return t0;
}

double since_epoch_us(Clock::time_point t) {
  return std::chrono::duration<double, std::micro>(t - epoch()).count();
}

// Spans land in per-thread buffers so recording never contends across
// threads. Each buffer has its own mutex, taken only on armed appends and
// on snapshot; buffers are shared_ptrs registered in a global list so
// snapshot outlives thread exit.
struct ThreadBuf {
  std::mutex mu;
  std::vector<SpanEvent> events;
  int tid = 0;
};

struct BufRegistry {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuf>> bufs;
  int next_tid = 0;
};

BufRegistry& buf_registry() {
  static BufRegistry* r = new BufRegistry();  // leaked: atexit writers read it
  return *r;
}

ThreadBuf& local_buf() {
  thread_local const std::shared_ptr<ThreadBuf> buf = [] {
    auto b = std::make_shared<ThreadBuf>();
    BufRegistry& r = buf_registry();
    std::lock_guard<std::mutex> lock(r.mu);
    b->tid = r.next_tid++;
    r.bufs.push_back(b);
    return b;
  }();
  return *buf;
}

// Open-span depth on this thread. A plain thread_local int: spans never
// migrate threads, and RAII guarantees balanced inc/dec even when an
// exception unwinds through the scope.
thread_local int t_depth = 0;

// Ambient request context on this thread. Plain thread_local: only the
// owning thread reads or writes it (ContextScope install/restore), and
// cross-thread handoffs copy it by value into the dispatched task.
thread_local TraceContext t_ctx{};

// Mid-run snapshot machinery. The request flag is the only thing a signal
// handler touches (async-signal-safe atomic store); the path lives behind
// a mutex in a leaked string so writers during static destruction still
// read live state.
std::atomic<int> g_snapshot_requested{0};
std::mutex& snapshot_path_mu() {
  static std::mutex* m = new std::mutex();
  return *m;
}
std::string& snapshot_path_storage() {
  static std::string* s = new std::string();
  return *s;
}

void sigusr1_handler(int) {
  g_snapshot_requested.store(1, std::memory_order_relaxed);
}

void append_json_event(std::ostringstream& os, const SpanEvent& e,
                       bool first) {
  if (!first) os << ',';
  os << "{\"name\":\"" << json::escape(e.name) << "\",\"cat\":\"tdg\","
     << "\"ph\":\"X\",\"ts\":" << e.start_us << ",\"dur\":" << e.dur_us
     << ",\"pid\":1,\"tid\":" << e.tid;
  os << ",\"args\":{\"depth\":" << e.depth;
  if (e.request_id != 0) os << ",\"req\":" << e.request_id;
  for (int i = 0; i < e.nattrs; ++i)
    os << ",\"" << json::escape(e.attrs[i].key)
       << "\":" << e.attrs[i].value;
  if (e.flops > 0.0) os << ",\"flops\":" << e.flops;
  os << "}}";
}

// Reads TDG_TRACE_JSON / TDG_METRICS once before main() (mirrors
// fault.cc's EnvInit). Touching the leaked globals here guarantees they
// are constructed before the atexit writers register, hence destroyed
// never — the writers run against live state even during static
// destruction. The global thread pool is created lazily at runtime (after
// this), so its atexit-ordered destructor joins the workers before the
// writers run.
struct EnvInit {
  EnvInit() {
    if (const char* path = std::getenv("TDG_TRACE_JSON")) {
      (void)buf_registry();
      static const std::string trace_path = path;
      arm_tracing();
      // Mid-run snapshots go to a sibling file so a partial snapshot can
      // never clobber the at-exit trace.
      set_snapshot_path(trace_path + ".snap.json");
#ifdef SIGUSR1
      std::signal(SIGUSR1, sigusr1_handler);  // kill -USR1 = snapshot now
#endif
      std::atexit(+[] { (void)write_chrome_trace(trace_path); });
    }
    if (const char* path = std::getenv("TDG_METRICS")) {
      (void)Registry::global();
      static const std::string metrics_path = path;
      arm_metrics();
      std::atexit(+[] { (void)Registry::global().write(metrics_path); });
    }
  }
};
const EnvInit env_init;

}  // namespace
}  // namespace detail

void arm_tracing() {
  detail::g_trace_armed.store(1, std::memory_order_relaxed);
}

void disarm_tracing() {
  detail::g_trace_armed.store(0, std::memory_order_relaxed);
}

double now_us() { return detail::since_epoch_us(detail::Clock::now()); }

TraceContext current_context() { return detail::t_ctx; }

long long next_request_id() {
  static std::atomic<long long> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

ContextScope::ContextScope(TraceContext ctx) : prev_(detail::t_ctx) {
  detail::t_ctx = ctx;
}

ContextScope::~ContextScope() { detail::t_ctx = prev_; }

void set_snapshot_path(const std::string& path) {
  std::lock_guard<std::mutex> lock(detail::snapshot_path_mu());
  detail::snapshot_path_storage() = path;
}

void request_trace_snapshot() {
  detail::g_snapshot_requested.store(1, std::memory_order_relaxed);
}

bool maybe_write_requested_snapshot() {
  if (detail::g_snapshot_requested.load(std::memory_order_relaxed) == 0) {
    return false;
  }
  if (detail::g_snapshot_requested.exchange(0, std::memory_order_relaxed) ==
      0) {
    return false;  // another thread consumed the request
  }
  std::string path;
  {
    std::lock_guard<std::mutex> lock(detail::snapshot_path_mu());
    path = detail::snapshot_path_storage();
  }
  if (path.empty()) return false;
  return write_chrome_trace(path);
}

void Span::begin(const char* name) {
  active_ = true;
  ev_.name = name;
  ev_.depth = detail::t_depth++;
  ev_.request_id = detail::t_ctx.request_id;
  ev_.start_us = now_us();
}

void Span::end() {
  ev_.dur_us = now_us() - ev_.start_us;
  --detail::t_depth;
  active_ = false;
  detail::ThreadBuf& buf = detail::local_buf();
  ev_.tid = buf.tid;
  {
    std::lock_guard<std::mutex> lock(buf.mu);
    buf.events.push_back(ev_);
  }
  // Armed-path only (end() never runs disarmed, preserving the one-relaxed-
  // load disarmed cost): mirror the close into the flight recorder and
  // honor a pending mid-run snapshot request, both outside the buffer lock.
  flight::record(flight::EventKind::kSpan, ev_.name,
                 static_cast<long long>(ev_.dur_us), ev_.depth,
                 ev_.request_id);
  maybe_write_requested_snapshot();
}

std::vector<SpanEvent> trace_snapshot() {
  std::vector<SpanEvent> out;
  detail::BufRegistry& r = detail::buf_registry();
  std::lock_guard<std::mutex> rlock(r.mu);
  for (const auto& buf : r.bufs) {
    std::lock_guard<std::mutex> lock(buf->mu);
    out.insert(out.end(), buf->events.begin(), buf->events.end());
  }
  return out;
}

void clear_trace() {
  detail::BufRegistry& r = detail::buf_registry();
  std::lock_guard<std::mutex> rlock(r.mu);
  for (const auto& buf : r.bufs) {
    std::lock_guard<std::mutex> lock(buf->mu);
    buf->events.clear();
  }
}

int open_span_depth() { return detail::t_depth; }

std::string chrome_trace_json() {
  const std::vector<SpanEvent> events = trace_snapshot();
  std::ostringstream os;
  os.precision(15);  // default 6 sig figs truncates microsecond timestamps
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const SpanEvent& e : events) {
    detail::append_json_event(os, e, first);
    first = false;
  }
  os << "],\"displayTimeUnit\":\"ms\"}";
  return os.str();
}

bool write_chrome_trace(const std::string& path) {
  const std::string text = chrome_trace_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  bool ok = std::fputs(text.c_str(), f) >= 0;
  ok = std::fputc('\n', f) != EOF && ok;
  ok = std::fflush(f) == 0 && ok;
  std::fclose(f);
  return ok;
}

}  // namespace tdg::obs
