// Always-on flight recorder — a fixed-size per-thread ring of recent
// control-plane events (spans, markers, errors, metric samples) that turns
// an opaque stall or crash into a post-mortem timeline.
//
// Unlike the span buffers (armed-only, unbounded, mutex-appended), the
// flight recorder runs ALWAYS and never allocates after thread start: each
// thread owns a 1024-slot ring of all-atomic slots, and recording one event
// is a handful of relaxed stores plus one relaxed ring-index bump — no
// lock, no clock syscall beyond the steady-clock read, no branch on an
// armed flag. The rings are registered in a leaked global list (the span
// BufRegistry pattern) so a dump can walk them from any thread, including
// a fatal-signal handler, after the writers are long gone.
//
// Consistency model: slots are written field-by-field with relaxed atomics
// by exactly one thread (the ring's owner) and read with relaxed atomics by
// the dumper. A dump racing the writer may observe the slot nearest the
// head mid-update (fields from two events) — acceptable for a post-mortem
// artifact, and flagged by construction: the dump is ordered by timestamp
// and a torn slot shows up as an outlier. TSan-clean: every access is an
// atomic. Call sites are control-plane only (serve admission/resolution,
// task-graph stall, batch failure) — never inner-loop kernels.
//
// Dumps are schema-stamped JSON ("tdg.flight.v1"): written to the
// TDG_FLIGHT_DUMP=<path> file on kPipelineStall, on dispatcher batch-level
// failure, on a fatal signal (best effort), or on demand via dump().
#pragma once

#include <atomic>
#include <string>

namespace tdg::obs::flight {

/// What one ring slot records. kNone marks a never-written slot.
enum class EventKind : int {
  kNone = 0,
  kSpan = 1,    // a closed span: a = dur_us, b = depth
  kMarker = 2,  // a control-plane milestone (admit, dispatch, resolve)
  kMetric = 3,  // a sampled value: a = value
  kError = 4,   // a failure: a/b = site-specific (error code, node id, ...)
};

/// Record one event on the calling thread's ring. `name` must be a string
/// literal (the slot keeps the pointer). `request_id` tags the owning
/// request; pass kAmbientRequest (default) to use the thread's current
/// obs::TraceContext. Always on; wait-free for the owner.
inline constexpr long long kAmbientRequest = -1;
void record(EventKind kind, const char* name, long long a = 0,
            long long b = 0, long long request_id = kAmbientRequest);

/// Events a dump can hold: every thread contributes at most this many.
inline constexpr int kRingCapacity = 1024;

/// Serialize every thread's recent events (timestamp-ordered) as one
/// schema-stamped JSON object. `reason` is recorded verbatim.
std::string dump_json(const std::string& reason);

/// Write dump_json(reason) to `path`. Returns false on I/O failure.
bool dump_to_file(const std::string& path, const std::string& reason);

/// Write a dump to the configured path (TDG_FLIGHT_DUMP or
/// set_dump_path()). No-op returning false when no path is configured.
bool dump(const std::string& reason);

/// Configure the dump destination programmatically (tests; overrides the
/// TDG_FLIGHT_DUMP env var). An empty path disables dump().
void set_dump_path(const std::string& path);

/// Drop every recorded event (tests). Not atomic with respect to
/// concurrent record(); callers quiesce writers first.
void clear();

}  // namespace tdg::obs::flight
