// Process-wide metrics registry — counters, gauges, and histograms for the
// long-running-service view of the library (the ROADMAP's "counter surface
// like plan::CacheStats", generalized).
//
// Two kinds of sites feed the registry:
//
//  * Hot-path sites (thread-pool dispatch, bulge-chase gates) are gated on a
//    process-wide armed flag following the tdg::fault pattern: when metrics
//    are disarmed the entire cost of a site visit is ONE relaxed atomic
//    load. Arm via TDG_METRICS=<path> (snapshot written at process exit) or
//    obs::arm_metrics().
//  * Control-plane sites (solver recovery paths, plan-cache outcomes, fault
//    fires) count ALWAYS — they sit on paths that already take a mutex or
//    do file I/O, and their totals must be trustworthy for telemetry even
//    in processes that never armed metrics (plan::CacheStats reads them).
//
// Counters are sharded across cache-line-padded atomics so concurrent
// increments don't bounce one line; value() sums the shards, and after the
// writers have quiesced (joined) the sum is exact — no increment is ever
// lost or torn. Gauges track a high-water mark via a CAS-max loop.
// Histograms bucket values by power of two (bucket i counts values in
// [2^i, 2^(i+1))) with atomic buckets, so concurrent records never tear;
// count and sum are derived from / accumulated next to the buckets.
//
// Metric names are flat dotted strings ("pool.tasks_run"); the canonical
// set is pre-registered so a snapshot always contains every metric, at zero
// if untouched. Snapshot as a single JSON line via snapshot_json() /
// write_metrics(), schema in docs/ALGORITHMS.md §12.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace tdg::obs {

namespace detail {
extern std::atomic<int> g_metrics_armed;  // 0 = disarmed: the fast path
}  // namespace detail

/// True when metric collection is armed (TDG_METRICS or arm_metrics()).
/// One relaxed load — the entire disarmed cost of a gated site.
inline bool metrics_armed() {
  return detail::g_metrics_armed.load(std::memory_order_relaxed) != 0;
}

void arm_metrics();
void disarm_metrics();

/// Whether a metric counts only while armed (hot-path sites) or always
/// (control-plane sites whose totals back telemetry like plan::CacheStats).
enum class Gating { kArmed, kAlways };

namespace detail {

inline constexpr int kShards = 8;

struct alignas(64) PaddedCounter {
  std::atomic<long long> v{0};
};

/// Shard index for the calling thread — stable per thread, cheap.
int shard_index();

}  // namespace detail

/// Monotonic sharded counter. Thread-safe; value() is exact once writers
/// have quiesced.
class Counter {
 public:
  explicit Counter(Gating gating = Gating::kArmed) : gating_(gating) {}

  void inc(long long delta = 1) {
    if (gating_ == Gating::kArmed && !metrics_armed()) return;
    shards_[detail::shard_index()].v.fetch_add(delta,
                                               std::memory_order_relaxed);
  }

  long long value() const {
    long long s = 0;
    for (const auto& sh : shards_) s += sh.v.load(std::memory_order_relaxed);
    return s;
  }

  /// Zero all shards (tests / PlanCache::reset_stats). Not atomic with
  /// respect to concurrent inc(); callers quiesce first.
  void reset() {
    for (auto& sh : shards_) sh.v.store(0, std::memory_order_relaxed);
  }

 private:
  Gating gating_;
  detail::PaddedCounter shards_[detail::kShards];
};

/// High-water-mark gauge: update_max() keeps the largest observed value.
class Gauge {
 public:
  explicit Gauge(Gating gating = Gating::kArmed) : gating_(gating) {}

  void update_max(long long v) {
    if (gating_ == Gating::kArmed && !metrics_armed()) return;
    long long cur = v_.load(std::memory_order_relaxed);
    while (v > cur &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  void set(long long v) {
    if (gating_ == Gating::kArmed && !metrics_armed()) return;
    v_.store(v, std::memory_order_relaxed);
  }

  long long value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  Gating gating_;
  std::atomic<long long> v_{0};
};

/// Power-of-two histogram of non-negative integer samples (microseconds by
/// convention). Bucket i counts samples in [2^i, 2^(i+1)); bucket 0 also
/// takes 0. Lock-free: buckets and sum are atomics, so concurrent record()
/// calls never tear, and after quiescence count() == sum of buckets.
class Histogram {
 public:
  static constexpr int kBuckets = 40;  // 2^39 us ~ 6.4 days: plenty

  explicit Histogram(Gating gating = Gating::kArmed) : gating_(gating) {}

  void record(long long v) {
    if (gating_ == Gating::kArmed && !metrics_armed()) return;
    if (v < 0) v = 0;
    int b = 0;
    while ((1LL << (b + 1)) <= v && b + 1 < kBuckets) ++b;
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  long long bucket(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  long long count() const {
    long long c = 0;
    for (const auto& b : buckets_) c += b.load(std::memory_order_relaxed);
    return c;
  }
  long long sum() const { return sum_.load(std::memory_order_relaxed); }

  void reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

 private:
  Gating gating_;
  std::atomic<long long> buckets_[kBuckets]{};
  std::atomic<long long> sum_{0};
};

/// Explicit-bound histogram for latency-style samples — the Prometheus
/// classic-histogram shape: bucket i counts samples <= bounds[i] (bounds
/// ascending; one implicit +Inf overflow bucket), so percentile estimates
/// are deterministic (a pure function of the bucket counts) and two
/// exporters can never disagree. Lock-free like Histogram: atomic buckets,
/// sum kept in milli-units so concurrent record() never tears and after
/// quiescence count() equals the sum of buckets exactly.
class BoundedHistogram {
 public:
  static constexpr int kMaxBounds = 24;

  /// `bounds` are ascending upper bounds (n of them, n <= kMaxBounds);
  /// bucket n is the implicit +Inf overflow.
  BoundedHistogram(const double* bounds, int n,
                   Gating gating = Gating::kAlways);

  void record(double v);

  int nbounds() const { return n_; }
  double upper_bound(int i) const { return bounds_[i]; }
  /// Count of bucket i, i in [0, nbounds()] — the last is the overflow.
  long long bucket(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  long long count() const;
  double sum() const {
    return static_cast<double>(sum_milli_.load(std::memory_order_relaxed)) /
           1e3;
  }

  /// Deterministic percentile estimate: the upper bound of the bucket
  /// holding the ceil(p * count)-th sample (the largest finite bound for
  /// overflow samples). Exact to within one bucket bound by construction.
  double percentile(double p) const;

  void reset();

 private:
  Gating gating_;
  int n_;
  double bounds_[kMaxBounds];
  std::atomic<long long> buckets_[kMaxBounds + 1]{};
  std::atomic<long long> sum_milli_{0};
};

/// The canonical latency ladder (ms) shared by every serve.latency_ms
/// histogram, so per-bucket and aggregate percentiles are comparable.
const double* latency_bounds_ms(int* n);

/// Name -> metric registry. Metrics are created on first use and live for
/// the process; lookups after creation are lock-free via the returned
/// pointer (call sites cache it in a function-local static).
class Registry {
 public:
  Counter* counter(const std::string& name, Gating gating = Gating::kArmed);
  Gauge* gauge(const std::string& name, Gating gating = Gating::kArmed);
  Histogram* histogram(const std::string& name,
                       Gating gating = Gating::kArmed);

  /// A labelled explicit-bound latency histogram (latency_bounds_ms
  /// ladder). `label` is the shape-bucket dimension ("" = the aggregate
  /// series); exported as name{bucket="<label>"} in OpenMetrics.
  BoundedHistogram* latency(const std::string& name, const std::string& label,
                            Gating gating = Gating::kAlways);

  /// One JSON line with every registered metric:
  ///   {"schema_version":1,"counters":{...},"gauges":{...},
  ///    "histograms":{"name":{"count":..,"sum":..,"buckets":[..]}}}
  /// Histogram buckets are trimmed to the highest non-empty one.
  std::string snapshot_json() const;

  /// Write snapshot_json() + '\n' to `path`. Returns false on I/O failure.
  bool write(const std::string& path) const;

  /// Render every registered metric as OpenMetrics/Prometheus text:
  /// counters as <name>_total, gauges verbatim, pow2 Histograms and
  /// labelled latency histograms as classic cumulative-le histograms.
  /// Names are prefixed "tdg_" with dots mapped to underscores; the text
  /// ends with the "# EOF" terminator (which the line protocol reuses as
  /// its framing sentinel for the METRICS verb).
  std::string openmetrics_text() const;

  /// Write openmetrics_text() to `path`. Returns false on I/O failure.
  bool write_openmetrics(const std::string& path) const;

  /// Zero every metric (tests). Callers quiesce writers first.
  void reset();

  /// The process-wide registry. Its constructor pre-registers the canonical
  /// metric set (docs/ALGORITHMS.md §12) so snapshots are shape-stable.
  static Registry& global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  // name -> label -> series ("" label = the aggregate series).
  std::map<std::string, std::map<std::string, std::unique_ptr<BoundedHistogram>>>
      latency_;
};

}  // namespace tdg::obs
