#include "obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <thread>

#include "common/json.h"

namespace tdg::obs {

namespace detail {

std::atomic<int> g_metrics_armed{0};

int shard_index() {
  // A small per-thread id assigned on first use spreads threads across
  // shards without hashing pthread handles.
  static std::atomic<int> next{0};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
  return id % kShards;
}

}  // namespace detail

void arm_metrics() {
  detail::g_metrics_armed.store(1, std::memory_order_relaxed);
}

void disarm_metrics() {
  detail::g_metrics_armed.store(0, std::memory_order_relaxed);
}

// ---- BoundedHistogram ------------------------------------------------------

BoundedHistogram::BoundedHistogram(const double* bounds, int n, Gating gating)
    : gating_(gating), n_(std::min(n, kMaxBounds)) {
  for (int i = 0; i < n_; ++i) bounds_[i] = bounds[i];
  for (int i = n_; i < kMaxBounds; ++i) bounds_[i] = 0.0;
}

void BoundedHistogram::record(double v) {
  if (gating_ == Gating::kArmed && !metrics_armed()) return;
  if (v < 0.0 || std::isnan(v)) v = 0.0;
  int b = n_;  // overflow bucket unless a finite bound covers v
  for (int i = 0; i < n_; ++i) {
    if (v <= bounds_[i]) {
      b = i;
      break;
    }
  }
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  sum_milli_.fetch_add(static_cast<long long>(std::llround(v * 1e3)),
                       std::memory_order_relaxed);
}

long long BoundedHistogram::count() const {
  long long c = 0;
  for (int i = 0; i <= n_; ++i) {
    c += buckets_[i].load(std::memory_order_relaxed);
  }
  return c;
}

double BoundedHistogram::percentile(double p) const {
  const long long total = count();
  if (total <= 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const long long rank = std::max<long long>(
      1, static_cast<long long>(std::ceil(p * static_cast<double>(total))));
  long long cum = 0;
  for (int i = 0; i < n_; ++i) {
    cum += buckets_[i].load(std::memory_order_relaxed);
    if (cum >= rank) return bounds_[i];
  }
  return n_ > 0 ? bounds_[n_ - 1] : 0.0;  // overflow: the largest bound
}

void BoundedHistogram::reset() {
  for (int i = 0; i <= n_; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  sum_milli_.store(0, std::memory_order_relaxed);
}

const double* latency_bounds_ms(int* n) {
  static const double kBounds[] = {1,   2,    5,    10,   20,    50,   100, 200,
                                   500, 1000, 2000, 5000, 10000, 30000, 60000};
  *n = static_cast<int>(sizeof(kBounds) / sizeof(kBounds[0]));
  return kBounds;
}

Counter* Registry::counter(const std::string& name, Gating gating) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>(gating);
  return slot.get();
}

Gauge* Registry::gauge(const std::string& name, Gating gating) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>(gating);
  return slot.get();
}

Histogram* Registry::histogram(const std::string& name, Gating gating) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(gating);
  return slot.get();
}

BoundedHistogram* Registry::latency(const std::string& name,
                                    const std::string& label, Gating gating) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = latency_[name][label];
  if (!slot) {
    int n = 0;
    const double* bounds = latency_bounds_ms(&n);
    slot = std::make_unique<BoundedHistogram>(bounds, n, gating);
  }
  return slot.get();
}

std::string Registry::snapshot_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\"schema_version\":1,\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "" : ",") << '"' << json::escape(name)
       << "\":" << c->value();
    first = false;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "" : ",") << '"' << json::escape(name)
       << "\":" << g->value();
    first = false;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "" : ",") << '"' << json::escape(name)
       << "\":{\"count\":" << h->count() << ",\"sum\":" << h->sum()
       << ",\"buckets\":[";
    int hi = Histogram::kBuckets;
    while (hi > 0 && h->bucket(hi - 1) == 0) --hi;
    for (int i = 0; i < hi; ++i) os << (i ? "," : "") << h->bucket(i);
    os << "]}";
    first = false;
  }
  os << "}}";
  return os.str();
}

bool Registry::write(const std::string& path) const {
  const std::string line = snapshot_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  bool ok = std::fputs(line.c_str(), f) >= 0;
  ok = std::fputc('\n', f) != EOF && ok;
  ok = std::fflush(f) == 0 && ok;
  std::fclose(f);
  return ok;
}

namespace {

/// OpenMetrics metric name: dots become underscores under a tdg_ prefix.
std::string om_name(const std::string& name) {
  std::string out = "tdg_";
  for (const char c : name) out.push_back(c == '.' ? '_' : c);
  return out;
}

/// Format a double the way Prometheus expects (no trailing zeros needed,
/// %.17g round-trips).
std::string om_num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string Registry::openmetrics_text() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  for (const auto& [name, c] : counters_) {
    const std::string n = om_name(name);
    os << "# TYPE " << n << " counter\n"
       << n << "_total " << c->value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    const std::string n = om_name(name);
    os << "# TYPE " << n << " gauge\n" << n << " " << g->value() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const std::string n = om_name(name);
    os << "# TYPE " << n << " histogram\n";
    int hi = Histogram::kBuckets;
    while (hi > 0 && h->bucket(hi - 1) == 0) --hi;
    long long cum = 0;
    for (int i = 0; i < hi; ++i) {
      cum += h->bucket(i);
      // pow2 bucket i holds integer samples <= 2^(i+1) - 1.
      os << n << "_bucket{le=\"" << ((1LL << (i + 1)) - 1) << "\"} " << cum
         << "\n";
    }
    os << n << "_bucket{le=\"+Inf\"} " << h->count() << "\n"
       << n << "_sum " << h->sum() << "\n"
       << n << "_count " << h->count() << "\n";
  }
  for (const auto& [name, series] : latency_) {
    const std::string n = om_name(name);
    os << "# TYPE " << n << " histogram\n";
    for (const auto& [label, h] : series) {
      const std::string lbl = label.empty() ? "all" : label;
      long long cum = 0;
      for (int i = 0; i < h->nbounds(); ++i) {
        cum += h->bucket(i);
        os << n << "_bucket{bucket=\"" << lbl << "\",le=\""
           << om_num(h->upper_bound(i)) << "\"} " << cum << "\n";
      }
      os << n << "_bucket{bucket=\"" << lbl << "\",le=\"+Inf\"} "
         << h->count() << "\n"
         << n << "_sum{bucket=\"" << lbl << "\"} " << om_num(h->sum())
         << "\n"
         << n << "_count{bucket=\"" << lbl << "\"} " << h->count() << "\n";
    }
  }
  os << "# EOF\n";
  return os.str();
}

bool Registry::write_openmetrics(const std::string& path) const {
  const std::string text = openmetrics_text();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  bool ok = std::fputs(text.c_str(), f) >= 0;
  ok = std::fflush(f) == 0 && ok;
  std::fclose(f);
  return ok;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
  for (auto& [name, series] : latency_) {
    for (auto& [label, h] : series) h->reset();
  }
}

Registry& Registry::global() {
  static Registry* reg = [] {
    auto* r = new Registry();  // leaked: must outlive atexit writers
    // Pre-register the canonical set (docs/ALGORITHMS.md §12) so every
    // snapshot carries every metric, at zero if untouched.
    r->counter("pool.tasks_run");
    r->counter("pool.dispatches");
    r->counter("pool.parks");
    r->counter("pool.wakes");
    r->histogram("pool.queue_wait_us");
    r->counter("taskgraph.runs");
    r->counter("taskgraph.nodes_run");
    r->counter("taskgraph.nodes_cancelled");
    r->counter("taskgraph.busy_us");
    r->counter("taskgraph.overlap_us");
    r->counter("taskgraph.idle_us");
    r->counter("taskgraph.stalls", Gating::kAlways);
    r->gauge("taskgraph.ready_depth_hwm");
    r->counter("bc.sweeps");
    r->counter("bc.gate_spin_episodes");
    r->counter("bc.stall_near_miss");
    r->histogram("bc.gate_wait_us");
    r->gauge("bc.sweep_concurrency_hwm");
    r->counter("evd.recovery.dc_steqr", Gating::kAlways);
    r->counter("evd.recovery.dc_steqr_bisect", Gating::kAlways);
    r->counter("evd.recovery.steqr_bisect", Gating::kAlways);
    r->counter("evd.refine_iters", Gating::kAlways);
    r->counter("evd.fp32_fallbacks", Gating::kAlways);
    r->gauge("evd.peak_workspace_bytes", Gating::kAlways);
    r->counter("plan.cache_hits", Gating::kAlways);
    r->counter("plan.cache_misses", Gating::kAlways);
    r->counter("plan.measure_runs", Gating::kAlways);
    r->counter("plan.cache_loads", Gating::kAlways);
    r->counter("plan.cache_saves", Gating::kAlways);
    r->counter("plan.cache_save_failures", Gating::kAlways);
    r->counter("plan.cache_lock_failures", Gating::kAlways);
    r->counter("plan.cache_lock_waits", Gating::kAlways);
    r->counter("plan.cache_merged_entries", Gating::kAlways);
    r->counter("fault.fires", Gating::kAlways);
    r->counter("batch.problems", Gating::kAlways);
    r->counter("batch.steals", Gating::kAlways);
    r->counter("batch.plans_resolved", Gating::kAlways);
    r->counter("batch.bucket_plan_hits", Gating::kAlways);
    r->counter("batch.recoveries", Gating::kAlways);
    r->counter("batch.failures", Gating::kAlways);
    r->counter("serve.submitted", Gating::kAlways);
    r->counter("serve.admitted", Gating::kAlways);
    r->counter("serve.rejected", Gating::kAlways);
    r->counter("serve.completed", Gating::kAlways);
    r->counter("serve.degraded", Gating::kAlways);
    r->counter("serve.precision_degraded", Gating::kAlways);
    r->counter("serve.failed", Gating::kAlways);
    r->counter("serve.retries", Gating::kAlways);
    r->counter("serve.breaker_trips", Gating::kAlways);
    r->counter("serve.batches", Gating::kAlways);
    r->counter("serve.deadline_failures", Gating::kAlways);
    r->gauge("serve.queue_depth", Gating::kAlways);
    r->gauge("serve.queue_depth_hwm", Gating::kAlways);
    r->histogram("serve.latency_us", Gating::kAlways);
    r->histogram("profile.model_drift_pct", Gating::kAlways);
    r->latency("serve.latency_ms", "", Gating::kAlways);
    return r;
  }();
  return *reg;
}

namespace {

/// Periodic OpenMetrics snapshot writer: TDG_METRICS_PROM=<path> starts a
/// background thread rewriting <path> every TDG_METRICS_PROM_INTERVAL_MS
/// (default 1000), with a final write at exit — the pull-scrape stand-in
/// for processes without a listening socket (benches, the soak job). The
/// thread is joined from the atexit handler before the leaked registry is
/// read for the last time, so no write races process teardown.
struct PromWriter {
  std::mutex mu;
  std::condition_variable cv;
  bool stop = false;
  std::string path;
  int interval_ms = 1000;
  std::thread worker;

  void run() {
    std::unique_lock<std::mutex> lk(mu);
    for (;;) {
      cv.wait_for(lk, std::chrono::milliseconds(interval_ms),
                  [&] { return stop; });
      if (stop) return;
      lk.unlock();
      (void)Registry::global().write_openmetrics(path);
      lk.lock();
    }
  }

  static PromWriter& get() {
    static PromWriter* w = new PromWriter();  // leaked: atexit joins, never
    return *w;                                // destroys
  }
};

struct PromEnvInit {
  PromEnvInit() {
    const char* path = std::getenv("TDG_METRICS_PROM");
    if (path == nullptr) return;
    (void)Registry::global();
    PromWriter& w = PromWriter::get();
    w.path = path;
    if (const char* iv = std::getenv("TDG_METRICS_PROM_INTERVAL_MS")) {
      const int ms = std::atoi(iv);
      if (ms > 0) w.interval_ms = ms;
    }
    w.worker = std::thread([&w] { w.run(); });
    std::atexit(+[] {
      PromWriter& pw = PromWriter::get();
      {
        std::lock_guard<std::mutex> lk(pw.mu);
        pw.stop = true;
      }
      pw.cv.notify_all();
      pw.worker.join();
      (void)Registry::global().write_openmetrics(pw.path);
    });
  }
};
const PromEnvInit prom_env_init;

}  // namespace

}  // namespace tdg::obs
