#include "obs/metrics.h"

#include <cstdio>
#include <sstream>

#include "common/json.h"

namespace tdg::obs {

namespace detail {

std::atomic<int> g_metrics_armed{0};

int shard_index() {
  // A small per-thread id assigned on first use spreads threads across
  // shards without hashing pthread handles.
  static std::atomic<int> next{0};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
  return id % kShards;
}

}  // namespace detail

void arm_metrics() {
  detail::g_metrics_armed.store(1, std::memory_order_relaxed);
}

void disarm_metrics() {
  detail::g_metrics_armed.store(0, std::memory_order_relaxed);
}

Counter* Registry::counter(const std::string& name, Gating gating) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>(gating);
  return slot.get();
}

Gauge* Registry::gauge(const std::string& name, Gating gating) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>(gating);
  return slot.get();
}

Histogram* Registry::histogram(const std::string& name, Gating gating) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(gating);
  return slot.get();
}

std::string Registry::snapshot_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\"schema_version\":1,\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "" : ",") << '"' << json::escape(name)
       << "\":" << c->value();
    first = false;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "" : ",") << '"' << json::escape(name)
       << "\":" << g->value();
    first = false;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "" : ",") << '"' << json::escape(name)
       << "\":{\"count\":" << h->count() << ",\"sum\":" << h->sum()
       << ",\"buckets\":[";
    int hi = Histogram::kBuckets;
    while (hi > 0 && h->bucket(hi - 1) == 0) --hi;
    for (int i = 0; i < hi; ++i) os << (i ? "," : "") << h->bucket(i);
    os << "]}";
    first = false;
  }
  os << "}}";
  return os.str();
}

bool Registry::write(const std::string& path) const {
  const std::string line = snapshot_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  bool ok = std::fputs(line.c_str(), f) >= 0;
  ok = std::fputc('\n', f) != EOF && ok;
  ok = std::fflush(f) == 0 && ok;
  std::fclose(f);
  return ok;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

Registry& Registry::global() {
  static Registry* reg = [] {
    auto* r = new Registry();  // leaked: must outlive atexit writers
    // Pre-register the canonical set (docs/ALGORITHMS.md §12) so every
    // snapshot carries every metric, at zero if untouched.
    r->counter("pool.tasks_run");
    r->counter("pool.dispatches");
    r->counter("pool.parks");
    r->counter("pool.wakes");
    r->histogram("pool.queue_wait_us");
    r->counter("taskgraph.runs");
    r->counter("taskgraph.nodes_run");
    r->counter("taskgraph.nodes_cancelled");
    r->counter("taskgraph.busy_us");
    r->counter("taskgraph.overlap_us");
    r->counter("taskgraph.idle_us");
    r->counter("taskgraph.stalls", Gating::kAlways);
    r->gauge("taskgraph.ready_depth_hwm");
    r->counter("bc.sweeps");
    r->counter("bc.gate_spin_episodes");
    r->counter("bc.stall_near_miss");
    r->histogram("bc.gate_wait_us");
    r->gauge("bc.sweep_concurrency_hwm");
    r->counter("evd.recovery.dc_steqr", Gating::kAlways);
    r->counter("evd.recovery.dc_steqr_bisect", Gating::kAlways);
    r->counter("evd.recovery.steqr_bisect", Gating::kAlways);
    r->counter("plan.cache_hits", Gating::kAlways);
    r->counter("plan.cache_misses", Gating::kAlways);
    r->counter("plan.measure_runs", Gating::kAlways);
    r->counter("plan.cache_loads", Gating::kAlways);
    r->counter("plan.cache_saves", Gating::kAlways);
    r->counter("plan.cache_save_failures", Gating::kAlways);
    r->counter("plan.cache_lock_failures", Gating::kAlways);
    r->counter("plan.cache_lock_waits", Gating::kAlways);
    r->counter("plan.cache_merged_entries", Gating::kAlways);
    r->counter("fault.fires", Gating::kAlways);
    r->counter("batch.problems", Gating::kAlways);
    r->counter("batch.steals", Gating::kAlways);
    r->counter("batch.plans_resolved", Gating::kAlways);
    r->counter("batch.bucket_plan_hits", Gating::kAlways);
    r->counter("batch.recoveries", Gating::kAlways);
    r->counter("batch.failures", Gating::kAlways);
    r->counter("serve.submitted", Gating::kAlways);
    r->counter("serve.admitted", Gating::kAlways);
    r->counter("serve.rejected", Gating::kAlways);
    r->counter("serve.completed", Gating::kAlways);
    r->counter("serve.degraded", Gating::kAlways);
    r->counter("serve.failed", Gating::kAlways);
    r->counter("serve.retries", Gating::kAlways);
    r->counter("serve.breaker_trips", Gating::kAlways);
    r->counter("serve.batches", Gating::kAlways);
    r->counter("serve.deadline_failures", Gating::kAlways);
    r->gauge("serve.queue_depth", Gating::kAlways);
    r->gauge("serve.queue_depth_hwm", Gating::kAlways);
    r->histogram("serve.latency_us", Gating::kAlways);
    return r;
  }();
  return *reg;
}

}  // namespace tdg::obs
