// Hierarchical phase spans — the tracing pillar of the observability layer.
//
// An obs::Span is an RAII scope that records one named interval (wall time,
// thread, nesting depth, a few integer attributes, optionally a flop
// credit) into a per-thread buffer. Instrumentation covers the whole
// pipeline: sy2sb/dbbr panels and their trailing syr2k updates, the
// band-to-band steps, each pipelined bulge-chase sweep (with its gate
// spin-wait time as an attribute), the tridiagonal solvers, and both
// back-transform stages. The recorded forest reconstructs a per-run span
// tree per thread: spans on one thread are properly nested by construction
// (RAII closes them in LIFO order, including through exceptions).
//
// Cost model (the tdg::fault contract): when tracing is disarmed, a span
// site costs exactly one relaxed atomic load — no clock read, no
// allocation, no buffer touch. Arm via the TDG_TRACE_JSON=<path>
// environment variable (read once at startup; a Chrome/Perfetto trace-event
// JSON file is written to <path> at process exit) or programmatically with
// arm_tracing() + write_chrome_trace(). Only spans that have CLOSED are
// exported; a span still open at snapshot time appears once it closes.
//
// The export loads directly into Perfetto / chrome://tracing: one complete
// event ("ph":"X") per span, microsecond timestamps relative to process
// start, span attributes under "args".
#pragma once

#include <atomic>
#include <string>
#include <vector>

namespace tdg::obs {

namespace detail {
extern std::atomic<int> g_trace_armed;  // 0 = disarmed: the fast path
}  // namespace detail

/// Ambient request identity for the current thread. Minted once per serve
/// request at admission (next_request_id()) and carried across every
/// cross-thread handoff — thread-pool helper tasks, task-graph nodes,
/// batch slots, the retry executor — by capturing current_context() at
/// dispatch and installing a ContextScope in the receiving task. Every
/// span closed while a context is installed is tagged with the request id,
/// so the Chrome-trace export reconstructs one end-to-end flow per request.
/// request_id 0 means "no ambient request" (library work outside serve).
struct TraceContext {
  long long request_id = 0;
  long long span_id = 0;  // reserved for parent-span linkage
};

/// The calling thread's ambient context ({0,0} when none installed).
TraceContext current_context();

/// Process-wide monotonically increasing request ids, starting at 1.
long long next_request_id();

/// RAII ambient-context install: saves the thread's current context,
/// installs `ctx`, restores on destruction (exception-safe). Cheap — two
/// thread-local copies, no atomics — so every cross-thread handoff can
/// afford one unconditionally.
class ContextScope {
 public:
  explicit ContextScope(TraceContext ctx);
  ~ContextScope();
  ContextScope(const ContextScope&) = delete;
  ContextScope& operator=(const ContextScope&) = delete;

 private:
  TraceContext prev_;
};

/// True when span collection is armed. One relaxed load — the entire
/// disarmed cost of a span site.
inline bool tracing_armed() {
  return detail::g_trace_armed.load(std::memory_order_relaxed) != 0;
}

void arm_tracing();
void disarm_tracing();

/// One closed span. Times are microseconds since an arbitrary process-wide
/// epoch (steady clock); tid is a small dense per-thread id; depth is the
/// span's nesting level on its thread (0 = top level).
struct SpanEvent {
  static constexpr int kMaxAttrs = 4;
  const char* name = "";  // string literal supplied at the span site
  double start_us = 0.0;
  double dur_us = 0.0;
  int tid = 0;
  int depth = 0;
  int nattrs = 0;
  struct Attr {
    const char* key;  // string literal
    long long value;
  } attrs[kMaxAttrs] = {};
  double flops = 0.0;       // optional flop credit (0 = not recorded)
  long long request_id = 0;  // ambient TraceContext at begin (0 = none)
};

/// RAII span. Inert (single relaxed load, nothing else) when tracing is
/// disarmed at construction; otherwise records a SpanEvent on destruction.
class Span {
 public:
  explicit Span(const char* name) {
    if (tracing_armed()) begin(name);
  }
  ~Span() {
    if (active_) end();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attach "key":value to the span (first kMaxAttrs stick). `key` must be
  /// a string literal. No-op when the span is inert.
  void attr(const char* key, long long value) {
    if (!active_ || ev_.nattrs >= SpanEvent::kMaxAttrs) return;
    ev_.attrs[ev_.nattrs++] = {key, value};
  }

  /// Credit FP64 flops to the span (shows up as "flops" in args).
  void add_flops(double f) {
    if (active_) ev_.flops += f;
  }

  bool active() const { return active_; }

 private:
  void begin(const char* name);
  void end();

  bool active_ = false;
  SpanEvent ev_;
};

/// Microseconds since the process-wide trace epoch (for hand-timed
/// sub-intervals like gate waits that are attached as attributes).
double now_us();

/// Copy of every closed span recorded since the last clear_trace(), all
/// threads, in per-thread recording order.
std::vector<SpanEvent> trace_snapshot();

/// Drop all recorded spans (tests; also useful between benchmark reps).
void clear_trace();

/// Open-span depth on the calling thread — 0 means every Span constructed
/// here has been destroyed (balanced even across exceptions).
int open_span_depth();

/// Write the recorded spans as Chrome trace-event JSON. Returns false on
/// I/O failure. Safe mid-run while tracing stays armed: the snapshot copies
/// closed spans under the per-thread buffer locks without disarming, so
/// concurrent span sites are never lost and open spans appear on the next
/// snapshot.
bool write_chrome_trace(const std::string& path);

/// Serialize the recorded spans to the Chrome trace-event JSON text.
std::string chrome_trace_json();

// ---- mid-run snapshots ----------------------------------------------------
//
// A long-running service wants a trace *now*, not at process exit. The
// snapshot request is a single atomic flag (async-signal-safe: the SIGUSR1
// handler installed alongside TDG_TRACE_JSON just sets it), consumed on the
// next armed span close — the write happens on a normal thread, outside any
// buffer lock, while tracing stays armed (no disarm/re-arm race).

/// Destination for flag-triggered snapshots. Set automatically to the
/// TDG_TRACE_JSON path + ".snap.json" (a sibling file, so a mid-run
/// snapshot never clobbers the at-exit trace); tests may point it
/// elsewhere. Thread-safe.
void set_snapshot_path(const std::string& path);

/// Request a mid-run snapshot (what the SIGUSR1 handler does). The next
/// armed span close — or an explicit maybe_write_requested_snapshot() —
/// performs the write. Async-signal-safe.
void request_trace_snapshot();

/// If a snapshot was requested and a snapshot path is set, consume the
/// request and write the trace. Returns true when a file was written.
bool maybe_write_requested_snapshot();

}  // namespace tdg::obs
