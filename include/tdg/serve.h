// Public umbrella header for the tdg EVD service layer.
//
//   tdg::serve::ServeCore — admission control, deadlines, shape-bucket
//       coalescing into eigh_batched, retry/degradation ladder, per-bucket
//       circuit breakers, graceful drain (src/serve/serve.h for the full
//       contract)
//   tdg::serve::wire      — the line protocol the TCP front end
//       (examples/serve_main.cc) and bench_serve speak
//
// See docs/ALGORITHMS.md §15 and the README "serving quickstart".
#pragma once

#include "serve/serve.h"  // ServeCore, ServeOptions, RequestOptions, ...
#include "serve/wire.h"   // wire::parse_line, wire::format_response
