// Public umbrella header for the tdg eigensolver API.
//
// This is the one include consumers (examples, benches, downstream code)
// need for the full driver surface:
//
//   tdg::eig::eigh          — full symmetric EVD, A = V diag(w) V^T
//   tdg::eig::eigh_range    — subset EVD over eigenvalue indices [il, iu]
//   tdg::eig::eigh_batched  — B independent small EVDs, one per pool worker
//   tdg::eig::validate      — resolve an EvdOptions exactly as eigh would,
//                             without running (mode normalization, knob
//                             folding, range checks)
//   tdg::tridiagonalize / tdg::apply_q — the two-stage pipeline pieces
//
// plus every option struct they take (EvdOptions, BatchOptions,
// TridiagOptions, ApplyQOptions, plan::Knobs), the planner's public types
// (PlanMode, plan::Plan, plan::ProblemShape, plan::plan_for) for plan
// sharing via the eigh(..., plan) overloads, and the Matrix types.
//
// Execution modes (the one spelling — EvdOptions::mode, plan::EvdMode):
//
//   kStandard       — full-FP64 pipeline, bitwise-stable default
//   kValuesOnly     — eigenvalues only; Q1/Q2 accumulation skipped, peak
//                     workspace strictly below the standard path
//   kMixedPrecision — FP32 band reduction + bulge chase, FP64 tridiagonal
//                     solve + Ogita–Aishima refinement; automatic rerun in
//                     full FP64 on refinement failure (recovery
//                     "fp32->fp64")
//
// `vectors` and `mode` are one axis: eigh normalizes them against each
// other (EvdOptions::mode docs); use tdg::eig::validate to see the
// resolved configuration up front.
//
// Internal headers under src/ remain includable for white-box use (the
// figure-reproduction benches reach into src/gpumodel, for instance), but
// everything needed to *call* the library is re-exported here; new code
// should prefer `#include <tdg/eig.h>` over reaching into src/... paths.
#pragma once

#include "core/tridiag.h"   // tridiagonalize, apply_q, TridiagOptions
#include "eig/batched.h"    // eigh_batched, BatchOptions, BatchResult
#include "eig/drivers.h"    // eigh, eigh_range, EvdOptions, EvdResult
#include "eig/eig.h"        // steqr, stedc (tridiagonal kernels)
#include "la/matrix.h"      // Matrix, MatrixView, ConstMatrixView
#include "plan/knobs.h"     // plan::Knobs (consolidated knob sub-struct)
#include "plan/plan.h"      // PlanMode, plan::Plan, plan::plan_for
