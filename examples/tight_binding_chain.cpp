// Tight-binding Hamiltonian spectra — the condensed-matter application the
// paper cites (Section 7.2, ref [15]).
//
// Builds a 1-D tight-binding chain with nearest- and next-nearest-neighbour
// hopping plus Anderson on-site disorder, diagonalises it with the two-stage
// pipeline, and prints the density of states. With zero disorder and only
// nearest-neighbour hopping the spectrum is analytic
// (E_j = -2 t cos(j pi/(n+1))), which the example verifies.
//
//   ./build/examples/tight_binding_chain [sites] [disorder]

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include <tdg/eig.h>

#include "common/rng.h"
#include "la/generate.h"

int main(int argc, char** argv) {
  using namespace tdg;
  const index_t n = (argc > 1) ? std::atoll(argv[1]) : 768;
  const double disorder = (argc > 2) ? std::atof(argv[2]) : 1.5;
  const double t1 = 1.0;   // nearest-neighbour hopping
  const double t2 = 0.25;  // next-nearest-neighbour hopping

  // --- Sanity check on the clean chain (t2 = 0, no disorder). ---
  {
    Matrix h = laplacian_1d(n);            // 2 on diag, -1 off: shift/scale
    for (index_t i = 0; i < n; ++i) h(i, i) = 0.0;  // pure hopping chain
    eig::EvdOptions opts;
    opts.vectors = false;
    opts.tridiag.method = TridiagMethod::kTwoStageDbbr;
    opts.tridiag.b = 16;
    opts.tridiag.k = 64;
    const eig::EvdResult evd = eig::eigh(h.view(), opts);
    double maxerr = 0.0;
    for (index_t j = 1; j <= n; ++j) {
      // E_j = -2 t cos(j pi/(n+1)) is increasing in j, matching the
      // ascending order eigh() returns.
      const double exact = -2.0 * t1 *
                           std::cos(static_cast<double>(j) * M_PI /
                                    static_cast<double>(n + 1));
      const double got = evd.eigenvalues[static_cast<std::size_t>(j - 1)];
      maxerr = std::max(maxerr, std::abs(got - exact));
    }
    std::printf("clean chain (n=%lld): max |E - analytic| = %.2e\n",
                static_cast<long long>(n), maxerr);
  }

  // --- Disordered chain with NNN hopping. ---
  Rng rng(11);
  Matrix h(n, n);
  for (index_t i = 0; i < n; ++i) {
    h(i, i) = disorder * rng.uniform(-0.5, 0.5);  // Anderson disorder
    if (i + 1 < n) {
      h(i + 1, i) = -t1;
      h(i, i + 1) = -t1;
    }
    if (i + 2 < n) {
      h(i + 2, i) = -t2;
      h(i, i + 2) = -t2;
    }
  }

  eig::EvdOptions opts;
  opts.vectors = true;
  opts.tridiag.method = TridiagMethod::kTwoStageDbbr;
  opts.tridiag.b = 16;
  opts.tridiag.k = 64;
  const eig::EvdResult evd = eig::eigh(h.view(), opts);

  // Density of states histogram.
  constexpr int kBins = 24;
  const double lo = evd.eigenvalues.front();
  const double hi = evd.eigenvalues.back();
  std::vector<int> bins(kBins, 0);
  for (double w : evd.eigenvalues) {
    int bin = static_cast<int>((w - lo) / (hi - lo) * kBins);
    bins[static_cast<std::size_t>(std::clamp(bin, 0, kBins - 1))]++;
  }
  std::printf("\ndisordered chain: W = %.2f, band = [%.3f, %.3f]\n", disorder,
              lo, hi);
  std::printf("density of states:\n");
  const int maxc = *std::max_element(bins.begin(), bins.end());
  for (int bnum = 0; bnum < kBins; ++bnum) {
    const double e = lo + (bnum + 0.5) * (hi - lo) / kBins;
    std::printf("%8.3f | %-50.*s %d\n", e,
                50 * bins[static_cast<std::size_t>(bnum)] / maxc,
                "##################################################",
                bins[static_cast<std::size_t>(bnum)]);
  }

  // Inverse participation ratio of the band-edge state — large under
  // Anderson localisation.
  double ipr = 0.0;
  for (index_t i = 0; i < n; ++i) {
    const double c = evd.eigenvectors(i, 0);
    ipr += c * c * c * c;
  }
  std::printf("\nIPR of the lowest state: %.4f (1/n = %.4f; >> 1/n means "
              "localised)\n", ipr, 1.0 / static_cast<double>(n));
  return 0;
}
