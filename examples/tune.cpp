// tune — warm the persistent plan cache ahead of time.
//
// Runs the planner's measure tier for a range of problem sizes and stores
// the winners in the plan-cache file, so later eigh() calls with
// PlanMode::kMeasure start from a cache hit instead of re-measuring
// (FFTW's `fftw-wisdom` utility, in miniature).
//
//   ./tune                         # n = 256..2048, cache from TDG_PLAN_CACHE
//   ./tune --n_min=512 --n_max=4096 --cache=plans.json
//   ./tune --heuristic             # print tier-1 plans only, no measuring
//
// The cache file is JSON and safe to inspect or delete; entries are keyed
// by machine fingerprint, so one file can be shared across machines.

#include <cstdio>
#include <cstdlib>
#include <string>

#include <tdg/eig.h>

#include "plan/fingerprint.h"

namespace {

long long arg_int(int argc, char** argv, const std::string& name,
                  long long fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind(prefix, 0) == 0) return std::stoll(a.substr(prefix.size()));
  }
  return fallback;
}

std::string arg_str(int argc, char** argv, const std::string& name,
                    const std::string& fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind(prefix, 0) == 0) return a.substr(prefix.size());
  }
  return fallback;
}

bool arg_flag(int argc, char** argv, const std::string& name) {
  const std::string flag = "--" + name;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

void print_plan(long long n, const tdg::plan::Plan& p) {
  std::printf(
      "%8lld  %-9s b=%-3lld k=%-5lld nb=%-3lld S=%-3lld bc_threads=%-2d "
      "bt_kw=%-4lld q2_group=%-3lld smlsiz=%-3lld",
      n, tdg::plan::to_string(p.source), static_cast<long long>(p.b),
      static_cast<long long>(p.k), static_cast<long long>(p.sytrd_nb),
      static_cast<long long>(p.max_parallel_sweeps), p.bc_threads,
      static_cast<long long>(p.bt_kw), static_cast<long long>(p.q2_group),
      static_cast<long long>(p.smlsiz));
  if (p.measured_seconds > 0.0) {
    std::printf("  proxy=%.4fs", p.measured_seconds);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const long long n_min = arg_int(argc, argv, "n_min", 256);
  const long long n_max = arg_int(argc, argv, "n_max", 2048);
  const bool heuristic_only = arg_flag(argc, argv, "heuristic");

  std::string cache = arg_str(argc, argv, "cache", "");
  if (cache.empty()) {
    if (const char* env = std::getenv("TDG_PLAN_CACHE")) cache = env;
  }
  if (cache.empty()) cache = "tdg_plan_cache.json";

  std::printf("machine: %s\n", tdg::plan::machine_fingerprint().c_str());
  std::printf("cache:   %s\n\n", heuristic_only ? "(none)" : cache.c_str());

  for (long long n = n_min; n <= n_max; n *= 2) {
    const tdg::plan::ProblemShape shape{static_cast<tdg::index_t>(n),
                                        /*vectors=*/true, /*subset=*/0};
    if (heuristic_only) {
      print_plan(n, tdg::plan::heuristic_plan(shape));
      continue;
    }
    tdg::plan::PlannerOptions popts;
    popts.cache_path = cache;
    print_plan(n, tdg::plan::measured_plan(shape, popts));
  }

  if (!heuristic_only) {
    std::printf("\ncache warmed; rerun to see every row served from it.\n");
  }
  return 0;
}
