// Capacity-planning example for the device model: given a problem size,
// project how long each tridiagonalization pipeline would take on an
// H100-SXM and an RTX 4090, and how the bulge-chasing pipeline scales with
// the number of parallel sweeps.
//
//   ./build/examples/device_projection [n] [b] [k]

#include <cstdio>
#include <cstdlib>

#include "gpumodel/bc_pipeline_model.h"
#include "gpumodel/kernel_model.h"
#include "gpumodel/trace_cost.h"

int main(int argc, char** argv) {
  using namespace tdg;
  const index_t n = (argc > 1) ? std::atoll(argv[1]) : 32768;
  const index_t b = (argc > 2) ? std::atoll(argv[2]) : 32;
  const index_t k = (argc > 3) ? std::atoll(argv[3]) : 1024;

  std::printf("projected tridiagonalization of a %lld x %lld FP64 matrix "
              "(b = %lld, k = %lld)\n\n",
              static_cast<long long>(n), static_cast<long long>(n),
              static_cast<long long>(b), static_cast<long long>(k));

  for (const auto& spec : {gpumodel::h100_sxm(), gpumodel::rtx4090()}) {
    const gpumodel::KernelModel vendor(spec, true);
    const gpumodel::KernelModel ours(spec, false);

    const double direct =
        gpumodel::price_trace(vendor, gpumodel::trace_sytrd(n, 64)).seconds;
    const double classic =
        gpumodel::price_trace(vendor, gpumodel::trace_sy2sb(n, 64, false))
            .seconds +
        gpumodel::magma_sb2st_seconds(n, 64);
    const double dbbr =
        gpumodel::price_trace(ours,
                              gpumodel::trace_dbbr(n, b, k, true, 512))
            .seconds;
    const double bc = gpumodel::bc_gpu_optimized_seconds(spec, n, b);

    const double flops = 4.0 / 3.0 * static_cast<double>(n) * n * n;
    std::printf("-- %s --\n", spec.name.c_str());
    std::printf("  direct (cuSOLVER-style):     %8.2f s  (%.2f TFLOPs)\n",
                direct, flops / direct / 1e12);
    std::printf("  classic 2-stage (MAGMA):     %8.2f s  (%.2f TFLOPs)\n",
                classic, flops / classic / 1e12);
    std::printf("  DBBR + pipelined BC (paper): %8.2f s  (%.2f TFLOPs)"
                "  [stage1 %.2f + stage2 %.2f]\n",
                dbbr + bc, flops / (dbbr + bc) / 1e12, dbbr, bc);

    std::printf("  BC pipeline scaling: ");
    for (index_t s : {1, 8, 32, 128}) {
      std::printf(" S=%lld: %.2fs", static_cast<long long>(s),
                  gpumodel::bc_gpu_seconds(spec, n, b, s));
    }
    std::printf("\n\n");
  }
  return 0;
}
