// Quickstart: tridiagonalize a symmetric matrix with the paper's pipeline
// (DBBR + pipelined bulge chasing) and compute its full eigendecomposition.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [n]

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include <tdg/eig.h>

#include "common/rng.h"
#include "la/blas.h"
#include "la/generate.h"

int main(int argc, char** argv) {
  using namespace tdg;
  const index_t n = (argc > 1) ? std::atoll(argv[1]) : 512;

  // A random dense symmetric matrix.
  Rng rng(42);
  const Matrix a = random_symmetric(n, rng);

  // --- Step 1: tridiagonalization, T = Q^T A Q. ---
  TridiagOptions topts;
  topts.method = TridiagMethod::kTwoStageDbbr;  // the paper's method
  topts.b = 32;                                 // bandwidth after stage 1
  topts.k = 256;                                // outer block (syr2k depth)
  const TridiagResult tri = tridiagonalize(a.view(), topts);
  std::printf("tridiagonalized n=%lld: stage1 (DBBR) %.3f s, "
              "stage2 (bulge chasing) %.3f s\n",
              static_cast<long long>(n), tri.seconds_stage1,
              tri.seconds_stage2);
  std::printf("T diagonal head: %.4f %.4f %.4f ...\n", tri.d[0], tri.d[1],
              tri.d[2]);

  // --- Step 2: full eigendecomposition A = V diag(w) V^T. ---
  eig::EvdOptions eopts;
  eopts.tridiag = topts;
  const eig::EvdResult evd = eig::eigh(a.view(), eopts);
  std::printf("eigh: tridiag %.3f s, divide&conquer %.3f s, "
              "back transform %.3f s\n",
              evd.seconds_tridiag, evd.seconds_solver,
              evd.seconds_backtransform);
  std::printf("spectrum: [%.4f, %.4f]\n", evd.eigenvalues.front(),
              evd.eigenvalues.back());

  // --- Verify: ||A v - w v|| for the extremal eigenpairs. ---
  for (const index_t j : {index_t{0}, n - 1}) {
    std::vector<double> av(static_cast<std::size_t>(n));
    la::gemv(Trans::kNo, 1.0, a.view(), evd.eigenvectors.view().col(j), 0.0,
             av.data());
    double resid = 0.0;
    for (index_t i = 0; i < n; ++i) {
      const double r = av[static_cast<std::size_t>(i)] -
                       evd.eigenvalues[static_cast<std::size_t>(j)] *
                           evd.eigenvectors(i, j);
      resid += r * r;
    }
    std::printf("||A v - w v||_2 for eigenpair %lld: %.2e\n",
                static_cast<long long>(j), std::sqrt(resid));
  }
  std::printf("orthogonality ||V^T V - I||_max = %.2e\n",
              orthogonality_error(evd.eigenvectors.view()));
  return 0;
}
