// Principal component analysis via symmetric EVD — one of the applications
// motivating large dense eigenproblems in the paper's Section 7.2.
//
// Synthesises samples from a low-rank-plus-noise model, forms the covariance
// matrix, runs the two-stage EVD pipeline, and reports how much variance the
// leading components explain (the planted subspace must dominate).
//
//   ./build/examples/spectral_pca [features] [samples]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include <tdg/eig.h>

#include "common/rng.h"
#include "la/blas.h"
#include "la/generate.h"

int main(int argc, char** argv) {
  using namespace tdg;
  const index_t p = (argc > 1) ? std::atoll(argv[1]) : 384;  // features
  const index_t m = (argc > 2) ? std::atoll(argv[2]) : 1024; // samples
  constexpr index_t kPlantedRank = 5;

  // Data: X = L F + noise, with L (p x r) a random loading matrix whose
  // components have decaying strength, F (r x m) latent factors.
  Rng rng(7);
  Matrix loadings = random_matrix(p, kPlantedRank, rng);
  for (index_t r = 0; r < kPlantedRank; ++r) {
    const double strength = 10.0 / (1.0 + static_cast<double>(r));
    la::scal(p, strength, loadings.view().col(r));
  }
  const Matrix factors = random_matrix(kPlantedRank, m, rng);
  Matrix x(p, m);
  la::gemm(Trans::kNo, Trans::kNo, 1.0, loadings.view(), factors.view(), 0.0,
           x.view());
  for (index_t j = 0; j < m; ++j) {
    for (index_t i = 0; i < p; ++i) x(i, j) += rng.normal();  // unit noise
  }

  // Center features and form the covariance C = X X^T / (m - 1).
  for (index_t i = 0; i < p; ++i) {
    double mean = 0.0;
    for (index_t j = 0; j < m; ++j) mean += x(i, j);
    mean /= static_cast<double>(m);
    for (index_t j = 0; j < m; ++j) x(i, j) -= mean;
  }
  Matrix cov(p, p);
  la::gemm(Trans::kNo, Trans::kTrans, 1.0 / static_cast<double>(m - 1),
           x.view(), x.view(), 0.0, cov.view());

  // EVD through the paper's pipeline.
  eig::EvdOptions opts;
  opts.tridiag.method = TridiagMethod::kTwoStageDbbr;
  opts.tridiag.b = 32;
  opts.tridiag.k = 128;
  const eig::EvdResult evd = eig::eigh(cov.view(), opts);

  double total = 0.0;
  for (double w : evd.eigenvalues) total += std::max(w, 0.0);

  std::printf("PCA on %lld features x %lld samples (planted rank %lld)\n",
              static_cast<long long>(p), static_cast<long long>(m),
              static_cast<long long>(kPlantedRank));
  std::printf("%5s | %12s | %10s | %10s\n", "PC", "eigenvalue", "explained",
              "cumulative");
  double cum = 0.0;
  for (index_t c = 0; c < 8; ++c) {
    const double w =
        evd.eigenvalues[static_cast<std::size_t>(p - 1 - c)];  // descending
    cum += w / total;
    std::printf("%5lld | %12.3f | %9.2f%% | %9.2f%%\n",
                static_cast<long long>(c + 1), w, 100.0 * w / total,
                100.0 * cum);
  }
  std::printf("\ntiming: tridiag %.3f s, solver %.3f s, back transform %.3f s\n",
              evd.seconds_tridiag, evd.seconds_solver,
              evd.seconds_backtransform);
  std::printf("leading %lld components explain %.1f%% of variance "
              "(planted model: they should dominate)\n",
              static_cast<long long>(kPlantedRank), 100.0 * cum);

  // Subset solver: only the top kPlantedRank components — the back
  // transforms touch kPlantedRank columns instead of p, which is the cheap
  // path when you only need a few components.
  const eig::EvdResult top =
      eig::eigh_range(cov.view(), p - kPlantedRank, p - 1, opts);
  double maxdiff = 0.0;
  for (index_t c = 0; c < kPlantedRank; ++c) {
    maxdiff = std::max(
        maxdiff,
        std::abs(top.eigenvalues[static_cast<std::size_t>(c)] -
                 evd.eigenvalues[static_cast<std::size_t>(p - kPlantedRank + c)]));
  }
  std::printf("\neigh_range(top %lld): back transform %.3f s vs %.3f s full; "
              "max |diff| vs full solve = %.2e\n",
              static_cast<long long>(kPlantedRank),
              top.seconds_backtransform, evd.seconds_backtransform, maxdiff);
  return 0;
}
