// Line-protocol TCP front end for tdg::serve::ServeCore.
//
// A deliberately thin transport: one listening socket, one thread per
// connection, one request per line (src/serve/wire.h documents the
// protocol). All resilience — admission control, deadlines, coalescing,
// degradation, breakers — lives in ServeCore; this file only moves bytes.
//
//   serve_main [--port=7070] [--queue=256] [--window_ms=2]
//              [--max_batch=64] [--degrade_depth=0] [--mem_mb=0]
//
// Try it:
//   ./serve_main --port=7070 &
//   printf 'solve id=1 n=96 seed=7\nstats\nquit\n' | nc localhost 7070
//
// Matrices are synthesized server-side from the request seed
// (la::random_symmetric), so the wire stays line-oriented; this front end
// is for acceptance and load testing, not a bulk-data plane.
#if defined(__unix__) || defined(__APPLE__)

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <tdg/serve.h>

#include "common/rng.h"
#include "la/generate.h"

namespace {

using namespace tdg;

long long arg_ll(int argc, char** argv, const std::string& name,
                 long long fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind(prefix, 0) == 0) return std::stoll(a.substr(prefix.size()));
  }
  return fallback;
}

bool send_line(int fd, std::string line) {
  line.push_back('\n');
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t w = ::send(fd, line.data() + off, line.size() - off, 0);
    if (w <= 0) return false;
    off += static_cast<std::size_t>(w);
  }
  return true;
}

void handle_connection(int fd, serve::ServeCore* core) {
  std::string buf;
  char chunk[4096];
  for (;;) {
    const std::size_t nl_at = buf.find('\n');
    if (nl_at == std::string::npos) {
      const ssize_t r = ::recv(fd, chunk, sizeof(chunk), 0);
      if (r <= 0) break;
      buf.append(chunk, static_cast<std::size_t>(r));
      continue;
    }
    std::string line = buf.substr(0, nl_at);
    buf.erase(0, nl_at + 1);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;

    const serve::wire::ParsedRequest req = serve::wire::parse_line(line);
    switch (req.kind) {
      case serve::wire::ParsedRequest::kSolve: {
        Rng rng(req.seed);
        Matrix a = random_symmetric(req.n, rng);
        serve::Ticket ticket = core->submit(std::move(a), req.opts);
        const serve::Response resp = ticket.response.get();
        if (!send_line(fd, serve::wire::format_response(req.id, resp))) {
          ::close(fd);
          return;
        }
        break;
      }
      case serve::wire::ParsedRequest::kStats:
        if (!send_line(fd, serve::wire::format_stats(core->stats()))) {
          ::close(fd);
          return;
        }
        break;
      case serve::wire::ParsedRequest::kMetrics: {
        // Multi-line payload; its last line is the OpenMetrics "# EOF"
        // terminator, which clients use as the framing sentinel.
        std::string text = serve::wire::format_metrics();
        if (!text.empty() && text.back() == '\n') text.pop_back();
        if (!send_line(fd, text)) {
          ::close(fd);
          return;
        }
        break;
      }
      case serve::wire::ParsedRequest::kDrain: {
        const bool ok = core->drain(/*timeout_ms=*/60000.0);
        if (!send_line(fd, ok ? "drained" : "drain_timeout")) {
          ::close(fd);
          return;
        }
        break;
      }
      case serve::wire::ParsedRequest::kQuit:
        send_line(fd, "bye");
        ::close(fd);
        return;
      case serve::wire::ParsedRequest::kBad:
        if (!send_line(fd, "err id=0 outcome=rejected code=invalid_input "
                           "msg=\"" +
                               req.error + "\"")) {
          ::close(fd);
          return;
        }
        break;
    }
  }
  ::close(fd);
}

}  // namespace

int main(int argc, char** argv) {
  ::signal(SIGPIPE, SIG_IGN);

  serve::ServeOptions sopts;
  sopts.queue_capacity =
      static_cast<index_t>(arg_ll(argc, argv, "queue", 256));
  sopts.coalesce_window_ms =
      static_cast<double>(arg_ll(argc, argv, "window_ms", 2));
  sopts.max_batch = static_cast<int>(arg_ll(argc, argv, "max_batch", 64));
  sopts.degrade_queue_depth =
      static_cast<index_t>(arg_ll(argc, argv, "degrade_depth", 0));
  sopts.memory_budget_bytes =
      arg_ll(argc, argv, "mem_mb", 0) * 1024 * 1024;
  serve::ServeCore core(sopts);

  const int port = static_cast<int>(arg_ll(argc, argv, "port", 7070));
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) {
    std::perror("socket");
    return 1;
  }
  const int one = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listener, 64) < 0) {
    std::perror("bind/listen");
    ::close(listener);
    return 1;
  }
  std::fprintf(stderr, "serve_main: listening on 127.0.0.1:%d\n", port);

  std::vector<std::thread> conns;
  for (;;) {
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) break;
    conns.emplace_back(handle_connection, fd, &core);
  }
  for (auto& t : conns) t.join();
  ::close(listener);
  return 0;
}

#else  // !(__unix__ || __APPLE__)

#include <cstdio>

int main() {
  std::fprintf(stderr,
               "serve_main: POSIX sockets unavailable on this platform; "
               "use bench_serve for in-process load.\n");
  return 0;
}

#endif
