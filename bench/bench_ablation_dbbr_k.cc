// Ablation: DBBR's outer block size k (the second blocking level of
// Algorithm 1). Larger k fattens the trailing syr2k (Table 1 says bigger is
// better) but adds more just-in-time panel-update flops — the paper settles
// on k = 1024. Also sweeps the Figure-7 square-syr2k tile size.

#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "gpumodel/kernel_model.h"
#include "gpumodel/trace_cost.h"
#include "la/generate.h"
#include "sbr/sbr.h"

int main(int argc, char** argv) {
  using namespace tdg;
  const index_t n = benchutil::arg_int(argc, argv, "n", 32768);
  const index_t b = benchutil::arg_int(argc, argv, "b", 32);

  benchutil::header("Ablation (H100 projection): DBBR time vs outer block k");
  const gpumodel::KernelModel ours(gpumodel::h100_sxm(), false);
  std::printf("n = %lld, b = %lld (paper uses k = 1024)\n",
              static_cast<long long>(n), static_cast<long long>(b));
  std::printf("%6s | %10s | %12s\n", "k", "DBBR (s)", "extra flops");
  benchutil::rule();
  double base_flops = 0.0;
  for (index_t k : {32, 64, 128, 256, 512, 1024, 2048, 4096}) {
    if (k < b) continue;
    const auto trace = gpumodel::trace_dbbr(n, b, k, true, 512);
    const auto cost = gpumodel::price_trace(ours, trace);
    if (base_flops == 0.0) base_flops = cost.flops;
    std::printf("%6lld | %10.2f | %+11.1f%%\n", static_cast<long long>(k),
                cost.seconds, 100.0 * (cost.flops / base_flops - 1.0));
  }

  benchutil::header("Ablation (H100 projection): square-syr2k tile size");
  std::printf("trailing update of DBBR at n = %lld, k = 1024\n",
              static_cast<long long>(n));
  std::printf("%8s | %10s\n", "tile", "DBBR (s)");
  benchutil::rule();
  for (index_t tile : {128, 256, 512, 1024, 2048}) {
    const auto cost = gpumodel::price_trace(
        ours, gpumodel::trace_dbbr(n, b, 1024, true, tile));
    std::printf("%8lld | %10.2f\n", static_cast<long long>(tile),
                cost.seconds);
  }

  benchutil::header("Measured CPU: DBBR time vs k");
  Rng rng(22);
  const index_t nm = benchutil::arg_int(argc, argv, "nmeasured", 1024);
  const Matrix a0 = random_symmetric(nm, rng);
  std::printf("n = %lld, b = 16\n", static_cast<long long>(nm));
  std::printf("%6s | %10s\n", "k", "DBBR (s)");
  benchutil::rule();
  for (index_t k : {16, 32, 64, 128, 256, 512}) {
    Matrix a = a0;
    sbr::BandReductionOptions opts;
    opts.b = 16;
    opts.k = k;
    WallTimer t;
    sbr::dbbr(a.view(), opts);
    std::printf("%6lld | %10.3f\n", static_cast<long long>(k), t.seconds());
  }
  return 0;
}
