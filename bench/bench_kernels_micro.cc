// Micro-benchmarks of the substrate kernels (google-benchmark): GEMM,
// reference vs square-block SYR2K, SYMV, panel QR, a bulge-chase sweep and
// the tridiagonal eigensolvers. These are the building blocks whose shapes
// the device model prices; the CPU numbers here document the substrate
// itself.

#include <benchmark/benchmark.h>

#include "bc/bulge_chase.h"
#include "common/rng.h"
#include "eig/eig.h"
#include "la/blas.h"
#include "la/generate.h"
#include "lapack/lapack.h"
#include "sbr/sbr.h"

namespace {

using namespace tdg;

void BM_Gemm(benchmark::State& state) {
  const index_t n = state.range(0);
  Rng rng(1);
  const Matrix a = random_matrix(n, n, rng);
  const Matrix b = random_matrix(n, n, rng);
  Matrix c(n, n);
  for (auto _ : state) {
    la::gemm(Trans::kNo, Trans::kNo, 1.0, a.view(), b.view(), 0.0, c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOPs"] = benchmark::Counter(
      2.0 * n * n * n * state.iterations() / 1e9, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Gemm)->Arg(128)->Arg(256)->Arg(512);

void BM_Syr2kReference(benchmark::State& state) {
  const index_t n = 512;
  const index_t k = state.range(0);
  Rng rng(2);
  const Matrix a = random_matrix(n, k, rng);
  const Matrix b = random_matrix(n, k, rng);
  Matrix c = random_symmetric(n, rng);
  for (auto _ : state) {
    la::syr2k_lower(-1.0, a.view(), b.view(), 1.0, c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOPs"] = benchmark::Counter(
      2.0 * n * n * k * state.iterations() / 1e9, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Syr2kReference)->Arg(32)->Arg(128)->Arg(512);

void BM_Syr2kSquare(benchmark::State& state) {
  const index_t n = 512;
  const index_t k = state.range(0);
  Rng rng(2);
  const Matrix a = random_matrix(n, k, rng);
  const Matrix b = random_matrix(n, k, rng);
  Matrix c = random_symmetric(n, rng);
  for (auto _ : state) {
    la::syr2k_lower_square(-1.0, a.view(), b.view(), 1.0, c.view(), 128);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOPs"] = benchmark::Counter(
      2.0 * n * n * k * state.iterations() / 1e9, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Syr2kSquare)->Arg(32)->Arg(128)->Arg(512);

void BM_SymvLower(benchmark::State& state) {
  const index_t n = state.range(0);
  Rng rng(3);
  const Matrix a = random_symmetric(n, rng);
  std::vector<double> x(static_cast<size_t>(n), 1.0),
      y(static_cast<size_t>(n));
  for (auto _ : state) {
    la::symv_lower(1.0, a.view(), x.data(), 0.0, y.data());
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_SymvLower)->Arg(512)->Arg(1024);

void BM_PanelQr(benchmark::State& state) {
  const index_t m = 1024, w = state.range(0);
  Rng rng(4);
  const Matrix a0 = random_matrix(m, w, rng);
  for (auto _ : state) {
    Matrix a = a0;
    lapack::WyFactor f = lapack::panel_qr(a.view());
    benchmark::DoNotOptimize(f.t.data());
  }
}
BENCHMARK(BM_PanelQr)->Arg(16)->Arg(32)->Arg(64);

void BM_ChaseSweepPacked(benchmark::State& state) {
  const index_t n = 1024, b = state.range(0);
  Rng rng(5);
  const Matrix a0 = random_symmetric_band(n, b, rng);
  for (auto _ : state) {
    state.PauseTiming();
    SymBandMatrix band =
        extract_band(a0.view(), b, std::min<index_t>(2 * b, n - 1));
    state.ResumeTiming();
    bc::chase_packed(band, b, nullptr);
    benchmark::DoNotOptimize(band.data());
  }
}
BENCHMARK(BM_ChaseSweepPacked)->Arg(8)->Arg(32)->Arg(64);

void BM_Steqr(benchmark::State& state) {
  const index_t n = state.range(0);
  Rng rng(6);
  std::vector<double> d0(static_cast<size_t>(n)),
      e0(static_cast<size_t>(n - 1));
  for (auto& v : d0) v = rng.normal();
  for (auto& v : e0) v = rng.normal();
  for (auto _ : state) {
    std::vector<double> d = d0, e = e0;
    eig::steqr(d, e, nullptr);
    benchmark::DoNotOptimize(d.data());
  }
}
BENCHMARK(BM_Steqr)->Arg(256)->Arg(1024);

void BM_Stedc(benchmark::State& state) {
  const index_t n = state.range(0);
  Rng rng(7);
  std::vector<double> d0(static_cast<size_t>(n)),
      e0(static_cast<size_t>(n - 1));
  for (auto& v : d0) v = rng.normal();
  for (auto& v : e0) v = rng.normal();
  Matrix q(n, n);
  for (auto _ : state) {
    std::vector<double> d = d0, e = e0;
    eig::stedc(d, e, q.view());
    benchmark::DoNotOptimize(q.data());
  }
}
BENCHMARK(BM_Stedc)->Arg(256)->Arg(512);

}  // namespace

BENCHMARK_MAIN();
