// Figure 8 of the paper: the proposed square-block SYR2K vs cuBLAS Dsyr2k
// across matrix sizes on H100 — cuBLAS collapses for n >= 49152 while the
// square-block schedule stays flat near 50 TFLOPs.
//
// Projection: vendor surrogate vs constructive pricing of the square-block
// schedule's GEMM tiles. Measurement: both real CPU implementations at
// laptop scale (the square-block schedule is also the better CPU blocking,
// so the measured ratio > 1 demonstrates the same scheduling effect).

#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "common/trace.h"
#include "gpumodel/kernel_model.h"
#include "gpumodel/trace_cost.h"
#include "la/blas.h"
#include "la/generate.h"

int main(int argc, char** argv) {
  using namespace tdg;
  const index_t k = benchutil::arg_int(argc, argv, "k", 1024);

  benchutil::header("Figure 8: custom square-block SYR2K vs cuBLAS (H100 projection)");
  const gpumodel::KernelModel vendor(gpumodel::h100_sxm(), true);
  const gpumodel::KernelModel ours(gpumodel::h100_sxm(), false);
  std::printf("k = %lld\n", static_cast<long long>(k));
  std::printf("%8s | %14s | %14s | %8s\n", "n", "cuBLAS TFLOPs",
              "custom TFLOPs", "speedup");
  benchutil::rule();
  for (index_t n : {8192, 16384, 24576, 32768, 40960, 49152, 57344, 65536}) {
    const double flops = benchutil::syr2k_flops(n, k);
    const double tv = vendor.vendor_syr2k_seconds(n, k);
    // Price the square-block schedule constructively from its tiles.
    std::vector<trace::Op> ops;
    const index_t block = 512;
    const index_t nblk = (n + block - 1) / block;
    for (index_t d = 0; d < nblk; ++d) {
      for (index_t bj = 0; bj + d < nblk; ++bj) {
        if (d == 0) {
          ops.push_back({trace::OpKind::kGemm, block, block / 2, k, 1});
        } else {
          ops.push_back({trace::OpKind::kGemm, block, block, k, 2});
        }
      }
    }
    // price_trace coalesces same-shape blocks: all blocks within one
    // anti-diagonal are independent and run concurrently (the paper's
    // latency-hiding reorder).
    const double to = gpumodel::price_trace(ours, ops).seconds;
    std::printf("%8lld | %14.2f | %14.2f | %7.2fx\n",
                static_cast<long long>(n), flops / tv / 1e12,
                flops / to / 1e12, tv / to);
  }

  benchutil::header("Measured CPU: reference vs square-block syr2k");
  Rng rng(2);
  const index_t kc = benchutil::arg_int(argc, argv, "kcpu", 128);
  std::printf("k = %lld, block = 128\n", static_cast<long long>(kc));
  std::printf("%6s | %12s | %12s | %8s\n", "n", "ref GFLOPs", "square GFLOPs",
              "speedup");
  benchutil::rule();
  for (index_t n : {512, 1024, 1536, 2048}) {
    const Matrix a = random_matrix(n, kc, rng);
    const Matrix b = random_matrix(n, kc, rng);
    Matrix c1 = random_symmetric(n, rng);
    Matrix c2 = c1;
    WallTimer t1;
    la::syr2k_lower(-1.0, a.view(), b.view(), 1.0, c1.view());
    const double s1 = t1.seconds();
    WallTimer t2;
    la::syr2k_lower_square(-1.0, a.view(), b.view(), 1.0, c2.view(), 128);
    const double s2 = t2.seconds();
    const double flops = benchutil::syr2k_flops(n, kc);
    std::printf("%6lld | %12.2f | %12.2f | %7.2fx\n",
                static_cast<long long>(n), flops / s1 / 1e9, flops / s2 / 1e9,
                s1 / s2);
  }
  return 0;
}
