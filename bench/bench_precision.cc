// Execution-mode acceptance bench: standard FP64 vs mixed precision vs
// values-only, one EVD per (n, mode) cell.
//
// For each n: the standard full-FP64 solve is the baseline; the mixed run
// reports its independently recomputed residual (the ISSUE acceptance is
// 50 * eps_fp64 * ||A||_F), refinement sweep count, and speedup over the
// baseline; the values-only run reports its measured peak workspace, which
// must sit strictly below the standard path's at the same n.
//
// Each measurement is emitted as one JSON line (prefix "JSON ") so the perf
// trajectory and the CI smoke step can scrape it:
//   JSON {"bench":"precision","n":2048,"mode":"mixed","seconds":...,
//         "residual":...,"refine_iters":2,"peak_bytes":...,"speedup":...}
//
// Flags: --n_max=2048 --reps=2

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include <tdg/eig.h>

#include "bench_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "la/blas.h"
#include "la/generate.h"
#include "la/workspace.h"

namespace tdg {
namespace {

double fro_norm(ConstMatrixView a) {
  double s = 0.0;
  for (index_t j = 0; j < a.cols; ++j) {
    for (index_t i = 0; i < a.rows; ++i) s += a(i, j) * a(i, j);
  }
  return std::sqrt(s);
}

// max_i ||A v_i - w_i v_i||_2, recomputed outside the library's own
// acceptance check. Values-only runs report 0 (nothing to verify against).
double evd_residual(ConstMatrixView a, const eig::EvdResult& res) {
  if (res.eigenvectors.cols() == 0) return 0.0;
  Matrix av(a.rows, res.eigenvectors.cols());
  la::gemm(Trans::kNo, Trans::kNo, 1.0, a, res.eigenvectors.view(), 0.0,
           av.view());
  double worst = 0.0;
  for (index_t j = 0; j < av.cols(); ++j) {
    double col = 0.0;
    for (index_t i = 0; i < av.rows(); ++i) {
      const double r =
          av(i, j) - res.eigenvalues[static_cast<size_t>(j)] *
                         res.eigenvectors(i, j);
      col += r * r;
    }
    worst = std::max(worst, std::sqrt(col));
  }
  return worst;
}

struct ModeRun {
  double seconds = 1e300;
  eig::EvdResult result;
  std::size_t peak_bytes = 0;
};

ModeRun run_mode(ConstMatrixView a, plan::EvdMode mode, int reps) {
  ModeRun best;
  for (int r = 0; r < reps; ++r) {
    eig::EvdOptions opts;
    opts.mode = mode;
    la::workspace_reset_peak();
    WallTimer t;
    eig::EvdResult res = eig::eigh(a, opts);
    const double s = t.seconds();
    const std::size_t peak = la::workspace_peak_bytes();
    if (s < best.seconds) {
      best.seconds = s;
      best.result = std::move(res);
      best.peak_bytes = peak;
    }
  }
  return best;
}

int run(int argc, char** argv) {
  const index_t n_max = benchutil::arg_int(argc, argv, "n_max", 2048);
  const int reps =
      static_cast<int>(benchutil::arg_int(argc, argv, "reps", 2));

  benchutil::header("execution modes: fp64 standard vs mixed vs values-only");
  std::printf("%8s %10s %12s %10s %12s %8s %14s %10s\n", "n", "mode",
              "seconds", "speedup", "residual", "refine", "peak_bytes",
              "status");
  benchutil::rule();

  bool ok = true;
  for (index_t n = 512; n <= n_max; n *= 2) {
    Rng rng(0x9e3779b9 + static_cast<uint64_t>(n));
    const Matrix a = random_symmetric(n, rng);
    const double bound =
        50.0 * std::numeric_limits<double>::epsilon() * fro_norm(a.view());

    const ModeRun standard = run_mode(a.view(), plan::EvdMode::kStandard,
                                      reps);
    const ModeRun mixed =
        run_mode(a.view(), plan::EvdMode::kMixedPrecision, reps);
    const ModeRun values = run_mode(a.view(), plan::EvdMode::kValuesOnly,
                                    reps);

    struct Row {
      const char* label;
      const ModeRun* run;
    };
    const Row rows[] = {{"standard", &standard},
                        {"mixed", &mixed},
                        {"values", &values}};
    for (const Row& row : rows) {
      const eig::EvdResult& res = row.run->result;
      const double residual = evd_residual(a.view(), res);
      const double speedup = row.run->seconds > 0.0
                                 ? standard.seconds / row.run->seconds
                                 : 0.0;
      // Acceptance per mode: mixed inside the refinement bound (or
      // recovered to FP64, which trivially is), values-only peak strictly
      // below standard's.
      bool pass = true;
      if (row.run == &mixed) pass = residual <= bound;
      if (row.run == &values) {
        pass = res.eigenvectors.cols() == 0 &&
               row.run->peak_bytes < standard.peak_bytes;
      }
      ok = ok && pass;
      std::printf("%8lld %10s %12.4f %10.2f %12.3e %8lld %14zu %10s\n",
                  static_cast<long long>(n), row.label, row.run->seconds,
                  speedup, residual,
                  static_cast<long long>(res.refine_iters),
                  row.run->peak_bytes, pass ? "ok" : "FAIL");
      benchutil::JsonLine("precision")
          .field("n", n)
          .field("mode", row.label)
          .field("effective_mode", plan::to_string(res.mode))
          .field("seconds", row.run->seconds)
          .field("residual", residual)
          .field("residual_bound", bound)
          .field("refine_iters", static_cast<long long>(res.refine_iters))
          .field("peak_bytes", static_cast<long long>(row.run->peak_bytes))
          .field("speedup", speedup)
          .field("recovery", res.recovery)
          .field("pass", pass)
          .emit();
    }
  }
  std::printf("\n%s\n", ok ? "all modes within acceptance"
                           : "ACCEPTANCE FAILURE (see rows above)");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace tdg

int main(int argc, char** argv) { return tdg::run(argc, argv); }
