// Look-ahead ablation: DBBR band reduction under the barrier schedule
// (lookahead = 0) vs the task-graph look-ahead schedule (lookahead = 1) at
// the Figure-15 shapes. Reports wall time, speedup, and the runtime's own
// overlap fraction (taskgraph.overlap_us / taskgraph.busy_us — the wall-time
// share during which at least two DAG nodes were executing), and verifies
// the two schedules produce bitwise-identical band matrices.
//
// The speedup needs real cores: on a single-CPU machine the pool workers
// time-slice, so the overlap fraction can be nonzero while the wall-time
// win stays ~0. Flags: --n_max=N --reps=R --threads=T --b=B --k=K.

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "la/generate.h"
#include "obs/metrics.h"
#include "sbr/sbr.h"

int main(int argc, char** argv) {
  using namespace tdg;
  const index_t b = benchutil::arg_int(argc, argv, "b", 32);
  const index_t k = benchutil::arg_int(argc, argv, "k", 256);
  const index_t n_max = benchutil::arg_int(argc, argv, "n_max", 4096);
  const index_t reps = std::max<index_t>(
      1, benchutil::arg_int(argc, argv, "reps", 1));
  const int threads = static_cast<int>(
      benchutil::arg_int(argc, argv, "threads", default_threads()));

  obs::arm_metrics();  // the overlap numbers come from taskgraph.* counters
  obs::Counter* busy = obs::Registry::global().counter("taskgraph.busy_us");
  obs::Counter* over = obs::Registry::global().counter("taskgraph.overlap_us");

  benchutil::header("Look-ahead ablation: DBBR barrier vs task-graph DAG");
  std::printf("b = %lld, k = %lld, threads = %d, reps = %lld\n",
              static_cast<long long>(b), static_cast<long long>(k), threads,
              static_cast<long long>(reps));
  std::printf("%6s | %12s | %12s | %8s | %8s | %8s\n", "n", "barrier (s)",
              "lookahead(s)", "speedup", "overlap", "bitwise");
  benchutil::rule();

  Rng rng(15);
  for (index_t n : {512, 1024, 2048, 4096, 8192, 16384}) {
    if (n > n_max) break;
    const Matrix a0 = random_symmetric(n, rng);
    const index_t bn = std::min(b, n / 4);
    const index_t kn = std::max(bn, k / bn * bn);

    sbr::BandReductionOptions base;
    base.b = bn;
    base.k = kn;
    base.use_square_syr2k = true;
    base.threads = threads;

    double secs[2] = {0.0, 0.0};     // best-of-reps: [barrier, lookahead]
    double overlap_frac = 0.0;       // from the look-ahead runs
    Matrix band[2] = {Matrix(1, 1), Matrix(1, 1)};
    for (int depth = 0; depth <= 1; ++depth) {
      sbr::BandReductionOptions o = base;
      o.lookahead = depth;
      double best = 0.0;
      for (index_t r = 0; r < reps; ++r) {
        Matrix a = a0;
        const long long busy0 = busy->value();
        const long long over0 = over->value();
        WallTimer t;
        sbr::dbbr(a.view(), o);
        const double s = t.seconds();
        if (r == 0 || s < best) best = s;
        if (depth == 1) {
          const double db = static_cast<double>(busy->value() - busy0);
          if (db > 0.0) {
            overlap_frac = static_cast<double>(over->value() - over0) / db;
          }
        }
        if (r == 0) band[depth] = a;
      }
      secs[depth] = best;
    }

    const double diff = max_abs_diff(band[0].view(), band[1].view());
    const bool bitwise = diff == 0.0;
    std::printf("%6lld | %12.3f | %12.3f | %7.2fx | %7.1f%% | %8s\n",
                static_cast<long long>(n), secs[0], secs[1],
                secs[0] / secs[1], 100.0 * overlap_frac,
                bitwise ? "yes" : "NO");
    for (int depth = 0; depth <= 1; ++depth) {
      benchutil::JsonLine("lookahead")
          .field("n", n)
          .field("b", bn)
          .field("k", kn)
          .field("threads", threads)
          .field("depth", depth)
          .field("seconds", secs[depth])
          .field("overlap_fraction", depth == 1 ? overlap_frac : 0.0)
          .field("speedup", depth == 1 ? secs[0] / secs[1] : 1.0)
          .field("bitwise_identical", bitwise)
          .emit();
    }
  }
  std::printf(
      "\noverlap = share of DAG busy time with >= 2 nodes in flight;\n"
      "speedup needs >= 2 physical cores (time-sliced workers overlap\n"
      "without getting faster).\n");
  return 0;
}
