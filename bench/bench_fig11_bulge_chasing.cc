// Figure 11 of the paper: bulge chasing — MAGMA sb2st (CPU) vs the naive
// GPU kernel (one thread block per sweep, band embedded in the dense
// matrix) vs the optimized GPU kernel (packed Fig.-10 band + grouped
// sweeps). Paper: naive up to 5.9x over MAGMA, optimized up to 12.5x.
//
// Measured: our three real CPU implementations — sequential on the dense
// layout (MAGMA-analogue working set), sequential on the packed layout
// (Fig.-10 cache effect in isolation), and the pipelined parallel chase.
// Projected: the Section-3.3 pipeline model with the packed step time
// (optimized) and a DRAM-latency-inflated step time (naive).

#include <cstdio>

#include "bench_util.h"
#include "bc/bulge_chase.h"
#include "bc/bulge_chase_parallel.h"
#include "bc/givens_sbtrd.h"
#include "common/rng.h"
#include "common/timer.h"
#include "gpumodel/bc_pipeline_model.h"
#include "la/generate.h"

int main(int argc, char** argv) {
  using namespace tdg;
  const index_t b = benchutil::arg_int(argc, argv, "b", 32);

  benchutil::header("Figure 11 (measured CPU): dense vs packed vs pipelined chase");
  Rng rng(4);
  std::printf("b = %lld\n", static_cast<long long>(b));
  std::printf("%6s | %12s | %12s | %12s | %12s | %16s\n", "n", "givens (s)",
              "dense (s)", "packed (s)", "pipelined (s)", "packed speedup");
  benchutil::rule();
  for (index_t n : {512, 1024, 2048, 3072}) {
    const index_t be = std::min(b, n / 4);
    const Matrix a0 = random_symmetric_band(n, be, rng);
    const index_t kd = std::min<index_t>(2 * be, n - 1);

    Matrix ad = a0;
    WallTimer t1;
    bc::chase_dense(ad.view(), be, nullptr);
    const double s_dense = t1.seconds();

    SymBandMatrix b1 = extract_band(a0.view(), be, kd);
    WallTimer t2;
    bc::chase_packed(b1, be, nullptr);
    const double s_packed = t2.seconds();

    SymBandMatrix b2 = extract_band(a0.view(), be, kd);
    WallTimer t3;
    bc::ParallelChaseOptions po;
    po.threads = 4;
    bc::chase_packed_parallel(b2, be, po, nullptr);
    const double s_par = t3.seconds();

    // Classical Givens sbtrd (LAPACK-style rotation chase) as a baseline.
    SymBandMatrix b3 =
        extract_band(a0.view(), be, std::min<index_t>(be + 1, n - 1));
    WallTimer t4;
    bc::givens_sbtrd(b3, be);
    const double s_giv = t4.seconds();

    std::printf("%6lld | %12.3f | %12.3f | %12.3f | %12.3f | %15.2fx\n",
                static_cast<long long>(n), s_giv, s_dense, s_packed, s_par,
                s_dense / s_packed);
  }
  std::printf("(single hardware core: the pipelined chase shows protocol overhead,\n"
              " not speedup; the parallel-speedup claim is carried by the model below)\n");

  benchutil::header("Figure 11 (H100 projection at paper sizes)");
  const auto spec = gpumodel::h100_sxm();
  std::printf("naive: S = %d (one block/sweep); optimized: S = %d "
              "(warp-grouped) + packed band, b = %lld\n",
              spec.sm_count, 2 * spec.sm_count, static_cast<long long>(b));
  std::printf("%8s | %11s | %11s | %11s | %8s | %8s\n", "n", "MAGMA (s)",
              "naive (s)", "optim (s)", "nv/MAGMA", "opt/MAGMA");
  benchutil::rule();
  for (index_t n : {8192, 16384, 24576, 32768, 49152, 65536}) {
    const double magma = gpumodel::magma_sb2st_seconds(n, b);
    const double naive = gpumodel::bc_gpu_naive_seconds(spec, n, b);
    const double opt = gpumodel::bc_gpu_optimized_seconds(spec, n, b);
    std::printf("%8lld | %11.2f | %11.2f | %11.2f | %7.2fx | %7.2fx\n",
                static_cast<long long>(n), magma, naive, opt, magma / naive,
                magma / opt);
  }
  std::printf("\npaper: naive up to 5.9x, optimized up to 12.5x over MAGMA\n");
  return 0;
}
