// Shared helpers for the figure/table reproduction benches.
//
// Every bench prints (a) the paper's reported numbers where the paper gives
// them, (b) our measured CPU numbers at laptop scale, and (c) device-model
// projections at paper scale. EXPERIMENTS.md collects the comparisons.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "la/matrix.h"

namespace tdg::benchutil {

inline void header(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

inline void rule() {
  std::printf("--------------------------------------------------------------------------\n");
}

/// Flop counts used throughout the paper's evaluation.
inline double tridiag_flops(index_t n) {
  // The standard 4/3 n^3 credit used when quoting sytrd TFLOPs.
  const double nd = static_cast<double>(n);
  return 4.0 / 3.0 * nd * nd * nd;
}

inline double bc_flops(index_t n, index_t b) {
  // ~6 b n^2: per sweep ~(n-i)/b block steps of ~12 b^2 flops.
  return 6.0 * static_cast<double>(b) * static_cast<double>(n) *
         static_cast<double>(n);
}

inline double syr2k_flops(index_t n, index_t k) {
  return 2.0 * static_cast<double>(n) * static_cast<double>(n) *
         static_cast<double>(k);
}

/// Parse "--name=value" style integer flags; returns fallback when absent.
inline index_t arg_int(int argc, char** argv, const std::string& name,
                       index_t fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind(prefix, 0) == 0) {
      return static_cast<index_t>(std::stoll(a.substr(prefix.size())));
    }
  }
  return fallback;
}

inline bool arg_flag(int argc, char** argv, const std::string& name) {
  const std::string flag = "--" + name;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

}  // namespace tdg::benchutil
