// Shared helpers for the figure/table reproduction benches.
//
// Every bench prints (a) the paper's reported numbers where the paper gives
// them, (b) our measured CPU numbers at laptop scale, and (c) device-model
// projections at paper scale. EXPERIMENTS.md collects the comparisons.
#pragma once

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "la/matrix.h"

// Source revision the binary was built from (stamped by CMake); "unknown"
// when building outside a git checkout.
#ifndef TDG_GIT_REV
#define TDG_GIT_REV "unknown"
#endif

namespace tdg::benchutil {

/// Version of the "JSON {...}" line schema shared by all benches. Bump when
/// a field changes meaning; adding fields is backward compatible.
inline constexpr int kJsonSchemaVersion = 1;

/// Builder for the machine-scrapable "JSON {...}" stdout lines. Every line
/// carries schema_version, the git revision, and the bench name, so the
/// perf trajectory can join measurements across commits without guessing:
///
///   benchutil::JsonLine("blas3_scaling")
///       .field("op", "gemm").field("n", n).field("seconds", s).emit();
///
/// field() escapes string values; raw() splices pre-rendered JSON (arrays,
/// nested objects) verbatim.
class JsonLine {
 public:
  explicit JsonLine(const std::string& bench) {
    os_ << "JSON {\"schema_version\":" << kJsonSchemaVersion
        << ",\"git_rev\":\"" << TDG_GIT_REV << "\"";
    field("bench", bench);
  }

  JsonLine& field(const std::string& key, const std::string& v) {
    sep(key);
    os_ << '"';
    for (const char c : v) {
      if (c == '"' || c == '\\') os_ << '\\';
      os_ << c;
    }
    os_ << '"';
    return *this;
  }
  JsonLine& field(const std::string& key, const char* v) {
    return field(key, std::string(v));
  }
  JsonLine& field(const std::string& key, double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    sep(key);
    os_ << buf;
    return *this;
  }
  JsonLine& field(const std::string& key, long long v) {
    sep(key);
    os_ << v;
    return *this;
  }
  JsonLine& field(const std::string& key, index_t v) {
    return field(key, static_cast<long long>(v));
  }
  JsonLine& field(const std::string& key, int v) {
    return field(key, static_cast<long long>(v));
  }
  JsonLine& field(const std::string& key, bool v) {
    sep(key);
    os_ << (v ? "true" : "false");
    return *this;
  }
  /// Splice `json` (already valid JSON: array, object, number) unescaped.
  JsonLine& raw(const std::string& key, const std::string& json) {
    sep(key);
    os_ << json;
    return *this;
  }

  void emit() { std::printf("%s}\n", os_.str().c_str()); }

 private:
  void sep(const std::string& key) { os_ << ",\"" << key << "\":"; }
  std::ostringstream os_;
};

inline void header(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

inline void rule() {
  std::printf("--------------------------------------------------------------------------\n");
}

/// Flop counts used throughout the paper's evaluation.
inline double tridiag_flops(index_t n) {
  // The standard 4/3 n^3 credit used when quoting sytrd TFLOPs.
  const double nd = static_cast<double>(n);
  return 4.0 / 3.0 * nd * nd * nd;
}

inline double bc_flops(index_t n, index_t b) {
  // ~6 b n^2: per sweep ~(n-i)/b block steps of ~12 b^2 flops.
  return 6.0 * static_cast<double>(b) * static_cast<double>(n) *
         static_cast<double>(n);
}

inline double syr2k_flops(index_t n, index_t k) {
  return 2.0 * static_cast<double>(n) * static_cast<double>(n) *
         static_cast<double>(k);
}

/// Parse "--name=value" style integer flags; returns fallback when absent.
inline index_t arg_int(int argc, char** argv, const std::string& name,
                       index_t fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind(prefix, 0) == 0) {
      return static_cast<index_t>(std::stoll(a.substr(prefix.size())));
    }
  }
  return fallback;
}

inline bool arg_flag(int argc, char** argv, const std::string& name) {
  const std::string flag = "--" + name;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

}  // namespace tdg::benchutil
