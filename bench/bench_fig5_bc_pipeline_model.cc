// Figure 5 of the paper: estimated GPU bulge-chasing time vs the maximum
// number of parallel sweeps S (n = 65536, b = 32), against the MAGMA sb2st
// CPU line. Both the paper's closed-form expression and our exact
// discrete-event simulation of laws (1)-(3) are evaluated; the paper's
// headline observation — the GPU needs >= ~32 parallel sweeps to beat the
// CPU, and modern GPUs have > 100 SMs — must reproduce.

#include <cstdio>

#include "bench_util.h"
#include "gpumodel/bc_pipeline_model.h"

int main(int argc, char** argv) {
  using namespace tdg;
  const index_t n = benchutil::arg_int(argc, argv, "n", 65536);
  const index_t b = benchutil::arg_int(argc, argv, "b", 32);
  const auto spec = gpumodel::h100_sxm();

  benchutil::header("Figure 5: modeled GPU bulge chasing vs parallel sweeps S");
  std::printf("n = %lld, b = %lld, step = %.2f us, MAGMA sb2st line = %.2f s\n",
              static_cast<long long>(n), static_cast<long long>(b),
              gpumodel::bc_step_seconds(spec, b) * 1e6,
              gpumodel::magma_sb2st_seconds(n, b));
  std::printf("%6s | %14s | %14s | %12s | %10s\n", "S", "closed-form(s)",
              "simulated(s)", "avg parallel", "vs MAGMA");
  benchutil::rule();

  const double magma = gpumodel::magma_sb2st_seconds(n, b);
  index_t crossover = -1;
  for (index_t s : {1, 2, 4, 8, 16, 32, 64, 128}) {
    const double cf =
        gpumodel::bc_cycles_closed_form(n, b, s) *
        gpumodel::bc_step_seconds(spec, b);
    const auto sim = gpumodel::bc_simulate(n, b, s);
    const double simsec = sim.cycles * gpumodel::bc_step_seconds(spec, b);
    std::printf("%6lld | %14.2f | %14.2f | %12.1f | %9.2fx\n",
                static_cast<long long>(s), cf, simsec, sim.avg_parallel,
                magma / simsec);
    if (crossover < 0 && simsec < magma) crossover = s;
  }
  std::printf("\nfirst S beating the MAGMA CPU line: S = %lld "
              "(paper: >= ~32; H100 has %d SMs)\n",
              static_cast<long long>(crossover), spec.sm_count);
  return 0;
}
