// Ablation: stage-2 strategy — direct Householder chase (b -> 1) vs
// multi-step band reduction (b -> d -> 1, the SBR-toolkit scheme) vs the
// classical Givens sbtrd. Multi-step reduces reflector lengths per stage at
// the price of extra total work; on the GPU pipeline model the direct chase
// wins for the b <= 64 regime the paper operates in — which is why the paper
// chases in one step.

#include <cstdio>

#include "bench_util.h"
#include "bc/band_to_band.h"
#include "bc/givens_sbtrd.h"
#include "common/rng.h"
#include "common/timer.h"
#include "gpumodel/bc_pipeline_model.h"
#include "la/generate.h"

int main(int argc, char** argv) {
  using namespace tdg;

  benchutil::header("Ablation (measured CPU): stage-2 strategies");
  Rng rng(31);
  const index_t n = benchutil::arg_int(argc, argv, "n", 1536);
  std::printf("n = %lld\n", static_cast<long long>(n));
  std::printf("%6s | %12s | %14s | %12s\n", "b", "direct (s)",
              "2-step (s)", "givens (s)");
  benchutil::rule();
  for (index_t b : {16, 32, 64}) {
    const Matrix a0 = random_symmetric_band(n, b, rng);

    SymBandMatrix direct =
        extract_band(a0.view(), b, std::min<index_t>(2 * b, n - 1));
    WallTimer t1;
    bc::chase_packed(direct, b, nullptr);
    const double s_direct = t1.seconds();

    SymBandMatrix multi =
        extract_band(a0.view(), b, std::min<index_t>(2 * b, n - 1));
    WallTimer t2;
    bc::multi_step_tridiag(multi, b, {b / 4});
    const double s_multi = t2.seconds();

    SymBandMatrix giv =
        extract_band(a0.view(), b, std::min<index_t>(b + 1, n - 1));
    WallTimer t3;
    bc::givens_sbtrd(giv, b);
    const double s_giv = t3.seconds();

    std::printf("%6lld | %12.3f | %14.3f | %12.3f\n",
                static_cast<long long>(b), s_direct, s_multi, s_giv);
  }

  benchutil::header("H100 pipeline model: direct vs 2-step chase");
  const auto spec = gpumodel::h100_sxm();
  std::printf("%8s | %6s | %12s | %20s\n", "n", "b", "direct (s)",
              "2-step via b/4 (s)");
  benchutil::rule();
  for (index_t nn : {16384, 32768, 49152}) {
    for (index_t b : {32, 64}) {
      const double direct = gpumodel::bc_gpu_optimized_seconds(spec, nn, b);
      // Step 1 (b -> b/4): same pipeline structure with reflectors of
      // length ~3b/4; step 2 chases the remaining b/4 band.
      const double step1 =
          gpumodel::bc_gpu_optimized_seconds(spec, nn, b) * 0.75;
      const double step2 = gpumodel::bc_gpu_optimized_seconds(spec, nn, b / 4);
      std::printf("%8lld | %6lld | %12.2f | %20.2f\n",
                  static_cast<long long>(nn), static_cast<long long>(b),
                  direct, step1 + step2);
    }
  }
  return 0;
}
