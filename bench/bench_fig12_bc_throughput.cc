// Figure 12 of the paper: memory throughput of GPU bulge chasing as the
// number of parallel sweeps grows (Nsight Compute measurement in the paper;
// pipeline-occupancy model here), plus a measured-CPU section computing the
// effective traffic rate of the real packed chase.

#include <cstdio>

#include "bench_util.h"
#include "bc/bulge_chase.h"
#include "common/rng.h"
#include "common/timer.h"
#include "gpumodel/bc_pipeline_model.h"
#include "la/generate.h"

int main(int argc, char** argv) {
  using namespace tdg;
  const index_t n = benchutil::arg_int(argc, argv, "n", 32768);
  const index_t b = benchutil::arg_int(argc, argv, "b", 32);
  const auto spec = tdg::gpumodel::h100_sxm();

  benchutil::header("Figure 12: BC memory throughput vs parallel sweeps (H100 model)");
  std::printf("n = %lld, b = %lld\n", static_cast<long long>(n),
              static_cast<long long>(b));
  std::printf("%8s | %16s | %14s\n", "S", "throughput GB/s", "avg parallel");
  benchutil::rule();
  for (index_t s : {1, 2, 4, 8, 16, 32, 64, 128, 0}) {
    const index_t eff = (s == 0) ? n : s;  // 0 = "max" point of the figure
    const auto st = gpumodel::bc_simulate(n, b, eff);
    std::printf("%8s | %16.1f | %14.1f\n",
                (s == 0) ? "max" : std::to_string(s).c_str(),
                gpumodel::bc_memory_throughput_gbs(spec, n, b, eff),
                st.avg_parallel);
  }

  benchutil::header("Measured CPU: effective traffic of the packed chase");
  Rng rng(5);
  std::printf("%6s | %10s | %14s\n", "n", "time (s)", "eff GB/s");
  benchutil::rule();
  for (index_t nn : {512, 1024, 2048}) {
    const index_t be = std::min(b, nn / 4);
    const Matrix a0 = random_symmetric_band(nn, be, rng);
    SymBandMatrix band = extract_band(a0.view(), be,
                                      std::min<index_t>(2 * be, nn - 1));
    WallTimer t;
    bc::chase_packed(band, be, nullptr);
    const double s = t.seconds();
    // Bytes: each of ~n^2/(2b) block steps touches ~3 b^2 doubles r/w.
    const double steps = static_cast<double>(nn) * nn / (2.0 * be);
    const double bytes = steps * 3.0 * be * be * 8.0 * 2.0;
    std::printf("%6lld | %10.3f | %14.2f\n", static_cast<long long>(nn), s,
                bytes / s / 1e9);
  }
  return 0;
}
