// Thread-scaling of the CPU BLAS-3 engine: GFLOP/s for the packed gemm and
// the square-block syr2k across sizes and thread counts. This is the
// substrate every stage of the pipeline (DBBR trailing updates, the
// back-transformation GEMMs, the eigensolver's symm) bottoms out in, so its
// scaling curve bounds the end-to-end trajectory.
//
// Besides the human-readable table, each measurement is emitted as one JSON
// line (prefix "JSON ") so the perf trajectory can scrape
//   {"bench":"blas3_scaling","op":...,"m":...,"n":...,"k":...,
//    "threads":...,"seconds":...,"gflops":...}
//
// Flags: --nmax=N     largest size to run (default 2048; the acceptance
//                     shapes gemm 2048x2048x1024 / syr2k n=4096 need
//                     --nmax=4096)
//        --maxthreads=T  largest thread count (default 8)
//        --reps=R     timing repetitions, best-of (default 1)

#include <algorithm>
#include <cstdio>
#include <functional>

#include "bench_util.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "la/blas.h"
#include "la/generate.h"

namespace {

using namespace tdg;

double best_of(index_t reps, const std::function<double()>& run) {
  double best = -1.0;
  for (index_t r = 0; r < reps; ++r) {
    const double s = run();
    if (best < 0.0 || s < best) best = s;
  }
  return best;
}

void emit(const char* op, index_t m, index_t n, index_t k, int threads,
          double seconds, double gflops) {
  benchutil::JsonLine("blas3_scaling")
      .field("op", op)
      .field("m", m)
      .field("n", n)
      .field("k", k)
      .field("threads", threads)
      .field("seconds", seconds)
      .field("gflops", gflops)
      .emit();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tdg;
  const index_t nmax = benchutil::arg_int(argc, argv, "nmax", 2048);
  const int maxthreads =
      static_cast<int>(benchutil::arg_int(argc, argv, "maxthreads", 8));
  const index_t reps = std::max<index_t>(
      benchutil::arg_int(argc, argv, "reps", 1), 1);
  Rng rng(12);

  benchutil::header("BLAS-3 engine scaling: packed gemm (m = n, k = n/2)");
  std::printf("%6s | %8s | %10s | %10s | %8s\n", "n", "threads", "sec",
              "GFLOP/s", "scaling");
  benchutil::rule();
  for (index_t n : {256, 512, 1024, 2048, 4096}) {
    if (n > nmax) break;
    const index_t k = n / 2;
    const Matrix a = random_matrix(n, k, rng);
    const Matrix b = random_matrix(k, n, rng);
    Matrix c(n, n);
    const double flops = 2.0 * static_cast<double>(n) * n * k;
    double s1 = 0.0;
    for (int t = 1; t <= maxthreads; t *= 2) {
      const double s = best_of(reps, [&] {
        ThreadLimit limit(t);
        WallTimer timer;
        la::gemm(Trans::kNo, Trans::kNo, 1.0, a.view(), b.view(), 0.0,
                 c.view());
        return timer.seconds();
      });
      if (t == 1) s1 = s;
      std::printf("%6lld | %8d | %10.4f | %10.2f | %7.2fx\n",
                  static_cast<long long>(n), t, s, flops / s / 1e9, s1 / s);
      emit("gemm", n, n, k, t, s, flops / s / 1e9);
    }
  }

  benchutil::header("BLAS-3 engine scaling: square-block syr2k (k = n/4)");
  std::printf("%6s | %8s | %10s | %10s | %8s\n", "n", "threads", "sec",
              "GFLOP/s", "scaling");
  benchutil::rule();
  for (index_t n : {512, 1024, 2048, 4096}) {
    if (n > nmax) break;
    const index_t k = std::min<index_t>(1024, n / 4);
    const Matrix a = random_matrix(n, k, rng);
    const Matrix b = random_matrix(n, k, rng);
    const Matrix c0 = random_symmetric(n, rng);
    const double flops = benchutil::syr2k_flops(n, k);
    double s1 = 0.0;
    for (int t = 1; t <= maxthreads; t *= 2) {
      Matrix c = c0;
      const double s = best_of(reps, [&] {
        ThreadLimit limit(t);
        WallTimer timer;
        la::syr2k_lower_square(-1.0, a.view(), b.view(), 1.0, c.view());
        return timer.seconds();
      });
      if (t == 1) s1 = s;
      std::printf("%6lld | %8d | %10.4f | %10.2f | %7.2fx\n",
                  static_cast<long long>(n), t, s, flops / s / 1e9, s1 / s);
      emit("syr2k_square", n, n, k, t, s, flops / s / 1e9);
    }
  }

  // The acceptance shape from the paper's fat-trailing-update regime.
  if (nmax >= 4096) {
    benchutil::header("Acceptance shapes (gemm 2048x2048x1024, syr2k n=4096 k=1024)");
    {
      const Matrix a = random_matrix(2048, 1024, rng);
      const Matrix b = random_matrix(1024, 2048, rng);
      Matrix c(2048, 2048);
      const double flops = 2.0 * 2048.0 * 2048.0 * 1024.0;
      for (int t = 1; t <= maxthreads; t *= 2) {
        const double s = best_of(reps, [&] {
          ThreadLimit limit(t);
          WallTimer timer;
          la::gemm(Trans::kNo, Trans::kNo, 1.0, a.view(), b.view(), 0.0,
                   c.view());
          return timer.seconds();
        });
        emit("gemm_acceptance", 2048, 2048, 1024, t, s, flops / s / 1e9);
      }
    }
    {
      const Matrix a = random_matrix(4096, 1024, rng);
      const Matrix b = random_matrix(4096, 1024, rng);
      const Matrix c0 = random_symmetric(4096, rng);
      const double flops = benchutil::syr2k_flops(4096, 1024);
      for (int t = 1; t <= maxthreads; t *= 2) {
        Matrix c = c0;
        const double s = best_of(reps, [&] {
          ThreadLimit limit(t);
          WallTimer timer;
          la::syr2k_lower_square(-1.0, a.view(), b.view(), 1.0, c.view());
          return timer.seconds();
        });
        emit("syr2k_acceptance", 4096, 4096, 1024, t, s, flops / s / 1e9);
      }
    }
  }
  return 0;
}
