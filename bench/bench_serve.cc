// Open-loop load against the in-process EVD service layer (tdg::serve).
//
// An open-loop arrival process (fixed submit schedule, independent of
// completion) over a mixed-shape working set exercises the whole ladder:
// shape-bucket coalescing, admission rejects once the queue saturates,
// deadline degradation, and — under TDG_FAULT_INJECT=serve_request:K —
// the retry rung. The CI soak job runs this binary for 60 s under fault
// injection and asserts accounted:true, drain_ok:true off this JSON line.
//
//   --duration_s=S     wall-clock submit window (default 5)
//   --rate=R           target submissions per second (default 200)
//   --queue=Q          ServeOptions::queue_capacity (default 256)
//   --window_ms=W      coalesce window (default 2)
//   --deadline_ms=D    per-request deadline, 0 = none (default 0)
//   --degrade_depth=K  queue depth beyond which vectors degrade (default 32)
//   --vectors=0/1      request eigenvectors (default 1)
//
// Emits one schema-stamped JSON line:
//   problems/s, p50/p95/p99 latency, reject rate, degraded count,
//   retries, breaker trips, accounted, drain_ok.

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <tdg/serve.h>

#include "bench_util.h"
#include "common/rng.h"
#include "la/generate.h"

namespace {

using namespace tdg;
using Clock = std::chrono::steady_clock;

// Mixed shapes: two coalescible buckets plus strays, mirroring a service
// that sees a few hot sizes and a long tail.
constexpr index_t kShapes[] = {48, 64, 64, 96, 96, 96, 128, 57};

}  // namespace

int main(int argc, char** argv) {
  using benchutil::arg_int;

  const double duration_s =
      static_cast<double>(arg_int(argc, argv, "duration_s", 5));
  const double rate = static_cast<double>(arg_int(argc, argv, "rate", 200));
  const double deadline_ms =
      static_cast<double>(arg_int(argc, argv, "deadline_ms", 0));
  const bool vectors = arg_int(argc, argv, "vectors", 1) != 0;

  serve::ServeOptions sopts;
  sopts.queue_capacity = arg_int(argc, argv, "queue", 256);
  sopts.coalesce_window_ms =
      static_cast<double>(arg_int(argc, argv, "window_ms", 2));
  sopts.degrade_queue_depth = arg_int(argc, argv, "degrade_depth", 32);

  // Pre-generate one matrix per shape; each submission copies it, so the
  // generator never sits on the submit path.
  constexpr int kNumShapes =
      static_cast<int>(sizeof(kShapes) / sizeof(kShapes[0]));
  std::vector<Matrix> protos;
  protos.reserve(kNumShapes);
  for (int i = 0; i < kNumShapes; ++i) {
    Rng rng(0x5e47e000ull + static_cast<std::uint64_t>(i));
    protos.push_back(random_symmetric(kShapes[i], rng));
  }

  serve::ServeCore core(sopts);
  std::vector<serve::Ticket> tickets;
  tickets.reserve(static_cast<std::size_t>(duration_s * rate) + 16);

  // Open loop: submission k fires at t0 + k/rate regardless of completions.
  const Clock::time_point t0 = Clock::now();
  const auto deadline_tp =
      t0 + std::chrono::duration_cast<Clock::duration>(
               std::chrono::duration<double>(duration_s));
  long long k = 0;
  while (Clock::now() < deadline_tp) {
    const Clock::time_point due =
        t0 + std::chrono::duration_cast<Clock::duration>(
                 std::chrono::duration<double>(static_cast<double>(k) / rate));
    std::this_thread::sleep_until(due);
    serve::RequestOptions ropts;
    ropts.vectors = vectors;
    ropts.deadline_ms = deadline_ms;
    const Matrix& proto = protos[static_cast<std::size_t>(k % kNumShapes)];
    Matrix a(proto.rows(), proto.cols());
    copy(proto.view(), a.view());
    tickets.push_back(core.submit(std::move(a), ropts));
    ++k;
  }
  const double submit_s =
      std::chrono::duration<double>(Clock::now() - t0).count();

  const bool drain_ok = core.drain(/*timeout_ms=*/120000.0);

  // Every future must be resolved after a successful drain; collect the
  // client-side view to cross-check the server counters.
  long long ok = 0, degraded = 0, rejected = 0, failed = 0;
  for (auto& t : tickets) {
    const serve::Response r = t.response.get();
    switch (r.outcome) {
      case serve::Outcome::kCompleted: ++ok; break;
      case serve::Outcome::kDegraded: ++degraded; break;
      case serve::Outcome::kRejected: ++rejected; break;
      case serve::Outcome::kFailed: ++failed; break;
    }
  }

  const serve::ServeStats s = core.stats();
  const long long solved = s.completed + s.degraded;
  const bool client_server_agree =
      ok == s.completed && degraded == s.degraded && rejected == s.rejected &&
      failed == s.failed;

  benchutil::JsonLine("serve")
      .field("duration_s", submit_s)
      .field("rate_target", rate)
      .field("submitted", s.submitted)
      .field("completed", s.completed)
      .field("degraded", s.degraded)
      .field("rejected", s.rejected)
      .field("failed", s.failed)
      .field("retries", s.retries)
      .field("breaker_trips", s.breaker_trips)
      .field("batches", s.batches)
      .field("queue_depth_hwm", s.queue_depth_hwm)
      .field("problems_per_s",
             submit_s > 0.0 ? static_cast<double>(solved) / submit_s : 0.0)
      .field("p50_ms", s.p50_ms)
      .field("p95_ms", s.p95_ms)
      .field("p99_ms", s.p99_ms)
      .field("reject_rate",
             s.submitted > 0
                 ? static_cast<double>(s.rejected) /
                       static_cast<double>(s.submitted)
                 : 0.0)
      .field("accounted", s.accounted() && client_server_agree)
      .field("drain_ok", drain_ok)
      .emit();

  // Non-zero exit on an accounting or drain violation so the CI soak job
  // fails loudly rather than parsing for it.
  return (s.accounted() && client_server_agree && drain_ok) ? 0 : 1;
}
