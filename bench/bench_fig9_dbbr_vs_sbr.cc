// Figure 9 of the paper: band reduction — MAGMA SBR vs the proposed DBBR
// (b = 64) on H100 across matrix sizes; paper reports up to 3.1x.
//
// Measured: both real algorithms on the CPU at laptop sizes.
// Projected: synthetic traces priced on the H100 model at paper sizes
// (classic SBR priced with the vendor-syr2k surrogate, DBBR with the
// square-block custom syr2k).

#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "gpumodel/kernel_model.h"
#include "gpumodel/trace_cost.h"
#include "la/generate.h"
#include "sbr/sbr.h"

int main(int argc, char** argv) {
  using namespace tdg;
  const index_t b = benchutil::arg_int(argc, argv, "b", 64);
  const index_t k = benchutil::arg_int(argc, argv, "k", 1024);

  benchutil::header("Figure 9 (measured CPU): sy2sb vs DBBR");
  Rng rng(3);
  std::printf("b = %lld, DBBR k = 256\n", static_cast<long long>(b));
  std::printf("%6s | %12s | %12s | %8s\n", "n", "sy2sb (s)", "dbbr (s)",
              "speedup");
  benchutil::rule();
  const index_t nmax = benchutil::arg_int(argc, argv, "nmax", 2048);
  for (index_t n : {512, 1024, 1536, 2048}) {
    if (n > nmax) break;
    const Matrix a0 = random_symmetric(n, rng);

    Matrix a1 = a0;
    WallTimer t1;
    sbr::BandReductionOptions o1;
    o1.use_square_syr2k = false;  // MAGMA calls cuBLAS syr2k
    sbr::sy2sb(a1.view(), std::min(b, n / 4), o1);
    const double s1 = t1.seconds();

    Matrix a2 = a0;
    WallTimer t2;
    sbr::BandReductionOptions o2;
    o2.b = std::min(b, n / 4);
    o2.k = std::max<index_t>(o2.b, 256 / o2.b * o2.b);
    o2.use_square_syr2k = true;
    o2.syr2k_block = 256;
    sbr::dbbr(a2.view(), o2);
    const double s2 = t2.seconds();

    std::printf("%6lld | %12.3f | %12.3f | %7.2fx\n",
                static_cast<long long>(n), s1, s2, s1 / s2);
  }

  benchutil::header("Figure 9 (H100 projection at paper sizes)");
  const gpumodel::KernelModel vendor(gpumodel::h100_sxm(), true);
  const gpumodel::KernelModel ours(gpumodel::h100_sxm(), false);
  std::printf("b = %lld, DBBR k = %lld\n", static_cast<long long>(b),
              static_cast<long long>(k));
  std::printf("%8s | %12s | %12s | %8s\n", "n", "SBR (s)", "DBBR (s)",
              "speedup");
  benchutil::rule();
  for (index_t n : {8192, 16384, 24576, 32768, 40960, 49152}) {
    const auto sbr_cost =
        gpumodel::price_trace(vendor, gpumodel::trace_sy2sb(n, b, false));
    const auto dbbr_cost = gpumodel::price_trace(
        ours, gpumodel::trace_dbbr(n, b, k, true, 512));
    std::printf("%8lld | %12.2f | %12.2f | %7.2fx\n",
                static_cast<long long>(n), sbr_cost.seconds,
                dbbr_cost.seconds, sbr_cost.seconds / dbbr_cost.seconds);
  }
  std::printf("\npaper: DBBR speedup up to 3.1x at large n\n");
  return 0;
}
