// Figure 15 of the paper — the headline result: full tridiagonalization,
// cuSOLVER Dsytrd vs MAGMA (Dsy2sb + Dsb2st) vs the proposed method
// (DBBR + GPU bulge chasing) on H100 and RTX 4090.
// Paper: up to 19.6 TFLOPs vs 3.4 (MAGMA) and 2.1 (cuSOLVER) on H100 —
// 9.3x / 5.2x speedups; on the 4090 BC dominates: 14327 ms vs 1839 ms at
// n = 32768.
//
// Measured: the three real pipelines on the CPU at laptop sizes.
// Projected: synthetic traces + pipeline model at paper sizes, both GPUs.

#include <cstdio>

#include <tdg/eig.h>

#include "bench_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "gpumodel/bc_pipeline_model.h"
#include "gpumodel/kernel_model.h"
#include "gpumodel/trace_cost.h"
#include "la/generate.h"

namespace {

using namespace tdg;

struct Projection {
  double cusolver, magma, proposed;
};

Projection project(const gpumodel::DeviceSpec& spec, index_t n) {
  const gpumodel::KernelModel vendor(spec, true);
  const gpumodel::KernelModel ours(spec, false);
  Projection p;
  p.cusolver = gpumodel::price_trace(vendor, gpumodel::trace_sytrd(n, 64)).seconds;
  p.magma = gpumodel::price_trace(vendor, gpumodel::trace_sy2sb(n, 64, false))
                .seconds +
            gpumodel::magma_sb2st_seconds(n, 64);
  p.proposed =
      gpumodel::price_trace(ours, gpumodel::trace_dbbr(n, 32, 1024, true, 512))
          .seconds +
      gpumodel::bc_gpu_optimized_seconds(spec, n, 32);
  return p;
}

void print_projection(const gpumodel::DeviceSpec& spec) {
  std::printf("\n-- %s projection --\n", spec.name.c_str());
  std::printf("%8s | %10s %7s | %10s %7s | %10s %7s | %7s %7s\n", "n",
              "cuSOLVER s", "TFLOPs", "MAGMA s", "TFLOPs", "proposed s",
              "TFLOPs", "vs cuS", "vs MAG");
  benchutil::rule();
  for (index_t n : {8192, 16384, 24576, 32768, 40960, 49152}) {
    const Projection p = project(spec, n);
    const double f = benchutil::tridiag_flops(n);
    std::printf("%8lld | %10.2f %7.2f | %10.2f %7.2f | %10.2f %7.2f | %6.2fx %6.2fx\n",
                static_cast<long long>(n), p.cusolver, f / p.cusolver / 1e12,
                p.magma, f / p.magma / 1e12, p.proposed,
                f / p.proposed / 1e12, p.cusolver / p.proposed,
                p.magma / p.proposed);
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::header("Figure 15 (measured CPU): direct vs classic 2-stage vs DBBR+pipelined BC");
  Rng rng(7);
  const index_t nmax = benchutil::arg_int(argc, argv, "nmax", 1536);
  std::printf("%6s | %12s | %12s | %12s (stage1+stage2)\n", "n", "direct (s)",
              "classic (s)", "proposed (s)");
  benchutil::rule();
  for (index_t n : {512, 1024, 1536}) {
    if (n > nmax) break;
    const Matrix a = random_symmetric(n, rng);

    TridiagOptions od;
    od.method = TridiagMethod::kDirect;
    od.want_factors = false;
    WallTimer t1;
    tridiagonalize(a.view(), od);
    const double s1 = t1.seconds();

    TridiagOptions oc;
    oc.method = TridiagMethod::kTwoStageClassic;
    oc.b = 64;
    oc.use_square_syr2k = false;
    oc.want_factors = false;
    WallTimer t2;
    tridiagonalize(a.view(), oc);
    const double s2 = t2.seconds();

    TridiagOptions op;
    op.method = TridiagMethod::kTwoStageDbbr;
    op.b = 32;
    op.k = 256;
    op.want_factors = false;
    WallTimer t3;
    const TridiagResult r = tridiagonalize(a.view(), op);
    const double s3 = t3.seconds();

    std::printf("%6lld | %12.3f | %12.3f | %12.3f (%.3f + %.3f)\n",
                static_cast<long long>(n), s1, s2, s3, r.seconds_stage1,
                r.seconds_stage2);
  }

  print_projection(tdg::gpumodel::h100_sxm());
  print_projection(tdg::gpumodel::rtx4090());
  std::printf("\npaper: H100 19.6 TFLOPs proposed vs 3.4 MAGMA vs 2.1 cuSOLVER"
              " (9.3x / 5.2x)\n");
  return 0;
}
