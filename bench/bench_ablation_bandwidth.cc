// Ablation: the bandwidth trade-off of Section 3.2. Increasing b speeds up
// stage 1 (fatter syr2k) but slows bulge chasing; the paper quotes, at
// n = 49152: b=64 -> SBR 22.1 s + BC 23.9 s, b=128 -> SBR 16.5 s +
// BC 84.9 s, and BC at b=32 taking 16.2 s — which is why classic two-stage
// picks b <= 128 and why DBBR's decoupling of k from b lets it run b = 32.

#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "bc/bulge_chase.h"
#include "gpumodel/bc_pipeline_model.h"
#include "gpumodel/kernel_model.h"
#include "gpumodel/trace_cost.h"
#include "la/generate.h"
#include "sbr/sbr.h"

int main(int argc, char** argv) {
  using namespace tdg;
  const index_t n = benchutil::arg_int(argc, argv, "n", 49152);

  benchutil::header("Ablation (H100 projection): classic 2-stage vs bandwidth b");
  const gpumodel::KernelModel vendor(gpumodel::h100_sxm(), true);
  std::printf("n = %lld (paper at b=64: SBR 22.1 s, BC 23.9 s; b=128: "
              "SBR 16.5 s, BC 84.9 s)\n", static_cast<long long>(n));
  std::printf("%6s | %10s | %12s | %10s\n", "b", "SBR (s)", "CPU BC (s)",
              "total (s)");
  benchutil::rule();
  for (index_t b : {16, 32, 64, 128, 256}) {
    const double sbr =
        gpumodel::price_trace(vendor, gpumodel::trace_sy2sb(n, b, false))
            .seconds;
    const double bcs = gpumodel::magma_sb2st_seconds(n, b);
    std::printf("%6lld | %10.2f | %12.2f | %10.2f\n",
                static_cast<long long>(b), sbr, bcs, sbr + bcs);
  }

  benchutil::header("Ablation (H100 projection): proposed pipeline vs bandwidth b");
  const gpumodel::KernelModel ours(gpumodel::h100_sxm(), false);
  const auto spec = gpumodel::h100_sxm();
  std::printf("%6s | %10s | %12s | %10s\n", "b", "DBBR (s)", "GPU BC (s)",
              "total (s)");
  benchutil::rule();
  for (index_t b : {16, 32, 64, 128}) {
    const index_t k = std::max<index_t>(b, 1024 / b * b);
    const double dbbr =
        gpumodel::price_trace(ours, gpumodel::trace_dbbr(n, b, k, true, 512))
            .seconds;
    const double bcs = gpumodel::bc_gpu_optimized_seconds(spec, n, b);
    std::printf("%6lld | %10.2f | %12.2f | %10.2f\n",
                static_cast<long long>(b), dbbr, bcs, dbbr + bcs);
  }

  benchutil::header("Measured CPU: stage-1 vs stage-2 time as b grows");
  Rng rng(21);
  const index_t nm = benchutil::arg_int(argc, argv, "nmeasured", 1024);
  const Matrix a0 = random_symmetric(nm, rng);
  std::printf("n = %lld\n", static_cast<long long>(nm));
  std::printf("%6s | %12s | %12s | %10s\n", "b", "sy2sb (s)", "seq BC (s)",
              "total (s)");
  benchutil::rule();
  for (index_t b : {8, 16, 32, 64, 128}) {
    Matrix a = a0;
    WallTimer t1;
    sbr::sy2sb(a.view(), b);
    const double s1 = t1.seconds();
    SymBandMatrix band =
        extract_band(a.view(), b, std::min<index_t>(2 * b, nm - 1));
    WallTimer t2;
    bc::chase_packed(band, b, nullptr);
    const double s2 = t2.seconds();
    std::printf("%6lld | %12.3f | %12.3f | %10.3f\n",
                static_cast<long long>(b), s1, s2, s1 + s2);
  }
  return 0;
}
