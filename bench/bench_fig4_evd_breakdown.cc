// Figure 4 of the paper: where the time goes in a full EVD at n = 49152 —
// cuSOLVER spends > 97% in tridiagonalization; MAGMA's two-stage splits
// into SBR 22.1 s / BC 23.9 s with divide & conquer at just 7.6%.
//
// Projected breakdown at n = 49152 via synthetic traces; measured breakdown
// of our real pipelines at laptop scale.

#include <cstdio>

#include <tdg/eig.h>

#include "bench_util.h"
#include "common/rng.h"
#include "gpumodel/bc_pipeline_model.h"
#include "gpumodel/kernel_model.h"
#include "gpumodel/trace_cost.h"
#include "la/generate.h"

int main(int argc, char** argv) {
  using namespace tdg;
  const index_t n = benchutil::arg_int(argc, argv, "n", 49152);

  const gpumodel::KernelModel vendor(gpumodel::h100_sxm(), true);
  const gpumodel::KernelModel ours(gpumodel::h100_sxm(), false);

  benchutil::header("Figure 4 (H100 projection): EVD time breakdown, n = 49152");
  {
    const double sytrd =
        gpumodel::price_trace(vendor, gpumodel::trace_sytrd(n, 64)).seconds;
    const double dc =
        gpumodel::price_trace(vendor, gpumodel::trace_stedc(n)).seconds;
    const double total = sytrd + dc;
    std::printf("cuSOLVER: sytrd %.1f s (%.1f%%), divide&conquer %.1f s (%.1f%%)"
                " | tridiag TFLOPs %.2f (paper: 2.0, share 97.7%%)\n",
                sytrd, 100.0 * sytrd / total, dc, 100.0 * dc / total,
                benchutil::tridiag_flops(n) / sytrd / 1e12);
  }
  {
    const double sbr =
        gpumodel::price_trace(vendor, gpumodel::trace_sy2sb(n, 64, false))
            .seconds;
    const double bcs = gpumodel::magma_sb2st_seconds(n, 64);
    const double dc =
        gpumodel::price_trace(vendor, gpumodel::trace_stedc(n)).seconds;
    const double total = sbr + bcs + dc;
    std::printf("MAGMA:    sy2sb %.1f s (%.1f%%), sb2st %.1f s (%.1f%%), "
                "divide&conquer %.1f s (%.1f%%)\n", sbr, 100.0 * sbr / total,
                bcs, 100.0 * bcs / total, dc, 100.0 * dc / total);
    std::printf("          (paper: SBR 22.1 s, BC 23.9 s = 48%% of 2-stage,"
                " tridiag 3.4 TFLOPs; ours %.2f TFLOPs)\n",
                benchutil::tridiag_flops(n) / (sbr + bcs) / 1e12);
  }
  {
    const auto spec = gpumodel::h100_sxm();
    const double dbbr =
        gpumodel::price_trace(ours, gpumodel::trace_dbbr(n, 32, 1024, true, 512))
            .seconds;
    const double bcs = gpumodel::bc_gpu_optimized_seconds(spec, n, 32);
    const double dc =
        gpumodel::price_trace(vendor, gpumodel::trace_stedc(n)).seconds;
    const double total = dbbr + bcs + dc;
    std::printf("proposed: DBBR %.1f s (%.1f%%), GPU-BC %.1f s (%.1f%%), "
                "divide&conquer %.1f s (%.1f%%) | tridiag TFLOPs %.2f\n",
                dbbr, 100.0 * dbbr / total, bcs, 100.0 * bcs / total, dc,
                100.0 * dc / total,
                benchutil::tridiag_flops(n) / (dbbr + bcs) / 1e12);
  }

  benchutil::header("Measured CPU breakdown (eigenvalues + vectors)");
  Rng rng(8);
  const index_t nm = benchutil::arg_int(argc, argv, "nmeasured", 768);
  const Matrix a = random_symmetric(nm, rng);
  for (auto method : {TridiagMethod::kDirect, TridiagMethod::kTwoStageClassic,
                      TridiagMethod::kTwoStageDbbr}) {
    eig::EvdOptions opts;
    opts.tridiag.method = method;
    opts.tridiag.b = 32;
    opts.tridiag.k = 256;
    const eig::EvdResult r = eig::eigh(a.view(), opts);
    const double total =
        r.seconds_tridiag + r.seconds_solver + r.seconds_backtransform;
    const char* name = method == TridiagMethod::kDirect ? "direct "
                       : method == TridiagMethod::kTwoStageClassic
                           ? "classic"
                           : "dbbr   ";
    std::printf("n=%lld %s: tridiag %.2f s (%.0f%%), D&C %.2f s (%.0f%%), "
                "back-transform %.2f s (%.0f%%)\n",
                static_cast<long long>(nm), name, r.seconds_tridiag,
                100.0 * r.seconds_tridiag / total, r.seconds_solver,
                100.0 * r.seconds_solver / total, r.seconds_backtransform,
                100.0 * r.seconds_backtransform / total);
  }
  return 0;
}
