// Figure 14 of the paper: stage-1 back transformation (b = 64) — MAGMA's
// panel-by-panel ormqr vs the proposed blocked W reconstruction (k = 2048).
// Paper reports ~1.6x.
//
// Measured: the three real variants (conventional / recursive Algorithm 3 /
// blocked Figure 13) on the CPU. Projected: synthetic traces priced on the
// H100 model at paper sizes.

#include <cstdio>

#include "backtransform/backtransform.h"
#include "bench_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "gpumodel/kernel_model.h"
#include "gpumodel/trace_cost.h"
#include "la/generate.h"
#include "sbr/sbr.h"

int main(int argc, char** argv) {
  using namespace tdg;
  const index_t b = benchutil::arg_int(argc, argv, "b", 64);

  benchutil::header("Figure 14 (measured CPU): back-transform variants");
  Rng rng(6);
  std::printf("%6s | %12s | %12s | %12s | %14s\n", "n", "conv (s)",
              "recursive(s)", "blocked (s)", "blocked spdup");
  benchutil::rule();
  for (index_t n : {512, 1024, 1536}) {
    const index_t be = std::min(b, n / 4);
    Matrix a = random_symmetric(n, rng);
    sbr::BandFactor f = sbr::sy2sb(a.view(), be);
    Matrix c0 = random_matrix(n, n, rng);

    Matrix c1 = c0;
    WallTimer t1;
    bt::apply_q1_conventional(f, c1.view());
    const double s1 = t1.seconds();

    Matrix c2 = c0;
    WallTimer t2;
    bt::apply_q1_recursive(f, c2.view());
    const double s2 = t2.seconds();

    Matrix c3 = c0;
    WallTimer t3;
    bt::apply_q1_blocked(f, 256, c3.view());
    const double s3 = t3.seconds();

    std::printf("%6lld | %12.3f | %12.3f | %12.3f | %13.2fx\n",
                static_cast<long long>(n), s1, s2, s3, s1 / s3);
  }

  benchutil::header("Figure 14 (H100 projection, b = 64, kw = 2048)");
  const gpumodel::KernelModel model(gpumodel::h100_sxm());
  std::printf("%8s | %12s | %12s | %8s\n", "n", "ormqr (s)", "blocked (s)",
              "speedup");
  benchutil::rule();
  for (index_t n : {8192, 16384, 24576, 32768, 40960, 49152}) {
    const auto conv =
        gpumodel::price_trace(model, gpumodel::trace_bt_conventional(n, b, n));
    const auto blocked =
        gpumodel::price_trace(model, gpumodel::trace_bt_blocked(n, b, 2048, n));
    std::printf("%8lld | %12.2f | %12.2f | %7.2fx\n",
                static_cast<long long>(n), conv.seconds, blocked.seconds,
                conv.seconds / blocked.seconds);
  }
  std::printf("\npaper: ~1.6x over MAGMA ormqr\n");
  return 0;
}
