// Batched small-matrix EVD throughput: eigh_batched (pool-level parallelism,
// one problem per worker, bucket-shared plans) against the baseline serial
// loop of standalone eigh() calls over the same problems. The acceptance
// target for this driver is >= 2x throughput over the serial loop at 8
// workers for B >= 32 problems of n = 64 .. 256.
//
//   --threads=T   worker count for the batched driver (default 8)
//   --b=B         problems per batch (default 32)
//   --reps=R      timing repetitions, best-of (default 3)
//   --hetero=0/1  include the mixed-size batch (default 1)

#include <algorithm>
#include <cstdio>
#include <vector>

#include <tdg/eig.h>

#include "bench_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "la/generate.h"

namespace {

using namespace tdg;

struct BatchCase {
  std::string label;
  std::vector<index_t> sizes;
};

double best_of(int reps, double (*run)(void*), void* ctx) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) best = std::min(best, run(ctx));
  return best;
}

struct RunCtx {
  const std::vector<ConstMatrixView>* views;
  eig::BatchOptions bopts;
  eig::EvdOptions sopts;
};

double run_batched(void* p) {
  RunCtx& c = *static_cast<RunCtx*>(p);
  WallTimer t;
  const eig::BatchResult res = eig::eigh_batched(*c.views, c.bopts);
  const double s = t.seconds();
  if (!res.all_ok()) std::fprintf(stderr, "batched: %lld slot(s) failed\n",
                                  static_cast<long long>(res.failed));
  return s;
}

volatile double g_sink = 0.0;

double run_serial(void* p) {
  RunCtx& c = *static_cast<RunCtx*>(p);
  WallTimer t;
  for (const ConstMatrixView& v : *c.views) {
    const eig::EvdResult r = eig::eigh(v, c.sopts);
    g_sink = r.eigenvalues.empty() ? 0.0 : r.eigenvalues[0];
  }
  return t.seconds();
}

}  // namespace

int main(int argc, char** argv) {
  const int threads =
      static_cast<int>(benchutil::arg_int(argc, argv, "threads", 8));
  const index_t b = benchutil::arg_int(argc, argv, "b", 32);
  const int reps = static_cast<int>(benchutil::arg_int(argc, argv, "reps", 3));
  const bool hetero = benchutil::arg_int(argc, argv, "hetero", 1) != 0;

  benchutil::header("Batched EVD: eigh_batched vs serial eigh loop");
  std::printf("workers=%d  B=%lld  reps=%d (best-of)\n\n", threads,
              static_cast<long long>(b), reps);
  std::printf("%-14s | %8s | %10s | %10s | %12s | %7s\n", "case", "n",
              "serial s", "batched s", "problems/s", "speedup");
  benchutil::rule();

  std::vector<BatchCase> cases;
  for (const index_t n : {64, 128, 256}) {
    cases.push_back({"uniform", std::vector<index_t>(
                                    static_cast<size_t>(b), n)});
  }
  if (hetero) {
    // Mixed sizes across three pow2 buckets: the work-stealing queue and
    // the descending-size deal carry the load balance here.
    BatchCase mixed{"mixed", {}};
    for (index_t i = 0; i < b; ++i) {
      mixed.sizes.push_back(64 + 16 * (i % 13));  // 64 .. 256 in 13 steps
    }
    cases.push_back(mixed);
  }

  for (const BatchCase& bc : cases) {
    Rng rng(41);
    std::vector<Matrix> mats;
    mats.reserve(bc.sizes.size());
    for (const index_t n : bc.sizes) {
      mats.push_back(random_symmetric(n, rng));
    }
    std::vector<ConstMatrixView> views;
    views.reserve(mats.size());
    for (const Matrix& m : mats) views.push_back(m.view());

    RunCtx ctx;
    ctx.views = &views;
    ctx.bopts.threads = threads;
    // The serial baseline gets the same per-problem configuration the
    // batch workers run at (intra-problem budget of 1), so the comparison
    // isolates pool-level parallelism + plan sharing.
    ctx.sopts.tridiag.threads = 1;
    ctx.sopts.tridiag.bc_threads = 1;

    // Warm the planner's bucket plans out of the timed region.
    for (const index_t n : {64, 128, 256}) {
      g_sink = static_cast<double>(eig::batch_bucket_plan(n, ctx.bopts).b);
    }

    const double serial_s = best_of(reps, run_serial, &ctx);
    const double batched_s = best_of(reps, run_batched, &ctx);
    const double pps = static_cast<double>(views.size()) / batched_s;
    const double speedup = serial_s / batched_s;
    const index_t n_repr = bc.label == "mixed" ? 0 : bc.sizes.front();

    std::printf("%-14s | %8lld | %10.4f | %10.4f | %12.1f | %6.2fx\n",
                bc.label.c_str(), static_cast<long long>(n_repr), serial_s,
                batched_s, pps, speedup);
    benchutil::JsonLine("batched_evd")
        .field("case", bc.label)
        .field("B", static_cast<index_t>(views.size()))
        .field("n", n_repr)  // 0 for the mixed-size batch
        .field("workers", threads)
        .field("serial_seconds", serial_s)
        .field("batched_seconds", batched_s)
        .field("problems_per_s", pps)
        .field("speedup_vs_serial", speedup)
        .emit();
  }

  std::printf("\ntarget: >= 2x over the serial loop at 8 workers "
              "(B >= 32, n = 64 .. 256); 1x is parity on a single core\n");
  return 0;
}
