// Table 1 of the paper: Dsyr2k throughput (TFLOPs) on H100 and RTX 4090 for
// n in {8192, 32768} and k in {16 ... 4096}.
//
// Columns: paper's measured cuBLAS numbers next to our device-model
// projections (the model is calibrated on two anchor points and must
// reproduce the rest of the grid's *shape*: linear growth in k on H100,
// saturation at large k, and the FP64-starved 4090 pinned at ~1.2).
//
// A measured CPU section runs the real reference syr2k at laptop scale to
// demonstrate the same qualitative k-dependence on actual hardware.

#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "gpumodel/kernel_model.h"
#include "la/blas.h"
#include "la/generate.h"

namespace {

// Paper Table 1 (TFLOPs).
struct PaperRow {
  tdg::index_t k;
  double h100_n8192, h100_n32768, rtx_n8192, rtx_n32768;
};
constexpr PaperRow kPaper[] = {
    {16, 0.43, 3.58, 1.07, 1.19},    {32, 0.86, 7.02, 1.07, 1.20},
    {64, 1.71, 12.78, 1.06, 1.21},   {128, 3.39, 21.05, 1.06, 1.21},
    {256, 6.41, 30.13, 1.12, 1.22},  {512, 11.57, 38.31, 1.20, 1.24},
    {1024, 18.91, 42.86, 1.22, 1.24}, {2048, 27.21, 45.36, 1.23, 1.24},
    {4096, 34.59, 45.54, 1.24, 1.25},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace tdg;
  benchutil::header("Table 1: SYR2K throughput vs (n, k) — paper vs device model");

  const gpumodel::KernelModel h100(gpumodel::h100_sxm());
  const gpumodel::KernelModel rtx(gpumodel::rtx4090());

  std::printf("%6s | %9s %9s | %9s %9s | %9s %9s | %9s %9s\n", "k",
              "H100/8192", "(paper)", "H100/32k", "(paper)", "4090/8192",
              "(paper)", "4090/32k", "(paper)");
  benchutil::rule();
  for (const auto& row : kPaper) {
    std::printf("%6lld | %9.2f %9.2f | %9.2f %9.2f | %9.2f %9.2f | %9.2f %9.2f\n",
                static_cast<long long>(row.k),
                h100.vendor_syr2k_tflops(8192, row.k), row.h100_n8192,
                h100.vendor_syr2k_tflops(32768, row.k), row.h100_n32768,
                rtx.vendor_syr2k_tflops(8192, row.k), row.rtx_n8192,
                rtx.vendor_syr2k_tflops(32768, row.k), row.rtx_n32768);
  }

  benchutil::header("Measured CPU reference syr2k (shape check: GFLOPs grow with k)");
  const index_t n = benchutil::arg_int(argc, argv, "n", 1024);
  Rng rng(1);
  std::printf("%6s | %10s | %10s\n", "k", "seconds", "GFLOPs");
  benchutil::rule();
  for (index_t k : {8, 16, 32, 64, 128, 256}) {
    const Matrix a = random_matrix(n, k, rng);
    const Matrix b = random_matrix(n, k, rng);
    Matrix c = random_symmetric(n, rng);
    WallTimer t;
    la::syr2k_lower(-1.0, a.view(), b.view(), 1.0, c.view());
    const double s = t.seconds();
    std::printf("%6lld | %10.4f | %10.2f\n", static_cast<long long>(k), s,
                benchutil::syr2k_flops(n, k) / s / 1e9);
  }
  return 0;
}
