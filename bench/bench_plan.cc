// Planner acceptance bench: seed-default configuration vs planned.
//
// For each n, run the full EVD twice — once under PlanMode::kManual (the
// legacy hard-coded knobs the repo shipped with) and once with a plan from
// the measure tier (which consults the persistent cache first). The planned
// run must be no slower than the seed default, and a second invocation of
// this bench must report plan_source "cache" with zero planning time spent
// on re-measurement.
//
// Each measurement is emitted as one JSON line (prefix "JSON ") so the perf
// trajectory can scrape it:
//   JSON {"bench":"plan","n":1024,"config":"planned","plan_source":"cache",...}
//
// Flags: --n_max=2048 --reps=2 --cache=<path> (default: TDG_PLAN_CACHE, else
// tdg_plan_cache.json in the working directory).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <tdg/eig.h>

#include "bench_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "la/generate.h"
#include "plan/plan_cache.h"

namespace tdg {
namespace {

struct RunResult {
  double seconds = 0.0;
  std::string plan_source;
};

RunResult run_evd(ConstMatrixView a, const eig::EvdOptions& opts, int reps) {
  RunResult best;
  best.seconds = 1e300;
  for (int r = 0; r < reps; ++r) {
    WallTimer t;
    const eig::EvdResult res = eig::eigh(a, opts);
    const double s = t.seconds();
    if (s < best.seconds) {
      best.seconds = s;
      best.plan_source = res.plan_source;
    }
  }
  return best;
}

int run(int argc, char** argv) {
  const index_t n_max = benchutil::arg_int(argc, argv, "n_max", 2048);
  const int reps =
      static_cast<int>(benchutil::arg_int(argc, argv, "reps", 2));

  // Persistent cache: flag > env > a local default. The planner reads the
  // same resolution order, so pointing both at one file is enough.
  std::string cache = "tdg_plan_cache.json";
  if (const char* env = std::getenv("TDG_PLAN_CACHE")) cache = env;
  const std::string prefix = "--cache=";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind(prefix, 0) == 0) cache = a.substr(prefix.size());
  }

  benchutil::header("planner: seed defaults vs planned (full EVD)");
  std::printf("plan cache: %s\n", cache.c_str());
  std::printf("%8s %12s %12s %10s %12s %8s %6s %6s\n", "n", "default_s",
              "planned_s", "speedup", "plan_source", "plan_s", "b", "k");
  benchutil::rule();

  for (index_t n = 512; n <= n_max; n *= 2) {
    Rng rng(0xb5297a4d + static_cast<uint64_t>(n));
    const Matrix a = random_symmetric(n, rng);

    // Seed default: the pre-planner hard-coded knob vector.
    eig::EvdOptions manual;
    manual.plan = PlanMode::kManual;
    const RunResult def = run_evd(a.view(), manual, reps);

    // Planned: measure tier with the persistent cache. Resolve the plan
    // once up front so planning time is reported separately from solve time.
    plan::PlannerOptions popts;
    popts.cache_path = cache;
    WallTimer plan_timer;
    const plan::Plan p =
        plan::measured_plan({n, /*vectors=*/true, /*subset=*/0}, popts);
    const double plan_seconds = plan_timer.seconds();

    // Apply the resolved plan manually so the timed region is pure solve
    // (the planner was already consulted, and its cost reported, above).
    eig::EvdOptions planned;
    planned.plan = PlanMode::kManual;
    planned.tridiag.method = p.method;
    planned.tridiag.b = p.b;
    planned.tridiag.k = p.k;
    planned.tridiag.sytrd_nb = p.sytrd_nb;
    planned.tridiag.bc_threads = p.bc_threads;
    planned.tridiag.max_parallel_sweeps = p.max_parallel_sweeps;
    planned.knobs.smlsiz = p.smlsiz;
    planned.knobs.bt_kw = p.bt_kw;
    planned.knobs.q2_group = p.q2_group;
    const RunResult plv = run_evd(a.view(), planned, reps);

    const char* source = plan::to_string(p.source);
    std::printf("%8lld %12.4f %12.4f %9.2fx %12s %12.4f %6lld %6lld\n",
                static_cast<long long>(n), def.seconds, plv.seconds,
                def.seconds / plv.seconds, source, plan_seconds,
                static_cast<long long>(p.b), static_cast<long long>(p.k));
    benchutil::JsonLine("plan")
        .field("n", n)
        .field("default_seconds", def.seconds)
        .field("planned_seconds", plv.seconds)
        .field("speedup", def.seconds / plv.seconds)
        .field("plan_source", source)
        .field("plan_seconds", plan_seconds)
        .field("b", p.b)
        .field("k", p.k)
        .field("sweeps", p.max_parallel_sweeps)
        .field("smlsiz", p.smlsiz)
        .emit();
  }
  benchutil::rule();

  // Cache telemetry: one JSON line with the process-wide counters plus the
  // per-shape-bucket breakdown, so the perf trajectory can watch hit rates
  // and re-measurement churn across runs.
  const plan::CacheStats cs = plan::PlanCache::global().stats();
  std::string buckets = "[";
  bool first = true;
  for (const auto& [key, ss] : plan::PlanCache::global().shape_stats()) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"key\":\"%s\",\"hits\":%lld,\"misses\":%lld,"
                  "\"measure_runs\":%lld}",
                  first ? "" : ",", key.c_str(), ss.hits, ss.misses,
                  ss.measure_runs);
    buckets += buf;
    first = false;
  }
  buckets += "]";
  benchutil::JsonLine("plan_cache_stats")
      .field("hits", cs.hits)
      .field("misses", cs.misses)
      .field("measure_runs", cs.measure_runs)
      .field("loads", cs.loads)
      .field("saves", cs.saves)
      .field("save_failures", cs.save_failures)
      .field("lock_failures", cs.lock_failures)
      .raw("buckets", buckets)
      .emit();

  std::printf("second run of this bench should show plan_source \"cache\"\n");
  return 0;
}

}  // namespace
}  // namespace tdg

int main(int argc, char** argv) { return tdg::run(argc, argv); }
