// Figure 16 of the paper: end-to-end EVD — cuSOLVER Dsyevd vs MAGMA vs the
// proposed pipeline, with and without eigenvectors. Paper: up to 6.1x /
// 3.8x (no vectors); with vectors the BC back transformation eats 61% of
// the proposed pipeline's time and the advantage over cuSOLVER shrinks.

#include <cstdio>

#include <tdg/eig.h>

#include "bench_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "gpumodel/bc_pipeline_model.h"
#include "gpumodel/kernel_model.h"
#include "gpumodel/trace_cost.h"
#include "la/generate.h"

namespace {

using namespace tdg;

struct EvdProjection {
  double cusolver, magma, proposed;
  double proposed_bcbt = 0.0;  // stage-2 back-transform share (with vectors)
};

EvdProjection project(index_t n, bool vectors) {
  const auto spec = gpumodel::h100_sxm();
  const gpumodel::KernelModel vendor(spec, true);
  const gpumodel::KernelModel ours(spec, false);

  const double dc =
      gpumodel::price_trace(vendor, gpumodel::trace_stedc(n)).seconds;
  const double q2 =
      gpumodel::price_trace(ours, gpumodel::trace_q2_apply(n, 32, n)).seconds;
  const double q2_magma =
      gpumodel::price_trace(vendor, gpumodel::trace_q2_apply(n, 64, n)).seconds;

  EvdProjection p;
  // cuSOLVER: direct sytrd (+ D&C + ormtr when vectors).
  p.cusolver =
      gpumodel::price_trace(vendor, gpumodel::trace_sytrd(n, 64)).seconds;
  if (vectors) {
    p.cusolver += dc + gpumodel::price_trace(
                           vendor, gpumodel::trace_bt_conventional(n, 64, n))
                           .seconds;
  }
  // MAGMA: sy2sb + CPU sb2st (+ D&C + Q2 + conventional Q1).
  p.magma = gpumodel::price_trace(vendor, gpumodel::trace_sy2sb(n, 64, false))
                .seconds +
            gpumodel::magma_sb2st_seconds(n, 64);
  if (vectors) {
    p.magma += dc + q2_magma +
               gpumodel::price_trace(
                   vendor, gpumodel::trace_bt_conventional(n, 64, n))
                   .seconds;
  }
  // Proposed: DBBR + GPU BC (+ D&C + Q2 + blocked Q1 with kw = 2048).
  p.proposed =
      gpumodel::price_trace(ours, gpumodel::trace_dbbr(n, 32, 1024, true, 512))
          .seconds +
      gpumodel::bc_gpu_optimized_seconds(spec, n, 32);
  if (vectors) {
    p.proposed += dc + q2 +
                  gpumodel::price_trace(
                      ours, gpumodel::trace_bt_blocked(n, 32, 2048, n))
                      .seconds;
    p.proposed_bcbt = q2 / p.proposed;
  }
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::header("Figure 16 (H100 projection): end-to-end EVD");
  for (const bool vectors : {false, true}) {
    std::printf("\n-- %s eigenvectors --\n", vectors ? "WITH" : "WITHOUT");
    std::printf("%8s | %10s | %10s | %10s | %7s | %7s\n", "n", "cuSOLVER s",
                "MAGMA s", "proposed s", "vs cuS", "vs MAG");
    benchutil::rule();
    for (index_t n : {4096, 8192, 16384, 32768, 49152}) {
      const EvdProjection p = project(n, vectors);
      std::printf("%8lld | %10.2f | %10.2f | %10.2f | %6.2fx | %6.2fx",
                  static_cast<long long>(n), p.cusolver, p.magma, p.proposed,
                  p.cusolver / p.proposed, p.magma / p.proposed);
      if (vectors && n == 49152) {
        std::printf("  (BC back-transform share: %.0f%%, paper: 61%%)",
                    100.0 * p.proposed_bcbt);
      }
      std::printf("\n");
      benchutil::JsonLine("fig16_evd_projection")
          .field("n", n)
          .field("vectors", vectors)
          .field("cusolver_seconds", p.cusolver)
          .field("magma_seconds", p.magma)
          .field("proposed_seconds", p.proposed)
          .field("speedup_vs_cusolver", p.cusolver / p.proposed)
          .field("speedup_vs_magma", p.magma / p.proposed)
          .emit();
    }
  }
  std::printf("\npaper: up to 6.1x vs cuSOLVER and 3.8x vs MAGMA without "
              "vectors; slight advantage over cuSOLVER with vectors\n");

  benchutil::header("Measured CPU: end-to-end eigh(), all three pipelines");
  Rng rng(9);
  const index_t nm = benchutil::arg_int(argc, argv, "n", 640);
  const Matrix a = random_symmetric(nm, rng);
  for (const bool vectors : {false, true}) {
    for (auto method :
         {TridiagMethod::kDirect, TridiagMethod::kTwoStageClassic,
          TridiagMethod::kTwoStageDbbr}) {
      eig::EvdOptions opts;
      opts.vectors = vectors;
      opts.tridiag.method = method;
      opts.tridiag.b = 32;
      opts.tridiag.k = 256;
      opts.profile = true;
      WallTimer t;
      const eig::EvdResult r = eig::eigh(a.view(), opts);
      const char* name = method == TridiagMethod::kDirect ? "direct "
                         : method == TridiagMethod::kTwoStageClassic
                             ? "classic"
                             : "dbbr   ";
      const char* method_id = method == TridiagMethod::kDirect ? "direct"
                              : method == TridiagMethod::kTwoStageClassic
                                  ? "classic"
                                  : "dbbr";
      std::printf("n=%lld %s %s: %.3f s\n", static_cast<long long>(nm), name,
                  vectors ? "vec " : "eval", t.seconds());
      benchutil::JsonLine line("fig16_evd_measured");
      line.field("n", nm)
          .field("method", method_id)
          .field("vectors", vectors)
          .field("seconds", t.seconds());
      // Per-phase measured-vs-model breakdown from the EvdProfile.
      for (const eig::PhaseProfile& ph : r.profile.phases) {
        line.field(ph.name + "_seconds", ph.seconds)
            .field(ph.name + "_model_seconds", ph.model_seconds)
            .field(ph.name + "_gflops", ph.gflops);
      }
      line.emit();
    }
  }
  return 0;
}
