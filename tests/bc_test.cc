// Tests for stage 2: bulge chasing (sequential and pipelined parallel).

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "bc/bulge_chase.h"
#include "bc/bulge_chase_parallel.h"
#include "common/rng.h"
#include "la/blas.h"
#include "la/generate.h"
#include "lapack/lapack.h"

namespace tdg {
namespace {

// Reference eigenvalues via direct tridiagonalization of the dense matrix +
// comparison of the characteristic data is overkill; instead compare the
// tridiagonal results through similarity invariants (trace, Frobenius norm)
// and through full reconstruction with the logged Q2.

std::vector<double> sorted_copy(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v;
}

double trace_of(ConstMatrixView a) {
  double t = 0.0;
  for (index_t i = 0; i < a.rows; ++i) t += a(i, i);
  return t;
}

class ChaseDenseTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ChaseDenseTest, ReducesToTridiagonalPreservingSimilarity) {
  const auto [n, b] = GetParam();
  Rng rng(100 + n * 3 + b);
  const Matrix a0 = random_symmetric_band(n, b, rng);
  Matrix a = a0;

  bc::ChaseLog log;
  bc::chase_dense(a.view(), b, &log);

  // Tridiagonal: nothing below the first sub-diagonal.
  EXPECT_LT(off_band_max(a.view(), 1), 1e-11 * n);

  // Reconstruction: A0 = Q2 T Q2^T.
  std::vector<double> d, e;
  bc::extract_tridiag(a.view(), d, e);
  Matrix t(n, n);
  for (index_t i = 0; i < n; ++i) {
    t(i, i) = d[static_cast<size_t>(i)];
    if (i + 1 < n) {
      t(i + 1, i) = e[static_cast<size_t>(i)];
      t(i, i + 1) = e[static_cast<size_t>(i)];
    }
  }
  Matrix qt = t;
  bc::apply_q2_left(log, qt.view());        // Q2 T
  Matrix qtq = transposed(qt.view());       // T Q2^T
  bc::apply_q2_left(log, qtq.view());       // Q2 T Q2^T
  EXPECT_LT(max_abs_diff(qtq.view(), a0.view()), 1e-10 * n);

  // Q2 orthogonal.
  Matrix q = Matrix::identity(n);
  bc::apply_q2_left(log, q.view());
  EXPECT_LT(orthogonality_error(q.view()), 1e-11 * n);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, ChaseDenseTest,
    ::testing::Values(std::tuple{8, 2}, std::tuple{16, 4}, std::tuple{17, 4},
                      std::tuple{32, 8}, std::tuple{33, 5}, std::tuple{40, 3},
                      std::tuple{64, 16}, std::tuple{20, 19},
                      std::tuple{3, 2}, std::tuple{50, 7}));

class ChasePackedTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ChasePackedTest, MatchesDenseChaseBitwise) {
  const auto [n, b] = GetParam();
  Rng rng(300 + n * 5 + b);
  const Matrix a0 = random_symmetric_band(n, b, rng);

  Matrix adense = a0;
  bc::chase_dense(adense.view(), b, nullptr);

  SymBandMatrix band = extract_band(a0.view(), b, std::min<index_t>(2 * b, n - 1));
  bc::chase_packed(band, b, nullptr);

  // The packed chase runs the identical arithmetic on the packed layout, so
  // the tridiagonal output matches the dense chase exactly.
  std::vector<double> d1, e1, d2, e2;
  bc::extract_tridiag(adense.view(), d1, e1);
  bc::extract_tridiag(band, d2, e2);
  for (index_t i = 0; i < n; ++i)
    EXPECT_EQ(d1[static_cast<size_t>(i)], d2[static_cast<size_t>(i)]) << i;
  for (index_t i = 0; i + 1 < n; ++i)
    EXPECT_EQ(e1[static_cast<size_t>(i)], e2[static_cast<size_t>(i)]) << i;
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, ChasePackedTest,
    ::testing::Values(std::tuple{12, 3}, std::tuple{16, 4}, std::tuple{31, 4},
                      std::tuple{48, 8}, std::tuple{33, 2},
                      std::tuple{64, 12}));

class ChaseParallelTest
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(ChaseParallelTest, BitwiseEqualToSequential) {
  const auto [n, b, threads, cap] = GetParam();
  Rng rng(700 + n + b + threads);
  const Matrix a0 = random_symmetric_band(n, b, rng);
  const index_t kd = std::min<index_t>(2 * b, n - 1);

  SymBandMatrix seq = extract_band(a0.view(), b, kd);
  bc::ChaseLog seqlog;
  bc::chase_packed(seq, b, &seqlog);

  SymBandMatrix par = extract_band(a0.view(), b, kd);
  bc::ParallelChaseOptions opts;
  opts.threads = threads;
  opts.max_parallel_sweeps = cap;
  bc::ChaseLog parlog;
  bc::chase_packed_parallel(par, b, opts, &parlog);

  // The dependency protocol linearises all conflicting block steps into the
  // sequential order, so the result must be bitwise identical.
  std::vector<double> d1, e1, d2, e2;
  bc::extract_tridiag(seq, d1, e1);
  bc::extract_tridiag(par, d2, e2);
  for (index_t i = 0; i < n; ++i)
    EXPECT_EQ(d1[static_cast<size_t>(i)], d2[static_cast<size_t>(i)]) << i;
  for (index_t i = 0; i + 1 < n; ++i)
    EXPECT_EQ(e1[static_cast<size_t>(i)], e2[static_cast<size_t>(i)]) << i;

  // Reflector logs identical too (same reflectors, same order).
  ASSERT_EQ(seqlog.sweeps.size(), parlog.sweeps.size());
  for (std::size_t s = 0; s < seqlog.sweeps.size(); ++s) {
    ASSERT_EQ(seqlog.sweeps[s].steps.size(), parlog.sweeps[s].steps.size());
    EXPECT_EQ(seqlog.sweeps[s].vpool, parlog.sweeps[s].vpool);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ChaseParallelTest,
    ::testing::Values(std::tuple{32, 4, 2, 0}, std::tuple{32, 4, 4, 0},
                      std::tuple{48, 8, 3, 0}, std::tuple{48, 8, 8, 2},
                      std::tuple{64, 4, 4, 4}, std::tuple{33, 2, 5, 0},
                      std::tuple{96, 8, 6, 3}, std::tuple{40, 16, 4, 0}));

TEST(ChaseParallel, DenseLayoutAlsoMatchesSequential) {
  Rng rng(900);
  const index_t n = 40, b = 4;
  const Matrix a0 = random_symmetric_band(n, b, rng);

  Matrix seq = a0;
  bc::chase_dense(seq.view(), b, nullptr);

  Matrix par = a0;
  bc::ParallelChaseOptions opts;
  opts.threads = 4;
  bc::chase_dense_parallel(par.view(), b, opts, nullptr);

  std::vector<double> d1, e1, d2, e2;
  bc::extract_tridiag(seq.view(), d1, e1);
  bc::extract_tridiag(par.view(), d2, e2);
  EXPECT_EQ(d1, d2);
  EXPECT_EQ(e1, e2);
}

TEST(Chase, PreservesTraceAndFrobenius) {
  Rng rng(1000);
  const index_t n = 50, b = 6;
  const Matrix a0 = random_symmetric_band(n, b, rng);
  Matrix a = a0;
  bc::chase_dense(a.view(), b, nullptr);

  std::vector<double> d, e;
  bc::extract_tridiag(a.view(), d, e);
  double tr = 0.0, fro = 0.0;
  for (index_t i = 0; i < n; ++i) {
    tr += d[static_cast<size_t>(i)];
    fro += d[static_cast<size_t>(i)] * d[static_cast<size_t>(i)];
  }
  for (index_t i = 0; i + 1 < n; ++i)
    fro += 2.0 * e[static_cast<size_t>(i)] * e[static_cast<size_t>(i)];
  EXPECT_NEAR(tr, trace_of(a0.view()), 1e-10 * n);
  EXPECT_NEAR(std::sqrt(fro), frobenius_norm(a0.view()), 1e-10 * n);
}

TEST(Chase, BandwidthOneIsNoop) {
  Rng rng(1100);
  const index_t n = 10;
  const Matrix a0 = random_symmetric_band(n, 1, rng);
  Matrix a = a0;
  bc::ChaseLog log;
  bc::chase_dense(a.view(), 1, &log);
  EXPECT_LT(max_abs_diff(a.view(), a0.view()), 1e-16);
  // Q2 is the identity.
  Matrix q = Matrix::identity(n);
  bc::apply_q2_left(log, q.view());
  EXPECT_LT(orthogonality_error(q.view()), 1e-16);
}

TEST(Chase, PackedRequiresBulgeRoom) {
  SymBandMatrix band(16, 4);  // kd = 4 < 2b = 8
  EXPECT_THROW(bc::chase_packed(band, 4, nullptr), Error);
}

TEST(Chase, FullBandwidthEqualsDirectTridiagonalization) {
  // b = n-1 makes the band matrix dense; bulge chasing must still reduce it
  // and agree with sytd2 on the spectrum-defining invariants.
  Rng rng(1200);
  const index_t n = 12;
  const Matrix a0 = random_symmetric(n, rng);

  Matrix a = a0;
  bc::chase_dense(a.view(), n - 1, nullptr);
  EXPECT_LT(off_band_max(a.view(), 1), 1e-12 * n);

  std::vector<double> d, e;
  bc::extract_tridiag(a.view(), d, e);
  double tr = 0.0;
  for (double x : d) tr += x;
  EXPECT_NEAR(tr, trace_of(a0.view()), 1e-11 * n);
}

TEST(Chase, SortedDiagonalInvariantUnderLayouts) {
  // Sanity property sweep: both layouts and several (n, b) combos keep the
  // multiset of diagonal entries' sum-of-squares consistent.
  for (index_t n : {10, 23, 36}) {
    for (index_t b : {2, 3, 5}) {
      Rng rng(static_cast<uint64_t>(n * 100 + b));
      const Matrix a0 = random_symmetric_band(n, b, rng);
      Matrix a = a0;
      bc::chase_dense(a.view(), b, nullptr);
      std::vector<double> d, e;
      bc::extract_tridiag(a.view(), d, e);
      EXPECT_EQ(sorted_copy(d).size(), static_cast<size_t>(n));
    }
  }
}

}  // namespace
}  // namespace tdg
