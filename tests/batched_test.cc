// Tests for the batched small-matrix EVD driver (src/eig/batched.h):
// bitwise equivalence with standalone eigh under a shared bucket plan,
// heterogeneous-size load balancing through the work-stealing queue,
// per-problem fault isolation, plan-per-bucket accounting via the obs
// counters, and the consolidated plan::Knobs options plumbing (including
// the deprecated loose-field aliases and the pre-resolved-plan overloads
// of eigh / eigh_range).
//
// gtest_discover_tests runs each case in its own process, so reading the
// always-on batch.* counters by delta within one case is race-free.

#include <gtest/gtest.h>

#include <tdg/eig.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/rng.h"
#include "la/blas.h"
#include "la/generate.h"
#include "obs/metrics.h"
#include "plan/plan_cache.h"

namespace tdg {
namespace {

// plan_source = tier name plus schedule suffixes ("measured+la1" where the
// plan enables look-ahead) — compare the base tier.
std::string base_source(const std::string& source) {
  return source.substr(0, source.find('+'));
}

double evd_residual(ConstMatrixView a, ConstMatrixView v,
                    const std::vector<double>& w) {
  Matrix av(a.rows, v.cols);
  la::gemm(Trans::kNo, Trans::kNo, 1.0, a, v, 0.0, av.view());
  double m = 0.0;
  for (index_t j = 0; j < v.cols; ++j) {
    for (index_t i = 0; i < v.rows; ++i) {
      m = std::max(m, std::abs(av(i, j) - v(i, j) * w[static_cast<size_t>(j)]));
    }
  }
  return m;
}

std::vector<Matrix> make_problems(const std::vector<index_t>& sizes,
                                  std::uint64_t seed) {
  std::vector<Matrix> mats;
  mats.reserve(sizes.size());
  Rng rng(seed);
  for (const index_t n : sizes) mats.push_back(random_symmetric(n, rng));
  return mats;
}

std::vector<ConstMatrixView> views_of(const std::vector<Matrix>& mats) {
  std::vector<ConstMatrixView> v;
  v.reserve(mats.size());
  for (const Matrix& m : mats) v.push_back(m.view());
  return v;
}

/// Bitwise comparison of a batch slot against a standalone eigh() run with
/// the identical per-problem options and the identical bucket plan.
void expect_bitwise_equal(const eig::EvdResult& batch,
                          const eig::EvdResult& solo) {
  ASSERT_EQ(batch.eigenvalues.size(), solo.eigenvalues.size());
  for (size_t i = 0; i < solo.eigenvalues.size(); ++i) {
    EXPECT_EQ(batch.eigenvalues[i], solo.eigenvalues[i]) << "eigenvalue " << i;
  }
  ASSERT_EQ(batch.eigenvectors.rows(), solo.eigenvectors.rows());
  ASSERT_EQ(batch.eigenvectors.cols(), solo.eigenvectors.cols());
  const index_t n = solo.eigenvectors.rows();
  for (index_t j = 0; j < solo.eigenvectors.cols(); ++j) {
    for (index_t i = 0; i < n; ++i) {
      ASSERT_EQ(batch.eigenvectors(i, j), solo.eigenvectors(i, j))
          << "eigenvector entry (" << i << ", " << j << ")";
    }
  }
}

/// The standalone options that reproduce a batch slot: intra-problem thread
/// budgets of 1, everything else as the batch configures it.
eig::EvdOptions solo_options(const eig::BatchOptions& bopts) {
  eig::EvdOptions o;
  o.vectors = bopts.vectors;
  o.solver = bopts.solver;
  o.tridiag = bopts.tridiag;
  o.tridiag.threads = 1;
  o.tridiag.bc_threads = 1;
  o.knobs = bopts.knobs;
  o.check_finite = bopts.check_finite;
  o.solver_fallback = bopts.solver_fallback;
  return o;
}

// ---------------------------------------------------------------------------
// Bitwise equivalence with standalone eigh.

TEST(Batched, BitwiseMatchesStandaloneEigh) {
  const std::vector<index_t> sizes{64, 96, 128, 200, 256, 64, 96, 128};
  const std::vector<Matrix> mats = make_problems(sizes, 7001);
  const std::vector<ConstMatrixView> views = views_of(mats);

  eig::BatchOptions bopts;
  bopts.threads = 4;
  const eig::BatchResult batch = eig::eigh_batched(views, bopts);

  ASSERT_TRUE(batch.all_ok());
  ASSERT_EQ(batch.problems, static_cast<index_t>(sizes.size()));
  const eig::EvdOptions sopts = solo_options(bopts);
  for (size_t i = 0; i < sizes.size(); ++i) {
    const plan::Plan p = eig::batch_bucket_plan(sizes[i], bopts);
    const eig::EvdResult solo = eig::eigh(views[i], sopts, p);
    expect_bitwise_equal(batch.results[i], solo);
  }
}

TEST(Batched, ResultsAreCorrectDecompositions) {
  const std::vector<index_t> sizes{40, 64, 100, 128, 160, 250};
  const std::vector<Matrix> mats = make_problems(sizes, 7002);
  eig::BatchOptions bopts;
  bopts.threads = 3;
  const eig::BatchResult batch = eig::eigh_batched(views_of(mats), bopts);

  ASSERT_TRUE(batch.all_ok());
  for (size_t i = 0; i < sizes.size(); ++i) {
    const eig::EvdResult& r = batch.results[i];
    ASSERT_EQ(r.eigenvalues.size(), static_cast<size_t>(sizes[i]));
    EXPECT_LT(evd_residual(mats[i].view(), r.eigenvectors.view(),
                           r.eigenvalues),
              1e-10 * static_cast<double>(sizes[i]));
    EXPECT_LT(orthogonality_error(r.eigenvectors.view()), 1e-11 * sizes[i]);
  }
}

TEST(Batched, ValuesOnlyAndEmptyAndDegenerate) {
  // vectors = false, a 1x1 problem, and an empty batch all behave.
  std::vector<Matrix> mats = make_problems({1, 48, 2}, 7003);
  eig::BatchOptions bopts;
  bopts.vectors = false;
  const eig::BatchResult batch = eig::eigh_batched(views_of(mats), bopts);
  ASSERT_TRUE(batch.all_ok());
  EXPECT_EQ(batch.results[0].eigenvalues.size(), 1u);
  EXPECT_EQ(batch.results[1].eigenvalues.size(), 48u);
  EXPECT_EQ(batch.results[2].eigenvalues.size(), 2u);
  EXPECT_EQ(batch.results[1].eigenvectors.rows(), 0);

  const eig::BatchResult empty = eig::eigh_batched({}, bopts);
  EXPECT_EQ(empty.problems, 0);
  EXPECT_TRUE(empty.all_ok());
}

// ---------------------------------------------------------------------------
// Load balance over heterogeneous sizes.

TEST(Batched, HeterogeneousSizesAllComplete) {
  // A few big problems plus a long tail of small ones: the descending-size
  // deal plus stealing must finish everything regardless of worker count.
  std::vector<index_t> sizes{256, 240, 224};
  for (int i = 0; i < 21; ++i) sizes.push_back(32 + 8 * (i % 5));
  const std::vector<Matrix> mats = make_problems(sizes, 7004);

  for (const int workers : {1, 2, 5, 8}) {
    eig::BatchOptions bopts;
    bopts.threads = workers;
    const eig::BatchResult batch = eig::eigh_batched(views_of(mats), bopts);
    ASSERT_TRUE(batch.all_ok()) << "workers=" << workers;
    EXPECT_EQ(batch.workers, workers);
    EXPECT_EQ(batch.problems, static_cast<index_t>(sizes.size()));
    for (size_t i = 0; i < sizes.size(); ++i) {
      EXPECT_LT(evd_residual(mats[i].view(),
                             batch.results[i].eigenvectors.view(),
                             batch.results[i].eigenvalues),
                1e-10 * static_cast<double>(sizes[i]));
    }
  }
}

TEST(Batched, WorkerCountClampsToBatchSize) {
  const std::vector<Matrix> mats = make_problems({48, 64}, 7005);
  eig::BatchOptions bopts;
  bopts.threads = 16;  // only 2 problems: no point in 16 workers
  const eig::BatchResult batch = eig::eigh_batched(views_of(mats), bopts);
  EXPECT_EQ(batch.workers, 2);
  EXPECT_TRUE(batch.all_ok());
}

// ---------------------------------------------------------------------------
// Plan-per-bucket accounting (batch.* obs counters; always-on gating).

TEST(Batched, OnePlanPerShapeBucket) {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter* resolved =
      reg.counter("batch.plans_resolved", obs::Gating::kAlways);
  obs::Counter* hits =
      reg.counter("batch.bucket_plan_hits", obs::Gating::kAlways);
  obs::Counter* problems = reg.counter("batch.problems", obs::Gating::kAlways);
  const long long resolved0 = resolved->value();
  const long long hits0 = hits->value();
  const long long problems0 = problems->value();

  // 12 problems, 3 pow2 buckets: {33..64} -> 64, {65..128} -> 128,
  // {129..256} -> 256.
  const std::vector<index_t> sizes{40, 48, 64, 80, 96, 128, 130,
                                   160, 200, 256, 33, 65};
  const std::vector<Matrix> mats = make_problems(sizes, 7006);
  eig::BatchOptions bopts;
  bopts.threads = 4;
  const eig::BatchResult batch = eig::eigh_batched(views_of(mats), bopts);

  ASSERT_TRUE(batch.all_ok());
  EXPECT_EQ(batch.plans_resolved, 3);
  EXPECT_EQ(batch.bucket_plan_hits,
            static_cast<index_t>(sizes.size()) - 3);
  EXPECT_EQ(resolved->value() - resolved0, 3);
  EXPECT_EQ(hits->value() - hits0, static_cast<long long>(sizes.size()) - 3);
  EXPECT_EQ(problems->value() - problems0,
            static_cast<long long>(sizes.size()));

  // Same-bucket problems share one plan: their provenance strings agree.
  EXPECT_EQ(batch.results[0].plan_source, batch.results[1].plan_source);
}

TEST(Batched, MeasureModeConsultsPersistentCacheOncePerBucket) {
  // kMeasure: the empirical search runs once per bucket, not per problem.
  plan::PlanCache::global().clear();
  plan::PlanCache::global().reset_stats();
  obs::Counter* runs = obs::Registry::global().counter(
      "plan.measure_runs", obs::Gating::kAlways);
  const long long runs0 = runs->value();

  const std::vector<index_t> sizes{48, 48, 48, 48, 48, 48};
  const std::vector<Matrix> mats = make_problems(sizes, 7007);
  eig::BatchOptions bopts;
  bopts.plan = PlanMode::kMeasure;
  bopts.threads = 2;
  const eig::BatchResult batch = eig::eigh_batched(views_of(mats), bopts);

  ASSERT_TRUE(batch.all_ok());
  EXPECT_EQ(batch.plans_resolved, 1);
  EXPECT_EQ(runs->value() - runs0, 1);
  for (const eig::EvdResult& r : batch.results) {
    EXPECT_EQ(base_source(r.plan_source), "measured");
  }
}

// ---------------------------------------------------------------------------
// Fault isolation: one poisoned problem, the rest of the batch intact.

TEST(Batched, InjectedFaultFailsOneSlotOnly) {
  const std::vector<index_t> sizes{64, 64, 64, 64, 64, 64};
  const std::vector<Matrix> mats = make_problems(sizes, 7008);

  // One worker makes the claim order deterministic (the dealt order), so
  // the first problem started is slot 0 (all sizes equal -> stable sort
  // keeps input order) and the armed site fires exactly there.
  eig::BatchOptions bopts;
  bopts.threads = 1;
  fault::Scoped armed("batch_problem", /*trigger=*/1, /*fires=*/1);
  const eig::BatchResult batch = eig::eigh_batched(views_of(mats), bopts);

  EXPECT_EQ(batch.failed, 1);
  EXPECT_FALSE(batch.status[0].ok);
  EXPECT_EQ(batch.status[0].code, ErrorCode::kFaultInjected);
  EXPECT_TRUE(batch.results[0].eigenvalues.empty());
  for (size_t i = 1; i < sizes.size(); ++i) {
    ASSERT_TRUE(batch.status[i].ok) << "slot " << i;
    EXPECT_LT(evd_residual(mats[i].view(),
                           batch.results[i].eigenvectors.view(),
                           batch.results[i].eigenvalues),
              1e-10 * 64.0);
  }
}

TEST(Batched, BadInputFailsItsSlotOnly) {
  std::vector<Matrix> mats = make_problems({48, 48, 48}, 7009);
  mats[1](10, 3) = std::nan("");
  mats[1](3, 10) = std::nan("");
  eig::BatchOptions bopts;
  bopts.threads = 2;
  obs::Counter* failures =
      obs::Registry::global().counter("batch.failures", obs::Gating::kAlways);
  const long long failures0 = failures->value();
  const eig::BatchResult batch = eig::eigh_batched(views_of(mats), bopts);

  EXPECT_EQ(batch.failed, 1);
  EXPECT_TRUE(batch.status[0].ok);
  EXPECT_FALSE(batch.status[1].ok);
  EXPECT_EQ(batch.status[1].code, ErrorCode::kInvalidInput);
  EXPECT_TRUE(batch.status[2].ok);
  EXPECT_EQ(failures->value() - failures0, 1);
}

TEST(Batched, SolverFaultRecoversInsideItsSlot) {
  // A forced steqr non-convergence inside one problem takes the in-problem
  // fallback chain; the slot still succeeds and the recovery is counted.
  const std::vector<index_t> sizes{48, 48, 48, 48};
  const std::vector<Matrix> mats = make_problems(sizes, 7010);
  eig::BatchOptions bopts;
  bopts.threads = 1;
  bopts.solver = eig::TridiagSolver::kImplicitQl;
  fault::Scoped armed("steqr_noconv", /*trigger=*/1, /*fires=*/1);
  const eig::BatchResult batch = eig::eigh_batched(views_of(mats), bopts);

  ASSERT_TRUE(batch.all_ok());
  EXPECT_EQ(batch.recovered, 1);
  index_t with_recovery = 0;
  for (const eig::EvdResult& r : batch.results) {
    if (!r.recovery.empty()) ++with_recovery;
  }
  EXPECT_EQ(with_recovery, 1);
  for (size_t i = 0; i < sizes.size(); ++i) {
    EXPECT_LT(evd_residual(mats[i].view(),
                           batch.results[i].eigenvectors.view(),
                           batch.results[i].eigenvalues),
              1e-9 * 48.0);
  }
}

// ---------------------------------------------------------------------------
// Consolidated knob plumbing (plan::Knobs layering + eig::validate).

TEST(Knobs, KnobLayersMergeWithOptionsPrecedence) {
  const index_t n = 96;
  Rng rng(7011);
  const Matrix a = random_symmetric(n, rng);

  // The same configuration spelled at the options level and at the
  // tridiag-options level (lowest precedence) resolves identically.
  eig::EvdOptions atopts;
  atopts.knobs.smlsiz = 16;
  atopts.knobs.bt_kw = 64;
  atopts.knobs.q2_group = 32;
  eig::EvdOptions viatri;
  viatri.tridiag.knobs.smlsiz = 16;
  viatri.tridiag.knobs.bt_kw = 64;
  viatri.tridiag.knobs.q2_group = 32;
  expect_bitwise_equal(eig::eigh(a.view(), viatri),
                       eig::eigh(a.view(), atopts));

  // merged_knobs: the options-level sub-struct wins field-wise over the
  // knobs riding on TridiagOptions.
  eig::EvdOptions both = viatri;
  both.knobs.smlsiz = 24;
  const plan::Knobs merged = eig::merged_knobs(both);
  EXPECT_EQ(merged.smlsiz, 24);
  EXPECT_EQ(merged.bt_kw, 64);
  EXPECT_EQ(merged.q2_group, 32);
}

TEST(Knobs, ValidateResolvesOptionsWithoutRunning) {
  // validate() canonicalizes the mode/vectors axis and folds the knob
  // layers into one vector — the same resolution eigh() performs at entry.
  eig::EvdOptions o;
  o.mode = plan::EvdMode::kValuesOnly;
  o.knobs.smlsiz = 24;
  o.tridiag.knobs.bt_kw = 64;
  const eig::EvdOptions v = eig::validate(o);
  EXPECT_FALSE(v.vectors);
  EXPECT_EQ(v.mode, plan::EvdMode::kValuesOnly);
  EXPECT_EQ(v.knobs.smlsiz, 24);
  EXPECT_EQ(v.knobs.bt_kw, 64);   // lifted from tridiag.knobs
  EXPECT_EQ(v.tridiag.knobs.bt_kw, 0);  // ... which is now empty

  // The legacy vectors flag maps onto the mode axis and vice versa.
  eig::EvdOptions legacy;
  legacy.vectors = false;
  EXPECT_EQ(eig::validate(legacy).mode, plan::EvdMode::kValuesOnly);
  eig::EvdOptions mixed_vo;
  mixed_vo.mode = plan::EvdMode::kMixedPrecision;
  mixed_vo.vectors = false;
  EXPECT_EQ(eig::validate(mixed_vo).mode, plan::EvdMode::kValuesOnly);

  // Validation is idempotent and rejects negative knobs without running.
  const eig::EvdOptions vv = eig::validate(v);
  EXPECT_EQ(vv.mode, v.mode);
  EXPECT_EQ(vv.vectors, v.vectors);
  EXPECT_EQ(vv.knobs.smlsiz, v.knobs.smlsiz);
  EXPECT_EQ(vv.knobs.bt_kw, v.knobs.bt_kw);
  eig::EvdOptions bad;
  bad.knobs.q2_group = -1;
  EXPECT_THROW(eig::validate(bad), Error);
  eig::EvdOptions badref;
  badref.knobs.refine.tol = -1.0;
  EXPECT_THROW(eig::validate(badref), Error);
}

// ---------------------------------------------------------------------------
// Pre-resolved plan overloads (eigh / eigh_range).

TEST(PlanOverloads, EighRangeWithSharedPlanMatchesPerCallPlanning) {
  const index_t n = 128;
  Rng rng(7013);
  const Matrix a = random_symmetric(n, rng);
  eig::EvdOptions opts;
  opts.tridiag.threads = 1;

  // The per-call planner path and the pre-resolved path resolve the same
  // shape to the same plan, so the results must agree bitwise.
  const plan::ProblemShape shape{n, true, 8};
  plan::PlannerOptions popts;
  popts.threads = 1;
  const plan::Plan p = plan::plan_for(shape, opts.plan, popts);
  const eig::EvdResult via_planner = eig::eigh_range(a.view(), 0, 7, opts);
  const eig::EvdResult via_plan = eig::eigh_range(a.view(), 0, 7, opts, p);
  ASSERT_EQ(via_planner.eigenvalues.size(), 8u);
  expect_bitwise_equal(via_planner, via_plan);
}

TEST(PlanOverloads, PreResolvedPlanSkipsPlannerProvenance) {
  const index_t n = 64;
  Rng rng(7014);
  const Matrix a = random_symmetric(n, rng);
  plan::Plan p = plan::heuristic_plan({n, true, 0}, /*threads=*/1);
  p.source = plan::PlanSource::kCache;  // pretend it came from the cache
  eig::EvdOptions opts;
  opts.tridiag.threads = 1;
  const eig::EvdResult res = eig::eigh(a.view(), opts, p);
  // The result records the supplied plan's provenance, proving no fresh
  // planner pass overwrote it.
  EXPECT_EQ(base_source(res.plan_source), "cache");
  EXPECT_LT(evd_residual(a.view(), res.eigenvectors.view(), res.eigenvalues),
            1e-10 * static_cast<double>(n));
}

}  // namespace
}  // namespace tdg
