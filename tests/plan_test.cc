// Tests for the autotuning planner (src/plan): heuristic properties,
// knob validation/clamping, plan-cache persistence (round-trip, merge,
// corrupted-file recovery), fingerprint stability, and the end-to-end
// guarantee that a heuristically-planned eigh matches the same plan applied
// manually, bit for bit.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/file.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include <gtest/gtest.h>

#include "common/rng.h"
#include "eig/drivers.h"
#include "la/generate.h"
#include "plan/fingerprint.h"
#include "plan/plan.h"
#include "plan/plan_cache.h"

namespace tdg {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

plan::Plan sample_plan(double seconds) {
  plan::Plan p;
  p.method = TridiagMethod::kTwoStageDbbr;
  p.b = 16;
  p.k = 512;
  p.sytrd_nb = 48;
  p.max_parallel_sweeps = 6;
  p.threads = 8;
  p.bc_threads = 5;
  p.bt_kw = 128;
  p.q2_group = 32;
  p.smlsiz = 24;
  p.source = plan::PlanSource::kMeasured;
  p.measured_seconds = seconds;
  return p;
}

// plan_source is the tier name plus schedule suffixes ("heuristic+la1" on
// machines where the heuristic enables look-ahead) — compare the base tier.
std::string base_source(const std::string& source) {
  return source.substr(0, source.find('+'));
}

void expect_same_knobs(const plan::Plan& a, const plan::Plan& b) {
  EXPECT_EQ(a.method, b.method);
  EXPECT_EQ(a.b, b.b);
  EXPECT_EQ(a.k, b.k);
  EXPECT_EQ(a.sytrd_nb, b.sytrd_nb);
  EXPECT_EQ(a.max_parallel_sweeps, b.max_parallel_sweeps);
  EXPECT_EQ(a.threads, b.threads);
  EXPECT_EQ(a.bc_threads, b.bc_threads);
  EXPECT_EQ(a.bt_kw, b.bt_kw);
  EXPECT_EQ(a.q2_group, b.q2_group);
  EXPECT_EQ(a.smlsiz, b.smlsiz);
}

TEST(Fingerprint, StableAndSanitized) {
  const std::string& f1 = plan::machine_fingerprint();
  const std::string& f2 = plan::machine_fingerprint();
  EXPECT_EQ(f1, f2);
  EXPECT_NE(f1.find("cores="), std::string::npos);
  EXPECT_NE(f1.find("mode="), std::string::npos);
  for (char c : f1) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '=' || c == '-' || c == ';';
    EXPECT_TRUE(ok) << "bad fingerprint char: " << c;
  }
}

TEST(CacheKey, BucketsShapes) {
  const std::string a = plan::cache_key({1000, true, 0});
  const std::string b = plan::cache_key({1024, true, 0});
  const std::string c = plan::cache_key({1025, true, 0});
  EXPECT_EQ(a, b);  // same power-of-two bucket
  EXPECT_NE(b, c);
  EXPECT_NE(plan::cache_key({1024, true, 0}), plan::cache_key({1024, false, 0}));
  EXPECT_NE(plan::cache_key({1024, true, 0}), plan::cache_key({1024, true, 10}));
}

TEST(Heuristic, MatchesPaperOperatingPointAtScale) {
  for (index_t n : {4096, 16384}) {
    const plan::Plan p = plan::heuristic_plan({n, true, 0}, 8);
    EXPECT_EQ(p.method, TridiagMethod::kTwoStageDbbr);
    EXPECT_EQ(p.b, 32);
    EXPECT_EQ(p.k, 1024);  // the paper's published operating point
    EXPECT_EQ(p.source, plan::PlanSource::kHeuristic);
  }
}

TEST(Heuristic, KnobsLegalAcrossSizes) {
  for (index_t n : {2, 3, 5, 17, 40, 64, 100, 333, 1000}) {
    const plan::Plan p = plan::heuristic_plan({n, true, 0}, 4);
    EXPECT_GE(p.b, 1) << n;
    EXPECT_LE(p.b, std::max<index_t>(1, n - 1)) << n;
    EXPECT_EQ(p.k % p.b, 0) << n;
    EXPECT_GE(p.sytrd_nb, 1) << n;
    EXPECT_GE(p.smlsiz, 2) << n;
    EXPECT_GE(p.bc_threads, 1) << n;
    EXPECT_GE(p.max_parallel_sweeps, 1) << n;
  }
}

TEST(Heuristic, SweepsMonotonicInThreads) {
  // The pipeline cap S must never shrink when more workers are available.
  for (index_t n : {128, 512, 2048}) {
    index_t prev = 0;
    for (int t = 1; t <= 16; ++t) {
      const index_t s =
          plan::heuristic_plan({n, true, 0}, t).max_parallel_sweeps;
      EXPECT_GE(s, prev) << "n=" << n << " t=" << t;
      prev = s;
    }
  }
}

TEST(Validation, ClampsDegenerateKnobs) {
  TridiagOptions o;
  o.b = 100;  // > n - 1
  o.k = 1000;
  o.sytrd_nb = 99;
  const TridiagOptions v = plan::validated(o, 6);
  EXPECT_EQ(v.b, 5);
  EXPECT_EQ(v.k % v.b, 0);
  EXPECT_LE(v.k, 10);  // ceil(6/5)*5
  EXPECT_LE(v.sytrd_nb, 6);

  // n <= b degenerates to the largest legal band.
  const TridiagOptions w = plan::validated(o, 2);
  EXPECT_EQ(w.b, 1);
  EXPECT_EQ(w.k, 2);
}

TEST(Validation, RoundsKToMultipleOfB) {
  TridiagOptions o;
  o.b = 8;
  o.k = 100;  // not a multiple of 8
  const TridiagOptions v = plan::validated(o, 200);
  EXPECT_EQ(v.k, 96);
}

TEST(Validation, RejectsNegativeKnobs) {
  TridiagOptions o;
  o.b = -1;
  EXPECT_THROW(plan::validated(o, 10), Error);
  o.b = 4;
  o.max_parallel_sweeps = -2;
  EXPECT_THROW(plan::validated(o, 10), Error);
  ApplyQOptions q;
  q.knobs.bt_kw = -5;
  EXPECT_THROW(plan::validated(q, 10), Error);
}

TEST(Validation, FillsApplyQDefaults) {
  ApplyQOptions q;  // all knobs auto
  const ApplyQOptions v = plan::validated(q, 1000);
  EXPECT_GE(v.knobs.bt_kw, 1);
  EXPECT_GE(v.knobs.q2_group, 1);
}

TEST(PlanCache, RoundTripThroughFile) {
  const std::string path = temp_path("plan_cache_roundtrip.json");
  std::remove(path.c_str());

  plan::PlanCache writer;
  const plan::Plan p = sample_plan(0.25);
  writer.insert("keyA", p);
  ASSERT_TRUE(writer.save(path));

  plan::PlanCache reader;
  ASSERT_TRUE(reader.load(path));
  EXPECT_EQ(reader.size(), 1u);
  plan::Plan got;
  ASSERT_TRUE(reader.lookup("keyA", &got));
  expect_same_knobs(p, got);
  EXPECT_DOUBLE_EQ(got.measured_seconds, 0.25);
  EXPECT_EQ(got.source, plan::PlanSource::kCache);  // provenance on hit
  std::remove(path.c_str());
}

TEST(PlanCache, MergeKeepsBetterEntry) {
  const std::string path = temp_path("plan_cache_merge.json");
  std::remove(path.c_str());

  plan::PlanCache a;
  a.insert("shared", sample_plan(0.5));
  a.insert("only_a", sample_plan(1.0));
  ASSERT_TRUE(a.save(path));

  plan::PlanCache b;
  plan::Plan faster = sample_plan(0.1);
  faster.k = 256;
  b.insert("shared", faster);
  b.insert("only_b", sample_plan(2.0));
  ASSERT_TRUE(b.load(path));  // merge the file into b
  EXPECT_EQ(b.size(), 3u);

  plan::Plan got;
  ASSERT_TRUE(b.lookup("shared", &got));
  EXPECT_EQ(got.k, 256);  // the faster (smaller seconds) entry survived
  EXPECT_DOUBLE_EQ(got.measured_seconds, 0.1);

  // save() re-merges with the file: both exclusive keys survive on disk.
  ASSERT_TRUE(b.save(path));
  plan::PlanCache c;
  ASSERT_TRUE(c.load(path));
  EXPECT_EQ(c.size(), 3u);
  EXPECT_TRUE(c.lookup("only_a", &got));
  EXPECT_TRUE(c.lookup("only_b", &got));
  std::remove(path.c_str());
}

TEST(PlanCache, CorruptedFileRecovers) {
  const std::string path = temp_path("plan_cache_corrupt.json");
  {
    std::ofstream out(path);
    out << "{\"version\": 1, \"entries\": [ {\"key\": \"x\", garbage";
  }
  plan::PlanCache cache;
  EXPECT_FALSE(cache.load(path));
  EXPECT_EQ(cache.size(), 0u);

  // A save over the corrupted file replaces it with valid JSON.
  cache.insert("fresh", sample_plan(0.3));
  ASSERT_TRUE(cache.save(path));
  plan::PlanCache reader;
  ASSERT_TRUE(reader.load(path));
  EXPECT_EQ(reader.size(), 1u);
  std::remove(path.c_str());
}

TEST(PlanCache, MissingFileLoadFails) {
  plan::PlanCache cache;
  EXPECT_FALSE(cache.load(temp_path("does_not_exist.json")));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(MeasuredPlan, MeasuresOnceThenHitsCache) {
  const std::string path = temp_path("plan_cache_measured.json");
  std::remove(path.c_str());

  plan::ProblemShape shape{52, true, 0};
  plan::PlannerOptions popts;
  popts.cache_path = path;
  popts.proxy_n = 32;
  const plan::Plan first = plan::measured_plan(shape, popts);
  EXPECT_EQ(first.source, plan::PlanSource::kMeasured);
  EXPECT_GT(first.measured_seconds, 0.0);

  const plan::Plan second = plan::measured_plan(shape, popts);
  EXPECT_EQ(second.source, plan::PlanSource::kCache);
  expect_same_knobs(first, second);

  // The winner persisted: a fresh cache instance sees it through the file.
  plan::PlanCache fresh;
  ASSERT_TRUE(fresh.load(path));
  plan::Plan got;
  EXPECT_TRUE(fresh.lookup(plan::cache_key(shape), &got));
  std::remove(path.c_str());
}

TEST(MeasuredPlan, HonorsEnvCachePath) {
  const std::string path = temp_path("plan_cache_env.json");
  std::remove(path.c_str());
  ASSERT_EQ(setenv("TDG_PLAN_CACHE", path.c_str(), 1), 0);

  plan::ProblemShape shape{49, false, 0};  // distinct bucket from other tests
  plan::PlannerOptions popts;
  popts.proxy_n = 32;
  (void)plan::measured_plan(shape, popts);
  std::ifstream in(path);
  EXPECT_TRUE(in.good());  // cache file created at the env-var path

  unsetenv("TDG_PLAN_CACHE");
  std::remove(path.c_str());
}

TEST(PlanModes, HeuristicMatchesManualBitwise) {
  // eigh under kHeuristic must equal eigh under kManual with the same knob
  // vector spelled out explicitly — planning must not perturb numerics.
  const index_t n = 64;
  Rng rng(777);
  const Matrix a = random_symmetric(n, rng);

  eig::EvdOptions heur;
  heur.plan = PlanMode::kHeuristic;
  const eig::EvdResult r1 = eigh(a.view(), heur);
  EXPECT_EQ(base_source(r1.plan_source), "heuristic");

  const plan::Plan p = plan::heuristic_plan({n, true, 0});
  eig::EvdOptions manual;
  manual.plan = PlanMode::kManual;
  manual.tridiag.method = p.method;
  manual.tridiag.b = p.b;
  manual.tridiag.k = p.k;
  manual.tridiag.sytrd_nb = p.sytrd_nb;
  manual.tridiag.bc_threads = p.bc_threads;
  manual.tridiag.max_parallel_sweeps = p.max_parallel_sweeps;
  manual.knobs.smlsiz = p.smlsiz;
  manual.knobs.bt_kw = p.bt_kw;
  manual.knobs.q2_group = p.q2_group;
  const eig::EvdResult r2 = eigh(a.view(), manual);
  EXPECT_EQ(base_source(r2.plan_source), "defaults");

  ASSERT_EQ(r1.eigenvalues.size(), r2.eigenvalues.size());
  for (std::size_t i = 0; i < r1.eigenvalues.size(); ++i) {
    EXPECT_EQ(r1.eigenvalues[i], r2.eigenvalues[i]) << i;  // bitwise
  }
  ASSERT_EQ(r1.eigenvectors.cols(), r2.eigenvectors.cols());
  EXPECT_EQ(max_abs_diff(r1.eigenvectors.view(), r2.eigenvectors.view()), 0.0);
}

TEST(PlanModes, ManualModeReproducesLegacyDefaults) {
  // kManual with untouched knobs = the pre-planner hard-coded configuration.
  const index_t n = 48;
  Rng rng(11);
  const Matrix a = random_symmetric(n, rng);

  TridiagOptions manual;
  manual.plan = PlanMode::kManual;
  const TridiagResult r1 = tridiagonalize(a.view(), manual);
  EXPECT_EQ(r1.b, 32);   // legacy b = 32
  EXPECT_EQ(r1.k, 64);   // legacy k = 256, clamped to ceil(48/32)*32

  TridiagOptions legacy;
  legacy.plan = PlanMode::kManual;
  legacy.b = 32;
  legacy.k = 256;
  legacy.sytrd_nb = 64;
  legacy.bc_threads = 4;
  const TridiagResult r2 = tridiagonalize(a.view(), legacy);
  EXPECT_EQ(r1.d, r2.d);
  EXPECT_EQ(r1.e, r2.e);
}

TEST(PlanModes, DefaultKRoutesThroughPlanner) {
  // Satellite regression: the no-options path must take the planner's k
  // (the paper's operating point at scale), not the old hard-coded 256.
  const TridiagOptions probe;  // defaults: plan = kHeuristic, k = 0 (auto)
  EXPECT_EQ(probe.plan, PlanMode::kHeuristic);
  EXPECT_EQ(probe.k, 0);
  EXPECT_EQ(plan::heuristic_plan({8192, true, 0}).k, 1024);

  // And the resolved k really reaches the band reduction.
  const index_t n = 80;
  Rng rng(21);
  const Matrix a = random_symmetric(n, rng);
  const TridiagResult r = tridiagonalize(a.view(), probe);
  const plan::Plan p = plan::heuristic_plan({n, true, 0});
  const TridiagOptions resolved = plan::resolve(probe, n, p);
  EXPECT_EQ(r.b, resolved.b);
  EXPECT_EQ(r.k, resolved.k);
}

TEST(PlanModes, MeasureModeEndToEnd) {
  const index_t n = 44;
  Rng rng(33);
  const Matrix a = random_symmetric(n, rng);
  eig::EvdOptions opts;
  opts.plan = PlanMode::kMeasure;  // in-memory cache only (no env path)
  const eig::EvdResult r1 = eigh(a.view(), opts);
  EXPECT_TRUE(base_source(r1.plan_source) == "measured" ||
              base_source(r1.plan_source) == "cache");
  const eig::EvdResult r2 = eigh(a.view(), opts);
  // Second call must not re-measure.
  EXPECT_EQ(base_source(r2.plan_source), "cache");
  for (std::size_t i = 0; i < r1.eigenvalues.size(); ++i) {
    EXPECT_EQ(r1.eigenvalues[i], r2.eigenvalues[i]);
  }
}

// Exact merged-entry accounting: merged_entries counts disk entries adopted
// over (or absent from) memory, not a guess from size deltas.
TEST(PlanCacheContention, MergedEntriesCountsDiskAdoptionsExactly) {
  const std::string path = temp_path("plan_cache_merged_exact.json");
  std::remove(path.c_str());

  plan::PlanCache a;
  a.insert("bucket_a", sample_plan(0.5));
  ASSERT_TRUE(a.save(path));
  // First save: the file did not exist, nothing adopted from disk.
  EXPECT_EQ(a.stats().merged_entries, 0);

  // b's save re-merges with the file: bucket_a comes from disk (adopted),
  // bucket_b comes from memory (not counted).
  plan::PlanCache b;
  b.insert("bucket_b", sample_plan(0.5));
  ASSERT_TRUE(b.save(path));
  EXPECT_EQ(b.stats().merged_entries, 1);

  // A memory entry strictly better than the disk copy wins the re-merge:
  // the disk copy is NOT adopted.
  plan::PlanCache c;
  c.insert("bucket_a", sample_plan(0.1));  // better than disk's 0.5
  c.insert("bucket_c", sample_plan(0.5));
  ASSERT_TRUE(c.save(path));
  EXPECT_EQ(c.stats().merged_entries, 1);  // bucket_b only

  // load() also counts exactly: two disk entries improve on / are absent
  // from memory, one (bucket_a, worse on disk) does not.
  plan::PlanCache d;
  d.insert("bucket_a", sample_plan(0.05));
  ASSERT_TRUE(d.load(path));
  EXPECT_EQ(d.stats().merged_entries, 2);  // bucket_b + bucket_c
  std::remove(path.c_str());
  std::remove((path + ".lock").c_str());
}

#if defined(__unix__) || defined(__APPLE__)

// Cross-process contention: a child holding <path>.lock makes the parent's
// save() block, and the blocking wait is counted in lock_waits.
TEST(PlanCacheContention, LockWaitsCountsCrossProcessContention) {
  const std::string path = temp_path("plan_cache_lock_waits.json");
  const std::string lock_path = path + ".lock";
  std::remove(path.c_str());
  std::remove(lock_path.c_str());

  int ready_pipe[2];
  ASSERT_EQ(::pipe(ready_pipe), 0);
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: take the flock, signal readiness, hold it briefly, exit
    // (releasing the lock and unblocking the parent's save).
    ::close(ready_pipe[0]);
    const int fd = ::open(lock_path.c_str(), O_CREAT | O_RDWR, 0644);
    if (fd < 0 || ::flock(fd, LOCK_EX) != 0) _exit(2);
    char byte = 'r';
    if (::write(ready_pipe[1], &byte, 1) != 1) _exit(3);
    ::usleep(200 * 1000);
    _exit(0);
  }
  ::close(ready_pipe[1]);
  char byte = 0;
  ASSERT_EQ(::read(ready_pipe[0], &byte, 1), 1);  // child holds the lock
  ::close(ready_pipe[0]);

  plan::PlanCache cache;
  cache.insert("contended_key", sample_plan(0.5));
  ASSERT_TRUE(cache.save(path));  // blocks until the child exits
  EXPECT_EQ(cache.stats().lock_waits, 1);
  EXPECT_EQ(cache.stats().saves, 1);

  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_EQ(status, 0);

  // Uncontended saves do not count.
  ASSERT_TRUE(cache.save(path));
  EXPECT_EQ(cache.stats().lock_waits, 1);
  std::remove(path.c_str());
  std::remove(lock_path.c_str());
}

// Two processes saving distinct keys to one file concurrently: the
// flock + read-merge-rename protocol must lose neither.
TEST(PlanCacheContention, ConcurrentForkedSavesLoseNoUpdates) {
  const std::string path = temp_path("plan_cache_fork_merge.json");
  std::remove(path.c_str());
  std::remove((path + ".lock").c_str());

  constexpr int kChildren = 2;
  constexpr int kRounds = 5;
  pid_t pids[kChildren];
  for (int c = 0; c < kChildren; ++c) {
    pids[c] = ::fork();
    ASSERT_GE(pids[c], 0);
    if (pids[c] == 0) {
      for (int r = 0; r < kRounds; ++r) {
        plan::PlanCache mine;
        mine.insert("child_" + std::to_string(c) + "_round_" +
                        std::to_string(r),
                    sample_plan(0.5));
        if (!mine.save(path)) _exit(4);
      }
      _exit(0);
    }
  }
  for (int c = 0; c < kChildren; ++c) {
    int status = 0;
    ASSERT_EQ(::waitpid(pids[c], &status, 0), pids[c]);
    EXPECT_EQ(status, 0) << "child " << c;
  }

  plan::PlanCache merged;
  ASSERT_TRUE(merged.load(path));
  EXPECT_EQ(merged.size(), static_cast<std::size_t>(kChildren * kRounds));
  for (int c = 0; c < kChildren; ++c) {
    for (int r = 0; r < kRounds; ++r) {
      plan::Plan got;
      EXPECT_TRUE(merged.lookup(
          "child_" + std::to_string(c) + "_round_" + std::to_string(r), &got))
          << "lost update from child " << c << " round " << r;
    }
  }
  std::remove(path.c_str());
  std::remove((path + ".lock").c_str());
}

#endif  // __unix__ || __APPLE__

}  // namespace
}  // namespace tdg
