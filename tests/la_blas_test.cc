// Unit tests for the dense BLAS substrate (src/la).

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "la/blas.h"
#include "la/generate.h"
#include "la/matrix.h"

namespace tdg {
namespace {

Matrix naive_gemm(Trans ta, Trans tb, double alpha, ConstMatrixView a,
                  ConstMatrixView b, double beta, ConstMatrixView c0) {
  const index_t m = (ta == Trans::kNo) ? a.rows : a.cols;
  const index_t k = (ta == Trans::kNo) ? a.cols : a.rows;
  const index_t n = (tb == Trans::kNo) ? b.cols : b.rows;
  Matrix c(m, n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      double s = 0.0;
      for (index_t l = 0; l < k; ++l) {
        const double av = (ta == Trans::kNo) ? a(i, l) : a(l, i);
        const double bv = (tb == Trans::kNo) ? b(l, j) : b(j, l);
        s += av * bv;
      }
      c(i, j) = alpha * s + beta * c0(i, j);
    }
  }
  return c;
}

TEST(Blas1, DotAxpyScalNrm2) {
  std::vector<double> x{1.0, 2.0, -3.0};
  std::vector<double> y{4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(la::dot(3, x.data(), y.data()), 4.0 - 10.0 - 18.0);
  la::axpy(3, 2.0, x.data(), y.data());
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], -1.0);
  EXPECT_DOUBLE_EQ(y[2], 0.0);
  la::scal(3, -1.0, y.data());
  EXPECT_DOUBLE_EQ(y[0], -6.0);
  EXPECT_NEAR(la::nrm2(3, x.data()), std::sqrt(14.0), 1e-15);
}

TEST(Blas1, Nrm2OverflowSafe) {
  std::vector<double> x{1e300, 1e300};
  EXPECT_NEAR(la::nrm2(2, x.data()) / (std::sqrt(2.0) * 1e300), 1.0, 1e-14);
  std::vector<double> z{0.0, 0.0};
  EXPECT_EQ(la::nrm2(2, z.data()), 0.0);
}

TEST(Blas2, GemvMatchesNaive) {
  Rng rng(1);
  const Matrix a = random_matrix(13, 7, rng);
  std::vector<double> x(13), y(13), xn(7);
  for (auto& v : x) v = rng.normal();
  for (auto& v : xn) v = rng.normal();

  // y = A * xn
  y.assign(13, 0.5);
  std::vector<double> yref = y;
  la::gemv(Trans::kNo, 2.0, a.view(), xn.data(), 3.0, y.data());
  for (index_t i = 0; i < 13; ++i) {
    double s = 0.0;
    for (index_t j = 0; j < 7; ++j) s += a(i, j) * xn[static_cast<size_t>(j)];
    yref[static_cast<size_t>(i)] = 2.0 * s + 3.0 * yref[static_cast<size_t>(i)];
  }
  for (index_t i = 0; i < 13; ++i)
    EXPECT_NEAR(y[static_cast<size_t>(i)], yref[static_cast<size_t>(i)], 1e-12);

  // y2 = A^T * x
  std::vector<double> y2(7, 0.0);
  la::gemv(Trans::kTrans, 1.0, a.view(), x.data(), 0.0, y2.data());
  for (index_t j = 0; j < 7; ++j) {
    double s = 0.0;
    for (index_t i = 0; i < 13; ++i) s += a(i, j) * x[static_cast<size_t>(i)];
    EXPECT_NEAR(y2[static_cast<size_t>(j)], s, 1e-12);
  }
}

TEST(Blas2, SymvLowerUsesOnlyLowerTriangle) {
  Rng rng(2);
  const index_t n = 9;
  Matrix a = random_symmetric(n, rng);
  Matrix poisoned = a;
  // Poison the strict upper triangle; symv_lower must ignore it.
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < j; ++i) poisoned(i, j) = 1e9;

  std::vector<double> x(static_cast<size_t>(n)), y1(static_cast<size_t>(n), 0.0),
      y2(static_cast<size_t>(n), 0.0);
  for (auto& v : x) v = rng.normal();
  la::symv_lower(1.0, poisoned.view(), x.data(), 0.0, y1.data());
  la::gemv(Trans::kNo, 1.0, a.view(), x.data(), 0.0, y2.data());
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(y1[static_cast<size_t>(i)], y2[static_cast<size_t>(i)], 1e-12);
}

TEST(Blas2, Syr2LowerMatchesDense) {
  Rng rng(3);
  const index_t n = 8;
  Matrix a = random_symmetric(n, rng);
  Matrix ref = a;
  std::vector<double> x(static_cast<size_t>(n)), y(static_cast<size_t>(n));
  for (auto& v : x) v = rng.normal();
  for (auto& v : y) v = rng.normal();

  la::syr2_lower(-1.0, x.data(), y.data(), a.view());
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j; i < n; ++i)
      ref(i, j) -= x[static_cast<size_t>(i)] * y[static_cast<size_t>(j)] +
                   y[static_cast<size_t>(i)] * x[static_cast<size_t>(j)];
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j; i < n; ++i) EXPECT_NEAR(a(i, j), ref(i, j), 1e-12);
}

class GemmShapeTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmShapeTest, AllTransposeCombosMatchNaive) {
  const auto [m, n, k] = GetParam();
  Rng rng(17 + m + 31 * n + 101 * k);
  for (const Trans ta : {Trans::kNo, Trans::kTrans}) {
    for (const Trans tb : {Trans::kNo, Trans::kTrans}) {
      const Matrix a = (ta == Trans::kNo) ? random_matrix(m, k, rng)
                                          : random_matrix(k, m, rng);
      const Matrix b = (tb == Trans::kNo) ? random_matrix(k, n, rng)
                                          : random_matrix(n, k, rng);
      Matrix c = random_matrix(m, n, rng);
      const Matrix ref =
          naive_gemm(ta, tb, 1.7, a.view(), b.view(), -0.3, c.view());
      la::gemm(ta, tb, 1.7, a.view(), b.view(), -0.3, c.view());
      EXPECT_LT(max_abs_diff(c.view(), ref.view()), 1e-10)
          << "ta=" << (ta == Trans::kTrans) << " tb=" << (tb == Trans::kTrans);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, GemmShapeTest,
                         ::testing::Values(std::tuple{1, 1, 1},
                                           std::tuple{5, 3, 4},
                                           std::tuple{8, 8, 8},
                                           std::tuple{17, 9, 23},
                                           std::tuple{33, 65, 7},
                                           std::tuple{64, 64, 64},
                                           std::tuple{3, 40, 2},
                                           // Shapes crossing the packed
                                           // MC/KC/NC cache-block edges,
                                           // none a block multiple.
                                           std::tuple{130, 70, 260},
                                           std::tuple{129, 17, 300},
                                           std::tuple{40, 530, 70}));

// The packed engine must agree with the naive reference for every transpose
// combination and every beta class (overwrite, accumulate, scale), at
// thread counts 1 and 4 — and the two thread counts must agree bitwise,
// since the block schedule is thread-count invariant.
class GemmBetaThreadsTest : public ::testing::TestWithParam<double> {};

TEST_P(GemmBetaThreadsTest, PackedMatchesNaiveAndIsThreadInvariant) {
  const double beta = GetParam();
  const index_t m = 130, n = 75, k = 280;  // crosses kMC and kKC
  Rng rng(91 + static_cast<int>(10 * beta));
  for (const Trans ta : {Trans::kNo, Trans::kTrans}) {
    for (const Trans tb : {Trans::kNo, Trans::kTrans}) {
      const Matrix a = (ta == Trans::kNo) ? random_matrix(m, k, rng)
                                          : random_matrix(k, m, rng);
      const Matrix b = (tb == Trans::kNo) ? random_matrix(k, n, rng)
                                          : random_matrix(n, k, rng);
      const Matrix c0 = random_matrix(m, n, rng);
      const Matrix ref = naive_gemm(ta, tb, 1.3, a.view(), b.view(), beta,
                                    c0.view());
      Matrix c1 = c0;
      {
        ThreadLimit serial(1);
        la::gemm(ta, tb, 1.3, a.view(), b.view(), beta, c1.view());
      }
      Matrix c4 = c0;
      {
        ThreadLimit parallel(4);
        la::gemm(ta, tb, 1.3, a.view(), b.view(), beta, c4.view());
      }
      EXPECT_LT(max_abs_diff(c1.view(), ref.view()), 1e-10)
          << "beta=" << beta << " ta=" << (ta == Trans::kTrans)
          << " tb=" << (tb == Trans::kTrans);
      // Bitwise: disjoint output blocks, fixed accumulation order.
      for (index_t j = 0; j < n; ++j)
        for (index_t i = 0; i < m; ++i)
          ASSERT_EQ(c1(i, j), c4(i, j))
              << "thread-count variance at (" << i << "," << j << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Betas, GemmBetaThreadsTest,
                         ::testing::Values(0.0, 1.0, 0.5));

TEST(Gemm, BetaZeroOverwritesNanFreeAndKZeroScales) {
  Matrix a(4, 0), b(0, 5);
  Matrix c(4, 5);
  fill(c.view(), 2.0);
  la::gemm(Trans::kNo, Trans::kNo, 1.0, a.view(), b.view(), 0.5, c.view());
  EXPECT_DOUBLE_EQ(c(2, 3), 1.0);  // k == 0: only the beta scaling applies
  la::gemm(Trans::kNo, Trans::kNo, 1.0, a.view(), b.view(), 0.0, c.view());
  EXPECT_DOUBLE_EQ(c(0, 0), 0.0);
}

TEST(Syr2k, ReferenceMatchesDenseFormula) {
  Rng rng(4);
  const index_t n = 21, k = 6;
  const Matrix a = random_matrix(n, k, rng);
  const Matrix b = random_matrix(n, k, rng);
  Matrix c = random_symmetric(n, rng);
  Matrix ref = c;

  la::syr2k_lower(1.5, a.view(), b.view(), 0.25, c.view());
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = j; i < n; ++i) {
      double s = 0.0;
      for (index_t l = 0; l < k; ++l) s += a(i, l) * b(j, l) + b(i, l) * a(j, l);
      ref(i, j) = 1.5 * s + 0.25 * ref(i, j);
    }
  }
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j; i < n; ++i) EXPECT_NEAR(c(i, j), ref(i, j), 1e-11);
}

class Syr2kSquareTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(Syr2kSquareTest, MatchesReference) {
  const auto [n, k, block] = GetParam();
  Rng rng(7 + n + k);
  const Matrix a = random_matrix(n, k, rng);
  const Matrix b = random_matrix(n, k, rng);
  Matrix c1 = random_symmetric(n, rng);
  Matrix c2 = c1;

  la::syr2k_lower(-1.0, a.view(), b.view(), 1.0, c1.view());
  la::syr2k_lower_square(-1.0, a.view(), b.view(), 1.0, c2.view(), block);
  double maxd = 0.0;
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j; i < n; ++i)
      maxd = std::max(maxd, std::abs(c1(i, j) - c2(i, j)));
  EXPECT_LT(maxd, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Shapes, Syr2kSquareTest,
                         ::testing::Values(std::tuple{16, 4, 4},
                                           std::tuple{17, 5, 4},
                                           std::tuple{64, 16, 16},
                                           std::tuple{100, 32, 24},
                                           std::tuple{33, 8, 0},
                                           std::tuple{1, 1, 1}));

TEST(Syr2k, LowerAndSymmAreThreadCountInvariant) {
  Rng rng(57);
  const index_t n = 180, k = 48, w = 70;
  const Matrix a = random_matrix(n, k, rng);
  const Matrix b = random_matrix(n, k, rng);
  const Matrix sym = random_symmetric(n, rng);
  const Matrix x = random_matrix(n, w, rng);
  const Matrix c0 = random_symmetric(n, rng);
  const Matrix y0 = random_matrix(n, w, rng);

  Matrix c1 = c0, c4 = c0, y1 = y0, y4 = y0;
  {
    ThreadLimit serial(1);
    la::syr2k_lower(-1.0, a.view(), b.view(), 0.5, c1.view());
    la::symm_lower(1.0, sym.view(), x.view(), 0.5, y1.view());
  }
  {
    ThreadLimit parallel(4);
    la::syr2k_lower(-1.0, a.view(), b.view(), 0.5, c4.view());
    la::symm_lower(1.0, sym.view(), x.view(), 0.5, y4.view());
  }
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j; i < n; ++i) ASSERT_EQ(c1(i, j), c4(i, j));
  for (index_t j = 0; j < w; ++j)
    for (index_t i = 0; i < n; ++i) ASSERT_EQ(y1(i, j), y4(i, j));
}

TEST(Syr2kSquare, ParallelMatchesSerialBitwise) {
  // The Fig.-7 schedule dispatches independent anti-diagonal blocks to the
  // pool; every block writes a disjoint C tile with a fixed inner order, so
  // the parallel lower triangle must equal the serial one exactly.
  Rng rng(58);
  const index_t n = 200, k = 48, block = 64;
  const Matrix a = random_matrix(n, k, rng);
  const Matrix b = random_matrix(n, k, rng);
  const Matrix c0 = random_symmetric(n, rng);

  Matrix c1 = c0, c4 = c0;
  {
    ThreadLimit serial(1);
    la::syr2k_lower_square(-1.0, a.view(), b.view(), 1.0, c1.view(), block);
  }
  {
    ThreadLimit parallel(4);
    la::syr2k_lower_square(-1.0, a.view(), b.view(), 1.0, c4.view(), block);
  }
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j; i < n; ++i)
      ASSERT_EQ(c1(i, j), c4(i, j)) << "(" << i << "," << j << ")";
}

TEST(Syr2kSquare, TraceIsThreadCountInvariant) {
  // Ops are recorded on the dispatching thread, so the recorded schedule
  // must not depend on the worker count.
  Rng rng(59);
  const index_t n = 96, k = 16, block = 32;
  const Matrix a = random_matrix(n, k, rng);
  const Matrix b = random_matrix(n, k, rng);

  auto run = [&](int threads) {
    Matrix c = random_symmetric(n, rng);
    trace::Recorder rec;
    ThreadLimit limit(threads);
    trace::Scope scope(rec);
    la::syr2k_lower_square(1.0, a.view(), b.view(), 1.0, c.view(), block);
    return rec.ops();
  };
  const auto ops1 = run(1);
  const auto ops4 = run(4);
  ASSERT_EQ(ops1.size(), ops4.size());
  for (std::size_t i = 0; i < ops1.size(); ++i) {
    EXPECT_EQ(ops1[i].kind, ops4[i].kind);
    EXPECT_EQ(ops1[i].m, ops4[i].m);
    EXPECT_EQ(ops1[i].n, ops4[i].n);
    EXPECT_EQ(ops1[i].k, ops4[i].k);
    EXPECT_EQ(ops1[i].batch, ops4[i].batch);
  }
}

TEST(Syr2kSquare, TraceContainsSquareGemms) {
  Rng rng(11);
  const index_t n = 64, k = 16, block = 16;
  const Matrix a = random_matrix(n, k, rng);
  const Matrix b = random_matrix(n, k, rng);
  Matrix c = random_symmetric(n, rng);

  trace::Recorder rec;
  {
    trace::Scope scope(rec);
    la::syr2k_lower_square(1.0, a.view(), b.view(), 1.0, c.view(), block);
  }
  int square_gemms = 0;
  for (const auto& op : rec.ops()) {
    if (op.kind == trace::OpKind::kGemm && op.m == block && op.n == block)
      ++square_gemms;
  }
  // 4 block-columns -> 6 off-diagonal blocks, 2 GEMMs each.
  EXPECT_EQ(square_gemms, 12);
}

TEST(Trace, FlopCountsAndScoping) {
  trace::Recorder rec;
  {
    trace::Scope scope(rec);
    trace::record({trace::OpKind::kGemm, 10, 20, 30, 1});
    trace::record({trace::OpKind::kSyr2k, 8, 8, 4, 1});
  }
  trace::record({trace::OpKind::kGemm, 100, 100, 100, 1});  // outside scope
  ASSERT_EQ(rec.ops().size(), 2u);
  EXPECT_DOUBLE_EQ(trace::flops(rec.ops()[0]), 2.0 * 10 * 20 * 30);
  EXPECT_DOUBLE_EQ(trace::flops(rec.ops()[1]), 2.0 * 8 * 9 * 4);
  EXPECT_EQ(trace::to_string(rec.ops()[0]), "gemm(10x20x30)");
}

TEST(Generate, SpectrumGeneratorKeepsEigenvaluesOnDiagonalSum) {
  Rng rng(5);
  const std::vector<double> evals{-3.0, -1.0, 0.5, 2.0, 10.0};
  const Matrix a = symmetric_with_spectrum(evals, rng);
  // Trace is similarity-invariant.
  double tr = 0.0;
  for (index_t i = 0; i < 5; ++i) tr += a(i, i);
  EXPECT_NEAR(tr, 8.5, 1e-10);
  // Symmetric by construction.
  EXPECT_LT(max_abs_diff(a.view(), transposed(a.view()).view()), 1e-14);
}

TEST(Generate, Laplacian1dEigenvaluesFormula) {
  const auto ev = laplacian_1d_eigenvalues(4);
  EXPECT_NEAR(ev.front(), 2.0 - 2.0 * std::cos(std::numbers::pi / 5.0), 1e-15);
  EXPECT_EQ(ev.size(), 4u);
}

TEST(Matrix, ViewsAndBlocks) {
  Matrix a(4, 5);
  a(2, 3) = 7.0;
  MatrixView b = a.block(1, 2, 3, 3);
  EXPECT_DOUBLE_EQ(b(1, 1), 7.0);
  b(1, 1) = 9.0;
  EXPECT_DOUBLE_EQ(a(2, 3), 9.0);
  EXPECT_THROW(a.block(2, 2, 4, 1), Error);
  const Matrix i3 = Matrix::identity(3);
  EXPECT_NEAR(orthogonality_error(i3.view()), 0.0, 1e-16);
}

}  // namespace
}  // namespace tdg
