// Unit tests for the persistent worker pool (src/common/thread_pool.h).

#include <atomic>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"

namespace tdg {
namespace {

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadLimit limit(4);
  constexpr index_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  ThreadPool::global().parallel_for(0, kN, [&](index_t i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (index_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForEmptyAndSingleRanges) {
  ThreadLimit limit(4);
  int calls = 0;
  ThreadPool::global().parallel_for(3, 3, [&](index_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ThreadPool::global().parallel_for(7, 8, [&](index_t i) {
    ++calls;
    EXPECT_EQ(i, 7);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadLimit limit(4);
  std::atomic<int> inner_total{0};
  ThreadPool::global().parallel_for(0, 8, [&](index_t) {
    // A kernel dispatched from a pool task degrades to serial.
    ThreadPool::global().parallel_for(0, 16, [&](index_t) {
      inner_total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(inner_total.load(), 8 * 16);
}

TEST(ThreadPool, RunConcurrentRunsAllCopies) {
  ThreadLimit limit(4);
  constexpr int kCopies = 6;  // more copies than the 4-thread budget
  std::vector<std::atomic<int>> ran(kCopies);
  for (auto& r : ran) r.store(0);
  ThreadPool::global().run_concurrent(kCopies, [&](int c) {
    ran[static_cast<std::size_t>(c)].fetch_add(1);
  });
  for (int c = 0; c < kCopies; ++c) EXPECT_EQ(ran[c].load(), 1);
}

TEST(ThreadPool, ParallelChunksTilesTheRange) {
  ThreadLimit limit(4);
  std::vector<int> hits(103, 0);
  parallel_chunks(103, 10, [&](index_t lo, index_t hi) {
    EXPECT_EQ(lo % 10, 0);
    EXPECT_LE(hi - lo, 10);
    for (index_t i = lo; i < hi; ++i) hits[static_cast<std::size_t>(i)]++;
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadLimitScope, OverridesAndRestores) {
  const int base = current_threads();
  {
    ThreadLimit limit(3);
    EXPECT_EQ(current_threads(), 3);
    {
      ThreadLimit inner(7);
      EXPECT_EQ(current_threads(), 7);
      ThreadLimit noop(0);  // 0 keeps the current budget
      EXPECT_EQ(current_threads(), 7);
    }
    EXPECT_EQ(current_threads(), 3);
  }
  EXPECT_EQ(current_threads(), base);
  EXPECT_GE(default_threads(), 1);
}

TEST(ThreadPool, SingleThreadBudgetRunsInline) {
  ThreadLimit limit(1);
  std::vector<int> order;
  ThreadPool::global().parallel_for(0, 5, [&](index_t i) {
    order.push_back(static_cast<int>(i));  // safe: inline, sequential
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

}  // namespace
}  // namespace tdg
