// Tests for stage 1: classic SBR (sy2sb) and the paper's DBBR (Algorithm 1),
// plus the back transformations that reconstruct Q1.

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "backtransform/backtransform.h"
#include "band/sym_band.h"
#include "common/rng.h"
#include "common/trace.h"
#include "la/blas.h"
#include "la/generate.h"
#include "sbr/sbr.h"

namespace tdg {
namespace {

// Explicit Q1 from the panel factors (identity run through the conventional
// back transformation).
Matrix build_q1(const sbr::BandFactor& f) {
  Matrix q = Matrix::identity(f.n);
  bt::apply_q1_conventional(f, q.view());
  return q;
}

// || A0 - Q1 B Q1^T ||_max, where B is the band result (lower triangle of
// the reduced matrix, mirrored).
double reconstruction_error(ConstMatrixView a0, MatrixView reduced,
                            const sbr::BandFactor& f) {
  symmetrize_from_lower(reduced);
  const Matrix q = build_q1(f);
  Matrix qb(f.n, f.n);
  la::gemm(Trans::kNo, Trans::kNo, 1.0, q.view(), reduced, 0.0, qb.view());
  Matrix qbqt(f.n, f.n);
  la::gemm(Trans::kNo, Trans::kTrans, 1.0, qb.view(), q.view(), 0.0,
           qbqt.view());
  return max_abs_diff(qbqt.view(), a0);
}

class Sy2sbTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(Sy2sbTest, ProducesBandAndExactSimilarity) {
  const auto [n, b] = GetParam();
  Rng rng(1000 + n * 7 + b);
  const Matrix a0 = random_symmetric(n, rng);
  Matrix a = a0;

  sbr::BandFactor f = sbr::sy2sb(a.view(), b);

  EXPECT_LT(off_band_max(a.view(), b), 1e-11 * n) << "result not band-form";
  EXPECT_LT(orthogonality_error(build_q1(f).view()), 1e-12 * n);
  EXPECT_LT(reconstruction_error(a0.view(), a.view(), f), 1e-10 * n);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, Sy2sbTest,
    ::testing::Values(std::tuple{16, 4}, std::tuple{24, 8}, std::tuple{33, 4},
                      std::tuple{40, 8}, std::tuple{64, 16},
                      std::tuple{65, 16}, std::tuple{37, 5},
                      std::tuple{12, 2}, std::tuple{70, 32},
                      std::tuple{9, 8}));

class DbbrTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(DbbrTest, ProducesBandAndExactSimilarity) {
  const auto [n, b, k] = GetParam();
  Rng rng(2000 + n * 13 + b + k);
  const Matrix a0 = random_symmetric(n, rng);
  Matrix a = a0;

  sbr::BandReductionOptions opts;
  opts.b = b;
  opts.k = k;
  sbr::BandFactor f = sbr::dbbr(a.view(), opts);

  EXPECT_LT(off_band_max(a.view(), b), 1e-11 * n) << "result not band-form";
  EXPECT_LT(orthogonality_error(build_q1(f).view()), 1e-12 * n);
  EXPECT_LT(reconstruction_error(a0.view(), a.view(), f), 1e-10 * n);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, DbbrTest,
    ::testing::Values(std::tuple{16, 4, 8}, std::tuple{32, 4, 16},
                      std::tuple{33, 4, 16}, std::tuple{48, 8, 16},
                      std::tuple{64, 8, 32}, std::tuple{65, 8, 32},
                      std::tuple{40, 4, 4},   // k == b degenerates to SBR
                      std::tuple{70, 16, 32}, std::tuple{51, 2, 8},
                      std::tuple{96, 32, 64}, std::tuple{21, 8, 16}));

TEST(Dbbr, BandEqualsSy2sbBand) {
  // With the same panel width the reflectors are identical, so DBBR must
  // produce the same band matrix as classic SBR (up to roundoff), not just
  // an orthogonally-equivalent one.
  Rng rng(31);
  const index_t n = 48, b = 8;
  const Matrix a0 = random_symmetric(n, rng);

  Matrix a1 = a0;
  sbr::BandFactor f1 = sbr::sy2sb(a1.view(), b);

  Matrix a2 = a0;
  sbr::BandReductionOptions opts;
  opts.b = b;
  opts.k = 16;
  sbr::BandFactor f2 = sbr::dbbr(a2.view(), opts);

  double maxd = 0.0;
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j; i <= std::min(n - 1, j + b); ++i)
      maxd = std::max(maxd, std::abs(a1(i, j) - a2(i, j)));
  EXPECT_LT(maxd, 1e-10 * n);
  ASSERT_EQ(f1.panels.size(), f2.panels.size());
}

TEST(Dbbr, SquareAndReferenceSyr2kAgree) {
  Rng rng(32);
  const index_t n = 40;
  const Matrix a0 = random_symmetric(n, rng);

  sbr::BandReductionOptions o1;
  o1.b = 4;
  o1.k = 16;
  o1.use_square_syr2k = true;
  o1.syr2k_block = 8;
  Matrix a1 = a0;
  sbr::dbbr(a1.view(), o1);

  sbr::BandReductionOptions o2 = o1;
  o2.use_square_syr2k = false;
  Matrix a2 = a0;
  sbr::dbbr(a2.view(), o2);

  double maxd = 0.0;
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j; i < n; ++i)
      maxd = std::max(maxd, std::abs(a1(i, j) - a2(i, j)));
  EXPECT_LT(maxd, 1e-10);
}

TEST(Dbbr, TraceShowsFatSyr2k) {
  // The whole point of DBBR: trailing syr2k inner dimension is k, not b.
  Rng rng(33);
  const index_t n = 96, b = 8, k = 32;
  Matrix a = random_symmetric(n, rng);

  sbr::BandReductionOptions opts;
  opts.b = b;
  opts.k = k;
  opts.use_square_syr2k = false;  // keep trailing updates as single syr2k ops

  trace::Recorder rec;
  {
    trace::Scope scope(rec);
    sbr::dbbr(a.view(), opts);
  }
  index_t max_inner = 0;
  for (const auto& op : rec.ops()) {
    if (op.kind == trace::OpKind::kSyr2k) max_inner = std::max(max_inner, op.k);
  }
  EXPECT_EQ(max_inner, k);

  // Classic SBR keeps the inner dimension at b.
  Rng rng2(33);
  Matrix a2 = random_symmetric(n, rng2);
  trace::Recorder rec2;
  {
    trace::Scope scope(rec2);
    sbr::BandReductionOptions o2;
    o2.use_square_syr2k = false;
    sbr::sy2sb(a2.view(), b, o2);
  }
  index_t max_inner2 = 0;
  for (const auto& op : rec2.ops()) {
    if (op.kind == trace::OpKind::kSyr2k)
      max_inner2 = std::max(max_inner2, op.k);
  }
  EXPECT_EQ(max_inner2, b);
}

TEST(BackTransform, AllVariantsAgree) {
  Rng rng(41);
  const index_t n = 60, b = 4;
  Matrix a = random_symmetric(n, rng);
  sbr::BandReductionOptions opts;
  opts.b = b;
  opts.k = 16;
  sbr::BandFactor f = sbr::dbbr(a.view(), opts);

  Matrix c0 = random_matrix(n, 7, rng);
  Matrix c1 = c0, c2 = c0, c3 = c0, c4 = c0;
  bt::apply_q1_conventional(f, c1.view());
  bt::apply_q1_recursive(f, c2.view());
  bt::apply_q1_blocked(f, 16, c3.view());
  bt::apply_q1_blocked(f, 4, c4.view());  // group == 1 panel

  EXPECT_LT(max_abs_diff(c1.view(), c2.view()), 1e-10);
  EXPECT_LT(max_abs_diff(c1.view(), c3.view()), 1e-10);
  EXPECT_LT(max_abs_diff(c1.view(), c4.view()), 1e-10);
}

TEST(BackTransform, MergedWyReproducesExplicitProduct) {
  Rng rng(42);
  const index_t n = 36, b = 4;
  Matrix a = random_symmetric(n, rng);
  sbr::BandFactor f = sbr::sy2sb(a.view(), b);
  ASSERT_GE(f.panels.size(), 2u);

  // Q from merged WY vs Q from sequential application.
  const bt::MergedWy m = bt::merge_panels(f, 0, f.panels.size());
  Matrix q1(n, n);
  q1 = Matrix::identity(n);
  {
    MatrixView sub = q1.block(m.row0, 0, n - m.row0, n);
    Matrix t(m.y.cols(), n);
    la::gemm(Trans::kTrans, Trans::kNo, 1.0, m.y.view(), sub, 0.0, t.view());
    la::gemm(Trans::kNo, Trans::kNo, -1.0, m.w.view(), t.view(), 1.0, sub);
  }
  const Matrix q2 = build_q1(f);
  EXPECT_LT(max_abs_diff(q1.view(), q2.view()), 1e-11);
}

TEST(SymBand, PackedRoundTripAndOffBand) {
  Rng rng(51);
  const index_t n = 20, b = 3;
  const Matrix a = random_symmetric_band(n, b, rng);
  const SymBandMatrix band = extract_band(a.view(), b, 2 * b);
  EXPECT_EQ(off_band_max(band, b), 0.0);
  const Matrix back = band.to_dense();
  EXPECT_LT(max_abs_diff(back.view(), a.view()), 1e-15);
  EXPECT_DOUBLE_EQ(band.sym_at(0, 5), 0.0);  // outside stored band
  EXPECT_DOUBLE_EQ(band.sym_at(2, 4), band.sym_at(4, 2));
}

TEST(SymBand, RejectsBadBandwidth) {
  EXPECT_THROW(SymBandMatrix(4, 4), Error);
  Matrix a(5, 5);
  EXPECT_THROW(extract_band(a.view(), 3, 2), Error);
}

// The look-ahead DAG schedule must be bitwise identical to the barrier
// schedule — same tile grid, same kernels, same inputs — at every thread
// count, for both reductions. 0.0 tolerance everywhere: band matrix AND
// reflector panels.
TEST(Lookahead, DbbrBitwiseIdenticalToBarrierAcrossThreadCounts) {
  const index_t n = 97;  // partial final panel exercises the fixup node
  Rng rng(777);
  const Matrix a0 = random_symmetric(n, rng);

  sbr::BandReductionOptions base;
  base.b = 8;
  base.k = 32;
  base.syr2k_block = 16;  // several tiles per trailing update

  // Barrier reference, single-threaded.
  Matrix ref = a0;
  sbr::BandFactor fref;
  {
    sbr::BandReductionOptions o = base;
    o.threads = 1;
    o.lookahead = 0;
    fref = sbr::dbbr(ref.view(), o);
  }

  for (const int threads : {1, 2, 8}) {
    for (const index_t la : {index_t{0}, index_t{1}}) {
      Matrix a = a0;
      sbr::BandReductionOptions o = base;
      o.threads = threads;
      o.lookahead = la;
      const sbr::BandFactor f = sbr::dbbr(a.view(), o);
      EXPECT_EQ(max_abs_diff(a.view(), ref.view()), 0.0)
          << "threads=" << threads << " lookahead=" << la;
      ASSERT_EQ(f.panels.size(), fref.panels.size());
      for (size_t p = 0; p < f.panels.size(); ++p) {
        EXPECT_EQ(f.panels[p].row0, fref.panels[p].row0);
        EXPECT_EQ(max_abs_diff(f.panels[p].v.view(), fref.panels[p].v.view()),
                  0.0)
            << "panel " << p << " threads=" << threads << " la=" << la;
        EXPECT_EQ(max_abs_diff(f.panels[p].t.view(), fref.panels[p].t.view()),
                  0.0);
      }
    }
  }
}

TEST(Lookahead, Sy2sbBitwiseIdenticalToBarrierAcrossThreadCounts) {
  const index_t n = 83;
  const index_t b = 8;
  Rng rng(778);
  const Matrix a0 = random_symmetric(n, rng);

  sbr::BandReductionOptions base;
  base.syr2k_block = 16;

  Matrix ref = a0;
  sbr::BandFactor fref;
  {
    sbr::BandReductionOptions o = base;
    o.threads = 1;
    o.lookahead = 0;
    fref = sbr::sy2sb(ref.view(), b, o);
  }

  for (const int threads : {1, 2, 8}) {
    for (const index_t la : {index_t{0}, index_t{1}}) {
      Matrix a = a0;
      sbr::BandReductionOptions o = base;
      o.threads = threads;
      o.lookahead = la;
      const sbr::BandFactor f = sbr::sy2sb(a.view(), b, o);
      EXPECT_EQ(max_abs_diff(a.view(), ref.view()), 0.0)
          << "threads=" << threads << " lookahead=" << la;
      ASSERT_EQ(f.panels.size(), fref.panels.size());
      for (size_t p = 0; p < f.panels.size(); ++p) {
        EXPECT_EQ(f.panels[p].row0, fref.panels[p].row0);
        EXPECT_EQ(max_abs_diff(f.panels[p].v.view(), fref.panels[p].v.view()),
                  0.0);
        EXPECT_EQ(max_abs_diff(f.panels[p].t.view(), fref.panels[p].t.view()),
                  0.0);
      }
    }
  }
}

// An active op trace forces the barrier path (pool workers carry no
// recorder), so tracing a look-ahead run still yields the canonical trace.
TEST(Lookahead, TraceFallsBackToBarrierSchedule) {
  const index_t n = 48;
  Rng rng(779);
  const Matrix a0 = random_symmetric(n, rng);

  sbr::BandReductionOptions o;
  o.b = 8;
  o.k = 16;
  o.threads = 8;

  trace::Recorder rec_barrier;
  {
    Matrix a = a0;
    o.lookahead = 0;
    trace::Scope scope(rec_barrier);
    sbr::dbbr(a.view(), o);
  }
  trace::Recorder rec_la;
  Matrix a_la = a0;
  {
    o.lookahead = 1;
    trace::Scope scope(rec_la);
    sbr::dbbr(a_la.view(), o);
  }
  ASSERT_EQ(rec_la.ops().size(), rec_barrier.ops().size());
  for (size_t i = 0; i < rec_la.ops().size(); ++i) {
    EXPECT_EQ(rec_la.ops()[i].kind, rec_barrier.ops()[i].kind);
    EXPECT_EQ(rec_la.ops()[i].m, rec_barrier.ops()[i].m);
    EXPECT_EQ(rec_la.ops()[i].n, rec_barrier.ops()[i].n);
    EXPECT_EQ(rec_la.ops()[i].k, rec_barrier.ops()[i].k);
  }
}

}  // namespace
}  // namespace tdg
