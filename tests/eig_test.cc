// Tests for the tridiagonal eigensolvers (steqr, secular solver, stedc) and
// the end-to-end EVD drivers.

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "eig/drivers.h"
#include "eig/eig.h"
#include "eig/secular.h"
#include "la/blas.h"
#include "la/generate.h"

namespace tdg {
namespace {

Matrix tridiag_dense(const std::vector<double>& d,
                     const std::vector<double>& e) {
  const index_t n = static_cast<index_t>(d.size());
  Matrix t(n, n);
  for (index_t i = 0; i < n; ++i) {
    t(i, i) = d[static_cast<size_t>(i)];
    if (i + 1 < n) {
      t(i + 1, i) = e[static_cast<size_t>(i)];
      t(i, i + 1) = e[static_cast<size_t>(i)];
    }
  }
  return t;
}

// || T Z - Z diag(w) ||_max — residual of the eigen decomposition.
double eigen_residual(ConstMatrixView t, ConstMatrixView z,
                      const std::vector<double>& w) {
  Matrix tz(t.rows, t.cols);
  la::gemm(Trans::kNo, Trans::kNo, 1.0, t, z, 0.0, tz.view());
  double m = 0.0;
  for (index_t j = 0; j < t.cols; ++j) {
    for (index_t i = 0; i < t.rows; ++i) {
      m = std::max(m, std::abs(tz(i, j) - z(i, j) * w[static_cast<size_t>(j)]));
    }
  }
  return m;
}

TEST(Steqr, LaplacianEigenvaluesAnalytic) {
  const index_t n = 64;
  std::vector<double> d(static_cast<size_t>(n), 2.0);
  std::vector<double> e(static_cast<size_t>(n - 1), -1.0);
  eig::steqr(d, e, nullptr);
  const auto exact = laplacian_1d_eigenvalues(n);
  for (index_t i = 0; i < n; ++i) {
    EXPECT_NEAR(d[static_cast<size_t>(i)], exact[static_cast<size_t>(i)],
                1e-12 * n);
  }
}

TEST(Steqr, EigenvectorsResidualAndOrthogonality) {
  Rng rng(1);
  const index_t n = 40;
  std::vector<double> d(static_cast<size_t>(n)), e(static_cast<size_t>(n - 1));
  for (auto& x : d) x = rng.normal();
  for (auto& x : e) x = rng.normal();
  const Matrix t = tridiag_dense(d, e);

  Matrix z = Matrix::identity(n);
  MatrixView zv = z.view();
  eig::steqr(d, e, &zv);

  EXPECT_TRUE(std::is_sorted(d.begin(), d.end()));
  EXPECT_LT(orthogonality_error(z.view()), 1e-12 * n);
  EXPECT_LT(eigen_residual(t.view(), z.view(), d), 1e-12 * n);
}

TEST(Steqr, HandlesZeroAndSingleAndDiagonal) {
  std::vector<double> d0, e0;
  eig::steqr(d0, e0, nullptr);  // n == 0: no-op
  std::vector<double> d1{5.0}, e1;
  eig::steqr(d1, e1, nullptr);
  EXPECT_DOUBLE_EQ(d1[0], 5.0);
  // Already diagonal: e = 0.
  std::vector<double> d{3.0, 1.0, 2.0}, e{0.0, 0.0};
  eig::steqr(d, e, nullptr);
  EXPECT_DOUBLE_EQ(d[0], 1.0);
  EXPECT_DOUBLE_EQ(d[1], 2.0);
  EXPECT_DOUBLE_EQ(d[2], 3.0);
}

TEST(Secular, RootsInterlaceAndSolveExactly) {
  // Small problem with known structure: D = diag(0,1,2), z = (1,1,1)/sqrt 3,
  // rho = 1. Roots interlace: d_j < lambda_j < d_{j+1}, last < d_max+rho.
  const std::vector<double> d{0.0, 1.0, 2.0};
  const double s = 1.0 / std::sqrt(3.0);
  const std::vector<double> z{s, s, s};
  const auto roots = eig::solve_secular(d, z, 1.0);
  ASSERT_EQ(roots.size(), 3u);
  EXPECT_GT(roots[0].lambda, 0.0);
  EXPECT_LT(roots[0].lambda, 1.0);
  EXPECT_GT(roots[1].lambda, 1.0);
  EXPECT_LT(roots[1].lambda, 2.0);
  EXPECT_GT(roots[2].lambda, 2.0);
  EXPECT_LT(roots[2].lambda, 3.0 + 1e-12);
  // f(lambda) ~ 0 at each root.
  for (const auto& r : roots) {
    double f = 1.0;
    for (int i = 0; i < 3; ++i)
      f += z[static_cast<size_t>(i)] * z[static_cast<size_t>(i)] /
           (d[static_cast<size_t>(i)] - r.lambda);
    EXPECT_LT(std::abs(f), 1e-10);
  }
  // Eigenvalue sum: trace(D + rho z z^T) = 0+1+2 + 1 = 4.
  EXPECT_NEAR(roots[0].lambda + roots[1].lambda + roots[2].lambda, 4.0, 1e-12);
}

TEST(Secular, TinyGapsStayBracketed) {
  const std::vector<double> d{0.0, 1e-14, 1.0};
  const std::vector<double> z{0.5, 0.5, 0.7};
  const auto roots = eig::solve_secular(d, z, 2.0);
  EXPECT_GT(roots[0].lambda, d[0]);
  EXPECT_LT(roots[0].lambda, d[1]);
  EXPECT_GT(roots[1].lambda, d[1]);
  EXPECT_LT(roots[1].lambda, d[2]);
}

TEST(Secular, RecomputedZReproducesOriginalOnExactData) {
  // On a well-separated problem zhat ~ z.
  const std::vector<double> d{0.0, 2.0, 5.0, 9.0};
  std::vector<double> z{0.3, -0.4, 0.5, 0.6};
  const auto roots = eig::solve_secular(d, z, 1.7);
  const auto zhat = eig::recompute_z(d, z, 1.7, roots);
  for (std::size_t i = 0; i < z.size(); ++i) {
    EXPECT_NEAR(zhat[i], z[i], 1e-10) << i;
  }
}

class StedcTest : public ::testing::TestWithParam<int> {};

TEST_P(StedcTest, MatchesSteqrAndIsOrthogonal) {
  const index_t n = GetParam();
  Rng rng(10 + static_cast<uint64_t>(n));
  std::vector<double> d(static_cast<size_t>(n)), e(static_cast<size_t>(n - 1));
  for (auto& x : d) x = rng.normal();
  for (auto& x : e) x = rng.normal();
  const Matrix t = tridiag_dense(d, e);

  std::vector<double> d1 = d, e1 = e;
  eig::steqr(d1, e1, nullptr);

  std::vector<double> d2 = d, e2 = e;
  Matrix q(n, n);
  eig::stedc(d2, e2, q.view(), 8);

  for (index_t i = 0; i < n; ++i) {
    EXPECT_NEAR(d1[static_cast<size_t>(i)], d2[static_cast<size_t>(i)],
                1e-11 * n)
        << i;
  }
  EXPECT_LT(orthogonality_error(q.view()), 1e-11 * n);
  EXPECT_LT(eigen_residual(t.view(), q.view(), d2), 1e-11 * n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, StedcTest,
                         ::testing::Values(1, 2, 3, 7, 8, 9, 16, 17, 33, 64,
                                           100, 129));

TEST(Stedc, HeavyDeflationClusteredSpectrum) {
  // A matrix engineered to deflate heavily: many equal diagonal entries and
  // tiny couplings.
  const index_t n = 50;
  std::vector<double> d(static_cast<size_t>(n), 1.0);
  std::vector<double> e(static_cast<size_t>(n - 1), 1e-18);
  e[10] = 0.5;
  e[30] = -0.25;
  const Matrix t = tridiag_dense(d, e);

  std::vector<double> dd = d, ee = e;
  Matrix q(n, n);
  eig::stedc(dd, ee, q.view(), 8);
  EXPECT_LT(orthogonality_error(q.view()), 1e-11 * n);
  EXPECT_LT(eigen_residual(t.view(), q.view(), dd), 1e-11 * n);
}

TEST(Stedc, ZeroCouplingSplitsCleanly) {
  const index_t n = 16;
  Rng rng(77);
  std::vector<double> d(static_cast<size_t>(n)), e(static_cast<size_t>(n - 1));
  for (auto& x : d) x = rng.normal();
  for (auto& x : e) x = rng.normal();
  e[7] = 0.0;  // rho == 0 at the top-level merge
  const Matrix t = tridiag_dense(d, e);

  std::vector<double> dd = d, ee = e;
  Matrix q(n, n);
  eig::stedc(dd, ee, q.view(), 4);
  EXPECT_LT(eigen_residual(t.view(), q.view(), dd), 1e-12 * n);
}

TEST(Eigh, DirectMatchesSpectrumGenerator) {
  Rng rng(20);
  std::vector<double> evals(32);
  for (std::size_t i = 0; i < evals.size(); ++i)
    evals[i] = static_cast<double>(i) - 7.5;
  const Matrix a = symmetric_with_spectrum(evals, rng);

  eig::EvdOptions opts;
  opts.tridiag.method = TridiagMethod::kDirect;
  const eig::EvdResult r = eig::eigh(a.view(), opts);
  for (std::size_t i = 0; i < evals.size(); ++i) {
    EXPECT_NEAR(r.eigenvalues[i], evals[i], 1e-10);
  }
}

class EighPipelineTest
    : public ::testing::TestWithParam<std::tuple<int, TridiagMethod, bool>> {};

TEST_P(EighPipelineTest, ResidualAndOrthogonality) {
  const auto [n, method, vectors] = GetParam();
  Rng rng(30 + static_cast<uint64_t>(n));
  const Matrix a = random_symmetric(n, rng);

  eig::EvdOptions opts;
  opts.vectors = vectors;
  opts.tridiag.method = method;
  opts.tridiag.b = 4;
  opts.tridiag.k = 8;
  opts.tridiag.bc_threads = 3;
  opts.knobs.bt_kw = 8;
  const eig::EvdResult r = eig::eigh(a.view(), opts);

  EXPECT_TRUE(std::is_sorted(r.eigenvalues.begin(), r.eigenvalues.end()));

  // Cross-validate eigenvalues against the direct method with QL.
  eig::EvdOptions ref;
  ref.vectors = false;
  ref.tridiag.method = TridiagMethod::kDirect;
  const eig::EvdResult rr = eig::eigh(a.view(), ref);
  for (index_t i = 0; i < n; ++i) {
    EXPECT_NEAR(r.eigenvalues[static_cast<size_t>(i)],
                rr.eigenvalues[static_cast<size_t>(i)], 1e-10 * n)
        << i;
  }

  if (vectors) {
    EXPECT_LT(orthogonality_error(r.eigenvectors.view()), 1e-10 * n);
    // || A V - V diag(w) ||.
    EXPECT_LT(eigen_residual(a.view(), r.eigenvectors.view(), r.eigenvalues),
              1e-10 * n);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Pipelines, EighPipelineTest,
    ::testing::Values(
        std::tuple{24, TridiagMethod::kDirect, true},
        std::tuple{24, TridiagMethod::kTwoStageClassic, true},
        std::tuple{24, TridiagMethod::kTwoStageDbbr, true},
        std::tuple{45, TridiagMethod::kTwoStageDbbr, true},
        std::tuple{45, TridiagMethod::kTwoStageClassic, true},
        std::tuple{45, TridiagMethod::kTwoStageDbbr, false},
        std::tuple{64, TridiagMethod::kTwoStageDbbr, true},
        std::tuple{7, TridiagMethod::kTwoStageDbbr, true},
        std::tuple{2, TridiagMethod::kTwoStageDbbr, true},
        std::tuple{1, TridiagMethod::kDirect, true}));

TEST(Eigh, QlSolverAgreesWithDivideConquer) {
  Rng rng(40);
  const index_t n = 32;
  const Matrix a = random_symmetric(n, rng);

  eig::EvdOptions o1;
  o1.solver = eig::TridiagSolver::kDivideConquer;
  o1.tridiag.b = 4;
  o1.tridiag.k = 8;
  const auto r1 = eig::eigh(a.view(), o1);

  eig::EvdOptions o2 = o1;
  o2.solver = eig::TridiagSolver::kImplicitQl;
  const auto r2 = eig::eigh(a.view(), o2);

  for (index_t i = 0; i < n; ++i) {
    EXPECT_NEAR(r1.eigenvalues[static_cast<size_t>(i)],
                r2.eigenvalues[static_cast<size_t>(i)], 1e-11 * n);
  }
  EXPECT_LT(eigen_residual(a.view(), r2.eigenvectors.view(), r2.eigenvalues),
            1e-10 * n);
}

TEST(Tridiagonalize, AllMethodsProduceSameSpectrum) {
  Rng rng(50);
  const index_t n = 40;
  const Matrix a = random_symmetric(n, rng);

  auto values = [&](TridiagMethod m) {
    TridiagOptions o;
    o.method = m;
    o.b = 4;
    o.k = 8;
    o.want_factors = false;
    TridiagResult t = tridiagonalize(a.view(), o);
    eig::steqr(t.d, t.e, nullptr);
    return t.d;
  };
  const auto v1 = values(TridiagMethod::kDirect);
  const auto v2 = values(TridiagMethod::kTwoStageClassic);
  const auto v3 = values(TridiagMethod::kTwoStageDbbr);
  for (index_t i = 0; i < n; ++i) {
    EXPECT_NEAR(v1[static_cast<size_t>(i)], v2[static_cast<size_t>(i)],
                1e-10 * n);
    EXPECT_NEAR(v1[static_cast<size_t>(i)], v3[static_cast<size_t>(i)],
                1e-10 * n);
  }
}

}  // namespace
}  // namespace tdg
