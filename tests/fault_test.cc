// Tests for the fault-tolerant execution layer (docs/ALGORITHMS.md §11):
// the deterministic fault-injection hook, exception-safe pool joins,
// poisonable bulge-chase gates with spin deadlines, the input-hygiene
// screen, the tridiagonal-solver fallback chain, and the plan-cache
// failure paths. Every injection site in the registry is driven here.

#include <atomic>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bc/bulge_chase.h"
#include "bc/bulge_chase_parallel.h"
#include "common/fault.h"
#include "eig/batched.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "eig/drivers.h"
#include "la/blas.h"
#include "la/generate.h"
#include "obs/metrics.h"
#include "plan/plan.h"
#include "plan/plan_cache.h"
#include "serve/serve.h"
#include "sbr/sbr.h"

namespace tdg {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

// || A V - V diag(w) ||_max — residual of the full decomposition.
double evd_residual(ConstMatrixView a, ConstMatrixView v,
                    const std::vector<double>& w) {
  Matrix av(a.rows, v.cols);
  la::gemm(Trans::kNo, Trans::kNo, 1.0, a, v, 0.0, av.view());
  double m = 0.0;
  for (index_t j = 0; j < v.cols; ++j) {
    for (index_t i = 0; i < v.rows; ++i) {
      m = std::max(m, std::abs(av(i, j) - v(i, j) * w[static_cast<size_t>(j)]));
    }
  }
  return m;
}

// ---- spec parsing and arming ----------------------------------------------

TEST(FaultSpec, ParsesSiteTriggerFires) {
  EXPECT_TRUE(fault::arm_from_spec("steqr_noconv"));
  EXPECT_TRUE(fault::should_fire("steqr_noconv"));   // hit 1 fires
  EXPECT_FALSE(fault::should_fire("steqr_noconv"));  // fires defaults to 1
  fault::disarm();

  EXPECT_TRUE(fault::arm_from_spec("bc_sweep:3"));
  EXPECT_FALSE(fault::should_fire("bc_sweep"));
  EXPECT_FALSE(fault::should_fire("bc_sweep"));
  EXPECT_TRUE(fault::should_fire("bc_sweep"));
  EXPECT_FALSE(fault::should_fire("bc_sweep"));
  fault::disarm();

  EXPECT_TRUE(fault::arm_from_spec("pool_task:2:*"));
  EXPECT_FALSE(fault::should_fire("pool_task"));
  EXPECT_TRUE(fault::should_fire("pool_task"));
  EXPECT_TRUE(fault::should_fire("pool_task"));  // unlimited window
  EXPECT_EQ(fault::hits(), 3);
  fault::disarm();
  EXPECT_EQ(fault::hits(), 0);
}

TEST(FaultSpec, RejectsMalformedSpecs) {
  for (const char* bad : {"", ":1", "site:", "site:0", "site:x", "site:1:",
                          "site:1:0", "site:1:y"}) {
    EXPECT_FALSE(fault::arm_from_spec(bad)) << bad;
    EXPECT_FALSE(fault::should_fire("site")) << bad;
  }
}

TEST(FaultSpec, OtherSitesDoNotCountHits) {
  fault::Scoped armed("steqr_noconv", 2);
  EXPECT_FALSE(fault::should_fire("bc_sweep"));
  EXPECT_FALSE(fault::should_fire("pool_task"));
  EXPECT_EQ(fault::hits(), 0);  // mismatched sites never advance the counter
  EXPECT_FALSE(fault::should_fire("steqr_noconv"));  // hit 1
  EXPECT_TRUE(fault::should_fire("steqr_noconv"));   // hit 2 == trigger
}

TEST(FaultSpec, MaybeInjectThrowsTyped) {
  fault::Scoped armed("pool_task");
  try {
    fault::maybe_inject("pool_task");
    FAIL() << "expected injected fault";
  } catch (const Error& err) {
    EXPECT_EQ(err.code(), ErrorCode::kFaultInjected);
    EXPECT_STREQ(err.context().stage, "pool_task");
    EXPECT_NE(std::string(err.what()).find("pool_task"), std::string::npos);
  }
}

TEST(FaultSpec, DisarmedFastPathIsSilent) {
  fault::disarm();
  EXPECT_FALSE(fault::should_fire("pool_task"));
  EXPECT_NO_THROW(fault::maybe_inject("bc_sweep"));
}

// ---- exception-safe thread pool -------------------------------------------

TEST(PoolFault, ParallelForRethrowsTaskException) {
  ThreadLimit limit(4);
  std::atomic<int> executed{0};
  try {
    ThreadPool::global().parallel_for(0, 64, [&](index_t i) {
      if (i == 7) throw std::runtime_error("task 7 failed");
      ++executed;
    });
    FAIL() << "expected rethrow at the join";
  } catch (const std::runtime_error& err) {
    EXPECT_NE(std::string(err.what()).find("task 7"), std::string::npos);
  }
  // The region is poisoned, not torn down: some indices may have been
  // skipped, but the join released and none ran twice.
  EXPECT_LT(executed.load(), 64);

  // The pool stays usable after a poisoned region.
  std::atomic<int> after{0};
  ThreadPool::global().parallel_for(0, 64, [&](index_t) { ++after; });
  EXPECT_EQ(after.load(), 64);
}

TEST(PoolFault, ParallelForInjectedFaultIsTyped) {
  ThreadLimit limit(4);
  fault::Scoped armed("pool_task", 5);
  try {
    ThreadPool::global().parallel_for(0, 32, [](index_t) {});
    FAIL() << "expected injected fault";
  } catch (const Error& err) {
    EXPECT_EQ(err.code(), ErrorCode::kFaultInjected);
  }
}

TEST(PoolFault, SerialPathInjectedFaultIsTyped) {
  ThreadLimit limit(1);  // inline path, no workers involved
  fault::Scoped armed("pool_task", 3);
  try {
    ThreadPool::global().parallel_for(0, 8, [](index_t) {});
    FAIL() << "expected injected fault";
  } catch (const Error& err) {
    EXPECT_EQ(err.code(), ErrorCode::kFaultInjected);
  }
}

TEST(PoolFault, RunConcurrentRethrowsPeerException) {
  ThreadLimit limit(4);
  std::atomic<int> ran{0};
  try {
    ThreadPool::global().run_concurrent(4, [&](int copy) {
      ++ran;
      if (copy == 2) throw std::runtime_error("copy 2 failed");
    });
    FAIL() << "expected rethrow at the join";
  } catch (const std::runtime_error& err) {
    EXPECT_NE(std::string(err.what()).find("copy 2"), std::string::npos);
  }
  EXPECT_EQ(ran.load(), 4);  // peers are independent; all copies ran

  std::atomic<int> after{0};
  ThreadPool::global().run_concurrent(4, [&](int) { ++after; });
  EXPECT_EQ(after.load(), 4);
}

TEST(PoolFault, RunConcurrentCallerCopyThrowArrivesAfterJoin) {
  ThreadLimit limit(4);
  std::atomic<int> ran{0};
  try {
    ThreadPool::global().run_concurrent(4, [&](int copy) {
      ++ran;
      if (copy == 0) throw std::runtime_error("caller copy failed");
    });
    FAIL() << "expected rethrow";
  } catch (const std::runtime_error&) {
  }
  // The caller's copy failing must still wait for the helpers (they hold a
  // reference to the shared closure), so every copy observed a live fn.
  EXPECT_EQ(ran.load(), 4);
}

// ---- poisonable bulge-chase gates -----------------------------------------

TEST(ChaseFault, InjectedSweepFaultUnwindsPipeline) {
  const index_t n = 64, b = 4;
  Rng rng(42);
  const Matrix a0 = random_symmetric_band(n, b, rng);
  SymBandMatrix band = extract_band(a0.view(), b, std::min(2 * b, n - 1));

  fault::Scoped armed("bc_sweep", 3);
  bc::ParallelChaseOptions opts;
  opts.threads = 4;
  opts.spin_timeout_ms = 5000;  // failsafe only; poisoning releases the gates
  try {
    bc::chase_packed_parallel(band, b, opts, nullptr);
    FAIL() << "expected injected fault";
  } catch (const Error& err) {
    // The root cause is the injected fault, never a peer's unwind error.
    EXPECT_EQ(err.code(), ErrorCode::kFaultInjected);
  }
}

TEST(ChaseFault, StalledGateHitsSpinDeadline) {
  const index_t n = 64, b = 4;
  Rng rng(43);
  const Matrix a0 = random_symmetric_band(n, b, rng);
  SymBandMatrix band = extract_band(a0.view(), b, std::min(2 * b, n - 1));

  fault::Scoped armed("bc_stall");  // wedge the first claimed sweep
  bc::ParallelChaseOptions opts;
  opts.threads = 4;
  opts.spin_timeout_ms = 200;  // short deadline: the test must not crawl
  try {
    bc::chase_packed_parallel(band, b, opts, nullptr);
    FAIL() << "expected a pipeline stall";
  } catch (const Error& err) {
    EXPECT_EQ(err.code(), ErrorCode::kPipelineStall);
    EXPECT_STREQ(err.context().stage, "bulge_chase");
    EXPECT_GE(err.context().index, -1);  // sweep coordinate present
    EXPECT_NE(std::string(err.what()).find("sweep"), std::string::npos);
  }
}

TEST(TaskGraphFault, FailingNodeCancelsSuccessorsAndSurfacesTypedError) {
  // Drive the injection through the look-ahead DBBR DAG: the fired node's
  // successors must be cancelled (counted in the registry metric, not run)
  // and the graph must drain into a typed rethrow — no hang, no terminate.
  const index_t n = 96;
  Rng rng(91);
  const Matrix a0 = random_symmetric(n, rng);

  obs::Counter* cancelled =
      obs::Registry::global().counter("taskgraph.nodes_cancelled");
  const long long cancelled_before = cancelled->value();

  struct MetricsArm {
    MetricsArm() { obs::arm_metrics(); }
    ~MetricsArm() { obs::disarm_metrics(); }
  } metrics;
  fault::Scoped armed("taskgraph_node", /*trigger=*/3);
  sbr::BandReductionOptions opts;
  opts.b = 8;
  opts.k = 32;
  opts.threads = 8;
  opts.lookahead = 1;
  opts.syr2k_block = 16;
  Matrix a = a0;
  try {
    sbr::dbbr(a.view(), opts);
    FAIL() << "expected injected fault";
  } catch (const Error& err) {
    EXPECT_EQ(err.code(), ErrorCode::kFaultInjected);
  }
  // A DBBR graph at this shape has far more than 3 nodes, so poisoning the
  // third leaves successors to cancel.
  EXPECT_GT(cancelled->value(), cancelled_before);

  // The library is healthy afterwards and the clean rerun is bitwise equal
  // to the barrier schedule.
  Matrix clean = a0;
  sbr::dbbr(clean.view(), opts);
  Matrix barrier = a0;
  sbr::BandReductionOptions bopts = opts;
  bopts.lookahead = 0;
  sbr::dbbr(barrier.view(), bopts);
  EXPECT_EQ(max_abs_diff(clean.view(), barrier.view()), 0.0);
}

TEST(ChaseFault, CleanRunAfterPoisonedRunIsBitwiseCorrect) {
  const index_t n = 48, b = 4;
  Rng rng(44);
  const Matrix a0 = random_symmetric_band(n, b, rng);
  const index_t kd = std::min(2 * b, n - 1);

  {
    SymBandMatrix poisoned = extract_band(a0.view(), b, kd);
    fault::Scoped armed("bc_sweep", 2);
    bc::ParallelChaseOptions opts;
    opts.threads = 4;
    EXPECT_THROW(bc::chase_packed_parallel(poisoned, b, opts, nullptr), Error);
  }

  // The pool and the global state must be clean again: an undisturbed run
  // still matches the sequential chase exactly.
  SymBandMatrix seq = extract_band(a0.view(), b, kd);
  bc::chase_packed(seq, b, nullptr);
  SymBandMatrix par = extract_band(a0.view(), b, kd);
  bc::ParallelChaseOptions opts;
  opts.threads = 4;
  bc::chase_packed_parallel(par, b, opts, nullptr);

  std::vector<double> d1, e1, d2, e2;
  bc::extract_tridiag(seq, d1, e1);
  bc::extract_tridiag(par, d2, e2);
  for (index_t i = 0; i < n; ++i)
    EXPECT_EQ(d1[static_cast<size_t>(i)], d2[static_cast<size_t>(i)]) << i;
  for (index_t i = 0; i + 1 < n; ++i)
    EXPECT_EQ(e1[static_cast<size_t>(i)], e2[static_cast<size_t>(i)]) << i;
}

// ---- input hygiene ---------------------------------------------------------

TEST(InputHygiene, EighRejectsNaNWithCoordinates) {
  const index_t n = 16;
  Rng rng(7);
  Matrix a = random_symmetric(n, rng);
  a(5, 2) = std::numeric_limits<double>::quiet_NaN();
  try {
    eig::eigh(a.view());
    FAIL() << "expected kInvalidInput";
  } catch (const Error& err) {
    EXPECT_EQ(err.code(), ErrorCode::kInvalidInput);
    EXPECT_STREQ(err.context().stage, "eigh");
    EXPECT_EQ(err.context().index, 5);
    EXPECT_EQ(err.context().iteration, 2);
    EXPECT_NE(std::string(err.what()).find("(5, 2)"), std::string::npos);
  }
}

TEST(InputHygiene, TridiagonalizeRejectsInf) {
  const index_t n = 16;
  Rng rng(8);
  Matrix a = random_symmetric(n, rng);
  a(9, 9) = std::numeric_limits<double>::infinity();
  try {
    tridiagonalize(a.view(), {});
    FAIL() << "expected kInvalidInput";
  } catch (const Error& err) {
    EXPECT_EQ(err.code(), ErrorCode::kInvalidInput);
    EXPECT_STREQ(err.context().stage, "tridiagonalize");
  }
}

TEST(InputHygiene, ScreenOnlyReadsLowerTriangle) {
  // The documented contract: only the lower triangle is read, so garbage
  // in the strict upper triangle must not trip the screen.
  const index_t n = 12;
  Rng rng(9);
  Matrix a = random_symmetric(n, rng);
  a(1, 10) = std::numeric_limits<double>::quiet_NaN();  // strict upper
  EXPECT_NO_THROW(eig::eigh(a.view()));
}

TEST(InputHygiene, ScreenCanBeSkipped) {
  const index_t n = 12;
  Rng rng(10);
  const Matrix a = random_symmetric(n, rng);
  eig::EvdOptions opts;
  opts.check_finite = false;  // pre-validated input: no O(n^2) rescan
  const eig::EvdResult res = eig::eigh(a.view(), opts);
  EXPECT_EQ(res.eigenvalues.size(), static_cast<size_t>(n));
}

// ---- solver fallback chain -------------------------------------------------

TEST(SolverFallback, ValuesOnlySteqrFallsBackToBisect) {
  const index_t n = 48;
  Rng rng(11);
  const Matrix a = random_symmetric(n, rng);
  const eig::EvdOptions vals_only = [] {
    eig::EvdOptions o;
    o.vectors = false;
    return o;
  }();

  const eig::EvdResult clean = eig::eigh(a.view(), vals_only);
  ASSERT_TRUE(clean.recovery.empty());

  fault::Scoped armed("steqr_noconv", 1, -1);
  const eig::EvdResult res = eig::eigh(a.view(), vals_only);
  EXPECT_EQ(res.recovery, "steqr->bisect");
  for (index_t i = 0; i < n; ++i) {
    EXPECT_NEAR(res.eigenvalues[static_cast<size_t>(i)],
                clean.eigenvalues[static_cast<size_t>(i)], 1e-9 * n);
  }
}

TEST(SolverFallback, DcFallsBackToSteqr) {
  const index_t n = 48;
  Rng rng(12);
  const Matrix a = random_symmetric(n, rng);
  const eig::EvdResult clean = eig::eigh(a.view());
  ASSERT_TRUE(clean.recovery.empty());

  // One shot: the D&C base case's first steqr call fails, the driver-level
  // steqr retry (hit 2) succeeds.
  fault::Scoped armed("steqr_noconv", 1, 1);
  const eig::EvdResult res = eig::eigh(a.view());
  EXPECT_EQ(res.recovery, "dc->steqr");
  for (index_t i = 0; i < n; ++i) {
    EXPECT_NEAR(res.eigenvalues[static_cast<size_t>(i)],
                clean.eigenvalues[static_cast<size_t>(i)], 1e-9 * n);
  }
  EXPECT_LT(orthogonality_error(res.eigenvectors.view()), 1e-11 * n);
  EXPECT_LT(evd_residual(a.view(), res.eigenvectors.view(), res.eigenvalues),
            1e-10 * n);
}

TEST(SolverFallback, DcFallsBackThroughSteqrToBisect) {
  const index_t n = 48;
  Rng rng(13);
  const Matrix a = random_symmetric(n, rng);
  const eig::EvdResult clean = eig::eigh(a.view());

  // Every steqr call fails: D&C's base case, then the driver retry; the
  // solver-free bisection + inverse-iteration stage must carry the run.
  fault::Scoped armed("steqr_noconv", 1, -1);
  const eig::EvdResult res = eig::eigh(a.view());
  EXPECT_EQ(res.recovery, "dc->steqr->bisect");
  for (index_t i = 0; i < n; ++i) {
    EXPECT_NEAR(res.eigenvalues[static_cast<size_t>(i)],
                clean.eigenvalues[static_cast<size_t>(i)], 1e-9 * n);
  }
  EXPECT_LT(orthogonality_error(res.eigenvectors.view()), 1e-9 * n);
  EXPECT_LT(evd_residual(a.view(), res.eigenvectors.view(), res.eigenvalues),
            1e-9 * n);
}

TEST(SolverFallback, ExplicitSteqrSolverFallsBackToBisect) {
  const index_t n = 40;
  Rng rng(14);
  const Matrix a = random_symmetric(n, rng);
  eig::EvdOptions opts;
  opts.solver = eig::TridiagSolver::kImplicitQl;
  const eig::EvdResult clean = eig::eigh(a.view(), opts);

  fault::Scoped armed("steqr_noconv", 1, -1);
  const eig::EvdResult res = eig::eigh(a.view(), opts);
  EXPECT_EQ(res.recovery, "steqr->bisect");
  for (index_t i = 0; i < n; ++i) {
    EXPECT_NEAR(res.eigenvalues[static_cast<size_t>(i)],
                clean.eigenvalues[static_cast<size_t>(i)], 1e-9 * n);
  }
  EXPECT_LT(evd_residual(a.view(), res.eigenvectors.view(), res.eigenvalues),
            1e-9 * n);
}

TEST(SolverFallback, SecularFailureTriggersDcFallback) {
  const index_t n = 48;
  Rng rng(15);
  const Matrix a = random_symmetric(n, rng);
  eig::EvdOptions opts;
  opts.knobs.smlsiz = 8;  // force real D&C merges so the secular solver runs
  const eig::EvdResult clean = eig::eigh(a.view(), opts);
  ASSERT_TRUE(clean.recovery.empty());

  fault::Scoped armed("secular_root");
  const eig::EvdResult res = eig::eigh(a.view(), opts);
  EXPECT_EQ(res.recovery, "dc->steqr");
  for (index_t i = 0; i < n; ++i) {
    EXPECT_NEAR(res.eigenvalues[static_cast<size_t>(i)],
                clean.eigenvalues[static_cast<size_t>(i)], 1e-9 * n);
  }
}

TEST(SolverFallback, DisabledFallbackSurfacesTypedError) {
  const index_t n = 32;
  Rng rng(16);
  const Matrix a = random_symmetric(n, rng);
  eig::EvdOptions opts;
  opts.solver_fallback = false;
  fault::Scoped armed("steqr_noconv", 1, -1);
  try {
    eig::eigh(a.view(), opts);
    FAIL() << "expected kNoConvergence";
  } catch (const Error& err) {
    EXPECT_EQ(err.code(), ErrorCode::kNoConvergence);
    EXPECT_STREQ(err.context().stage, "steqr");
  }
}

// ---- plan-cache failure paths ---------------------------------------------

TEST(CacheFault, SaveFaultReportsFailureWithoutTouchingFile) {
  const std::string path = temp_path("fault_cache_save.json");
  std::remove(path.c_str());

  plan::PlanCache cache;
  cache.insert("some-key", plan::Plan{});
  {
    fault::Scoped armed("cache_save");
    EXPECT_FALSE(cache.save(path));
  }
  EXPECT_EQ(cache.stats().save_failures, 1);
  EXPECT_EQ(cache.stats().saves, 0);
  std::FILE* f = std::fopen(path.c_str(), "r");
  EXPECT_EQ(f, nullptr) << "a failed save must not create the file";
  if (f != nullptr) std::fclose(f);

  // Unfaulted retry succeeds and the file round-trips.
  EXPECT_TRUE(cache.save(path));
  EXPECT_EQ(cache.stats().saves, 1);
  plan::PlanCache fresh;
  EXPECT_TRUE(fresh.load(path));
  EXPECT_EQ(fresh.size(), 1u);
  std::remove(path.c_str());
  std::remove((path + ".lock").c_str());
}

TEST(CacheFault, LockFaultDegradesToUnlockedSave) {
  const std::string path = temp_path("fault_cache_lock.json");
  std::remove(path.c_str());

  plan::PlanCache cache;
  cache.insert("another-key", plan::Plan{});
  {
    fault::Scoped armed("cache_lock");
    // Simulated lock contention: the save still lands (last-writer-wins,
    // the pre-flock behavior), only the telemetry records the degradation.
    EXPECT_TRUE(cache.save(path));
  }
  EXPECT_EQ(cache.stats().lock_failures, 1);
  EXPECT_EQ(cache.stats().saves, 1);
  plan::PlanCache fresh;
  EXPECT_TRUE(fresh.load(path));
  EXPECT_EQ(fresh.size(), 1u);
  std::remove(path.c_str());
  std::remove((path + ".lock").c_str());
}

TEST(CacheFault, StatsCountHitsAndMisses) {
  plan::PlanCache cache;
  plan::Plan out;
  EXPECT_FALSE(cache.lookup("k1", &out));
  cache.insert("k1", plan::Plan{});
  EXPECT_TRUE(cache.lookup("k1", &out));
  EXPECT_TRUE(cache.lookup("k1", &out));
  cache.note_measure_run("k1");

  const plan::CacheStats s = cache.stats();
  EXPECT_EQ(s.misses, 1);
  EXPECT_EQ(s.hits, 2);
  EXPECT_EQ(s.measure_runs, 1);
  const auto shapes = cache.shape_stats();
  ASSERT_EQ(shapes.count("k1"), 1u);
  EXPECT_EQ(shapes.at("k1").hits, 2);
  EXPECT_EQ(shapes.at("k1").misses, 1);
  EXPECT_EQ(shapes.at("k1").measure_runs, 1);

  cache.reset_stats();
  EXPECT_EQ(cache.stats().hits, 0);
  EXPECT_TRUE(cache.shape_stats().empty());
}

// ---- no-hang stress --------------------------------------------------------

// Every site, injected under a full thread budget: each run must end in a
// typed error or a recorded recovery — never a hang (the ctest timeout is
// the enforcement backstop) and never std::terminate.
TEST(FaultStress, EverySiteUnwindsUnderThreads) {
  ThreadLimit limit(8);
  const index_t n = 96;
  Rng rng(17);
  const Matrix a = random_symmetric(n, rng);

  for (const char* site :
       {"pool_task", "bc_sweep", "steqr_noconv", "secular_root"}) {
    fault::Scoped armed(site);
    eig::EvdOptions opts;
    opts.knobs.smlsiz = 16;  // real merges, so secular_root is reachable
    opts.tridiag.bc_threads = 4;
    opts.tridiag.b = 8;
    try {
      const eig::EvdResult res = eig::eigh(a.view(), opts);
      // Sites on the solver path are absorbed by the fallback chain.
      EXPECT_FALSE(res.recovery.empty()) << site;
    } catch (const Error& err) {
      EXPECT_NE(err.code(), ErrorCode::kUnknown) << site;
    }
  }

  // The stall site needs a short deadline to stay fast; drive it at the
  // chase layer where the deadline is a per-call option.
  {
    const Matrix band_src = random_symmetric_band(n, 8, rng);
    SymBandMatrix band =
        extract_band(band_src.view(), 8, std::min<index_t>(16, n - 1));
    fault::Scoped armed("bc_stall");
    bc::ParallelChaseOptions opts;
    opts.threads = 8;
    opts.spin_timeout_ms = 200;
    EXPECT_THROW(bc::chase_packed_parallel(band, 8, opts, nullptr), Error);
  }

  // And the library is healthy afterwards.
  const eig::EvdResult res = eig::eigh(a.view());
  EXPECT_TRUE(res.recovery.empty());
  EXPECT_LT(evd_residual(a.view(), res.eigenvectors.view(), res.eigenvalues),
            1e-10 * n);
}

// ---- CI fault-matrix entry point ------------------------------------------

// The target of the CI fault-injection job: TDG_FAULT_INJECT is set in the
// environment (armed before main() by the EnvInit hook), TDG_THREADS raises
// the budget, and this single test runs a representative slice of the
// library. The assertion is the weak one that matters: typed error, recorded
// recovery, or success — within the ctest timeout, with no hang and no
// std::terminate.
TEST(FaultEnv, NoHangUnderInjection) {
  const index_t n = 160;
  Rng rng(18);
  const Matrix a = random_symmetric(n, rng);
  eig::EvdOptions opts;
  opts.knobs.smlsiz = 16;
  opts.tridiag.b = 8;
  opts.tridiag.bc_threads = 4;
  // Force the task-graph schedule so the taskgraph_node site is reachable
  // on any core count (bitwise-neutral; the heuristic only enables it when
  // the thread budget is >= 2).
  opts.tridiag.knobs.lookahead = 1;
  try {
    const eig::EvdResult res = eig::eigh(a.view(), opts);
    EXPECT_EQ(res.eigenvalues.size(), static_cast<size_t>(n));
  } catch (const Error& err) {
    EXPECT_NE(err.code(), ErrorCode::kUnknown);
    std::printf("injected failure surfaced as %s: %s\n",
                to_string(err.code()), err.what());
  }

  // The measure tier + cache save path (covers cache_save / cache_lock
  // injection from the environment).
  const std::string path = temp_path("fault_env_cache.json");
  std::remove(path.c_str());
  plan::PlannerOptions popts;
  popts.cache_path = path;
  popts.proxy_n = 96;
  try {
    const plan::Plan p = plan::measured_plan({n, true, 0}, popts);
    EXPECT_GE(p.b, 1);
  } catch (const Error& err) {
    EXPECT_NE(err.code(), ErrorCode::kUnknown);
  }
  std::remove(path.c_str());
  std::remove((path + ".lock").c_str());
}

// Mixed-precision engine under environment injection (the "evd_refine:1"
// row of the CI fault matrix, plus any in-pipeline site the FP32 stage
// shares with the FP64 path): a forced refinement failure must surface as
// the recorded fp32->fp64 recovery — a completed full-FP64 rerun — never a
// hang or an uncaught throw.
TEST(FaultEnv, MixedPrecisionRecoversUnderInjection) {
  const index_t n = 96;
  Rng rng(21);
  const Matrix a = random_symmetric(n, rng);
  eig::EvdOptions opts;
  opts.mode = plan::EvdMode::kMixedPrecision;
  try {
    const eig::EvdResult res = eig::eigh(a.view(), opts);
    EXPECT_EQ(res.eigenvalues.size(), static_cast<size_t>(n));
    EXPECT_EQ(res.eigenvectors.cols(), n);
    if (!res.recovery.empty()) {
      std::printf("recovered via %s\n", res.recovery.c_str());
    }
  } catch (const Error& err) {
    EXPECT_NE(err.code(), ErrorCode::kUnknown);
    std::printf("injected failure surfaced as %s: %s\n",
                to_string(err.code()), err.what());
  }
}

// Batched driver under environment injection (the "batch_problem:N" rows of
// the CI fault matrix, plus every in-problem site): the batch call itself
// never throws or hangs — each slot either succeeds or carries a typed
// error, and the two tallies cover the batch exactly.
TEST(FaultEnv, BatchedIsolatesInjectedFailures) {
  const std::vector<index_t> sizes{96, 64, 48, 80, 64, 48};
  std::vector<Matrix> mats;
  Rng rng(19);
  for (const index_t n : sizes) mats.push_back(random_symmetric(n, rng));
  std::vector<ConstMatrixView> views;
  for (const Matrix& m : mats) views.push_back(m.view());

  eig::BatchOptions opts;
  opts.threads = 4;
  const eig::BatchResult res = eig::eigh_batched(views, opts);

  ASSERT_EQ(res.problems, static_cast<index_t>(sizes.size()));
  index_t ok = 0, failed = 0;
  for (size_t i = 0; i < sizes.size(); ++i) {
    if (res.status[i].ok) {
      ++ok;
      EXPECT_LT(evd_residual(mats[i].view(),
                             res.results[i].eigenvectors.view(),
                             res.results[i].eigenvalues),
                1e-9 * static_cast<double>(sizes[i]));
    } else {
      ++failed;
      EXPECT_NE(res.status[i].code, ErrorCode::kUnknown);
      EXPECT_FALSE(res.status[i].message.empty());
      std::printf("slot %zu failed as %s: %s\n", i,
                  to_string(res.status[i].code),
                  res.status[i].message.c_str());
    }
  }
  EXPECT_EQ(failed, res.failed);
  EXPECT_EQ(ok + failed, res.problems);
}

// Environment-armed serve sites (serve_admit / serve_request, the CI fault
// matrix rows): whatever fires, the service never crashes, every request
// resolves to exactly one outcome, and drain completes.
TEST(FaultEnv, ServeAccountsEveryRequestUnderInjection) {
  serve::ServeOptions sopts;
  sopts.coalesce_window_ms = 1.0;
  serve::ServeCore core(sopts);

  constexpr int kRequests = 12;
  const index_t sizes[] = {48, 64, 96};
  std::vector<serve::Ticket> tickets;
  for (int i = 0; i < kRequests; ++i) {
    Rng rng(static_cast<std::uint64_t>(40 + i));
    tickets.push_back(
        core.submit(random_symmetric(sizes[i % 3], rng)));
  }
  ASSERT_TRUE(core.drain(/*timeout_ms=*/120000.0));

  int completed = 0, degraded = 0, rejected = 0, failed = 0;
  for (auto& t : tickets) {
    const serve::Response r = t.response.get();
    switch (r.outcome) {
      case serve::Outcome::kCompleted: ++completed; break;
      case serve::Outcome::kDegraded: ++degraded; break;
      case serve::Outcome::kRejected:
        ++rejected;
        EXPECT_EQ(r.code, ErrorCode::kOverloaded);
        break;
      case serve::Outcome::kFailed:
        ++failed;
        EXPECT_NE(r.code, ErrorCode::kUnknown);
        std::printf("request failed as %s: %s\n", to_string(r.code),
                    r.message.c_str());
        break;
    }
  }
  EXPECT_EQ(completed + degraded + rejected + failed, kRequests);
  const serve::ServeStats s = core.stats();
  EXPECT_EQ(s.submitted, kRequests);
  EXPECT_TRUE(s.accounted());
  EXPECT_EQ(s.queue_depth, 0);
}

}  // namespace
}  // namespace tdg
