// Tests for the resilient EVD service layer (src/serve/):
//
//   - served results are bitwise identical to a standalone eigh() against
//     the same bucket plan (determinism across batching / arrival order)
//   - admission control: queue-capacity and memory-budget rejects are
//     synchronous, typed kOverloaded, and exactly accounted
//   - deadlines: a cancelled request fails alone with kCancelled, and a
//     follow-up identical request on the same (still-warm) service is
//     bitwise identical to a fresh process — the pool and plan cache
//     survive cancellation unpoisoned
//   - degradation: queue pressure turns vectors requests into
//     eigenvalues-only kDegraded outcomes
//   - retry: a transient serve_request fault consumes one retry and still
//     completes
//   - breaker: consecutive bucket failures trip the per-bucket breaker
//     (kOverloaded sheds), and a half-open probe closes it again
//   - drain: resolves everything, then sheds new work
//   - wire: the line protocol parses and formats round-trip
//
// gtest_discover_tests runs each case in its own process, so every case
// gets a fresh ServeCore and fresh serve.* counters.

#include <gtest/gtest.h>

#include <tdg/serve.h>

#include <chrono>
#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include <algorithm>
#include <set>

#include "common/fault.h"
#include "common/rng.h"
#include "la/generate.h"
#include "obs/metrics.h"
#include "obs/obs.h"

namespace tdg {
namespace {

Matrix test_matrix(index_t n, std::uint64_t seed = 42) {
  Rng rng(seed);
  return random_symmetric(n, rng);
}

/// The standalone solve a served request must reproduce bitwise: the
/// bucket's shared plan, intra-problem thread budgets of 1.
eig::EvdResult reference_solve(ConstMatrixView a, bool vectors) {
  eig::BatchOptions bopts;
  bopts.vectors = vectors;
  const plan::Plan plan = eig::batch_bucket_plan(a.rows, bopts);
  eig::EvdOptions popt;
  popt.vectors = vectors;
  popt.tridiag.threads = 1;
  popt.tridiag.bc_threads = 1;
  return eig::eigh(a, popt, plan);
}

void expect_bitwise_equal(const eig::EvdResult& got,
                          const eig::EvdResult& want) {
  ASSERT_EQ(got.eigenvalues.size(), want.eigenvalues.size());
  for (std::size_t i = 0; i < want.eigenvalues.size(); ++i) {
    EXPECT_EQ(got.eigenvalues[i], want.eigenvalues[i]) << "eigenvalue " << i;
  }
  ASSERT_EQ(got.eigenvectors.rows(), want.eigenvectors.rows());
  ASSERT_EQ(got.eigenvectors.cols(), want.eigenvectors.cols());
  for (index_t j = 0; j < want.eigenvectors.cols(); ++j) {
    for (index_t i = 0; i < want.eigenvectors.rows(); ++i) {
      ASSERT_EQ(got.eigenvectors(i, j), want.eigenvectors(i, j))
          << "eigenvector entry (" << i << ", " << j << ")";
    }
  }
}

TEST(ServeTest, BitwiseMatchesStandaloneEigh) {
  const index_t n = 64;
  const Matrix a = test_matrix(n);

  serve::ServeCore core;
  Matrix req(n, n);
  copy(a.view(), req.view());
  serve::Ticket t = core.submit(std::move(req));
  const serve::Response r = t.response.get();

  ASSERT_EQ(r.outcome, serve::Outcome::kCompleted) << r.message;
  expect_bitwise_equal(r.result, reference_solve(a.view(), /*vectors=*/true));
}

TEST(ServeTest, MixedShapesAllCompleteAndAccount) {
  serve::ServeCore core;
  const index_t shapes[] = {48, 64, 64, 96, 48, 57};
  std::vector<serve::Ticket> tickets;
  for (std::size_t i = 0; i < 6; ++i) {
    tickets.push_back(
        core.submit(test_matrix(shapes[i], 100 + i), serve::RequestOptions{}));
  }
  for (auto& t : tickets) {
    EXPECT_EQ(t.response.get().outcome, serve::Outcome::kCompleted);
  }
  ASSERT_TRUE(core.drain());
  const serve::ServeStats s = core.stats();
  EXPECT_EQ(s.submitted, 6);
  EXPECT_EQ(s.completed, 6);
  EXPECT_TRUE(s.accounted());
}

TEST(ServeTest, QueueCapacityRejectsSynchronouslyWithOverloaded) {
  serve::ServeOptions sopts;
  sopts.queue_capacity = 2;
  sopts.coalesce_window_ms = 1000.0;  // hold the queue while we overfill it
  serve::ServeCore core(sopts);

  std::vector<serve::Ticket> tickets;
  for (int i = 0; i < 5; ++i) {
    tickets.push_back(core.submit(test_matrix(48, 7)));
  }
  // Rejected futures are resolved before submit() returns.
  int rejected = 0;
  for (int i = 0; i < 5; ++i) {
    const serve::Response r = tickets[static_cast<std::size_t>(i)]
                                  .response.get();
    if (r.outcome == serve::Outcome::kRejected) {
      ++rejected;
      EXPECT_EQ(r.code, ErrorCode::kOverloaded);
    }
  }
  EXPECT_EQ(rejected, 3);
  ASSERT_TRUE(core.drain());
  const serve::ServeStats s = core.stats();
  EXPECT_EQ(s.submitted, 5);
  EXPECT_EQ(s.rejected, 3);
  EXPECT_EQ(s.completed, 2);
  EXPECT_TRUE(s.accounted());
}

TEST(ServeTest, MemoryBudgetRejects) {
  serve::ServeOptions sopts;
  sopts.memory_budget_bytes = 48 * 48 * 8 + 100;  // room for one 48x48
  sopts.coalesce_window_ms = 500.0;
  serve::ServeCore core(sopts);

  serve::Ticket first = core.submit(test_matrix(48, 1));
  serve::Ticket second = core.submit(test_matrix(48, 2));
  const serve::Response r2 = second.response.get();
  EXPECT_EQ(r2.outcome, serve::Outcome::kRejected);
  EXPECT_EQ(r2.code, ErrorCode::kOverloaded);
  EXPECT_EQ(first.response.get().outcome, serve::Outcome::kCompleted);
  ASSERT_TRUE(core.drain());
  EXPECT_TRUE(core.stats().accounted());
}

// Satellite: a cancelled request fails alone with kCancelled and the
// service stays fully reusable — a follow-up identical request is bitwise
// identical to a fresh-process reference solve.
TEST(ServeTest, CancelledRequestLeavesServiceReusable) {
  const index_t n = 64;
  const Matrix a = test_matrix(n);

  serve::ServeOptions sopts;
  sopts.coalesce_window_ms = 50.0;  // submit/cancel wins this race easily
  serve::ServeCore core(sopts);

  Matrix doomed(n, n);
  copy(a.view(), doomed.view());
  serve::Ticket t1 = core.submit(std::move(doomed));
  t1.token->cancel();  // before the dispatcher can pop it
  const serve::Response r1 = t1.response.get();
  EXPECT_EQ(r1.outcome, serve::Outcome::kFailed);
  EXPECT_EQ(r1.code, ErrorCode::kCancelled);

  // Same matrix again on the same (now-warm) service.
  Matrix again(n, n);
  copy(a.view(), again.view());
  serve::Ticket t2 = core.submit(std::move(again));
  const serve::Response r2 = t2.response.get();
  ASSERT_EQ(r2.outcome, serve::Outcome::kCompleted) << r2.message;
  expect_bitwise_equal(r2.result, reference_solve(a.view(), /*vectors=*/true));

  ASSERT_TRUE(core.drain());
  const serve::ServeStats s = core.stats();
  EXPECT_EQ(s.submitted, 2);
  EXPECT_EQ(s.failed, 1);
  EXPECT_EQ(s.completed, 1);
  EXPECT_EQ(s.deadline_failures, 1);
  EXPECT_TRUE(s.accounted());
}

TEST(ServeTest, QueuePressureDegradesToEigenvaluesOnly) {
  serve::ServeOptions sopts;
  sopts.degrade_queue_depth = 1;
  sopts.coalesce_window_ms = 200.0;  // let the burst pile up first
  serve::ServeCore core(sopts);

  std::vector<serve::Ticket> tickets;
  for (int i = 0; i < 4; ++i) {
    tickets.push_back(core.submit(test_matrix(48, 7)));
  }
  int degraded = 0;
  for (auto& t : tickets) {
    const serve::Response r = t.response.get();
    ASSERT_TRUE(r.outcome == serve::Outcome::kCompleted ||
                r.outcome == serve::Outcome::kDegraded)
        << r.message;
    if (r.outcome == serve::Outcome::kDegraded) {
      ++degraded;
      EXPECT_EQ(r.result.eigenvalues.size(), 48u);
      EXPECT_EQ(r.result.eigenvectors.cols(), 0);  // eigenvalues-only
    }
  }
  EXPECT_GE(degraded, 1);
  ASSERT_TRUE(core.drain());
  const serve::ServeStats s = core.stats();
  EXPECT_EQ(s.degraded, degraded);
  EXPECT_TRUE(s.accounted());
}

TEST(ServeTest, DegradeDeniedWhenRequestForbidsIt) {
  serve::ServeOptions sopts;
  sopts.degrade_queue_depth = 1;
  sopts.coalesce_window_ms = 200.0;
  serve::ServeCore core(sopts);

  serve::RequestOptions no_degrade;
  no_degrade.allow_degraded = false;
  std::vector<serve::Ticket> tickets;
  for (int i = 0; i < 4; ++i) {
    tickets.push_back(core.submit(test_matrix(48, 7), no_degrade));
  }
  for (auto& t : tickets) {
    const serve::Response r = t.response.get();
    EXPECT_EQ(r.outcome, serve::Outcome::kCompleted) << r.message;
    EXPECT_GT(r.result.eigenvectors.cols(), 0);
  }
}

TEST(ServeTest, TransientFaultRetriesOnceAndCompletes) {
  fault::Scoped arm("serve_request", /*trigger=*/1, /*fires=*/1);
  serve::ServeCore core;
  serve::Ticket t = core.submit(test_matrix(64, 9));
  const serve::Response r = t.response.get();
  ASSERT_EQ(r.outcome, serve::Outcome::kCompleted) << r.message;
  EXPECT_EQ(r.retries, 1);
  const serve::ServeStats s = core.stats();
  EXPECT_EQ(s.retries, 1);
  EXPECT_TRUE(s.accounted());
}

TEST(ServeTest, TransientFaultBeyondRetryBudgetFails) {
  fault::Scoped arm("serve_request", /*trigger=*/1, /*fires=*/-1);
  serve::ServeOptions sopts;
  sopts.max_retries = 1;
  serve::ServeCore core(sopts);
  serve::Ticket t = core.submit(test_matrix(64, 9));
  const serve::Response r = t.response.get();
  EXPECT_EQ(r.outcome, serve::Outcome::kFailed);
  EXPECT_EQ(r.code, ErrorCode::kFaultInjected);
  EXPECT_EQ(r.retries, 1);
  EXPECT_TRUE(core.stats().accounted());
}

TEST(ServeTest, BreakerTripsShedsAndRecoversViaHalfOpenProbe) {
  serve::ServeOptions sopts;
  sopts.breaker_threshold = 2;
  sopts.breaker_open_ms = 150.0;
  sopts.coalesce_window_ms = 0.0;
  serve::ServeCore core(sopts);

  // Two consecutive hard failures (NaN input) in the n=48 bucket.
  for (int i = 0; i < 2; ++i) {
    Matrix bad = test_matrix(48, 5);
    bad.view()(0, 0) = std::numeric_limits<double>::quiet_NaN();
    const serve::Response r = core.submit(std::move(bad)).response.get();
    EXPECT_EQ(r.outcome, serve::Outcome::kFailed);
    EXPECT_EQ(r.code, ErrorCode::kInvalidInput);
  }
  EXPECT_EQ(core.stats().breaker_trips, 1);

  // While open, the bucket is shed at admission.
  const serve::Response shed = core.submit(test_matrix(48, 6)).response.get();
  EXPECT_EQ(shed.outcome, serve::Outcome::kRejected);
  EXPECT_EQ(shed.code, ErrorCode::kOverloaded);

  // Other buckets are unaffected (48 and 64 share the pow2-64 bucket, so
  // probe a genuinely different one).
  EXPECT_EQ(core.submit(test_matrix(96, 6)).response.get().outcome,
            serve::Outcome::kCompleted);

  // After the open window, one half-open probe closes the breaker.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_EQ(core.submit(test_matrix(48, 6)).response.get().outcome,
            serve::Outcome::kCompleted);
  EXPECT_EQ(core.submit(test_matrix(48, 6)).response.get().outcome,
            serve::Outcome::kCompleted);

  ASSERT_TRUE(core.drain());
  EXPECT_TRUE(core.stats().accounted());
}

TEST(ServeTest, ReopenedBreakerCountsSecondTrip) {
  serve::ServeOptions sopts;
  sopts.breaker_threshold = 1;
  sopts.breaker_open_ms = 100.0;
  sopts.coalesce_window_ms = 0.0;
  serve::ServeCore core(sopts);

  auto bad_submit = [&] {
    Matrix bad = test_matrix(48, 5);
    bad.view()(0, 0) = std::numeric_limits<double>::quiet_NaN();
    return core.submit(std::move(bad)).response.get();
  };
  EXPECT_EQ(bad_submit().outcome, serve::Outcome::kFailed);
  EXPECT_EQ(core.stats().breaker_trips, 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  // The half-open probe fails -> the breaker reopens and trips again.
  EXPECT_EQ(bad_submit().outcome, serve::Outcome::kFailed);
  EXPECT_EQ(core.stats().breaker_trips, 2);
  EXPECT_TRUE(core.stats().accounted());
}

TEST(ServeTest, DrainResolvesEverythingThenSheds) {
  serve::ServeCore core;
  std::vector<serve::Ticket> tickets;
  for (int i = 0; i < 4; ++i) {
    tickets.push_back(core.submit(test_matrix(48, 11)));
  }
  ASSERT_TRUE(core.drain(/*timeout_ms=*/60000.0));
  for (auto& t : tickets) {
    EXPECT_EQ(t.response.get().outcome, serve::Outcome::kCompleted);
  }
  // Post-drain submissions reject instead of queueing forever.
  const serve::Response late = core.submit(test_matrix(48, 12)).response.get();
  EXPECT_EQ(late.outcome, serve::Outcome::kRejected);
  EXPECT_EQ(late.code, ErrorCode::kOverloaded);
  EXPECT_TRUE(core.stats().accounted());
}

TEST(ServeTest, AdmitFaultSiteRejectsTyped) {
  fault::Scoped arm("serve_admit", /*trigger=*/1, /*fires=*/1);
  serve::ServeCore core;
  const serve::Response r = core.submit(test_matrix(48, 3)).response.get();
  EXPECT_EQ(r.outcome, serve::Outcome::kRejected);
  EXPECT_EQ(r.code, ErrorCode::kFaultInjected);  // says WHY it was shed
  // Disarmed site: back to normal service.
  fault::disarm();
  EXPECT_EQ(core.submit(test_matrix(48, 3)).response.get().outcome,
            serve::Outcome::kCompleted);
  EXPECT_TRUE(core.stats().accounted());
}

TEST(ServeTest, StatsPercentilesPopulated) {
  serve::ServeCore core;
  std::vector<serve::Ticket> tickets;
  for (int i = 0; i < 8; ++i) {
    tickets.push_back(core.submit(test_matrix(48, 20 + i)));
  }
  for (auto& t : tickets) t.response.get();
  const serve::ServeStats s = core.stats();
  EXPECT_GT(s.p50_ms, 0.0);
  EXPECT_GE(s.p95_ms, s.p50_ms);
  EXPECT_GE(s.p99_ms, s.p95_ms);
  EXPECT_EQ(s.queue_depth, 0);
  EXPECT_GE(s.queue_depth_hwm, 1);
}

// ---------------------------------------------------------------- wire --

TEST(ServeWireTest, ParsesSolveLine) {
  const auto p = serve::wire::parse_line(
      "solve id=7 n=96 vectors=0 deadline_ms=12.5 degrade=0 seed=99");
  ASSERT_EQ(p.kind, serve::wire::ParsedRequest::kSolve);
  EXPECT_EQ(p.id, 7);
  EXPECT_EQ(p.n, 96);
  EXPECT_EQ(p.seed, 99u);
  EXPECT_FALSE(p.opts.vectors);
  EXPECT_FALSE(p.opts.allow_degraded);
  EXPECT_DOUBLE_EQ(p.opts.deadline_ms, 12.5);
}

TEST(ServeWireTest, SolveDefaults) {
  const auto p = serve::wire::parse_line("solve n=48");
  ASSERT_EQ(p.kind, serve::wire::ParsedRequest::kSolve);
  EXPECT_EQ(p.id, 0);
  EXPECT_EQ(p.seed, 1u);
  EXPECT_TRUE(p.opts.vectors);
  EXPECT_TRUE(p.opts.allow_degraded);
  EXPECT_DOUBLE_EQ(p.opts.deadline_ms, 0.0);
}

TEST(ServeWireTest, RejectsMalformedLines) {
  EXPECT_EQ(serve::wire::parse_line("").kind, serve::wire::ParsedRequest::kBad);
  EXPECT_EQ(serve::wire::parse_line("frobnicate n=4").kind,
            serve::wire::ParsedRequest::kBad);
  EXPECT_EQ(serve::wire::parse_line("solve").kind,
            serve::wire::ParsedRequest::kBad);
  EXPECT_EQ(serve::wire::parse_line("solve n=0").kind,
            serve::wire::ParsedRequest::kBad);
  EXPECT_EQ(serve::wire::parse_line("solve n=abc").kind,
            serve::wire::ParsedRequest::kBad);
  EXPECT_EQ(serve::wire::parse_line("solve n=8 vectors=2").kind,
            serve::wire::ParsedRequest::kBad);
  EXPECT_EQ(serve::wire::parse_line("solve n=8 deadline_ms=-1").kind,
            serve::wire::ParsedRequest::kBad);
}

TEST(ServeWireTest, ParsesControlVerbs) {
  EXPECT_EQ(serve::wire::parse_line("stats").kind,
            serve::wire::ParsedRequest::kStats);
  EXPECT_EQ(serve::wire::parse_line("drain").kind,
            serve::wire::ParsedRequest::kDrain);
  EXPECT_EQ(serve::wire::parse_line("quit").kind,
            serve::wire::ParsedRequest::kQuit);
}

TEST(ServeWireTest, FormatsOkAndErrResponses) {
  serve::Response ok;
  ok.outcome = serve::Outcome::kCompleted;
  ok.result.eigenvalues = {-1.5, 0.25, 3.0};
  ok.request_id = 41;
  const std::string ok_line = serve::wire::format_response(4, ok);
  EXPECT_NE(
      ok_line.find("ok id=4 req=41 outcome=completed mode=standard n=3"),
      std::string::npos);
  EXPECT_NE(ok_line.find("w_min=-1.5"), std::string::npos);
  EXPECT_NE(ok_line.find("w_max=3"), std::string::npos);

  serve::Response err;
  err.outcome = serve::Outcome::kRejected;
  err.code = ErrorCode::kOverloaded;
  err.message = "queue full: \"overflow\"";
  err.request_id = 42;
  const std::string err_line = serve::wire::format_response(5, err);
  EXPECT_NE(err_line.find("err id=5 req=42 outcome=rejected code=overloaded"),
            std::string::npos);
  // Embedded quotes are neutralized so the line stays parseable.
  EXPECT_NE(err_line.find("'overflow'"), std::string::npos);
}

TEST(ServeWireTest, FormatsStatsWithAccounting) {
  serve::ServeStats s;
  s.submitted = 3;
  s.completed = 2;
  s.rejected = 1;
  const std::string line = serve::wire::format_stats(s);
  EXPECT_EQ(line.rfind("stats {", 0), 0u);
  EXPECT_NE(line.find("\"submitted\":3"), std::string::npos);
  EXPECT_NE(line.find("\"accounted\":true"), std::string::npos);
}


TEST(ServeTest, ReservoirAndHistogramPercentilesAgreeWithinOneBucket) {
  serve::ServeCore core;
  std::vector<serve::Ticket> tickets;
  for (int i = 0; i < 32; ++i) {
    tickets.push_back(core.submit(test_matrix(48, 100 + i)));
  }
  for (auto& t : tickets) t.response.get();
  const serve::ServeStats s = core.stats();
  ASSERT_GT(s.hist_p50_ms, 0.0);
  EXPECT_GE(s.hist_p95_ms, s.hist_p50_ms);
  EXPECT_GE(s.hist_p99_ms, s.hist_p95_ms);

  // Both estimators summarize the same resolutions: the histogram reports
  // the upper bound of the percentile's ladder bucket, so it must land in
  // the same bucket as the reservoir value or the one adjacent (ties at a
  // bucket edge can fall either way).
  int nb = 0;
  const double* bounds = obs::latency_bounds_ms(&nb);
  const auto ladder_index = [&](double v) {
    for (int i = 0; i < nb; ++i) {
      if (v <= bounds[i]) return i;
    }
    return nb - 1;
  };
  const auto expect_close = [&](double reservoir_p, double hist_p,
                                const char* which) {
    EXPECT_LE(std::abs(ladder_index(reservoir_p) - ladder_index(hist_p)), 1)
        << which << ": reservoir=" << reservoir_p << "ms hist=" << hist_p
        << "ms";
  };
  expect_close(s.p50_ms, s.hist_p50_ms, "p50");
  expect_close(s.p95_ms, s.hist_p95_ms, "p95");
  expect_close(s.p99_ms, s.hist_p99_ms, "p99");
}

TEST(ServeTest, MintsUniqueRequestIdsIncludingRejects) {
  serve::ServeOptions sopts;
  sopts.queue_capacity = 2;
  sopts.coalesce_window_ms = 50.0;  // hold the queue so extras reject
  serve::ServeCore core(sopts);
  std::vector<serve::Ticket> tickets;
  for (int i = 0; i < 6; ++i) {
    tickets.push_back(core.submit(test_matrix(32, 7 + i)));
  }
  std::set<long long> ids;
  int rejected = 0;
  for (auto& t : tickets) {
    const serve::Response r = t.response.get();
    EXPECT_GT(r.request_id, 0) << "every response carries a minted id";
    ids.insert(r.request_id);
    if (r.outcome == serve::Outcome::kRejected) ++rejected;
  }
  EXPECT_EQ(ids.size(), tickets.size()) << "request ids must be unique";
  EXPECT_GT(rejected, 0) << "capacity 2 with 6 submits must shed some";
}

TEST(ServeTest, ArmedTraceSpansCarryTheOwningRequestId) {
  obs::clear_trace();
  obs::arm_tracing();
  std::set<long long> ids;
  {
    serve::ServeCore core;
    std::vector<serve::Ticket> tickets;
    for (int i = 0; i < 4; ++i) {
      tickets.push_back(core.submit(test_matrix(40, 60 + i)));
    }
    for (auto& t : tickets) {
      const serve::Response r = t.response.get();
      ASSERT_EQ(r.outcome, serve::Outcome::kCompleted);
      ids.insert(r.request_id);
    }
    core.drain();
  }
  obs::disarm_tracing();

  // Every per-problem span the service executed must be tagged with one of
  // the ids handed back on the wire — the join a trace consumer performs.
  int problem_spans = 0;
  for (const obs::SpanEvent& e : obs::trace_snapshot()) {
    if (std::string(e.name) != "batch.problem") continue;
    ++problem_spans;
    EXPECT_EQ(ids.count(e.request_id), 1u)
        << "batch.problem span tagged with unknown request "
        << e.request_id;
  }
  EXPECT_EQ(problem_spans, 4);
  obs::clear_trace();
}

TEST(ServeWireTest, ParsesMetricsVerbAndFormatsOpenMetrics) {
  EXPECT_EQ(serve::wire::parse_line("metrics").kind,
            serve::wire::ParsedRequest::kMetrics);
  // Touch the serve layer so the canonical series exist and are non-empty.
  {
    serve::ServeCore core;
    core.submit(test_matrix(32, 3)).response.get();
  }
  const std::string text = serve::wire::format_metrics();
  EXPECT_NE(text.find("# TYPE tdg_serve_latency_ms histogram"),
            std::string::npos);
  EXPECT_NE(text.find("tdg_serve_latency_ms_bucket{bucket=\"all\""),
            std::string::npos);
  EXPECT_NE(text.find("tdg_serve_submitted_total "), std::string::npos);
  // "# EOF" both terminates the OpenMetrics payload and frames the verb's
  // multi-line response on the wire.
  ASSERT_GE(text.size(), 6u);
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
}

}  // namespace
}  // namespace tdg
