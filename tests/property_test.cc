// Property-based sweeps over the whole pipeline: orthogonal invariants,
// spectra preservation across methods and structured inputs, and scaling
// behaviour. These tests complement the per-module unit tests by checking
// mathematical invariants on randomised parameter grids.

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/tridiag.h"
#include "eig/drivers.h"
#include "eig/eig.h"
#include "la/blas.h"
#include "la/generate.h"

namespace tdg {
namespace {

// Eigenvalues through the fastest values-only path.
std::vector<double> spectrum(ConstMatrixView a, const TridiagOptions& topts) {
  TridiagOptions o = topts;
  o.want_factors = false;
  TridiagResult t = tridiagonalize(a, o);
  eig::steqr(t.d, t.e, nullptr);
  return t.d;
}

class SpectrumInvarianceTest
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(SpectrumInvarianceTest, TwoStageMatchesDirect) {
  const auto [n, b, k, threads] = GetParam();
  Rng rng(7000 + n * 3 + b * 5 + k);
  const Matrix a = random_symmetric(n, rng);

  TridiagOptions direct;
  direct.method = TridiagMethod::kDirect;
  const auto ref = spectrum(a.view(), direct);

  TridiagOptions two;
  two.method = TridiagMethod::kTwoStageDbbr;
  two.b = b;
  two.k = k;
  two.bc_threads = threads;
  const auto got = spectrum(a.view(), two);

  for (index_t i = 0; i < n; ++i) {
    EXPECT_NEAR(got[static_cast<size_t>(i)], ref[static_cast<size_t>(i)],
                1e-10 * n)
        << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SpectrumInvarianceTest,
    ::testing::Values(std::tuple{30, 2, 4, 1}, std::tuple{30, 4, 8, 2},
                      std::tuple{47, 4, 4, 3}, std::tuple{47, 8, 16, 4},
                      std::tuple{63, 16, 16, 2}, std::tuple{64, 8, 32, 5},
                      std::tuple{80, 4, 16, 2}, std::tuple{33, 32, 32, 2},
                      std::tuple{96, 8, 24, 3}));

TEST(Property, SpectrumShiftEquivariance) {
  // eig(A + c I) = eig(A) + c for the whole pipeline.
  Rng rng(1);
  const index_t n = 40;
  Matrix a = random_symmetric(n, rng);
  TridiagOptions opts;
  opts.b = 4;
  opts.k = 8;
  const auto w0 = spectrum(a.view(), opts);
  const double c = 3.75;
  for (index_t i = 0; i < n; ++i) a(i, i) += c;
  const auto w1 = spectrum(a.view(), opts);
  for (index_t i = 0; i < n; ++i) {
    EXPECT_NEAR(w1[static_cast<size_t>(i)], w0[static_cast<size_t>(i)] + c,
                1e-10 * n);
  }
}

TEST(Property, SpectrumScaleEquivariance) {
  Rng rng(2);
  const index_t n = 36;
  Matrix a = random_symmetric(n, rng);
  TridiagOptions opts;
  opts.b = 8;
  opts.k = 16;
  const auto w0 = spectrum(a.view(), opts);
  const double s = -2.5;
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < n; ++i) a(i, j) *= s;
  }
  auto w1 = spectrum(a.view(), opts);
  // Negative scale reverses the order.
  std::reverse(w1.begin(), w1.end());
  for (index_t i = 0; i < n; ++i) {
    EXPECT_NEAR(w1[static_cast<size_t>(i)], s * w0[static_cast<size_t>(i)],
                1e-10 * n);
  }
}

TEST(Property, PlantedSpectrumRecovered) {
  // Clustered + spread spectra synthesised exactly, recovered by eigh.
  Rng rng(3);
  std::vector<double> evals;
  for (int i = 0; i < 10; ++i) evals.push_back(1.0);            // cluster
  for (int i = 0; i < 10; ++i) evals.push_back(2.0 + i * 1e-6); // near-cluster
  for (int i = 0; i < 12; ++i) evals.push_back(-50.0 + 9.0 * i);
  std::sort(evals.begin(), evals.end());
  const Matrix a = symmetric_with_spectrum(evals, rng);

  eig::EvdOptions opts;
  opts.tridiag.method = TridiagMethod::kTwoStageDbbr;
  opts.tridiag.b = 4;
  opts.tridiag.k = 8;
  const eig::EvdResult r = eig::eigh(a.view(), opts);
  for (std::size_t i = 0; i < evals.size(); ++i) {
    EXPECT_NEAR(r.eigenvalues[i], evals[i], 1e-9) << i;
  }
  EXPECT_LT(orthogonality_error(r.eigenvectors.view()),
            1e-10 * static_cast<double>(evals.size()));
}

TEST(Property, GramMatrixIsPsd) {
  // Gram matrices are PSD: every eigenvalue >= -tol.
  Rng rng(4);
  const index_t n = 48, m = 30;  // rank-deficient (rank <= 30)
  const Matrix x = random_matrix(n, m, rng);
  Matrix g(n, n);
  la::gemm(Trans::kNo, Trans::kTrans, 1.0, x.view(), x.view(), 0.0, g.view());
  TridiagOptions opts;
  opts.b = 8;
  opts.k = 16;
  const auto w = spectrum(g.view(), opts);
  EXPECT_GT(w.front(), -1e-9);
  // Rank deficiency: at least n - m numerically zero eigenvalues.
  const index_t zeros = static_cast<index_t>(
      std::count_if(w.begin(), w.end(), [](double x_) { return std::abs(x_) < 1e-8; }));
  EXPECT_GE(zeros, n - m);
}

TEST(Property, EighVectorsDiagonalizeExactly) {
  // V^T A V must be diagonal with the eigenvalues on the diagonal.
  Rng rng(5);
  const index_t n = 32;
  const Matrix a = random_symmetric(n, rng);
  eig::EvdOptions opts;
  opts.tridiag.b = 4;
  opts.tridiag.k = 8;
  const eig::EvdResult r = eig::eigh(a.view(), opts);

  Matrix av(n, n);
  la::gemm(Trans::kNo, Trans::kNo, 1.0, a.view(), r.eigenvectors.view(), 0.0,
           av.view());
  Matrix vav(n, n);
  la::gemm(Trans::kTrans, Trans::kNo, 1.0, r.eigenvectors.view(), av.view(),
           0.0, vav.view());
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < n; ++i) {
      const double expect =
          (i == j) ? r.eigenvalues[static_cast<size_t>(j)] : 0.0;
      EXPECT_NEAR(vav(i, j), expect, 1e-10 * n);
    }
  }
}

TEST(Property, HugeAndTinyScalesSurvive) {
  // Scaling robustness: entries around 1e150 and 1e-150 must not overflow
  // or flush the pipeline (nrm2 is scaled; larfg guards tiny norms).
  Rng rng(6);
  const index_t n = 24;
  for (const double scale : {1e150, 1e-150}) {
    Matrix a = random_symmetric(n, rng);
    for (index_t j = 0; j < n; ++j) {
      for (index_t i = 0; i < n; ++i) a(i, j) *= scale;
    }
    TridiagOptions opts;
    opts.b = 4;
    opts.k = 8;
    const auto w = spectrum(a.view(), opts);
    for (double x : w) EXPECT_TRUE(std::isfinite(x));
    EXPECT_GT(std::abs(w.front()) + std::abs(w.back()), 0.0);
  }
}

TEST(Property, BandMatrixInputShortCircuitsStage1Work) {
  // A matrix already in band form must pass stage 1 unchanged
  // (all panel reflectors are identity) and still reduce correctly.
  Rng rng(7);
  const index_t n = 40, b = 5;
  const Matrix a = random_symmetric_band(n, b, rng);
  TridiagOptions opts;
  opts.method = TridiagMethod::kTwoStageDbbr;
  opts.b = b;
  opts.k = 10;
  TridiagOptions direct;
  direct.method = TridiagMethod::kDirect;
  const auto w1 = spectrum(a.view(), opts);
  const auto w2 = spectrum(a.view(), direct);
  for (index_t i = 0; i < n; ++i) {
    EXPECT_NEAR(w1[static_cast<size_t>(i)], w2[static_cast<size_t>(i)],
                1e-11 * n);
  }
}

}  // namespace
}  // namespace tdg
