// Tests for the execution-mode axis (EvdOptions::mode) — the mixed
// FP32-compute / FP64-refine engine, the memory-lean values-only path, and
// their surfacing through the batch, serve, and wire layers:
//
//   - mixed-precision results meet the acceptance bound
//     (||A v - w v|| <= 50 * eps_fp64 * ||A||_F) on well- and
//     ill-conditioned inputs: Wilkinson W21, tightly clustered spectra,
//     graded matrices spanning 12 decades
//   - Ogita–Aishima refinement converges from eps_fp32-sized perturbations
//     of exact FP64 eigenpairs
//   - a fault-injected refinement failure ("evd_refine") falls back to the
//     full-FP64 rerun exactly once: recovery == "fp32->fp64", effective
//     mode kStandard, evd.fp32_fallbacks advances by one, and the result
//     is bitwise identical to a standard-mode solve
//   - values-only peak workspace is strictly below the standard path at
//     the same n, measured (la/workspace.h), not argued
//   - the default FP64 standard path is bitwise identical across thread
//     counts (the mode axis must not perturb the legacy path)
//   - wire protocol: mode=/prec= parse, agree/conflict rules, strict
//     unknown-field rejection
//   - serve: the opt-in precision rung degrades under queue pressure while
//     KEEPING eigenvectors, accounted in stats().precision_degraded
//   - batch: per-slot modes solve heterogeneous mode mixes in one call
//   - plan-cache keys for default FP64 shapes are unchanged (old cache
//     files stay loadable); only kFp32 extends the key
//
// gtest_discover_tests runs each case in its own process, so global
// counters (evd.fp32_fallbacks) and the workspace peak are fresh per case.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include <tdg/eig.h>
#include <tdg/serve.h>

#include "common/fault.h"
#include "common/rng.h"
#include "eig/refine.h"
#include "la/blas.h"
#include "la/generate.h"
#include "la/workspace.h"
#include "obs/metrics.h"
#include "plan/plan_cache.h"
#include "serve/wire.h"

namespace tdg {
namespace {

// ||A||_F over the full dense matrix.
double fro_norm(ConstMatrixView a) {
  double s = 0.0;
  for (index_t j = 0; j < a.cols; ++j) {
    for (index_t i = 0; i < a.rows; ++i) s += a(i, j) * a(i, j);
  }
  return std::sqrt(s);
}

// max_i ||A v_i - w_i v_i||_2 — the acceptance residual of the mixed
// engine, recomputed independently of the library's own check.
double evd_residual(ConstMatrixView a, ConstMatrixView v,
                    const std::vector<double>& w) {
  Matrix av(a.rows, v.cols);
  la::gemm(Trans::kNo, Trans::kNo, 1.0, a, v, 0.0, av.view());
  double worst = 0.0;
  for (index_t j = 0; j < v.cols; ++j) {
    double col = 0.0;
    for (index_t i = 0; i < a.rows; ++i) {
      const double r = av(i, j) - w[static_cast<size_t>(j)] * v(i, j);
      col += r * r;
    }
    worst = std::max(worst, std::sqrt(col));
  }
  return worst;
}

// The acceptance bound from the ISSUE: 50 * eps_fp64 * ||A||_F, matching
// the refinement's default tolerance.
double acceptance_bound(ConstMatrixView a) {
  return 50.0 * std::numeric_limits<double>::epsilon() * fro_norm(a);
}

// Wilkinson W_n^+ (odd n): diag |m, m-1, ..., 1, 0, 1, ..., m|, off-diag 1.
// Pairs of eigenvalues agree to many digits — the classic clustered
// stress case for eigenvector refinement.
Matrix wilkinson(index_t n) {
  Matrix a(n, n);
  const index_t m = (n - 1) / 2;
  for (index_t i = 0; i < n; ++i) {
    a(i, i) = static_cast<double>(std::abs(static_cast<long long>(i - m)));
    if (i + 1 < n) {
      a(i + 1, i) = 1.0;
      a(i, i + 1) = 1.0;
    }
  }
  return a;
}

void expect_mixed_meets_bound(const Matrix& a, const char* what) {
  eig::EvdOptions opts;
  opts.mode = plan::EvdMode::kMixedPrecision;
  const eig::EvdResult res = eig::eigh(a.view(), opts);
  ASSERT_EQ(res.eigenvectors.cols(), a.rows()) << what;
  // Either the FP32+refine pipeline converged (mode stays mixed) or the
  // driver recovered in full FP64 (mode standard, recovery recorded) —
  // both must land inside the acceptance bound.
  if (res.mode == plan::EvdMode::kMixedPrecision) {
    EXPECT_TRUE(res.recovery.empty()) << what << ": " << res.recovery;
    EXPECT_GE(res.refine_iters, 1) << what;
  } else {
    EXPECT_EQ(res.mode, plan::EvdMode::kStandard) << what;
    EXPECT_EQ(res.recovery.rfind("fp32->fp64", 0), 0u)
        << what << ": " << res.recovery;
  }
  EXPECT_LE(evd_residual(a.view(), res.eigenvectors.view(), res.eigenvalues),
            acceptance_bound(a.view()))
      << what;
}

TEST(MixedPrecision, ResidualWithinBoundOnRandomSymmetric) {
  Rng rng(101);
  expect_mixed_meets_bound(random_symmetric(96, rng), "random n=96");
}

TEST(MixedPrecision, ConvergesOnWilkinson) {
  expect_mixed_meets_bound(wilkinson(21), "wilkinson W21+");
  expect_mixed_meets_bound(wilkinson(65), "wilkinson W65+");
}

TEST(MixedPrecision, ConvergesOnClusteredSpectrum) {
  // Three tight clusters separated by O(1): gaps inside a cluster are
  // ~1e-10, far below what FP32 can resolve — the refinement has to
  // repair those directions in FP64.
  Rng rng(202);
  std::vector<double> evals;
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 16; ++i) {
      evals.push_back(static_cast<double>(c) + 1e-10 * i);
    }
  }
  expect_mixed_meets_bound(symmetric_with_spectrum(evals, rng), "clustered");
}

TEST(MixedPrecision, ConvergesOnGradedSpectrum) {
  // Geometrically graded over 12 decades; the small eigenvalues are
  // entirely below the FP32 noise floor relative to ||A||.
  Rng rng(303);
  std::vector<double> evals;
  const int n = 48;
  for (int i = 0; i < n; ++i) {
    evals.push_back(std::pow(10.0, -12.0 * i / (n - 1)));
  }
  expect_mixed_meets_bound(symmetric_with_spectrum(evals, rng), "graded");
}

TEST(MixedPrecision, RefinementConvergesFromFp32SizedPerturbation) {
  // Drive refine_eigenpairs directly: exact FP64 pairs, perturbed at the
  // eps_fp32 scale (the error profile the FP32 stage hands over), must
  // come back under the default acceptance threshold in <= 2 sweeps.
  Rng rng(404);
  const index_t n = 64;
  const Matrix a = random_symmetric(n, rng);
  eig::EvdResult exact = eig::eigh(a.view());
  ASSERT_EQ(exact.eigenvectors.cols(), n);

  std::vector<double> w = exact.eigenvalues;
  Matrix x(n, n);
  copy(exact.eigenvectors.view(), x.view());
  const double eps32 = 1.19209290e-7;  // FLT_EPSILON
  Rng noise(405);
  for (index_t j = 0; j < n; ++j) {
    w[static_cast<size_t>(j)] += eps32 * noise.normal();
    for (index_t i = 0; i < n; ++i) x(i, j) += eps32 * noise.normal();
  }

  const eig::RefineOutcome out =
      eig::refine_eigenpairs(a.view(), w, x.view(), plan::RefineOptions{});
  EXPECT_TRUE(out.converged) << "residual " << out.residual << " tol "
                             << out.tol;
  EXPECT_LE(out.iters, 2);
  EXPECT_LE(evd_residual(a.view(), x.view(), w), acceptance_bound(a.view()));
}

TEST(MixedPrecision, RefineFaultFallsBackToFp64Once) {
  Rng rng(505);
  const index_t n = 64;
  const Matrix a = random_symmetric(n, rng);

  auto* fallbacks = obs::Registry::global().counter("evd.fp32_fallbacks",
                                                    obs::Gating::kAlways);
  const long long before = fallbacks->value();

  eig::EvdOptions mixed;
  mixed.mode = plan::EvdMode::kMixedPrecision;
  eig::EvdResult res;
  {
    fault::Scoped arm("evd_refine", /*trigger=*/1, /*fires=*/-1);
    res = eig::eigh(a.view(), mixed);
  }
  EXPECT_EQ(res.recovery, "fp32->fp64");
  EXPECT_EQ(res.mode, plan::EvdMode::kStandard);
  EXPECT_EQ(fallbacks->value(), before + 1);

  // The FP64 rerun must be bitwise the standard-mode solve: the failed
  // FP32 attempt leaves no residue in the result.
  const eig::EvdResult ref = eig::eigh(a.view());
  ASSERT_EQ(res.eigenvalues.size(), ref.eigenvalues.size());
  for (size_t i = 0; i < ref.eigenvalues.size(); ++i) {
    EXPECT_EQ(res.eigenvalues[i], ref.eigenvalues[i]) << "i=" << i;
  }
  ASSERT_EQ(res.eigenvectors.cols(), ref.eigenvectors.cols());
  for (index_t j = 0; j < ref.eigenvectors.cols(); ++j) {
    for (index_t i = 0; i < ref.eigenvectors.rows(); ++i) {
      EXPECT_EQ(res.eigenvectors(i, j), ref.eigenvectors(i, j))
          << "(" << i << "," << j << ")";
    }
  }
}

TEST(MixedPrecision, RefineFaultAccountedOnceUnderServe) {
  // One mixed-mode request through the service with refinement failing
  // every time: the request still completes (the driver's own fp32->fp64
  // rerun handles it — the serve retry ladder must NOT fire for it) and
  // the fallback counter advances exactly once.
  auto* fallbacks = obs::Registry::global().counter("evd.fp32_fallbacks",
                                                    obs::Gating::kAlways);
  const long long before = fallbacks->value();

  fault::Scoped arm("evd_refine", /*trigger=*/1, /*fires=*/-1);
  serve::ServeCore core;
  Rng rng(606);
  serve::RequestOptions ropts;
  ropts.mode = plan::EvdMode::kMixedPrecision;
  serve::Ticket t = core.submit(random_symmetric(64, rng), ropts);
  const serve::Response r = t.response.get();
  ASSERT_EQ(r.outcome, serve::Outcome::kCompleted) << r.message;
  EXPECT_EQ(r.retries, 0);
  EXPECT_EQ(r.mode, plan::EvdMode::kStandard);  // effective, post-fallback
  EXPECT_EQ(r.result.recovery, "fp32->fp64");
  EXPECT_EQ(fallbacks->value(), before + 1);

  ASSERT_TRUE(core.drain());
  const serve::ServeStats s = core.stats();
  EXPECT_EQ(s.completed, 1);
  EXPECT_EQ(s.retries, 0);
  EXPECT_TRUE(s.accounted());
}

TEST(ValuesOnly, PeakWorkspaceStrictlyBelowStandard) {
  Rng rng(707);
  const index_t n = 512;
  const Matrix a = random_symmetric(n, rng);

  la::workspace_reset_peak();
  const eig::EvdResult standard = eig::eigh(a.view());
  const std::size_t peak_standard = la::workspace_peak_bytes();
  ASSERT_EQ(standard.eigenvectors.cols(), n);
  EXPECT_EQ(standard.peak_workspace_bytes, peak_standard);

  la::workspace_reset_peak();
  eig::EvdOptions vo;
  vo.mode = plan::EvdMode::kValuesOnly;
  const eig::EvdResult values = eig::eigh(a.view(), vo);
  const std::size_t peak_values = la::workspace_peak_bytes();
  EXPECT_EQ(values.mode, plan::EvdMode::kValuesOnly);
  EXPECT_EQ(values.eigenvectors.cols(), 0);  // Q provably skipped
  EXPECT_EQ(values.peak_workspace_bytes, peak_values);

  // The memory claim, measured: strictly below, and by a real margin —
  // the standard path's Q1/Q2/back-transform buffers are O(n^2) each.
  EXPECT_LT(peak_values, peak_standard);
  EXPECT_LT(peak_values, peak_standard - static_cast<std::size_t>(n) * n *
                                             sizeof(double));

  // Same spectrum either way.
  ASSERT_EQ(values.eigenvalues.size(), standard.eigenvalues.size());
  for (size_t i = 0; i < standard.eigenvalues.size(); ++i) {
    EXPECT_NEAR(values.eigenvalues[i], standard.eigenvalues[i], 1e-10 * n);
  }
}

TEST(StandardMode, Fp64BitwiseIdenticalAcrossThreadCounts) {
  // The mode axis must leave the legacy FP64 path untouched — including
  // its determinism guarantee across thread budgets.
  Rng rng(808);
  const index_t n = 96;
  const Matrix a = random_symmetric(n, rng);

  eig::EvdOptions one;
  one.tridiag.threads = 1;
  one.tridiag.bc_threads = 1;
  const eig::EvdResult r1 = eig::eigh(a.view(), one);

  eig::EvdOptions four;
  four.tridiag.threads = 4;
  four.tridiag.bc_threads = 4;
  const eig::EvdResult r4 = eig::eigh(a.view(), four);

  ASSERT_EQ(r1.eigenvalues.size(), r4.eigenvalues.size());
  for (size_t i = 0; i < r1.eigenvalues.size(); ++i) {
    EXPECT_EQ(r1.eigenvalues[i], r4.eigenvalues[i]) << "i=" << i;
  }
  ASSERT_EQ(r1.eigenvectors.cols(), r4.eigenvectors.cols());
  for (index_t j = 0; j < r1.eigenvectors.cols(); ++j) {
    for (index_t i = 0; i < r1.eigenvectors.rows(); ++i) {
      EXPECT_EQ(r1.eigenvectors(i, j), r4.eigenvectors(i, j))
          << "(" << i << "," << j << ")";
    }
  }
}

TEST(WireMode, ParsesModeAndPrec) {
  using serve::wire::ParsedRequest;
  ParsedRequest p = serve::wire::parse_line("solve id=1 n=8 mode=values");
  ASSERT_EQ(p.kind, ParsedRequest::kSolve);
  EXPECT_EQ(p.opts.mode, plan::EvdMode::kValuesOnly);

  p = serve::wire::parse_line("solve id=2 n=8 mode=mixed");
  ASSERT_EQ(p.kind, ParsedRequest::kSolve);
  EXPECT_EQ(p.opts.mode, plan::EvdMode::kMixedPrecision);

  // prec=fp32 is the precision-axis spelling of mode=mixed.
  p = serve::wire::parse_line("solve id=3 n=8 prec=fp32");
  ASSERT_EQ(p.kind, ParsedRequest::kSolve);
  EXPECT_EQ(p.opts.mode, plan::EvdMode::kMixedPrecision);

  // Agreement is tolerated; defaults parse as standard.
  p = serve::wire::parse_line("solve id=4 n=8 mode=mixed prec=fp32");
  ASSERT_EQ(p.kind, ParsedRequest::kSolve);
  EXPECT_EQ(p.opts.mode, plan::EvdMode::kMixedPrecision);
  p = serve::wire::parse_line("solve id=5 n=8 prec=fp64");
  ASSERT_EQ(p.kind, ParsedRequest::kSolve);
  EXPECT_EQ(p.opts.mode, plan::EvdMode::kStandard);
}

TEST(WireMode, RejectsConflictsAndUnknownFields) {
  using serve::wire::ParsedRequest;
  EXPECT_EQ(serve::wire::parse_line("solve id=1 n=8 mode=standard prec=fp32")
                .kind,
            ParsedRequest::kBad);
  EXPECT_EQ(serve::wire::parse_line("solve id=2 n=8 mode=mixed prec=fp64")
                .kind,
            ParsedRequest::kBad);
  EXPECT_EQ(serve::wire::parse_line("solve id=3 n=8 mode=turbo").kind,
            ParsedRequest::kBad);
  EXPECT_EQ(serve::wire::parse_line("solve id=4 n=8 prec=fp16").kind,
            ParsedRequest::kBad);
  // Strict vocabulary: a typo'd knob is a parse error, never a silent
  // no-op.
  const ParsedRequest typo =
      serve::wire::parse_line("solve id=5 n=8 vectros=0");
  EXPECT_EQ(typo.kind, ParsedRequest::kBad);
  EXPECT_NE(typo.error.find("vectros"), std::string::npos);
  EXPECT_EQ(serve::wire::parse_line("solve id=6 n=8 bare-token").kind,
            ParsedRequest::kBad);
}

TEST(WireMode, OkLineEchoesEffectiveMode) {
  serve::Response r;
  r.outcome = serve::Outcome::kCompleted;
  r.request_id = 7;
  r.mode = plan::EvdMode::kMixedPrecision;
  r.result.eigenvalues = {1.0, 2.0};
  const std::string line = serve::wire::format_response(12, r);
  EXPECT_NE(line.find("mode=mixed"), std::string::npos) << line;
  r.mode = plan::EvdMode::kValuesOnly;
  EXPECT_NE(serve::wire::format_response(12, r).find("mode=values"),
            std::string::npos);
}

TEST(ServeMode, PrecisionRungDegradesKeepingVectors) {
  // With the opt-in precision rung enabled, queue pressure degrades to
  // mixed precision — vectors KEPT — instead of dropping to
  // eigenvalues-only.
  serve::ServeOptions sopts;
  sopts.allow_precision_degraded = true;
  sopts.degrade_queue_depth = 1;
  sopts.coalesce_window_ms = 200.0;  // let the burst pile up first
  serve::ServeCore core(sopts);

  std::vector<serve::Ticket> tickets;
  for (int i = 0; i < 4; ++i) {
    Rng rng(900 + i);
    tickets.push_back(core.submit(random_symmetric(48, rng)));
  }
  int degraded = 0;
  for (auto& t : tickets) {
    const serve::Response r = t.response.get();
    ASSERT_TRUE(r.outcome == serve::Outcome::kCompleted ||
                r.outcome == serve::Outcome::kDegraded)
        << r.message;
    if (r.outcome == serve::Outcome::kDegraded) {
      ++degraded;
      EXPECT_EQ(r.result.eigenvalues.size(), 48u);
      // The precision rung keeps eigenvectors — the whole point.
      EXPECT_EQ(r.result.eigenvectors.cols(), 48);
      EXPECT_NE(r.mode, plan::EvdMode::kValuesOnly);
    }
  }
  EXPECT_GE(degraded, 1);
  ASSERT_TRUE(core.drain());
  const serve::ServeStats s = core.stats();
  EXPECT_EQ(s.degraded, degraded);
  EXPECT_EQ(s.precision_degraded, degraded);
  EXPECT_TRUE(s.accounted());
}

TEST(BatchMode, PerSlotModesSolveHeterogeneousMix) {
  Rng rng(1001);
  const index_t n = 48;
  std::vector<Matrix> problems;
  for (int i = 0; i < 3; ++i) problems.push_back(random_symmetric(n, rng));
  std::vector<ConstMatrixView> views;
  for (const auto& p : problems) views.push_back(p.view());

  eig::BatchOptions bopts;
  bopts.modes = {plan::EvdMode::kStandard, plan::EvdMode::kValuesOnly,
                 plan::EvdMode::kMixedPrecision};
  const eig::BatchResult br = eig::eigh_batched(views, bopts);
  ASSERT_EQ(br.results.size(), 3u);

  EXPECT_EQ(br.results[0].mode, plan::EvdMode::kStandard);
  EXPECT_EQ(br.results[0].eigenvectors.cols(), n);

  EXPECT_EQ(br.results[1].mode, plan::EvdMode::kValuesOnly);
  EXPECT_EQ(br.results[1].eigenvectors.cols(), 0);

  // Mixed either held or recovered to standard; vectors either way.
  EXPECT_TRUE(br.results[2].mode == plan::EvdMode::kMixedPrecision ||
              br.results[2].mode == plan::EvdMode::kStandard);
  EXPECT_EQ(br.results[2].eigenvectors.cols(), n);

  for (const auto& r : br.results) {
    EXPECT_EQ(r.eigenvalues.size(), static_cast<size_t>(n));
  }
}

TEST(PlanCacheMode, DefaultFp64KeysUnchanged) {
  // Only the kFp32 axis extends the cache key, so entries written before
  // the mode axis existed keep resolving for default FP64 requests.
  const std::string standard =
      plan::cache_key(plan::ProblemShape{256, true, 0});
  EXPECT_EQ(standard.find("prec="), std::string::npos) << standard;
  EXPECT_EQ(plan::cache_key(
                plan::ProblemShape{256, true, 0, plan::EvdMode::kStandard}),
            standard);
  // Values-only rides the pre-existing vec=0 axis — no new key component.
  EXPECT_EQ(plan::cache_key(plan::ProblemShape{256, false, 0,
                                               plan::EvdMode::kValuesOnly})
                .find("prec="),
            std::string::npos);
  // Mixed precision (vectors) is the one shape that minted a new axis.
  const std::string mixed = plan::cache_key(
      plan::ProblemShape{256, true, 0, plan::EvdMode::kMixedPrecision});
  EXPECT_NE(mixed.find("|prec=fp32"), std::string::npos) << mixed;
  EXPECT_NE(mixed, standard);
}

}  // namespace
}  // namespace tdg
