// Tests for the GPU device model: kernel-time model sanity, the Section-3.3
// bulge-chasing pipeline model, and — most importantly — fidelity of the
// synthetic trace generators against traces recorded from real runs.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "backtransform/backtransform.h"
#include "common/rng.h"
#include "common/trace.h"
#include "gpumodel/bc_pipeline_model.h"
#include "gpumodel/kernel_model.h"
#include "gpumodel/trace_cost.h"
#include "la/generate.h"
#include "lapack/lapack.h"
#include "sbr/sbr.h"

namespace tdg {
namespace {

using gpumodel::KernelModel;

bool same_ops(const std::vector<trace::Op>& a,
              const std::vector<trace::Op>& b, std::string* why) {
  if (a.size() != b.size()) {
    *why = "size " + std::to_string(a.size()) + " vs " + std::to_string(b.size());
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].kind != b[i].kind || a[i].m != b[i].m || a[i].n != b[i].n ||
        a[i].k != b[i].k || a[i].batch != b[i].batch) {
      *why = "op " + std::to_string(i) + ": " + trace::to_string(a[i]) +
             " vs " + trace::to_string(b[i]);
      return false;
    }
  }
  return true;
}

TEST(KernelModel, FatGemmNearPeakSkinnyGemmFarBelow) {
  const KernelModel m(gpumodel::h100_sxm());
  const index_t n = 16384;
  const double fat = 2.0 * n * n * 2048.0 / m.gemm_seconds(n, n, 2048) / 1e12;
  const double skinny = 2.0 * n * n * 32.0 / m.gemm_seconds(n, n, 32) / 1e12;
  EXPECT_GT(fat, 40.0);   // near the ~50 TFLOPs plateau of Figure 8
  EXPECT_LT(fat, 67.0);   // never above peak
  EXPECT_LT(skinny, 0.6 * fat);
}

TEST(KernelModel, VendorSyr2kReproducesTable1Shape) {
  const KernelModel m(gpumodel::h100_sxm());
  // Monotone in k, saturating; n = 8192 well below n = 32768 at equal k.
  double prev = 0.0;
  for (index_t k : {16, 32, 64, 128, 256, 512, 1024, 2048, 4096}) {
    const double perf = m.vendor_syr2k_tflops(32768, k);
    EXPECT_GT(perf, prev);
    prev = perf;
  }
  EXPECT_LT(prev, 48.5);  // saturation
  EXPECT_LT(m.vendor_syr2k_tflops(8192, 128),
            0.3 * m.vendor_syr2k_tflops(32768, 128));
  // Table-1 anchor points within a reasonable band.
  EXPECT_NEAR(m.vendor_syr2k_tflops(8192, 16), 0.43, 0.15);
  EXPECT_NEAR(m.vendor_syr2k_tflops(32768, 4096), 45.5, 4.0);
}

TEST(KernelModel, Rtx4090SaturatesInstantly) {
  const KernelModel m(gpumodel::rtx4090());
  EXPECT_NEAR(m.vendor_syr2k_tflops(8192, 16), 1.2, 0.2);
  EXPECT_NEAR(m.vendor_syr2k_tflops(32768, 4096), 1.25, 0.1);
}

TEST(KernelModel, LargeNCliff) {
  const KernelModel m(gpumodel::h100_sxm());
  EXPECT_LT(m.vendor_syr2k_tflops(49152, 1024),
            0.5 * m.vendor_syr2k_tflops(32768, 1024));
}

TEST(BcPipeline, ClosedFormMatchesSimulationTrend) {
  // Both must fall steeply from S=1 and flatten out by S ~ 64-128
  // (Figure 5 of the paper: crossover vs MAGMA around S = 32).
  const index_t n = 8192, b = 32;
  double prev_sim = 1e300;
  for (index_t s : {1, 2, 4, 8, 16, 32, 64, 128}) {
    const double sim = gpumodel::bc_simulate(n, b, s).cycles;
    EXPECT_LE(sim, prev_sim);
    prev_sim = sim;
    const double cf = gpumodel::bc_cycles_closed_form(n, b, s);
    EXPECT_GT(cf, 0.0);
  }
  // Unbounded parallelism approaches the paper's 3n - 2 successive bulges.
  const double best = gpumodel::bc_simulate(n, b, n).cycles;
  EXPECT_NEAR(best, 3.0 * n - 2.0, 0.05 * n);
}

TEST(BcPipeline, SerialEqualsTotalBulges) {
  const index_t n = 512, b = 8;
  double total = 0.0;
  for (index_t i = 0; i + 2 < n; ++i) total += (n - i + b - 1) / b;
  const auto st = gpumodel::bc_simulate(n, b, 1);
  EXPECT_DOUBLE_EQ(st.cycles, total);
  EXPECT_DOUBLE_EQ(st.busy_steps, total);
  EXPECT_DOUBLE_EQ(st.avg_parallel, 1.0);
}

TEST(BcPipeline, ThroughputGrowsWithParallelSweeps) {
  const auto spec = gpumodel::h100_sxm();
  double prev = 0.0;
  for (index_t s : {1, 4, 16, 64}) {
    const double gbps = gpumodel::bc_memory_throughput_gbs(spec, 4096, 32, s);
    EXPECT_GT(gbps, prev);
    prev = gbps;
  }
  // Saturates once the pipeline cannot keep more sweeps busy (the "max"
  // point of Figure 12).
  EXPECT_GE(gpumodel::bc_memory_throughput_gbs(spec, 4096, 32, 128), prev);
  EXPECT_LE(prev, spec.dram_gbs);
}

TEST(BcPipeline, GpuBeatsMagmaCpuAtScaleWithEnoughSweeps) {
  const auto spec = gpumodel::h100_sxm();
  const index_t n = 16384, b = 32;
  const double magma = gpumodel::magma_sb2st_seconds(n, b);
  EXPECT_GT(gpumodel::bc_gpu_seconds(spec, n, b, 1), magma);    // serial loses
  EXPECT_LT(gpumodel::bc_gpu_seconds(spec, n, b, 128), magma);  // pipelined wins
}

// ---- Trace-generator fidelity: synthetic == recorded, op by op. ----

class SytrdTraceFidelity
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SytrdTraceFidelity, SyntheticMatchesRecorded) {
  const auto [n, nb] = GetParam();
  Rng rng(1 + n);
  Matrix a = random_symmetric(n, rng);
  std::vector<double> d, e, taus;
  trace::Recorder rec;
  {
    trace::Scope scope(rec);
    lapack::sytrd(a.view(), d, e, taus, nb);
  }
  const auto synth = gpumodel::trace_sytrd(n, nb);
  std::string why;
  EXPECT_TRUE(same_ops(rec.ops(), synth, &why)) << why;
}

INSTANTIATE_TEST_SUITE_P(Sizes, SytrdTraceFidelity,
                         ::testing::Values(std::tuple{40, 8},
                                           std::tuple{64, 16},
                                           std::tuple{65, 8},
                                           std::tuple{30, 16}));

class Sy2sbTraceFidelity
    : public ::testing::TestWithParam<std::tuple<int, int, bool>> {};

TEST_P(Sy2sbTraceFidelity, SyntheticMatchesRecorded) {
  const auto [n, b, square] = GetParam();
  Rng rng(2 + n);
  Matrix a = random_symmetric(n, rng);
  sbr::BandReductionOptions opts;
  opts.use_square_syr2k = square;
  opts.syr2k_block = 16;
  trace::Recorder rec;
  {
    trace::Scope scope(rec);
    sbr::sy2sb(a.view(), b, opts);
  }
  const auto synth = gpumodel::trace_sy2sb(n, b, square, 16);
  std::string why;
  EXPECT_TRUE(same_ops(rec.ops(), synth, &why)) << why;
}

INSTANTIATE_TEST_SUITE_P(Sizes, Sy2sbTraceFidelity,
                         ::testing::Values(std::tuple{48, 8, false},
                                           std::tuple{48, 8, true},
                                           std::tuple{65, 16, false},
                                           std::tuple{37, 5, true},
                                           std::tuple{40, 8, false}));

class DbbrTraceFidelity
    : public ::testing::TestWithParam<std::tuple<int, int, int, bool>> {};

TEST_P(DbbrTraceFidelity, SyntheticMatchesRecorded) {
  const auto [n, b, k, square] = GetParam();
  Rng rng(3 + n);
  Matrix a = random_symmetric(n, rng);
  sbr::BandReductionOptions opts;
  opts.b = b;
  opts.k = k;
  opts.use_square_syr2k = square;
  opts.syr2k_block = 16;
  trace::Recorder rec;
  {
    trace::Scope scope(rec);
    sbr::dbbr(a.view(), opts);
  }
  const auto synth = gpumodel::trace_dbbr(n, b, k, square, 16);
  std::string why;
  EXPECT_TRUE(same_ops(rec.ops(), synth, &why)) << why;
}

INSTANTIATE_TEST_SUITE_P(Sizes, DbbrTraceFidelity,
                         ::testing::Values(std::tuple{64, 8, 32, false},
                                           std::tuple{64, 8, 32, true},
                                           std::tuple{65, 8, 16, false},
                                           std::tuple{51, 4, 16, true},
                                           std::tuple{96, 16, 32, false}));

TEST(BackTransformTraceFidelity, AllVariants) {
  Rng rng(4);
  const index_t n = 60, b = 4, nc = 7;
  Matrix a = random_symmetric(n, rng);
  sbr::BandFactor f = sbr::sy2sb(a.view(), b);

  for (int variant = 0; variant < 3; ++variant) {
    Matrix c = random_matrix(n, nc, rng);
    trace::Recorder rec;
    std::vector<trace::Op> synth;
    {
      trace::Scope scope(rec);
      if (variant == 0) {
        bt::apply_q1_conventional(f, c.view());
      } else if (variant == 1) {
        bt::apply_q1_recursive(f, c.view());
      } else {
        bt::apply_q1_blocked(f, 16, c.view());
      }
    }
    if (variant == 0) {
      synth = gpumodel::trace_bt_conventional(n, b, nc);
    } else if (variant == 1) {
      synth = gpumodel::trace_bt_recursive(n, b, nc);
    } else {
      synth = gpumodel::trace_bt_blocked(n, b, 16, nc);
    }
    // Conventional applies panels in reverse order; cost is order-invariant,
    // so compare as multisets.
    auto key = [](const trace::Op& op) {
      return std::tuple{static_cast<int>(op.kind), op.m, op.n, op.k, op.batch};
    };
    std::vector<std::tuple<int, index_t, index_t, index_t, index_t>> ka, kb;
    for (const auto& op : rec.ops()) ka.push_back(key(op));
    for (const auto& op : synth) kb.push_back(key(op));
    std::sort(ka.begin(), ka.end());
    std::sort(kb.begin(), kb.end());
    EXPECT_EQ(ka, kb) << "variant " << variant;
  }
}

TEST(TraceCost, PricesAggregateAndSkipsBcSteps) {
  const KernelModel m(gpumodel::h100_sxm());
  std::vector<trace::Op> ops{
      {trace::OpKind::kGemm, 1024, 1024, 1024, 1},
      {trace::OpKind::kSymv, 0, 2048, 0, 1},
      {trace::OpKind::kBcStep, 32, 32, 0, 5},
  };
  const auto cost = gpumodel::price_trace(m, ops);
  EXPECT_GT(cost.seconds, 0.0);
  EXPECT_EQ(cost.bc_steps, 5);
  EXPECT_GT(cost.tflops(), 0.0);
  EXPECT_EQ(cost.seconds_by_kind.count(trace::OpKind::kBcStep), 0u);
}

TEST(TraceCost, DbbrProjectsFasterThanSy2sbAtPaperScale) {
  // The headline claim of the paper (Figure 9): at large n, DBBR's fat
  // syr2k beats classic SBR's skinny one on an H100.
  const KernelModel vendor(gpumodel::h100_sxm(), /*vendor_syr2k=*/true);
  const KernelModel ours(gpumodel::h100_sxm(), /*vendor_syr2k=*/false);
  const index_t n = 16384;
  const auto sbr_cost =
      gpumodel::price_trace(vendor, gpumodel::trace_sy2sb(n, 64, false));
  const auto dbbr_cost = gpumodel::price_trace(
      ours, gpumodel::trace_dbbr(n, 64, 1024, true, 512));
  EXPECT_LT(dbbr_cost.seconds, sbr_cost.seconds);
}

}  // namespace
}  // namespace tdg
