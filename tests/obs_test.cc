// Tests for the observability layer: metrics registry exactness and gating,
// span-tree well-formedness (including the poisoned-gate unwind path),
// Chrome-trace export, the plan-cache/registry aliasing, recovery counters,
// and the EvdProfile model-vs-measured breakdown.
//
// gtest_discover_tests runs each case in its own process, so arming/
// disarming the process-wide tracing and metrics flags here cannot leak
// into other tests.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bc/bulge_chase_parallel.h"
#include "common/check.h"
#include "common/fault.h"
#include "common/json.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "eig/drivers.h"
#include "la/generate.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "plan/plan_cache.h"

namespace tdg {
namespace {

/// Arm tracing for one test body and leave the recorder empty afterwards.
struct ScopedTracing {
  ScopedTracing() {
    obs::clear_trace();
    obs::arm_tracing();
  }
  ~ScopedTracing() {
    obs::disarm_tracing();
    obs::clear_trace();
  }
};

struct ScopedMetrics {
  ScopedMetrics() { obs::arm_metrics(); }
  ~ScopedMetrics() { obs::disarm_metrics(); }
};

// ---------------------------------------------------------------------------
// Metrics registry.

TEST(Metrics, CounterExactUnderConcurrentIncrements) {
  ScopedMetrics armed;
  obs::Counter* c = obs::Registry::global().counter("test.exactness");
  c->reset();

  constexpr int kThreads = 8;
  constexpr long long kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (long long i = 0; i < kPerThread; ++i) c->inc();
    });
  }
  for (auto& th : threads) th.join();

  // Sharded counters: after the writers joined the sum must be exact.
  EXPECT_EQ(c->value(), kThreads * kPerThread);
}

TEST(Metrics, ArmedGatingDropsIncrementsWhenDisarmed) {
  ASSERT_FALSE(obs::metrics_armed());
  obs::Counter gated(obs::Gating::kArmed);
  obs::Counter always(obs::Gating::kAlways);
  gated.inc();
  always.inc();
  EXPECT_EQ(gated.value(), 0);  // disarmed hot-path site: dropped
  EXPECT_EQ(always.value(), 1);  // control-plane site: counted regardless

  obs::arm_metrics();
  gated.inc();
  obs::disarm_metrics();
  EXPECT_EQ(gated.value(), 1);
}

TEST(Metrics, GaugeTracksHighWaterMarkUnderThreads) {
  ScopedMetrics armed;
  obs::Gauge g;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&g, t] {
      for (long long v = 0; v <= 1000; ++v) g.update_max(v * (t + 1) % 997);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(g.value(), 996);  // max of v*(t+1) mod 997 over all t, v
}

TEST(Metrics, HistogramBucketsConsistentUnderThreads) {
  ScopedMetrics armed;
  obs::Histogram h;
  constexpr int kThreads = 4;
  constexpr long long kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (long long i = 0; i < kPerThread; ++i) h.record(i % 1000);
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(h.count(), kThreads * kPerThread);
  long long expected_sum = 0;
  for (long long i = 0; i < kPerThread; ++i) expected_sum += i % 1000;
  EXPECT_EQ(h.sum(), kThreads * expected_sum);

  // Power-of-two bucketing: 0 and 1 land in bucket 0, [2,4) in bucket 1, ...
  obs::Histogram b;
  b.record(0);
  b.record(1);
  b.record(2);
  b.record(3);
  b.record(4);
  EXPECT_EQ(b.bucket(0), 2);
  EXPECT_EQ(b.bucket(1), 2);
  EXPECT_EQ(b.bucket(2), 1);
}

TEST(Metrics, SnapshotJsonParsesWithCanonicalKeys) {
  const std::string snap = obs::Registry::global().snapshot_json();
  json::Value root;
  ASSERT_TRUE(json::parse(snap, &root)) << snap;
  ASSERT_EQ(root.kind, json::Value::kObject);

  const json::Value* ver = root.find("schema_version");
  ASSERT_NE(ver, nullptr);
  EXPECT_EQ(ver->num, 1.0);

  const json::Value* counters = root.find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_EQ(counters->kind, json::Value::kObject);
  // The canonical pre-registered set: pool, chase, recovery, plan cache,
  // fault — present (at zero) even in a process that never touched them.
  for (const char* name :
       {"pool.tasks_run", "pool.dispatches", "pool.parks", "pool.wakes",
        "bc.sweeps", "bc.gate_spin_episodes", "bc.stall_near_miss",
        "evd.recovery.dc_steqr", "evd.recovery.dc_steqr_bisect",
        "evd.recovery.steqr_bisect", "plan.cache_hits", "plan.cache_misses",
        "fault.fires"}) {
    EXPECT_NE(counters->find(name), nullptr) << name;
  }

  const json::Value* gauges = root.find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_NE(gauges->find("bc.sweep_concurrency_hwm"), nullptr);

  const json::Value* hists = root.find("histograms");
  ASSERT_NE(hists, nullptr);
  const json::Value* qw = hists->find("pool.queue_wait_us");
  ASSERT_NE(qw, nullptr);
  ASSERT_EQ(qw->kind, json::Value::kObject);
  EXPECT_NE(qw->find("count"), nullptr);
  EXPECT_NE(qw->find("sum"), nullptr);
  const json::Value* buckets = qw->find("buckets");
  ASSERT_NE(buckets, nullptr);
  EXPECT_EQ(buckets->kind, json::Value::kArray);
}

TEST(Metrics, PoolCountersObserveWork) {
  ScopedMetrics armed;
  obs::Registry& r = obs::Registry::global();
  obs::Counter* tasks = r.counter("pool.tasks_run");
  obs::Counter* dispatches = r.counter("pool.dispatches");
  const long long tasks0 = tasks->value();
  const long long disp0 = dispatches->value();

  ThreadLimit limit(4);
  std::atomic<long long> sum{0};
  ThreadPool::global().parallel_for(
      0, 256, [&](index_t i) { sum.fetch_add(i, std::memory_order_relaxed); });

  EXPECT_EQ(sum.load(), 256 * 255 / 2);
  EXPECT_GT(dispatches->value(), disp0);
  EXPECT_GE(tasks->value(), tasks0);  // > 0 unless the pool ran inline
}

TEST(Metrics, ChaseCountersObserveSweeps) {
  ScopedMetrics armed;
  obs::Registry& r = obs::Registry::global();
  obs::Counter* sweeps = r.counter("bc.sweeps");
  const long long sweeps0 = sweeps->value();

  const index_t n = 64, b = 4;
  Rng rng(7);
  const Matrix a0 = random_symmetric_band(n, b, rng);
  SymBandMatrix band = extract_band(a0.view(), b, std::min(2 * b, n - 1));
  bc::ParallelChaseOptions opts;
  opts.threads = 4;
  bc::chase_packed_parallel(band, b, opts, nullptr);

  EXPECT_EQ(sweeps->value() - sweeps0, n - 2);
}

TEST(Metrics, PlanCacheGlobalStatsAliasRegistry) {
  obs::Counter* hits = obs::Registry::global().counter(
      "plan.cache_hits", obs::Gating::kAlways);
  obs::Counter* misses = obs::Registry::global().counter(
      "plan.cache_misses", obs::Gating::kAlways);
  const plan::CacheStats before = plan::PlanCache::global().stats();
  EXPECT_EQ(before.hits, hits->value());
  EXPECT_EQ(before.misses, misses->value());

  plan::Plan out;
  plan::PlanCache::global().lookup("obs-test-missing-key", &out);

  const plan::CacheStats after = plan::PlanCache::global().stats();
  EXPECT_EQ(after.misses, before.misses + 1);
  // The global cache's counters ARE the registry's "plan.*" counters.
  EXPECT_EQ(misses->value(), after.misses);
}

TEST(Metrics, LocalPlanCacheCountsPrivately) {
  obs::Counter* registry_misses = obs::Registry::global().counter(
      "plan.cache_misses", obs::Gating::kAlways);
  const long long reg0 = registry_misses->value();

  plan::PlanCache local;
  plan::Plan out;
  local.lookup("missing", &out);
  EXPECT_EQ(local.stats().misses, 1);
  EXPECT_EQ(registry_misses->value(), reg0);  // untouched by the local cache
}

// ---------------------------------------------------------------------------
// Spans.

TEST(Span, DisarmedSpanRecordsNothing) {
  obs::clear_trace();
  ASSERT_FALSE(obs::tracing_armed());
  {
    obs::Span s("ghost");
    s.attr("k", 1);
    EXPECT_FALSE(s.active());
  }
  EXPECT_TRUE(obs::trace_snapshot().empty());
  EXPECT_EQ(obs::open_span_depth(), 0);
}

TEST(Span, TreeIsWellFormed) {
  ScopedTracing traced;
  {
    obs::Span outer("outer");
    outer.attr("n", 42);
    {
      obs::Span mid("mid");
      { obs::Span inner("inner"); }
    }
    { obs::Span mid2("mid2"); }
  }
  EXPECT_EQ(obs::open_span_depth(), 0);

  const std::vector<obs::SpanEvent> events = obs::trace_snapshot();
  ASSERT_EQ(events.size(), 4u);

  auto find = [&](const char* name) -> const obs::SpanEvent* {
    for (const auto& e : events) {
      if (std::string(e.name) == name) return &e;
    }
    return nullptr;
  };
  const obs::SpanEvent* outer = find("outer");
  const obs::SpanEvent* mid = find("mid");
  const obs::SpanEvent* inner = find("inner");
  const obs::SpanEvent* mid2 = find("mid2");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(mid, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(mid2, nullptr);

  EXPECT_EQ(outer->depth, 0);
  EXPECT_EQ(mid->depth, 1);
  EXPECT_EQ(inner->depth, 2);
  EXPECT_EQ(mid2->depth, 1);
  ASSERT_EQ(outer->nattrs, 1);
  EXPECT_STREQ(outer->attrs[0].key, "n");
  EXPECT_EQ(outer->attrs[0].value, 42);

  // Children are contained in their parent's interval.
  for (const obs::SpanEvent* child : {mid, inner, mid2}) {
    EXPECT_GE(child->start_us, outer->start_us);
    EXPECT_LE(child->start_us + child->dur_us,
              outer->start_us + outer->dur_us);
  }
  // Siblings do not overlap.
  EXPECT_LE(mid->start_us + mid->dur_us, mid2->start_us);
}

TEST(Span, BalancedAcrossExceptions) {
  ScopedTracing traced;
  try {
    obs::Span outer("outer");
    obs::Span inner("inner");
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(obs::open_span_depth(), 0);
  const auto events = obs::trace_snapshot();
  EXPECT_EQ(events.size(), 2u);  // both spans closed by unwinding
}

/// Every pair of spans on one thread must be nested or disjoint — the
/// recorded forest reconstructs a proper tree per thread.
void expect_forest_well_formed(const std::vector<obs::SpanEvent>& events) {
  for (std::size_t i = 0; i < events.size(); ++i) {
    for (std::size_t j = i + 1; j < events.size(); ++j) {
      const obs::SpanEvent& a = events[i];
      const obs::SpanEvent& b = events[j];
      if (a.tid != b.tid) continue;
      const double a0 = a.start_us, a1 = a.start_us + a.dur_us;
      const double b0 = b.start_us, b1 = b.start_us + b.dur_us;
      const bool disjoint = a1 <= b0 || b1 <= a0;
      const bool a_in_b = b0 <= a0 && a1 <= b1;
      const bool b_in_a = a0 <= b0 && b1 <= a1;
      EXPECT_TRUE(disjoint || a_in_b || b_in_a)
          << a.name << " [" << a0 << "," << a1 << ") vs " << b.name << " ["
          << b0 << "," << b1 << ") on tid " << a.tid;
    }
  }
}

TEST(Span, PoisonedGateUnwindLeavesBalancedTree) {
  ScopedTracing traced;
  const index_t n = 64, b = 4;
  Rng rng(43);
  const Matrix a0 = random_symmetric_band(n, b, rng);
  SymBandMatrix band = extract_band(a0.view(), b, std::min(2 * b, n - 1));

  fault::Scoped armed("bc_stall");  // wedge the first claimed sweep
  bc::ParallelChaseOptions opts;
  opts.threads = 4;
  opts.spin_timeout_ms = 200;
  EXPECT_THROW(bc::chase_packed_parallel(band, b, opts, nullptr), Error);

  // RAII closed every span during the unwind: the calling thread is back
  // at depth 0 and the recorded forest is still properly nested.
  EXPECT_EQ(obs::open_span_depth(), 0);
  const auto events = obs::trace_snapshot();
  expect_forest_well_formed(events);
  bool saw_chase = false;
  for (const auto& e : events) {
    if (std::string(e.name) == "bulge_chase") saw_chase = true;
  }
  EXPECT_TRUE(saw_chase);
}

TEST(Span, PipelineRunProducesPerPhaseSpans) {
  ScopedTracing traced;
  const index_t n = 96;
  Rng rng(5);
  const Matrix a = random_symmetric(n, rng);
  eig::EvdOptions opts;
  opts.tridiag.method = TridiagMethod::kTwoStageDbbr;
  opts.tridiag.b = 8;
  opts.tridiag.k = 32;
  const eig::EvdResult res = eig::eigh(a.view(), opts);
  ASSERT_EQ(res.eigenvalues.size(), static_cast<std::size_t>(n));

  const auto events = obs::trace_snapshot();
  expect_forest_well_formed(events);
  auto count = [&](const char* name) {
    long long c = 0;
    for (const auto& e : events) {
      if (std::string(e.name) == name) ++c;
    }
    return c;
  };
  EXPECT_EQ(count("eigh"), 1);
  EXPECT_EQ(count("tridiagonalize"), 1);
  EXPECT_EQ(count("dbbr"), 1);
  EXPECT_GE(count("dbbr.panel"), 1);
  EXPECT_EQ(count("bulge_chase"), 1);
  EXPECT_EQ(count("bc.sweep"), n - 2);  // one span per pipelined sweep
  EXPECT_EQ(count("solver"), 1);
  EXPECT_EQ(count("backtransform"), 1);
  EXPECT_EQ(count("apply_q2"), 1);
  EXPECT_EQ(count("apply_q1"), 1);
}

// ---------------------------------------------------------------------------
// Chrome trace export.

TEST(ChromeTrace, JsonParsesWithRequiredKeys) {
  ScopedTracing traced;
  {
    obs::Span outer("phase_a");
    outer.attr("n", 7);
    outer.add_flops(123.0);
    { obs::Span inner("phase_b"); }
  }
  const std::string text = obs::chrome_trace_json();
  json::Value root;
  ASSERT_TRUE(json::parse(text, &root)) << text;
  ASSERT_EQ(root.kind, json::Value::kObject);
  EXPECT_NE(root.find("displayTimeUnit"), nullptr);

  const json::Value* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, json::Value::kArray);
  ASSERT_EQ(events->arr.size(), 2u);
  for (const json::Value& e : events->arr) {
    ASSERT_EQ(e.kind, json::Value::kObject);
    for (const char* key : {"name", "cat", "ph", "ts", "dur", "pid", "tid"}) {
      EXPECT_NE(e.find(key), nullptr) << key;
    }
    EXPECT_EQ(e.find("ph")->str, "X");  // complete events
    EXPECT_EQ(e.find("cat")->str, "tdg");
    ASSERT_NE(e.find("args"), nullptr);
  }

  // The attribute and the flop credit surface under args.
  bool saw_attr = false, saw_flops = false;
  for (const json::Value& e : events->arr) {
    const json::Value* args = e.find("args");
    if (args->find("n") != nullptr) saw_attr = true;
    if (args->find("flops") != nullptr) saw_flops = true;
  }
  EXPECT_TRUE(saw_attr);
  EXPECT_TRUE(saw_flops);
}

TEST(ChromeTrace, WriteProducesLoadableFile) {
  ScopedTracing traced;
  { obs::Span s("solo"); }
  const std::string path = "obs_test_trace.json";
  ASSERT_TRUE(obs::write_chrome_trace(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream ss;
  ss << in.rdbuf();
  in.close();
  std::remove(path.c_str());

  json::Value root;
  ASSERT_TRUE(json::parse(ss.str(), &root));
  const json::Value* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(events->arr.size(), 1u);
}

// ---------------------------------------------------------------------------
// Recovery counters and fault accounting.

TEST(Recovery, ForcedFallbackIncrementsAlwaysOnCounters) {
  obs::Registry& r = obs::Registry::global();
  obs::Counter* recov =
      r.counter("evd.recovery.steqr_bisect", obs::Gating::kAlways);
  obs::Counter* fires = r.counter("fault.fires", obs::Gating::kAlways);
  const long long recov0 = recov->value();
  const long long fires0 = fires->value();

  const index_t n = 32;
  Rng rng(11);
  const Matrix a = random_symmetric(n, rng);
  eig::EvdOptions vals_only;
  vals_only.vectors = false;

  fault::Scoped armed("steqr_noconv", 1, -1);
  const eig::EvdResult res = eig::eigh(a.view(), vals_only);
  EXPECT_EQ(res.recovery, "steqr->bisect");

  // Both counters are control-plane (kAlways): they count with metrics
  // disarmed, which is exactly the telemetry contract.
  ASSERT_FALSE(obs::metrics_armed());
  EXPECT_EQ(recov->value(), recov0 + 1);
  EXPECT_GT(fires->value(), fires0);
}

// ---------------------------------------------------------------------------
// EvdProfile.

TEST(Profile, DisabledByDefault) {
  const index_t n = 24;
  Rng rng(3);
  const Matrix a = random_symmetric(n, rng);
  const eig::EvdResult res = eig::eigh(a.view());
  EXPECT_FALSE(res.profile.enabled);
  EXPECT_TRUE(res.profile.phases.empty());
}

TEST(Profile, ReportsMeasuredAndModeledPhases) {
  const index_t n = 96;
  Rng rng(9);
  const Matrix a = random_symmetric(n, rng);
  eig::EvdOptions opts;
  opts.profile = true;
  opts.tridiag.method = TridiagMethod::kTwoStageDbbr;
  opts.tridiag.b = 8;
  opts.tridiag.k = 32;
  const eig::EvdResult res = eig::eigh(a.view(), opts);

  ASSERT_TRUE(res.profile.enabled);
  ASSERT_EQ(res.profile.phases.size(), 3u);  // tridiag, solver, backtransform
  EXPECT_GT(res.profile.total_seconds, 0.0);
  EXPECT_GT(res.profile.total_flops, 0.0);

  const eig::PhaseProfile& tri = res.profile.phases[0];
  EXPECT_EQ(tri.name, "tridiagonalize");
  EXPECT_GT(tri.seconds, 0.0);
  EXPECT_GT(tri.flops, 0.0);
  EXPECT_GT(tri.gflops, 0.0);
  EXPECT_GT(tri.model_seconds, 0.0);  // H100 projection of the same phase
  // Two-stage runs subdivide: band reduction + bulge chase.
  ASSERT_EQ(tri.children.size(), 2u);
  EXPECT_EQ(tri.children[0].name, "dbbr");
  EXPECT_EQ(tri.children[1].name, "bulge_chase");
  EXPECT_GT(tri.children[1].flops, 0.0);
  EXPECT_GT(tri.children[1].model_seconds, 0.0);

  const eig::PhaseProfile& bt = res.profile.phases[2];
  EXPECT_EQ(bt.name, "backtransform");
  ASSERT_EQ(bt.children.size(), 2u);
  EXPECT_EQ(bt.children[0].name, "apply_q2");
  EXPECT_EQ(bt.children[1].name, "apply_q1");
}

TEST(Profile, ValuesOnlyRunHasNoBacktransformPhase) {
  const index_t n = 48;
  Rng rng(21);
  const Matrix a = random_symmetric(n, rng);
  eig::EvdOptions opts;
  opts.profile = true;
  opts.vectors = false;
  const eig::EvdResult res = eig::eigh(a.view(), opts);
  ASSERT_TRUE(res.profile.enabled);
  ASSERT_EQ(res.profile.phases.size(), 2u);  // tridiag + solver
  EXPECT_EQ(res.profile.phases[1].name, "solver");
}

}  // namespace
}  // namespace tdg
