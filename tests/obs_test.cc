// Tests for the observability layer: metrics registry exactness and gating,
// span-tree well-formedness (including the poisoned-gate unwind path),
// Chrome-trace export, the plan-cache/registry aliasing, recovery counters,
// and the EvdProfile model-vs-measured breakdown.
//
// gtest_discover_tests runs each case in its own process, so arming/
// disarming the process-wide tracing and metrics flags here cannot leak
// into other tests.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bc/bulge_chase_parallel.h"
#include "common/check.h"
#include "common/fault.h"
#include "common/json.h"
#include "common/rng.h"
#include "common/task_graph.h"
#include "common/thread_pool.h"
#include "eig/batched.h"
#include "eig/drivers.h"
#include "la/generate.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "plan/plan_cache.h"

namespace tdg {
namespace {

/// Arm tracing for one test body and leave the recorder empty afterwards.
struct ScopedTracing {
  ScopedTracing() {
    obs::clear_trace();
    obs::arm_tracing();
  }
  ~ScopedTracing() {
    obs::disarm_tracing();
    obs::clear_trace();
  }
};

struct ScopedMetrics {
  ScopedMetrics() { obs::arm_metrics(); }
  ~ScopedMetrics() { obs::disarm_metrics(); }
};

// ---------------------------------------------------------------------------
// Metrics registry.

TEST(Metrics, CounterExactUnderConcurrentIncrements) {
  ScopedMetrics armed;
  obs::Counter* c = obs::Registry::global().counter("test.exactness");
  c->reset();

  constexpr int kThreads = 8;
  constexpr long long kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (long long i = 0; i < kPerThread; ++i) c->inc();
    });
  }
  for (auto& th : threads) th.join();

  // Sharded counters: after the writers joined the sum must be exact.
  EXPECT_EQ(c->value(), kThreads * kPerThread);
}

TEST(Metrics, ArmedGatingDropsIncrementsWhenDisarmed) {
  ASSERT_FALSE(obs::metrics_armed());
  obs::Counter gated(obs::Gating::kArmed);
  obs::Counter always(obs::Gating::kAlways);
  gated.inc();
  always.inc();
  EXPECT_EQ(gated.value(), 0);  // disarmed hot-path site: dropped
  EXPECT_EQ(always.value(), 1);  // control-plane site: counted regardless

  obs::arm_metrics();
  gated.inc();
  obs::disarm_metrics();
  EXPECT_EQ(gated.value(), 1);
}

TEST(Metrics, GaugeTracksHighWaterMarkUnderThreads) {
  ScopedMetrics armed;
  obs::Gauge g;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&g, t] {
      for (long long v = 0; v <= 1000; ++v) g.update_max(v * (t + 1) % 997);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(g.value(), 996);  // max of v*(t+1) mod 997 over all t, v
}

TEST(Metrics, HistogramBucketsConsistentUnderThreads) {
  ScopedMetrics armed;
  obs::Histogram h;
  constexpr int kThreads = 4;
  constexpr long long kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (long long i = 0; i < kPerThread; ++i) h.record(i % 1000);
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(h.count(), kThreads * kPerThread);
  long long expected_sum = 0;
  for (long long i = 0; i < kPerThread; ++i) expected_sum += i % 1000;
  EXPECT_EQ(h.sum(), kThreads * expected_sum);

  // Power-of-two bucketing: 0 and 1 land in bucket 0, [2,4) in bucket 1, ...
  obs::Histogram b;
  b.record(0);
  b.record(1);
  b.record(2);
  b.record(3);
  b.record(4);
  EXPECT_EQ(b.bucket(0), 2);
  EXPECT_EQ(b.bucket(1), 2);
  EXPECT_EQ(b.bucket(2), 1);
}

TEST(Metrics, SnapshotJsonParsesWithCanonicalKeys) {
  const std::string snap = obs::Registry::global().snapshot_json();
  json::Value root;
  ASSERT_TRUE(json::parse(snap, &root)) << snap;
  ASSERT_EQ(root.kind, json::Value::kObject);

  const json::Value* ver = root.find("schema_version");
  ASSERT_NE(ver, nullptr);
  EXPECT_EQ(ver->num, 1.0);

  const json::Value* counters = root.find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_EQ(counters->kind, json::Value::kObject);
  // The canonical pre-registered set: pool, chase, recovery, plan cache,
  // fault — present (at zero) even in a process that never touched them.
  for (const char* name :
       {"pool.tasks_run", "pool.dispatches", "pool.parks", "pool.wakes",
        "bc.sweeps", "bc.gate_spin_episodes", "bc.stall_near_miss",
        "evd.recovery.dc_steqr", "evd.recovery.dc_steqr_bisect",
        "evd.recovery.steqr_bisect", "plan.cache_hits", "plan.cache_misses",
        "fault.fires"}) {
    EXPECT_NE(counters->find(name), nullptr) << name;
  }

  const json::Value* gauges = root.find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_NE(gauges->find("bc.sweep_concurrency_hwm"), nullptr);

  const json::Value* hists = root.find("histograms");
  ASSERT_NE(hists, nullptr);
  const json::Value* qw = hists->find("pool.queue_wait_us");
  ASSERT_NE(qw, nullptr);
  ASSERT_EQ(qw->kind, json::Value::kObject);
  EXPECT_NE(qw->find("count"), nullptr);
  EXPECT_NE(qw->find("sum"), nullptr);
  const json::Value* buckets = qw->find("buckets");
  ASSERT_NE(buckets, nullptr);
  EXPECT_EQ(buckets->kind, json::Value::kArray);
}

TEST(Metrics, PoolCountersObserveWork) {
  ScopedMetrics armed;
  obs::Registry& r = obs::Registry::global();
  obs::Counter* tasks = r.counter("pool.tasks_run");
  obs::Counter* dispatches = r.counter("pool.dispatches");
  const long long tasks0 = tasks->value();
  const long long disp0 = dispatches->value();

  ThreadLimit limit(4);
  std::atomic<long long> sum{0};
  ThreadPool::global().parallel_for(
      0, 256, [&](index_t i) { sum.fetch_add(i, std::memory_order_relaxed); });

  EXPECT_EQ(sum.load(), 256 * 255 / 2);
  EXPECT_GT(dispatches->value(), disp0);
  EXPECT_GE(tasks->value(), tasks0);  // > 0 unless the pool ran inline
}

TEST(Metrics, ChaseCountersObserveSweeps) {
  ScopedMetrics armed;
  obs::Registry& r = obs::Registry::global();
  obs::Counter* sweeps = r.counter("bc.sweeps");
  const long long sweeps0 = sweeps->value();

  const index_t n = 64, b = 4;
  Rng rng(7);
  const Matrix a0 = random_symmetric_band(n, b, rng);
  SymBandMatrix band = extract_band(a0.view(), b, std::min(2 * b, n - 1));
  bc::ParallelChaseOptions opts;
  opts.threads = 4;
  bc::chase_packed_parallel(band, b, opts, nullptr);

  EXPECT_EQ(sweeps->value() - sweeps0, n - 2);
}

TEST(Metrics, PlanCacheGlobalStatsAliasRegistry) {
  obs::Counter* hits = obs::Registry::global().counter(
      "plan.cache_hits", obs::Gating::kAlways);
  obs::Counter* misses = obs::Registry::global().counter(
      "plan.cache_misses", obs::Gating::kAlways);
  const plan::CacheStats before = plan::PlanCache::global().stats();
  EXPECT_EQ(before.hits, hits->value());
  EXPECT_EQ(before.misses, misses->value());

  plan::Plan out;
  plan::PlanCache::global().lookup("obs-test-missing-key", &out);

  const plan::CacheStats after = plan::PlanCache::global().stats();
  EXPECT_EQ(after.misses, before.misses + 1);
  // The global cache's counters ARE the registry's "plan.*" counters.
  EXPECT_EQ(misses->value(), after.misses);
}

TEST(Metrics, LocalPlanCacheCountsPrivately) {
  obs::Counter* registry_misses = obs::Registry::global().counter(
      "plan.cache_misses", obs::Gating::kAlways);
  const long long reg0 = registry_misses->value();

  plan::PlanCache local;
  plan::Plan out;
  local.lookup("missing", &out);
  EXPECT_EQ(local.stats().misses, 1);
  EXPECT_EQ(registry_misses->value(), reg0);  // untouched by the local cache
}

// ---------------------------------------------------------------------------
// Spans.

TEST(Span, DisarmedSpanRecordsNothing) {
  obs::clear_trace();
  ASSERT_FALSE(obs::tracing_armed());
  {
    obs::Span s("ghost");
    s.attr("k", 1);
    EXPECT_FALSE(s.active());
  }
  EXPECT_TRUE(obs::trace_snapshot().empty());
  EXPECT_EQ(obs::open_span_depth(), 0);
}

TEST(Span, TreeIsWellFormed) {
  ScopedTracing traced;
  {
    obs::Span outer("outer");
    outer.attr("n", 42);
    {
      obs::Span mid("mid");
      { obs::Span inner("inner"); }
    }
    { obs::Span mid2("mid2"); }
  }
  EXPECT_EQ(obs::open_span_depth(), 0);

  const std::vector<obs::SpanEvent> events = obs::trace_snapshot();
  ASSERT_EQ(events.size(), 4u);

  auto find = [&](const char* name) -> const obs::SpanEvent* {
    for (const auto& e : events) {
      if (std::string(e.name) == name) return &e;
    }
    return nullptr;
  };
  const obs::SpanEvent* outer = find("outer");
  const obs::SpanEvent* mid = find("mid");
  const obs::SpanEvent* inner = find("inner");
  const obs::SpanEvent* mid2 = find("mid2");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(mid, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(mid2, nullptr);

  EXPECT_EQ(outer->depth, 0);
  EXPECT_EQ(mid->depth, 1);
  EXPECT_EQ(inner->depth, 2);
  EXPECT_EQ(mid2->depth, 1);
  ASSERT_EQ(outer->nattrs, 1);
  EXPECT_STREQ(outer->attrs[0].key, "n");
  EXPECT_EQ(outer->attrs[0].value, 42);

  // Children are contained in their parent's interval.
  for (const obs::SpanEvent* child : {mid, inner, mid2}) {
    EXPECT_GE(child->start_us, outer->start_us);
    EXPECT_LE(child->start_us + child->dur_us,
              outer->start_us + outer->dur_us);
  }
  // Siblings do not overlap.
  EXPECT_LE(mid->start_us + mid->dur_us, mid2->start_us);
}

TEST(Span, BalancedAcrossExceptions) {
  ScopedTracing traced;
  try {
    obs::Span outer("outer");
    obs::Span inner("inner");
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(obs::open_span_depth(), 0);
  const auto events = obs::trace_snapshot();
  EXPECT_EQ(events.size(), 2u);  // both spans closed by unwinding
}

/// Every pair of spans on one thread must be nested or disjoint — the
/// recorded forest reconstructs a proper tree per thread.
void expect_forest_well_formed(const std::vector<obs::SpanEvent>& events) {
  for (std::size_t i = 0; i < events.size(); ++i) {
    for (std::size_t j = i + 1; j < events.size(); ++j) {
      const obs::SpanEvent& a = events[i];
      const obs::SpanEvent& b = events[j];
      if (a.tid != b.tid) continue;
      const double a0 = a.start_us, a1 = a.start_us + a.dur_us;
      const double b0 = b.start_us, b1 = b.start_us + b.dur_us;
      const bool disjoint = a1 <= b0 || b1 <= a0;
      const bool a_in_b = b0 <= a0 && a1 <= b1;
      const bool b_in_a = a0 <= b0 && b1 <= a1;
      EXPECT_TRUE(disjoint || a_in_b || b_in_a)
          << a.name << " [" << a0 << "," << a1 << ") vs " << b.name << " ["
          << b0 << "," << b1 << ") on tid " << a.tid;
    }
  }
}

TEST(Span, PoisonedGateUnwindLeavesBalancedTree) {
  ScopedTracing traced;
  const index_t n = 64, b = 4;
  Rng rng(43);
  const Matrix a0 = random_symmetric_band(n, b, rng);
  SymBandMatrix band = extract_band(a0.view(), b, std::min(2 * b, n - 1));

  fault::Scoped armed("bc_stall");  // wedge the first claimed sweep
  bc::ParallelChaseOptions opts;
  opts.threads = 4;
  opts.spin_timeout_ms = 200;
  EXPECT_THROW(bc::chase_packed_parallel(band, b, opts, nullptr), Error);

  // RAII closed every span during the unwind: the calling thread is back
  // at depth 0 and the recorded forest is still properly nested.
  EXPECT_EQ(obs::open_span_depth(), 0);
  const auto events = obs::trace_snapshot();
  expect_forest_well_formed(events);
  bool saw_chase = false;
  for (const auto& e : events) {
    if (std::string(e.name) == "bulge_chase") saw_chase = true;
  }
  EXPECT_TRUE(saw_chase);
}

TEST(Span, PipelineRunProducesPerPhaseSpans) {
  ScopedTracing traced;
  const index_t n = 96;
  Rng rng(5);
  const Matrix a = random_symmetric(n, rng);
  eig::EvdOptions opts;
  opts.tridiag.method = TridiagMethod::kTwoStageDbbr;
  opts.tridiag.b = 8;
  opts.tridiag.k = 32;
  const eig::EvdResult res = eig::eigh(a.view(), opts);
  ASSERT_EQ(res.eigenvalues.size(), static_cast<std::size_t>(n));

  const auto events = obs::trace_snapshot();
  expect_forest_well_formed(events);
  auto count = [&](const char* name) {
    long long c = 0;
    for (const auto& e : events) {
      if (std::string(e.name) == name) ++c;
    }
    return c;
  };
  EXPECT_EQ(count("eigh"), 1);
  EXPECT_EQ(count("tridiagonalize"), 1);
  EXPECT_EQ(count("dbbr"), 1);
  EXPECT_GE(count("dbbr.panel"), 1);
  EXPECT_EQ(count("bulge_chase"), 1);
  EXPECT_EQ(count("bc.sweep"), n - 2);  // one span per pipelined sweep
  EXPECT_EQ(count("solver"), 1);
  EXPECT_EQ(count("backtransform"), 1);
  EXPECT_EQ(count("apply_q2"), 1);
  EXPECT_EQ(count("apply_q1"), 1);
}

// ---------------------------------------------------------------------------
// Chrome trace export.

TEST(ChromeTrace, JsonParsesWithRequiredKeys) {
  ScopedTracing traced;
  {
    obs::Span outer("phase_a");
    outer.attr("n", 7);
    outer.add_flops(123.0);
    { obs::Span inner("phase_b"); }
  }
  const std::string text = obs::chrome_trace_json();
  json::Value root;
  ASSERT_TRUE(json::parse(text, &root)) << text;
  ASSERT_EQ(root.kind, json::Value::kObject);
  EXPECT_NE(root.find("displayTimeUnit"), nullptr);

  const json::Value* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, json::Value::kArray);
  ASSERT_EQ(events->arr.size(), 2u);
  for (const json::Value& e : events->arr) {
    ASSERT_EQ(e.kind, json::Value::kObject);
    for (const char* key : {"name", "cat", "ph", "ts", "dur", "pid", "tid"}) {
      EXPECT_NE(e.find(key), nullptr) << key;
    }
    EXPECT_EQ(e.find("ph")->str, "X");  // complete events
    EXPECT_EQ(e.find("cat")->str, "tdg");
    ASSERT_NE(e.find("args"), nullptr);
  }

  // The attribute and the flop credit surface under args.
  bool saw_attr = false, saw_flops = false;
  for (const json::Value& e : events->arr) {
    const json::Value* args = e.find("args");
    if (args->find("n") != nullptr) saw_attr = true;
    if (args->find("flops") != nullptr) saw_flops = true;
  }
  EXPECT_TRUE(saw_attr);
  EXPECT_TRUE(saw_flops);
}

TEST(ChromeTrace, WriteProducesLoadableFile) {
  ScopedTracing traced;
  { obs::Span s("solo"); }
  const std::string path = "obs_test_trace.json";
  ASSERT_TRUE(obs::write_chrome_trace(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream ss;
  ss << in.rdbuf();
  in.close();
  std::remove(path.c_str());

  json::Value root;
  ASSERT_TRUE(json::parse(ss.str(), &root));
  const json::Value* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(events->arr.size(), 1u);
}

// ---------------------------------------------------------------------------
// Recovery counters and fault accounting.

TEST(Recovery, ForcedFallbackIncrementsAlwaysOnCounters) {
  obs::Registry& r = obs::Registry::global();
  obs::Counter* recov =
      r.counter("evd.recovery.steqr_bisect", obs::Gating::kAlways);
  obs::Counter* fires = r.counter("fault.fires", obs::Gating::kAlways);
  const long long recov0 = recov->value();
  const long long fires0 = fires->value();

  const index_t n = 32;
  Rng rng(11);
  const Matrix a = random_symmetric(n, rng);
  eig::EvdOptions vals_only;
  vals_only.vectors = false;

  fault::Scoped armed("steqr_noconv", 1, -1);
  const eig::EvdResult res = eig::eigh(a.view(), vals_only);
  EXPECT_EQ(res.recovery, "steqr->bisect");

  // Both counters are control-plane (kAlways): they count with metrics
  // disarmed, which is exactly the telemetry contract.
  ASSERT_FALSE(obs::metrics_armed());
  EXPECT_EQ(recov->value(), recov0 + 1);
  EXPECT_GT(fires->value(), fires0);
}

// ---------------------------------------------------------------------------
// EvdProfile.

TEST(Profile, DisabledByDefault) {
  const index_t n = 24;
  Rng rng(3);
  const Matrix a = random_symmetric(n, rng);
  const eig::EvdResult res = eig::eigh(a.view());
  EXPECT_FALSE(res.profile.enabled);
  EXPECT_TRUE(res.profile.phases.empty());
}

TEST(Profile, ReportsMeasuredAndModeledPhases) {
  const index_t n = 96;
  Rng rng(9);
  const Matrix a = random_symmetric(n, rng);
  eig::EvdOptions opts;
  opts.profile = true;
  opts.tridiag.method = TridiagMethod::kTwoStageDbbr;
  opts.tridiag.b = 8;
  opts.tridiag.k = 32;
  const eig::EvdResult res = eig::eigh(a.view(), opts);

  ASSERT_TRUE(res.profile.enabled);
  ASSERT_EQ(res.profile.phases.size(), 3u);  // tridiag, solver, backtransform
  EXPECT_GT(res.profile.total_seconds, 0.0);
  EXPECT_GT(res.profile.total_flops, 0.0);

  const eig::PhaseProfile& tri = res.profile.phases[0];
  EXPECT_EQ(tri.name, "tridiagonalize");
  EXPECT_GT(tri.seconds, 0.0);
  EXPECT_GT(tri.flops, 0.0);
  EXPECT_GT(tri.gflops, 0.0);
  EXPECT_GT(tri.model_seconds, 0.0);  // H100 projection of the same phase
  // Two-stage runs subdivide: band reduction + bulge chase.
  ASSERT_EQ(tri.children.size(), 2u);
  EXPECT_EQ(tri.children[0].name, "dbbr");
  EXPECT_EQ(tri.children[1].name, "bulge_chase");
  EXPECT_GT(tri.children[1].flops, 0.0);
  EXPECT_GT(tri.children[1].model_seconds, 0.0);

  const eig::PhaseProfile& bt = res.profile.phases[2];
  EXPECT_EQ(bt.name, "backtransform");
  ASSERT_EQ(bt.children.size(), 2u);
  EXPECT_EQ(bt.children[0].name, "apply_q2");
  EXPECT_EQ(bt.children[1].name, "apply_q1");
}

TEST(Profile, ValuesOnlyRunHasNoBacktransformPhase) {
  const index_t n = 48;
  Rng rng(21);
  const Matrix a = random_symmetric(n, rng);
  eig::EvdOptions opts;
  opts.profile = true;
  opts.vectors = false;
  const eig::EvdResult res = eig::eigh(a.view(), opts);
  ASSERT_TRUE(res.profile.enabled);
  ASSERT_EQ(res.profile.phases.size(), 2u);  // tridiag + solver
  EXPECT_EQ(res.profile.phases[1].name, "solver");
}


// ---------------------------------------------------------------------------
// Trace-context propagation (request-scoped tracing).

TEST(TraceContext, ContextScopeInstallsNestsAndRestores) {
  // No ambient context by default.
  EXPECT_EQ(obs::current_context().request_id, 0);
  {
    obs::ContextScope outer(obs::TraceContext{7, 0});
    EXPECT_EQ(obs::current_context().request_id, 7);
    {
      obs::ContextScope inner(obs::TraceContext{9, 0});
      EXPECT_EQ(obs::current_context().request_id, 9);
    }
    // Inner scope restores the outer context, not the default.
    EXPECT_EQ(obs::current_context().request_id, 7);
  }
  EXPECT_EQ(obs::current_context().request_id, 0);
}

TEST(TraceContext, NextRequestIdIsMonotonicAndNonzero) {
  const long long a = obs::next_request_id();
  const long long b = obs::next_request_id();
  EXPECT_GE(a, 1);
  EXPECT_GT(b, a);
}

TEST(TraceContext, SpanCarriesAmbientRequestIdIntoExport) {
  ScopedTracing armed;
  {
    obs::ContextScope scope(obs::TraceContext{42, 0});
    obs::Span span("t.tagged");
  }
  { obs::Span span("t.untagged"); }
  const std::vector<obs::SpanEvent> events = obs::trace_snapshot();
  ASSERT_EQ(events.size(), 2u);
  long long tagged = -1, untagged = -1;
  for (const obs::SpanEvent& e : events) {
    if (std::string(e.name) == "t.tagged") tagged = e.request_id;
    if (std::string(e.name) == "t.untagged") untagged = e.request_id;
  }
  EXPECT_EQ(tagged, 42);
  EXPECT_EQ(untagged, 0);

  // The Chrome export carries the id as "req" in args; untagged spans omit
  // the key entirely (no zero noise).
  const std::string jsonText = obs::chrome_trace_json();
  EXPECT_NE(jsonText.find("\"req\":42"), std::string::npos);
  EXPECT_EQ(jsonText.find("\"req\":0"), std::string::npos);
}

TEST(TraceContext, PropagatesAcrossParallelForHelpers) {
  ScopedTracing armed;
  ThreadLimit scope(4);
  {
    obs::ContextScope ctx(obs::TraceContext{11, 0});
    ThreadPool::global().parallel_for(0, 16, [](index_t) {
      obs::Span span("t.pf_body");
    });
  }
  const std::vector<obs::SpanEvent> events = obs::trace_snapshot();
  int seen = 0;
  for (const obs::SpanEvent& e : events) {
    if (std::string(e.name) != "t.pf_body") continue;
    ++seen;
    // Helper-executed bodies must carry the dispatcher's request id too.
    EXPECT_EQ(e.request_id, 11) << "body span lost the ambient context";
  }
  EXPECT_EQ(seen, 16);
}

TEST(TraceContext, PropagatesAcrossRunConcurrentCopies) {
  ScopedTracing armed;
  ThreadLimit scope(4);
  {
    obs::ContextScope ctx(obs::TraceContext{13, 0});
    ThreadPool::global().run_concurrent(4, [](int) {
      obs::Span span("t.rc_body");
    });
  }
  int seen = 0;
  for (const obs::SpanEvent& e : obs::trace_snapshot()) {
    if (std::string(e.name) != "t.rc_body") continue;
    ++seen;
    EXPECT_EQ(e.request_id, 13);
  }
  EXPECT_EQ(seen, 4);
}

TEST(TraceContext, PropagatesIntoTaskGraphNodes) {
  ScopedTracing armed;
  ThreadLimit scope(4);
  {
    obs::ContextScope ctx(obs::TraceContext{17, 0});
    graph::TaskGraph g;
    const auto a = g.add("t.node_a", graph::NodeClass::kPooled, [] {});
    const auto b = g.add("t.node_b", graph::NodeClass::kPooled, [] {});
    g.add("t.node_join", graph::NodeClass::kDriver, [] {}, {a, b});
    g.run();
  }
  int seen = 0;
  for (const obs::SpanEvent& e : obs::trace_snapshot()) {
    const std::string name = e.name;
    if (name.rfind("t.node", 0) != 0) continue;
    ++seen;
    // Node spans execute on pool workers and the driver alike; all of them
    // belong to the graph's owning request.
    EXPECT_EQ(e.request_id, 17) << "node span " << name;
  }
  EXPECT_EQ(seen, 3);
}

TEST(TraceContext, BatchSlotsCarryPerProblemContexts) {
  ScopedTracing armed;
  ThreadLimit scope(2);
  Rng rng(5);
  std::vector<Matrix> mats;
  std::vector<ConstMatrixView> views;
  for (int i = 0; i < 3; ++i) mats.push_back(random_symmetric(24, rng));
  for (const Matrix& m : mats) views.push_back(m.view());
  eig::BatchOptions bopts;
  bopts.vectors = false;
  bopts.trace_contexts = {obs::TraceContext{101, 0},
                          obs::TraceContext{102, 0},
                          obs::TraceContext{103, 0}};
  const eig::BatchResult br = eig::eigh_batched(views, bopts);
  ASSERT_TRUE(br.all_ok());
  std::vector<long long> problem_reqs;
  for (const obs::SpanEvent& e : obs::trace_snapshot()) {
    if (std::string(e.name) == "batch.problem") {
      problem_reqs.push_back(e.request_id);
    }
  }
  std::sort(problem_reqs.begin(), problem_reqs.end());
  ASSERT_EQ(problem_reqs.size(), 3u);
  EXPECT_EQ(problem_reqs[0], 101);
  EXPECT_EQ(problem_reqs[1], 102);
  EXPECT_EQ(problem_reqs[2], 103);
}

TEST(TraceContext, MismatchedTraceContextsRejected) {
  Rng rng(5);
  const Matrix m = random_symmetric(16, rng);
  eig::BatchOptions bopts;
  bopts.trace_contexts = {obs::TraceContext{1, 0}, obs::TraceContext{2, 0}};
  EXPECT_THROW(eig::eigh_batched({m.view()}, bopts), Error);
}

// ---------------------------------------------------------------------------
// Mid-run trace snapshots.

TEST(TraceSnapshot, RequestConsumedAtNextSpanClose) {
  ScopedTracing armed;
  const std::string path = "obs_test_snapshot.json";
  std::remove(path.c_str());
  obs::set_snapshot_path(path);

  { obs::Span span("t.before"); }
  obs::request_trace_snapshot();
  // The request is consumed when the next armed span CLOSES — tracing never
  // disarms, so no span recorded around the write can be lost.
  { obs::Span span("t.trigger"); }

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "snapshot file was not written at span close";
  std::stringstream ss;
  ss << in.rdbuf();
  json::Value v;
  ASSERT_TRUE(json::parse(ss.str(), &v));
  EXPECT_TRUE(obs::tracing_armed()) << "snapshot must not disarm tracing";

  // Spans recorded after the snapshot still land in the live buffers.
  { obs::Span span("t.after"); }
  bool saw_after = false;
  for (const obs::SpanEvent& e : obs::trace_snapshot()) {
    if (std::string(e.name) == "t.after") saw_after = true;
  }
  EXPECT_TRUE(saw_after);
  std::remove(path.c_str());
  obs::set_snapshot_path("");
}

TEST(TraceSnapshot, ExplicitConsumeWritesOnceAndClearsTheFlag) {
  ScopedTracing armed;
  const std::string path = "obs_test_snapshot2.json";
  std::remove(path.c_str());
  obs::set_snapshot_path(path);
  { obs::Span span("t.one"); }

  EXPECT_FALSE(obs::maybe_write_requested_snapshot());  // nothing requested
  obs::request_trace_snapshot();
  EXPECT_TRUE(obs::maybe_write_requested_snapshot());
  EXPECT_FALSE(obs::maybe_write_requested_snapshot());  // flag consumed
  std::remove(path.c_str());
  obs::set_snapshot_path("");
}

// ---------------------------------------------------------------------------
// Explicit-bound latency histograms.

TEST(Metrics, BoundedHistogramExactUnderConcurrentRecords) {
  int nb = 0;
  const double* bounds = obs::latency_bounds_ms(&nb);
  obs::BoundedHistogram h(bounds, nb, obs::Gating::kAlways);

  // Four values, one per ladder region (le=1, le=5, le=100, le=30000).
  const double vals[4] = {0.5, 3.0, 75.0, 12000.0};
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, &vals] {
      for (int i = 0; i < kPerThread; ++i) h.record(vals[i % 4]);
    });
  }
  for (auto& th : threads) th.join();

  // Lock-free atomic buckets: exact count and sum once writers joined.
  const long long expect_each = kThreads * (kPerThread / 4);
  EXPECT_EQ(h.count(), kThreads * static_cast<long long>(kPerThread));
  EXPECT_EQ(h.bucket(0), expect_each);   // 0.5  -> le=1
  EXPECT_EQ(h.bucket(2), expect_each);   // 3.0  -> le=5
  EXPECT_EQ(h.bucket(6), expect_each);   // 75   -> le=100
  EXPECT_EQ(h.bucket(13), expect_each);  // 12e3 -> le=30000
  EXPECT_DOUBLE_EQ(h.sum(),
                   static_cast<double>(expect_each) * (0.5 + 3.0 + 75.0 +
                                                       12000.0));
}

TEST(Metrics, BoundedHistogramPercentilesAreDeterministicBucketBounds) {
  int nb = 0;
  const double* bounds = obs::latency_bounds_ms(&nb);
  obs::BoundedHistogram h(bounds, nb, obs::Gating::kAlways);
  EXPECT_EQ(h.percentile(0.5), 0.0);  // empty: no samples, no estimate

  for (int i = 0; i < 90; ++i) h.record(3.0);    // -> le=5
  for (int i = 0; i < 10; ++i) h.record(150.0);  // -> le=200
  // Percentiles are bucket upper bounds — a pure function of the counts.
  EXPECT_DOUBLE_EQ(h.percentile(0.50), 5.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.90), 5.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.95), 200.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 200.0);

  // Overflow samples report the largest finite bound.
  obs::BoundedHistogram over(bounds, nb, obs::Gating::kAlways);
  over.record(1e9);
  EXPECT_DOUBLE_EQ(over.percentile(0.5), 60000.0);
}

TEST(Metrics, RegistryLatencySeriesKeyedByLabel) {
  obs::Registry& r = obs::Registry::global();
  obs::BoundedHistogram* agg = r.latency("serve.latency_ms", "");
  obs::BoundedHistogram* b128 = r.latency("serve.latency_ms", "n128v1");
  EXPECT_NE(agg, nullptr);
  EXPECT_NE(b128, nullptr);
  EXPECT_NE(agg, b128);  // distinct series per label
  EXPECT_EQ(b128, r.latency("serve.latency_ms", "n128v1"));  // stable
}

TEST(Metrics, OpenMetricsTextRendersCanonicalSeries) {
  obs::Registry& r = obs::Registry::global();
  r.latency("serve.latency_ms", "n128v1")->record(42.0);
  r.latency("serve.latency_ms", "")->record(42.0);
  r.counter("serve.submitted", obs::Gating::kAlways)->inc();

  const std::string text = r.openmetrics_text();
  // Counters get the _total suffix under the tdg_ prefix.
  EXPECT_NE(text.find("# TYPE tdg_serve_submitted counter"),
            std::string::npos);
  EXPECT_NE(text.find("tdg_serve_submitted_total "), std::string::npos);
  // The canonical drift histogram is pre-registered (zero if untouched).
  EXPECT_NE(text.find("# TYPE tdg_profile_model_drift_pct histogram"),
            std::string::npos);
  // Labelled latency series: the "" label renders as "all", shape buckets
  // keep their label, and every series is cumulative with an +Inf bucket.
  EXPECT_NE(text.find("tdg_serve_latency_ms_bucket{bucket=\"all\",le=\"50\"}"),
            std::string::npos);
  EXPECT_NE(
      text.find("tdg_serve_latency_ms_bucket{bucket=\"n128v1\",le=\"+Inf\"}"),
      std::string::npos);
  EXPECT_NE(text.find("tdg_serve_latency_ms_count{bucket=\"n128v1\"}"),
            std::string::npos);
  // The exposition ends with the OpenMetrics terminator (the wire sentinel).
  ASSERT_GE(text.size(), 6u);
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
}

// ---------------------------------------------------------------------------
// Flight recorder.

TEST(FlightRecorder, DumpJsonParsesWithRequestTaggedEvents) {
  obs::flight::clear();
  obs::flight::record(obs::flight::EventKind::kMarker, "t.plain", 1, 2, 0);
  {
    obs::ContextScope ctx(obs::TraceContext{55, 0});
    // kAmbientRequest (the default) resolves to the installed context.
    obs::flight::record(obs::flight::EventKind::kError, "t.ambient", 3, 4);
  }
  obs::flight::record(obs::flight::EventKind::kMetric, "t.explicit", 5, 0,
                      77);

  const std::string text = obs::flight::dump_json("unit test");
  json::Value v;
  ASSERT_TRUE(json::parse(text, &v));
  ASSERT_EQ(v.kind, json::Value::kObject);
  ASSERT_NE(v.find("schema"), nullptr);
  EXPECT_EQ(v.find("schema")->str, "tdg.flight.v1");
  EXPECT_EQ(v.find("reason")->str, "unit test");
  const json::Value* events = v.find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, json::Value::kArray);
  long long ambient_req = -1, explicit_req = -1;
  for (const json::Value& e : events->arr) {
    const std::string name = e.find("name")->str;
    if (name == "t.ambient") ambient_req = (long long)e.find("req")->num;
    if (name == "t.explicit") explicit_req = (long long)e.find("req")->num;
  }
  EXPECT_EQ(ambient_req, 55);
  EXPECT_EQ(explicit_req, 77);
  obs::flight::clear();
}

TEST(FlightRecorder, RingBoundsEventsPerThread) {
  obs::flight::clear();
  for (int i = 0; i < 3 * obs::flight::kRingCapacity; ++i) {
    obs::flight::record(obs::flight::EventKind::kMarker, "t.wrap", i, 0, 0);
  }
  const std::string text = obs::flight::dump_json("wrap test");
  json::Value v;
  ASSERT_TRUE(json::parse(text, &v));
  int my_events = 0;
  for (const json::Value& e : v.find("events")->arr) {
    if (e.find("name")->str == "t.wrap") ++my_events;
  }
  // The ring holds exactly the last kRingCapacity events — fixed memory,
  // however long the process has been running.
  EXPECT_EQ(my_events, obs::flight::kRingCapacity);
  obs::flight::clear();
}

TEST(FlightRecorder, DumpWritesToConfiguredPath) {
  obs::flight::clear();
  const std::string path = "obs_test_flight.json";
  std::remove(path.c_str());
  obs::flight::set_dump_path("");
  EXPECT_FALSE(obs::flight::dump("no path set"));
  obs::flight::set_dump_path(path);
  obs::flight::record(obs::flight::EventKind::kMarker, "t.file", 0, 0, 9);
  ASSERT_TRUE(obs::flight::dump("file test"));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  json::Value v;
  ASSERT_TRUE(json::parse(ss.str(), &v));
  EXPECT_EQ(v.find("reason")->str, "file test");
  std::remove(path.c_str());
  obs::flight::set_dump_path("");
  obs::flight::clear();
}

TEST(FlightRecorder, ArmedSpansFeedTheRing) {
  obs::flight::clear();
  {
    ScopedTracing armed;
    obs::ContextScope ctx(obs::TraceContext{88, 0});
    obs::Span span("t.flight_span");
  }
  const std::string text = obs::flight::dump_json("span feed");
  json::Value v;
  ASSERT_TRUE(json::parse(text, &v));
  bool found = false;
  for (const json::Value& e : v.find("events")->arr) {
    if (e.find("name")->str == "t.flight_span" &&
        e.find("kind")->str == "span") {
      found = true;
      EXPECT_EQ((long long)e.find("req")->num, 88);
    }
  }
  EXPECT_TRUE(found);
  obs::flight::clear();
}

}  // namespace
}  // namespace tdg
