// Tests for the library extensions beyond the paper's core pipeline:
// Sturm bisection + inverse iteration (subset eigensolver), the blocked
// stage-2 back transformation, and the Givens sbtrd baseline.

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "backtransform/apply_q2_blocked.h"
#include "bc/bulge_chase.h"
#include "bc/givens_sbtrd.h"
#include "common/rng.h"
#include "eig/bisect.h"
#include "eig/drivers.h"
#include "eig/eig.h"
#include "la/blas.h"
#include "la/generate.h"

namespace tdg {
namespace {

TEST(Sturm, CountsLaplacianEigenvalues) {
  const index_t n = 50;
  std::vector<double> d(static_cast<size_t>(n), 2.0);
  std::vector<double> e(static_cast<size_t>(n - 1), -1.0);
  // Eigenvalues are in (0, 4): all below 4, none below 0.
  EXPECT_EQ(eig::sturm_count(d, e, 0.0), 0);
  EXPECT_EQ(eig::sturm_count(d, e, 4.0), n);
  EXPECT_EQ(eig::sturm_count(d, e, 2.0), n / 2);  // spectrum symmetric about 2
}

TEST(Sturm, CountIsMonotoneAndMatchesSteqr) {
  Rng rng(1);
  const index_t n = 31;
  std::vector<double> d(static_cast<size_t>(n)), e(static_cast<size_t>(n - 1));
  for (auto& x : d) x = rng.normal();
  for (auto& x : e) x = rng.normal();
  std::vector<double> dd = d, ee = e;
  eig::steqr(dd, ee, nullptr);

  index_t prev = 0;
  for (double x : {-5.0, -1.0, 0.0, 0.5, 2.0, 5.0}) {
    const index_t c = eig::sturm_count(d, e, x);
    EXPECT_GE(c, prev);
    prev = c;
    const index_t expect = static_cast<index_t>(
        std::lower_bound(dd.begin(), dd.end(), x) - dd.begin());
    EXPECT_EQ(c, expect) << "x=" << x;
  }
}

TEST(Bisect, MatchesSteqrOnRandomProblem) {
  Rng rng(2);
  const index_t n = 40;
  std::vector<double> d(static_cast<size_t>(n)), e(static_cast<size_t>(n - 1));
  for (auto& x : d) x = rng.normal();
  for (auto& x : e) x = rng.normal();

  std::vector<double> dd = d, ee = e;
  eig::steqr(dd, ee, nullptr);

  const auto vals = eig::eigenvalues_bisect(d, e, 0, n - 1);
  ASSERT_EQ(vals.size(), static_cast<size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    EXPECT_NEAR(vals[static_cast<size_t>(i)], dd[static_cast<size_t>(i)],
                1e-11 * n);
  }

  // Subranges pick out the same values.
  const auto mid = eig::eigenvalues_bisect(d, e, 10, 14);
  for (index_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(mid[static_cast<size_t>(i)], dd[static_cast<size_t>(10 + i)],
                1e-11 * n);
  }
}

TEST(InverseIteration, ResidualsAndOrthogonality) {
  Rng rng(3);
  const index_t n = 48;
  std::vector<double> d(static_cast<size_t>(n)), e(static_cast<size_t>(n - 1));
  for (auto& x : d) x = rng.normal();
  for (auto& x : e) x = rng.normal();

  const index_t k = 7;
  const auto vals = eig::eigenvalues_bisect(d, e, 0, k - 1);
  Matrix z(n, k);
  eig::inverse_iteration(d, e, vals, z.view());

  EXPECT_LT(orthogonality_error(z.view()), 1e-9 * n);
  for (index_t j = 0; j < k; ++j) {
    // || T v - lambda v ||.
    double resid = 0.0;
    for (index_t i = 0; i < n; ++i) {
      double tv = d[static_cast<size_t>(i)] * z(i, j);
      if (i > 0) tv += e[static_cast<size_t>(i - 1)] * z(i - 1, j);
      if (i + 1 < n) tv += e[static_cast<size_t>(i)] * z(i + 1, j);
      const double r = tv - vals[static_cast<size_t>(j)] * z(i, j);
      resid += r * r;
    }
    EXPECT_LT(std::sqrt(resid), 1e-9 * n) << "j=" << j;
  }
}

class EighRangeTest : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(EighRangeTest, SubsetMatchesFullSolve) {
  const auto [n, il, iu] = GetParam();
  Rng rng(900 + n);
  const Matrix a = random_symmetric(n, rng);

  eig::EvdOptions opts;
  opts.tridiag.b = 4;
  opts.tridiag.k = 8;
  const eig::EvdResult full = eig::eigh(a.view(), opts);
  const eig::EvdResult sub = eig::eigh_range(a.view(), il, iu, opts);

  ASSERT_EQ(sub.eigenvalues.size(), static_cast<size_t>(iu - il + 1));
  ASSERT_EQ(sub.eigenvectors.cols(), iu - il + 1);
  for (index_t j = 0; j <= iu - il; ++j) {
    EXPECT_NEAR(sub.eigenvalues[static_cast<size_t>(j)],
                full.eigenvalues[static_cast<size_t>(il + j)], 1e-10 * n);
    // Residual against the dense matrix.
    std::vector<double> av(static_cast<size_t>(n));
    la::gemv(Trans::kNo, 1.0, a.view(), sub.eigenvectors.view().col(j), 0.0,
             av.data());
    double resid = 0.0;
    for (index_t i = 0; i < n; ++i) {
      const double r = av[static_cast<size_t>(i)] -
                       sub.eigenvalues[static_cast<size_t>(j)] *
                           sub.eigenvectors(i, j);
      resid += r * r;
    }
    EXPECT_LT(std::sqrt(resid), 1e-8 * n) << "j=" << j;
  }
}

INSTANTIATE_TEST_SUITE_P(Ranges, EighRangeTest,
                         ::testing::Values(std::tuple{30, 0, 4},
                                           std::tuple{30, 25, 29},
                                           std::tuple{30, 10, 20},
                                           std::tuple{45, 0, 0},
                                           std::tuple{45, 44, 44},
                                           std::tuple{45, 0, 44}));

TEST(EighRange, RejectsBadRange) {
  Rng rng(4);
  const Matrix a = random_symmetric(8, rng);
  EXPECT_THROW(eig::eigh_range(a.view(), 5, 3), Error);
  EXPECT_THROW(eig::eigh_range(a.view(), 0, 8), Error);
}

class BlockedQ2Test : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(BlockedQ2Test, MatchesReferenceApplication) {
  const auto [n, b, group] = GetParam();
  Rng rng(800 + n + b);
  const Matrix a0 = random_symmetric_band(n, b, rng);
  Matrix a = a0;
  bc::ChaseLog log;
  bc::chase_dense(a.view(), b, &log);

  Matrix c0 = random_matrix(n, 6, rng);
  Matrix c1 = c0;
  Matrix c2 = c0;
  bc::apply_q2_left(log, c1.view());
  bt::apply_q2_left_blocked(log, c2.view(), group);
  EXPECT_LT(max_abs_diff(c1.view(), c2.view()), 1e-11 * n);
}

INSTANTIATE_TEST_SUITE_P(Configs, BlockedQ2Test,
                         ::testing::Values(std::tuple{24, 4, 1},
                                           std::tuple{24, 4, 4},
                                           std::tuple{40, 8, 3},
                                           std::tuple{40, 8, 100},
                                           std::tuple{33, 2, 8},
                                           std::tuple{16, 15, 2}));

class GivensSbtrdTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GivensSbtrdTest, MatchesHouseholderChaseSpectrum) {
  const auto [n, b] = GetParam();
  Rng rng(700 + n * 3 + b);
  const Matrix a0 = random_symmetric_band(n, b, rng);

  // Givens reduction.
  SymBandMatrix g = extract_band(a0.view(), b, std::min<index_t>(b + 1, n - 1));
  bc::givens_sbtrd(g, b);
  EXPECT_LT(off_band_max(g, 1), 1e-12 * n) << "not tridiagonal";
  std::vector<double> dg, eg;
  bc::extract_tridiag(g, dg, eg);
  eig::steqr(dg, eg, nullptr);

  // Householder chase reduction.
  SymBandMatrix h = extract_band(a0.view(), b, std::min<index_t>(2 * b, n - 1));
  bc::chase_packed(h, b, nullptr);
  std::vector<double> dh, eh;
  bc::extract_tridiag(h, dh, eh);
  eig::steqr(dh, eh, nullptr);

  for (index_t i = 0; i < n; ++i) {
    EXPECT_NEAR(dg[static_cast<size_t>(i)], dh[static_cast<size_t>(i)],
                1e-10 * n)
        << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, GivensSbtrdTest,
                         ::testing::Values(std::tuple{10, 3}, std::tuple{16, 4},
                                           std::tuple{33, 5}, std::tuple{48, 8},
                                           std::tuple{25, 2},
                                           std::tuple{40, 16}));

TEST(GivensSbtrd, PreservesTraceAndFrobenius) {
  Rng rng(5);
  const index_t n = 36, b = 6;
  const Matrix a0 = random_symmetric_band(n, b, rng);
  SymBandMatrix g = extract_band(a0.view(), b, b + 1);
  bc::givens_sbtrd(g, b);

  std::vector<double> d, e;
  bc::extract_tridiag(g, d, e);
  double tr = 0.0, fro = 0.0;
  for (index_t i = 0; i < n; ++i) {
    tr += d[static_cast<size_t>(i)];
    fro += d[static_cast<size_t>(i)] * d[static_cast<size_t>(i)];
  }
  for (index_t i = 0; i + 1 < n; ++i)
    fro += 2.0 * e[static_cast<size_t>(i)] * e[static_cast<size_t>(i)];
  double tr0 = 0.0;
  for (index_t i = 0; i < n; ++i) tr0 += a0(i, i);
  EXPECT_NEAR(tr, tr0, 1e-10 * n);
  EXPECT_NEAR(std::sqrt(fro), frobenius_norm(a0.view()), 1e-10 * n);
}

TEST(GivensSbtrd, RequiresBulgeSlot) {
  SymBandMatrix band(16, 4);  // kd = 4 == b: no room for the chase bulge
  EXPECT_THROW(bc::givens_sbtrd(band, 4), Error);
}

}  // namespace
}  // namespace tdg
