// Tests for the public façade (core/tridiag.h): method selection, factor
// application, option clamping, and degenerate inputs.

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/tridiag.h"
#include "la/blas.h"
#include "la/generate.h"

namespace tdg {
namespace {

Matrix tridiag_dense(const std::vector<double>& d,
                     const std::vector<double>& e) {
  const index_t n = static_cast<index_t>(d.size());
  Matrix t(n, n);
  for (index_t i = 0; i < n; ++i) {
    t(i, i) = d[static_cast<size_t>(i)];
    if (i + 1 < n) {
      t(i + 1, i) = e[static_cast<size_t>(i)];
      t(i, i + 1) = e[static_cast<size_t>(i)];
    }
  }
  return t;
}

// || A - Q T Q^T || via the result's apply_q.
double facade_reconstruction_error(ConstMatrixView a, const TridiagResult& r) {
  Matrix t = tridiag_dense(r.d, r.e);
  Matrix qt = t;
  apply_q(r, qt.view());                   // Q T
  Matrix qtq = transposed(qt.view());      // T Q^T
  apply_q(r, qtq.view());                  // Q T Q^T
  return max_abs_diff(qtq.view(), a);
}

class FacadeTest
    : public ::testing::TestWithParam<std::tuple<int, TridiagMethod>> {};

TEST_P(FacadeTest, ReconstructsOriginal) {
  const auto [n, method] = GetParam();
  Rng rng(500 + n);
  const Matrix a = random_symmetric(n, rng);
  TridiagOptions opts;
  opts.method = method;
  opts.b = 8;
  opts.k = 16;
  opts.bc_threads = 3;
  const TridiagResult r = tridiagonalize(a.view(), opts);
  EXPECT_LT(facade_reconstruction_error(a.view(), r), 1e-10 * n);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FacadeTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 17, 40, 64),
                       ::testing::Values(TridiagMethod::kDirect,
                                         TridiagMethod::kTwoStageClassic,
                                         TridiagMethod::kTwoStageDbbr)));

TEST(Facade, ClampsOversizedBandwidth) {
  Rng rng(1);
  const Matrix a = random_symmetric(6, rng);
  TridiagOptions opts;
  opts.b = 100;  // > n-1, must be clamped
  opts.k = 100;
  const TridiagResult r = tridiagonalize(a.view(), opts);
  EXPECT_LE(r.b, 5);
  EXPECT_LT(facade_reconstruction_error(a.view(), r), 1e-11 * 6);
}

TEST(Facade, ZeroMatrix) {
  const Matrix a(12, 12);
  TridiagOptions opts;
  opts.b = 4;
  const TridiagResult r = tridiagonalize(a.view(), opts);
  for (double x : r.d) EXPECT_EQ(x, 0.0);
  for (double x : r.e) EXPECT_EQ(x, 0.0);
  // Q stays orthogonal even with all-zero reflector candidates (tau = 0).
  Matrix q = Matrix::identity(12);
  apply_q(r, q.view());
  EXPECT_LT(orthogonality_error(q.view()), 1e-14);
}

TEST(Facade, DiagonalMatrixIsFixedPoint) {
  Matrix a(10, 10);
  for (index_t i = 0; i < 10; ++i) a(i, i) = static_cast<double>(i) - 4.0;
  TridiagOptions opts;
  opts.b = 3;
  const TridiagResult r = tridiagonalize(a.view(), opts);
  for (index_t i = 0; i < 10; ++i)
    EXPECT_DOUBLE_EQ(r.d[static_cast<size_t>(i)], static_cast<double>(i) - 4.0);
  for (double x : r.e) EXPECT_EQ(x, 0.0);
}

TEST(Facade, AlreadyTridiagonalSurvivesPipeline) {
  const Matrix a = laplacian_1d(20);
  TridiagOptions opts;
  opts.b = 4;
  const TridiagResult r = tridiagonalize(a.view(), opts);
  EXPECT_LT(facade_reconstruction_error(a.view(), r), 1e-11 * 20);
  // Similarity preserves the trace (= 2n for the 1-D Laplacian).
  double tr = 0.0;
  for (double x : r.d) tr += x;
  EXPECT_NEAR(tr, 40.0, 1e-10);
}

TEST(Facade, RejectsBadInputs) {
  Matrix rect(4, 5);
  TridiagOptions opts;
  EXPECT_THROW(tridiagonalize(rect.view(), opts), Error);
  Matrix empty(0, 0);
  EXPECT_THROW(tridiagonalize(empty.view(), opts), Error);
}

TEST(Facade, ApplyQRejectsMismatchedRows) {
  Rng rng(2);
  const Matrix a = random_symmetric(10, rng);
  TridiagOptions opts;
  opts.b = 2;
  const TridiagResult r = tridiagonalize(a.view(), opts);
  Matrix c(7, 3);
  EXPECT_THROW(apply_q(r, c.view()), Error);
}

TEST(Facade, SingleElementMatrix) {
  Matrix a(1, 1);
  a(0, 0) = 3.5;
  TridiagOptions opts;
  const TridiagResult r = tridiagonalize(a.view(), opts);
  ASSERT_EQ(r.d.size(), 1u);
  EXPECT_DOUBLE_EQ(r.d[0], 3.5);
  Matrix c = Matrix::identity(1);
  apply_q(r, c.view());
  EXPECT_DOUBLE_EQ(c(0, 0), 1.0);
}

TEST(Facade, DeterministicAcrossRuns) {
  Rng rng(3);
  const Matrix a = random_symmetric(33, rng);
  TridiagOptions opts;
  opts.b = 4;
  opts.k = 8;
  opts.bc_threads = 4;
  const TridiagResult r1 = tridiagonalize(a.view(), opts);
  const TridiagResult r2 = tridiagonalize(a.view(), opts);
  EXPECT_EQ(r1.d, r2.d);  // bitwise: parallel BC is order-deterministic
  EXPECT_EQ(r1.e, r2.e);
}

TEST(Facade, MaxParallelSweepsCapPreservesResult) {
  Rng rng(4);
  const Matrix a = random_symmetric(40, rng);
  TridiagOptions base;
  base.b = 4;
  base.k = 8;
  const TridiagResult r0 = tridiagonalize(a.view(), base);
  for (index_t cap : {1, 2, 7}) {
    TridiagOptions opts = base;
    opts.max_parallel_sweeps = cap;
    const TridiagResult r = tridiagonalize(a.view(), opts);
    EXPECT_EQ(r0.d, r.d) << "cap=" << cap;
    EXPECT_EQ(r0.e, r.e) << "cap=" << cap;
  }
}

}  // namespace
}  // namespace tdg
