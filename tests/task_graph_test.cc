// Tests for the task-graph runtime (src/common/task_graph.h): topology and
// ordering, deterministic serial fallback, re-entrancy from pool tasks,
// exception propagation with successor cancellation, the taskgraph_node
// fault site, and the run statistics.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/check.h"
#include "common/fault.h"
#include "common/json.h"
#include "common/task_graph.h"
#include "common/thread_pool.h"
#include "obs/flight_recorder.h"
#include "obs/obs.h"

namespace tdg {
namespace {

using graph::NodeClass;
using graph::TaskGraph;

TEST(TaskGraph, EmptyGraphRuns) {
  TaskGraph g;
  const TaskGraph::Stats s = g.run();
  EXPECT_EQ(s.nodes_run, 0);
  EXPECT_EQ(s.nodes_cancelled, 0);
}

TEST(TaskGraph, RespectsEdgesAtEveryThreadCount) {
  for (const int threads : {1, 2, 8}) {
    ThreadLimit scope(threads);
    // Diamond: a -> {b, c} -> d, plus a long chain hanging off b. Record
    // completion order and verify every edge.
    std::mutex mu;
    std::vector<int> order;
    TaskGraph g;
    auto node = [&](int tag) {
      return [&order, &mu, tag] {
        std::lock_guard<std::mutex> lk(mu);
        order.push_back(tag);
      };
    };
    const auto a = g.add("t.a", NodeClass::kPooled, node(0));
    const auto b = g.add("t.b", NodeClass::kPooled, node(1), {a});
    const auto c = g.add("t.c", NodeClass::kDriver, node(2), {a});
    const auto d = g.add("t.d", NodeClass::kPooled, node(3), {b, c});
    const auto e = g.add("t.e", NodeClass::kPooled, node(4), {b});
    const auto f = g.add("t.f", NodeClass::kDriver, node(5), {e, d});
    (void)f;
    const TaskGraph::Stats s = g.run();
    EXPECT_EQ(s.nodes_run, 6);
    EXPECT_EQ(s.nodes_cancelled, 0);
    ASSERT_EQ(order.size(), 6u);
    auto pos = [&](int tag) {
      for (size_t i = 0; i < order.size(); ++i) {
        if (order[i] == tag) return static_cast<int>(i);
      }
      return -1;
    };
    EXPECT_LT(pos(0), pos(1));
    EXPECT_LT(pos(0), pos(2));
    EXPECT_LT(pos(1), pos(3));
    EXPECT_LT(pos(2), pos(3));
    EXPECT_LT(pos(1), pos(4));
    EXPECT_LT(pos(3), pos(5));
    EXPECT_LT(pos(4), pos(5));
  }
}

TEST(TaskGraph, SerialFallbackRunsInInsertionOrderForChains) {
  ThreadLimit scope(1);
  std::vector<int> order;
  TaskGraph g;
  TaskGraph::NodeId prev = -1;
  for (int i = 0; i < 16; ++i) {
    std::vector<TaskGraph::NodeId> deps;
    if (prev >= 0) deps.push_back(prev);
    prev = g.add("t.chain", i % 2 ? NodeClass::kPooled : NodeClass::kDriver,
                 [&order, i] { order.push_back(i); }, deps);
  }
  g.run();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(TaskGraph, IndependentNodesAllRunInParallelMode) {
  ThreadLimit scope(8);
  std::atomic<int> ran{0};
  TaskGraph g;
  for (int i = 0; i < 64; ++i) {
    g.add("t.leaf", i % 4 ? NodeClass::kPooled : NodeClass::kDriver,
          [&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  const TaskGraph::Stats s = g.run();
  EXPECT_EQ(ran.load(), 64);
  EXPECT_EQ(s.nodes_run, 64);
  EXPECT_GE(s.ready_depth_hwm, 1);
}

TEST(TaskGraph, ReentrantFromPoolTaskRunsSerially) {
  // A graph launched from inside a pool task must complete inline instead
  // of deadlocking on the pool's own queue.
  ThreadLimit scope(4);
  std::atomic<int> total{0};
  ThreadPool::global().parallel_for(0, 4, [&](index_t) {
    TaskGraph g;
    std::vector<int> order;
    const auto a = g.add("t.ra", NodeClass::kPooled,
                         [&order] { order.push_back(0); });
    g.add("t.rb", NodeClass::kDriver, [&order] { order.push_back(1); }, {a});
    g.run();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 0);
    EXPECT_EQ(order[1], 1);
    total.fetch_add(static_cast<int>(order.size()));
  });
  EXPECT_EQ(total.load(), 8);
}

TEST(TaskGraph, NestedParallelForInsideDriverNodeWorks) {
  ThreadLimit scope(4);
  std::atomic<int> sum{0};
  TaskGraph g;
  g.add("t.fanout", NodeClass::kDriver, [&sum] {
    ThreadPool::global().parallel_for(0, 32, [&](index_t) {
      sum.fetch_add(1, std::memory_order_relaxed);
    });
  });
  g.run();
  EXPECT_EQ(sum.load(), 32);
}

TEST(TaskGraph, ThrowingNodeCancelsSuccessorsAndRethrows) {
  for (const int threads : {1, 2, 8}) {
    ThreadLimit scope(threads);
    std::atomic<int> ran{0};
    TaskGraph g;
    const auto a = g.add("t.ok", NodeClass::kPooled,
                         [&ran] { ran.fetch_add(1); });
    const auto boom = g.add(
        "t.boom", NodeClass::kPooled,
        [] {
          throw Error(ErrorCode::kPipelineStall, "task_graph test failure");
        },
        {a});
    const auto dead = g.add("t.dead", NodeClass::kDriver,
                            [&ran] { ran.fetch_add(1); }, {boom});
    g.add("t.dead2", NodeClass::kPooled, [&ran] { ran.fetch_add(1); },
          {dead});
    try {
      g.run();
      FAIL() << "expected Error";
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kPipelineStall);
    }
    // Only the pre-failure node ran; the successors were cancelled (still
    // drained, so run() returned instead of deadlocking).
    EXPECT_EQ(ran.load(), 1);
    EXPECT_EQ(g.stats().nodes_cancelled, 2);
  }
}

TEST(TaskGraph, FaultSiteFiresAsTypedError) {
  ThreadLimit scope(2);
  fault::Scoped arm("taskgraph_node", /*trigger=*/2);
  std::atomic<int> ran{0};
  TaskGraph g;
  TaskGraph::NodeId prev = -1;
  for (int i = 0; i < 4; ++i) {
    std::vector<TaskGraph::NodeId> deps;
    if (prev >= 0) deps.push_back(prev);
    prev = g.add("t.site", NodeClass::kPooled, [&ran] { ran.fetch_add(1); },
                 deps);
  }
  try {
    g.run();
    FAIL() << "expected injected fault";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kFaultInjected);
  }
  // Node 0 completed; node 1 started but the site fired at entry (it still
  // counts as run — it was not cancelled); nodes 2 and 3 were cancelled.
  EXPECT_EQ(ran.load(), 1);
  EXPECT_EQ(g.stats().nodes_run, 2);
  EXPECT_EQ(g.stats().nodes_cancelled, 2);
}

TEST(TaskGraph, StatsAccounting) {
  ThreadLimit scope(4);
  TaskGraph g;
  const auto a = g.add("t.s0", NodeClass::kPooled, [] {});
  g.add("t.s1", NodeClass::kDriver, [] {}, {a});
  const TaskGraph::Stats s = g.run();
  EXPECT_EQ(s.nodes_run, 2);
  EXPECT_GE(s.busy_us, 0.0);
  EXPECT_GE(s.overlap_us, 0.0);
  EXPECT_LE(s.overlap_us, s.busy_us + 1.0);
  EXPECT_GE(s.overlap_fraction(), 0.0);
  EXPECT_LE(s.overlap_fraction(), 1.0);
}

TEST(TaskGraph, DrainWatchdogThrowsTypedStallNamingTheNode) {
  ThreadLimit scope(2);
  // Shared-ownership sync state: the wedged body may still be blocked (or
  // may never run at all once the watchdog poisons the graph) when this
  // test frame unwinds, so it must not reference the test's stack.
  struct Wedge {
    std::mutex mu;
    std::condition_variable cv;
    bool release = false;
  };
  auto wedge = std::make_shared<Wedge>();
  TaskGraph g;
  g.set_stall_timeout_ms(100);  // fast test; production default is the
                                // TDG_SPIN_TIMEOUT_MS deadline
  g.add("t.wedged", NodeClass::kPooled, [wedge] {
    std::unique_lock<std::mutex> lk(wedge->mu);
    wedge->cv.wait(lk, [&] { return wedge->release; });
  });
  // Keep the driver thread busy long enough for a pool worker to claim the
  // wedged node — an idle driver helps with ready pooled work itself, and
  // the watchdog only arms once the driver is actually waiting.
  g.add("t.driver_busy", NodeClass::kDriver,
        [] { std::this_thread::sleep_for(std::chrono::milliseconds(200)); });
  try {
    g.run();
    FAIL() << "expected kPipelineStall from the drain watchdog";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kPipelineStall);
    EXPECT_NE(std::string(e.what()).find("t.wedged"), std::string::npos);
    EXPECT_STREQ(e.context().stage, "task_graph");
    EXPECT_EQ(e.context().index, 0);  // first unfinished node id
  }
  // Unwedge so a blocked pool worker (if the body did start) exits.
  {
    std::lock_guard<std::mutex> lk(wedge->mu);
    wedge->release = true;
  }
  wedge->cv.notify_all();
}

TEST(TaskGraph, WatchdogDisabledAllowsSlowNodes) {
  ThreadLimit scope(2);
  TaskGraph g;
  g.set_stall_timeout_ms(0);  // 0 disables the watchdog entirely
  g.add("t.slow", NodeClass::kPooled,
        [] { std::this_thread::sleep_for(std::chrono::milliseconds(20)); });
  EXPECT_EQ(g.run().nodes_run, 1);
}

TEST(TaskGraph, RunTwiceIsAnError) {
  TaskGraph g;
  g.add("t.once", NodeClass::kPooled, [] {});
  g.run();
  EXPECT_THROW(g.run(), Error);
  EXPECT_THROW(g.add("t.late", NodeClass::kPooled, [] {}), Error);
}

TEST(TaskGraph, ForwardOrSelfDependencyIsAnError) {
  TaskGraph g;
  EXPECT_THROW(g.add("t.bad", NodeClass::kPooled, [] {}, {0}), Error);
}


TEST(TaskGraph, StallDumpsFlightRecorderNamingNodeAndRequest) {
  ThreadLimit scope(2);
  const std::string path = "task_graph_flight.json";
  std::remove(path.c_str());
  obs::flight::clear();
  obs::flight::set_dump_path(path);

  struct Wedge {
    std::mutex mu;
    std::condition_variable cv;
    bool release = false;
  };
  auto wedge = std::make_shared<Wedge>();
  try {
    // The graph runs under an ambient request context (the serve layer's
    // shape): the stall dump must name the wedged node AND this request.
    obs::ContextScope ctx(obs::TraceContext{4242, 0});
    TaskGraph g;
    g.set_stall_timeout_ms(100);
    g.add("t.wedged_dump", NodeClass::kPooled, [wedge] {
      std::unique_lock<std::mutex> lk(wedge->mu);
      wedge->cv.wait(lk, [&] { return wedge->release; });
    });
    g.add("t.driver_busy", NodeClass::kDriver, [] {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    });
    g.run();
    FAIL() << "expected kPipelineStall";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kPipelineStall);
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "stall did not write a flight dump";
  std::stringstream ss;
  ss << in.rdbuf();
  json::Value v;
  ASSERT_TRUE(json::parse(ss.str(), &v));
  EXPECT_EQ(v.find("schema")->str, "tdg.flight.v1");
  // The dump reason names the wedged node and the owning request.
  const std::string reason = v.find("reason")->str;
  EXPECT_NE(reason.find("t.wedged_dump"), std::string::npos) << reason;
  EXPECT_NE(reason.find("4242"), std::string::npos) << reason;
  // And the ring holds the taskgraph.stall error event, request-tagged.
  bool found = false;
  for (const json::Value& e : v.find("events")->arr) {
    if (e.find("name")->str == "taskgraph.stall") {
      found = true;
      EXPECT_EQ((long long)e.find("req")->num, 4242);
      EXPECT_EQ((long long)e.find("a")->num, 0);  // wedged node id
    }
  }
  EXPECT_TRUE(found);

  {
    std::lock_guard<std::mutex> lk(wedge->mu);
    wedge->release = true;
  }
  wedge->cv.notify_all();
  std::remove(path.c_str());
  obs::flight::set_dump_path("");
  obs::flight::clear();
}

}  // namespace
}  // namespace tdg
